// dtnsim-lint CLI: walk the given files/directories, lint every .cpp/.hpp,
// and report findings. Exit 0 when clean, 1 when findings exist, 2 on usage
// or I/O errors. See src/dtnsim/lint/lint.hpp for the rule set.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

// Directories never descended into unless the user names them as a root:
// build trees, VCS metadata, and the lint test fixtures (which are
// violations by design).
bool skip_dir(const fs::path& p) {
  const auto name = p.filename().string();
  return name == "build" || name == ".git" || name == "lint_fixtures" ||
         name == "third_party";
}

bool collect(const fs::path& root, std::vector<fs::path>& files) {
  std::error_code ec;
  const auto st = fs::status(root, ec);
  if (ec) {
    std::fprintf(stderr, "dtnsim-lint: cannot stat %s\n", root.string().c_str());
    return false;
  }
  if (fs::is_regular_file(st)) {
    files.push_back(root);
    return true;
  }
  if (!fs::is_directory(st)) {
    std::fprintf(stderr, "dtnsim-lint: not a file or directory: %s\n",
                 root.string().c_str());
    return false;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  const fs::recursive_directory_iterator end;
  for (; it != end; it.increment(ec)) {
    if (ec) return false;
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: dtnsim-lint [--json] <file-or-dir>...\n"
               "Lints dtnsim sources for determinism, raw-unit-double,\n"
               "include-hygiene, and mutex-guard violations.\n"
               "Suppress with: // dtnsim-lint: allow(<rule>)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return usage();
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) return usage();

  std::vector<fs::path> files;
  for (const auto& r : roots) {
    if (!collect(r, files)) return 2;
  }

  std::vector<dtnsim::lint::Finding> findings;
  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "dtnsim-lint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    auto file_findings = dtnsim::lint::lint_file(f.generic_string(), ss.str());
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  if (json) {
    std::printf("%s\n", dtnsim::lint::to_json(findings).c_str());
  } else if (!findings.empty()) {
    std::printf("%s", dtnsim::lint::to_human(findings).c_str());
    std::printf("dtnsim-lint: %zu finding(s) in %zu file(s) scanned\n",
                findings.size(), files.size());
  } else {
    std::printf("dtnsim-lint: clean (%zu files scanned)\n", files.size());
  }
  return findings.empty() ? 0 : 1;
}
