// dtnsim-lint CLI: walk the given files/directories, lint every .cpp/.hpp,
// and report findings. Exit 0 when clean, 1 when findings exist, 2 on usage
// or I/O errors. See src/dtnsim/lint/lint.hpp for the per-file rule set and
// src/dtnsim/lint/project.hpp for the project-wide (cross-file) rules.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/lint/lint.hpp"
#include "dtnsim/lint/project.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

// Directories never descended into unless the user names them as a root:
// build trees, VCS metadata, and the lint test fixtures (which are
// violations by design).
bool skip_dir(const fs::path& p) {
  const auto name = p.filename().string();
  return name == "build" || name == ".git" || name == "lint_fixtures" ||
         name == "third_party";
}

bool collect(const fs::path& root, std::vector<fs::path>& files) {
  std::error_code ec;
  const auto st = fs::status(root, ec);
  if (ec) {
    std::fprintf(stderr, "dtnsim-lint: cannot stat %s\n", root.string().c_str());
    return false;
  }
  if (fs::is_regular_file(st)) {
    files.push_back(root);
    return true;
  }
  if (!fs::is_directory(st)) {
    std::fprintf(stderr, "dtnsim-lint: not a file or directory: %s\n",
                 root.string().c_str());
    return false;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  const fs::recursive_directory_iterator end;
  for (; it != end; it.increment(ec)) {
    if (ec) return false;
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
  }
  return true;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dtnsim-lint [options] <file-or-dir>...\n"
      "  --json                machine-readable output\n"
      "  --project             also run the cross-file rules (enum-switch,\n"
      "                        metric-parity, json-parity) over all inputs\n"
      "  --jobs N              lint/index files on N worker threads\n"
      "                        (0 = hardware concurrency; output is\n"
      "                        byte-identical to --jobs 1)\n"
      "  --baseline FILE       mask findings listed in FILE\n"
      "  --write-baseline FILE write current findings as a baseline and exit 0\n"
      "  --docs FILE           metrics doc for the metric-parity doc check\n"
      "                        (default: docs/OBSERVABILITY.md if present)\n"
      "  --no-docs             disable the metric-parity doc check\n"
      "  --explain-allowlist   print the metric-parity allowlist and exit\n"
      "Per-file rules: determinism, raw-unit-double, include-hygiene,\n"
      "mutex-guard. Suppress any rule with: // dtnsim-lint: allow(<rule>)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool project = false;
  bool no_docs = false;
  int jobs = 1;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string docs_path;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--no-docs") {
      no_docs = true;
    } else if (arg == "--explain-allowlist") {
      std::printf("%s", dtnsim::lint::format_metric_allowlist().c_str());
      return 0;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--docs" && i + 1 < argc) {
      docs_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dtnsim-lint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<fs::path> paths;
  for (const auto& r : roots) {
    if (!collect(r, paths)) return 2;
  }
  // Canonical order: directory iteration order is filesystem-dependent, and
  // the baseline/golden story needs a stable finding order.
  std::sort(paths.begin(), paths.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<dtnsim::lint::FileContent> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    std::string content;
    if (!read_file(p, content)) {
      std::fprintf(stderr, "dtnsim-lint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    files.push_back({p.generic_string(), std::move(content)});
  }

  dtnsim::lint::ProjectOptions opts;
  opts.jobs = jobs;
  opts.project_rules = project;
  if (project && !no_docs) {
    if (docs_path.empty() && fs::exists("docs/OBSERVABILITY.md"))
      docs_path = "docs/OBSERVABILITY.md";
    if (!docs_path.empty() && !read_file(docs_path, opts.doc_text)) {
      std::fprintf(stderr, "dtnsim-lint: cannot read docs file %s\n",
                   docs_path.c_str());
      return 2;
    }
  }
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::fprintf(stderr, "dtnsim-lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    opts.baseline = dtnsim::lint::parse_baseline(text);
  }

  const auto findings = dtnsim::lint::lint_project(files, opts);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "dtnsim-lint: cannot write baseline %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << dtnsim::lint::to_baseline(findings);
    std::printf("dtnsim-lint: wrote %zu baseline entr%s to %s\n",
                findings.size(), findings.size() == 1 ? "y" : "ies",
                write_baseline_path.c_str());
    return 0;
  }

  if (json) {
    std::printf("%s\n", dtnsim::lint::to_json(findings).c_str());
  } else if (!findings.empty()) {
    std::printf("%s", dtnsim::lint::to_human(findings).c_str());
    std::printf("dtnsim-lint: %zu finding(s) in %zu file(s) scanned\n",
                findings.size(), files.size());
  } else {
    std::printf("dtnsim-lint: clean (%zu files scanned)\n", files.size());
  }
  return findings.empty() ? 0 : 1;
}
