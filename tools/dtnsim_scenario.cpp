// dtnsim-scenario: author, check and replay mid-run fault timelines.
//
// The scenario subsystem (docs/SCENARIO.md) turns a static dtnsim run into a
// time-varying one — loss bursts, link flaps, background surges, mid-transfer
// retunes. This tool is the workflow around those timeline files:
//
//   $ dtnsim-scenario --validate scenarios/loss_burst.json
//   $ dtnsim-scenario --preview scenarios/link_flap.json --seed 7
//   $ dtnsim-scenario --run --scenario scenarios/bg_surge.json
//         --testbed amlight --path "WAN 106ms" -C bbr -t 60
//   $ dtnsim-scenario --replay run.events.json
//
// Tool-specific flags (everything else is forwarded to the shared CLI):
//   --validate FILE  parse + validate a timeline, report, and exit
//   --preview FILE   render the timeline (jittered fire windows included)
//   --replay FILE    render a recorded event log (a --scenario-out dump)
//   --run            simulate with --scenario FILE and print the event log
// --preview and --run honour the shared --seed flag; the same seed that
// produced a run reproduces its jittered fire times exactly.
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/cli/cli.hpp"
#include "dtnsim/scenario/scenario.hpp"

namespace {

using dtnsim::scenario::AppliedEvent;
using dtnsim::scenario::EventLog;

std::string strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

// One line per crossed event, mirroring the --preview layout so a rendered
// log diffs cleanly against the timeline that produced it.
void render_event_log(const EventLog& log) {
  std::size_t applied = 0;
  for (const auto& e : log.events) applied += e.applied ? 1 : 0;
  std::printf("event log: timeline \"%s\" on %s engine", log.timeline.c_str(),
              log.engine.empty() ? "?" : log.engine.c_str());
  if (!log.label.empty()) std::printf(" (%s)", log.label.c_str());
  std::printf(" — %zu event%s crossed, %zu applied\n", log.events.size(),
              log.events.size() == 1 ? "" : "s", applied);
  for (const auto& e : log.events) {
    std::string window = strfmt("t=%8.3fs", e.fire_sec);
    if (e.end_sec > 0.0) window += strfmt(" ..%8.3fs", e.end_sec);
    std::printf("  %-22s %-18s value=%-14g %s%s%s\n", window.c_str(),
                std::string(dtnsim::scenario::kind_name(e.kind)).c_str(),
                e.value, e.applied ? "applied" : "UNSUPPORTED",
                e.note.empty() ? "" : "  # ", e.note.c_str());
  }
}

int validate(const std::string& path) {
  try {
    const auto tl = dtnsim::scenario::load_timeline(path);
    std::printf("ok: %s — timeline \"%s\", %zu event%s\n", path.c_str(),
                tl.name.c_str(), tl.events.size(),
                tl.events.size() == 1 ? "" : "s");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int preview(const std::string& path, std::uint64_t seed) {
  try {
    const auto tl = dtnsim::scenario::load_timeline(path);
    std::fputs(dtnsim::scenario::preview_timeline(tl, seed).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = dtnsim::Json::parse(buf.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return 2;
  }
  const auto log = dtnsim::scenario::event_log_from_json(*doc);
  if (!log) {
    std::fprintf(stderr, "error: %s is not an event log\n", path.c_str());
    return 2;
  }
  render_event_log(*log);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string validate_path, preview_path, replay_path;
  bool run_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto take_value = [&](std::string& slot) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", a.c_str());
        return false;
      }
      slot = argv[++i];
      return true;
    };
    if (a == "--validate") {
      if (!take_value(validate_path)) return 2;
    } else if (a.rfind("--validate=", 0) == 0) {
      validate_path = a.substr(11);
    } else if (a == "--preview") {
      if (!take_value(preview_path)) return 2;
    } else if (a.rfind("--preview=", 0) == 0) {
      preview_path = a.substr(10);
    } else if (a == "--replay") {
      if (!take_value(replay_path)) return 2;
    } else if (a.rfind("--replay=", 0) == 0) {
      replay_path = a.substr(9);
    } else if (a == "--run") {
      run_mode = true;
    } else {
      args.push_back(a);
    }
  }

  auto opts = dtnsim::cli::parse_cli(args);
  if (!opts.error.empty()) {
    std::fprintf(stderr, "error: %s\n\n%s", opts.error.c_str(),
                 dtnsim::cli::cli_help().c_str());
    return 2;
  }
  if (opts.show_help ||
      (validate_path.empty() && preview_path.empty() && replay_path.empty() &&
       !run_mode)) {
    std::fputs(
        "dtnsim-scenario — author, check and replay mid-run fault timelines\n"
        "\n"
        "tool flags (docs/SCENARIO.md has the event taxonomy):\n"
        "      --validate FILE  parse + validate a timeline and exit\n"
        "      --preview FILE   render fire windows (honours --seed)\n"
        "      --replay FILE    render a recorded event log\n"
        "      --run            simulate with --scenario FILE, print the log\n"
        "\n"
        "scenario flags (shared with dtnsim-iperf3):\n",
        stdout);
    std::fputs(dtnsim::cli::cli_help().c_str(), stdout);
    return opts.show_help ? 0 : 2;
  }

  if (!validate_path.empty()) return validate(validate_path);
  if (!preview_path.empty()) return preview(preview_path, opts.seed);
  if (!replay_path.empty()) return replay(replay_path);

  // --run: simulate with the timeline and print the crossed-event log.
  if (opts.scenario_file.empty()) {
    std::fprintf(stderr, "error: --run needs --scenario FILE\n");
    return 2;
  }
  dtnsim::harness::TestSpec spec;
  try {
    spec = dtnsim::cli::spec_from_cli(opts);
  } catch (const std::exception& e) {  // unknown testbed/path or bad timeline
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto result = dtnsim::harness::run_test(spec);
  std::printf("%s: %.2f Gbps mean over %d repeat%s, %.0f retransmits\n",
              spec.name.empty() ? "run" : spec.name.c_str(), result.avg_gbps,
              result.repeats, result.repeats == 1 ? "" : "s",
              result.avg_retransmits);
  render_event_log(result.scenario_log);
  if (!opts.scenario_out.empty() &&
      !dtnsim::scenario::write_event_log(opts.scenario_out,
                                         result.scenario_log)) {
    std::fprintf(stderr, "error: cannot write event log to %s\n",
                 opts.scenario_out.c_str());
    return 1;
  }
  return 0;
}
