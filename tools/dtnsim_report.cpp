// dtnsim-report: inspect, compare and plot RunRecord artifacts.
//
// A RunRecord (written by `dtnsim-iperf3 --record-out run.json`, or any
// harness caller that sets spec.record) bundles one run's summary, probe
// series, ss/perf logs, scenario events and derived analysis into a single
// JSON document. This tool works on those files offline — no simulation.
//
//   $ dtnsim-report --summarize run.json
//   $ dtnsim-report --diff before.json after.json
//   $ dtnsim-report --plot run.json --plot-base fig/run
//   $ dtnsim-report --json run.json | jq .analysis
//
// Flags:
//   --summarize FILE  human-readable summary; re-derives the analysis from
//                     the record's own series/logs and flags any drift
//   --diff A B        side-by-side comparison with absolute/percent deltas
//   --plot FILE       figure-ready gnuplot: <base>.gp + <base>.dat
//   --plot-base BASE  with --plot: output base (default: FILE minus .json)
//   -J, --json FILE   re-emit the parsed record as canonical JSON
#include <cstdio>
#include <string>
#include <vector>

#include "dtnsim/report/record.hpp"

namespace {

using dtnsim::report::RunRecord;

const char* kHelp =
    "dtnsim-report — unified run records: summarize, diff, plot\n"
    "\n"
    "  --summarize FILE  human-readable summary + analysis verification\n"
    "  --diff A B        compare two records (absolute and percent deltas)\n"
    "  --plot FILE       write figure-ready gnuplot (<base>.gp + <base>.dat)\n"
    "  --plot-base BASE  with --plot: output base (default: FILE minus .json)\n"
    "  -J, --json FILE   re-emit the parsed record as canonical JSON\n"
    "\n"
    "Records come from `dtnsim-iperf3 --record-out FILE` (docs/REPORT.md).\n";

// Load or die with a message; RunRecord loading throws with the path baked in.
bool load(const std::string& path, RunRecord* out) {
  try {
    *out = dtnsim::report::load_run_record(path);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return false;
  }
}

int summarize(const std::string& path) {
  RunRecord rec;
  if (!load(path, &rec)) return 2;
  std::fputs(dtnsim::report::format_run_record(rec).c_str(), stdout);
  // The stored analysis block is derived data; recompute it from the
  // record's own series/logs so a hand-edited or stale file is caught.
  const auto fresh = dtnsim::report::analyze_record(rec);
  const bool clean = dtnsim::report::to_json(fresh).dump() ==
                     dtnsim::report::to_json(rec.analysis).dump();
  std::fprintf(stdout, "  analysis   : %s\n",
               clean ? "verified (matches the recorded series/logs)"
                     : "STALE — does not match the recorded series/logs");
  return clean ? 0 : 1;
}

int diff(const std::string& a_path, const std::string& b_path) {
  RunRecord a, b;
  if (!load(a_path, &a) || !load(b_path, &b)) return 2;
  std::fputs(dtnsim::report::format_record_diff(a, b).c_str(), stdout);
  return 0;
}

int plot(const std::string& path, std::string base) {
  RunRecord rec;
  if (!load(path, &rec)) return 2;
  if (base.empty()) {
    base = path;
    const std::string suffix = ".json";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
      base.resize(base.size() - suffix.size());
    }
  }
  if (!dtnsim::report::write_record_plot(base, rec)) {
    std::fprintf(stderr, "error: cannot write %s.{gp,dat}\n", base.c_str());
    return 1;
  }
  std::fprintf(stdout, "plot: %s.gp + %s.dat (render with: gnuplot %s.gp)\n",
               base.c_str(), base.c_str(), base.c_str());
  return 0;
}

int emit_json(const std::string& path) {
  RunRecord rec;
  if (!load(path, &rec)) return 2;
  std::fputs((dtnsim::report::to_json(rec).dump(2) + "\n").c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { Summarize, Diff, Plot, Json } mode = Mode::Summarize;
  std::vector<std::string> files;
  std::string plot_base;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "-h" || a == "--help") {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (a == "--summarize") {
      mode = Mode::Summarize;
      files.push_back(value("--summarize"));
    } else if (a == "--diff") {
      mode = Mode::Diff;
      files.push_back(value("--diff"));
      files.push_back(value("--diff"));
    } else if (a == "--plot") {
      mode = Mode::Plot;
      files.push_back(value("--plot"));
    } else if (a == "--plot-base") {
      plot_base = value("--plot-base");
    } else if (a == "-J" || a == "--json") {
      mode = Mode::Json;
      files.push_back(value("--json"));
    } else if (!a.empty() && a[0] != '-') {
      files.push_back(a);  // bare FILE -> summarize
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n\n%s", a.c_str(), kHelp);
      return 2;
    }
  }
  if (files.empty()) {
    std::fputs(kHelp, stdout);
    return 2;
  }
  switch (mode) {
    case Mode::Summarize:
      return summarize(files.front());
    case Mode::Diff:
      if (files.size() != 2) {
        std::fprintf(stderr, "error: --diff needs exactly two records\n");
        return 2;
      }
      return diff(files[0], files[1]);
    case Mode::Plot:
      return plot(files.front(), plot_base);
    case Mode::Json:
      return emit_json(files.front());
  }
  return 0;
}
