// dtnsim-ss: the simulator's `ss -i` / `ethtool -S` / `tc -s qdisc`.
//
// Runs a scenario (same flags as dtnsim-iperf3) with kernel-eye snapshots
// enabled and prints each snapshot the way the real tools would, or replays
// a previously written snapshot log without re-simulating.
//
//   $ dtnsim-ss --testbed amlight --path "WAN 104ms" --kernel 6.5 -Z
//               --fq-rate 50G --optmem 20480 -t 5 --watch 1
//   $ dtnsim-ss --testbed esnet -P 8 --fq-rate 15G -t 5 --json
//   $ dtnsim-ss --replay run.ss.json
//
// Tool-specific flags (everything else is forwarded to the shared CLI):
//   --watch SEC     sample every SEC of simulated time (alias: --ss-watch);
//                   without it only the end-of-run snapshot is taken
//   --replay FILE   pretty-print FILE (a --ss-out / --json dump) and exit
//   --diff A B      compare two recorded logs (their final snapshots) side
//                   by side with per-field deltas — sick vs tuned — and exit
//   -J, --json      emit the snapshot log as JSON instead of text
//   --ss-out FILE   additionally write the JSON log to FILE
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/cli/cli.hpp"
#include "dtnsim/obs/ss.hpp"

namespace {

// Loads a --ss-out / --json dump; empty vector (with a message) on failure.
std::vector<dtnsim::obs::SsReport> load_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = dtnsim::Json::parse(buf.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return {};
  }
  auto log = dtnsim::obs::ss_log_from_json(*doc);
  if (log.empty()) {
    std::fprintf(stderr, "error: %s holds no snapshots\n", path.c_str());
  }
  return log;
}

int diff(const std::string& path_a, const std::string& path_b) {
  const auto log_a = load_log(path_a);
  const auto log_b = load_log(path_b);
  if (log_a.empty() || log_b.empty()) return 2;
  // The final snapshot of each log is the end-of-run state.
  std::fputs(dtnsim::obs::format_ss_diff(log_a.back(), log_b.back()).c_str(),
             stdout);
  return 0;
}

int replay(const std::string& path, bool json) {
  const auto log = load_log(path);
  if (log.empty()) return 2;
  if (json) {
    std::fputs((dtnsim::obs::ss_log_to_json(log).dump(2) + "\n").c_str(), stdout);
  } else {
    for (const auto& r : log) std::fputs(dtnsim::obs::format_ss(r).c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string replay_path;
  std::string diff_a, diff_b;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--watch") {  // tool-local alias for the shared --ss-watch
      args.push_back("--ss-watch");
    } else if (a.rfind("--watch=", 0) == 0) {
      args.push_back("--ss-watch=" + a.substr(8));
    } else if (a == "--diff") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "error: --diff needs two recorded logs (A B)\n");
        return 2;
      }
      diff_a = argv[++i];
      diff_b = argv[++i];
    } else if (a == "--replay") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for --replay\n");
        return 2;
      }
      replay_path = argv[++i];
    } else if (a.rfind("--replay=", 0) == 0) {
      replay_path = a.substr(9);
    } else if (a == "-J" || a == "--json") {
      json = true;
    } else {
      args.push_back(a);
    }
  }
  if (!diff_a.empty()) return diff(diff_a, diff_b);
  if (!replay_path.empty()) return replay(replay_path, json);

  auto opts = dtnsim::cli::parse_cli(args);
  if (!opts.error.empty()) {
    std::fprintf(stderr, "error: %s\n\n%s", opts.error.c_str(),
                 dtnsim::cli::cli_help().c_str());
    return 2;
  }
  if (opts.show_help) {
    std::fputs(
        "dtnsim-ss — kernel-eye socket/NIC/qdisc snapshots of a dtnsim run\n"
        "\n"
        "tool flags:\n"
        "      --watch SEC      snapshot every SEC of simulated time\n"
        "      --replay FILE    pretty-print a recorded log, no simulation\n"
        "      --diff A B       compare two recorded logs side by side\n"
        "  -J, --json           emit the snapshot log as JSON\n"
        "      --ss-out FILE    also write the JSON log to FILE\n"
        "\n"
        "scenario flags (shared with dtnsim-iperf3):\n",
        stdout);
    std::fputs(dtnsim::cli::cli_help().c_str(), stdout);
    return 0;
  }
  opts.force_ss = true;
  opts.iperf.json = false;  // the run itself stays quiet; we print snapshots

  dtnsim::harness::TestSpec spec;
  try {
    spec = dtnsim::cli::spec_from_cli(opts);
  } catch (const std::exception& e) {  // unknown testbed or path name
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto result = dtnsim::harness::run_test(spec);
  auto log = result.ss_log;
  if (log.empty()) {
    std::fprintf(stderr, "error: run produced no snapshots\n");
    return 1;
  }
  if (!opts.ss_out.empty() && !dtnsim::obs::write_ss_log(opts.ss_out, log)) {
    std::fprintf(stderr, "error: cannot write ss log to %s\n", opts.ss_out.c_str());
    return 1;
  }
  if (json) {
    std::fputs((dtnsim::obs::ss_log_to_json(log).dump(2) + "\n").c_str(), stdout);
  } else {
    for (const auto& r : log) std::fputs(dtnsim::obs::format_ss(r).c_str(), stdout);
  }
  return 0;
}
