// dtnsim-sweep: parallel campaign engine CLI (see docs/SWEEP.md).
//
// Thin main over sweep::parse_sweep_cli / run_sweep_cli, mirroring the
// dtnsim-iperf3 split: parsing and execution live in the library where they
// are unit-tested.
#include <cstdio>
#include <string>
#include <vector>

#include "dtnsim/sweep/campaign.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const auto cli = dtnsim::sweep::parse_sweep_cli(args);
  std::string output;
  const int code = dtnsim::sweep::run_sweep_cli(cli, output);
  std::fputs(output.c_str(), code == 0 ? stdout : stderr);
  return code;
}
