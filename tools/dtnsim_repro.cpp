// dtnsim-repro: run the paper's experiments by id and export raw datasets.
//
//   $ dtnsim-repro --list
//   $ dtnsim-repro fig5 table3 --out data/
//   $ dtnsim-repro --all --quick --out data/
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dtnsim/harness/experiments.hpp"
#include "dtnsim/harness/plot.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace {

// For figure experiments whose specs form a (series x path) grid, emit
// <id>.dat/<id>.gp so `gnuplot <id>.gp` renders the paper-style bar chart.
// Series and category labels are recovered from the "<series> <path>" spec
// naming convention used by the registry.
bool try_emit_figure(const dtnsim::harness::ExperimentDef& def,
                     const std::vector<dtnsim::harness::TestSpec>& specs,
                     const std::vector<dtnsim::harness::TestResult>& results,
                     const std::string& out_dir) {
  std::vector<std::string> categories;
  std::vector<std::string> series;
  for (const auto& spec : specs) {
    const std::string cat = spec.path.name;
    if (spec.name.size() <= cat.size() + 1 ||
        spec.name.substr(spec.name.size() - cat.size()) != cat) {
      return false;  // names don't follow "<series> <path>"
    }
    const std::string ser = spec.name.substr(0, spec.name.size() - cat.size() - 1);
    if (std::find(categories.begin(), categories.end(), cat) == categories.end()) {
      categories.push_back(cat);
    }
    if (std::find(series.begin(), series.end(), ser) == series.end()) {
      series.push_back(ser);
    }
  }
  if (categories.size() * series.size() != results.size()) return false;
  try {
    const auto fig = dtnsim::harness::figure_from_results(
        def.id, def.title, categories, series, results);
    return dtnsim::harness::write_figure(fig, out_dir);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtnsim::harness;

  std::vector<std::string> ids;
  std::string out_dir = ".";
  bool list = false, all = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--list") list = true;
    else if (flag == "--all") all = true;
    else if (flag == "--quick") quick = true;
    else if (flag == "--out" && i + 1 < argc) out_dir = argv[++i];
    else if (flag == "-h" || flag == "--help") {
      std::printf("dtnsim-repro [--list] [--all] [--quick] [--out DIR] [ids...]\n"
                  "Runs the paper's experiments and writes <id>_raw.csv,\n"
                  "<id>_summary.csv and <id>.json per experiment.\n"
                  "--quick: 20 s x 3 repeats instead of the paper's 60 s x 10.\n");
      return 0;
    } else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    } else {
      ids.push_back(flag);
    }
  }

  if (list || (ids.empty() && !all)) {
    std::printf("%-18s %s\n", "id", "experiment");
    for (const auto& def : experiment_registry()) {
      std::printf("%-18s %s\n", def.id.c_str(), def.title.c_str());
      std::printf("%-18s   expected: %s\n", "", def.paper_claim.c_str());
    }
    return 0;
  }

  if (all) {
    ids.clear();
    for (const auto& def : experiment_registry()) ids.push_back(def.id);
  }

  const double duration = quick ? 20.0 : 60.0;
  const int repeats = quick ? 3 : 10;
  int failures = 0;
  for (const auto& id : ids) {
    const auto* def = find_experiment(id);
    if (!def) {
      std::fprintf(stderr, "unknown experiment id: %s (see --list)\n", id.c_str());
      ++failures;
      continue;
    }
    std::printf("running %-16s (%s) ...\n", def->id.c_str(), def->title.c_str());
    const auto specs = def->specs();
    Dataset ds(def->id);
    std::vector<TestResult> results;
    for (auto spec : specs) {
      spec.iperf.duration_sec = duration;
      if (spec.repeats == 10) spec.repeats = repeats;
      results.push_back(run_test(spec));
      ds.add(results.back());
    }
    if (!ds.write_to(out_dir)) {
      std::fprintf(stderr, "  failed to write dataset to %s\n", out_dir.c_str());
      ++failures;
      continue;
    }
    const bool fig = try_emit_figure(*def, specs, results, out_dir);
    std::printf("  wrote %s/%s_{raw,summary}.csv and %s.json (%zu tests)%s\n",
                out_dir.c_str(), def->id.c_str(), def->id.c_str(), ds.size(),
                fig ? dtnsim::strfmt(" + %s.dat/.gp", def->id.c_str()).c_str() : "");
  }
  return failures == 0 ? 0 : 1;
}
