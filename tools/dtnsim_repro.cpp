// dtnsim-repro: run the paper's experiments by id and export raw datasets.
//
//   $ dtnsim-repro --list
//   $ dtnsim-repro fig5 table3 --out data/
//   $ dtnsim-repro --all --quick --out data/
//   $ dtnsim-repro fig9 --trace-out trace.json --metrics-out flow.csv
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dtnsim/harness/experiments.hpp"
#include "dtnsim/harness/plot.hpp"
#include "dtnsim/obs/probe.hpp"
#include "dtnsim/obs/trace.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace {

// For figure experiments whose specs form a (series x path) grid, emit
// <id>.dat/<id>.gp so `gnuplot <id>.gp` renders the paper-style bar chart.
// Series and category labels are recovered from the "<series> <path>" spec
// naming convention used by the registry.
bool try_emit_figure(const dtnsim::harness::ExperimentDef& def,
                     const std::vector<dtnsim::harness::TestSpec>& specs,
                     const std::vector<dtnsim::harness::TestResult>& results,
                     const std::string& out_dir) {
  std::vector<std::string> categories;
  std::vector<std::string> series;
  for (const auto& spec : specs) {
    const std::string cat = spec.path.name;
    if (spec.name.size() <= cat.size() + 1 ||
        spec.name.substr(spec.name.size() - cat.size()) != cat) {
      return false;  // names don't follow "<series> <path>"
    }
    const std::string ser = spec.name.substr(0, spec.name.size() - cat.size() - 1);
    if (std::find(categories.begin(), categories.end(), cat) == categories.end()) {
      categories.push_back(cat);
    }
    if (std::find(series.begin(), series.end(), ser) == series.end()) {
      series.push_back(ser);
    }
  }
  if (categories.size() * series.size() != results.size()) return false;
  try {
    const auto fig = dtnsim::harness::figure_from_results(
        def.id, def.title, categories, series, results);
    return dtnsim::harness::write_figure(fig, out_dir);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtnsim::harness;

  std::vector<std::string> ids;
  std::string out_dir = ".";
  std::string metrics_out, trace_out;
  double probe_interval_sec = 1.0;
  bool list = false, all = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    bool has_value = false;
    const std::size_t eq = flag.rfind("--", 0) == 0 ? flag.find('=') : std::string::npos;
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_value = true;
    }
    auto take_value = [&]() -> bool {
      if (has_value) return true;
      if (i + 1 >= argc) return false;
      value = argv[++i];
      return true;
    };
    if (flag == "--list") list = true;
    else if (flag == "--all") all = true;
    else if (flag == "--quick") quick = true;
    else if (flag == "--out" && take_value()) out_dir = value;
    else if (flag == "--metrics-out" && take_value()) metrics_out = value;
    else if (flag == "--trace-out" && take_value()) trace_out = value;
    else if (flag == "--probe-interval" && take_value()) {
      probe_interval_sec = std::atof(value.c_str());
      if (probe_interval_sec <= 0) {
        std::fprintf(stderr, "probe interval must be positive\n");
        return 2;
      }
    } else if (flag == "-h" || flag == "--help") {
      std::printf("dtnsim-repro [--list] [--all] [--quick] [--out DIR] [ids...]\n"
                  "             [--metrics-out F] [--trace-out F] [--probe-interval S]\n"
                  "Runs the paper's experiments and writes <id>_raw.csv,\n"
                  "<id>_summary.csv and <id>.json per experiment.\n"
                  "--quick: 20 s x 3 repeats instead of the paper's 60 s x 10.\n"
                  "--metrics-out: per-interval telemetry series (all tests) as CSV.\n"
                  "--trace-out: chrome://tracing / Perfetto trace_event JSON.\n"
                  "--probe-interval: telemetry cadence in seconds (default 1).\n");
      return 0;
    } else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    } else {
      ids.push_back(flag);
    }
  }
  const bool telemetry = !metrics_out.empty() || !trace_out.empty();

  if (list || (ids.empty() && !all)) {
    std::printf("%-18s %s\n", "id", "experiment");
    for (const auto& def : experiment_registry()) {
      std::printf("%-18s %s\n", def.id.c_str(), def.title.c_str());
      std::printf("%-18s   expected: %s\n", "", def.paper_claim.c_str());
    }
    return 0;
  }

  if (all) {
    ids.clear();
    for (const auto& def : experiment_registry()) ids.push_back(def.id);
  }

  const double duration = quick ? 20.0 : 60.0;
  const int repeats = quick ? 3 : 10;
  int failures = 0;
  // Telemetry accumulated across every test of every experiment; written
  // once at the end as a merged CSV / merged chrome trace.
  struct OwnedSeries {
    std::string test;
    int repeat;
    dtnsim::obs::SeriesTable series;
  };
  std::vector<OwnedSeries> all_series;
  std::vector<std::pair<std::string, std::shared_ptr<const dtnsim::obs::TraceSink>>>
      all_traces;
  for (const auto& id : ids) {
    const auto* def = find_experiment(id);
    if (!def) {
      std::fprintf(stderr, "unknown experiment id: %s (see --list)\n", id.c_str());
      ++failures;
      continue;
    }
    std::printf("running %-16s (%s) ...\n", def->id.c_str(), def->title.c_str());
    const auto specs = def->specs();
    Dataset ds(def->id);
    std::vector<TestResult> results;
    for (auto spec : specs) {
      spec.iperf.duration_sec = duration;
      if (spec.repeats == 10) spec.repeats = repeats;
      if (telemetry) {
        spec.telemetry.enabled = true;
        spec.telemetry.probe_interval = dtnsim::units::seconds(probe_interval_sec);
      }
      results.push_back(run_test(spec));
      ds.add(results.back());
      auto& res = results.back();
      for (std::size_t r = 0; r < res.repeat_series.size(); ++r) {
        all_series.push_back(
            {spec.name, static_cast<int>(r), std::move(res.repeat_series[r])});
      }
      if (res.trace) all_traces.emplace_back(spec.name, res.trace);
    }
    if (!ds.write_to(out_dir)) {
      std::fprintf(stderr, "  failed to write dataset to %s\n", out_dir.c_str());
      ++failures;
      continue;
    }
    const bool fig = try_emit_figure(*def, specs, results, out_dir);
    std::printf("  wrote %s/%s_{raw,summary}.csv and %s.json (%zu tests)%s\n",
                out_dir.c_str(), def->id.c_str(), def->id.c_str(), ds.size(),
                fig ? dtnsim::strfmt(" + %s.dat/.gp", def->id.c_str()).c_str() : "");
  }
  if (!metrics_out.empty()) {
    std::vector<dtnsim::obs::LabeledSeries> labeled;
    labeled.reserve(all_series.size());
    for (const auto& s : all_series) labeled.push_back({s.test, s.repeat, &s.series});
    if (dtnsim::obs::write_merged_series_csv(metrics_out, labeled)) {
      std::printf("wrote %s (%zu series)\n", metrics_out.c_str(), labeled.size());
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      ++failures;
    }
  }
  if (!trace_out.empty()) {
    std::vector<std::pair<std::string, const dtnsim::obs::TraceSink*>> sinks;
    sinks.reserve(all_traces.size());
    for (const auto& [label, sink] : all_traces) sinks.emplace_back(label, sink.get());
    if (dtnsim::obs::write_merged_chrome_trace(trace_out, sinks)) {
      std::printf("wrote %s (%zu traces)\n", trace_out.c_str(), sinks.size());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
