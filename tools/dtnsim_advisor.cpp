// dtnsim-advisor: audit a host/testbed configuration against the paper's
// §V recommendations.
//
//   $ dtnsim-advisor --testbed esnet --path "WAN 63ms"
//   $ dtnsim-advisor --stock          # what an untuned host looks like
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dtnsim/core/dtnsim.hpp"

int main(int argc, char** argv) {
  using namespace dtnsim;

  std::string testbed = "esnet";
  std::string path_name;
  bool stock = false;
  bool dtn_use_case = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--testbed" && i + 1 < argc) testbed = argv[++i];
    else if (flag == "--path" && i + 1 < argc) path_name = argv[++i];
    else if (flag == "--stock") stock = true;
    else if (flag == "--dtn") dtn_use_case = true;
    else if (flag == "-h" || flag == "--help") {
      std::printf(
          "dtnsim-advisor [--testbed amlight|esnet|production] [--path NAME]\n"
          "               [--stock] [--dtn]\n"
          "Audits the host tuning against the paper's recommendations\n"
          "(--stock: audit an untuned host; --dtn: parallel-stream use case).\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  harness::Testbed tb;
  if (testbed == "amlight") tb = harness::amlight();
  else if (testbed == "esnet") tb = harness::esnet();
  else if (testbed == "production") tb = harness::esnet_production();
  else {
    std::fprintf(stderr, "unknown testbed: %s\n", testbed.c_str());
    return 2;
  }
  if (stock) {
    tb.sender.tuning = host::TuningConfig::stock();
    tb.sender.kernel = kern::kernel_profile(kern::KernelVersion::V5_15);
  }
  const auto& path = path_name.empty() ? tb.lan() : tb.path_named(path_name);

  const auto advice = advise(tb.sender, path,
                             dtn_use_case ? UseCase::ParallelStreamDtn
                                          : UseCase::SingleFlowBenchmark,
                             tb.link_flow_control);
  std::printf("Host: %s (%s, kernel %s), path: %s\n\n%s", tb.sender.name.c_str(),
              tb.sender.cpu.model.c_str(), tb.sender.kernel.name.c_str(),
              path.name.c_str(), advice.to_string().c_str());
  return advice.has_critical() ? 1 : 0;
}
