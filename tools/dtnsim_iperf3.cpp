// dtnsim-iperf3: iperf3-flag-compatible command-line driver.
//
//   $ dtnsim-iperf3 --testbed amlight --path "WAN 104ms" -Z --fq-rate 50G \
//                   --optmem 3405376 --repeats 10
//   $ dtnsim-iperf3 --testbed esnet -P 8 --fq-rate 15G --kernel 5.15 -J
#include <cstdio>
#include <string>
#include <vector>

#include "dtnsim/cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto opts = dtnsim::cli::parse_cli(args);
  std::string output;
  const int code = dtnsim::cli::run_cli(opts, output);
  std::fputs(output.c_str(), code == 0 ? stdout : stderr);
  return code;
}
