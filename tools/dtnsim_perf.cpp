// dtnsim-perf: the simulator's `perf record` / `perf report`.
//
// Runs a scenario (same flags as dtnsim-iperf3) with exact per-stage cycle
// attribution enabled and renders each sample the way `perf report` would,
// or emits collapsed stacks for flamegraph.pl, or replays a previously
// written attribution log without re-simulating.
//
//   $ dtnsim-perf --testbed amlight --path LAN --kernel 6.5 -t 5
//   $ dtnsim-perf --testbed esnet -Z --fq-rate 50G -t 5 --record 1 --flame
//   $ dtnsim-perf --replay run.perf.json --report
//
// Tool-specific flags (everything else is forwarded to the shared CLI):
//   --record SEC    sample every SEC of simulated time (alias: --perf-watch);
//                   without it only the end-of-run report is taken
//   --report        perf-report-style text output (the default)
//   --flame         collapsed stacks (engine;core;symbol N) for flamegraph.pl
//   --replay FILE   render FILE (a --perf-out / --json dump) and exit
//   --diff A B      with --flame: differential collapsed stacks between two
//                   recorded logs ("stack beforeN afterN", difffolded.pl
//                   shape; flamegraph.pl --negate renders the red/blue view)
//   -J, --json      emit the attribution log as JSON instead of text
//   --perf-out FILE additionally write the JSON log to FILE
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/cli/cli.hpp"
#include "dtnsim/obs/perf.hpp"

namespace {

enum class Mode { Report, Flame, Json };

void render(const std::vector<dtnsim::obs::PerfReport>& log, Mode mode) {
  using namespace dtnsim::obs;
  switch (mode) {
    case Mode::Json:
      std::fputs((perf_log_to_json(log).dump(2) + "\n").c_str(), stdout);
      break;
    case Mode::Flame:
      // Flamegraphs show a cumulative profile; the last sample holds the
      // whole run's attribution (samples are run totals, not deltas).
      std::fputs(format_flamegraph(log.back()).c_str(), stdout);
      break;
    case Mode::Report:
      for (const auto& r : log) std::fputs(format_perf_report(r).c_str(), stdout);
      break;
  }
}

// Load a recorded attribution log; empty vector (with a message) on error.
std::vector<dtnsim::obs::PerfReport> load_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = dtnsim::Json::parse(buf.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return {};
  }
  const auto log = dtnsim::obs::perf_log_from_json(*doc);
  if (log.empty()) {
    std::fprintf(stderr, "error: %s holds no samples\n", path.c_str());
  }
  return log;
}

int replay(const std::string& path, Mode mode) {
  const auto log = load_log(path);
  if (log.empty()) return 2;
  render(log, mode);
  return 0;
}

// `--flame --diff A B`: differential profile between two recorded logs. The
// final sample of each log carries the whole run's attribution, so the diff
// compares run totals — before (A) against after (B).
int diff(const std::string& a_path, const std::string& b_path, Mode mode) {
  if (mode != Mode::Flame) {
    std::fprintf(stderr, "error: --diff needs --flame (differential stacks)\n");
    return 2;
  }
  const auto a = load_log(a_path);
  if (a.empty()) return 2;
  const auto b = load_log(b_path);
  if (b.empty()) return 2;
  std::fputs(dtnsim::obs::format_flamegraph_diff(a.back(), b.back()).c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string replay_path;
  std::string diff_a, diff_b;
  Mode mode = Mode::Report;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--record") {  // tool-local alias for the shared --perf-watch
      args.push_back("--perf-watch");
    } else if (a.rfind("--record=", 0) == 0) {
      args.push_back("--perf-watch=" + a.substr(9));
    } else if (a == "--diff") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "error: --diff needs two log files (before after)\n");
        return 2;
      }
      diff_a = argv[++i];
      diff_b = argv[++i];
    } else if (a == "--replay") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for --replay\n");
        return 2;
      }
      replay_path = argv[++i];
    } else if (a.rfind("--replay=", 0) == 0) {
      replay_path = a.substr(9);
    } else if (a == "--report") {
      mode = Mode::Report;
    } else if (a == "--flame") {
      mode = Mode::Flame;
    } else if (a == "-J" || a == "--json") {
      mode = Mode::Json;
    } else {
      args.push_back(a);
    }
  }
  if (!diff_a.empty()) return diff(diff_a, diff_b, mode);
  if (!replay_path.empty()) return replay(replay_path, mode);

  auto opts = dtnsim::cli::parse_cli(args);
  if (!opts.error.empty()) {
    std::fprintf(stderr, "error: %s\n\n%s", opts.error.c_str(),
                 dtnsim::cli::cli_help().c_str());
    return 2;
  }
  if (opts.show_help) {
    std::fputs(
        "dtnsim-perf — exact per-stage CPU-cycle attribution of a dtnsim run\n"
        "\n"
        "tool flags:\n"
        "      --record SEC     sample every SEC of simulated time\n"
        "      --report         perf-report-style text output (default)\n"
        "      --flame          collapsed stacks for flamegraph.pl\n"
        "      --replay FILE    render a recorded log, no simulation\n"
        "      --diff A B       with --flame: differential stacks between two\n"
        "                       recorded logs (difffolded.pl shape)\n"
        "  -J, --json           emit the attribution log as JSON\n"
        "      --perf-out FILE  also write the JSON log to FILE\n"
        "\n"
        "scenario flags (shared with dtnsim-iperf3):\n",
        stdout);
    std::fputs(dtnsim::cli::cli_help().c_str(), stdout);
    return 0;
  }
  opts.force_perf = true;
  opts.iperf.json = false;  // the run itself stays quiet; we print samples

  dtnsim::harness::TestSpec spec;
  try {
    spec = dtnsim::cli::spec_from_cli(opts);
  } catch (const std::exception& e) {  // unknown testbed or path name
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto result = dtnsim::harness::run_test(spec);
  const auto& log = result.perf_log;
  if (log.empty()) {
    std::fprintf(stderr, "error: run produced no samples\n");
    return 1;
  }
  if (!opts.perf_out.empty() && !dtnsim::obs::write_perf_log(opts.perf_out, log)) {
    std::fprintf(stderr, "error: cannot write perf log to %s\n",
                 opts.perf_out.c_str());
    return 1;
  }
  render(log, mode);
  return 0;
}
