// Command-line front end: an iperf3-flag-compatible driver for the
// simulator (tools/dtnsim-iperf3) plus the advisor CLI. Parsing lives here
// so it is unit-testable; the tool binaries are thin mains.
//
// Supported surface (mirrors the patched iperf3 v3.17 where it makes sense):
//   -P/--parallel N         parallel streams
//   -t/--time SEC           duration
//   -C/--congestion ALGO    cubic | bbr | bbr3 | reno
//   --fq-rate RATE          per-stream pacing; accepts 50G / 500M / 1000000
//   -Z/--zerocopy[=z]       MSG_ZEROCOPY send path
//   --skip-rx-copy          MSG_TRUNC receive
//   -J/--json               JSON output (iperf3 schema subset)
// Simulator extensions:
//   --testbed NAME          amlight | amlight-baremetal | esnet | production
//   --path NAME             e.g. "WAN 63ms" (default: the testbed LAN)
//   --kernel VER            5.10 | 5.15 | 6.5 | 6.8 | 6.11
//   --optmem BYTES          net.core.optmem_max (accepts suffixes)
//   --big-tcp [SIZE]        enable BIG TCP (default 150K)
//   --ring N                RX/TX descriptors
//   --repeats N             harness repeats (default 1)
//   --seed N                RNG seed
//   --jobs N                worker threads for batch runs (0 = hw threads)
// Observability (see docs/OBSERVABILITY.md):
//   --probe-interval SEC    telemetry sampling cadence (iperf3 -i analogue)
//   --metrics-out PATH      per-interval metric series -> CSV
//   --trace-out PATH        chrome://tracing / Perfetto trace_event JSON
//   --trace-stream PATH     stream events to PATH as recorded (no capacity cap)
//   --ss-watch SEC          kernel-eye ss/ethtool/tc snapshots every SEC
//   --ss-out PATH           snapshot log -> JSON (dtnsim-ss --replay input)
//   --perf-watch SEC        per-stage cycle attribution samples every SEC
//   --perf-out PATH         perf log -> JSON (dtnsim-perf --replay input)
// Scenario (see docs/SCENARIO.md):
//   --scenario PATH         mid-run fault/condition timeline (JSON)
//   --scenario-out PATH     event log of repeat 0 -> JSON
//   --record-timeline PATH  crossed events -> loadable timeline JSON
// Report (see docs/REPORT.md):
//   --record-out PATH       whole run -> one RunRecord JSON artifact
// Long flags also accept --flag=value.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dtnsim/harness/runner.hpp"

namespace dtnsim::cli {
using app::IperfOptions;

// "50G" -> 50e9, "1.5m" -> 1.5e6, "1048576" -> 1048576. nullopt on garbage.
std::optional<double> parse_rate(const std::string& text);

std::optional<kern::KernelVersion> parse_kernel(const std::string& text);
std::optional<kern::CongestionAlgo> parse_congestion(const std::string& text);

struct CliOptions {
  bool show_help = false;
  std::string error;  // non-empty -> parse failed, message for the user

  std::string testbed = "esnet";
  std::string path;           // empty -> testbed LAN
  kern::KernelVersion kernel = kern::KernelVersion::V6_8;
  IperfOptions iperf;
  double optmem_max = -1.0;   // < 0 -> testbed default
  bool big_tcp = false;
  double big_tcp_bytes = 150.0 * 1024.0;
  int ring = -1;              // < 0 -> testbed default
  int repeats = 1;
  std::uint64_t seed = 0x5eed;
  // Worker pool size for batch execution (harness::run_tests / the sweep
  // campaign engine). 1 = serial, 0 = one worker per hardware thread. A
  // single-spec run ignores it.
  int jobs = 1;
  // Telemetry: any of these switches the probe/trace machinery on.
  double probe_interval_sec = 1.0;
  std::string metrics_out;    // "" -> no CSV series written
  std::string trace_out;      // "" -> no chrome trace written
  std::string trace_stream;   // "" -> no streamed trace (see StreamingTraceSink)
  // Kernel-eye snapshots (dtnsim-ss): watch cadence in simulated seconds
  // (0 = end-of-run snapshot only) and the JSON log destination. Either
  // flag — or force_ss (the dtnsim-ss front end) — enables snapshotting.
  double ss_watch_sec = 0.0;
  std::string ss_out;
  bool force_ss = false;
  // Per-stage cycle attribution (dtnsim-perf): sampler cadence in simulated
  // seconds (0 = end-of-run report only) and the JSON log destination.
  // Either flag — or force_perf (the dtnsim-perf front end) — enables the
  // attribution accumulators.
  double perf_watch_sec = 0.0;
  std::string perf_out;
  bool force_perf = false;
  // Mid-run fault/condition timeline (docs/SCENARIO.md): a JSON timeline to
  // load and the destination for repeat 0's event log.
  std::string scenario_file;
  std::string scenario_out;
  // Unified run record (docs/REPORT.md): bundle summary + series + ss/perf
  // logs + scenario events + derived analysis into one JSON artifact.
  // Implies telemetry + ss + perf.
  std::string record_out;
  // Re-emit the events repeat 0 crossed as a validate()-clean timeline that
  // --scenario can load back (the inverse of running one). Requires
  // --scenario.
  std::string record_timeline;
};

CliOptions parse_cli(const std::vector<std::string>& args);

std::string cli_help();

// Build the harness spec a parsed command line describes. Throws
// std::invalid_argument for an unknown testbed/path.
harness::TestSpec spec_from_cli(const CliOptions& opts);

// Run and render (text or JSON). Returns a process exit code.
int run_cli(const CliOptions& opts, std::string& output);

}  // namespace dtnsim::cli
