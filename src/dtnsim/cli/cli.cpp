#include "dtnsim/cli/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::cli {
using app::IperfOptions;

std::optional<double> parse_rate(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) return std::nullopt;
  std::string suffix(end);
  if (suffix.empty()) return value;
  if (suffix.size() != 1) return std::nullopt;
  switch (std::tolower(static_cast<unsigned char>(suffix[0]))) {
    case 'k':
      return value * 1e3;
    case 'm':
      return value * 1e6;
    case 'g':
      return value * 1e9;
    case 't':
      return value * 1e12;
    default:
      return std::nullopt;
  }
}

std::optional<kern::KernelVersion> parse_kernel(const std::string& text) {
  if (text == "5.10") return kern::KernelVersion::V5_10;
  if (text == "5.15") return kern::KernelVersion::V5_15;
  if (text == "6.5") return kern::KernelVersion::V6_5;
  if (text == "6.8") return kern::KernelVersion::V6_8;
  if (text == "6.11") return kern::KernelVersion::V6_11;
  return std::nullopt;
}

std::optional<kern::CongestionAlgo> parse_congestion(const std::string& text) {
  if (text == "cubic") return kern::CongestionAlgo::Cubic;
  if (text == "bbr") return kern::CongestionAlgo::BbrV1;
  if (text == "bbr3") return kern::CongestionAlgo::BbrV3;
  if (text == "reno") return kern::CongestionAlgo::Reno;
  return std::nullopt;
}

namespace {

bool needs_value(const std::string& flag) {
  return flag == "-P" || flag == "--parallel" || flag == "-t" || flag == "--time" ||
         flag == "-C" || flag == "--congestion" || flag == "--fq-rate" ||
         flag == "--testbed" || flag == "--path" || flag == "--kernel" ||
         flag == "--optmem" || flag == "--ring" || flag == "--repeats" ||
         flag == "--seed" || flag == "--jobs" || flag == "--probe-interval" ||
         flag == "--metrics-out" || flag == "--trace-out" || flag == "--trace-stream" ||
         flag == "--ss-watch" || flag == "--ss-out" || flag == "--perf-watch" ||
         flag == "--perf-out" || flag == "--scenario" || flag == "--scenario-out" ||
         flag == "--record-out" || flag == "--record-timeline";
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string flag = args[i];
    std::string value;
    bool has_inline_value = false;
    // Long flags accept --flag=value; "--zerocopy=z" stays a valid spelling.
    if (flag.rfind("--", 0) == 0) {
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
        has_inline_value = true;
      }
    }
    if (flag == "--zerocopy" && has_inline_value) {
      if (value != "z") {
        o.error = "bad --zerocopy mode: " + value;
        return o;
      }
      has_inline_value = false;  // handled below as the plain switch
      value.clear();
    }
    if (flag == "--big-tcp" && has_inline_value) {
      const auto sz = parse_rate(value);
      if (!sz) {
        o.error = "bad --big-tcp size: " + value;
        return o;
      }
      o.big_tcp = true;
      o.big_tcp_bytes = *sz;
      continue;
    }
    if (needs_value(flag) && !has_inline_value) {
      if (i + 1 >= args.size()) {
        o.error = "missing value for " + flag;
        return o;
      }
      value = args[++i];
    } else if (has_inline_value && !needs_value(flag)) {
      o.error = "flag does not take a value: " + flag;
      return o;
    }

    if (flag == "-h" || flag == "--help") {
      o.show_help = true;
    } else if (flag == "-P" || flag == "--parallel") {
      o.iperf.parallel = std::atoi(value.c_str());
      if (o.iperf.parallel < 1 || o.iperf.parallel > 128) {
        o.error = "parallel streams must be in [1, 128]";
        return o;
      }
    } else if (flag == "-t" || flag == "--time") {
      o.iperf.duration_sec = std::atof(value.c_str());
      if (o.iperf.duration_sec <= 0) {
        o.error = "duration must be positive";
        return o;
      }
    } else if (flag == "-C" || flag == "--congestion") {
      const auto algo = parse_congestion(value);
      if (!algo) {
        o.error = "unknown congestion algorithm: " + value;
        return o;
      }
      o.iperf.congestion = *algo;
    } else if (flag == "--fq-rate") {
      const auto rate = parse_rate(value);
      if (!rate) {
        o.error = "bad --fq-rate: " + value;
        return o;
      }
      o.iperf.fq_rate_bps = *rate;
    } else if (flag == "-Z" || flag == "--zerocopy" || flag == "--zerocopy=z") {
      o.iperf.zerocopy = true;
    } else if (flag == "--skip-rx-copy") {
      o.iperf.skip_rx_copy = true;
    } else if (flag == "-J" || flag == "--json") {
      o.iperf.json = true;
    } else if (flag == "--testbed") {
      o.testbed = value;
    } else if (flag == "--path") {
      o.path = value;
    } else if (flag == "--kernel") {
      const auto k = parse_kernel(value);
      if (!k) {
        o.error = "unknown kernel: " + value + " (5.10/5.15/6.5/6.8/6.11)";
        return o;
      }
      o.kernel = *k;
    } else if (flag == "--optmem") {
      const auto bytes = parse_rate(value);
      if (!bytes) {
        o.error = "bad --optmem: " + value;
        return o;
      }
      o.optmem_max = *bytes;
    } else if (flag == "--big-tcp") {
      o.big_tcp = true;
      // Optional size argument.
      if (i + 1 < args.size() && !args[i + 1].empty() && args[i + 1][0] != '-') {
        if (const auto sz = parse_rate(args[i + 1])) {
          o.big_tcp_bytes = *sz;
          ++i;
        }
      }
    } else if (flag == "--ring") {
      o.ring = std::atoi(value.c_str());
    } else if (flag == "--repeats") {
      o.repeats = std::max(std::atoi(value.c_str()), 1);
    } else if (flag == "--seed") {
      o.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--jobs") {
      char* end = nullptr;
      const long jobs = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size() || jobs < 0) {
        o.error = "bad --jobs (need >= 0; 0 = one per hardware thread): " + value;
        return o;
      }
      o.jobs = static_cast<int>(jobs);
    } else if (flag == "--probe-interval") {
      o.probe_interval_sec = std::atof(value.c_str());
      if (o.probe_interval_sec <= 0) {
        o.error = "probe interval must be positive";
        return o;
      }
    } else if (flag == "--metrics-out") {
      o.metrics_out = value;
    } else if (flag == "--trace-out") {
      o.trace_out = value;
    } else if (flag == "--trace-stream") {
      o.trace_stream = value;
    } else if (flag == "--ss-watch") {
      o.ss_watch_sec = std::atof(value.c_str());
      if (o.ss_watch_sec <= 0) {
        o.error = "ss watch interval must be positive";
        return o;
      }
    } else if (flag == "--ss-out") {
      o.ss_out = value;
    } else if (flag == "--perf-watch") {
      o.perf_watch_sec = std::atof(value.c_str());
      if (o.perf_watch_sec <= 0) {
        o.error = "perf watch interval must be positive";
        return o;
      }
    } else if (flag == "--perf-out") {
      o.perf_out = value;
    } else if (flag == "--scenario") {
      o.scenario_file = value;
    } else if (flag == "--scenario-out") {
      o.scenario_out = value;
    } else if (flag == "--record-out") {
      o.record_out = value;
    } else if (flag == "--record-timeline") {
      o.record_timeline = value;
    } else {
      o.error = "unknown flag: " + flag;
      return o;
    }
  }
  return o;
}

std::string cli_help() {
  return
      "dtnsim-iperf3 — iperf3-compatible driver for the dtnsim simulator\n"
      "\n"
      "iperf3 flags:\n"
      "  -P, --parallel N       parallel streams (multithreaded, iperf3 >= 3.16)\n"
      "  -t, --time SEC         duration per run (default 60)\n"
      "  -C, --congestion A     cubic | bbr | bbr3 | reno\n"
      "      --fq-rate RATE     per-stream pacing, e.g. 50G (patch #1728)\n"
      "  -Z, --zerocopy         MSG_ZEROCOPY sends (patch #1690)\n"
      "      --skip-rx-copy     MSG_TRUNC receives (patch #1690)\n"
      "  -J, --json             JSON output\n"
      "simulator flags:\n"
      "      --testbed NAME     amlight | amlight-baremetal | esnet | production\n"
      "      --path NAME        e.g. 'WAN 63ms' (default: testbed LAN)\n"
      "      --kernel VER       5.10 | 5.15 | 6.5 | 6.8 | 6.11\n"
      "      --optmem BYTES     net.core.optmem_max (e.g. 1M, 3405376)\n"
      "      --big-tcp [SIZE]   enable BIG TCP (default 150K)\n"
      "      --ring N           RX/TX ring descriptors\n"
      "      --repeats N        repeats with seed substreams (default 1)\n"
      "      --seed N           RNG seed\n"
      "      --jobs N           worker threads for batch/sweep runs\n"
      "                         (default 1 = serial; 0 = one per hardware thread)\n"
      "observability flags (docs/OBSERVABILITY.md):\n"
      "      --probe-interval S telemetry sampling cadence in seconds (default 1)\n"
      "      --metrics-out F    write per-interval metric series as CSV\n"
      "      --trace-out F      write chrome://tracing / Perfetto JSON trace\n"
      "      --trace-stream F   stream every trace event to F as it happens\n"
      "                         (no ring-capacity ceiling; first repeat only)\n"
      "      --ss-watch SEC     ss/ethtool/tc snapshots every SEC of sim time\n"
      "      --ss-out F         write the snapshot log as JSON (dtnsim-ss\n"
      "                         --replay reads it back)\n"
      "      --perf-watch SEC   per-stage cycle attribution samples every SEC\n"
      "      --perf-out F       write the perf log as JSON (dtnsim-perf\n"
      "                         --replay reads it back)\n"
      "scenario flags (docs/SCENARIO.md):\n"
      "      --scenario F       mid-run fault/condition timeline (JSON); events\n"
      "                         fire at their scheduled times in every repeat\n"
      "      --scenario-out F   write repeat 0's applied-event log as JSON\n"
      "      --record-timeline F  write the events repeat 0 crossed back out\n"
      "                         as a loadable --scenario timeline (jitter\n"
      "                         already drawn; requires --scenario)\n"
      "report flags (docs/REPORT.md):\n"
      "      --record-out F     bundle the whole run into one RunRecord JSON\n"
      "                         artifact (summary + series + ss/perf logs +\n"
      "                         scenario events + analysis; dtnsim-report\n"
      "                         reads it). Implies telemetry + ss + perf\n";
}

harness::TestSpec spec_from_cli(const CliOptions& opts) {
  // Throws std::invalid_argument for an unknown testbed name.
  const harness::Testbed tb = harness::testbed_by_name(opts.testbed, opts.kernel);

  const std::string path_name = opts.path.empty() ? tb.lan().name : opts.path;
  auto spec = harness::TestSpec::on(tb, path_name, opts.iperf);
  spec.repeats = opts.repeats;
  spec.base_seed = opts.seed;
  for (auto* h : {&spec.sender, &spec.receiver}) {
    if (opts.optmem_max >= 0) h->tuning.sysctl.optmem_max = opts.optmem_max;
    if (opts.big_tcp) {
      h->tuning.big_tcp_enabled = true;
      h->tuning.big_tcp_bytes = opts.big_tcp_bytes;
    }
    if (opts.ring > 0) h->tuning.ring_descriptors = opts.ring;
  }
  const bool wants_ss =
      opts.force_ss || opts.ss_watch_sec > 0 || !opts.ss_out.empty();
  const bool wants_perf =
      opts.force_perf || opts.perf_watch_sec > 0 || !opts.perf_out.empty();
  if (!opts.metrics_out.empty() || !opts.trace_out.empty() ||
      !opts.trace_stream.empty() || wants_ss || wants_perf) {
    spec.telemetry.enabled = true;
    spec.telemetry.probe_interval = units::seconds(opts.probe_interval_sec);
    spec.telemetry.trace_stream_path = opts.trace_stream;
  }
  if (wants_ss) {
    spec.telemetry.ss_enabled = true;
    if (opts.ss_watch_sec > 0) {
      spec.telemetry.ss_interval = units::seconds(opts.ss_watch_sec);
    }
  }
  if (wants_perf) {
    spec.telemetry.perf_enabled = true;
    if (opts.perf_watch_sec > 0) {
      spec.telemetry.perf_interval = units::seconds(opts.perf_watch_sec);
    }
  }
  if (!opts.scenario_file.empty()) {
    // Throws std::runtime_error on a missing file or invalid timeline.
    spec.scenario = scenario::load_timeline(opts.scenario_file);
  }
  spec.record = !opts.record_out.empty();
  return spec;
}

int run_cli(const CliOptions& opts, std::string& output) {
  if (!opts.error.empty()) {
    output = "error: " + opts.error + "\n\n" + cli_help();
    return 2;
  }
  if (opts.show_help) {
    output = cli_help();
    return 0;
  }

  harness::TestSpec spec;
  try {
    spec = spec_from_cli(opts);
  } catch (const std::exception& e) {  // unknown testbed or path name
    output = strfmt("error: %s\n", e.what());
    return 2;
  }
  if (!opts.record_timeline.empty() && opts.scenario_file.empty()) {
    output = "error: --record-timeline requires --scenario (nothing to record)\n";
    return 2;
  }

  const auto result = harness::run_test(spec);

  std::string telemetry_note;
  if (!opts.metrics_out.empty()) {
    std::vector<obs::LabeledSeries> labeled;
    for (std::size_t r = 0; r < result.repeat_series.size(); ++r)
      labeled.push_back({spec.name, static_cast<int>(r), &result.repeat_series[r]});
    if (!obs::write_merged_series_csv(opts.metrics_out, labeled)) {
      output = strfmt("error: cannot write metrics to %s\n", opts.metrics_out.c_str());
      return 1;
    }
    telemetry_note += strfmt("  metrics    : %s\n", opts.metrics_out.c_str());
  }
  if (!opts.trace_out.empty() && result.trace) {
    if (!result.trace->write_file(opts.trace_out, spec.name)) {
      output = strfmt("error: cannot write trace to %s\n", opts.trace_out.c_str());
      return 1;
    }
    telemetry_note += strfmt("  trace      : %s\n", opts.trace_out.c_str());
  }
  if (!opts.trace_stream.empty()) {
    telemetry_note += strfmt("  stream     : %s\n", opts.trace_stream.c_str());
  }
  if (!opts.ss_out.empty()) {
    if (!obs::write_ss_log(opts.ss_out, result.ss_log)) {
      output = strfmt("error: cannot write ss log to %s\n", opts.ss_out.c_str());
      return 1;
    }
    telemetry_note += strfmt("  ss log     : %s (%zu snapshot%s)\n",
                             opts.ss_out.c_str(), result.ss_log.size(),
                             result.ss_log.size() == 1 ? "" : "s");
  }
  if (!opts.perf_out.empty()) {
    if (!obs::write_perf_log(opts.perf_out, result.perf_log)) {
      output = strfmt("error: cannot write perf log to %s\n", opts.perf_out.c_str());
      return 1;
    }
    telemetry_note += strfmt("  perf log   : %s (%zu sample%s)\n",
                             opts.perf_out.c_str(), result.perf_log.size(),
                             result.perf_log.size() == 1 ? "" : "s");
  }
  if (!opts.scenario_out.empty()) {
    if (!scenario::write_event_log(opts.scenario_out, result.scenario_log)) {
      output =
          strfmt("error: cannot write scenario log to %s\n", opts.scenario_out.c_str());
      return 1;
    }
    telemetry_note += strfmt("  scenario   : %s (%zu event%s)\n",
                             opts.scenario_out.c_str(), result.scenario_log.events.size(),
                             result.scenario_log.events.size() == 1 ? "" : "s");
  }
  if (!opts.record_timeline.empty()) {
    const scenario::Timeline recorded =
        scenario::timeline_from_log(result.scenario_log);
    if (!scenario::write_timeline(opts.record_timeline, recorded)) {
      output = strfmt("error: cannot write timeline to %s\n",
                      opts.record_timeline.c_str());
      return 1;
    }
    telemetry_note += strfmt("  timeline   : %s (%zu event%s)\n",
                             opts.record_timeline.c_str(), recorded.events.size(),
                             recorded.events.size() == 1 ? "" : "s");
  }
  if (!opts.record_out.empty()) {
    if (!result.record ||
        !report::write_run_record(opts.record_out, *result.record)) {
      output = strfmt("error: cannot write run record to %s\n",
                      opts.record_out.c_str());
      return 1;
    }
    telemetry_note += strfmt("  record     : %s\n", opts.record_out.c_str());
  }

  if (opts.iperf.json) {
    Json j = Json::object();
    j["title"] = spec.name;
    j["repeats"] = result.repeats;
    j["end"]["sum_received"]["bits_per_second"] = result.avg_gbps * 1e9;
    j["end"]["sum_received"]["stdev_gbps"] = result.stdev_gbps;
    j["end"]["sum_received"]["min_gbps"] = result.min_gbps;
    j["end"]["sum_received"]["max_gbps"] = result.max_gbps;
    j["end"]["sum_sent"]["retransmits"] = result.avg_retransmits;
    j["end"]["cpu_utilization_percent"]["host_total"] = result.snd_cpu_pct;
    j["end"]["cpu_utilization_percent"]["remote_total"] = result.rcv_cpu_pct;
    Json samples = Json::array();
    for (double g : result.samples_gbps) samples.push_back(g);
    j["samples_gbps"] = std::move(samples);
    output = j.dump(2) + "\n";
  } else {
    output = strfmt(
        "%s\n"
        "  throughput : %.2f Gbps (min %.2f, max %.2f, stdev %.2f, %d repeats)\n"
        "  retransmits: %.0f\n"
        "  sender CPU : %.0f%%   receiver CPU: %.0f%%\n",
        result.name.c_str(), result.avg_gbps, result.min_gbps, result.max_gbps,
        result.stdev_gbps, result.repeats, result.avg_retransmits, result.snd_cpu_pct,
        result.rcv_cpu_pct);
    output += telemetry_note;
  }
  return 0;
}

}  // namespace dtnsim::cli
