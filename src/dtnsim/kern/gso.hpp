// Generic Segmentation Offload arithmetic.
//
// The fluid engine needs counts (how many super-packets, how many wire
// segments) to price CPU work; the packet-level tests need an explicit
// segmentation of a byte stream. Both live here.
#pragma once

#include <cstdint>
#include <vector>

#include "dtnsim/kern/skb.hpp"

namespace dtnsim::kern {

struct GsoCounts {
  double superpackets = 0.0;  // GSO SKBs handed to the driver
  double wire_segments = 0.0; // MTU-sized packets after (NIC) segmentation
  double gso_bytes = 0.0;     // effective super-packet size used
};

// Fractional counts for fluid-rate math.
GsoCounts gso_counts(units::Bytes payload, const SkbCaps& caps, bool zerocopy, units::Bytes mtu);

// Explicit segmentation for packet-level tests: returns per-SKB payloads.
std::vector<double> gso_segment(units::Bytes payload, const SkbCaps& caps, bool zerocopy,
                                units::Bytes mtu);

}  // namespace dtnsim::kern
