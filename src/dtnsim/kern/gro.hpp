// Generic Receive Offload.
//
// The receiver coalesces in-order MTU segments of one flow into aggregates
// of up to gro_max bytes (or until the NAPI flush deadline). Aggregate size
// sets how per-aggregate receive costs amortize — the lever both BIG TCP
// (bigger aggregates) and hardware GRO (same aggregates, near-zero merge
// cost) pull.
#pragma once

#include <optional>
#include <vector>

#include "dtnsim/kern/skb.hpp"

namespace dtnsim::kern {

struct GroCounts {
  double aggregates = 0.0;
  double gro_bytes = 0.0;  // effective aggregate size
};

// Fluid counts for pricing receive work.
GroCounts gro_counts(units::Bytes payload, const SkbCaps& caps, units::Bytes mtu);

// Packet-level aggregator for tests: feed wire segments, harvest aggregates.
class GroEngine {
 public:
  GroEngine(const SkbCaps& caps, units::Bytes mtu);

  // Add one wire segment; returns a completed aggregate when the pending one
  // reaches gro_max (out-of-order or flow changes are flushed by caller).
  std::optional<units::Bytes> add_segment(units::Bytes segment);
  // NAPI flush: whatever is pending becomes an aggregate.
  std::optional<units::Bytes> flush();

  double pending_bytes() const { return pending_.value(); }
  double gro_bytes() const { return gro_bytes_.value(); }

 private:
  units::Bytes gro_bytes_;
  units::Bytes pending_{0.0};
};

}  // namespace dtnsim::kern
