#include "dtnsim/kern/socket_api.hpp"

#include <algorithm>

namespace dtnsim::kern {

const char* sock_err_name(SockErr e) {
  switch (e) {
    case SockErr::Ok:
      return "OK";
    case SockErr::EInval:
      return "EINVAL";
    case SockErr::EAgain:
      return "EAGAIN";
    case SockErr::ENobufs:
      return "ENOBUFS";
  }
  return "?";
}

SimSocket::SimSocket(const SysctlConfig& sysctl, const SkbCaps& caps, units::Bytes mtu)
    : sysctl_(sysctl),
      caps_(caps),
      mtu_(mtu.value()),
      wmem_limit_(sysctl.max_send_window_bytes()),
      zc_(units::Bytes(sysctl.optmem_max)) {}

SockErr SimSocket::set_zerocopy(bool on) {
  so_zerocopy_ = on;
  return SockErr::Ok;
}

SockErr SimSocket::set_max_pacing_rate(units::Rate rate) {
  pacing_rate_ = std::max(rate.bps(), 0.0);
  return SockErr::Ok;
}

double SimSocket::effective_pacing_bps() const {
  // SO_MAX_PACING_RATE is implemented by fq; under fq_codel it is inert.
  return sysctl_.default_qdisc == QdiscKind::Fq ? pacing_rate_ : 0.0;
}

SendResult SimSocket::send(units::Bytes payload, int flags) {
  SendResult res;
  const double bytes = payload.value();
  if (bytes <= 0) return res;

  const bool want_zc = (flags & MSG_ZEROCOPY_FLAG) != 0;
  if (want_zc && !so_zerocopy_) {
    // Linux: sendmsg(MSG_ZEROCOPY) on a socket without SO_ZEROCOPY.
    res.err = SockErr::EInval;
    return res;
  }

  const double room = wmem_limit_ - wmem_used_;
  if (room <= 0) {
    res.err = SockErr::EAgain;
    return res;
  }
  const double queued = std::min(bytes, room);

  if (want_zc) {
    const units::Bytes gso = effective_gso_bytes(caps_, /*zerocopy=*/true, units::Bytes(mtu_));
    const auto plan = zc_.plan_send(units::Bytes(queued), gso);
    res.zc_bytes = plan.zc_bytes;
    res.fallback_bytes = plan.fallback_bytes;  // kernel copies silently
  }

  wmem_used_ += queued;
  res.bytes_queued = queued;
  pending_.push_back(
      PendingRange{send_seq_, queued, want_zc, want_zc && res.fallback_bytes > 0});
  ++send_seq_;
  return res;
}

void SimSocket::on_acked(units::Bytes acked) {
  double remaining = std::max(acked.value(), 0.0);
  wmem_used_ = std::max(wmem_used_ - remaining, 0.0);
  zc_.on_acked(units::Bytes(remaining));

  while (remaining > 0 && !pending_.empty()) {
    PendingRange& front = pending_.front();
    if (front.bytes > remaining + 1e-9) {
      front.bytes -= remaining;
      break;
    }
    remaining -= front.bytes;
    if (front.zerocopy) {
      // Coalesce with the previous queued completion when contiguous and of
      // the same kind — exactly what the kernel's error queue does.
      if (!errq_.empty() && errq_.back().hi + 1 == front.seq &&
          errq_.back().copied == front.fell_back) {
        errq_.back().hi = front.seq;
      } else {
        errq_.push_back(ZcCompletion{front.seq, front.seq, front.fell_back});
      }
    }
    pending_.pop_front();
  }
}

std::optional<ZcCompletion> SimSocket::read_error_queue() {
  if (errq_.empty()) return std::nullopt;
  const ZcCompletion out = errq_.front();
  errq_.pop_front();
  return out;
}

void SimSocket::deliver(units::Bytes payload) { rx_queue_ += std::max(payload.value(), 0.0); }

double SimSocket::recv(units::Bytes max_read, int flags) {
  const double take = std::min(std::max(max_read.value(), 0.0), rx_queue_);
  rx_queue_ -= take;
  if (flags & MSG_TRUNC_FLAG) {
    truncated_ += take;  // discarded, never copied to user space
  } else {
    copied_to_user_ += take;
  }
  return take;
}

}  // namespace dtnsim::kern
