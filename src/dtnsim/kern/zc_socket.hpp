// MSG_ZEROCOPY send-side accounting.
//
// Each zerocopy SKB keeps a notification structure alive until the data is
// ACKed, and that structure is charged against net.core.optmem_max. On a
// long path the in-flight window is huge, the charges accumulate, and once
// optmem is exhausted the kernel silently falls back to copying — after
// paying the failed-pin overhead. That is the entire Fig. 9 story: with the
// default 20 KiB optmem a "zerocopy" WAN transfer is mostly an expensive
// copy; 1 MiB mostly fixes it; ~3.25 MiB covers the 104 ms path fully.
//
// ZcTxSocket implements that accounting with FIFO charge release on ACK.
#pragma once

#include <cstdint>
#include <deque>

#include "dtnsim/units/units.hpp"

namespace dtnsim::kern {

// optmem charged per in-flight zerocopy super-packet: one ubuf_info plus the
// error-queue notification skb overhead.
inline constexpr double kZcChargePerSuperPkt = 160.0;

class ZcTxSocket {
 public:
  explicit ZcTxSocket(units::Bytes optmem_max) : optmem_max_(optmem_max.value()) {}

  struct SendPlan {
    double zc_bytes = 0.0;        // pinned and sent without copying
    double fallback_bytes = 0.0;  // attempted zerocopy, copied instead
  };

  // Plan sending `payload` as zerocopy super-packets of `superpkt` bytes.
  // Charges optmem for what fits; the remainder falls back to copy.
  SendPlan plan_send(units::Bytes payload, units::Bytes superpkt);

  // Same split as plan_send but without charging — used to price a send
  // before the CPU budget decides how much is actually sent.
  SendPlan preview_send(units::Bytes payload, units::Bytes superpkt) const;

  // ACK `acked` in-flight data; releases charges FIFO. ACKed bytes beyond
  // what was charged (copied bytes interleaved) release nothing.
  void on_acked(units::Bytes acked);

  // Peer reset / flow teardown: release everything.
  void reset();

  double optmem_max() const { return optmem_max_; }
  // `sysctl -w net.core.optmem_max` mid-transfer (scenario SysctlOptmem):
  // the kernel applies the new limit to future charges only — in-flight
  // charges and the high-water mark are left untouched.
  void set_optmem_max(units::Bytes optmem_max) {
    optmem_max_ = optmem_max.value();
  }
  double optmem_used() const { return optmem_used_; }
  double optmem_available() const {
    return optmem_max_ > optmem_used_ ? optmem_max_ - optmem_used_ : 0.0;
  }
  double inflight_zc_bytes() const { return inflight_zc_bytes_; }

  // Lifetime counters (the harness reports fallback ratios).
  double total_zc_bytes() const { return total_zc_; }
  double total_fallback_bytes() const { return total_fallback_; }
  std::uint64_t completions() const { return completions_; }
  // High-water mark of optmem occupancy and the number of plan_send calls
  // that had to fall back — the observability layer's saturation signals.
  double peak_optmem_used() const { return peak_optmem_used_; }
  std::uint64_t fallback_events() const { return fallback_events_; }

 private:
  struct Chunk {
    double bytes;
    double charge;
  };

  double optmem_max_;
  double optmem_used_ = 0.0;
  double peak_optmem_used_ = 0.0;
  std::uint64_t fallback_events_ = 0;
  double inflight_zc_bytes_ = 0.0;
  double total_zc_ = 0.0;
  double total_fallback_ = 0.0;
  std::uint64_t completions_ = 0;
  std::deque<Chunk> inflight_;
};

}  // namespace dtnsim::kern
