#include "dtnsim/kern/version.hpp"

namespace dtnsim::kern {

const char* kernel_version_name(KernelVersion v) {
  switch (v) {
    case KernelVersion::V5_10:
      return "5.10";
    case KernelVersion::V5_15:
      return "5.15";
    case KernelVersion::V6_5:
      return "6.5";
    case KernelVersion::V6_8:
      return "6.8";
    case KernelVersion::V6_11:
      return "6.11";
  }
  return "?";
}

KernelProfile kernel_profile(KernelVersion v) {
  KernelProfile p;
  p.version = v;
  p.name = kernel_version_name(v);
  switch (v) {
    case KernelVersion::V5_10:
      p.major = 5;
      p.minor = 10;
      p.stack_factor_intel = 1.30;
      p.stack_factor_amd = 1.35;
      break;
    case KernelVersion::V5_15:
      p.major = 5;
      p.minor = 15;
      p.stack_factor_intel = 1.27;
      p.stack_factor_amd = 1.31;
      break;
    case KernelVersion::V6_5:
      p.major = 6;
      p.minor = 5;
      p.stack_factor_intel = 1.08;
      p.stack_factor_amd = 1.17;
      break;
    case KernelVersion::V6_8:
      p.major = 6;
      p.minor = 8;
      p.stack_factor_intel = 1.00;
      p.stack_factor_amd = 1.00;
      break;
    case KernelVersion::V6_11:
      p.major = 6;
      p.minor = 11;
      p.stack_factor_intel = 0.97;
      p.stack_factor_amd = 0.97;
      break;
  }
  p.supports_msg_zerocopy = p.at_least(4, 17);
  p.supports_big_tcp_ipv6 = p.at_least(5, 19);
  p.supports_big_tcp_ipv4 = p.at_least(6, 3);
  p.supports_hw_gro = p.at_least(6, 11);
  return p;
}

KernelProfile custom_kernel_with_frags(KernelProfile base, int max_skb_frags) {
  base.max_skb_frags = max_skb_frags;
  base.custom_build = true;
  base.name += "-frags" + std::to_string(max_skb_frags);
  return base;
}

}  // namespace dtnsim::kern
