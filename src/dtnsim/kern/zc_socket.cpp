#include "dtnsim/kern/zc_socket.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::kern {

ZcTxSocket::SendPlan ZcTxSocket::preview_send(units::Bytes payload, units::Bytes superpkt) const {
  SendPlan plan;
  const double bytes = payload.value();
  if (bytes <= 0 || superpkt.value() <= 0) return plan;
  const double charge_per_byte = kZcChargePerSuperPkt / superpkt.value();
  const double chargeable_bytes =
      charge_per_byte > 0 ? optmem_available() / charge_per_byte : bytes;
  plan.zc_bytes = std::min(bytes, chargeable_bytes);
  plan.fallback_bytes = bytes - plan.zc_bytes;
  return plan;
}

ZcTxSocket::SendPlan ZcTxSocket::plan_send(units::Bytes payload, units::Bytes superpkt) {
  SendPlan plan;
  const double bytes = payload.value();
  if (bytes <= 0 || superpkt.value() <= 0) return plan;

  const double charge_per_byte = kZcChargePerSuperPkt / superpkt.value();
  const double chargeable_bytes =
      charge_per_byte > 0 ? optmem_available() / charge_per_byte : bytes;

  plan.zc_bytes = std::min(bytes, chargeable_bytes);
  plan.fallback_bytes = bytes - plan.zc_bytes;

  if (plan.zc_bytes > 0) {
    const double charge = plan.zc_bytes * charge_per_byte;
    optmem_used_ += charge;
    peak_optmem_used_ = std::max(peak_optmem_used_, optmem_used_);
    inflight_zc_bytes_ += plan.zc_bytes;
    inflight_.push_back(Chunk{plan.zc_bytes, charge});
    total_zc_ += plan.zc_bytes;
  }
  if (plan.fallback_bytes > 0) ++fallback_events_;
  total_fallback_ += plan.fallback_bytes;
  return plan;
}

void ZcTxSocket::on_acked(units::Bytes acked) {
  double remaining = std::max(acked.value(), 0.0);
  while (remaining > 0 && !inflight_.empty()) {
    Chunk& front = inflight_.front();
    if (front.bytes <= remaining + 1e-9) {
      remaining -= front.bytes;
      optmem_used_ -= front.charge;
      inflight_zc_bytes_ -= front.bytes;
      ++completions_;
      inflight_.pop_front();
    } else {
      const double frac = remaining / front.bytes;
      const double charge_released = front.charge * frac;
      optmem_used_ -= charge_released;
      inflight_zc_bytes_ -= remaining;
      front.bytes -= remaining;
      front.charge -= charge_released;
      remaining = 0;
    }
  }
  optmem_used_ = std::max(optmem_used_, 0.0);
  inflight_zc_bytes_ = std::max(inflight_zc_bytes_, 0.0);
}

void ZcTxSocket::reset() {
  inflight_.clear();
  optmem_used_ = 0.0;
  inflight_zc_bytes_ = 0.0;
}

}  // namespace dtnsim::kern
