// Kernel version profiles and feature gates.
//
// The paper benchmarks Ubuntu's 5.15 (22.04 stock), 6.5 (22.04 HWE) and 6.8
// (24.04 stock / 22.04 edge HWE) kernels, plus Debian 11's 5.10 for the
// VM-validation experiment and 6.11 for the hardware-GRO future-work runs.
// Each profile carries:
//   - feature availability (MSG_ZEROCOPY >= 4.17, BIG TCP IPv6 >= 5.19,
//     BIG TCP IPv4 >= 6.3, hardware GRO >= 6.11 on ConnectX-7),
//   - MAX_SKB_FRAGS (17 stock; 45 on the custom build that lets BIG TCP and
//     MSG_ZEROCOPY coexist),
//   - per-vendor stack efficiency factors calibrated to the paper's measured
//     kernel-to-kernel gains (AMD: +12% 5.15->6.5, +17% 6.5->6.8; Intel:
//     +27% LAN 5.15->6.8).
#pragma once

#include <string>

#include "dtnsim/cpu/spec.hpp"

namespace dtnsim::kern {

enum class KernelVersion { V5_10, V5_15, V6_5, V6_8, V6_11 };

const char* kernel_version_name(KernelVersion v);

struct KernelProfile {
  KernelVersion version = KernelVersion::V6_8;
  std::string name = "6.8";
  int major = 6;
  int minor = 8;

  bool supports_msg_zerocopy = true;  // Linux >= 4.17
  bool supports_big_tcp_ipv6 = true;  // Linux >= 5.19
  bool supports_big_tcp_ipv4 = true;  // Linux >= 6.3
  bool supports_hw_gro = false;       // Linux >= 6.11 + ConnectX-7

  // MAX_SKB_FRAGS: stock 17; CONFIG tweak to 45 enables BIG TCP+zerocopy.
  int max_skb_frags = 17;
  bool custom_build = false;

  double stack_factor_intel = 1.0;
  double stack_factor_amd = 1.0;

  double stack_factor(cpu::Vendor vendor) const {
    switch (vendor) {
      case cpu::Vendor::Intel:
        return stack_factor_intel;
      case cpu::Vendor::Amd:
        return stack_factor_amd;
      case cpu::Vendor::Generic:
        return (stack_factor_intel + stack_factor_amd) / 2.0;
    }
    return stack_factor_intel;
  }

  bool at_least(int maj, int min) const {
    return major > maj || (major == maj && minor >= min);
  }
};

KernelProfile kernel_profile(KernelVersion v);

// The paper's future-work custom kernel: same base version, but compiled
// with CONFIG MAX_SKB_FRAGS=45 so BIG TCP and MSG_ZEROCOPY can combine.
KernelProfile custom_kernel_with_frags(KernelProfile base, int max_skb_frags);

}  // namespace dtnsim::kern
