#include "dtnsim/kern/gro.hpp"

#include <algorithm>

namespace dtnsim::kern {

GroCounts gro_counts(double bytes, const SkbCaps& caps, double mtu_bytes) {
  GroCounts out;
  if (bytes <= 0) return out;
  out.gro_bytes = effective_gro_bytes(caps, mtu_bytes);
  out.aggregates = bytes / out.gro_bytes;
  return out;
}

GroEngine::GroEngine(const SkbCaps& caps, double mtu_bytes)
    : gro_bytes_(effective_gro_bytes(caps, mtu_bytes)) {}

std::optional<double> GroEngine::add_segment(double seg_bytes) {
  pending_ += std::max(seg_bytes, 0.0);
  if (pending_ >= gro_bytes_) {
    const double out = pending_;
    pending_ = 0.0;
    return out;
  }
  return std::nullopt;
}

std::optional<double> GroEngine::flush() {
  if (pending_ <= 0.0) return std::nullopt;
  const double out = pending_;
  pending_ = 0.0;
  return out;
}

}  // namespace dtnsim::kern
