#include "dtnsim/kern/gro.hpp"

#include <algorithm>

namespace dtnsim::kern {

GroCounts gro_counts(units::Bytes payload, const SkbCaps& caps, units::Bytes mtu) {
  GroCounts out;
  if (payload.value() <= 0) return out;
  out.gro_bytes = effective_gro_bytes(caps, mtu).value();
  out.aggregates = payload.value() / out.gro_bytes;
  return out;
}

GroEngine::GroEngine(const SkbCaps& caps, units::Bytes mtu)
    : gro_bytes_(effective_gro_bytes(caps, mtu)) {}

std::optional<units::Bytes> GroEngine::add_segment(units::Bytes segment) {
  pending_ += std::max(segment, units::Bytes{0.0});
  if (pending_ >= gro_bytes_) {
    const units::Bytes out = pending_;
    pending_ = units::Bytes{0.0};
    return out;
  }
  return std::nullopt;
}

std::optional<units::Bytes> GroEngine::flush() {
  if (pending_ <= units::Bytes{0.0}) return std::nullopt;
  const units::Bytes out = pending_;
  pending_ = units::Bytes{0.0};
  return out;
}

}  // namespace dtnsim::kern
