#include "dtnsim/kern/skb.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::kern {

SkbCaps skb_caps(const KernelProfile& kernel, bool big_tcp_enabled, double big_tcp_size) {
  SkbCaps caps;
  caps.max_skb_frags = kernel.max_skb_frags;
  if (big_tcp_enabled && kernel.supports_big_tcp_ipv4) {
    caps.gso_max_bytes = std::clamp(big_tcp_size, kLegacyGsoMax, kBigTcpGsoMaxIpv4);
    caps.gro_max_bytes = caps.gso_max_bytes;
  }
  return caps;
}

double effective_gso_bytes(const SkbCaps& caps, bool zerocopy, double mtu_bytes) {
  const double frag_unit = zerocopy ? kPageBytes : kCopyFragBytes;
  // One frag slot stays reserved for the protocol header page.
  const double frag_limited = std::max(caps.max_skb_frags - 1, 1) * frag_unit;
  return std::max(std::min(caps.gso_max_bytes, frag_limited), mtu_bytes);
}

double effective_gro_bytes(const SkbCaps& caps, double mtu_bytes) {
  const double frag_limited = std::max(caps.max_skb_frags - 1, 1) * kCopyFragBytes;
  return std::max(std::min(caps.gro_max_bytes, frag_limited), mtu_bytes);
}

int skbs_for_send(double bytes, const SkbCaps& caps, bool zerocopy, double mtu_bytes) {
  if (bytes <= 0) return 0;
  const double gso = effective_gso_bytes(caps, zerocopy, mtu_bytes);
  return static_cast<int>(std::ceil(bytes / gso));
}

}  // namespace dtnsim::kern
