#include "dtnsim/kern/skb.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::kern {

SkbCaps skb_caps(const KernelProfile& kernel, bool big_tcp_enabled, units::Bytes big_tcp_size) {
  SkbCaps caps;
  caps.max_skb_frags = kernel.max_skb_frags;
  if (big_tcp_enabled && kernel.supports_big_tcp_ipv4) {
    caps.gso_max_bytes = std::clamp(big_tcp_size.value(), kLegacyGsoMax, kBigTcpGsoMaxIpv4);
    caps.gro_max_bytes = caps.gso_max_bytes;
  }
  return caps;
}

units::Bytes effective_gso_bytes(const SkbCaps& caps, bool zerocopy, units::Bytes mtu) {
  const double frag_unit = zerocopy ? kPageBytes : kCopyFragBytes;
  // One frag slot stays reserved for the protocol header page.
  const double frag_limited = std::max(caps.max_skb_frags - 1, 1) * frag_unit;
  return units::Bytes(std::max(std::min(caps.gso_max_bytes, frag_limited), mtu.value()));
}

units::Bytes effective_gro_bytes(const SkbCaps& caps, units::Bytes mtu) {
  const double frag_limited = std::max(caps.max_skb_frags - 1, 1) * kCopyFragBytes;
  return units::Bytes(std::max(std::min(caps.gro_max_bytes, frag_limited), mtu.value()));
}

int skbs_for_send(units::Bytes payload, const SkbCaps& caps, bool zerocopy, units::Bytes mtu) {
  if (payload.value() <= 0) return 0;
  const units::Bytes gso = effective_gso_bytes(caps, zerocopy, mtu);
  return static_cast<int>(std::ceil(payload / gso));
}

}  // namespace dtnsim::kern
