// The sysctl surface the paper tunes.
//
// `fasterdata_tuned()` is the paper's /etc/sysctl.conf verbatim (2 GiB
// buffers, fq qdisc, no-metrics-save, 1 MiB optmem_max); `linux_defaults()`
// is what a stock host ships with, which is what the TuningAdvisor warns
// about.
#pragma once

#include <cstdint>
#include <string>

namespace dtnsim::kern {

enum class QdiscKind { Fq, FqCodel };

const char* qdisc_name(QdiscKind q);

enum class CongestionAlgo { Cubic, BbrV1, BbrV3, Reno };

const char* congestion_name(CongestionAlgo c);

struct SysctlConfig {
  // net.core.{rmem,wmem}_max
  double rmem_max = 212992;
  double wmem_max = 212992;
  // net.ipv4.tcp_rmem / tcp_wmem (min, default, max)
  double tcp_rmem_min = 4096, tcp_rmem_def = 131072, tcp_rmem_max = 6291456;
  double tcp_wmem_min = 4096, tcp_wmem_def = 16384, tcp_wmem_max = 4194304;
  // net.ipv4.tcp_no_metrics_save — prevents CWND caching between tests.
  bool tcp_no_metrics_save = false;
  // net.core.default_qdisc
  QdiscKind default_qdisc = QdiscKind::FqCodel;
  // net.core.optmem_max — ancillary buffer limit; MSG_ZEROCOPY charges its
  // in-flight notification state against it (paper §IV-A/B, Fig. 9).
  double optmem_max = 20480;
  // net.ipv4.tcp_congestion_control
  CongestionAlgo congestion = CongestionAlgo::Cubic;

  static SysctlConfig linux_defaults();
  // fasterdata.es.net 100G tuning as listed in the paper §III-D.
  static SysctlConfig fasterdata_tuned();

  // Effective socket-buffer-derived window limits. Linux reserves roughly
  // half of tcp_{r,w}mem for metadata/overhead, so the usable data window is
  // about half the byte limit.
  double max_send_window_bytes() const { return tcp_wmem_max * 0.5; }
  double max_recv_window_bytes() const { return tcp_rmem_max * 0.5; }
};

}  // namespace dtnsim::kern
