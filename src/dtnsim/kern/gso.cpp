#include "dtnsim/kern/gso.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::kern {

GsoCounts gso_counts(units::Bytes payload, const SkbCaps& caps, bool zerocopy,
                     units::Bytes mtu) {
  GsoCounts out;
  const double bytes = payload.value();
  if (bytes <= 0) return out;
  out.gso_bytes = effective_gso_bytes(caps, zerocopy, mtu).value();
  out.superpackets = bytes / out.gso_bytes;
  // TCP payload per wire segment: MTU minus IPv4+TCP headers (40 bytes,
  // timestamps ignored at this granularity).
  const double mss = std::max(mtu.value() - 40.0, 1.0);
  out.wire_segments = bytes / mss;
  return out;
}

std::vector<double> gso_segment(units::Bytes payload, const SkbCaps& caps, bool zerocopy,
                                units::Bytes mtu) {
  std::vector<double> skbs;
  const double gso = effective_gso_bytes(caps, zerocopy, mtu).value();
  double bytes = payload.value();
  while (bytes > 0) {
    const double take = std::min(bytes, gso);
    skbs.push_back(take);
    bytes -= take;
  }
  return skbs;
}

}  // namespace dtnsim::kern
