#include "dtnsim/kern/gso.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::kern {

GsoCounts gso_counts(units::Bytes payload, const SkbCaps& caps, bool zerocopy,
                     units::Bytes mtu) {
  GsoCounts out;
  const units::Bytes bytes = payload;
  if (bytes <= units::Bytes{0.0}) return out;
  const units::Bytes gso = effective_gso_bytes(caps, zerocopy, mtu);
  out.gso_bytes = gso.value();
  out.superpackets = bytes / gso;
  // TCP payload per wire segment: MTU minus IPv4+TCP headers (40 bytes,
  // timestamps ignored at this granularity).
  const units::Bytes mss = std::max(mtu - units::Bytes{40.0}, units::Bytes{1.0});
  out.wire_segments = bytes / mss;
  return out;
}

std::vector<double> gso_segment(units::Bytes payload, const SkbCaps& caps, bool zerocopy,
                                units::Bytes mtu) {
  std::vector<double> skbs;
  const units::Bytes gso = effective_gso_bytes(caps, zerocopy, mtu);
  units::Bytes bytes = payload;
  while (bytes > units::Bytes{0.0}) {
    const units::Bytes take = std::min(bytes, gso);
    skbs.push_back(take.value());
    bytes -= take;
  }
  return skbs;
}

}  // namespace dtnsim::kern
