// Linux-socket-shaped API over the simulated send/receive paths.
//
// The paper's tooling talks to three kernel interfaces: SO_ZEROCOPY +
// MSG_ZEROCOPY with completions on the error queue, MSG_TRUNC receives, and
// SO_MAX_PACING_RATE (what --fq-rate sets). SimSocket reproduces those
// semantics — including the sharp edges: MSG_ZEROCOPY without SO_ZEROCOPY
// fails with EINVAL exactly like Linux, completions arrive as byte ranges
// on the error queue and may coalesce, and pacing only takes effect when
// the qdisc is fq.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "dtnsim/kern/skb.hpp"
#include "dtnsim/kern/sysctl.hpp"
#include "dtnsim/kern/zc_socket.hpp"

namespace dtnsim::kern {

enum class SockErr {
  Ok = 0,
  EInval,   // MSG_ZEROCOPY without SO_ZEROCOPY
  EAgain,   // send buffer full
  ENobufs,  // optmem exhausted AND fallback disabled (diagnostics mode)
};

const char* sock_err_name(SockErr e);

// sendmsg/recvmsg flag bits (values match the Linux UAPI for familiarity).
inline constexpr int MSG_TRUNC_FLAG = 0x20;
inline constexpr int MSG_ZEROCOPY_FLAG = 0x4000000;

struct SendResult {
  SockErr err = SockErr::Ok;
  double bytes_queued = 0.0;
  double zc_bytes = 0.0;        // pinned, completion pending
  double fallback_bytes = 0.0;  // silently copied (the Linux behaviour)
};

// A zerocopy completion notification from the error queue: the [lo, hi]
// range of send calls whose pages may be reused. `copied` mirrors
// SO_EE_CODE_ZEROCOPY_COPIED: the kernel fell back to copying this range.
struct ZcCompletion {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool copied = false;
};

class SimSocket {
 public:
  // `sysctl` supplies optmem_max and wmem; `caps` the SKB geometry;
  // `qdisc` gates whether SO_MAX_PACING_RATE is honoured.
  SimSocket(const SysctlConfig& sysctl, const SkbCaps& caps, units::Bytes mtu);

  // --- setsockopt ---------------------------------------------------------
  SockErr set_zerocopy(bool on);                 // SO_ZEROCOPY
  SockErr set_max_pacing_rate(units::Rate rate);  // SO_MAX_PACING_RATE
  bool zerocopy_enabled() const { return so_zerocopy_; }
  // Effective pacing rate: 0 when the qdisc cannot pace.
  double effective_pacing_bps() const;

  // --- send path ----------------------------------------------------------
  // Queue `payload` with `flags`. MSG_ZEROCOPY requires SO_ZEROCOPY. Returns
  // how much was queued and how the zerocopy/fallback split landed.
  SendResult send(units::Bytes payload, int flags);

  // The network ACKed `acked` bytes: frees wmem and releases zerocopy
  // charges; completed send-call ranges appear on the error queue.
  void on_acked(units::Bytes acked);

  // MSG_ERRQUEUE read: pop the next (possibly coalesced) completion.
  std::optional<ZcCompletion> read_error_queue();

  // --- receive path --------------------------------------------------------
  // Deliver `payload` into the receive queue (from the network).
  void deliver(units::Bytes payload);
  // recv with optional MSG_TRUNC (discard without copying).
  double recv(units::Bytes max_read, int flags);
  double rx_queue_bytes() const { return rx_queue_; }

  // --- introspection --------------------------------------------------------
  double wmem_used() const { return wmem_used_; }
  double wmem_limit() const { return wmem_limit_; }
  double optmem_used() const { return zc_.optmem_used(); }
  std::uint32_t send_calls() const { return send_seq_; }
  double bytes_copied_to_user() const { return copied_to_user_; }
  double bytes_truncated() const { return truncated_; }

 private:
  struct PendingRange {
    std::uint32_t seq;
    double bytes;
    bool zerocopy;
    bool fell_back;
  };

  SysctlConfig sysctl_;
  SkbCaps caps_;
  double mtu_;
  double wmem_limit_;
  double wmem_used_ = 0.0;
  bool so_zerocopy_ = false;
  double pacing_rate_ = 0.0;
  ZcTxSocket zc_;
  std::uint32_t send_seq_ = 0;
  std::deque<PendingRange> pending_;
  std::deque<ZcCompletion> errq_;
  double rx_queue_ = 0.0;
  double copied_to_user_ = 0.0;
  double truncated_ = 0.0;
};

}  // namespace dtnsim::kern
