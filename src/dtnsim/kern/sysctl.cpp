#include "dtnsim/kern/sysctl.hpp"

namespace dtnsim::kern {

const char* qdisc_name(QdiscKind q) {
  switch (q) {
    case QdiscKind::Fq:
      return "fq";
    case QdiscKind::FqCodel:
      return "fq_codel";
  }
  return "?";
}

const char* congestion_name(CongestionAlgo c) {
  switch (c) {
    case CongestionAlgo::Cubic:
      return "cubic";
    case CongestionAlgo::BbrV1:
      return "bbr";
    case CongestionAlgo::BbrV3:
      return "bbr3";
    case CongestionAlgo::Reno:
      return "reno";
  }
  return "?";
}

SysctlConfig SysctlConfig::linux_defaults() { return SysctlConfig{}; }

SysctlConfig SysctlConfig::fasterdata_tuned() {
  SysctlConfig s;
  s.rmem_max = 2147483647.0;
  s.wmem_max = 2147483647.0;
  s.tcp_rmem_min = 4096;
  s.tcp_rmem_def = 131072;
  s.tcp_rmem_max = 2147483647.0;
  s.tcp_wmem_min = 4096;
  s.tcp_wmem_def = 16384;
  s.tcp_wmem_max = 2147483647.0;
  s.tcp_no_metrics_save = true;
  s.default_qdisc = QdiscKind::Fq;
  s.optmem_max = 1048576;  // "needed for MSG_ZEROCOPY"
  s.congestion = CongestionAlgo::Cubic;
  return s;
}

}  // namespace dtnsim::kern
