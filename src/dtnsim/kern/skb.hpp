// SKB geometry: super-packet (GSO/GRO) sizing under frag-count limits.
//
// This is where BIG TCP and MSG_ZEROCOPY collide. A zerocopy send pins the
// user's 4 KiB pages, one SKB frag each, so a stock kernel's MAX_SKB_FRAGS=17
// caps a zerocopy super-packet near 64 KiB no matter what gso_max_size says.
// The copy path fills 32 KiB compound-page frags, so BIG TCP (up to 512 KiB)
// works on stock kernels — but only without zerocopy. Rebuilding with
// MAX_SKB_FRAGS=45 (paper §V-C) lifts the zerocopy cap to ~180 KiB.
#pragma once

#include "dtnsim/kern/version.hpp"
#include "dtnsim/units/units.hpp"

namespace dtnsim::kern {

inline constexpr double kPageBytes = 4096.0;
inline constexpr double kCopyFragBytes = 32768.0;  // order-3 compound pages
inline constexpr double kLegacyGsoMax = 65536.0;   // pre-BIG-TCP ceiling
inline constexpr double kBigTcpGsoMaxIpv4 = 524288.0;
inline constexpr double kBigTcpGsoMaxIpv6 = 524288.0;

struct SkbCaps {
  double gso_max_bytes = kLegacyGsoMax;  // ip link gso_ipv4_max_size
  double gro_max_bytes = kLegacyGsoMax;  // ip link gro_ipv4_max_size
  int max_skb_frags = 17;                // kernel CONFIG value
};

// SKB caps for a kernel profile with BIG TCP optionally enabled at
// `big_tcp_size` (the paper uses 150 KiB). Disabled or unsupported
// kernels keep the 64 KiB legacy ceiling.
SkbCaps skb_caps(const KernelProfile& kernel, bool big_tcp_enabled, units::Bytes big_tcp_size);

// Largest TX super-packet actually buildable: frag-count times frag unit
// (4 KiB pinned pages under zerocopy, 32 KiB compound pages for copies),
// clamped by gso_max and never below one MTU.
units::Bytes effective_gso_bytes(const SkbCaps& caps, bool zerocopy, units::Bytes mtu);

// Largest RX aggregate GRO can build (header frag reserved).
units::Bytes effective_gro_bytes(const SkbCaps& caps, units::Bytes mtu);

// Descriptive single-packet view used by the packet-level tests.
struct Skb {
  double payload_bytes = 0.0;
  int nr_frags = 0;
  bool zerocopy = false;
  double gso_size = 0.0;  // MSS each segment carries on the wire
};

// Build the SKB sequence for sending `payload`; every SKB respects the frag
// and gso limits. Exposed for unit/property tests of the geometry.
int skbs_for_send(units::Bytes payload, const SkbCaps& caps, bool zerocopy, units::Bytes mtu);

}  // namespace dtnsim::kern
