#include "dtnsim/net/nic.hpp"

#include <algorithm>

namespace dtnsim::net {
namespace {

// Fraction of the ring that is realistically available to absorb one flow's
// trains (descriptors are shared across queues and replenished in batches).
constexpr double kRingCreditFactor = 0.5;
// Fraction of the overflow excess that actually becomes drops within a tick
// (trains and replenishment interleave; not every excess byte dies).
constexpr double kDropSeverity = 0.5;

}  // namespace

NicSpec connectx5_100g() {
  NicSpec s;
  s.model = "Nvidia ConnectX-5 (100G)";
  s.line_rate_bps = 100e9;
  s.default_ring_descriptors = 1024;
  s.max_ring_descriptors = 8192;
  s.hw_gro_capable = false;
  s.drain_smooth_bps = 52e9;  // pacing at 50G is loss-free (paper §IV-A)
  s.drain_burst_bps = 42e9;
  return s;
}

NicSpec connectx7_200g() {
  NicSpec s;
  s.model = "Nvidia ConnectX-7 (200G)";
  s.line_rate_bps = 200e9;
  s.default_ring_descriptors = 1024;
  s.max_ring_descriptors = 8192;
  s.hw_gro_capable = true;
  s.drain_smooth_bps = 43e9;  // ESnet pacing choice: 40G per flow
  s.drain_burst_bps = 25e9;   // AMD hosts suffer more under trains
  return s;
}

NicSpec connectx7_400g() {
  NicSpec s = connectx7_200g();
  s.model = "Nvidia ConnectX-7 (400G)";
  s.line_rate_bps = 400e9;
  return s;
}

NicRx::NicRx(const NicSpec& spec, int ring_descriptors, double mtu_bytes,
             bool flow_control_enabled)
    : spec_(spec),
      ring_bytes_(static_cast<double>(std::clamp(ring_descriptors, 64,
                                                 spec.max_ring_descriptors)) *
                  mtu_bytes),
      flow_control_(flow_control_enabled) {}

double NicRx::unpaced_tolerable_bps(double rtt_sec) const {
  // Ring credit: bursts can overfill the drain as long as the backlog fits
  // in the ring once per round-trip's worth of trains.
  const double credit_bps =
      ring_bytes_ * 8.0 / std::max(rtt_sec, 1e-3) * kRingCreditFactor;
  return spec_.drain_burst_bps + credit_bps;
}

RxVerdict NicRx::process(const RxArrival& arrival, double dt_sec, double rtt_sec) {
  RxVerdict v = evaluate(arrival, dt_sec, rtt_sec);
  if (counters_enabled_) {
    counters_.rx_bytes += v.accepted_bytes;
    counters_.rx_dropped_bytes += v.dropped_bytes;
    if (v.dropped_bytes > 0) counters_.rx_dropped_events += 1.0;
    counters_.ring_hiwater_frac =
        std::max(counters_.ring_hiwater_frac, v.ring_occupancy_frac);
    if (v.pause_frames_sent) counters_.pause_frames += 1.0;
  }
  return v;
}

RxVerdict NicRx::evaluate(const RxArrival& arrival, double dt_sec,
                          double rtt_sec) const {
  RxVerdict v;
  if (arrival.bytes <= 0 || dt_sec <= 0) return v;

  const double rate_bps = arrival.bytes * 8.0 / dt_sec;
  const double tolerable =
      arrival.paced ? paced_tolerable_bps() : unpaced_tolerable_bps(rtt_sec);

  // Peak backlog the ring sees this tick: what arrives beyond the smooth
  // drain piles up in descriptors until it overflows the usable credit.
  const double drain =
      (arrival.paced ? spec_.drain_smooth_bps : spec_.drain_burst_bps) / 8.0 * dt_sec;
  const double backlog = std::max(arrival.bytes - drain, 0.0);
  const double usable_ring = ring_bytes_ * kRingCreditFactor;
  v.ring_occupancy_frac =
      usable_ring > 0 ? std::min(backlog / usable_ring, 1.0) : 0.0;

  if (rate_bps <= tolerable) {
    v.accepted_bytes = arrival.bytes;
    return v;
  }

  const double excess_bytes = (rate_bps - tolerable) / 8.0 * dt_sec;
  if (flow_control_) {
    // 802.3x: the NIC pauses the link instead of dropping; upstream buffers
    // (switch) absorb and the sender is throttled by backpressure.
    v.accepted_bytes = arrival.bytes - excess_bytes;
    v.pause_frames_sent = true;
    return v;
  }

  v.dropped_bytes = std::min(excess_bytes * kDropSeverity, arrival.bytes);
  v.accepted_bytes = arrival.bytes - v.dropped_bytes;
  return v;
}

}  // namespace dtnsim::net
