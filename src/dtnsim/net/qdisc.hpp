// Queueing disciplines: fq (with per-flow pacing) and fq_codel.
//
// The paper's tuning replaces Ubuntu's default fq_codel with fq because fq
// implements per-flow pacing (`iperf3 --fq-rate`, SO_MAX_PACING_RATE). In the
// fluid engine the qdisc's job per tick is (a) cap a flow's bytes at its
// pacing rate and (b) mark the traffic "smooth" so the receiver NIC sees
// paced arrivals instead of line-rate trains. The packet-level API below is
// exact (departure timestamps) and is what the unit tests and micro-benches
// exercise.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dtnsim/util/units.hpp"

namespace dtnsim::net {

// Packet-level fq: per-flow token timing, earliest-departure-first.
class FqQdisc {
 public:
  explicit FqQdisc(double line_rate_bps) : line_rate_bps_(line_rate_bps) {}

  // `tc -s qdisc show dev ... fq`-style statistics. `throttled` counts
  // enqueues that pacing (not link serialization) pushed into the future —
  // fq's "throttled" flows stat; pacing_delay accumulates how far.
  struct Counters {
    double sent_bytes = 0.0;
    std::uint64_t throttled = 0;
    Nanos pacing_delay = 0;
  };

  // 0 disables pacing for the flow (line-rate bursts).
  void set_flow_rate(int flow, double rate_bps);
  double flow_rate(int flow) const;

  // Enqueue `bytes` for `flow` at time `now`; returns the departure time fq
  // schedules (never before now, spaced by the flow's pacing rate, and never
  // faster than the link).
  Nanos enqueue(int flow, double bytes, Nanos now);

  // Fluid helper: bytes the flow may emit during [now, now+dt) at its rate.
  double allowance_bytes(int flow, double dt_sec) const;

  std::uint64_t packets_scheduled() const { return packets_; }
  const Counters& counters() const { return counters_; }

 private:
  struct FlowState {
    double rate_bps = 0.0;
    Nanos next_departure = 0;
  };

  double line_rate_bps_;
  Nanos link_free_at_ = 0;
  std::unordered_map<int, FlowState> flows_;
  std::uint64_t packets_ = 0;
  Counters counters_;
};

// fq_codel: FIFO per flow with CoDel-style sojourn dropping. No pacing —
// this is the untuned baseline. Simplified: drops arrivals once queued
// sojourn exceeds the interval while above target.
class FqCodelQdisc {
 public:
  FqCodelQdisc(double line_rate_bps, Nanos target = units::millis(5),
               Nanos interval = units::millis(100));

  struct Verdict {
    bool dropped = false;
    Nanos departure = 0;
  };
  Verdict enqueue(double bytes, Nanos now);

  std::uint64_t drops() const { return drops_; }
  // `tc -s` counterpart of the fq stats block (no pacing here, so only
  // sent/dropped are meaningful).
  double sent_bytes() const { return sent_bytes_; }
  double dropped_bytes() const { return dropped_bytes_; }

 private:
  double line_rate_bps_;
  Nanos target_;
  Nanos interval_;
  Nanos backlog_clears_at_ = 0;
  Nanos above_target_since_ = -1;
  std::uint64_t drops_ = 0;
  double sent_bytes_ = 0.0;
  double dropped_bytes_ = 0.0;
};

}  // namespace dtnsim::net
