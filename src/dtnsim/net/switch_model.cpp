#include "dtnsim/net/switch_model.hpp"

#include <algorithm>

namespace dtnsim::net {

SwitchSpec noviflow_wb5132() {
  SwitchSpec s;
  s.model = "NoviFlow WB-5132D-E (Wedge 100BF-32X)";
  s.egress_bps = 100e9;
  s.shared_buffer_bytes = 22.0 * 1024 * 1024;  // Tofino-class shallow buffer
  return s;
}

SwitchSpec edgecore_as9716() {
  SwitchSpec s;
  s.model = "Edgecore AS9716-32D";
  s.egress_bps = 200e9;
  s.shared_buffer_bytes = 64.0 * 1024 * 1024;  // paper §III-F
  return s;
}

double SwitchModel::burst_tolerance_bps(double rtt_sec, double burst_fraction) const {
  const double bf = std::clamp(burst_fraction, 0.01, 1.0);
  // Egress always drains; the buffer absorbs one round's synchronized burst.
  return spec_.egress_bps +
         spec_.shared_buffer_bytes * 8.0 / std::max(rtt_sec, 1e-3) / bf * 0.5;
}

SwitchModel::Outcome SwitchModel::offer(units::Bytes offered, double dt_sec,
                                        double burst_fraction) const {
  Outcome out;
  const double bytes = offered.value();
  if (bytes <= 0 || dt_sec <= 0) return out;
  const double rate = bytes * 8.0 / dt_sec;
  const double egress_bytes = spec_.egress_bps * dt_sec / 8.0;
  const double bf = std::clamp(burst_fraction, 0.01, 1.0);

  if (rate <= spec_.egress_bps) {
    out.accepted_bytes = bytes;
    out.buffer_peak_bytes = std::min(bytes * bf * 0.25, spec_.shared_buffer_bytes);
    return out;
  }

  const double excess = bytes - egress_bytes;
  const double absorbed = std::min(excess, spec_.shared_buffer_bytes / bf);
  out.buffer_peak_bytes = std::min(absorbed * bf, spec_.shared_buffer_bytes);
  out.dropped_bytes = std::max(excess - absorbed, 0.0);
  out.accepted_bytes = bytes - out.dropped_bytes;
  return out;
}

}  // namespace dtnsim::net
