// NIC model: line rate, RX ring, drain asymmetry, pause frames, HW GRO.
//
// The receive-side drop mechanics the paper keeps returning to live here.
// Two drain rates capture the burst/smooth asymmetry:
//   - drain_smooth_bps: per-flow kernel-path throughput under paced, evenly
//     spaced arrivals (GRO batches well, caches stay warm). The paper picks
//     its pacing rates (50 G AmLight, 40 G ESnet) just below this.
//   - drain_burst_bps: sustainable rate while back-to-back line-rate trains
//     slam the ring (IOTLB/cache thrash, app cannot drain between trains).
//     WAN paths build longer trains (paper §II-D), so unpaced WAN flows
//     equilibrate against this plus whatever the ring can absorb.
// IEEE 802.3x pause frames convert would-be drops into backpressure.
#pragma once

#include <string>

#include "dtnsim/util/units.hpp"

namespace dtnsim::net {

struct NicSpec {
  std::string model = "generic-100g";
  double line_rate_bps = 100e9;
  int default_ring_descriptors = 1024;
  int max_ring_descriptors = 8192;
  bool hw_gro_capable = false;  // ConnectX-7 SHAMPO (Linux 6.11+)
  // Per-flow kernel drain ceilings (see file comment).
  double drain_smooth_bps = 52e9;
  double drain_burst_bps = 42e9;
};

// AmLight hosts: Nvidia ConnectX-5, 100G, fw 16.35.3502.
NicSpec connectx5_100g();
// ESnet testbed hosts: Nvidia ConnectX-7 at 200G.
NicSpec connectx7_200g();
// Future-work projection hardware.
NicSpec connectx7_400g();

struct RxArrival {
  double bytes = 0.0;       // payload arriving this tick
  bool paced = false;       // sender paced through fq
  double train_bytes = 0.0; // contiguous line-rate train size (unpaced)
};

struct RxVerdict {
  double accepted_bytes = 0.0;
  double dropped_bytes = 0.0;
  bool pause_frames_sent = false;
  // Modeled peak ring occupancy during the tick, as a fraction of ring
  // capacity in [0, 1]. 1.0 means the backlog hit the ring limit (drops or
  // pause frames follow). Exported by the observability probe.
  double ring_occupancy_frac = 0.0;
};

class NicRx {
 public:
  NicRx(const NicSpec& spec, int ring_descriptors, double mtu_bytes,
        bool flow_control_enabled);

  // `ethtool -S`-style device counters, accumulated across process() calls
  // while counters are enabled (see enable_counters). Cumulative except the
  // high-water gauge. Names track the mlx5 counter set the paper quotes
  // (rx_out_of_buffer, pause frames, SHAMPO coalescing).
  struct Counters {
    double rx_bytes = 0.0;              // accepted into the host
    double rx_dropped_bytes = 0.0;      // rx_out_of_buffer payload
    double rx_dropped_events = 0.0;     // process() calls that dropped
    double ring_hiwater_frac = 0.0;     // peak ring occupancy in [0, 1]
    double pause_frames = 0.0;          // 802.3x pause bursts emitted
  };

  // Evaluate one tick of arrivals for one flow. `dt_sec` is the tick length;
  // `rtt_sec` scales how much ring credit a window's worth of trains can use.
  // Updates counters() when enabled; the verdict itself is pure (see
  // evaluate() for the side-effect-free form).
  RxVerdict process(const RxArrival& arrival, double dt_sec, double rtt_sec);
  // The pure verdict computation: no counter updates, usable on a const NIC.
  RxVerdict evaluate(const RxArrival& arrival, double dt_sec, double rtt_sec) const;

  // Snapshot accounting is opt-in so a run without an ss sink attached
  // executes zero counter updates (the introspection zero-cost guarantee).
  void enable_counters(bool on = true) { counters_enabled_ = on; }
  bool counters_enabled() const { return counters_enabled_; }
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }

  // Highest *unpaced* arrival rate that avoids drops at this RTT.
  double unpaced_tolerable_bps(double rtt_sec) const;
  // Highest paced rate that avoids drops (RTT-independent).
  double paced_tolerable_bps() const { return spec_.drain_smooth_bps; }

  double ring_bytes() const { return ring_bytes_; }
  const NicSpec& spec() const { return spec_; }
  bool flow_control() const { return flow_control_; }

 private:
  NicSpec spec_;
  double ring_bytes_;
  bool flow_control_;
  bool counters_enabled_ = false;
  Counters counters_;
};

}  // namespace dtnsim::net
