#include "dtnsim/net/qdisc.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::net {

void FqQdisc::set_flow_rate(int flow, double rate_bps) {
  flows_[flow].rate_bps = std::max(rate_bps, 0.0);
}

double FqQdisc::flow_rate(int flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

Nanos FqQdisc::enqueue(int flow, double bytes, Nanos now) {
  FlowState& st = flows_[flow];
  ++packets_;
  counters_.sent_bytes += bytes;

  // Link serialization applies regardless of pacing.
  const auto wire_ns = static_cast<Nanos>(bytes * 8.0 / line_rate_bps_ * 1e9);
  Nanos depart = std::max(now, link_free_at_);

  if (st.rate_bps > 0.0) {
    const Nanos link_depart = depart;
    depart = std::max(depart, st.next_departure);
    if (depart > link_depart) {
      // Pacing, not the link, held this packet back: fq's "throttled" stat.
      ++counters_.throttled;
      counters_.pacing_delay += depart - link_depart;
    }
    const auto pace_ns = static_cast<Nanos>(bytes * 8.0 / st.rate_bps * 1e9);
    st.next_departure = depart + pace_ns;
  }
  link_free_at_ = depart + wire_ns;
  return depart;
}

double FqQdisc::allowance_bytes(int flow, double dt_sec) const {
  const double rate = flow_rate(flow);
  const double line_bytes = line_rate_bps_ * dt_sec / 8.0;
  if (rate <= 0.0) return line_bytes;
  return std::min(rate * dt_sec / 8.0, line_bytes);
}

FqCodelQdisc::FqCodelQdisc(double line_rate_bps, Nanos target, Nanos interval)
    : line_rate_bps_(line_rate_bps), target_(target), interval_(interval) {}

FqCodelQdisc::Verdict FqCodelQdisc::enqueue(double bytes, Nanos now) {
  Verdict v;
  const auto wire_ns = static_cast<Nanos>(bytes * 8.0 / line_rate_bps_ * 1e9);
  const Nanos start = std::max(now, backlog_clears_at_);
  const Nanos sojourn = start - now;

  if (sojourn > target_) {
    if (above_target_since_ < 0) above_target_since_ = now;
    if (now - above_target_since_ >= interval_) {
      ++drops_;
      dropped_bytes_ += bytes;
      v.dropped = true;
      return v;  // dropped packets do not occupy the link
    }
  } else {
    above_target_since_ = -1;
  }

  backlog_clears_at_ = start + wire_ns;
  sent_bytes_ += bytes;
  v.departure = start;
  return v;
}

}  // namespace dtnsim::net
