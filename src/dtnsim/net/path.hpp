// Network path: RTT, capacity, hops, background traffic, burst tolerance.
//
// The AmLight testbed offers a LAN plus real WAN paths at 25, 54 and 104 ms
// RTT (WAN testing capped at 80 Gbps to protect production traffic, which
// averaged ~16 Gbps during the experiments). The ESnet testbed offers LAN
// and WAN at 200G; the production-DTN pair sits 63 ms apart. Background
// traffic microbursts add the loss noise AmLight's unpaced WAN tests show.
#pragma once

#include <string>

#include "dtnsim/util/rng.hpp"
#include "dtnsim/util/units.hpp"

namespace dtnsim::net {

struct PathSpec {
  std::string name = "LAN";
  Nanos rtt = units::micros(200);
  double capacity_bps = 100e9;       // policy or port limit on test traffic
  int hops = 1;
  double bg_traffic_bps = 0.0;       // mean competing production traffic
  double bg_burst_sigma = 0.0;       // lognormal sigma of bg microbursts
  // Aggregate unpaced rate above which the path itself (switch buffers along
  // the way) starts cutting burst tails. Infinite for clean local paths.
  double burst_tolerance_bps = 1e18;
  // Deep-buffered backbone (production ESnet): congestion queues instead of
  // cutting tails; losses become rare stochastic tail-drop events.
  bool deep_buffers = false;
  // Mean rate of background micro-loss events per second (competing
  // production traffic occasionally clipping a train), 0 for clean paths.
  double stray_loss_events_per_sec = 0.0;

  double rtt_sec() const { return units::to_seconds(rtt); }
  bool is_wan() const { return rtt >= units::millis(5); }
};

class Path {
 public:
  explicit Path(const PathSpec& spec) : spec_(spec) {}

  const PathSpec& spec() const { return spec_; }
  // Mid-run respec (scenario events: capacity caps, added RTT, surges).
  // Path is stateless apart from the spec, so a swap takes effect on the
  // next transit() with no other bookkeeping.
  void set_spec(const PathSpec& spec) { spec_ = spec; }

  // Capacity left for test traffic this tick after background microbursts.
  double available_capacity_bps(Rng& rng) const;

  struct Outcome {
    double delivered_bytes = 0.0;
    double dropped_bytes = 0.0;
  };
  // Aggregate tick of test traffic across the path. `smoothness` (>= 1)
  // raises the effective burst tolerance: 1.0 for unpaced trains, ~1.05 for
  // fq-paced traffic, ~1.2 for zerocopy+fq (no copy jitter perturbing the
  // pacing schedule). Unpaced bursts beyond tolerance lose their tails.
  Outcome transit(units::Bytes offered, double dt_sec, bool paced, double smoothness,
                  Rng& rng) const;

 private:
  PathSpec spec_;
};

}  // namespace dtnsim::net
