#include "dtnsim/net/path.hpp"

#include <algorithm>

namespace dtnsim::net {

double Path::available_capacity_bps(Rng& rng) const {
  double bg = spec_.bg_traffic_bps;
  if (bg > 0 && spec_.bg_burst_sigma > 0) {
    bg = std::min(rng.lognormal(bg, spec_.bg_burst_sigma), spec_.capacity_bps * 0.6);
  }
  return std::max(spec_.capacity_bps - bg, spec_.capacity_bps * 0.05);
}

Path::Outcome Path::transit(units::Bytes offered, double dt_sec, bool paced,
                            double smoothness, Rng& rng) const {
  Outcome out;
  const double bytes = offered.value();
  if (bytes <= 0 || dt_sec <= 0) return out;

  const double cap = available_capacity_bps(rng);
  const double rate = bytes * 8.0 / dt_sec;

  double deliverable = bytes;
  double dropped = 0.0;

  if (rate > cap) {
    const double excess = bytes - cap * dt_sec / 8.0;
    deliverable = cap * dt_sec / 8.0;
    if (spec_.deep_buffers) {
      // Backbone routers queue the overshoot; losses are rare tail-drop
      // events whose frequency scales with how hard the path is pushed.
      const double overload = excess / std::max(cap * dt_sec / 8.0, 1.0);
      const double p = std::min(2.0 * overload * dt_sec, 0.8);
      if (rng.bernoulli(p)) {
        dropped += std::min(excess * 0.25, 400.0 * 9000.0);
      }
    } else if (!paced) {
      // Shallow path: unpaced trains lose a real fraction of the excess;
      // paced traffic rides the (modest) buffers as a pure rate clamp.
      dropped += excess * 0.35;
    }
  }

  // Burst tolerance: unpaced aggregates beyond it lose burst tails even when
  // under nominal capacity (shared buffers along the way overflow). Deep
  // buffers do not exhibit this regime.
  if (!spec_.deep_buffers) {
    const double tol = spec_.burst_tolerance_bps * std::max(smoothness, 1.0);
    if (rate > tol) {
      const double excess = (rate - tol) / 8.0 * dt_sec;
      const double cut = excess * (paced ? 0.25 : 0.5);
      dropped += cut;
      deliverable = std::max(deliverable - cut, 0.0);
    }
  }

  // Background micro-loss: a competing burst occasionally clips a train even
  // when the path is nominally uncongested.
  // Each event clips ~25 segments — enough to show up in retransmit counts,
  // small enough that fast recovery handles it without a window collapse.
  if (spec_.stray_loss_events_per_sec > 0 &&
      rng.bernoulli(std::min(spec_.stray_loss_events_per_sec * dt_sec, 1.0))) {
    dropped += 25.0 * 9000.0;
  }

  out.delivered_bytes = deliverable;
  out.dropped_bytes = std::min(dropped, bytes);
  return out;
}

}  // namespace dtnsim::net
