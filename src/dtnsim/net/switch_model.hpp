// Shared-buffer switch model.
//
// Both testbeds run shallow-ish shared-buffer switches without 802.3x flow
// control (NoviFlow WB-5132D-E at AmLight; Edgecore AS9716-32D with 64 MB
// shared buffer at ESnet). For parallel streams the switch is where flows
// collide: when the aggregate offered load exceeds the egress for longer
// than the shared buffer absorbs, the tail of the burst is cut.
#pragma once

#include <string>

#include "dtnsim/util/units.hpp"

namespace dtnsim::net {

struct SwitchSpec {
  std::string model = "generic";
  double egress_bps = 100e9;
  double shared_buffer_bytes = 32.0 * 1024 * 1024;
};

SwitchSpec noviflow_wb5132();   // AmLight (Wedge 100BF-32X based)
SwitchSpec edgecore_as9716();   // ESnet (64 MB shared buffer, 200G ports)

class SwitchModel {
 public:
  explicit SwitchModel(const SwitchSpec& spec) : spec_(spec) {}

  struct Outcome {
    double accepted_bytes = 0.0;
    double dropped_bytes = 0.0;
    double buffer_peak_bytes = 0.0;
  };

  // One tick of aggregate offered load. `burst_fraction` is how much of the
  // offered bytes arrive in synchronized bursts (unpaced flows collide;
  // paced flows interleave smoothly).
  Outcome offer(units::Bytes offered, double dt_sec, double burst_fraction) const;

  // Aggregate rate above which synchronized (unpaced) arrivals overflow the
  // shared buffer within one RTT.
  double burst_tolerance_bps(double rtt_sec, double burst_fraction) const;

  const SwitchSpec& spec() const { return spec_; }

 private:
  SwitchSpec spec_;
};

}  // namespace dtnsim::net
