// Content-addressed, on-disk result cache for harness runs.
//
// The key is a 64-bit FNV-1a hash of the *canonicalized* spec: every
// simulation-affecting knob serialized as a "key=value" field, the field
// list sorted by key (so the order fields are emitted in can never change
// the hash), plus a schema/calibration salt. Cosmetic strings (spec label,
// path display name, CPU/NIC model names) are deliberately excluded — two
// specs with identical physics are the same cell, whatever they are called.
//
// A cached cell lives at <dir>/<16-hex-key>.json and stores the aggregate
// TestResult (including raw per-repeat samples). Telemetry payloads
// (probe series, traces) are not serialized; the campaign engine bypasses
// the cache for telemetry-enabled specs.
//
// Bump kCacheSalt whenever the simulator's calibration or the result schema
// changes: every old entry then misses and re-simulates, which is exactly
// the invalidation story a content-addressed store wants.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dtnsim/harness/runner.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::sweep {

// Schema + calibration version salt folded into every cache key.
inline constexpr std::string_view kCacheSalt = "dtnsim.sweep.v1";

using FieldList = std::vector<std::pair<std::string, std::string>>;

// Every simulation-affecting knob of a spec, in emission order. Exposed so
// tests can shuffle the list and prove order-independence of the key.
FieldList spec_fields(const harness::TestSpec& spec);

// Sort by field name and join as "name=value\n" lines. The canonical text
// is what gets hashed (and what a human diffs when two keys disagree).
std::string canonicalize(FieldList fields);

std::uint64_t fnv1a64(std::string_view text);
// splitmix64 finalizer — used to derive well-mixed per-cell seeds.
std::uint64_t mix64(std::uint64_t x);

std::uint64_t spec_key(const harness::TestSpec& spec);
std::string spec_key_hex(const harness::TestSpec& spec);  // 16 lowercase hex

// TestResult <-> JSON (aggregate numbers + raw samples; no telemetry).
Json result_to_json(const harness::TestResult& result);
// False when `j` is not a result document (missing/mistyped fields).
bool result_from_json(const Json& j, harness::TestResult* out);

// Garbage collection over a cache directory (dtnsim-sweep --gc). Two
// independent eviction criteria; an entry matching either goes.
struct GcOptions {
  double max_age_days = -1.0;  // evict entries older than this; < 0 = off
  bool salt_mismatch = false;  // evict entries whose schema != kCacheSalt
                               // (plus unreadable/truncated entries — they
                               // can never be served again)
  bool dry_run = false;        // report what would go; delete nothing
};

struct GcReport {
  std::size_t scanned = 0;    // entries examined
  std::size_t evicted = 0;    // deleted (or would be, under dry_run)
  std::size_t kept = 0;
  std::uintmax_t reclaimed_bytes = 0;  // total size of evicted entries
  bool dry_run = false;
};

class ResultCache {
 public:
  // Creates `dir` (and parents) if missing; throws std::runtime_error when
  // the directory cannot be created.
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string path_for(const harness::TestSpec& spec) const;

  // Load the cached result for `spec`; false on miss or unreadable entry
  // (a truncated file from a killed run reads as a miss). On hit the
  // result's name is rewritten to spec.name — the label is not part of the
  // address.
  bool load(const harness::TestSpec& spec, harness::TestResult* out) const;

  // Write-through: store via a temp file + atomic rename so an interrupt
  // mid-write never leaves a half-entry under the final name.
  bool store(const harness::TestSpec& spec, const harness::TestResult& result) const;

  // Sweep the directory and evict entries matching `opts`. Orphaned .tmp
  // files (a killed run's half-writes) are always eligible. Never touches
  // files that are neither cache entries nor cache temp files.
  GcReport gc(const GcOptions& opts) const;

 private:
  std::string dir_;
};

}  // namespace dtnsim::sweep
