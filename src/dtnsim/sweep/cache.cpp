#include "dtnsim/sweep/cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::sweep {
namespace {

namespace fs = std::filesystem;

// %.17g round-trips every double exactly; canonical text must never lose
// precision or two different knob values could collide into one key.
std::string num(double v) { return strfmt("%.17g", v); }
std::string num(int v) { return strfmt("%d", v); }
std::string num(bool v) { return v ? "1" : "0"; }
std::string num(std::uint64_t v) { return strfmt("%llu", static_cast<unsigned long long>(v)); }

void add(FieldList& f, std::string key, std::string value) {
  f.emplace_back(std::move(key), std::move(value));
}

void add_sysctl_fields(FieldList& f, const std::string& p, const kern::SysctlConfig& s) {
  add(f, p + "rmem_max", num(s.rmem_max));
  add(f, p + "wmem_max", num(s.wmem_max));
  add(f, p + "tcp_rmem_min", num(s.tcp_rmem_min));
  add(f, p + "tcp_rmem_def", num(s.tcp_rmem_def));
  add(f, p + "tcp_rmem_max", num(s.tcp_rmem_max));
  add(f, p + "tcp_wmem_min", num(s.tcp_wmem_min));
  add(f, p + "tcp_wmem_def", num(s.tcp_wmem_def));
  add(f, p + "tcp_wmem_max", num(s.tcp_wmem_max));
  add(f, p + "tcp_no_metrics_save", num(s.tcp_no_metrics_save));
  add(f, p + "default_qdisc", kern::qdisc_name(s.default_qdisc));
  add(f, p + "optmem_max", num(s.optmem_max));
  add(f, p + "congestion", kern::congestion_name(s.congestion));
}

void add_host_fields(FieldList& f, const std::string& p, const host::HostConfig& h) {
  // CPU (model string is cosmetic; the numbers are the physics).
  add(f, p + "cpu.vendor", cpu::vendor_name(h.cpu.vendor));
  add(f, p + "cpu.sockets", num(h.cpu.sockets));
  add(f, p + "cpu.cores_per_socket", num(h.cpu.cores_per_socket));
  add(f, p + "cpu.numa_nodes", num(h.cpu.numa_nodes));
  add(f, p + "cpu.smt_threads", num(h.cpu.smt_threads));
  add(f, p + "cpu.base_ghz", num(h.cpu.base_ghz));
  add(f, p + "cpu.max_ghz", num(h.cpu.max_ghz));
  add(f, p + "cpu.avx512", num(h.cpu.avx512));
  add(f, p + "cpu.l3_per_socket_bytes", num(h.cpu.l3_per_socket_bytes));
  add(f, p + "cpu.l3_flow_window_bytes", num(h.cpu.l3_flow_window_bytes));
  add(f, p + "cpu.stack_mem_bw_bytes", num(h.cpu.stack_mem_bw_bytes));
  // Kernel profile.
  add(f, p + "kernel.version", h.kernel.name);
  add(f, p + "kernel.max_skb_frags", num(h.kernel.max_skb_frags));
  add(f, p + "kernel.custom_build", num(h.kernel.custom_build));
  add(f, p + "kernel.msg_zerocopy", num(h.kernel.supports_msg_zerocopy));
  add(f, p + "kernel.big_tcp_ipv4", num(h.kernel.supports_big_tcp_ipv4));
  add(f, p + "kernel.big_tcp_ipv6", num(h.kernel.supports_big_tcp_ipv6));
  add(f, p + "kernel.hw_gro", num(h.kernel.supports_hw_gro));
  add(f, p + "kernel.stack_factor_intel", num(h.kernel.stack_factor_intel));
  add(f, p + "kernel.stack_factor_amd", num(h.kernel.stack_factor_amd));
  // NIC.
  add(f, p + "nic.line_rate_bps", num(h.nic.line_rate_bps));
  add(f, p + "nic.default_ring", num(h.nic.default_ring_descriptors));
  add(f, p + "nic.max_ring", num(h.nic.max_ring_descriptors));
  add(f, p + "nic.hw_gro_capable", num(h.nic.hw_gro_capable));
  add(f, p + "nic.drain_smooth_bps", num(h.nic.drain_smooth_bps));
  add(f, p + "nic.drain_burst_bps", num(h.nic.drain_burst_bps));
  // Tuning.
  const auto& t = h.tuning;
  add_sysctl_fields(f, p + "sysctl.", t.sysctl);
  add(f, p + "tuning.irqbalance_disabled", num(t.irqbalance_disabled));
  add(f, p + "tuning.performance_governor", num(t.performance_governor));
  add(f, p + "tuning.smt_off", num(t.smt_off));
  add(f, p + "tuning.ring_descriptors", num(t.ring_descriptors));
  add(f, p + "tuning.iommu_passthrough", num(t.iommu_passthrough));
  add(f, p + "tuning.mtu_bytes", num(t.mtu_bytes));
  add(f, p + "tuning.big_tcp_enabled", num(t.big_tcp_enabled));
  add(f, p + "tuning.big_tcp_bytes", num(t.big_tcp_bytes));
  add(f, p + "tuning.hw_gro_enabled", num(t.hw_gro_enabled));
  add(f, p + "virt_factor", num(h.virt_factor));
}

}  // namespace

FieldList spec_fields(const harness::TestSpec& spec) {
  FieldList f;
  add(f, "repeats", num(spec.repeats));
  add(f, "base_seed", num(spec.base_seed));
  add(f, "link_flow_control", num(spec.link_flow_control));
  // iperf options.
  add(f, "iperf.parallel", num(spec.iperf.parallel));
  add(f, "iperf.duration_sec", num(spec.iperf.duration_sec));
  add(f, "iperf.fq_rate_bps", num(spec.iperf.fq_rate_bps));
  add(f, "iperf.zerocopy", num(spec.iperf.zerocopy));
  add(f, "iperf.skip_rx_copy", num(spec.iperf.skip_rx_copy));
  add(f, "iperf.congestion", kern::congestion_name(spec.iperf.congestion));
  // Path physics (display name excluded).
  add(f, "path.rtt_ns", num(static_cast<std::uint64_t>(spec.path.rtt)));
  add(f, "path.capacity_bps", num(spec.path.capacity_bps));
  add(f, "path.hops", num(spec.path.hops));
  add(f, "path.bg_traffic_bps", num(spec.path.bg_traffic_bps));
  add(f, "path.bg_burst_sigma", num(spec.path.bg_burst_sigma));
  add(f, "path.burst_tolerance_bps", num(spec.path.burst_tolerance_bps));
  add(f, "path.deep_buffers", num(spec.path.deep_buffers));
  add(f, "path.stray_loss_events_per_sec", num(spec.path.stray_loss_events_per_sec));
  add_host_fields(f, "sender.", spec.sender);
  add_host_fields(f, "receiver.", spec.receiver);
  // Scenario timeline: every event is simulation-affecting, so each one
  // enters the key (the display name stays cosmetic and excluded). Emitted
  // only when non-empty so scenario-less keys — and the cell seeds derived
  // from this canonical text — are byte-identical to pre-scenario builds.
  if (!spec.scenario.empty()) {
    add(f, "scenario.count", num(static_cast<int>(spec.scenario.events.size())));
    for (std::size_t i = 0; i < spec.scenario.events.size(); ++i) {
      const auto& e = spec.scenario.events[i];
      const std::string p = strfmt("scenario.%03zu.", i);
      add(f, p + "at_sec", num(e.at_sec));
      add(f, p + "kind", std::string(scenario::kind_name(e.kind)));
      add(f, p + "value", num(e.value));
      add(f, p + "duration_sec", num(e.duration_sec));
      add(f, p + "jitter_sec", num(e.jitter_sec));
    }
  }
  return f;
}

std::string canonicalize(FieldList fields) {
  std::sort(fields.begin(), fields.end());
  std::string out;
  for (const auto& [k, v] : fields) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t spec_key(const harness::TestSpec& spec) {
  std::string text(kCacheSalt);
  text += '\n';
  text += canonicalize(spec_fields(spec));
  return fnv1a64(text);
}

std::string spec_key_hex(const harness::TestSpec& spec) {
  return strfmt("%016llx", static_cast<unsigned long long>(spec_key(spec)));
}

// "schema" is a cache-validity salt checked by ResultCache::load, not a
// TestResult field — deliberately absent from result_from_json.
// dtnsim-lint: allow(json-parity)
Json result_to_json(const harness::TestResult& result) {
  Json j = Json::object();
  j["schema"] = std::string(kCacheSalt);
  j["name"] = result.name;
  j["repeats"] = result.repeats;
  j["avg_gbps"] = result.avg_gbps;
  j["min_gbps"] = result.min_gbps;
  j["max_gbps"] = result.max_gbps;
  j["stdev_gbps"] = result.stdev_gbps;
  j["avg_retransmits"] = result.avg_retransmits;
  j["flow_min_gbps"] = result.flow_min_gbps;
  j["flow_max_gbps"] = result.flow_max_gbps;
  j["snd_cpu_pct"] = result.snd_cpu_pct;
  j["rcv_cpu_pct"] = result.rcv_cpu_pct;
  j["zc_fallback_ratio"] = result.zc_fallback_ratio;
  Json samples = Json::array();
  for (const double s : result.samples_gbps) samples.push_back(s);
  j["samples_gbps"] = std::move(samples);
  return j;
}

bool result_from_json(const Json& j, harness::TestResult* out) {
  if (!j.is_object()) return false;
  const Json* repeats = j.find("repeats");
  const Json* avg = j.find("avg_gbps");
  if (!repeats || !repeats->is_number() || !avg || !avg->is_number()) return false;
  harness::TestResult r;
  r.name = j.string_at("name", "");
  r.repeats = static_cast<int>(repeats->number_or(0));
  r.avg_gbps = avg->number_or(0.0);
  r.min_gbps = j.number_at("min_gbps", 0.0);
  r.max_gbps = j.number_at("max_gbps", 0.0);
  r.stdev_gbps = j.number_at("stdev_gbps", 0.0);
  r.avg_retransmits = j.number_at("avg_retransmits", 0.0);
  r.flow_min_gbps = j.number_at("flow_min_gbps", 0.0);
  r.flow_max_gbps = j.number_at("flow_max_gbps", 0.0);
  r.snd_cpu_pct = j.number_at("snd_cpu_pct", 0.0);
  r.rcv_cpu_pct = j.number_at("rcv_cpu_pct", 0.0);
  r.zc_fallback_ratio = j.number_at("zc_fallback_ratio", 0.0);
  if (const Json* samples = j.find("samples_gbps"); samples && samples->is_array()) {
    for (std::size_t i = 0; i < samples->size(); ++i)
      r.samples_gbps.push_back(samples->at(i)->number_or(0.0));
  }
  *out = std::move(r);
  return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("sweep cache: cannot create directory " + dir_);
  }
}

std::string ResultCache::path_for(const harness::TestSpec& spec) const {
  return dir_ + "/" + spec_key_hex(spec) + ".json";
}

bool ResultCache::load(const harness::TestSpec& spec, harness::TestResult* out) const {
  std::ifstream in(path_for(spec));
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = Json::parse(buffer.str());
  if (!doc || !result_from_json(*doc, out)) return false;
  // The schema salt is hashed into the file name, but a stale tree copied
  // across versions should still never serve mismatched entries.
  if (doc->string_at("schema", "") != kCacheSalt) return false;
  out->name = spec.name;
  return true;
}

bool ResultCache::store(const harness::TestSpec& spec,
                        const harness::TestResult& result) const {
  const std::string path = path_for(spec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream o(tmp, std::ios::trunc);
    if (!o) return false;
    o << result_to_json(result).dump(2) << "\n";
    if (!o.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

GcReport ResultCache::gc(const GcOptions& opts) const {
  GcReport report;
  report.dry_run = opts.dry_run;
  // GC is operational tooling, not simulation: the file mtime is the only
  // honest age signal a cache directory has.
  const auto now = fs::file_time_type::clock::now();  // dtnsim-lint: allow(determinism)
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path p = entry.path();
    const std::string name = p.filename().string();
    const auto ends_with = [&name](std::string_view suffix) {
      return name.size() > suffix.size() &&
             name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
    };
    const bool is_tmp = ends_with(".json.tmp");
    if (!is_tmp && !ends_with(".json")) continue;  // not ours; never touch
    ++report.scanned;

    bool evict = false;
    if (is_tmp) {
      // store() renames on success, so any surviving .tmp is an orphaned
      // half-write from a killed run — always garbage.
      evict = true;
    } else {
      if (opts.salt_mismatch) {
        std::ifstream in(p);
        std::stringstream buffer;
        buffer << in.rdbuf();
        const auto doc = Json::parse(buffer.str());
        // Unreadable/truncated entries can never be served again; under the
        // salt criterion they go too.
        if (!doc || doc->string_at("schema", "") != kCacheSalt) evict = true;
      }
      if (!evict && opts.max_age_days >= 0.0) {
        const auto mtime = fs::last_write_time(p, ec);
        if (!ec) {
          const double age_days =
              std::chrono::duration<double>(now - mtime).count() / 86400.0;
          if (age_days > opts.max_age_days) evict = true;
        }
      }
    }

    if (evict) {
      ++report.evicted;
      const auto size = entry.file_size(ec);
      if (!ec) report.reclaimed_bytes += size;
      if (!opts.dry_run) fs::remove(p, ec);
    } else {
      ++report.kept;
    }
  }
  return report;
}

}  // namespace dtnsim::sweep
