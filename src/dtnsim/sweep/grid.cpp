#include "dtnsim/sweep/grid.hpp"

#include <stdexcept>

#include "dtnsim/sweep/cache.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::sweep {
namespace {

std::string fmt_bytes(double v) {
  return v < 0 ? std::string("default") : strfmt("%.0f", v);
}

std::string fmt_ring(int v) {
  return v < 0 ? std::string("default") : strfmt("%d", v);
}

std::string fmt_scenario(const dtnsim::scenario::Timeline& tl) {
  if (tl.empty()) return "none";
  return tl.name.empty() ? std::string("unnamed") : tl.name;
}

// Derive the cell seed from the knob content, not the cell position: hash
// the canonical spec with the seed field zeroed, then mix in the campaign
// base seed. Reordering or extending an axis never perturbs other cells.
std::uint64_t derive_seed(harness::TestSpec spec, std::uint64_t base_seed) {
  spec.base_seed = 0;
  std::uint64_t h = fnv1a64(canonicalize(spec_fields(spec)));
  return mix64(h ^ base_seed);
}

}  // namespace

std::string validate(const GridSpec& grid) {
  const struct {
    const char* axis;
    bool empty;
  } axes[] = {
      {"kernels", grid.kernels.empty()},   {"paths", grid.paths.empty()},
      {"streams", grid.streams.empty()},   {"pacing_gbps", grid.pacing_gbps.empty()},
      {"zerocopy", grid.zerocopy.empty()}, {"optmem_max", grid.optmem_max.empty()},
      {"big_tcp", grid.big_tcp.empty()},   {"ring", grid.ring.empty()},
      {"scenarios", grid.scenarios.empty()},
  };
  for (const auto& a : axes) {
    if (a.empty) return strfmt("axis '%s' is empty", a.axis);
  }
  for (const auto& tl : grid.scenarios) {
    try {
      tl.validate();
    } catch (const std::exception& e) {
      return e.what();
    }
  }
  for (const int s : grid.streams) {
    if (s < 1 || s > 128) return strfmt("streams value %d out of [1, 128]", s);
  }
  for (const double p : grid.pacing_gbps) {
    if (p < 0) return "pacing_gbps values must be >= 0";
  }
  if (grid.duration_sec <= 0) return "duration_sec must be positive";
  if (grid.repeats < 1) return "repeats must be >= 1";
  try {
    for (const auto k : grid.kernels) {
      const auto tb = harness::testbed_by_name(grid.testbed, k);
      for (const auto& p : grid.paths) {
        if (!p.empty()) (void)tb.path_named(p);
      }
    }
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

std::size_t cell_count(const GridSpec& grid) {
  return grid.kernels.size() * grid.paths.size() * grid.streams.size() *
         grid.pacing_gbps.size() * grid.zerocopy.size() * grid.optmem_max.size() *
         grid.big_tcp.size() * grid.ring.size() * grid.scenarios.size();
}

std::vector<Cell> expand(const GridSpec& grid) {
  if (const std::string problem = validate(grid); !problem.empty()) {
    throw std::invalid_argument("sweep grid '" + grid.name + "': " + problem);
  }

  std::vector<Cell> cells;
  cells.reserve(cell_count(grid));
  for (const auto kernel : grid.kernels) {
    // One testbed build per kernel value, shared across the inner axes.
    const harness::Testbed tb = harness::testbed_by_name(grid.testbed, kernel);
    for (const auto& path : grid.paths) {
      const std::string path_name = path.empty() ? tb.lan().name : path;
      for (const int streams : grid.streams) {
        for (const double pacing : grid.pacing_gbps) {
          for (const bool zerocopy : grid.zerocopy) {
            for (const double optmem : grid.optmem_max) {
              for (const bool big_tcp : grid.big_tcp) {
                for (const int ring : grid.ring) {
                  for (const auto& scn : grid.scenarios) {
                    app::IperfOptions iperf;
                    iperf.parallel = streams;
                    iperf.duration_sec = grid.duration_sec;
                    iperf.fq_rate_bps = pacing * 1e9;
                    iperf.zerocopy = zerocopy;
                    iperf.skip_rx_copy = grid.skip_rx_copy;
                    iperf.congestion = grid.congestion;

                    Cell cell;
                    cell.index = cells.size();
                    cell.spec = harness::TestSpec::on(tb, path_name, iperf);
                    cell.spec.repeats = grid.repeats;
                    cell.spec.telemetry = grid.telemetry;
                    cell.spec.scenario = scn;
                    for (auto* h : {&cell.spec.sender, &cell.spec.receiver}) {
                      if (optmem >= 0) h->tuning.sysctl.optmem_max = optmem;
                      if (big_tcp) {
                        h->tuning.big_tcp_enabled = true;
                        h->tuning.big_tcp_bytes = grid.big_tcp_bytes;
                      }
                      if (ring > 0) h->tuning.ring_descriptors = ring;
                    }
                    cell.spec.base_seed = derive_seed(cell.spec, grid.base_seed);
                    cell.spec.name = strfmt(
                        "%s/%s/%s/P%d/pace%g/zc%d/optmem%s/bigtcp%d/ring%s",
                        grid.name.c_str(), kern::kernel_version_name(kernel),
                        path_name.c_str(), streams, pacing, zerocopy ? 1 : 0,
                        fmt_bytes(optmem).c_str(), big_tcp ? 1 : 0,
                        fmt_ring(ring).c_str());
                    // Scenario-less names stay exactly as before the axis
                    // existed, so prior campaign labels remain addressable.
                    if (!scn.empty()) {
                      cell.spec.name += "/scn-" + fmt_scenario(scn);
                    }

                    cell.coords = {
                        {"kernel", kern::kernel_version_name(kernel)},
                        {"path", path_name},
                        {"streams", strfmt("%d", streams)},
                        {"pacing_gbps", strfmt("%g", pacing)},
                        {"zerocopy", zerocopy ? "1" : "0"},
                        {"optmem_max", fmt_bytes(optmem)},
                        {"big_tcp", big_tcp ? "1" : "0"},
                        {"ring", fmt_ring(ring)},
                        {"scenario", fmt_scenario(scn)},
                    };
                    cells.push_back(std::move(cell));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace dtnsim::sweep
