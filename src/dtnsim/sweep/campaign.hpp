// Campaign engine: run a parameter grid on the worker pool, streaming
// results and checkpoints so an interrupted campaign resumes where it died.
//
// Execution pipeline per cell:
//   checkpoint says done?  -> skip (resume), re-emit from cache if possible
//   cache hit?             -> serve the stored result, no simulation
//   otherwise              -> simulate on a pool worker, write-through cache
// As cells finish (in completion order) the engine appends one JSONL row to
// the results stream and one line to the checkpoint manifest, flushing both
// — a kill between cells loses nothing, a kill mid-cell loses only that
// cell. Results returned to the caller are always in cell-index order.
//
// sweep.* metrics (cells total/done/cached/simulated/resumed, wall time,
// worker occupancy) land in the caller's obs::Registry when provided.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/sweep/cache.hpp"
#include "dtnsim/sweep/grid.hpp"

namespace dtnsim::sweep {

struct CampaignOptions {
  int jobs = 1;  // worker pool size; 0 = one per hardware thread

  std::string cache_dir;  // "" -> content-addressed result cache disabled

  // Streamed outputs. "" disables each. checkpoint_path defaults to
  // "<results_path>.ckpt" when results are streamed and no explicit
  // manifest path is given.
  std::string results_path;     // JSONL, one row per finished cell
  std::string checkpoint_path;  // manifest: grid fingerprint + done cells

  // Resume a previous run: cells listed in the checkpoint manifest are not
  // re-run (their results are re-served from the cache when available).
  // The manifest's grid fingerprint must match; a mismatch throws.
  bool resume = false;

  // Run at most this many not-yet-done cells this invocation (0 = all).
  // The deterministic "interrupt after k cells" hook used by the resume
  // tests and handy for smoke runs.
  std::size_t max_cells = 0;

  obs::Registry* metrics = nullptr;  // optional sweep.* registration target
};

struct CellOutcome {
  std::size_t index = 0;
  std::string key_hex;  // content address of the cell's spec
  harness::TestResult result;
  bool done = false;     // result is populated (simulated, cached or resumed)
  bool cached = false;   // served from the result cache
  bool resumed = false;  // checkpoint said it was already complete
  std::vector<std::pair<std::string, std::string>> coords;
};

struct CampaignReport {
  std::string name;
  // One entry per grid cell, in cell-index order. Cells beyond max_cells
  // are present with done = false.
  std::vector<CellOutcome> cells;
  std::size_t total = 0;
  std::size_t simulated = 0;  // actually ran the simulator this invocation
  std::size_t cached = 0;     // served from the result cache
  std::size_t resumed = 0;    // skipped because the checkpoint marked them done
  std::size_t pending = 0;    // not attempted (max_cells cutoff)
  int jobs = 1;
  double wall_sec = 0.0;
  double worker_occupancy = 0.0;  // pool busy time / (jobs * wall)
};

// Run the campaign. Throws std::invalid_argument for a malformed grid and
// std::runtime_error for unusable cache/checkpoint/results files.
CampaignReport run_campaign(const GridSpec& grid, const CampaignOptions& opts);

// ---- dtnsim-sweep command line ------------------------------------------
// Parsing lives here (not in the tool binary) so it is unit-testable, the
// same split the iperf3 front end uses.

struct SweepCli {
  bool show_help = false;
  std::string error;  // non-empty -> parse failed
  GridSpec grid;
  CampaignOptions run;
  bool quick = false;  // 2 s x 2 repeats preset for smokes
  // Non-empty: render the paper-style summary table from a finished
  // campaign's JSONL results stream (--out file) and exit — no simulation.
  std::string report_path;
  // With --report: also emit figure-ready gnuplot (<base>.gp + <base>.dat)
  // from the same rows (report::write_campaign_plot).
  std::string plot_out;
  // --gc: garbage-collect the --cache directory and exit — no simulation.
  // Criteria come from --max-age-days / --salt-mismatch, --dry-run previews.
  bool gc = false;
  GcOptions gc_opts;
};

SweepCli parse_sweep_cli(const std::vector<std::string>& args);
std::string sweep_cli_help();

// Run and render a text report. Returns a process exit code.
int run_sweep_cli(const SweepCli& cli, std::string& output);

}  // namespace dtnsim::sweep
