// Declarative parameter grid over harness::TestSpec.
//
// Every paper figure is a cross-product — kernels x paths x stream counts x
// tuning knobs — and before this subsystem each bench binary hand-rolled its
// own nested loops. A GridSpec names the axes once; expand() produces the
// deterministic, stably ordered cell list the campaign engine runs.
//
// Determinism contract (see docs/SWEEP.md):
//   - expansion is row-major over the axes in declaration order (kernels
//     slowest, ring fastest); the same GridSpec always yields the same cell
//     list in the same order.
//   - each cell's seed is derived from the campaign base_seed and the hash
//     of the cell's own knob content — NOT from its position — so adding,
//     removing or reordering axis values never changes the seed (and hence
//     the cached result) of any other cell.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dtnsim/harness/runner.hpp"
#include "dtnsim/obs/telemetry.hpp"

namespace dtnsim::sweep {

struct GridSpec {
  std::string name = "campaign";
  // Testbed by name, as the CLI spells them: amlight | amlight-baremetal |
  // esnet | production. The testbed is rebuilt per kernel axis value.
  std::string testbed = "esnet";

  // Axes, expanded row-major in this declaration order. Every axis must be
  // non-empty (a single value makes it a constant).
  std::vector<kern::KernelVersion> kernels{kern::KernelVersion::V6_8};
  std::vector<std::string> paths{""};    // "" -> the testbed LAN
  std::vector<int> streams{1};           // iperf -P
  std::vector<double> pacing_gbps{0.0};  // per-stream fq rate; 0 = unpaced
  std::vector<bool> zerocopy{false};
  std::vector<double> optmem_max{-1.0};  // bytes; < 0 -> testbed default
  std::vector<bool> big_tcp{false};
  std::vector<int> ring{-1};             // descriptors; < 0 -> testbed default
  // Scenario timelines (docs/SCENARIO.md); an empty Timeline is the "no
  // scenario" value. Non-empty timelines enter the cell seed and the cache
  // key event-by-event, so editing a timeline re-simulates only its cells.
  std::vector<dtnsim::scenario::Timeline> scenarios{dtnsim::scenario::Timeline{}};

  // Non-axis knobs applied to every cell.
  bool skip_rx_copy = false;
  kern::CongestionAlgo congestion = kern::CongestionAlgo::Cubic;
  double big_tcp_bytes = 150.0 * 1024.0;
  double duration_sec = 60.0;
  int repeats = 10;
  std::uint64_t base_seed = 0x5eed;
  // Applied to every cell verbatim. Telemetry does not enter the cell seed
  // or the cache key, but the campaign engine refuses to cache cells with
  // telemetry enabled (series are too big to address by spec content).
  obs::TelemetryConfig telemetry;
};

// One expanded grid cell.
struct Cell {
  std::size_t index = 0;   // position in expansion order
  harness::TestSpec spec;  // runnable; base_seed already derived
  // Axis coordinates as printable (axis, value) pairs, in axis order —
  // exactly what the campaign's JSONL rows carry.
  std::vector<std::pair<std::string, std::string>> coords;
};

// "" when the grid is well-formed, otherwise a human-readable problem.
std::string validate(const GridSpec& grid);

std::size_t cell_count(const GridSpec& grid);

// Expand to the full cell list. Throws std::invalid_argument when
// validate() reports a problem (including an unknown testbed or path name).
std::vector<Cell> expand(const GridSpec& grid);

}  // namespace dtnsim::sweep
