// Fixed-size worker pool — the campaign engine's execution substrate and the
// repo's first real multithreading.
//
// Design rules that keep parallel sweeps byte-identical to serial ones:
//   - the pool runs *independent* simulations: every cell owns its Rng, its
//     engine and its telemetry; nothing is shared between jobs but the queue.
//   - callers write results back by index into pre-sized storage, so output
//     order never depends on completion order.
//   - jobs <= 1 runs every job inline on the calling thread: the serial path
//     spawns no threads at all and is the reference behaviour.
//
// This component is deliberately generic (std::function jobs, no harness
// types) so it can sit *below* harness in the module layering: the sweep
// campaign engine drives it from above, and harness::run_tests delegates to
// it from below.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace dtnsim::sweep {

// Resolve a --jobs value: 0 means one worker per hardware thread, anything
// else clamps to at least 1.
int resolve_jobs(int jobs);

class WorkerPool {
 public:
  // `jobs` is resolved via resolve_jobs(); with a resolved value of 1 the
  // pool is inline (submit() runs the job on the calling thread).
  explicit WorkerPool(int jobs = 1);
  ~WorkerPool();  // drains the queue, then joins

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int jobs() const { return jobs_; }

  // Enqueue a job. Jobs must be independent of each other; they may run in
  // any order and on any worker.
  void submit(std::function<void()> job);

  // Block until every submitted job has finished. Rethrows the first
  // exception any job raised (remaining jobs still run to completion, so
  // index-addressed result storage stays consistent).
  void wait();

  // Total time workers spent inside jobs, for the sweep.worker_occupancy
  // metric. Stable only after wait().
  double busy_sec() const;

 private:
  void worker_loop();
  void run_job(std::function<void()>& job);

  int jobs_ = 1;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable done_cv_;   // waiters: everything drained
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stopping_ = false;
  std::exception_ptr first_error_;
  double busy_sec_ = 0.0;
};

// Convenience: run task(i) for every i in [0, n) on `jobs` workers and block
// until all complete. The canonical "write results by index" loop.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& task);

}  // namespace dtnsim::sweep
