#include "dtnsim/sweep/pool.hpp"

#include <algorithm>
#include <chrono>

namespace dtnsim::sweep {

int resolve_jobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  return std::max(jobs, 1);
}

WorkerPool::WorkerPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  if (jobs_ <= 1) return;  // inline mode: no threads
  threads_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run_job(std::function<void()>& job) {
  // Wall-clock feeds the busy-seconds gauge only, never results.
  const auto start = std::chrono::steady_clock::now();  // dtnsim-lint: allow(determinism)
  std::exception_ptr error;
  try {
    job();
  } catch (...) {
    error = std::current_exception();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -  // dtnsim-lint: allow(determinism)
                                    start)
          .count();
  std::unique_lock<std::mutex> lock(mu_);
  busy_sec_ += elapsed;
  if (error && !first_error_) first_error_ = error;
}

void WorkerPool::submit(std::function<void()> job) {
  if (jobs_ <= 1) {
    // Serial reference path: run right here, no queue, no threads. Errors
    // still surface from wait() so both modes behave identically.
    run_job(job);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void WorkerPool::wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

double WorkerPool::busy_sec() const {
  std::unique_lock<std::mutex> lock(mu_);
  return busy_sec_;
}

void WorkerPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& task) {
  WorkerPool pool(jobs);
  for (std::size_t i = 0; i < n; ++i) pool.submit([&task, i] { task(i); });
  pool.wait();
}

}  // namespace dtnsim::sweep
