#include "dtnsim/sweep/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "dtnsim/cli/cli.hpp"
#include "dtnsim/report/analysis.hpp"
#include "dtnsim/report/record.hpp"
#include "dtnsim/sweep/cache.hpp"
#include "dtnsim/sweep/pool.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::sweep {
namespace {

// Fingerprint of the expanded grid: hashes every cell's content address, so
// any change to any knob, axis value or ordering-relevant property shows up.
std::string grid_fingerprint(const std::vector<Cell>& cells) {
  std::string text(kCacheSalt);
  for (const auto& cell : cells) {
    text += '\n';
    text += spec_key_hex(cell.spec);
  }
  return strfmt("%016llx", static_cast<unsigned long long>(fnv1a64(text)));
}

Json row_json(const CellOutcome& out, const std::string& spec_name) {
  Json j = Json::object();
  j["index"] = static_cast<std::int64_t>(out.index);
  j["key"] = out.key_hex;
  j["name"] = spec_name;
  Json coords = Json::object();
  for (const auto& [axis, value] : out.coords) coords[axis] = value;
  j["coords"] = std::move(coords);
  j["cached"] = out.cached;
  const auto& r = out.result;
  j["repeats"] = r.repeats;
  j["avg_gbps"] = r.avg_gbps;
  j["min_gbps"] = r.min_gbps;
  j["max_gbps"] = r.max_gbps;
  j["stdev_gbps"] = r.stdev_gbps;
  j["avg_retransmits"] = r.avg_retransmits;
  j["flow_min_gbps"] = r.flow_min_gbps;
  j["flow_max_gbps"] = r.flow_max_gbps;
  j["snd_cpu_pct"] = r.snd_cpu_pct;
  j["rcv_cpu_pct"] = r.rcv_cpu_pct;
  j["zc_fallback_ratio"] = r.zc_fallback_ratio;
  Json samples = Json::array();
  for (const double s : r.samples_gbps) samples.push_back(s);
  j["samples_gbps"] = std::move(samples);
  // Telemetry extras, presence-driven: --report grows the matching columns
  // only when some row carries them. Cached rows never have them (cells
  // with telemetry enabled bypass the result cache).
  if (!r.perf_log.empty()) {
    j["tx_cyc_per_byte"] = r.perf_log.back().tx_cyc_per_byte();
    j["rx_cyc_per_byte"] = r.perf_log.back().rx_cyc_per_byte();
  }
  if (!r.repeat_series.empty()) {
    const obs::SeriesTable& series = r.repeat_series.front();
    const std::string col = report::goodput_column(series);
    const auto window = report::episode_window(r.scenario_log);
    if (!col.empty() && window) {
      const report::RecoveryStats rec =
          report::analyze_recovery(series, col, window->first, window->second);
      j["baseline_gbps"] = rec.baseline.gbps();
      j["dip_gbps"] = rec.dip.gbps();
      j["recovery_sec"] = rec.recovered ? rec.recovery.seconds() : -1.0;
      j["retained"] = rec.retained();
    }
  }
  return j;
}

struct Checkpoint {
  std::string grid;            // fingerprint from the header line
  std::size_t cells = 0;       // grid size from the header line
  std::vector<std::string> done_keys;
};

// Parse an existing manifest; nullopt when the file does not exist.
// Truncated trailing lines (killed mid-write) are ignored.
std::optional<Checkpoint> read_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Checkpoint ckpt;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto doc = Json::parse(line);
    if (!doc) continue;  // torn final line from an interrupt
    if (!have_header) {
      ckpt.grid = doc->string_at("grid", "");
      ckpt.cells = static_cast<std::size_t>(doc->number_at("cells", 0));
      have_header = true;
      continue;
    }
    const std::string key = doc->string_at("key", "");
    if (!key.empty()) ckpt.done_keys.push_back(key);
  }
  if (!have_header) return std::nullopt;
  return ckpt;
}

// An append-or-truncate line stream that flushes after every line, so the
// manifest and the results stream survive a kill between cells.
class LineWriter {
 public:
  LineWriter(const std::string& path, bool append) {
    if (path.empty()) return;
    out_.open(path, append ? std::ios::app : std::ios::trunc);
    if (!out_) throw std::runtime_error("sweep: cannot open " + path + " for writing");
  }
  bool enabled() const { return out_.is_open(); }
  void line(const std::string& text) {
    if (!out_.is_open()) return;
    out_ << text << '\n';
    out_.flush();
  }

 private:
  std::ofstream out_;
};

}  // namespace

CampaignReport run_campaign(const GridSpec& grid, const CampaignOptions& opts) {
  // Wall-clock is reporting-only here; results stay seed-deterministic.
  const auto t0 = std::chrono::steady_clock::now();  // dtnsim-lint: allow(determinism)
  std::vector<Cell> cells = expand(grid);  // throws on a malformed grid

  CampaignReport report;
  report.name = grid.name;
  report.total = cells.size();
  report.jobs = resolve_jobs(opts.jobs);

  std::string checkpoint_path = opts.checkpoint_path;
  if (checkpoint_path.empty() && !opts.results_path.empty()) {
    checkpoint_path = opts.results_path + ".ckpt";
  }

  // Resume: collect the keys the manifest says are complete.
  const std::string fingerprint = grid_fingerprint(cells);
  std::vector<std::string> done_keys;
  bool appending = false;
  if (opts.resume && !checkpoint_path.empty()) {
    if (const auto ckpt = read_checkpoint(checkpoint_path)) {
      if (ckpt->grid != fingerprint || ckpt->cells != cells.size()) {
        throw std::runtime_error(strfmt(
            "sweep resume: checkpoint %s was written for a different grid "
            "(fingerprint %s vs %s) — refusing to mix campaigns",
            checkpoint_path.c_str(), ckpt->grid.c_str(), fingerprint.c_str()));
      }
      done_keys = ckpt->done_keys;
      appending = true;  // keep prior rows; append the rest
    }
  }

  std::unique_ptr<ResultCache> cache;
  if (!opts.cache_dir.empty()) cache = std::make_unique<ResultCache>(opts.cache_dir);

  LineWriter results(opts.results_path, appending);
  LineWriter manifest(checkpoint_path, appending);
  if (manifest.enabled() && !appending) {
    Json header = Json::object();
    header["schema"] = std::string(kCacheSalt);
    header["campaign"] = grid.name;
    header["grid"] = fingerprint;
    header["cells"] = static_cast<std::int64_t>(cells.size());
    manifest.line(header.dump());
  }

  // Metrics registered up front so export order is stable.
  obs::Gauge* m_total = nullptr;
  obs::Counter* m_done = nullptr;
  obs::Counter* m_cached = nullptr;
  obs::Counter* m_simulated = nullptr;
  obs::Counter* m_resumed = nullptr;
  obs::Gauge* m_jobs = nullptr;
  obs::Gauge* m_wall = nullptr;
  obs::Gauge* m_occupancy = nullptr;
  if (opts.metrics) {
    m_total = opts.metrics->gauge("sweep.cells_total", "cells", "grid size");
    m_done = opts.metrics->counter("sweep.cells_done", "cells",
                                   "cells completed this invocation");
    m_cached = opts.metrics->counter("sweep.cells_cached", "cells",
                                     "cells served from the result cache");
    m_simulated = opts.metrics->counter("sweep.cells_simulated", "cells",
                                        "cells that ran the simulator");
    m_resumed = opts.metrics->counter("sweep.cells_resumed", "cells",
                                      "cells skipped via the checkpoint manifest");
    m_jobs = opts.metrics->gauge("sweep.jobs", "threads", "worker pool size");
    m_wall = opts.metrics->gauge("sweep.wall_sec", "s", "campaign wall time");
    m_occupancy = opts.metrics->gauge("sweep.worker_occupancy", "frac",
                                      "pool busy time / (jobs * wall)");
    m_total->set(static_cast<double>(cells.size()));
    m_jobs->set(static_cast<double>(report.jobs));
  }

  report.cells.resize(cells.size());
  std::mutex io_mu;  // serializes row/manifest writes + shared counters

  WorkerPool pool(report.jobs);
  std::size_t scheduled = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cell& cell = cells[i];
    CellOutcome& out = report.cells[i];
    out.index = i;
    out.key_hex = spec_key_hex(cell.spec);
    out.coords = cell.coords;

    // Resumed cells never reach the pool; re-serve from cache if possible.
    const bool already_done =
        std::find(done_keys.begin(), done_keys.end(), out.key_hex) != done_keys.end();
    if (already_done) {
      out.resumed = true;
      out.done = true;
      ++report.resumed;
      if (m_resumed) m_resumed->increment();
      if (cache && cache->load(cell.spec, &out.result)) out.cached = true;
      continue;
    }
    if (opts.max_cells > 0 && scheduled >= opts.max_cells) {
      ++report.pending;
      continue;
    }
    ++scheduled;

    pool.submit([&cell, &out, &report, &results, &manifest, &io_mu, &cache,
                 m_done, m_cached, m_simulated] {
      bool cached = false;
      harness::TestResult result;
      // Telemetry payloads are not cacheable; bypass the store for them.
      const bool cacheable = cache && !cell.spec.telemetry.enabled;
      if (cacheable && cache->load(cell.spec, &result)) {
        cached = true;
      } else {
        result = harness::run_test(cell.spec);
        if (cacheable) cache->store(cell.spec, result);
      }

      std::lock_guard<std::mutex> lock(io_mu);
      out.result = std::move(result);
      out.cached = cached;
      out.done = true;
      if (cached) {
        ++report.cached;
        if (m_cached) m_cached->increment();
      } else {
        ++report.simulated;
        if (m_simulated) m_simulated->increment();
      }
      if (m_done) m_done->increment();
      // Result row first, then the manifest line: a cell is only ever
      // marked done after its row is on disk.
      results.line(row_json(out, cell.spec.name).dump());
      Json done = Json::object();
      done["index"] = static_cast<std::int64_t>(out.index);
      done["key"] = out.key_hex;
      manifest.line(done.dump());
    });
  }
  pool.wait();

  report.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -  // dtnsim-lint: allow(determinism)
                                    t0)
          .count();
  report.worker_occupancy =
      report.wall_sec > 0
          ? pool.busy_sec() / (static_cast<double>(report.jobs) * report.wall_sec)
          : 0.0;
  if (opts.metrics) {
    m_wall->set(report.wall_sec);
    m_occupancy->set(report.worker_occupancy);
  }
  return report;
}

// ---- dtnsim-sweep command line ------------------------------------------

namespace {

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(text);
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

bool parse_bool_list(const std::string& text, std::vector<bool>* out) {
  std::vector<bool> values;
  for (const auto& item : split_list(text)) {
    if (item == "0") values.push_back(false);
    else if (item == "1") values.push_back(true);
    else return false;
  }
  if (values.empty()) return false;
  *out = values;
  return true;
}

bool parse_int_list(const std::string& text, std::vector<int>* out,
                    bool allow_default) {
  std::vector<int> values;
  for (const auto& item : split_list(text)) {
    if (allow_default && item == "default") {
      values.push_back(-1);
      continue;
    }
    char* end = nullptr;
    const long v = std::strtol(item.c_str(), &end, 10);
    if (end != item.c_str() + item.size() || item.empty()) return false;
    values.push_back(static_cast<int>(v));
  }
  if (values.empty()) return false;
  *out = values;
  return true;
}

// Rates with suffixes ("50G") or the word "default" (-> -1).
bool parse_rate_list(const std::string& text, std::vector<double>* out,
                     bool allow_default) {
  std::vector<double> values;
  for (const auto& item : split_list(text)) {
    if (allow_default && item == "default") {
      values.push_back(-1.0);
      continue;
    }
    const auto rate = cli::parse_rate(item);
    if (!rate) return false;
    values.push_back(*rate);
  }
  if (values.empty()) return false;
  *out = values;
  return true;
}

bool needs_value(const std::string& flag) {
  return flag == "--name" || flag == "--testbed" || flag == "--kernels" ||
         flag == "--paths" || flag == "--streams" || flag == "--pacing" ||
         flag == "--zerocopy" || flag == "--optmem" || flag == "--big-tcp" ||
         flag == "--ring" || flag == "--congestion" || flag == "--time" ||
         flag == "--repeats" || flag == "--seed" || flag == "--jobs" ||
         flag == "--cache" || flag == "--out" || flag == "--checkpoint" ||
         flag == "--max-cells" || flag == "--report" || flag == "--scenarios" ||
         flag == "--max-age-days" || flag == "--plot-out";
}

}  // namespace

SweepCli parse_sweep_cli(const std::vector<std::string>& args) {
  SweepCli o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string flag = args[i];
    std::string value;
    bool has_inline_value = false;
    if (flag.rfind("--", 0) == 0) {
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
        has_inline_value = true;
      }
    }
    if (needs_value(flag) && !has_inline_value) {
      if (i + 1 >= args.size()) {
        o.error = "missing value for " + flag;
        return o;
      }
      value = args[++i];
    } else if (has_inline_value && !needs_value(flag)) {
      o.error = "flag does not take a value: " + flag;
      return o;
    }

    if (flag == "-h" || flag == "--help") {
      o.show_help = true;
    } else if (flag == "--name") {
      o.grid.name = value;
    } else if (flag == "--testbed") {
      o.grid.testbed = value;
    } else if (flag == "--kernels") {
      o.grid.kernels.clear();
      for (const auto& item : split_list(value)) {
        const auto k = cli::parse_kernel(item);
        if (!k) {
          o.error = "unknown kernel in --kernels: " + item;
          return o;
        }
        o.grid.kernels.push_back(*k);
      }
      if (o.grid.kernels.empty()) {
        o.error = "--kernels list is empty";
        return o;
      }
    } else if (flag == "--paths") {
      o.grid.paths = split_list(value);
      if (o.grid.paths.empty()) {
        o.error = "--paths list is empty";
        return o;
      }
    } else if (flag == "--streams") {
      if (!parse_int_list(value, &o.grid.streams, /*allow_default=*/false)) {
        o.error = "bad --streams list: " + value;
        return o;
      }
    } else if (flag == "--pacing") {
      std::vector<double> bps;
      if (!parse_rate_list(value, &bps, /*allow_default=*/false)) {
        o.error = "bad --pacing list: " + value;
        return o;
      }
      o.grid.pacing_gbps.clear();
      for (const double b : bps) o.grid.pacing_gbps.push_back(b / 1e9);
    } else if (flag == "--zerocopy") {
      if (!parse_bool_list(value, &o.grid.zerocopy)) {
        o.error = "bad --zerocopy list (0/1): " + value;
        return o;
      }
    } else if (flag == "--optmem") {
      if (!parse_rate_list(value, &o.grid.optmem_max, /*allow_default=*/true)) {
        o.error = "bad --optmem list: " + value;
        return o;
      }
    } else if (flag == "--big-tcp") {
      if (!parse_bool_list(value, &o.grid.big_tcp)) {
        o.error = "bad --big-tcp list (0/1): " + value;
        return o;
      }
    } else if (flag == "--ring") {
      if (!parse_int_list(value, &o.grid.ring, /*allow_default=*/true)) {
        o.error = "bad --ring list: " + value;
        return o;
      }
    } else if (flag == "--scenarios") {
      // Comma list of timeline JSON files; the word "none" is the empty
      // (scenario-less) axis value.
      o.grid.scenarios.clear();
      for (const auto& item : split_list(value)) {
        if (item == "none") {
          o.grid.scenarios.emplace_back();
          continue;
        }
        try {
          o.grid.scenarios.push_back(scenario::load_timeline(item));
        } catch (const std::exception& e) {
          o.error = std::string("bad --scenarios entry: ") + e.what();
          return o;
        }
      }
      if (o.grid.scenarios.empty()) {
        o.error = "--scenarios list is empty";
        return o;
      }
    } else if (flag == "--congestion") {
      const auto algo = cli::parse_congestion(value);
      if (!algo) {
        o.error = "unknown congestion algorithm: " + value;
        return o;
      }
      o.grid.congestion = *algo;
    } else if (flag == "--skip-rx-copy") {
      o.grid.skip_rx_copy = true;
    } else if (flag == "--time") {
      o.grid.duration_sec = std::atof(value.c_str());
      if (o.grid.duration_sec <= 0) {
        o.error = "duration must be positive";
        return o;
      }
    } else if (flag == "--repeats") {
      o.grid.repeats = std::atoi(value.c_str());
      if (o.grid.repeats < 1) {
        o.error = "repeats must be >= 1";
        return o;
      }
    } else if (flag == "--seed") {
      o.grid.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--jobs") {
      char* end = nullptr;
      const long jobs = std::strtol(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || value.empty() || jobs < 0) {
        o.error = "bad --jobs (need >= 0; 0 = hardware threads): " + value;
        return o;
      }
      o.run.jobs = static_cast<int>(jobs);
    } else if (flag == "--cache") {
      o.run.cache_dir = value;
    } else if (flag == "--out") {
      o.run.results_path = value;
    } else if (flag == "--checkpoint") {
      o.run.checkpoint_path = value;
    } else if (flag == "--resume") {
      o.run.resume = true;
    } else if (flag == "--report") {
      o.report_path = value;
    } else if (flag == "--plot-out") {
      o.plot_out = value;
    } else if (flag == "--telemetry") {
      o.grid.telemetry.enabled = true;
    } else if (flag == "--perf") {
      o.grid.telemetry.enabled = true;
      o.grid.telemetry.perf_enabled = true;
    } else if (flag == "--max-cells") {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        o.error = "--max-cells must be >= 0";
        return o;
      }
      o.run.max_cells = static_cast<std::size_t>(n);
    } else if (flag == "--quick") {
      o.quick = true;
    } else if (flag == "--gc") {
      o.gc = true;
    } else if (flag == "--max-age-days") {
      char* end = nullptr;
      const double days = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() || days < 0) {
        o.error = "bad --max-age-days (need >= 0): " + value;
        return o;
      }
      o.gc_opts.max_age_days = days;
    } else if (flag == "--salt-mismatch") {
      o.gc_opts.salt_mismatch = true;
    } else if (flag == "--dry-run") {
      o.gc_opts.dry_run = true;
    } else {
      o.error = "unknown flag: " + flag;
      return o;
    }
  }
  if (o.quick) {
    o.grid.duration_sec = 2.0;
    o.grid.repeats = 2;
  }
  return o;
}

std::string sweep_cli_help() {
  return
      "dtnsim-sweep — parallel campaign engine over the dtnsim harness\n"
      "\n"
      "grid axes (comma-separated lists; every combination is one cell):\n"
      "      --kernels LIST     e.g. 5.15,6.5,6.8\n"
      "      --paths LIST       e.g. LAN,WAN 63ms  (empty item = testbed LAN)\n"
      "      --streams LIST     iperf -P values, e.g. 1,8,16\n"
      "      --pacing LIST      per-stream fq rates, e.g. 0,20G,50G (0 = unpaced)\n"
      "      --zerocopy LIST    0,1\n"
      "      --optmem LIST      bytes or 'default', e.g. default,1M\n"
      "      --big-tcp LIST     0,1\n"
      "      --ring LIST        descriptors or 'default', e.g. default,8192\n"
      "      --scenarios LIST   timeline JSON files or 'none', e.g.\n"
      "                         none,scenarios/link_flap.json (docs/SCENARIO.md)\n"
      "grid constants:\n"
      "      --name S           campaign name (default 'campaign')\n"
      "      --testbed NAME     amlight | amlight-baremetal | esnet | production\n"
      "      --congestion A     cubic | bbr | bbr3 | reno\n"
      "      --skip-rx-copy     MSG_TRUNC receives in every cell\n"
      "      --time SEC         per-run duration (default 60)\n"
      "      --repeats N        harness repeats per cell (default 10)\n"
      "      --seed N           campaign base seed (cell seeds derive from it)\n"
      "      --quick            smoke preset: --time 2 --repeats 2\n"
      "execution (docs/SWEEP.md):\n"
      "      --jobs N           worker threads (default 1; 0 = hardware threads)\n"
      "      --cache DIR        content-addressed result cache directory\n"
      "      --out FILE         stream one JSONL row per finished cell\n"
      "      --checkpoint FILE  manifest path (default: <out>.ckpt)\n"
      "      --resume           skip cells the manifest marks complete\n"
      "      --max-cells K      stop after K cells (interrupt-style testing)\n"
      "      --telemetry        attach interval probes to every cell; with\n"
      "                         --scenarios the rows gain dip/recovery columns\n"
      "                         (telemetry cells bypass the result cache)\n"
      "      --perf             cycle attribution in every cell; rows gain\n"
      "                         cycles/byte columns (implies --telemetry)\n"
      "      --report FILE      render the summary table from a finished\n"
      "                         campaign's JSONL stream (no simulation);\n"
      "                         cycles/byte and dip/recovery columns appear\n"
      "                         when the rows carry them\n"
      "      --plot-out BASE    with --report: also write BASE.gp + BASE.dat\n"
      "                         (figure-ready gnuplot) from the same rows\n"
      "cache maintenance:\n"
      "      --gc               garbage-collect the --cache directory and exit\n"
      "      --max-age-days D   with --gc: evict entries older than D days\n"
      "      --salt-mismatch    with --gc: evict entries from other schema\n"
      "                         versions (and unreadable entries)\n"
      "      --dry-run          with --gc: report what would go, delete nothing\n";
}

namespace {

// Parse a campaign JSONL stream into rows; torn trailing lines (killed
// mid-write) are skipped. Empty result + false on an unreadable file.
bool read_campaign_rows(const std::string& path, std::vector<Json>* rows) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = Json::parse(line);
    if (!doc) continue;  // torn final line from an interrupt
    rows->push_back(std::move(*doc));
  }
  return true;
}

// `dtnsim-sweep --report results.jsonl`: re-render a finished campaign's
// streamed rows as the paper-style summary table, offline. Rows whose cells
// were served from a prior output (repeats == 0) are counted but not shown.
// Two passes over the rows: the first discovers which optional columns any
// row carries (cycles/byte from --perf, dip/recovery from --telemetry +
// --scenarios), the second renders the table with exactly those columns.
int render_campaign_report(const std::string& path, const std::vector<Json>& rows,
                           std::string& output) {
  bool has_perf = false, has_dip = false;
  for (const Json& doc : rows) {
    if (doc.find("tx_cyc_per_byte")) has_perf = true;
    if (doc.find("dip_gbps")) has_dip = true;
  }

  std::string name;
  std::size_t shown = 0, cached = 0, skipped = 0;
  std::string table;
  table += strfmt("  %4s %-44s %16s %7s %7s %8s %4s %4s", "idx", "cell",
                  "Gbps (avg±sd)", "min", "max", "retrans", "TX%", "RX%");
  if (has_perf) table += strfmt(" %8s %8s", "tx cyc/B", "rx cyc/B");
  if (has_dip) table += strfmt(" %8s %7s %6s", "dip Gbps", "rec s", "kept%");
  table += '\n';
  for (const Json& doc : rows) {
    if (name.empty()) name = doc.string_at("name", "");
    if (doc.bool_at("cached", false)) ++cached;
    if (doc.number_at("repeats", 0) <= 0) {
      ++skipped;  // resumed cell whose result lives in a prior stream
      continue;
    }
    ++shown;
    // The row's name is the full spec label; coords alone are shorter but
    // the label is what the live campaign output prints.
    table += strfmt("  %4.0f %-44s %8.2f ± %5.2f %7.2f %7.2f %8.0f %4.0f %4.0f",
                    doc.number_at("index", -1),
                    doc.string_at("name", "?").c_str(),
                    doc.number_at("avg_gbps", 0), doc.number_at("stdev_gbps", 0),
                    doc.number_at("min_gbps", 0), doc.number_at("max_gbps", 0),
                    doc.number_at("avg_retransmits", 0),
                    doc.number_at("snd_cpu_pct", 0),
                    doc.number_at("rcv_cpu_pct", 0));
    if (has_perf) {
      if (doc.find("tx_cyc_per_byte")) {
        table += strfmt(" %8.2f %8.2f", doc.number_at("tx_cyc_per_byte", 0),
                        doc.number_at("rx_cyc_per_byte", 0));
      } else {
        table += strfmt(" %8s %8s", "-", "-");
      }
    }
    if (has_dip) {
      if (doc.find("dip_gbps")) {
        const double rec_sec = doc.number_at("recovery_sec", -1);
        table += strfmt(" %8.2f", doc.number_at("dip_gbps", 0));
        table += rec_sec < 0 ? strfmt(" %7s", "never")
                             : strfmt(" %7.1f", rec_sec);
        table += strfmt(" %6.0f", 100.0 * doc.number_at("retained", 0));
      } else {
        table += strfmt(" %8s %7s %6s", "-", "-", "-");
      }
    }
    table += '\n';
  }
  if (shown + skipped == 0) {
    output = strfmt("error: %s holds no result rows\n", path.c_str());
    return 2;
  }
  output = strfmt("campaign report: %s (%zu rows, %zu cached", path.c_str(),
                  shown + skipped, cached);
  if (skipped > 0) output += strfmt(", %zu in prior streams", skipped);
  output += ")\n" + table;
  return 0;
}

}  // namespace

int run_sweep_cli(const SweepCli& cli, std::string& output) {
  if (!cli.error.empty()) {
    output = "error: " + cli.error + "\n\n" + sweep_cli_help();
    return 2;
  }
  if (cli.show_help) {
    output = sweep_cli_help();
    return 0;
  }
  if (!cli.report_path.empty()) {
    std::vector<Json> rows;
    if (!read_campaign_rows(cli.report_path, &rows)) {
      output = strfmt("error: cannot read %s\n", cli.report_path.c_str());
      return 2;
    }
    const int code = render_campaign_report(cli.report_path, rows, output);
    if (code != 0) return code;
    if (!cli.plot_out.empty()) {
      // Rows carry spec labels, not the campaign name; the stream path is
      // the most recognizable figure title available offline.
      if (!report::write_campaign_plot(cli.plot_out, cli.report_path, rows)) {
        output += strfmt("error: cannot write plot to %s.{gp,dat}\n",
                         cli.plot_out.c_str());
        return 1;
      }
      output += strfmt("plot: %s.gp + %s.dat (render with: gnuplot %s.gp)\n",
                       cli.plot_out.c_str(), cli.plot_out.c_str(),
                       cli.plot_out.c_str());
    }
    return 0;
  }
  if (!cli.plot_out.empty()) {
    output = "error: --plot-out needs --report FILE (rows to plot)\n";
    return 2;
  }
  if (cli.gc) {
    if (cli.run.cache_dir.empty()) {
      output = "error: --gc needs --cache DIR\n";
      return 2;
    }
    if (cli.gc_opts.max_age_days < 0 && !cli.gc_opts.salt_mismatch) {
      output = "error: --gc needs --max-age-days and/or --salt-mismatch\n";
      return 2;
    }
    try {
      const ResultCache cache(cli.run.cache_dir);
      const GcReport gc = cache.gc(cli.gc_opts);
      output = strfmt(
          "cache gc: %s%s\n"
          "  scanned  : %zu entries\n"
          "  evicted  : %zu (%.1f KiB%s)\n"
          "  kept     : %zu\n",
          cli.run.cache_dir.c_str(), gc.dry_run ? " (dry run)" : "", gc.scanned,
          gc.evicted, static_cast<double>(gc.reclaimed_bytes) / 1024.0,
          gc.dry_run ? " would be reclaimed" : " reclaimed", gc.kept);
      return 0;
    } catch (const std::exception& e) {
      output = strfmt("error: %s\n", e.what());
      return 2;
    }
  }

  CampaignReport report;
  try {
    report = run_campaign(cli.grid, cli.run);
  } catch (const std::exception& e) {
    output = strfmt("error: %s\n", e.what());
    return 2;
  }

  output = strfmt("campaign '%s': %zu cells, jobs=%d\n", report.name.c_str(),
                  report.total, report.jobs);
  for (const auto& cell : report.cells) {
    if (!cell.done) continue;
    const char* tag = cell.resumed ? " [resumed]" : cell.cached ? " [cached]" : "";
    if (cell.result.repeats > 0) {
      output += strfmt("  #%03zu %-56s %7.2f ± %5.2f Gbps%s\n", cell.index,
                       cell.result.name.c_str(), cell.result.avg_gbps,
                       cell.result.stdev_gbps, tag);
    } else {
      output += strfmt("  #%03zu (result in prior output; not cached)%s\n",
                       cell.index, tag);
    }
  }
  output += strfmt(
      "summary: total=%zu simulated=%zu cached=%zu resumed=%zu pending=%zu\n"
      "wall=%.2fs occupancy=%.0f%%\n",
      report.total, report.simulated, report.cached, report.resumed,
      report.pending, report.wall_sec, report.worker_occupancy * 100.0);
  return 0;
}

}  // namespace dtnsim::sweep
