// dtnsim public API.
//
// One include gives you the full library:
//
//   #include "dtnsim/core/dtnsim.hpp"
//
//   auto tb = dtnsim::harness::amlight();
//   auto result = dtnsim::Experiment(tb)
//                     .path("WAN 104ms")
//                     .zerocopy(true)
//                     .pacing(units::Rate::from_gbps(50))
//                     .repeats(10)
//                     .run();
//   std::cout << result.avg_gbps << " Gbps\n";
//
// Lower layers (cpu, kern, net, tcp, host, flow, app, harness) are included
// for advanced composition; Experiment and TuningAdvisor are the intended
// entry points.
#pragma once

#include "dtnsim/app/iperf.hpp"
#include "dtnsim/app/mpstat.hpp"
#include "dtnsim/core/advisor.hpp"
#include "dtnsim/core/experiment.hpp"
#include "dtnsim/cpu/cost_model.hpp"
#include "dtnsim/flow/transfer.hpp"
#include "dtnsim/harness/runner.hpp"
#include "dtnsim/harness/testbeds.hpp"
#include "dtnsim/host/host.hpp"
#include "dtnsim/host/vm.hpp"
#include "dtnsim/kern/gro.hpp"
#include "dtnsim/kern/gso.hpp"
#include "dtnsim/kern/skb.hpp"
#include "dtnsim/kern/sysctl.hpp"
#include "dtnsim/kern/version.hpp"
#include "dtnsim/kern/zc_socket.hpp"
#include "dtnsim/net/nic.hpp"
#include "dtnsim/net/path.hpp"
#include "dtnsim/net/qdisc.hpp"
#include "dtnsim/net/switch_model.hpp"
#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/obs/probe.hpp"
#include "dtnsim/obs/telemetry.hpp"
#include "dtnsim/obs/trace.hpp"
#include "dtnsim/sim/engine.hpp"
#include "dtnsim/sweep/cache.hpp"
#include "dtnsim/sweep/campaign.hpp"
#include "dtnsim/sweep/grid.hpp"
#include "dtnsim/sweep/pool.hpp"
#include "dtnsim/tcp/bbr.hpp"
#include "dtnsim/tcp/cc.hpp"
#include "dtnsim/tcp/cubic.hpp"
#include "dtnsim/util/csv.hpp"
#include "dtnsim/util/json.hpp"
#include "dtnsim/util/log.hpp"
#include "dtnsim/util/stats.hpp"
#include "dtnsim/util/strfmt.hpp"
#include "dtnsim/util/table.hpp"
#include "dtnsim/util/units.hpp"
