// Fluent experiment builder over the test harness.
#pragma once

#include <string>

#include "dtnsim/harness/runner.hpp"
#include "dtnsim/units/units.hpp"

namespace dtnsim {

class Experiment {
 public:
  explicit Experiment(harness::Testbed testbed);

  Experiment& path(const std::string& path_name);
  Experiment& streams(int n);
  Experiment& zerocopy(bool on = true);
  Experiment& skip_rx_copy(bool on = true);
  // Per-stream fq pacing rate; a zero rate disables pacing.
  Experiment& pacing(units::Rate rate);
  Experiment& congestion(kern::CongestionAlgo algo);
  Experiment& kernel(kern::KernelVersion version);
  Experiment& optmem_max(units::Bytes limit);
  Experiment& big_tcp(bool on, units::Bytes size = units::Bytes::kib(150));
  Experiment& hw_gro(bool on = true);
  Experiment& mtu(units::Bytes bytes);
  Experiment& ring(int descriptors);
  Experiment& iommu_passthrough(bool on);
  Experiment& irqbalance(bool enabled);
  Experiment& flow_control(bool on);
  Experiment& duration(units::SimTime length);
  Experiment& repeats(int n);
  Experiment& seed(std::uint64_t seed);
  Experiment& label(std::string name);
  // Attach per-interval probes + trace recording to every repeat; the
  // series/trace land on the TestResult (see obs/telemetry.hpp).
  Experiment& telemetry(obs::TelemetryConfig cfg);
  Experiment& telemetry(bool on = true);
  // Kernel-eye snapshots (`dtnsim-ss`): record an end-of-run tcp_info/NIC/
  // qdisc report on repeat 0. Implies telemetry(true).
  Experiment& ss(bool on = true);
  // Periodic snapshots every `interval` of simulated time plus the final
  // one — `dtnsim-ss --watch`. Implies ss(true).
  Experiment& ss_watch(units::SimTime interval);
  // Exact per-stage cycle attribution (`dtnsim-perf`): record an end-of-run
  // PerfReport on repeat 0. Implies telemetry(true).
  Experiment& perf(bool on = true);
  // Periodic attribution samples every `interval` of simulated time plus
  // the final one — `dtnsim-perf --record`. Implies perf(true).
  Experiment& perf_watch(units::SimTime interval);
  // Mid-run fault/condition timeline (`--scenario FILE`): link impairments,
  // NIC/qdisc/sysctl retunes and flow churn fire at scenario::Timeline
  // times while the transfer runs (see docs/SCENARIO.md).
  Experiment& scenario(scenario::Timeline timeline);
  // Bundle the run into a report::RunRecord on the TestResult (`--record-out`,
  // docs/REPORT.md). Implies telemetry + ss + perf.
  Experiment& record(bool on = true);

  // The spec this builder will run (inspectable before running).
  harness::TestSpec spec() const;
  harness::TestResult run() const;

 private:
  harness::Testbed testbed_;
  std::string path_name_;
  app::IperfOptions iperf_;
  int repeats_ = 10;
  std::uint64_t seed_ = 0x5eed;
  std::string label_;
  obs::TelemetryConfig telemetry_;
  dtnsim::scenario::Timeline scenario_;
  bool record_ = false;
};

}  // namespace dtnsim
