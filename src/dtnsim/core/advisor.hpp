// TuningAdvisor: the paper's §V recommendations as executable checks.
//
// Give it a host configuration and a use case (single-flow benchmarking or
// parallel-stream DTN); it returns the ordered list of findings a fasterdata
// engineer would flag, each with the paper-backed expected impact.
#pragma once

#include <string>
#include <vector>

#include "dtnsim/host/host.hpp"
#include "dtnsim/net/path.hpp"
#include "dtnsim/units/units.hpp"

namespace dtnsim {

enum class UseCase {
  SingleFlowBenchmark,  // maximum single-stream throughput (§V-A)
  ParallelStreamDtn,    // production DTN with parallel streams (§V-B)
};

enum class Severity { Critical, Recommended, Informational };

struct Finding {
  Severity severity = Severity::Recommended;
  std::string setting;   // what to change
  std::string rationale; // why, with the paper's measured impact
};

struct Advice {
  std::vector<Finding> findings;

  bool has_critical() const;
  std::string to_string() const;
};

// `path` gives context (WAN vs LAN, link flow control availability).
Advice advise(const host::HostConfig& host, const net::PathSpec& path, UseCase use_case,
              bool link_flow_control);

// Per-flow pacing the paper would suggest for a DTN serving clients at
// `client` speed over a NIC of `nic` speed (§V-B: 1 Gbps for 10G clients,
// 5-8 Gbps between 100G hosts).
units::Rate recommended_pacing(units::Rate nic, units::Rate client);

}  // namespace dtnsim
