#include "dtnsim/core/experiment.hpp"

namespace dtnsim {

Experiment::Experiment(harness::Testbed testbed)
    : testbed_(std::move(testbed)), path_name_(testbed_.lan().name) {}

Experiment& Experiment::path(const std::string& path_name) {
  path_name_ = path_name;
  return *this;
}

Experiment& Experiment::streams(int n) {
  iperf_.parallel = n;
  return *this;
}

Experiment& Experiment::zerocopy(bool on) {
  iperf_.zerocopy = on;
  return *this;
}

Experiment& Experiment::skip_rx_copy(bool on) {
  iperf_.skip_rx_copy = on;
  return *this;
}

Experiment& Experiment::pacing(units::Rate rate) {
  iperf_.fq_rate_bps = rate.bps();
  return *this;
}

Experiment& Experiment::congestion(kern::CongestionAlgo algo) {
  iperf_.congestion = algo;
  return *this;
}

Experiment& Experiment::kernel(kern::KernelVersion version) {
  testbed_.sender.kernel = kern::kernel_profile(version);
  testbed_.receiver.kernel = kern::kernel_profile(version);
  return *this;
}

Experiment& Experiment::optmem_max(units::Bytes limit) {
  testbed_.sender.tuning.sysctl.optmem_max = limit.value();
  testbed_.receiver.tuning.sysctl.optmem_max = limit.value();
  return *this;
}

Experiment& Experiment::big_tcp(bool on, units::Bytes size) {
  for (auto* h : {&testbed_.sender, &testbed_.receiver}) {
    h->tuning.big_tcp_enabled = on;
    h->tuning.big_tcp_bytes = size.value();
  }
  return *this;
}

Experiment& Experiment::hw_gro(bool on) {
  testbed_.receiver.tuning.hw_gro_enabled = on;
  return *this;
}

Experiment& Experiment::mtu(units::Bytes bytes) {
  testbed_.sender.tuning.mtu_bytes = bytes.value();
  testbed_.receiver.tuning.mtu_bytes = bytes.value();
  return *this;
}

Experiment& Experiment::ring(int descriptors) {
  testbed_.sender.tuning.ring_descriptors = descriptors;
  testbed_.receiver.tuning.ring_descriptors = descriptors;
  return *this;
}

Experiment& Experiment::iommu_passthrough(bool on) {
  testbed_.sender.tuning.iommu_passthrough = on;
  testbed_.receiver.tuning.iommu_passthrough = on;
  return *this;
}

Experiment& Experiment::irqbalance(bool enabled) {
  testbed_.sender.tuning.irqbalance_disabled = !enabled;
  testbed_.receiver.tuning.irqbalance_disabled = !enabled;
  return *this;
}

Experiment& Experiment::flow_control(bool on) {
  testbed_.link_flow_control = on;
  return *this;
}

Experiment& Experiment::duration(units::SimTime length) {
  iperf_.duration_sec = length.seconds();
  return *this;
}

Experiment& Experiment::repeats(int n) {
  repeats_ = n;
  return *this;
}

Experiment& Experiment::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

Experiment& Experiment::label(std::string name) {
  label_ = std::move(name);
  return *this;
}

Experiment& Experiment::telemetry(obs::TelemetryConfig cfg) {
  telemetry_ = cfg;
  return *this;
}

Experiment& Experiment::telemetry(bool on) {
  telemetry_.enabled = on;
  return *this;
}

Experiment& Experiment::ss(bool on) {
  telemetry_.ss_enabled = on;
  if (on) telemetry_.enabled = true;
  return *this;
}

Experiment& Experiment::ss_watch(units::SimTime interval) {
  ss(true);
  telemetry_.ss_interval = interval.nanos();
  return *this;
}

Experiment& Experiment::perf(bool on) {
  telemetry_.perf_enabled = on;
  if (on) telemetry_.enabled = true;
  return *this;
}

Experiment& Experiment::perf_watch(units::SimTime interval) {
  perf(true);
  telemetry_.perf_interval = interval.nanos();
  return *this;
}

Experiment& Experiment::scenario(dtnsim::scenario::Timeline timeline) {
  scenario_ = std::move(timeline);
  return *this;
}

Experiment& Experiment::record(bool on) {
  record_ = on;
  return *this;
}

harness::TestSpec Experiment::spec() const {
  harness::TestSpec s = harness::TestSpec::on(testbed_, path_name_, iperf_, label_);
  s.repeats = repeats_;
  s.base_seed = seed_;
  s.telemetry = telemetry_;
  s.scenario = scenario_;
  s.record = record_;
  return s;
}

harness::TestResult Experiment::run() const { return harness::run_test(spec()); }

}  // namespace dtnsim
