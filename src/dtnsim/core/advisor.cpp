#include "dtnsim/core/advisor.hpp"

#include <algorithm>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim {
namespace {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Critical:
      return "CRITICAL";
    case Severity::Recommended:
      return "RECOMMENDED";
    case Severity::Informational:
      return "INFO";
  }
  return "?";
}

}  // namespace

bool Advice::has_critical() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.severity == Severity::Critical; });
}

std::string Advice::to_string() const {
  if (findings.empty()) return "Host tuning matches the paper's recommendations.\n";
  std::string out;
  for (const auto& f : findings) {
    out += strfmt("[%s] %s\n    %s\n", severity_name(f.severity), f.setting.c_str(),
                  f.rationale.c_str());
  }
  return out;
}

Advice advise(const host::HostConfig& host, const net::PathSpec& path, UseCase use_case,
              bool link_flow_control) {
  Advice a;
  const auto& t = host.tuning;
  const bool wan = path.is_wan();

  if (t.sysctl.tcp_rmem_max < 512.0 * 1024 * 1024 ||
      t.sysctl.tcp_wmem_max < 512.0 * 1024 * 1024) {
    a.findings.push_back(
        {wan ? Severity::Critical : Severity::Recommended,
         "Apply fasterdata.es.net 100G sysctls (tcp_rmem/tcp_wmem max = 2^31-1)",
         "Stock socket-buffer limits cap the window; a 104 ms path needs "
         ">600 MB in flight to fill 50 Gbps."});
  }
  if (!t.irqbalance_disabled) {
    a.findings.push_back(
        {Severity::Critical,
         "Disable irqbalance; pin NIC IRQs (cores 0-7) and the tool (cores 8-15) "
         "on the NIC's NUMA node",
         "The paper saw 20-55 Gbps run-to-run variation on identical hardware "
         "from scheduler/IRQ placement alone."});
  }
  if (t.sysctl.default_qdisc != kern::QdiscKind::Fq) {
    a.findings.push_back(
        {Severity::Critical, "Set net.core.default_qdisc=fq",
         "fq_codel cannot pace; --fq-rate and SO_MAX_PACING_RATE need fq, and "
         "pacing is the paper's single biggest stability lever."});
  }
  if (!t.iommu_passthrough) {
    a.findings.push_back(
        {Severity::Critical, "Boot with iommu=pt",
         "Strict IOMMU mapping capped 8-stream throughput at 80 Gbps vs "
         "181 Gbps with passthrough on the ESnet AMD hosts (kernel 5.15)."});
  }
  if (t.sysctl.optmem_max < 1048576.0) {
    a.findings.push_back(
        {wan ? Severity::Critical : Severity::Recommended,
         "Raise net.core.optmem_max to at least 1 MB (3.25 MB covers 104 ms paths)",
         "MSG_ZEROCOPY charges in-flight completions against optmem_max; at the "
         "default 20 KB a WAN zerocopy sender falls back to copying and pegs a core."});
  }
  if (!host.kernel.at_least(6, 8)) {
    a.findings.push_back(
        {Severity::Recommended,
         strfmt("Upgrade kernel %s -> 6.8 (Ubuntu: linux-image-generic-hwe-22.04-edge)",
                host.kernel.name.c_str()),
         "Kernel 6.8 measured up to 38% faster on WAN and 30% on LAN than 5.15."});
  }
  if (t.mtu_bytes < 9000.0) {
    a.findings.push_back({Severity::Recommended, "Set MTU 9000",
                          "1500 B frames multiply per-packet costs ~6x; all paper "
                          "results use 9000."});
  }
  if (!t.performance_governor) {
    a.findings.push_back({Severity::Recommended,
                          "cpupower frequency-set -g performance",
                          "Frequency scaling adds latency spikes and lowers the "
                          "sustained per-core clock."});
  }
  if (!t.smt_off) {
    a.findings.push_back({Severity::Recommended,
                          "Disable SMT (echo off > /sys/devices/system/cpu/smt/control)",
                          "Sibling threads steal front-end bandwidth from the copy "
                          "loop."});
  }
  if (host.cpu.vendor == cpu::Vendor::Amd && t.ring_descriptors < 8192) {
    a.findings.push_back({Severity::Recommended,
                          "ethtool -G <if> rx 8192 tx 8192",
                          "Larger rings absorb packet trains; the paper saw this "
                          "help AMD hosts (not Intel)."});
  }
  if (!link_flow_control) {
    a.findings.push_back(
        {use_case == UseCase::ParallelStreamDtn ? Severity::Critical
                                                : Severity::Recommended,
         "No IEEE 802.3x on the link: pace every flow (--fq-rate / tc)",
         "Without pause frames the NIC drops packet trains; pacing provided up "
         "to 35% single-stream WAN improvement and made parallel flows fair."});
  }
  if (use_case == UseCase::SingleFlowBenchmark) {
    a.findings.push_back(
        {Severity::Recommended,
         "Use a tool supporting MSG_ZEROCOPY (patched iperf3/neper) with pacing",
         "Zerocopy+pacing: up to 35% more throughput with a fraction of the "
         "sender CPU; pacing >32 Gbps needs iperf3 patch #1728."});
  }
  if (use_case == UseCase::ParallelStreamDtn && host.tuning.big_tcp_enabled) {
    a.findings.push_back(
        {Severity::Informational,
         "BIG TCP enabled: do not combine with MSG_ZEROCOPY on stock kernels",
         "Both consume SKB frags; MAX_SKB_FRAGS=45 (custom build) is required "
         "to stack them, which limits production viability today."});
  }
  return a;
}

units::Rate recommended_pacing(units::Rate nic, units::Rate client) {
  const double nic_gbps = nic.gbps();
  const double client_gbps = client.gbps();
  if (client_gbps <= 10.0) return units::Rate::from_gbps(1.0);  // 100G DTN, 10G clients
  if (client_gbps < nic_gbps) return units::Rate::from_gbps(5.0);  // mixed estate
  // 100G<->100G: 5-8 Gbps per flow
  return units::Rate::from_gbps(std::min(8.0, nic_gbps / 12.0));
}

}  // namespace dtnsim
