#include "dtnsim/harness/dataset.hpp"

#include "dtnsim/util/csv.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::harness {

void Dataset::add(const TestResult& result) { results_.push_back(result); }

std::string Dataset::raw_csv() const {
  CsvWriter csv({"test", "repeat", "throughput_gbps"});
  for (const auto& r : results_) {
    for (std::size_t i = 0; i < r.samples_gbps.size(); ++i) {
      csv.add_row({r.name, strfmt("%zu", i), strfmt("%.4f", r.samples_gbps[i])});
    }
  }
  return csv.str();
}

std::string Dataset::summary_csv() const {
  CsvWriter csv({"test", "repeats", "avg_gbps", "min_gbps", "max_gbps", "stdev_gbps",
                 "retransmits", "snd_cpu_pct", "rcv_cpu_pct"});
  for (const auto& r : results_) {
    csv.add_row({r.name, strfmt("%d", r.repeats), strfmt("%.3f", r.avg_gbps),
                 strfmt("%.3f", r.min_gbps), strfmt("%.3f", r.max_gbps),
                 strfmt("%.3f", r.stdev_gbps), strfmt("%.0f", r.avg_retransmits),
                 strfmt("%.1f", r.snd_cpu_pct), strfmt("%.1f", r.rcv_cpu_pct)});
  }
  return csv.str();
}

Json Dataset::to_json() const {
  Json root = Json::object();
  root["dataset"] = name_;
  Json tests = Json::array();
  for (const auto& r : results_) {
    Json t = Json::object();
    t["name"] = r.name;
    t["repeats"] = r.repeats;
    t["avg_gbps"] = r.avg_gbps;
    t["min_gbps"] = r.min_gbps;
    t["max_gbps"] = r.max_gbps;
    t["stdev_gbps"] = r.stdev_gbps;
    t["retransmits"] = r.avg_retransmits;
    t["flow_min_gbps"] = r.flow_min_gbps;
    t["flow_max_gbps"] = r.flow_max_gbps;
    t["snd_cpu_pct"] = r.snd_cpu_pct;
    t["rcv_cpu_pct"] = r.rcv_cpu_pct;
    Json samples = Json::array();
    for (double g : r.samples_gbps) samples.push_back(g);
    t["samples_gbps"] = std::move(samples);
    tests.push_back(std::move(t));
  }
  root["tests"] = std::move(tests);
  return root;
}

bool Dataset::write_to(const std::string& dir) const {
  const std::string base = dir + "/" + name_;
  const auto write_file = [](const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
    std::fclose(f);
    return ok;
  };
  return write_file(base + "_raw.csv", raw_csv()) &&
         write_file(base + "_summary.csv", summary_csv()) &&
         write_file(base + ".json", to_json().dump(2) + "\n");
}

}  // namespace dtnsim::harness
