// Testbed definitions (paper Figs. 1-3).
//
// AmLight: Intel Xeon 6346 hosts, ConnectX-5 100G, NoviFlow switches, real
// WAN paths at 25/54/104 ms (WAN test traffic capped at 80 Gbps; ~16 Gbps of
// production traffic shares the paths). Tests run inside a tuned Ubuntu VM
// (PCI passthrough, pinned vCPUs); bare-metal configs are also provided for
// the Fig. 4 comparison.
//
// ESnet testbed: AMD EPYC 73F3 hosts, ConnectX-7 200G, Edgecore AS9716-32D
// (64 MB shared buffer), LAN + WAN loop; switches support no 802.3x flow
// control. The production-DTN pair (Table III) sits 63 ms apart behind
// flow-control-capable gear at 100G.
#pragma once

#include <string>
#include <vector>

#include "dtnsim/host/host.hpp"
#include "dtnsim/net/path.hpp"

namespace dtnsim::harness {

struct Testbed {
  std::string name;
  host::HostConfig sender;
  host::HostConfig receiver;
  std::vector<net::PathSpec> paths;  // paths[0] is the LAN
  bool link_flow_control = false;

  const net::PathSpec& lan() const { return paths.front(); }
  const net::PathSpec& path_named(const std::string& name) const;
};

// AmLight, running inside the tuned VM as the paper does. `ring_descriptors`
// defaults to 1024 (the 8192 tuning "only seemed to help on AMD").
Testbed amlight(kern::KernelVersion kernel = kern::KernelVersion::V6_8);
// AmLight on bare metal (Debian 11 / kernel 5.10) for the Fig. 4 check.
Testbed amlight_baremetal(kern::KernelVersion kernel = kern::KernelVersion::V5_10);
// AmLight in the VM but forced to a given kernel (VM image swap).
Testbed amlight_vm(kern::KernelVersion kernel);

Testbed esnet(kern::KernelVersion kernel = kern::KernelVersion::V6_8);
Testbed esnet_production(kern::KernelVersion kernel = kern::KernelVersion::V5_15);

// CLI-facing registry: amlight | amlight-baremetal | esnet | production.
// Throws std::invalid_argument for an unknown name. Shared by the iperf3
// front end and the sweep grid (which rebuilds the testbed per kernel cell).
Testbed testbed_by_name(const std::string& name, kern::KernelVersion kernel);

// Individual paths, exposed for custom experiments.
net::PathSpec amlight_lan();
net::PathSpec amlight_wan(int rtt_ms);  // 25, 54 or 104
net::PathSpec esnet_lan();
net::PathSpec esnet_wan();
net::PathSpec esnet_production_path();

}  // namespace dtnsim::harness
