#include "dtnsim/harness/plot.hpp"

#include <cstdio>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::harness {

std::string to_gnuplot_data(const FigureSpec& fig) {
  std::string out = "# " + fig.id + ": " + fig.title + "\n# category";
  for (const auto& s : fig.series) {
    out += "\t" + s.label + "\terr";
  }
  out += "\n";
  for (std::size_t c = 0; c < fig.categories.size(); ++c) {
    out += "\"" + fig.categories[c] + "\"";
    for (const auto& s : fig.series) {
      const double v = c < s.values.size() ? s.values[c] : 0.0;
      const double e = c < s.errors.size() ? s.errors[c] : 0.0;
      out += strfmt("\t%.4f\t%.4f", v, e);
    }
    out += "\n";
  }
  return out;
}

std::string to_gnuplot_script(const FigureSpec& fig) {
  std::string out;
  out += strfmt("set terminal pngcairo size 960,540 enhanced\n");
  out += strfmt("set output '%s.png'\n", fig.id.c_str());
  out += strfmt("set title '%s'\n", fig.title.c_str());
  out += strfmt("set ylabel '%s'\n", fig.ylabel.c_str());
  out += "set style data histogram\n";
  out += "set style histogram errorbars gap 2 lw 1\n";
  out += "set style fill solid 0.8 border -1\n";
  out += "set key outside top center horizontal\n";
  out += "set yrange [0:*]\n";
  out += "set grid ytics\n";
  out += strfmt("plot '%s.dat' \\\n", fig.id.c_str());
  for (std::size_t s = 0; s < fig.series.size(); ++s) {
    const std::size_t col = 2 + s * 2;
    out += strfmt("    %s using %zu:%zu:xtic(1) title '%s'%s\n",
                  s == 0 ? "" : "''", col, col + 1, fig.series[s].label.c_str(),
                  s + 1 < fig.series.size() ? ", \\" : "");
  }
  return out;
}

bool write_figure(const FigureSpec& fig, const std::string& dir) {
  const auto write_file = [](const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
    std::fclose(f);
    return ok;
  };
  return write_file(dir + "/" + fig.id + ".dat", to_gnuplot_data(fig)) &&
         write_file(dir + "/" + fig.id + ".gp", to_gnuplot_script(fig));
}

FigureSpec figure_from_results(const std::string& id, const std::string& title,
                               std::vector<std::string> categories,
                               std::vector<std::string> series_labels,
                               const std::vector<TestResult>& results) {
  if (results.size() != categories.size() * series_labels.size()) {
    throw std::invalid_argument(
        strfmt("figure %s: %zu results != %zu categories x %zu series", id.c_str(),
               results.size(), categories.size(), series_labels.size()));
  }
  FigureSpec fig;
  fig.id = id;
  fig.title = title;
  fig.categories = std::move(categories);
  for (std::size_t s = 0; s < series_labels.size(); ++s) {
    PlotSeries ps;
    ps.label = series_labels[s];
    for (std::size_t c = 0; c < fig.categories.size(); ++c) {
      const auto& r = results[s * fig.categories.size() + c];
      ps.values.push_back(r.avg_gbps);
      ps.errors.push_back(r.stdev_gbps);
    }
    fig.series.push_back(std::move(ps));
  }
  return fig;
}

}  // namespace dtnsim::harness
