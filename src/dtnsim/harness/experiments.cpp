#include "dtnsim/harness/experiments.hpp"

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::harness {
namespace {

using app::IperfOptions;

IperfOptions iperf(int parallel, double pace_gbps, bool zc = false,
                   bool skip_rx = false) {
  IperfOptions o;
  o.parallel = parallel;
  o.fq_rate_bps = pace_gbps * 1e9;
  o.zerocopy = zc;
  o.skip_rx_copy = skip_rx;
  return o;
}

TestSpec with_optmem(TestSpec spec, double bytes) {
  spec.sender.tuning.sysctl.optmem_max = bytes;
  spec.receiver.tuning.sysctl.optmem_max = bytes;
  return spec;
}

TestSpec with_big_tcp(TestSpec spec, double bytes = 150.0 * 1024.0) {
  for (auto* h : {&spec.sender, &spec.receiver}) {
    h->tuning.big_tcp_enabled = true;
    h->tuning.big_tcp_bytes = bytes;
  }
  return spec;
}

std::vector<TestSpec> fig4_specs() {
  std::vector<TestSpec> out;
  for (const bool vm : {false, true}) {
    const auto tb = vm ? amlight_vm(kern::KernelVersion::V5_10)
                       : amlight_baremetal(kern::KernelVersion::V5_10);
    for (const bool zcp : {false, true}) {
      for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
        auto o = iperf(1, zcp ? 50 : 0, zcp);
        out.push_back(TestSpec::on(tb, p,
                                   o, strfmt("%s %s %s", vm ? "vm" : "baremetal",
                                             zcp ? "zc+pace50" : "default", p)));
      }
    }
  }
  return out;
}

std::vector<TestSpec> fig5_specs() {
  std::vector<TestSpec> out;
  const auto tb = amlight(kern::KernelVersion::V6_8);
  struct C {
    const char* label;
    bool zc;
    double pace;
    bool big;
  };
  for (const C c : {C{"default", false, 0, false}, C{"zerocopy", true, 0, false},
                    C{"zc+pace50", true, 50, false}, C{"bigtcp150k", false, 0, true}}) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      auto spec = TestSpec::on(tb, p, iperf(1, c.pace, c.zc),
                               strfmt("%s %s", c.label, p));
      if (c.big) spec = with_big_tcp(spec);
      out.push_back(spec);
    }
  }
  return out;
}

std::vector<TestSpec> fig6_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V6_8);
  struct C {
    const char* label;
    bool zc;
    double pace;
  };
  for (const C c : {C{"default", false, 0}, C{"zerocopy", true, 0},
                    C{"zc+pace40", true, 40}}) {
    for (const char* p : {"LAN", "WAN 63ms"}) {
      out.push_back(TestSpec::on(tb, p, iperf(1, c.pace, c.zc),
                                 strfmt("%s %s", c.label, p)));
    }
  }
  return out;
}

std::vector<TestSpec> fig7_specs() {
  std::vector<TestSpec> out;
  const auto tb = amlight(kern::KernelVersion::V6_5);
  for (const bool zcp : {false, true}) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      auto spec = TestSpec::on(tb, p, iperf(1, zcp ? 50 : 0, zcp),
                               strfmt("%s %s", zcp ? "zc+pace50" : "default", p));
      if (zcp) spec = with_optmem(spec, 3405376);
      out.push_back(spec);
    }
  }
  return out;
}

std::vector<TestSpec> fig8_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V6_8);
  for (const bool zcp : {false, true}) {
    for (const char* p : {"LAN", "WAN 63ms"}) {
      auto spec = TestSpec::on(tb, p, iperf(1, zcp ? 40 : 0, zcp),
                               strfmt("%s %s", zcp ? "zc+pace40" : "default", p));
      if (zcp) spec = with_optmem(spec, 3405376);
      out.push_back(spec);
    }
  }
  return out;
}

std::vector<TestSpec> fig9_specs() {
  std::vector<TestSpec> out;
  const auto tb = amlight(kern::KernelVersion::V6_5);
  for (const double om : {20480.0, 1048576.0, 3405376.0}) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      out.push_back(with_optmem(
          TestSpec::on(tb, p, iperf(1, 50, true),
                       strfmt("optmem %.0fK %s", om / 1024.0, p)),
          om));
    }
  }
  return out;
}

std::vector<TestSpec> fig10_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V6_8);
  for (const double pace : {0.0, 25.0, 20.0, 15.0}) {
    for (const char* p : {"LAN", "WAN 63ms"}) {
      out.push_back(TestSpec::on(tb, p, iperf(8, pace, true),
                                 strfmt("8x zc pace%.0f %s", pace, p)));
    }
  }
  return out;
}

std::vector<TestSpec> fig11_specs() {
  std::vector<TestSpec> out;
  const auto tb = amlight(kern::KernelVersion::V6_8);
  struct C {
    const char* label;
    bool zc;
    double pace;
  };
  for (const C c : {C{"default", false, 0}, C{"zc-unpaced", true, 0},
                    C{"zc-pace10", true, 10}, C{"zc-pace9", true, 9}}) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      out.push_back(TestSpec::on(tb, p, iperf(8, c.pace, c.zc),
                                 strfmt("%s %s", c.label, p)));
    }
  }
  return out;
}

std::vector<TestSpec> table1_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V5_15);
  for (const double pace : {0.0, 25.0, 20.0, 15.0}) {
    out.push_back(TestSpec::on(tb, "LAN", iperf(8, pace),
                               pace > 0 ? strfmt("%.0fG/stream", pace) : "unpaced"));
  }
  return out;
}

std::vector<TestSpec> table2_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V5_15);
  for (const double pace : {0.0, 25.0, 20.0, 15.0}) {
    out.push_back(TestSpec::on(tb, "WAN 63ms", iperf(8, pace),
                               pace > 0 ? strfmt("%.0fG/stream", pace) : "unpaced"));
  }
  return out;
}

std::vector<TestSpec> table3_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet_production(kern::KernelVersion::V5_15);
  for (const double pace : {0.0, 15.0, 12.0, 10.0}) {
    out.push_back(TestSpec::on(tb, "production 63ms", iperf(8, pace),
                               pace > 0 ? strfmt("%.0fG/stream", pace) : "unpaced"));
  }
  return out;
}

std::vector<TestSpec> fig12_specs() {
  std::vector<TestSpec> out;
  for (const auto k :
       {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5, kern::KernelVersion::V6_8}) {
    const auto tb = esnet(k);
    for (const char* p : {"LAN", "WAN 63ms"}) {
      out.push_back(TestSpec::on(tb, p, iperf(1, 0),
                                 strfmt("kernel %s %s", kern::kernel_version_name(k), p)));
    }
  }
  return out;
}

std::vector<TestSpec> fig13_specs() {
  std::vector<TestSpec> out;
  for (const auto k :
       {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5, kern::KernelVersion::V6_8}) {
    const auto tb = amlight(k);
    out.push_back(TestSpec::on(tb, "LAN", iperf(1, 0),
                               strfmt("kernel %s LAN default", kern::kernel_version_name(k))));
    out.push_back(with_optmem(
        TestSpec::on(tb, "WAN 25ms", iperf(1, 50, true, true),
                     strfmt("kernel %s WAN zc+pace50", kern::kernel_version_name(k))),
        3405376));
  }
  return out;
}

std::vector<TestSpec> ablation_iommu_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V5_15);
  for (const bool pt : {false, true}) {
    auto spec = TestSpec::on(tb, "LAN", iperf(8, 25, true),
                             pt ? "iommu=pt" : "iommu strict");
    spec.sender.tuning.iommu_passthrough = pt;
    spec.receiver.tuning.iommu_passthrough = pt;
    out.push_back(spec);
  }
  return out;
}

std::vector<TestSpec> ablation_affinity_specs() {
  std::vector<TestSpec> out;
  const auto tb = amlight(kern::KernelVersion::V6_8);
  for (const bool balanced : {true, false}) {
    auto spec = TestSpec::on(tb, "LAN", iperf(1, 0),
                             balanced ? "irqbalance" : "pinned");
    spec.sender.tuning.irqbalance_disabled = !balanced;
    spec.receiver.tuning.irqbalance_disabled = !balanced;
    spec.repeats = 24;
    out.push_back(spec);
  }
  return out;
}

std::vector<TestSpec> ablation_ring_specs() {
  std::vector<TestSpec> out;
  for (const bool amd : {true, false}) {
    const auto tb = amd ? esnet() : amlight();
    const char* path = amd ? "WAN 63ms" : "WAN 54ms";
    for (const int ring : {1024, 8192}) {
      auto spec = TestSpec::on(tb, path, iperf(1, 0, true),
                               strfmt("%s ring%d", amd ? "amd" : "intel", ring));
      spec.sender.tuning.ring_descriptors = ring;
      spec.receiver.tuning.ring_descriptors = ring;
      out.push_back(spec);
    }
  }
  return out;
}

std::vector<TestSpec> ablation_cc_specs() {
  std::vector<TestSpec> out;
  const auto tb = esnet(kern::KernelVersion::V6_8);
  for (const auto algo : {kern::CongestionAlgo::Cubic, kern::CongestionAlgo::BbrV1,
                          kern::CongestionAlgo::BbrV3}) {
    for (const double pace : {0.0, 15.0}) {
      auto o = iperf(8, pace);
      o.congestion = algo;
      out.push_back(TestSpec::on(tb, "WAN 63ms", o,
                                 strfmt("%s %s", kern::congestion_name(algo),
                                        pace > 0 ? "pace15" : "unpaced")));
    }
  }
  return out;
}

}  // namespace

const std::vector<ExperimentDef>& experiment_registry() {
  static const std::vector<ExperimentDef> registry = {
      {"fig4", "Bare metal vs tuned VM (Intel, kernel 5.10)",
       "VM within one stddev of bare metal on every path", fig4_specs},
      {"fig5", "Single stream, AmLight Intel, kernel 6.8",
       "zc alone: no gain; zc+pace50: up to +35% WAN; BIG TCP: up to +16%",
       fig5_specs},
      {"fig6", "Single stream, ESnet AMD, kernel 6.8",
       "zc+pace40: ~+85% WAN, matching LAN", fig6_specs},
      {"fig7", "CPU utilization vs latency, Intel, kernel 6.5",
       "default: RX-bound LAN / TX-bound WAN; zc+pace: TX collapses", fig7_specs},
      {"fig8", "CPU utilization, AMD", "same shape, higher WAN sender CPU",
       fig8_specs},
      {"fig9", "optmem_max sweep, Intel 6.5, zc+pace50",
       "20K cripples WAN; 1M mostly fixes; 3.25M covers 104ms", fig9_specs},
      {"fig10", "8 flows zc+pacing sweep, ESnet 6.8",
       "tracks max tput; stddev smallest at 15G/flow", fig10_specs},
      {"fig11", "8 flows, AmLight 6.8, bg traffic",
       "baseline decays with RTT; unpaced zc suffers on busy WAN", fig11_specs},
      {"table1", "ESnet LAN 8 flows, 5.15, no FC", "166/166/147/118 Gbps",
       table1_specs},
      {"table2", "ESnet WAN 8 flows, 5.15, no FC",
       "127/136/131/115 Gbps; interference above 120G attempted", table2_specs},
      {"table3", "Production DTNs with 802.3x, 63ms",
       "98/98/93/79 Gbps; pacing narrows per-flow range to 10-10", table3_specs},
      {"fig12", "Kernel versions, ESnet AMD", "+12% (6.5), +17% (6.8)", fig12_specs},
      {"fig13", "Kernel versions, AmLight Intel",
       "+27% LAN total; WAN pinned at the 50G pacing", fig13_specs},
      {"ablation_iommu", "iommu=pt vs strict, 8 streams, 5.15",
       "strict caps aggregate DMA (paper: 80 vs 181 Gbps)", ablation_iommu_specs},
      {"ablation_affinity", "irqbalance vs pinned cores",
       "random placement spans ~20-55 Gbps", ablation_affinity_specs},
      {"ablation_ring", "ring 1024 vs 8192",
       "helps AMD (burst-drain-bound), not Intel", ablation_ring_specs},
      {"ablation_cc", "CUBIC vs BBRv1/BBRv3, 8 flows WAN",
       "similar tput; BBR retransmits higher; pacing stabilizes BBR",
       ablation_cc_specs},
  };
  return registry;
}

const ExperimentDef* find_experiment(const std::string& id) {
  for (const auto& def : experiment_registry()) {
    if (def.id == id) return &def;
  }
  return nullptr;
}

Dataset run_experiment(const ExperimentDef& def, double duration_sec, int repeats) {
  Dataset ds(def.id);
  for (auto spec : def.specs()) {
    spec.iperf.duration_sec = duration_sec;
    if (spec.repeats == 10) spec.repeats = repeats;  // keep explicit overrides
    ds.add(run_test(spec));
  }
  return ds;
}

}  // namespace dtnsim::harness
