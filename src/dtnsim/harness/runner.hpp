// Test harness: the ESnet "Network Test Harness" methodology.
//
// Every paper result is "60-second runs, at least 10 repeats, mpstat
// alongside". TestSpec describes one configuration; run_test executes the
// repeats on deterministic seed substreams and aggregates mean / min / max /
// stddev / retransmits / per-flow range / CPU — the exact columns the
// paper's tables print.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dtnsim/app/iperf.hpp"
#include "dtnsim/harness/testbeds.hpp"
#include "dtnsim/obs/telemetry.hpp"
#include "dtnsim/report/record.hpp"
#include "dtnsim/scenario/scenario.hpp"

namespace dtnsim::harness {

struct TestSpec {
  std::string name;
  host::HostConfig sender;
  host::HostConfig receiver;
  net::PathSpec path;
  app::IperfOptions iperf;
  bool link_flow_control = false;
  int repeats = 10;
  std::uint64_t base_seed = 0x5eed;
  // Telemetry knob: when enabled, every repeat runs with an interval probe
  // and trace sink; the per-repeat series and repeat 0's trace land on the
  // TestResult (the iperf3 `-i 1` + ss/ethtool side channel, always wired).
  obs::TelemetryConfig telemetry;
  // Mid-run fault/condition timeline, applied to every repeat (each repeat
  // jitters event times from its own seed substream). Empty = no scenario.
  dtnsim::scenario::Timeline scenario;
  // Bundle the run into a report::RunRecord on the TestResult (--record-out).
  // Implies telemetry + ss + perf so the record carries every artifact
  // layer; record-off runs stay bit-identical to builds without this field.
  bool record = false;

  // Convenience: build a spec from a testbed + path name.
  static TestSpec on(const Testbed& tb, const std::string& path_name,
                     app::IperfOptions opts, std::string label = {});
};

struct TestResult {
  std::string name;
  int repeats = 0;

  double avg_gbps = 0.0;
  double min_gbps = 0.0;
  double max_gbps = 0.0;
  double stdev_gbps = 0.0;
  double avg_retransmits = 0.0;

  // Per-flow spread, averaged over repeats (Table III's "Range" column).
  double flow_min_gbps = 0.0;
  double flow_max_gbps = 0.0;

  double snd_cpu_pct = 0.0;  // "TX Cores" (iperf3 + IRQ), percent of a core
  double rcv_cpu_pct = 0.0;  // "RX Cores"

  double zc_fallback_ratio = 0.0;  // fraction of zerocopy bytes that fell back

  std::vector<double> samples_gbps;  // one per repeat (released raw data)

  // Populated only when spec.telemetry.enabled: one probe series per repeat
  // and the trace of repeat 0 (shared_ptr keeps the Telemetry alive).
  std::vector<obs::SeriesTable> repeat_series;
  std::shared_ptr<const obs::TraceSink> trace;
  // Populated only when spec.telemetry.ss_enabled: repeat 0's dtnsim-ss
  // snapshot log (every watch sample plus the end-of-run sample).
  std::vector<obs::SsReport> ss_log;
  // Populated only when spec.telemetry.perf_enabled: repeat 0's dtnsim-perf
  // attribution log (every sampler firing plus the end-of-run report).
  std::vector<obs::PerfReport> perf_log;
  // Populated only when spec.scenario is non-empty: repeat 0's event log
  // (what fired, when, and whether the engine applied it).
  dtnsim::scenario::EventLog scenario_log;
  // Populated only when spec.record: the whole run as one self-describing
  // artifact (summary + series + ss/perf logs + scenario events + derived
  // analysis). shared_ptr so copying a TestResult stays cheap.
  std::shared_ptr<const report::RunRecord> record;
};

TestResult run_test(const TestSpec& spec);

// Run a batch on a worker pool of `jobs` threads (1 = serial on the calling
// thread, 0 = one worker per hardware thread).
//
// Ordering guarantee (load-bearing; callers index results by spec position):
// the returned vector is pre-sized to specs.size() and results[i] is always
// the result of specs[i], no matter how many jobs ran or in what order cells
// finished. Each spec simulates with its own Rng/engine/telemetry, so the
// parallel output is bit-identical to the serial output.
std::vector<TestResult> run_tests(const std::vector<TestSpec>& specs, int jobs = 1);

}  // namespace dtnsim::harness
