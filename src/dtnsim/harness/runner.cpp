#include "dtnsim/harness/runner.hpp"

#include <algorithm>

#include "dtnsim/sweep/pool.hpp"
#include "dtnsim/util/stats.hpp"

namespace dtnsim::harness {

TestSpec TestSpec::on(const Testbed& tb, const std::string& path_name,
                      app::IperfOptions opts, std::string label) {
  TestSpec s;
  s.sender = tb.sender;
  s.receiver = tb.receiver;
  s.path = tb.path_named(path_name);
  s.iperf = opts;
  s.link_flow_control = tb.link_flow_control;
  s.name = label.empty() ? tb.name + " " + path_name : std::move(label);
  return s;
}

TestResult run_test(const TestSpec& spec) {
  TestResult out;
  out.name = spec.name;
  out.repeats = std::max(spec.repeats, 1);

  RunningStats tput, retr, snd_cpu, rcv_cpu, flow_min, flow_max, fallback;
  Rng seeder(spec.base_seed);

  // A RunRecord bundles every artifact layer, so recording forces the
  // telemetry stack on (probe series + ss snapshots + perf attribution).
  obs::TelemetryConfig tel_cfg = spec.telemetry;
  if (spec.record) {
    tel_cfg.enabled = true;
    tel_cfg.ss_enabled = true;
    tel_cfg.perf_enabled = true;
  }

  flow::TransferConfig cfg;
  cfg.sender = spec.sender;
  cfg.receiver = spec.receiver;
  cfg.path = spec.path;
  cfg.streams = std::max(spec.iperf.parallel, 1);
  cfg.flow.zerocopy = spec.iperf.zerocopy;
  cfg.flow.skip_rx_copy = spec.iperf.skip_rx_copy;
  cfg.flow.fq_rate_bps = spec.iperf.fq_rate_bps;
  cfg.flow.congestion = spec.iperf.congestion;
  cfg.link_flow_control = spec.link_flow_control;
  cfg.duration = units::SimTime::from_seconds(spec.iperf.duration_sec);
  cfg.scenario = spec.scenario;

  for (int r = 0; r < out.repeats; ++r) {
    cfg.seed = seeder.substream(static_cast<unsigned>(r)).next();
    std::shared_ptr<obs::Telemetry> tel;
    if (tel_cfg.enabled) {
      obs::TelemetryConfig tcfg = tel_cfg;
      // Stream only the first repeat: every repeat would otherwise open
      // (and truncate) the same file.
      if (r != 0) tcfg.trace_stream_path.clear();
      tel = std::make_shared<obs::Telemetry>(tcfg);
      cfg.telemetry = tel.get();
    }
    const flow::TransferResult res = flow::run_transfer(cfg);
    if (r == 0 && !spec.scenario.empty()) {
      out.scenario_log = res.scenario_log;
      out.scenario_log.label = spec.name;
    }
    if (tel) {
      tel->trace().finalize();  // close a streamed document; no-op on the ring
      out.repeat_series.push_back(tel->series());
      if (r == 0) {
        // Aliasing shared_ptr: the result's trace keeps the Telemetry alive.
        out.trace = std::shared_ptr<const obs::TraceSink>(tel, &tel->trace());
        out.ss_log = tel->ss().log();
        for (auto& rep : out.ss_log) rep.label = spec.name;
        out.perf_log = tel->perf().log();
        for (auto& rep : out.perf_log) rep.label = spec.name;
      }
      cfg.telemetry = nullptr;
    }

    const double gbps = units::to_gbps(res.throughput_bps);
    tput.add(gbps);
    out.samples_gbps.push_back(gbps);
    retr.add(res.retransmit_segments);
    snd_cpu.add(res.sender_cpu.cores_pct);
    rcv_cpu.add(res.receiver_cpu.cores_pct);
    if (!res.per_flow_bps.empty()) {
      flow_min.add(units::to_gbps(min_of(res.per_flow_bps)));
      flow_max.add(units::to_gbps(max_of(res.per_flow_bps)));
    }
    const double zc_total = res.zc_bytes + res.zc_fallback_bytes;
    fallback.add(zc_total > 0 ? res.zc_fallback_bytes / zc_total : 0.0);
  }

  out.avg_gbps = tput.mean();
  out.min_gbps = tput.min();
  out.max_gbps = tput.max();
  out.stdev_gbps = tput.stddev();
  out.avg_retransmits = retr.mean();
  out.flow_min_gbps = flow_min.mean();
  out.flow_max_gbps = flow_max.mean();
  out.snd_cpu_pct = snd_cpu.mean();
  out.rcv_cpu_pct = rcv_cpu.mean();
  out.zc_fallback_ratio = fallback.mean();

  if (spec.record) {
    auto rec = std::make_shared<report::RunRecord>();
    rec->meta.name = spec.name;
    rec->meta.engine =
        out.perf_log.empty() ? "fluid" : out.perf_log.back().engine;
    rec->meta.streams = cfg.streams;
    rec->meta.repeats = out.repeats;
    rec->meta.duration_sec = spec.iperf.duration_sec;
    rec->meta.base_seed = spec.base_seed;
    rec->meta.scenario = spec.scenario.empty() ? "" : spec.scenario.name;
    rec->summary.avg_gbps = out.avg_gbps;
    rec->summary.min_gbps = out.min_gbps;
    rec->summary.max_gbps = out.max_gbps;
    rec->summary.stdev_gbps = out.stdev_gbps;
    rec->summary.avg_retransmits = out.avg_retransmits;
    rec->summary.flow_min_gbps = out.flow_min_gbps;
    rec->summary.flow_max_gbps = out.flow_max_gbps;
    rec->summary.snd_cpu_pct = out.snd_cpu_pct;
    rec->summary.rcv_cpu_pct = out.rcv_cpu_pct;
    rec->summary.zc_fallback_ratio = out.zc_fallback_ratio;
    rec->summary.samples_gbps = out.samples_gbps;
    if (!out.repeat_series.empty()) rec->series = out.repeat_series.front();
    rec->ss_log = out.ss_log;
    rec->perf_log = out.perf_log;
    rec->scenario_log = out.scenario_log;
    rec->analysis = report::analyze_record(*rec);
    out.record = std::move(rec);
  }
  return out;
}

std::vector<TestResult> run_tests(const std::vector<TestSpec>& specs, int jobs) {
  // Pre-sized storage, written by spec index: results[i] <-> specs[i] holds
  // for any job count (see the header's ordering guarantee).
  std::vector<TestResult> out(specs.size());
  sweep::parallel_for(specs.size(), jobs,
                      [&](std::size_t i) { out[i] = run_test(specs[i]); });
  return out;
}

}  // namespace dtnsim::harness
