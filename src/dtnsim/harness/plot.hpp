// Gnuplot emitters: regenerate the paper's figures as actual plots.
//
// Each figure becomes a .dat (clustered columns with error bars — the
// paper's bar-chart-with-stddev-whiskers style) plus a .gp script, so
// `gnuplot fig5.gp` renders fig5.png with no further tooling.
#pragma once

#include <string>
#include <vector>

#include "dtnsim/harness/runner.hpp"

namespace dtnsim::harness {

struct PlotSeries {
  std::string label;           // legend entry, e.g. "zerocopy+pacing 50G"
  std::vector<double> values;  // one per category
  std::vector<double> errors;  // stddev whiskers (may be empty)
};

struct FigureSpec {
  std::string id;      // file stem, e.g. "fig5"
  std::string title;
  std::string ylabel = "Throughput (Gbps)";
  std::vector<std::string> categories;  // x groups, e.g. LAN / WAN 25ms / ...
  std::vector<PlotSeries> series;
};

// Tab-separated: category, then value/error pairs per series.
std::string to_gnuplot_data(const FigureSpec& fig);
// Clustered-histogram gnuplot script referencing <id>.dat, writing <id>.png.
std::string to_gnuplot_script(const FigureSpec& fig);
// Writes <dir>/<id>.dat and <dir>/<id>.gp; false on I/O error.
bool write_figure(const FigureSpec& fig, const std::string& dir);

// Assemble a figure from harness results laid out row-major:
// results[s * categories.size() + c] is series s at category c.
FigureSpec figure_from_results(const std::string& id, const std::string& title,
                               std::vector<std::string> categories,
                               std::vector<std::string> series_labels,
                               const std::vector<TestResult>& results);

}  // namespace dtnsim::harness
