// Raw data release (the paper publishes everything it collected; the
// harness can do the same). A Dataset collects TestResults and renders
// them as CSV (one row per repeat plus a summary table) and JSON.
#pragma once

#include <string>
#include <vector>

#include "dtnsim/harness/runner.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::harness {

class Dataset {
 public:
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  void add(const TestResult& result);

  const std::string& name() const { return name_; }
  std::size_t size() const { return results_.size(); }

  // One row per (test, repeat): test,repeat,gbps.
  std::string raw_csv() const;
  // One row per test: test,repeats,avg,min,max,stdev,retr,snd_cpu,rcv_cpu.
  std::string summary_csv() const;
  Json to_json() const;

  // Write <dir>/<name>_raw.csv, <name>_summary.csv, <name>.json.
  bool write_to(const std::string& dir) const;

 private:
  std::string name_;
  std::vector<TestResult> results_;
};

}  // namespace dtnsim::harness
