#include "dtnsim/harness/testbeds.hpp"

#include <stdexcept>

#include "dtnsim/host/vm.hpp"

namespace dtnsim::harness {
namespace {

host::HostConfig amlight_host(kern::KernelVersion kernel, bool vm) {
  host::HostConfig h;
  h.name = vm ? "amlight-dtn-vm" : "amlight-dtn";
  h.cpu = cpu::intel_xeon_6346();
  h.kernel = kern::kernel_profile(kernel);
  h.nic = net::connectx5_100g();
  h.tuning = host::TuningConfig::dtn_tuned();
  h.tuning.ring_descriptors = 1024;  // ring tuning did not help Intel
  if (vm) {
    host::VmConfig vmc;  // PCI passthrough + pinned vCPUs + iommu=pt
    h.virt_factor = host::virtualization_factor(vmc);
  }
  return h;
}

host::HostConfig esnet_host(kern::KernelVersion kernel) {
  host::HostConfig h;
  h.name = "esnet-dtn";
  h.cpu = cpu::amd_epyc_73f3();
  h.kernel = kern::kernel_profile(kernel);
  h.nic = net::connectx7_200g();
  h.tuning = host::TuningConfig::dtn_tuned();
  h.tuning.ring_descriptors = 8192;  // ethtool -G rx 8192 tx 8192 (AMD hosts)
  return h;
}

}  // namespace

net::PathSpec amlight_lan() {
  net::PathSpec p;
  p.name = "LAN";
  p.rtt = units::micros(200);
  p.capacity_bps = 100e9;
  p.hops = 1;
  // Shallow Tofino shared buffer: unpaced many-flow collisions cut in.
  p.burst_tolerance_bps = 70e9;
  return p;
}

net::PathSpec amlight_wan(int rtt_ms) {
  if (rtt_ms != 25 && rtt_ms != 54 && rtt_ms != 104) {
    throw std::invalid_argument("AmLight WAN paths: 25, 54 or 104 ms");
  }
  net::PathSpec p;
  p.name = "WAN " + std::to_string(rtt_ms) + "ms";
  p.rtt = units::millis(rtt_ms);
  p.capacity_bps = 80e9;  // WAN testing limited to 80G to protect production
  p.hops = 2 + rtt_ms / 20;
  p.bg_traffic_bps = 16e9;  // estimated production traffic during the tests
  p.bg_burst_sigma = 0.35;
  p.burst_tolerance_bps = 60e9;
  return p;
}

net::PathSpec esnet_lan() {
  net::PathSpec p;
  p.name = "LAN";
  p.rtt = units::micros(200);
  p.capacity_bps = 200e9;
  p.hops = 1;
  p.burst_tolerance_bps = 175e9;  // AS9716 64MB shared buffer, 200G egress
  return p;
}

net::PathSpec esnet_wan() {
  net::PathSpec p;
  p.name = "WAN 63ms";
  p.rtt = units::millis(63);
  p.capacity_bps = 200e9;
  p.hops = 8;
  // The paper: flows interfere "any time the total bandwidth attempted ...
  // is over 120 Gbps" on this path.
  p.burst_tolerance_bps = 135e9;
  return p;
}

net::PathSpec esnet_production_path() {
  net::PathSpec p;
  p.name = "production 63ms";
  p.rtt = units::millis(63);
  p.capacity_bps = 98.5e9;  // 100G ports minus framing overhead
  p.hops = 10;
  p.bg_traffic_bps = 2e9;   // light competing production traffic
  p.bg_burst_sigma = 0.5;
  p.deep_buffers = true;    // backbone routers queue rather than cut tails
  p.stray_loss_events_per_sec = 0.7;  // Table III: ~1K retr even well-paced
  return p;
}

const net::PathSpec& Testbed::path_named(const std::string& name) const {
  for (const auto& p : paths) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("no path named " + name + " in testbed " + this->name);
}

Testbed testbed_by_name(const std::string& name, kern::KernelVersion kernel) {
  if (name == "amlight") return amlight(kernel);
  if (name == "amlight-baremetal") return amlight_baremetal(kernel);
  if (name == "esnet") return esnet(kernel);
  if (name == "production") return esnet_production(kernel);
  throw std::invalid_argument("unknown testbed: " + name);
}

Testbed amlight(kern::KernelVersion kernel) { return amlight_vm(kernel); }

Testbed amlight_vm(kern::KernelVersion kernel) {
  Testbed t;
  t.name = "AmLight (VM)";
  t.sender = amlight_host(kernel, /*vm=*/true);
  t.receiver = amlight_host(kernel, /*vm=*/true);
  t.paths = {amlight_lan(), amlight_wan(25), amlight_wan(54), amlight_wan(104)};
  t.link_flow_control = false;  // NoviFlow switches: no 802.3x
  return t;
}

Testbed amlight_baremetal(kern::KernelVersion kernel) {
  Testbed t = amlight_vm(kernel);
  t.name = "AmLight (bare metal)";
  t.sender = amlight_host(kernel, /*vm=*/false);
  t.receiver = amlight_host(kernel, /*vm=*/false);
  return t;
}

Testbed esnet(kern::KernelVersion kernel) {
  Testbed t;
  t.name = "ESnet Testbed";
  t.sender = esnet_host(kernel);
  t.receiver = esnet_host(kernel);
  t.paths = {esnet_lan(), esnet_wan()};
  t.link_flow_control = false;  // AS9716: no 802.3x
  return t;
}

Testbed esnet_production(kern::KernelVersion kernel) {
  Testbed t;
  t.name = "ESnet production DTNs";
  t.sender = esnet_host(kernel);
  t.receiver = esnet_host(kernel);
  t.sender.nic = net::connectx5_100g();  // production DTNs run 100G ports
  t.receiver.nic = net::connectx5_100g();
  t.sender.nic.drain_smooth_bps = 43e9;  // AMD hosts behind them
  t.sender.nic.drain_burst_bps = 25e9;
  t.receiver.nic.drain_smooth_bps = 43e9;
  t.receiver.nic.drain_burst_bps = 25e9;
  t.paths = {esnet_production_path()};
  t.link_flow_control = true;  // the one environment with 802.3x (Table III)
  return t;
}

}  // namespace dtnsim::harness
