// Registry of the paper's experiments.
//
// Each entry maps a paper artifact (figure/table/ablation) to the list of
// TestSpecs that regenerate it. The bench binaries print paper-style
// tables; this registry drives programmatic access — `dtnsim-repro` runs
// any subset by id and exports the raw per-repeat data as CSV/JSON (the
// paper releases all of its collected data; so do we).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dtnsim/harness/dataset.hpp"
#include "dtnsim/harness/runner.hpp"

namespace dtnsim::harness {

struct ExperimentDef {
  std::string id;           // "fig5", "table2", "ablation_iommu", ...
  std::string title;        // what the paper calls it
  std::string paper_claim;  // one-line expected shape
  std::function<std::vector<TestSpec>()> specs;
};

// All registered experiments, in paper order.
const std::vector<ExperimentDef>& experiment_registry();

// Lookup by id; nullptr if unknown.
const ExperimentDef* find_experiment(const std::string& id);

// Run one experiment (optionally overriding duration/repeats for quick
// passes) and collect results into a Dataset named after the id.
Dataset run_experiment(const ExperimentDef& def, double duration_sec = 60.0,
                       int repeats = 10);

}  // namespace dtnsim::harness
