// Virtual-machine overhead model (paper §III-H, Fig. 3/4).
//
// AmLight runs the tests inside an Ubuntu 22.04 VM with NIC PCI passthrough
// and vCPUs pinned to physical cores on the NIC's NUMA node. So configured,
// VM throughput matched bare metal within one standard deviation (Fig. 4).
// Without passthrough or pinning the virtualization tax is large.
#pragma once

namespace dtnsim::host {

struct VmConfig {
  int vcpus = 16;
  bool pci_passthrough = true;   // NIC passed through (no virtio path)
  bool vcpu_pinned = true;       // each vCPU fixed to a NIC-NUMA physical core
  bool host_iommu_pt = true;     // iommu=pt + intel_iommu=on on the hypervisor
};

// Multiplier (>= 1) on all cycle costs when running inside this VM.
double virtualization_factor(const VmConfig& vm);

}  // namespace dtnsim::host
