#include "dtnsim/host/tuning.hpp"

namespace dtnsim::host {

TuningConfig TuningConfig::dtn_tuned() { return TuningConfig{}; }

TuningConfig TuningConfig::stock() {
  TuningConfig t;
  t.sysctl = kern::SysctlConfig::linux_defaults();
  t.irqbalance_disabled = false;
  t.performance_governor = false;
  t.smt_off = false;
  t.ring_descriptors = 1024;
  t.iommu_passthrough = false;
  t.mtu_bytes = 1500.0;
  return t;
}

}  // namespace dtnsim::host
