// A Data Transfer Node: CPU + kernel + NIC + tuning.
//
// Host is an immutable description; per-run mutable state (core budgets,
// sockets, sampled placements) lives in the flow engine. Host answers the
// questions the engine asks: effective SKB caps, the cost model for a given
// placement, per-core clocks, and memory-bandwidth budgets.
#pragma once

#include <string>

#include "dtnsim/cpu/affinity.hpp"
#include "dtnsim/cpu/cost_model.hpp"
#include "dtnsim/cpu/spec.hpp"
#include "dtnsim/cpu/topology.hpp"
#include "dtnsim/host/tuning.hpp"
#include "dtnsim/kern/skb.hpp"
#include "dtnsim/kern/version.hpp"
#include "dtnsim/net/nic.hpp"
#include "dtnsim/util/rng.hpp"

namespace dtnsim::host {

struct HostConfig {
  std::string name = "dtn";
  cpu::CpuSpec cpu = cpu::intel_xeon_6346();
  kern::KernelProfile kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  net::NicSpec nic = net::connectx5_100g();
  TuningConfig tuning = TuningConfig::dtn_tuned();
  // > 1.0 inside a VM; use vm::virtualization_factor() to derive it.
  double virt_factor = 1.0;
};

class Host {
 public:
  explicit Host(HostConfig cfg);

  const HostConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }
  const cpu::Topology& topology() const { return topo_; }

  // Kernel-version efficiency factor for this host's CPU vendor.
  double stack_factor() const { return cfg_.kernel.stack_factor(cfg_.cpu.vendor); }

  // Effective per-core clock under the configured governor. SMT left on
  // costs ~7% effective single-thread throughput (shared front-end).
  double app_core_hz() const;
  int irq_core_count() const { return 8; }

  // SKB caps with this host's kernel + BIG TCP tuning applied.
  kern::SkbCaps skb_caps() const;

  // Whether requested features are actually active given kernel support.
  bool zerocopy_available() const { return cfg_.kernel.supports_msg_zerocopy; }
  bool big_tcp_active() const {
    return cfg_.tuning.big_tcp_enabled && cfg_.kernel.supports_big_tcp_ipv4;
  }
  bool hw_gro_active() const {
    return cfg_.tuning.hw_gro_enabled && cfg_.kernel.supports_hw_gro &&
           cfg_.nic.hw_gro_capable;
  }

  // Sample a placement for this run: deterministic tuned placement when
  // irqbalance is disabled, randomized otherwise.
  cpu::Placement sample_placement(int streams, Rng& rng) const;

  // Cost model for a given placement quality.
  cpu::CostModel make_cost_model(const cpu::PlacementQuality& quality) const;

  // Memory bandwidth the network stack may consume (bytes/s).
  double stack_mem_bw_bytes() const { return cfg_.cpu.stack_mem_bw_bytes; }

  // Host-wide DMA cap (iommu): bits/s.
  double dma_cap_bps() const;

 private:
  HostConfig cfg_;
  cpu::Topology topo_;
};

}  // namespace dtnsim::host
