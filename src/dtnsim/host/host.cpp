#include "dtnsim/host/host.hpp"

namespace dtnsim::host {

Host::Host(HostConfig cfg) : cfg_(std::move(cfg)), topo_(cfg_.cpu) {}

double Host::app_core_hz() const {
  double hz = cfg_.cpu.core_hz(cfg_.tuning.performance_governor);
  if (!cfg_.tuning.smt_off) hz *= 0.93;  // sibling thread steals front-end
  return hz;
}

kern::SkbCaps Host::skb_caps() const {
  return kern::skb_caps(cfg_.kernel, big_tcp_active(), units::Bytes(cfg_.tuning.big_tcp_bytes));
}

cpu::Placement Host::sample_placement(int streams, Rng& rng) const {
  if (cfg_.tuning.irqbalance_disabled) {
    return cpu::tuned_placement(topo_, streams, /*nic_numa=*/0);
  }
  return cpu::irqbalance_placement(topo_, streams, /*nic_numa=*/0, rng);
}

cpu::CostModel Host::make_cost_model(const cpu::PlacementQuality& quality) const {
  cpu::CostModelOptions opts;
  opts.stack_factor = stack_factor();
  opts.iommu_passthrough = cfg_.tuning.iommu_passthrough;
  opts.placement = quality;
  opts.virt_factor = cfg_.virt_factor;
  return cpu::CostModel(cfg_.cpu, opts);
}

double Host::dma_cap_bps() const {
  cpu::CostModelOptions opts;
  opts.stack_factor = stack_factor();
  opts.iommu_passthrough = cfg_.tuning.iommu_passthrough;
  return cpu::CostModel(cfg_.cpu, opts).dma_throughput_cap_bps();
}

}  // namespace dtnsim::host
