// Host tuning configuration — the paper's §III-D knobs in one struct.
//
// Everything the authors toggled is here: the fasterdata sysctl set, IRQ
// affinity policy, SMT, the CPU governor, ring buffer size, iommu=pt, MTU,
// BIG TCP and (future-work) hardware GRO.
#pragma once

#include "dtnsim/kern/sysctl.hpp"

namespace dtnsim::host {

struct TuningConfig {
  kern::SysctlConfig sysctl = kern::SysctlConfig::fasterdata_tuned();
  // irqbalance disabled + set_irq_affinity_cpulist.sh 0-7 + numactl -C 8-15.
  bool irqbalance_disabled = true;
  bool performance_governor = true;  // cpupower frequency-set -g performance
  bool smt_off = true;               // echo off > /sys/.../smt/control
  int ring_descriptors = 1024;       // ethtool -G rx/tx (8192 helps AMD)
  bool iommu_passthrough = true;     // iommu=pt boot parameter
  double mtu_bytes = 9000.0;
  // ip link set ... gso_ipv4_max_size / gro_ipv4_max_size (paper: 150 KB).
  bool big_tcp_enabled = false;
  double big_tcp_bytes = 150.0 * 1024.0;
  // ethtool rx-gro-hw on (ConnectX-7 + Linux 6.11 only).
  bool hw_gro_enabled = false;

  // The paper's production-ready DTN tuning.
  static TuningConfig dtn_tuned();
  // A stock, untuned host (what the TuningAdvisor warns about).
  static TuningConfig stock();
};

}  // namespace dtnsim::host
