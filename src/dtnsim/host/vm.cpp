#include "dtnsim/host/vm.hpp"

namespace dtnsim::host {

double virtualization_factor(const VmConfig& vm) {
  double f = 1.0;
  // Exits/interposition when the NIC is emulated or paravirtualized.
  if (!vm.pci_passthrough) f *= 1.60;
  // Floating vCPUs migrate off the NIC's NUMA node and thrash caches.
  if (!vm.vcpu_pinned) f *= 1.25;
  // Without passthrough IOMMU mode, every DMA map takes the slow path.
  if (!vm.host_iommu_pt) f *= 1.15;
  // Residual tax of a fully tuned VM (timer/IPI virtualization): ~3%,
  // within the run-to-run stddev — exactly the paper's Fig. 4 finding.
  return f * 1.03;
}

}  // namespace dtnsim::host
