// Fluid-vs-packet divergence report.
//
// The two engines model the same transfer at different granularities: the
// fluid TransferSimulation clocks RTT rounds for 60-second runs, the packet
// engine replays every SKB for ~50 ms. When both run the same scenario
// through one shared obs::Telemetry, the registry ends up holding the fluid
// families (flow.*, nic.*, path.*) next to the packet family (pkt.*), and
// this report diffs the observables the engines are supposed to agree on:
//   - achieved throughput  (delivered bytes over each engine's horizon),
//   - drop fraction        (lost bytes over offered bytes),
//   - GRO aggregate size   (mean bytes per aggregate).
// A large relative difference is the bottleneck-attribution signal: it names
// the abstraction in the fluid model that breaks at microscopic scale (see
// bench/packet_divergence.cpp for the calibrated bands).
#pragma once

#include <string>
#include <vector>

#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/units/units.hpp"

namespace dtnsim::flow {

struct DivergenceEntry {
  std::string metric;  // "achieved_bps", "drop_frac", "aggregate_bytes"
  double fluid = 0.0;
  double packet = 0.0;
  // |packet - fluid| / max(|fluid|, |packet|); 0 when both are ~zero.
  double rel_diff() const;
};

struct DivergenceReport {
  std::string scenario;
  std::vector<DivergenceEntry> entries;

  double worst_rel_diff() const;
  const DivergenceEntry* find(const std::string& metric) const;
  // Aligned human-readable table, one metric per line.
  std::string to_string() const;
};

// Build the report from a registry that saw a fluid run (flow.*, nic.*,
// path.* families) followed by a packet run (pkt.*) of the same scenario.
// The horizons differ by design, so rates are normalized per engine:
// `fluid_horizon` and `packet_horizon` are each engine's simulated duration.
DivergenceReport divergence_report(const std::string& scenario,
                                   const obs::Registry& registry,
                                   units::SimTime fluid_horizon,
                                   units::SimTime packet_horizon);

}  // namespace dtnsim::flow
