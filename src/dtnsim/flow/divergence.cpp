#include "dtnsim/flow/divergence.hpp"

#include <algorithm>
#include <cmath>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::flow {
namespace {

double safe_rate(double bytes, double seconds) {
  return seconds > 0.0 ? bytes * 8.0 / seconds : 0.0;
}

double safe_frac(double num, double den) { return den > 0.0 ? num / den : 0.0; }

}  // namespace

double DivergenceEntry::rel_diff() const {
  const double scale = std::max(std::fabs(fluid), std::fabs(packet));
  if (scale <= 0.0) return 0.0;
  return std::fabs(packet - fluid) / scale;
}

double DivergenceReport::worst_rel_diff() const {
  double worst = 0.0;
  for (const auto& e : entries) worst = std::max(worst, e.rel_diff());
  return worst;
}

const DivergenceEntry* DivergenceReport::find(const std::string& metric) const {
  for (const auto& e : entries) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

std::string DivergenceReport::to_string() const {
  std::string out = strfmt("divergence [%s]\n", scenario.c_str());
  out += strfmt("  %-16s %14s %14s %8s\n", "metric", "fluid", "packet", "rel");
  for (const auto& e : entries) {
    out += strfmt("  %-16s %14.4g %14.4g %7.1f%%\n", e.metric.c_str(), e.fluid,
                  e.packet, e.rel_diff() * 100.0);
  }
  return out;
}

DivergenceReport divergence_report(const std::string& scenario,
                                   const obs::Registry& reg,
                                   units::SimTime fluid_horizon,
                                   units::SimTime packet_horizon) {
  const double fluid_seconds = fluid_horizon.seconds();
  const double packet_seconds = packet_horizon.seconds();
  DivergenceReport rep;
  rep.scenario = scenario;

  // Throughput: each engine's delivered bytes over its own horizon.
  const double fluid_delivered = reg.value_of("flow.delivered_bytes");
  const double pkt_delivered = reg.value_of("pkt.delivered_bytes");
  rep.entries.push_back({"achieved_bps", safe_rate(fluid_delivered, fluid_seconds),
                         safe_rate(pkt_delivered, packet_seconds)});

  // Drop fraction: lost bytes over offered (delivered + lost) bytes. The
  // fluid model loses bytes at the NIC ring and on the path; the packet
  // model only at the ring — path drops there are zero by construction.
  const double fluid_lost =
      reg.value_of("nic.rx_dropped_bytes") + reg.value_of("path.dropped_bytes");
  const double pkt_lost = reg.value_of("pkt.dropped_bytes");
  rep.entries.push_back({"drop_frac",
                         safe_frac(fluid_lost, fluid_delivered + fluid_lost),
                         safe_frac(pkt_lost, pkt_delivered + pkt_lost)});

  // GRO aggregate size: fluid exports the per-tick aggregate estimate as a
  // gauge; the packet engine's histogram is event-weighted so its mean is
  // the mean aggregate size (value_of of a histogram returns the mean).
  rep.entries.push_back({"aggregate_bytes", reg.value_of("flow.gro_aggregate_bytes"),
                         reg.value_of("pkt.gro_aggregate_bytes")});

  return rep;
}

}  // namespace dtnsim::flow
