#include "dtnsim/flow/transfer.hpp"

#include <algorithm>
#include <cmath>

#include "dtnsim/kern/gro.hpp"
#include "dtnsim/kern/gso.hpp"
#include "dtnsim/sim/engine.hpp"
#include "dtnsim/util/log.hpp"

namespace dtnsim::flow {
namespace {

// Fluid tick floor: LAN RTTs below this are clocked at 200 us rounds.
constexpr double kMinTickSec = 200e-6;
// Multiplicative jitter persistence (OU-like) and magnitudes. Unpaced flows
// contend chaotically (paper: 5-30 Gbps per-flow spread); paced flows are
// nearly uniform.
constexpr double kJitterRho = 0.9;
constexpr double kJitterSigmaUnpaced = 0.30;
constexpr double kJitterSigmaPaced = 0.045;

double scale_factor(double need, double budget) {
  if (need <= 0) return 1.0;
  return std::clamp(budget / need, 0.0, 1.0);
}

// Credits `cycles` to one perf stage, in both the run total and the flow's
// row (Accum is Instruments::PerfAccum; templated to reach the private type).
template <typename Accum>
void add_stage(Accum& pa, std::size_t fi, obs::PerfStage st, double cycles) {
  pa.stage[static_cast<int>(st)] += cycles;
  pa.flow_stage[fi][static_cast<int>(st)] += cycles;
}

}  // namespace

TransferSimulation::TransferSimulation(TransferConfig cfg)
    : cfg_(std::move(cfg)),
      sender_(cfg_.sender),
      receiver_(cfg_.receiver),
      path_(cfg_.path),
      rng_(cfg_.seed) {
  const int n = std::max(cfg_.streams, 1);
  snd_quality_ = cpu::assess_placement(sender_.topology(), sender_.sample_placement(n, rng_));
  rcv_quality_ =
      cpu::assess_placement(receiver_.topology(), receiver_.sample_placement(n, rng_));
  snd_cost_ = std::make_unique<cpu::CostModel>(sender_.make_cost_model(snd_quality_));
  rcv_cost_ = std::make_unique<cpu::CostModel>(receiver_.make_cost_model(rcv_quality_));

  // Run-to-run variation from page placement / cache luck — the whiskers on
  // every plot in the paper.
  run_efficiency_ = rng_.lognormal(1.0, 0.035);

  flows_.resize(static_cast<std::size_t>(n));
  const double bias_sigma =
      n > 1 ? (cfg_.flow.fq_rate_bps > 0.0 ? 0.06 : 0.16) : 0.0;
  for (auto& f : flows_) {
    f.cc = tcp::make_congestion_control(cfg_.flow.congestion, mss());
    f.zc_socket = kern::ZcTxSocket(units::Bytes(cfg_.sender.tuning.sysctl.optmem_max));
    f.static_bias = bias_sigma > 0 ? rng_.lognormal(1.0, bias_sigma) : 1.0;
  }
}

double TransferSimulation::mss() const {
  return std::max(cfg_.sender.tuning.mtu_bytes - 40.0, 536.0);
}

void TransferSimulation::update_jitter(FlowState& f) {
  const bool paced = cfg_.flow.fq_rate_bps > 0.0;
  double sigma = paced ? kJitterSigmaPaced : kJitterSigmaUnpaced;
  // A lone flow still sees scheduler/cache noise, just far less contention.
  if (flows_.size() == 1) sigma = 0.03;
  // Contention on the path widens the spread even for paced flows.
  sigma *= 1.0 + 4.0 * last_trim_frac_;
  const double target = rng_.lognormal(f.static_bias, sigma);
  f.share_jitter = f.share_jitter * kJitterRho + target * (1.0 - kJitterRho);
}

void TransferSimulation::setup_telemetry(sim::Engine& engine) {
  tel_ = cfg_.telemetry;
  if (!tel_ || !tel_->config().enabled) {
    tel_ = nullptr;
    return;
  }
  auto& reg = tel_->registry();
  instr_ = std::make_unique<Instruments>();
  Instruments& in = *instr_;

  in.cwnd = reg.gauge("tcp.cwnd_bytes", "bytes", "flow 0 congestion window");
  in.ssthresh = reg.gauge("tcp.ssthresh_bytes", "bytes", "flow 0 ssthresh (0 for BBR)");
  in.pacing_rate = reg.gauge("tcp.pacing_rate_bps", "bps",
                             "effective pacing: fq-rate or CC self-pacing");
  in.srtt = reg.gauge("tcp.srtt_sec", "sec", "flow 0 smoothed RTT");
  in.slow_start = reg.gauge("tcp.in_slow_start", "bool", "flow 0 slow-start state");
  in.retx = reg.counter("tcp.retransmit_segments", "segments", "all flows");
  in.cwnd_hist = reg.histogram("tcp.cwnd_dist_bytes", "bytes",
                               "time-weighted cwnd distribution");

  in.optmem_used = reg.gauge("zc.optmem_used_bytes", "bytes",
                             "peak in-tick optmem charge, summed over flows");
  in.optmem_max = reg.gauge("zc.optmem_max_bytes", "bytes", "per-socket limit");
  in.zc_bytes = reg.counter("zc.sent_bytes", "bytes", "bytes sent pinned (no copy)");
  in.fb_bytes = reg.counter("zc.fallback_bytes", "bytes",
                            "bytes that fell back to copy after failed pin");
  in.fb_events = reg.counter("zc.fallback_sends", "sends",
                             "sends that (partially) fell back");
  in.optmem_frac_hist = reg.histogram("zc.optmem_occupancy_pct", "percent",
                                      "time-weighted optmem occupancy");

  in.ring_occupancy = reg.gauge("nic.rx_ring_occupancy_frac", "frac",
                                "peak modeled RX ring fill this tick");
  in.nic_drops = reg.counter("nic.rx_dropped_bytes", "bytes", "ring overflow drops");
  in.pause_ticks = reg.counter("nic.pause_frame_ticks", "ticks",
                               "ticks with 802.3x pause frames active");
  in.path_drops = reg.counter("path.dropped_bytes", "bytes", "path/switch drops");
  in.trim_frac = reg.gauge("path.trim_frac", "frac",
                           "burst-tolerance trimming this tick");

  in.goodput = reg.gauge("flow.goodput_bps", "bps", "receiver-side delivery rate");
  in.delivered = reg.counter("flow.delivered_bytes", "bytes",
                             "bytes delivered to the application, all flows");
  in.gro_agg = reg.gauge("flow.gro_aggregate_bytes", "bytes",
                         "effective GRO aggregate size the fluid model prices");
  in.sent_rate = reg.gauge("flow.sent_rate_bps", "bps", "sender-side wire rate");
  in.rcv_backlog = reg.gauge("flow.rcv_backlog_bytes", "bytes",
                             "receiver socket backlog, summed over flows");
  in.snd_app = reg.gauge("cpu.snd_app_util", "frac", "sender app-core utilization");
  in.snd_irq = reg.gauge("cpu.snd_irq_util", "frac", "sender IRQ-pool utilization");
  in.rcv_app = reg.gauge("cpu.rcv_app_util", "frac", "receiver app-core utilization");
  in.rcv_irq = reg.gauge("cpu.rcv_irq_util", "frac", "receiver IRQ-pool utilization");
  in.limit_code = reg.gauge("limit.current", "enum",
                            "binding sender constraint (see limit.* counters)");
  for (int c = 0; c < 8; ++c) {
    in.limit_ticks[c] =
        reg.counter(std::string("limit.") + obs::round_limit_name(
                        static_cast<obs::RoundLimit>(c)) + "_ticks",
                    "ticks", "rounds bounded by this constraint");
  }
  // Per-flow tracks for every stream — the multi-stream skew studies (Table
  // III's range column) need each flow's trajectory, not just flow 0's.
  const int nflows = static_cast<int>(flows_.size());
  for (int f = 0; f < nflows; ++f) {
    in.flow_cwnd.push_back(
        reg.gauge("tcp.cwnd_bytes", "flow", f, "bytes", "per-flow congestion window"));
    in.flow_goodput.push_back(
        reg.gauge("flow.goodput_bps", "flow", f, "bps", "per-flow delivery rate"));
    in.flow_retx.push_back(reg.counter("tcp.retransmit_segments", "flow", f,
                                       "segments", "per-flow retransmits"));
  }
  in.flow_bps_min = reg.gauge("flow.per_flow_min_bps", "bps",
                              "slowest flow's delivery rate this tick");
  in.flow_bps_max = reg.gauge("flow.per_flow_max_bps", "bps",
                              "fastest flow's delivery rate this tick");
  in.flow_bps_range = reg.gauge("flow.per_flow_range_bps", "bps",
                                "max-min per-flow delivery spread (Table III range)");

  // scenario.* family only exists when a scenario is attached: registering
  // it unconditionally would grow the probe's CSV columns and break the
  // golden headers of scenario-free runs.
  if (scn_) {
    in.scn_events = reg.counter("scenario.events_applied", "events",
                                "scenario events applied so far");
    in.scn_active_flows = reg.gauge("scenario.active_flows", "flows",
                                    "streams currently active (flow churn)");
    in.scn_active_flows->set(static_cast<double>(flows_.size()));
  }

  in.optmem_max->set(cfg_.sender.tuning.sysctl.optmem_max);
  in.flow0_slow_start = flows_[0].cc->in_slow_start();

  if (tel_->wants_ss()) {
    in.ss = std::make_unique<Instruments::SsAccum>();
    const std::size_t n = flows_.size();
    in.ss->bytes_sent.assign(n, 0.0);
    in.ss->send_bps.assign(n, 0.0);
    in.ss->delivery_bps.assign(n, 0.0);
    in.ss->notsent_bytes.assign(n, 0.0);
    in.ss->optmem_inflight.assign(n, 0.0);
    in.ss->rcv_ooo.assign(n, 0.0);
    tel_->ss().set_source([this](Nanos now) { return build_ss_report(now); });
    // Armed before the probe: at coincident timestamps the ss sample lands
    // first, so the probe's cross-check compares against this instant's
    // report rather than a stale one.
    if (tel_->config().ss_interval > 0) {
      tel_->ss().arm(engine, tel_->config().ss_interval, cfg_.duration.nanos());
    }
    tel_->link_ss_cross_check();
  }

  if (tel_->wants_perf()) {
    in.perf = std::make_unique<Instruments::PerfAccum>();
    in.perf->flow_stage.assign(flows_.size(), {});
    in.perf->tx_pb.assign(flows_.size(), {});
    tel_->perf().set_source([this](Nanos now) { return build_perf_report(now); });
    if (tel_->config().perf_interval > 0) {
      tel_->perf().arm(engine, tel_->config().perf_interval, cfg_.duration.nanos());
    }
  }

  tel_->trace().begin("transfer", "run", engine.now());
  tel_->probe().arm(engine, cfg_.duration.nanos());
}

TransferResult TransferSimulation::run() {
  sim::Engine engine;
  engine_ = &engine;
  if (!cfg_.scenario.empty()) {
    // The fluid engine supports every event kind. The Runtime draws its
    // jitter from a jump-separated substream of the run seed, never from
    // rng_, so attaching a scenario does not shift any engine draw.
    scn_ = std::make_unique<scenario::Runtime>(
        cfg_.scenario, cfg_.seed, "fluid",
        std::vector<scenario::EventKind>{
            scenario::EventKind::LinkCapacity, scenario::EventKind::LinkAddRtt,
            scenario::EventKind::LossBurst, scenario::EventKind::ReorderBurst,
            scenario::EventKind::LinkDown, scenario::EventKind::LinkUp,
            scenario::EventKind::BgSurge, scenario::EventKind::NicRingResize,
            scenario::EventKind::NicPauseToggle,
            scenario::EventKind::IrqDrainDegrade, scenario::EventKind::QdiscSwap,
            scenario::EventKind::QdiscPacingRate,
            scenario::EventKind::SysctlOptmem, scenario::EventKind::FlowArrive,
            scenario::EventKind::FlowDepart});
    scn_base_path_ = cfg_.path;
    scn_base_ring_ = cfg_.receiver.tuning.ring_descriptors;
    scn_base_lfc_ = cfg_.link_flow_control;
    scn_base_qdisc_ = cfg_.sender.tuning.sysctl.default_qdisc;
    scn_base_fq_rate_ = cfg_.flow.fq_rate_bps;
    scn_base_optmem_ = cfg_.sender.tuning.sysctl.optmem_max;
    scn_active_flows_ = static_cast<int>(flows_.size());
  }
  const double rtt = std::max(path_.spec().rtt_sec(), 1e-6);
  const double dt = std::max(rtt, kMinTickSec);
  const Nanos tick_ns = std::max<Nanos>(static_cast<Nanos>(dt * 1e9), 1);

  log::ScopedTimeSource clock([&engine] { return engine.now(); });
  log::info("transfer start: %s, %zu flow(s), rtt %.3fs, %.0fs run%s%s",
            path_.spec().name.c_str(), flows_.size(), path_.spec().rtt_sec(),
            cfg_.duration.seconds(),
            cfg_.flow.zerocopy ? ", zerocopy" : "",
            cfg_.flow.fq_rate_bps > 0 ? ", paced" : "");

  // Self-rescheduling round tick on the event engine.
  std::function<void()> round = [&] {
    const double now_sec = units::to_seconds(engine.now());
    tick(dt, now_sec);
    if (engine.now() + tick_ns <= cfg_.duration.nanos()) {
      engine.schedule(tick_ns, round);
    }
  };
  engine.schedule(tick_ns, round);
  // Probe events land after the round tick at coincident timestamps.
  setup_telemetry(engine);
  engine.run();
  if (tel_ && tel_->wants_ss()) {
    // Guarantee an end-of-run snapshot (skipped if a watch sample already
    // landed at the horizon), then detach the source: the bound lambda reads
    // `this` and the Telemetry outlives this call.
    tel_->ss().final_sample(engine.now());
    tel_->ss().set_source(nullptr);
  }
  if (tel_ && tel_->wants_perf()) {
    // Same discipline as the ss watch: one attributed end-of-run report,
    // then detach the source before this frame dies.
    tel_->perf().final_sample(engine.now());
    tel_->perf().set_source(nullptr);
  }
  if (tel_) tel_->trace().end("transfer", "run", engine.now());
  log::info("transfer done: %.2f Gbps delivered, %.0f segments retransmitted",
            units::to_gbps(units::rate_of(total_delivered_,
                                          cfg_.duration.seconds())),
            total_retx_);
  engine_ = nullptr;

  // Flush the trailing partial interval (tick quantization drift).
  if (interval_elapsed_ > 0.5) {
    interval_bps_.push_back(units::rate_of(interval_accum_bytes_, interval_elapsed_));
    interval_accum_bytes_ = 0.0;
    interval_elapsed_ = 0.0;
  }

  TransferResult res;
  res.duration_sec = cfg_.duration.seconds();
  res.throughput_bps = units::rate_of(total_delivered_, res.duration_sec);
  for (const auto& f : flows_) {
    res.per_flow_bps.push_back(units::rate_of(f.delivered_bytes, res.duration_sec));
  }
  res.retransmit_segments = total_retx_;
  res.sender_cpu.app_util = snd_app_util_.mean();
  res.sender_cpu.irq_util = snd_irq_util_.mean();
  res.sender_cpu.cores_pct =
      100.0 * (snd_app_util_.mean() + snd_irq_util_.mean() *
                                          static_cast<double>(sender_.irq_core_count()));
  res.receiver_cpu.app_util = rcv_app_util_.mean();
  res.receiver_cpu.irq_util = rcv_irq_util_.mean();
  res.receiver_cpu.cores_pct =
      100.0 * (rcv_app_util_.mean() + rcv_irq_util_.mean() *
                                          static_cast<double>(receiver_.irq_core_count()));
  for (const auto& f : flows_) {
    res.zc_bytes += f.zc_socket.total_zc_bytes();
    res.zc_fallback_bytes += f.zc_socket.total_fallback_bytes();
  }
  res.interval_bps = interval_bps_;
  res.dropped_bytes_nic = dropped_nic_;
  res.dropped_bytes_path = dropped_path_;
  res.pause_frames_seen = pause_seen_;
  if (scn_) {
    // Sweep the horizon itself so events landing on the final boundary are
    // logged even though no tick runs after them.
    scn_->advance(cfg_.duration.seconds());
    res.scenario_log = scn_->event_log();
  }
  return res;
}

void TransferSimulation::apply_scenario(double now_sec) {
  const std::size_t logged_before = scn_->log().size();
  if (!scn_->advance(now_sec)) return;
  const scenario::Effects& e = scn_->effects();

  // Path overlay: fold onto the t=0 spec; the tick re-reads path_.spec()
  // every round, so the swap takes effect immediately.
  net::PathSpec ps = scn_base_path_;
  if (e.capacity_bps >= 0.0) ps.capacity_bps = e.capacity_bps;
  if (e.link_down) ps.capacity_bps = 1.0;  // outage: the pipe is gone
  ps.rtt = scn_base_path_.rtt + units::seconds(e.extra_rtt_sec);
  ps.bg_traffic_bps = scn_base_path_.bg_traffic_bps + e.extra_bg_bps;
  path_.set_spec(ps);

  // NIC / qdisc / sysctl overlays land in cfg_, which the tick also
  // re-reads every round (NicRx is rebuilt per tick).
  cfg_.receiver.tuning.ring_descriptors =
      e.ring_descriptors >= 0.0
          ? static_cast<int>(std::lround(e.ring_descriptors))
          : scn_base_ring_;
  cfg_.link_flow_control =
      e.pause_frames < 0 ? scn_base_lfc_ : e.pause_frames == 1;
  cfg_.sender.tuning.sysctl.default_qdisc =
      e.qdisc < 0 ? scn_base_qdisc_
                  : (e.qdisc == 1 ? kern::QdiscKind::Fq : kern::QdiscKind::FqCodel);
  cfg_.flow.fq_rate_bps = e.pacing_bps < 0.0 ? scn_base_fq_rate_ : e.pacing_bps;

  const double optmem =
      e.optmem_max_bytes < 0.0 ? scn_base_optmem_ : e.optmem_max_bytes;
  if (optmem != cfg_.sender.tuning.sysctl.optmem_max) {
    cfg_.sender.tuning.sysctl.optmem_max = optmem;
    for (auto& f : flows_) f.zc_socket.set_optmem_max(units::Bytes(optmem));
    if (instr_) instr_->optmem_max->set(optmem);
  }

  scn_loss_frac_ = e.loss_frac;
  scn_reorder_frac_ = e.reorder_frac;
  scn_irq_mult_ = e.irq_drain_mult;
  scn_active_flows_ = std::clamp(static_cast<int>(flows_.size()) + e.flow_delta,
                                 1, static_cast<int>(flows_.size()));

  const auto& log = scn_->log();
  const Nanos now_ns = engine_ ? engine_->now() : units::seconds(now_sec);
  for (std::size_t i = logged_before; i < log.size(); ++i) {
    const scenario::AppliedEvent& ev = log[i];
    log::info("scenario: %s value=%g fired at t=%.3fs%s",
              std::string(scenario::kind_name(ev.kind)).c_str(), ev.value,
              ev.fire_sec, ev.applied ? "" : " (unsupported, skipped)");
    if (instr_) {
      if (ev.applied) instr_->scn_events->increment();
      tel_->trace().instant(
          "scenario_" + std::string(scenario::kind_name(ev.kind)), "scenario",
          now_ns, 0,
          {{"value", ev.value},
           {"fire_sec", ev.fire_sec},
           {"applied", ev.applied ? 1.0 : 0.0}});
    }
  }
  if (instr_) {
    instr_->scn_active_flows->set(static_cast<double>(scn_active_flows_));
  }
}

void TransferSimulation::tick(double dt_sec, double now_sec) {
  if (scn_) apply_scenario(now_sec);
  const double rtt = std::max(path_.spec().rtt_sec(), 1e-6);
  Instruments* const in = instr_.get();
  const Nanos now_ns = engine_ ? engine_->now() : units::seconds(now_sec);
  const bool zc_req = cfg_.flow.zerocopy && sender_.zerocopy_available();
  const bool qdisc_can_pace =
      cfg_.sender.tuning.sysctl.default_qdisc == kern::QdiscKind::Fq;
  const double fq_rate = qdisc_can_pace ? cfg_.flow.fq_rate_bps : 0.0;

  const auto snd_caps = sender_.skb_caps();
  const auto rcv_caps = receiver_.skb_caps();
  const double mtu =
      std::min(cfg_.sender.tuning.mtu_bytes, cfg_.receiver.tuning.mtu_bytes);
  const double gso =
      kern::effective_gso_bytes(snd_caps, zc_req, units::Bytes(mtu)).value();
  const double gro = kern::effective_gro_bytes(rcv_caps, units::Bytes(mtu)).value();

  const double snd_wnd_max = cfg_.sender.tuning.sysctl.max_send_window_bytes();
  const double rcv_wnd_max = cfg_.receiver.tuning.sysctl.max_recv_window_bytes();

  const double eff = run_efficiency_;
  const double snd_app_budget = sender_.app_core_hz() * dt_sec * eff;  // per flow
  const double rcv_app_budget = receiver_.app_core_hz() * dt_sec * eff;
  const double snd_irq_budget = sender_.app_core_hz() *
                                static_cast<double>(sender_.irq_core_count()) * dt_sec * eff;
  double rcv_irq_budget = receiver_.app_core_hz() *
                          static_cast<double>(receiver_.irq_core_count()) * dt_sec * eff;
  // Scenario IRQ-core degradation (noisy neighbor stealing drain cycles).
  if (scn_) rcv_irq_budget *= scn_irq_mult_;
  const double snd_mem_budget = sender_.stack_mem_bw_bytes() * dt_sec * eff;
  const double rcv_mem_budget = receiver_.stack_mem_bw_bytes() * dt_sec * eff;
  const double line_bytes = sender_.config().nic.line_rate_bps * dt_sec / 8.0;
  const double snd_dma_bytes = sender_.dma_cap_bps() * dt_sec / 8.0;
  const double rcv_dma_bytes = receiver_.dma_cap_bps() * dt_sec / 8.0;

  // ---- Sender: plan each flow -------------------------------------------
  units::Cycles snd_app_used{0.0};
  // Flow 0's planning intermediates, kept to name the binding constraint.
  double f0_wnd_desired = 0.0, f0_paced_desired = 0.0, f0_cpu_cap = 0.0;
  for (auto& f : flows_) {
    update_jitter(f);

    // Departed stream (scenario flow churn): the jitter stream above stays
    // warm so churn never shifts the other flows' draws, but the flow
    // plans nothing and its backlog simply drains out below.
    if (scn_ &&
        static_cast<int>(&f - flows_.data()) >= scn_active_flows_) {
      f.planned_bytes = 0.0;
      f.tx_app_cyc_per_byte = 0.0;
      if (in && in->perf) {
        in->perf->tx_pb[static_cast<std::size_t>(&f - flows_.data())] = {};
      }
      continue;
    }

    const double rwnd = std::max(rcv_wnd_max - f.rcv_backlog_bytes, 0.0);
    const double wnd = std::min({f.cc->cwnd_bytes(), rwnd, snd_wnd_max});
    double desired = wnd * dt_sec / rtt;

    double pace = fq_rate;
    const double cc_pace = f.cc->pacing_rate_bps();
    if (cc_pace > 0.0) pace = pace > 0.0 ? std::min(pace, cc_pace) : cc_pace;
    if (pace > 0.0) desired = std::min(desired, pace * dt_sec / 8.0);

    // Zerocopy split (preview only; commitment happens after global caps).
    double zc_frac = 0.0, fb_frac = 0.0;
    if (zc_req && desired > 0) {
      const auto plan = f.zc_socket.preview_send(units::Bytes(desired), units::Bytes(gso));
      zc_frac = (plan.zc_bytes + plan.fallback_bytes) / desired;
      fb_frac = plan.fallback_bytes / desired;
    }

    cpu::TxPathConfig txc;
    txc.gso_bytes = gso;
    txc.mtu_bytes = mtu;
    txc.zc_fraction = zc_frac;
    txc.zc_fallback_fraction = fb_frac;
    // In-flight data over one RTT is what thrashes the L3; the previous
    // round's sent volume is the sustained estimate (the window cap can be
    // far larger than what is actually outstanding).
    txc.cache_mult = snd_cost_->cache_pressure_mult(
        std::min(f.prev_sent_bytes * rtt / dt_sec, wnd));
    f.tx_app_cyc_per_byte = snd_cost_->tx_app_cyc_per_byte(txc);
    if (in && in->perf) {
      // Stage split of the price just computed — same TxPathConfig, so the
      // stage fields sum back to f.tx_app_cyc_per_byte (fp rounding aside).
      const std::size_t fi = static_cast<std::size_t>(&f - flows_.data());
      in->perf->tx_pb[fi] = snd_cost_->tx_app_stage_cyc(txc);
    }

    const double cpu_cap = snd_app_budget * f.share_jitter /
                           std::max(f.tx_app_cyc_per_byte, 1e-9);
    f.planned_bytes = std::min(desired, cpu_cap);
    if (in && &f == &flows_[0]) {
      f0_wnd_desired = wnd * dt_sec / rtt;
      f0_paced_desired = desired;
      f0_cpu_cap = cpu_cap;
    }
  }

  // ---- Sender: shared resource scaling ----------------------------------
  cpu::TxPathConfig irq_cfg;  // per-byte IRQ cost is geometry-only
  irq_cfg.gso_bytes = gso;
  irq_cfg.mtu_bytes = mtu;
  const double tx_irq_pb = snd_cost_->tx_irq_cyc_per_byte(irq_cfg);
  cpu::TxIrqStageCyc tx_irq_spb{};
  if (in && in->perf) tx_irq_spb = snd_cost_->tx_irq_stage_cyc(irq_cfg);

  double total_planned = 0.0, total_irq_need = 0.0, total_mem_need = 0.0;
  for (auto& f : flows_) {
    total_planned += f.planned_bytes;
    total_irq_need += f.planned_bytes * tx_irq_pb;
    cpu::TxPathConfig mc = irq_cfg;
    mc.zc_fraction = zc_req ? 1.0 : 0.0;  // approximate: zc flows mostly zc
    total_mem_need += f.planned_bytes * snd_cost_->tx_mem_passes(mc);
  }
  const double s_irq = scale_factor(total_irq_need, snd_irq_budget);
  const double s_line = scale_factor(total_planned, line_bytes);
  const double s_dma = scale_factor(total_planned, snd_dma_bytes);
  const double s_mem = scale_factor(total_mem_need, snd_mem_budget);
  const double s = std::min(std::min(s_irq, s_line), std::min(s_dma, s_mem));

  units::Cycles snd_irq_used{0.0};
  const bool paced_traffic = fq_rate > 0.0 || flows_[0].cc->self_paced();
  double group_sent = 0.0;
  for (auto& f : flows_) {
    f.sent_bytes = f.planned_bytes * s;
    if (zc_req && f.sent_bytes > 0) {
      const auto plan = f.zc_socket.plan_send(units::Bytes(f.sent_bytes), units::Bytes(gso));
      f.zc_planned = plan.zc_bytes;
      f.fb_planned = plan.fallback_bytes;
    } else {
      f.zc_planned = f.fb_planned = 0.0;
    }
    f.inflight_bytes = f.sent_bytes;
    snd_app_used += units::Cycles(f.sent_bytes * f.tx_app_cyc_per_byte);
    snd_irq_used += units::Cycles(f.sent_bytes * tx_irq_pb);
    group_sent += f.sent_bytes;
    if (in && in->perf) {
      // Split the exact charges above into stages; per-byte stage prices
      // come from the planning loop's TxPathConfig (app) and the shared
      // geometry config (irq), so stage sums equal the scalar charges.
      auto& pa = *in->perf;
      const std::size_t fi = static_cast<std::size_t>(&f - flows_.data());
      const auto& pb = pa.tx_pb[fi];
      add_stage(pa, fi, obs::PerfStage::TxSyscall, f.sent_bytes * pb.syscall);
      add_stage(pa, fi, obs::PerfStage::TxProto, f.sent_bytes * pb.proto);
      add_stage(pa, fi, obs::PerfStage::TxUserCopy, f.sent_bytes * pb.user_copy);
      add_stage(pa, fi, obs::PerfStage::TxZcPin, f.sent_bytes * pb.zc_pin);
      add_stage(pa, fi, obs::PerfStage::TxZcNotify, f.sent_bytes * pb.zc_notify);
      add_stage(pa, fi, obs::PerfStage::TxZcFallback, f.sent_bytes * pb.zc_fallback);
      add_stage(pa, fi, obs::PerfStage::TxGsoSegment, f.sent_bytes * tx_irq_spb.gso_segment);
      add_stage(pa, fi, obs::PerfStage::TxDmaMap, f.sent_bytes * tx_irq_spb.dma_map);
      add_stage(pa, fi, obs::PerfStage::TxCompletion, f.sent_bytes * tx_irq_spb.completion);
      pa.consumed[static_cast<int>(obs::PerfCore::SndApp)] +=
          f.sent_bytes * f.tx_app_cyc_per_byte;
      pa.consumed[static_cast<int>(obs::PerfCore::SndIrq)] += f.sent_bytes * tx_irq_pb;
      pa.bytes_sent += f.sent_bytes;
    }
  }

  if (in) {
    // Optmem occupancy peaks here — charges are live between plan_send and
    // the ACK release at the end of the round, which is the in-flight
    // charge a real `ss`/optmem probe would observe.
    double used = 0.0, zc_delta = 0.0, fb_delta = 0.0;
    std::uint64_t fb_sends = 0;
    for (const auto& f : flows_) {
      used += f.zc_socket.optmem_used();
      zc_delta += f.zc_planned;
      fb_delta += f.fb_planned;
      if (f.fb_planned > 0) ++fb_sends;
    }
    in->optmem_used->set(used);
    in->optmem_frac_hist->add(
        100.0 * used / std::max(cfg_.sender.tuning.sysctl.optmem_max, 1.0), dt_sec);
    in->zc_bytes->add(zc_delta);
    in->fb_bytes->add(fb_delta);
    in->fb_events->add(static_cast<double>(fb_sends));
    const bool falling_back = fb_delta > 0;
    if (falling_back && !in->in_fallback) {
      tel_->trace().instant("zc_fallback", "zerocopy", now_ns, 0,
                            {{"optmem_used_bytes", used},
                             {"fallback_bytes", fb_delta}});
    } else if (!falling_back && in->in_fallback) {
      tel_->trace().instant("zc_fallback_end", "zerocopy", now_ns, 0);
    }
    in->in_fallback = falling_back;

    // Name the constraint that bounded this round's send.
    obs::RoundLimit cause = obs::RoundLimit::Window;
    if (f0_cpu_cap < f0_paced_desired) {
      cause = obs::RoundLimit::AppCpu;
    } else if (f0_paced_desired < 0.999 * f0_wnd_desired) {
      cause = obs::RoundLimit::Pacing;
    }
    if (s < 0.9995) {
      cause = obs::RoundLimit::IrqCpu;
      double worst = s_irq;
      if (s_line < worst) { cause = obs::RoundLimit::LineRate; worst = s_line; }
      if (s_dma < worst) { cause = obs::RoundLimit::Dma; worst = s_dma; }
      if (s_mem < worst) { cause = obs::RoundLimit::MemBw; worst = s_mem; }
    }
    in->limit_code->set(static_cast<double>(cause));
    in->limit_ticks[static_cast<int>(cause)]->increment();
    if (cause != in->last_limit) {
      tel_->trace().instant("limit_change", "cpu", now_ns, 0,
                            {{"code", static_cast<double>(cause)}});
      in->last_limit = cause;
    }

    if (auto* ssa = in->ss.get()) {
      for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
        const auto& f = flows_[fi];
        ssa->bytes_sent[fi] += f.sent_bytes;
        ssa->send_bps[fi] = units::rate_of(f.sent_bytes, dt_sec);
        ssa->notsent_bytes[fi] = std::max(f.planned_bytes - f.sent_bytes, 0.0);
        ssa->optmem_inflight[fi] = f.zc_socket.optmem_used();
      }
      ssa->app_limited =
          cause == obs::RoundLimit::AppCpu || cause == obs::RoundLimit::IrqCpu;
      ssa->qdisc_sent_bytes += group_sent;
      if (cause == obs::RoundLimit::Pacing) {
        // fq "throttled": pacing, not the window, gated this round. The
        // modeled delay is the slice of the round pacing withheld from the
        // window's demand.
        ssa->qdisc_throttled += 1.0;
        const double frac =
            f0_wnd_desired > 0
                ? std::clamp(1.0 - f0_paced_desired / f0_wnd_desired, 0.0, 1.0)
                : 0.0;
        ssa->qdisc_pacing_delay_sec += dt_sec * frac;
      }
    }
  }

  // ---- Path transit (aggregate) ------------------------------------------
  const double smoothness = !paced_traffic ? 1.0 : (zc_req ? 1.25 : 1.08);
  const auto transit =
      path_.transit(units::Bytes(group_sent), dt_sec, paced_traffic, smoothness, rng_);
  dropped_path_ += transit.dropped_bytes;
  const double path_trim_frac =
      group_sent > 0 ? (group_sent - transit.delivered_bytes) / group_sent : 0.0;
  if (path_trim_frac > 0.0 && flows_.size() > 1) {
    // Contended path: flows do not share the trimmed capacity evenly —
    // per-flow shares follow the jitter weights (Table III's 9-16 Gbps
    // unpaced range; 10-13 even when paced to 15).
    double wsum = 0.0;
    for (const auto& f : flows_) wsum += f.sent_bytes * f.share_jitter;
    double leftover = 0.0;
    for (auto& f : flows_) {
      const double want =
          wsum > 0 ? transit.delivered_bytes * f.sent_bytes * f.share_jitter / wsum : 0.0;
      f.arrived_bytes = std::min(want, f.sent_bytes);
      leftover += want - f.arrived_bytes;
      f.lost_bytes = 0.0;
    }
    // Capacity a capped flow could not use flows to the others.
    for (auto& f : flows_) {
      if (leftover <= 0) break;
      const double headroom = f.sent_bytes - f.arrived_bytes;
      const double take = std::min(headroom, leftover);
      f.arrived_bytes += take;
      leftover -= take;
    }
  } else {
    for (auto& f : flows_) {
      f.arrived_bytes = f.sent_bytes * (1.0 - path_trim_frac);
      f.lost_bytes = 0.0;
    }
  }
  last_trim_frac_ = path_trim_frac;
  if (in) {
    in->path_drops->add(transit.dropped_bytes);
    in->trim_frac->set(path_trim_frac);
    const bool trimming = path_trim_frac > 1e-9;
    if (trimming && !in->in_trim) {
      tel_->trace().instant("burst_trimmed", "path", now_ns, 0,
                            {{"trim_frac", path_trim_frac}});
    }
    in->in_trim = trimming;
  }
  if (transit.dropped_bytes > 0) {
    if (paced_traffic || flows_.size() == 1) {
      // Symmetric flows absorb path drops proportionally.
      for (auto& f : flows_) {
        f.lost_bytes += group_sent > 0
                            ? transit.dropped_bytes * f.sent_bytes / group_sent
                            : 0.0;
      }
    } else {
      // Unpaced flows collide asynchronously: a random subset bears each
      // round's loss (weighted by instantaneous share), which desynchronizes
      // the backoffs — the paper's 5-30 Gbps per-flow spread and "flows
      // interfere with each other" behaviour.
      double remaining = transit.dropped_bytes;
      const int victims =
          1 + static_cast<int>(rng_.uniform_int(0, std::min<std::int64_t>(
                                                       2, static_cast<std::int64_t>(
                                                              flows_.size()) -
                                                           1)));
      for (int v = 0; v < victims && remaining > 0; ++v) {
        auto& f = flows_[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(flows_.size()) - 1))];
        const double take = std::min(remaining / static_cast<double>(victims - v),
                                     f.sent_bytes * 0.8 - f.lost_bytes);
        if (take > 0) {
          f.lost_bytes += take;
          remaining -= take;
        }
      }
      // Whatever victims could not absorb spreads proportionally.
      if (remaining > 1.0 && group_sent > 0) {
        for (auto& f : flows_) {
          f.lost_bytes += remaining * f.sent_bytes / group_sent;
        }
      }
    }
  }

  // ---- Scenario forced loss ----------------------------------------------
  if (scn_ && scn_loss_frac_ > 0.0) {
    // Loss episode: a deterministic cut of what the path delivered, counted
    // as path drops so CC backoff and retransmit accounting both see it.
    double forced = 0.0;
    for (auto& f : flows_) {
      const double cut = f.arrived_bytes * scn_loss_frac_;
      f.arrived_bytes -= cut;
      f.lost_bytes += cut;
      forced += cut;
    }
    dropped_path_ += forced;
    if (in) in->path_drops->add(forced);
  }

  // ---- Receiver NIC per flow ---------------------------------------------
  net::NicSpec rx_nic = cfg_.receiver.nic;
  if (receiver_.hw_gro_active()) {
    // SHAMPO merges in hardware and splits headers from data: the NIC-to-
    // kernel drain path survives far denser trains.
    rx_nic.drain_burst_bps *= 1.6;
    rx_nic.drain_smooth_bps *= 1.3;
  }
  net::NicRx nic_rx(rx_nic, cfg_.receiver.tuning.ring_descriptors, mtu,
                    cfg_.link_flow_control);
  cpu::RxPathConfig rxc;
  rxc.gro_bytes = gro;
  rxc.mtu_bytes = mtu;
  rxc.copy_to_user = !cfg_.flow.skip_rx_copy;
  rxc.hw_gro = receiver_.hw_gro_active();
  const double rx_app_pb = rcv_cost_->rx_app_cyc_per_byte(rxc);
  const double rx_irq_pb = rcv_cost_->rx_irq_cyc_per_byte(rxc);
  const double rx_mem_passes = rcv_cost_->rx_mem_passes(rxc);
  cpu::RxAppStageCyc rx_app_spb{};
  cpu::RxIrqStageCyc rx_irq_spb{};
  if (in && in->perf) {
    rx_app_spb = rcv_cost_->rx_app_stage_cyc(rxc);
    rx_irq_spb = rcv_cost_->rx_irq_stage_cyc(rxc);
  }

  double total_accepted = 0.0;
  double tick_nic_drops = 0.0, tick_ring_occ = 0.0;
  bool tick_pause = false;
  for (auto& f : flows_) {
    net::RxArrival arr;
    arr.bytes = f.arrived_bytes;
    arr.paced = paced_traffic;
    const auto verdict = nic_rx.process(arr, dt_sec, rtt);
    dropped_nic_ += verdict.dropped_bytes;
    tick_nic_drops += verdict.dropped_bytes;
    tick_ring_occ = std::max(tick_ring_occ, verdict.ring_occupancy_frac);
    tick_pause = tick_pause || verdict.pause_frames_sent;
    pause_seen_ = pause_seen_ || verdict.pause_frames_sent;
    f.lost_bytes += verdict.dropped_bytes;
    if (verdict.pause_frames_sent) {
      // 802.3x backpressure: the excess never entered the host; for window
      // accounting it behaves like un-sent data, not a loss.
      f.inflight_bytes -= f.arrived_bytes - verdict.accepted_bytes;
    }
    f.arrived_bytes = verdict.accepted_bytes;
    total_accepted += f.arrived_bytes;
  }

  // Receiver-side host limits: IRQ cycles, DMA, memory bandwidth. TCP flow
  // control (rwnd) turns sustained overload into backpressure — the sender
  // slows — but transient overshoot occasionally overruns the ring and
  // drops for real (a rare stochastic event, not a per-tick certainty).
  const double rx_host_cap =
      std::min({rcv_irq_budget / std::max(rx_irq_pb, 1e-12), rcv_dma_bytes,
                rcv_mem_budget / std::max(rx_mem_passes, 1e-9)});
  if (total_accepted > rx_host_cap && total_accepted > 0) {
    const double overload = total_accepted / rx_host_cap;
    const double keep = rx_host_cap / total_accepted;
    for (auto& f : flows_) {
      const double cut = f.arrived_bytes * (1.0 - keep);
      f.arrived_bytes -= cut;
      f.inflight_bytes -= cut;
    }
    total_accepted = rx_host_cap;
    if (cfg_.link_flow_control) {
      pause_seen_ = true;
      tick_pause = true;
    } else if (rng_.bernoulli(std::min((overload - 1.0) * dt_sec, 0.5))) {
      // Transient ring overrun: one flow eats a modest burst loss.
      auto& victim = flows_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(flows_.size()) - 1))];
      const double burst = std::min(victim.arrived_bytes, 40.0 * mtu);
      victim.lost_bytes += burst;
      dropped_nic_ += burst;
      tick_nic_drops += burst;
      tick_ring_occ = 1.0;
    }
  }
  if (in) {
    in->ring_occupancy->set(tick_ring_occ);
    in->nic_drops->add(tick_nic_drops);
    if (tick_nic_drops > 0) {
      tel_->trace().instant("ring_overflow", "nic", now_ns, 0,
                            {{"dropped_bytes", tick_nic_drops}});
    }
    if (tick_pause) in->pause_ticks->increment();
    if (tick_pause && !in->pause_active) {
      tel_->trace().instant("pause_frames", "nic", now_ns, 0);
    }
    in->pause_active = tick_pause;

    if (auto* ssa = in->ss.get()) {
      // ethtool -S analogues, aggregated at tick grain so host-overrun drops
      // (which bypass NicRx) are counted too.
      ssa->rx_bytes += total_accepted;
      ssa->rx_dropped_bytes += tick_nic_drops;
      if (tick_nic_drops > 0) ssa->rx_dropped_events += 1.0;
      ssa->ring_hiwater = std::max(ssa->ring_hiwater, tick_ring_occ);
      if (tick_pause) ssa->pause_frames += 1.0;
      if (receiver_.hw_gro_active() && gro > 0) {
        ssa->hw_gro_aggs += total_accepted / gro;
      }
    }
  }

  // ---- Receiver app drain --------------------------------------------------
  units::Cycles rcv_app_used{0.0};
  double interval_bytes_this_tick = 0.0;
  double drain_min = 0.0, drain_max = 0.0;
  for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
    auto& f = flows_[fi];
    const double cap = rcv_app_budget / std::max(rx_app_pb, 1e-9);
    const double drain = std::min(f.rcv_backlog_bytes + f.arrived_bytes, cap);
    f.rcv_backlog_bytes = std::max(f.rcv_backlog_bytes + f.arrived_bytes - drain, 0.0);
    f.delivered_bytes += drain;
    interval_bytes_this_tick += drain;
    rcv_app_used += units::Cycles(drain * rx_app_pb);
    if (in && in->perf) {
      // RX charge split: IRQ-side work scales with what the NIC accepted
      // (post-verdict arrived bytes — summing to total_accepted), app-side
      // work with what the application actually drained this round.
      auto& pa = *in->perf;
      add_stage(pa, fi, obs::PerfStage::RxSkbAlloc, f.arrived_bytes * rx_irq_spb.skb_alloc);
      add_stage(pa, fi, obs::PerfStage::RxGroMerge, f.arrived_bytes * rx_irq_spb.gro_merge);
      add_stage(pa, fi, obs::PerfStage::RxAggFlush, f.arrived_bytes * rx_irq_spb.agg_flush);
      add_stage(pa, fi, obs::PerfStage::RxCsum, f.arrived_bytes * rx_irq_spb.csum);
      add_stage(pa, fi, obs::PerfStage::RxSyscall, drain * rx_app_spb.syscall);
      add_stage(pa, fi, obs::PerfStage::RxFragWalk, drain * rx_app_spb.frag_walk);
      add_stage(pa, fi, obs::PerfStage::RxCopyout, drain * rx_app_spb.copyout);
      pa.consumed[static_cast<int>(obs::PerfCore::RcvIrq)] += f.arrived_bytes * rx_irq_pb;
      pa.consumed[static_cast<int>(obs::PerfCore::RcvApp)] += drain * rx_app_pb;
    }
    if (fi == 0) {
      drain_min = drain_max = drain;
    } else {
      drain_min = std::min(drain_min, drain);
      drain_max = std::max(drain_max, drain);
    }
    if (in) {
      in->flow_goodput[fi]->set(units::rate_of(drain, dt_sec));
      if (in->ss) in->ss->delivery_bps[fi] = units::rate_of(drain, dt_sec);
    }
  }
  total_delivered_ += interval_bytes_this_tick;

  // ---- ACK / loss feedback ------------------------------------------------
  double tick_retx = 0.0, tick_cc_loss_bytes = 0.0;
  int tick_cc_loss_flows = 0;
  for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
    auto& f = flows_[fi];
    const double acked = f.arrived_bytes;
    const double lost = f.lost_bytes;
    if (in && in->ss) {
      // Receiver-side reordering (tcpi_rcv_ooopack): every retransmitted
      // hole and every scenario-reordered segment arrives out of order.
      double ooo = lost > 0.5 * mss() ? lost / mss() : 0.0;
      if (scn_ && scn_reorder_frac_ > 0.0) {
        ooo += f.arrived_bytes * scn_reorder_frac_ / mss();
      }
      in->ss->rcv_ooo[fi] += ooo;
    }
    if (lost > 0.5 * mss()) {
      f.retransmit_segments += lost / mss();
      total_retx_ += lost / mss();
      tick_retx += lost / mss();
      if (in) in->flow_retx[fi]->add(lost / mss());
      // Small loss bursts recover through limited transmit / PRR without a
      // multiplicative decrease; only substantial loss events (more than a
      // NAPI batch worth of segments AND a visible share of the round)
      // collapse the window. Without this, a stray 60-segment loss would
      // re-collapse a small window faster than CUBIC can rebuild it — a
      // death spiral real TCP does not exhibit.
      const double md_floor =
          32.0 * mss() * std::clamp(dt_sec / 0.063, 0.01, 1.0);
      if (lost > std::max(md_floor, 0.0025 * f.sent_bytes)) {
        f.cc->on_loss(now_sec, lost);
        ++tick_cc_loss_flows;
        tick_cc_loss_bytes += lost;
      }
    }
    if (acked > 0) {
      // Congestion-window validation (RFC 7661): a pace-limited flow does
      // not inflate cwnd past ~2x the window it actually uses. This is why
      // paced production flows shrug off stray losses (Table III: paced to
      // 10G, every flow delivers exactly 10G despite ~1K retransmits).
      const bool cwnd_validated =
          fq_rate > 0.0 && !f.cc->self_paced() &&
          f.cc->cwnd_bytes() > 2.0 * fq_rate * rtt / 8.0;
      if (!cwnd_validated) f.cc->on_ack(now_sec, acked, rtt);
      f.zc_socket.on_acked(units::Bytes(acked));
      f.rtt.add_sample(rtt);
    }
    f.inflight_bytes = 0.0;  // round model: everything resolves within a tick
    // EWMA keeps the cache-pressure feedback loop from oscillating.
    f.prev_sent_bytes = 0.7 * f.prev_sent_bytes + 0.3 * f.sent_bytes;
    f.lost_bytes = 0.0;
  }

  // ---- Utilization bookkeeping -------------------------------------------
  // Jitter lets a flow momentarily exceed its nominal budget; mpstat would
  // still read 100%, so clamp.
  const double snd_app_u = std::min(
      snd_app_used.value() / (snd_app_budget * static_cast<double>(flows_.size())), 1.0);
  const double snd_irq_u = std::min(snd_irq_used.value() / snd_irq_budget, 1.0);
  const double rcv_app_u = std::min(
      rcv_app_used.value() / (rcv_app_budget * static_cast<double>(flows_.size())), 1.0);
  const double rcv_irq_u = std::min(total_accepted * rx_irq_pb / rcv_irq_budget, 1.0);
  snd_app_util_.add(snd_app_u);
  snd_irq_util_.add(snd_irq_u);
  rcv_app_util_.add(rcv_app_u);
  rcv_irq_util_.add(rcv_irq_u);

  if (in && in->perf) {
    // Budget offered this tick, per core group (the capacity side of the
    // perf.*_util gauges). App budgets are per flow; IRQ budgets are pooled.
    auto& pa = *in->perf;
    pa.capacity[static_cast<int>(obs::PerfCore::SndApp)] +=
        snd_app_budget * static_cast<double>(flows_.size());
    pa.capacity[static_cast<int>(obs::PerfCore::SndIrq)] += snd_irq_budget;
    pa.capacity[static_cast<int>(obs::PerfCore::RcvApp)] +=
        rcv_app_budget * static_cast<double>(flows_.size());
    pa.capacity[static_cast<int>(obs::PerfCore::RcvIrq)] += rcv_irq_budget;
    pa.bytes_delivered += interval_bytes_this_tick;
  }

  if (in) {
    auto& trace = tel_->trace();
    in->retx->add(tick_retx);
    if (tick_cc_loss_flows > 0) {
      trace.instant("cc_loss", "tcp", now_ns, 0,
                    {{"flows", static_cast<double>(tick_cc_loss_flows)},
                     {"lost_bytes", tick_cc_loss_bytes}});
    }
    const FlowState& f0 = flows_[0];
    const bool ss_now = f0.cc->in_slow_start();
    if (ss_now != in->flow0_slow_start) {
      trace.instant(ss_now ? "cc_enter_slow_start" : "cc_exit_slow_start", "tcp",
                    now_ns, 0, {{"cwnd_bytes", f0.cc->cwnd_bytes()}});
      in->flow0_slow_start = ss_now;
    }
    in->cwnd->set(f0.cc->cwnd_bytes());
    in->ssthresh->set(f0.cc->ssthresh_bytes());
    in->slow_start->set(ss_now ? 1.0 : 0.0);
    in->srtt->set(f0.rtt.srtt_sec());
    double pace = cfg_.flow.fq_rate_bps;
    const double cc_pace = f0.cc->pacing_rate_bps();
    if (cc_pace > 0.0) pace = pace > 0.0 ? std::min(pace, cc_pace) : cc_pace;
    in->pacing_rate->set(pace);
    in->cwnd_hist->add(f0.cc->cwnd_bytes(), dt_sec);

    for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
      in->flow_cwnd[fi]->set(flows_[fi].cc->cwnd_bytes());
    }
    in->flow_bps_min->set(units::rate_of(drain_min, dt_sec));
    in->flow_bps_max->set(units::rate_of(drain_max, dt_sec));
    in->flow_bps_range->set(units::rate_of(drain_max - drain_min, dt_sec));

    double backlog = 0.0;
    for (const auto& f : flows_) backlog += f.rcv_backlog_bytes;
    in->rcv_backlog->set(backlog);
    in->goodput->set(units::rate_of(interval_bytes_this_tick, dt_sec));
    in->delivered->add(interval_bytes_this_tick);
    in->gro_agg->set(gro);
    in->sent_rate->set(units::rate_of(group_sent, dt_sec));
    in->snd_app->set(snd_app_u);
    in->snd_irq->set(snd_irq_u);
    in->rcv_app->set(rcv_app_u);
    in->rcv_irq->set(rcv_irq_u);

    // Round span (first max_round_spans rounds only; instants/counters keep
    // flowing for the whole run).
    if (in->rounds < tel_->config().max_round_spans) {
      const Nanos round_start =
          std::max<Nanos>(now_ns - static_cast<Nanos>(dt_sec * 1e9), 0);
      trace.begin("round", "round", round_start, 0,
                  {{"sent_bytes", group_sent},
                   {"delivered_bytes", interval_bytes_this_tick}});
      // Sub-round phases on track 1 — the round's burst anatomy (wire
      // serialization, path flight, receiver drain) so a trace viewer shows
      // where each round's wall time went.
      const double line_bps = std::max(sender_.config().nic.line_rate_bps, 1.0);
      Nanos tx_end =
          round_start + static_cast<Nanos>(group_sent * 8.0 / line_bps * 1e9);
      tx_end = std::min(tx_end, now_ns);
      Nanos transit_end = tx_end + static_cast<Nanos>(rtt * 0.5 * 1e9);
      transit_end = std::min(transit_end, now_ns);
      trace.begin("tx_burst", "round", round_start, 1, {{"bytes", group_sent}});
      trace.end("tx_burst", "round", tx_end, 1);
      trace.begin("path_transit", "round", tx_end, 1);
      trace.end("path_transit", "round", transit_end, 1);
      trace.begin("rx_drain", "round", transit_end, 1,
                  {{"delivered_bytes", interval_bytes_this_tick}});
      trace.end("rx_drain", "round", now_ns, 1);
      trace.end("round", "round", now_ns, 0);
    }
    ++in->rounds;
  }

  // ---- 1-second interval series -------------------------------------------
  interval_accum_bytes_ += interval_bytes_this_tick;
  interval_elapsed_ += dt_sec;
  if (interval_elapsed_ >= 1.0) {
    interval_bps_.push_back(units::rate_of(interval_accum_bytes_, interval_elapsed_));
    interval_accum_bytes_ = 0.0;
    interval_elapsed_ = 0.0;
  }
}

obs::SsReport TransferSimulation::build_ss_report(Nanos now) const {
  obs::SsReport r;
  r.ts = now;
  r.engine = "fluid";
  const Instruments::SsAccum* ssa = instr_ ? instr_->ss.get() : nullptr;
  const double path_rtt = std::max(path_.spec().rtt_sec(), 1e-6);
  const double rcv_wnd_max = cfg_.receiver.tuning.sysctl.max_recv_window_bytes();
  const double seg = mss();

  for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
    const FlowState& f = flows_[fi];
    obs::TcpInfoSnapshot s;
    s.flow = static_cast<int>(fi);
    s.ca_name = f.cc->name();
    s.in_slow_start = f.cc->in_slow_start();
    s.mss_bytes = seg;
    s.snd_cwnd_bytes = f.cc->cwnd_bytes();
    s.snd_ssthresh_bytes = f.cc->ssthresh_bytes();
    s.rtt_sec = f.rtt.has_sample() ? f.rtt.srtt_sec() : path_rtt;
    s.rttvar_sec = f.rtt.rttvar_sec();
    s.min_rtt_sec = f.rtt.has_sample() ? f.rtt.min_rtt_sec() : path_rtt;
    double pace = cfg_.flow.fq_rate_bps;
    const double cc_pace = f.cc->pacing_rate_bps();
    if (cc_pace > 0.0) pace = pace > 0.0 ? std::min(pace, cc_pace) : cc_pace;
    s.pacing_rate_bps = pace;
    s.bytes_acked = f.delivered_bytes;
    s.segs_retrans = f.retransmit_segments;
    s.bytes_retrans = f.retransmit_segments * seg;
    s.rcv_space_bytes = std::max(rcv_wnd_max - f.rcv_backlog_bytes, 0.0);
    // tcpi_rcv_rtt: the receiver's own RTT estimate — the path RTT plus the
    // sojourn its socket backlog adds before the application drains it.
    s.rcv_rtt_sec = s.rtt_sec;
    if (ssa) {
      s.bytes_sent = ssa->bytes_sent[fi];
      s.send_rate_bps = ssa->send_bps[fi];
      s.delivery_rate_bps = ssa->delivery_bps[fi];
      s.notsent_bytes = ssa->notsent_bytes[fi];
      s.delivery_rate_app_limited = ssa->app_limited;
      s.optmem_used_bytes = ssa->optmem_inflight[fi];
      s.rcv_ooopack = ssa->rcv_ooo[fi];
      if (ssa->delivery_bps[fi] > 0.0) {
        s.rcv_rtt_sec += f.rcv_backlog_bytes * 8.0 / ssa->delivery_bps[fi];
      }
    }
    s.optmem_max_bytes = f.zc_socket.optmem_max();
    s.optmem_hiwater_bytes = f.zc_socket.peak_optmem_used();
    s.zc_sent_bytes = f.zc_socket.total_zc_bytes();
    s.zc_copied_bytes = f.zc_socket.total_fallback_bytes();
    s.zc_copied_sends = static_cast<double>(f.zc_socket.fallback_events());
    r.sockets.push_back(std::move(s));
  }

  r.nic.device = cfg_.receiver.nic.model;
  r.qdisc.kind = cfg_.sender.tuning.sysctl.default_qdisc == kern::QdiscKind::Fq
                     ? "fq"
                     : "fq_codel";
  if (ssa) {
    r.nic.rx_bytes = ssa->rx_bytes;
    r.nic.rx_dropped_bytes = ssa->rx_dropped_bytes;
    r.nic.rx_dropped_events = ssa->rx_dropped_events;
    r.nic.rx_ring_hiwater_frac = ssa->ring_hiwater;
    // 802.3x pause is symmetric in the model: the receiver emits, the
    // sender's link sees the same bursts.
    r.nic.tx_pause_frames = ssa->pause_frames;
    r.nic.rx_pause_frames = ssa->pause_frames;
    r.nic.hw_gro_coalesced = ssa->hw_gro_aggs;
    r.qdisc.sent_bytes = ssa->qdisc_sent_bytes;
    r.qdisc.throttled = ssa->qdisc_throttled;
    r.qdisc.pacing_delay_sec = ssa->qdisc_pacing_delay_sec;
  }
  return r;
}

obs::PerfReport TransferSimulation::build_perf_report(Nanos now) const {
  obs::PerfReport r;
  r.ts = now;
  r.engine = "fluid";
  const Instruments::PerfAccum* pa = instr_ ? instr_->perf.get() : nullptr;
  if (!pa) return r;
  for (int i = 0; i < obs::kPerfStageCount; ++i) r.stage_cycles[i] = pa->stage[i];
  for (int c = 0; c < obs::kPerfCoreCount; ++c) {
    r.consumed_cycles[c] = pa->consumed[c];
    r.capacity_cycles[c] = pa->capacity[c];
  }
  r.bytes_sent = pa->bytes_sent;
  r.bytes_delivered = pa->bytes_delivered;
  for (std::size_t fi = 0; fi < pa->flow_stage.size(); ++fi) {
    obs::PerfFlowCycles f;
    f.flow = static_cast<int>(fi);
    for (int i = 0; i < obs::kPerfStageCount; ++i) {
      f.stage_cycles[i] = pa->flow_stage[fi][i];
    }
    r.flows.push_back(std::move(f));
  }
  return r;
}

TransferResult run_transfer(const TransferConfig& cfg) {
  TransferSimulation sim(cfg);
  return sim.run();
}

}  // namespace dtnsim::flow
