// TransferSimulation: one memory-to-memory transfer, end to end.
//
// This is the engine that couples every substrate. Flows are clocked in
// RTT-sized rounds on the discrete-event engine; within a round the sender's
// achievable bytes are the minimum of
//   window (cwnd, receiver window, wmem) / pacing (fq-rate, BBR) /
//   app-core CPU / IRQ-core CPU / NIC line rate / memory bandwidth / DMA cap,
// the burst then crosses the path (background traffic, burst-tolerance
// trimming), hits the receiver NIC (ring-overflow drops or pause frames) and
// the receiver's CPU (socket backlog -> advertised window), and the ACK
// feedback updates congestion control and zerocopy optmem charges.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "dtnsim/host/host.hpp"
#include "dtnsim/kern/zc_socket.hpp"
#include "dtnsim/net/path.hpp"
#include "dtnsim/obs/telemetry.hpp"
#include "dtnsim/scenario/scenario.hpp"
#include "dtnsim/tcp/cc.hpp"
#include "dtnsim/tcp/rtt.hpp"
#include "dtnsim/util/rng.hpp"
#include "dtnsim/util/stats.hpp"

namespace dtnsim::sim {
class Engine;
}

namespace dtnsim::flow {

struct FlowOptions {
  bool zerocopy = false;      // iperf3 --zerocopy=z (MSG_ZEROCOPY)
  bool skip_rx_copy = false;  // iperf3 --skip-rx-copy (MSG_TRUNC)
  double fq_rate_bps = 0.0;   // iperf3 --fq-rate, 0 = unpaced
  kern::CongestionAlgo congestion = kern::CongestionAlgo::Cubic;
};

struct TransferConfig {
  host::HostConfig sender;
  host::HostConfig receiver;
  net::PathSpec path;
  int streams = 1;                     // iperf3 -P
  FlowOptions flow;
  bool link_flow_control = false;      // IEEE 802.3x on the receiver's link
  units::SimTime duration = units::SimTime::from_seconds(60);
  std::uint64_t seed = 1;
  // Optional, non-owning observability sink. When set, the run registers
  // its metrics there, arms the interval probe on the engine, and records
  // trace events; when null the cost is one branch per tick.
  obs::Telemetry* telemetry = nullptr;
  // Optional mid-run event timeline. When empty the hook costs one branch
  // per tick and the run is bit-identical to a build without the scenario
  // subsystem (the wants_ss()/wants_perf() zero-cost pattern).
  scenario::Timeline scenario;
};

struct CpuUtilization {
  // Fractions of one core (app) / of the IRQ pool; cores_pct is the Fig. 7/8
  // "TX/RX Cores" metric (iperf3 + IRQ cores, in percent, can exceed 100).
  double app_util = 0.0;
  double irq_util = 0.0;
  double cores_pct = 0.0;
};

struct TransferResult {
  double duration_sec = 0.0;
  double throughput_bps = 0.0;            // aggregate goodput
  std::vector<double> per_flow_bps;
  double retransmit_segments = 0.0;
  CpuUtilization sender_cpu;
  CpuUtilization receiver_cpu;
  double zc_bytes = 0.0;
  double zc_fallback_bytes = 0.0;
  std::vector<double> interval_bps;       // 1-second interval series
  // Diagnostics
  double dropped_bytes_nic = 0.0;
  double dropped_bytes_path = 0.0;
  bool pause_frames_seen = false;
  // Events crossed during the run (empty when no scenario was attached).
  scenario::EventLog scenario_log;
};

class TransferSimulation {
 public:
  explicit TransferSimulation(TransferConfig cfg);

  TransferResult run();

 private:
  struct FlowState {
    std::unique_ptr<tcp::CongestionControl> cc;
    kern::ZcTxSocket zc_socket{units::Bytes(0.0)};
    tcp::RttEstimator rtt;
    double inflight_bytes = 0.0;
    double rcv_backlog_bytes = 0.0;
    double delivered_bytes = 0.0;
    double retransmit_segments = 0.0;
    double share_jitter = 1.0;
    // Persistent per-flow bias for the run (hash placement, NUMA luck):
    // per-flow averages differ across a whole run, not just per tick.
    double static_bias = 1.0;
    double interval_bytes = 0.0;
    // Previous round's sent bytes ~= sustained in-flight data; drives the
    // sender's cache-pressure multiplier.
    double prev_sent_bytes = 0.0;
    // Scratch, valid within one tick:
    double planned_bytes = 0.0;
    double zc_planned = 0.0;
    double fb_planned = 0.0;
    double tx_app_cyc_per_byte = 0.0;
    double sent_bytes = 0.0;
    double arrived_bytes = 0.0;
    double lost_bytes = 0.0;
  };

  // Metric handles and trace edge-detection state, built only when a
  // Telemetry sink is attached (see setup_telemetry).
  struct Instruments {
    // tcp (flow 0 is the representative stream for window dynamics)
    obs::Gauge* cwnd = nullptr;
    obs::Gauge* ssthresh = nullptr;
    obs::Gauge* pacing_rate = nullptr;
    obs::Gauge* srtt = nullptr;
    obs::Gauge* slow_start = nullptr;
    obs::Counter* retx = nullptr;
    obs::TimeWeightedHistogram* cwnd_hist = nullptr;
    // zerocopy (summed across flows' sockets)
    obs::Gauge* optmem_used = nullptr;
    obs::Gauge* optmem_max = nullptr;
    obs::Counter* zc_bytes = nullptr;
    obs::Counter* fb_bytes = nullptr;
    obs::Counter* fb_events = nullptr;
    obs::TimeWeightedHistogram* optmem_frac_hist = nullptr;
    // net
    obs::Gauge* ring_occupancy = nullptr;
    obs::Counter* nic_drops = nullptr;
    obs::Counter* pause_ticks = nullptr;
    obs::Counter* path_drops = nullptr;
    obs::Gauge* trim_frac = nullptr;
    // flow / cpu
    obs::Gauge* goodput = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Gauge* gro_agg = nullptr;
    obs::Gauge* sent_rate = nullptr;
    obs::Gauge* rcv_backlog = nullptr;
    // Per-flow tracks: one labeled instance per stream ("tcp.cwnd_bytes
    // {flow=3}"), registered in flow-index order for stable columns.
    std::vector<obs::Gauge*> flow_cwnd;
    std::vector<obs::Gauge*> flow_goodput;
    std::vector<obs::Counter*> flow_retx;
    // Per-flow skew (Table III "Range" as a time series).
    obs::Gauge* flow_bps_min = nullptr;
    obs::Gauge* flow_bps_max = nullptr;
    obs::Gauge* flow_bps_range = nullptr;
    obs::Gauge* snd_app = nullptr;
    obs::Gauge* snd_irq = nullptr;
    obs::Gauge* rcv_app = nullptr;
    obs::Gauge* rcv_irq = nullptr;
    obs::Gauge* limit_code = nullptr;
    obs::Counter* limit_ticks[8] = {};  // indexed by RoundLimit
    // scenario.* family — registered only when a scenario is attached so
    // scenario-free telemetry runs keep their probe columns unchanged.
    obs::Counter* scn_events = nullptr;
    obs::Gauge* scn_active_flows = nullptr;
    // Trace edge detection
    obs::RoundLimit last_limit = obs::RoundLimit::None;
    bool in_fallback = false;
    bool in_trim = false;
    bool pause_active = false;
    bool flow0_slow_start = true;
    std::uint64_t rounds = 0;
    // Kernel-eye (ss/ethtool/tc) snapshot accumulators. Allocated only when
    // the attached Telemetry wants ss, so a plain telemetry run executes
    // zero snapshot-state updates (the introspection zero-cost guarantee).
    struct SsAccum {
      std::vector<double> bytes_sent;       // per flow, cumulative wire bytes
      std::vector<double> send_bps;         // per flow, last-round wire rate
      std::vector<double> delivery_bps;     // per flow, last-round drain rate
      std::vector<double> notsent_bytes;    // per flow, last-round unsent
      std::vector<double> optmem_inflight;  // per flow, mid-tick charge
      bool app_limited = false;             // last round was CPU-bound
      // ethtool -S analogues (receiver NIC, tick-aggregated)
      double rx_bytes = 0.0;
      double rx_dropped_bytes = 0.0;
      double rx_dropped_events = 0.0;
      double ring_hiwater = 0.0;
      double pause_frames = 0.0;
      double hw_gro_aggs = 0.0;
      // tc -s analogues (the fluid engine prices pacing analytically)
      double qdisc_sent_bytes = 0.0;
      double qdisc_throttled = 0.0;
      double qdisc_pacing_delay_sec = 0.0;
      // tcpi_rcv_ooopack analogue: out-of-order segments the receiver saw
      // (retransmitted holes plus scenario-forced reordering), per flow.
      std::vector<double> rcv_ooo;
    };
    std::unique_ptr<SsAccum> ss;
    // Exact per-stage cycle attribution (dtnsim-perf). Allocated only when
    // the attached Telemetry wants perf, so an unprofiled run executes zero
    // attribution updates (the same zero-cost guarantee as SsAccum).
    struct PerfAccum {
      std::array<double, obs::kPerfStageCount> stage{};    // run totals
      std::array<double, obs::kPerfCoreCount> consumed{};  // engine charges
      std::array<double, obs::kPerfCoreCount> capacity{};  // budget offered
      std::vector<std::array<double, obs::kPerfStageCount>> flow_stage;
      double bytes_sent = 0.0;
      double bytes_delivered = 0.0;
      // Per-tick scratch: each flow's TX stage prices, from the same
      // TxPathConfig that priced the tick's scalar charge — which is what
      // makes the stage-sum == consumed cross-check hold.
      std::vector<cpu::TxAppStageCyc> tx_pb;
    };
    std::unique_ptr<PerfAccum> perf;
  };

  void tick(double dt_sec, double now_sec);
  // Crosses scenario boundaries up to now_sec and re-applies the folded
  // overlay onto cfg_/path_ (the tick re-reads both every round, so a
  // mutation lands on the next tick). Called only when a scenario is
  // attached (scn_ non-null).
  void apply_scenario(double now_sec);
  void update_jitter(FlowState& f);
  double mss() const;
  void setup_telemetry(sim::Engine& engine);
  // Build the current ss/tcp_info view of every flow plus NIC/qdisc counter
  // blocks (dtnsim-ss's payload). Only meaningful while a telemetry sink
  // with ss enabled is attached; pure read of engine state.
  obs::SsReport build_ss_report(Nanos now) const;
  // Copy the perf accumulator into a report (dtnsim-perf's payload). Only
  // meaningful while a telemetry sink with perf enabled is attached; pure
  // read of engine state.
  obs::PerfReport build_perf_report(Nanos now) const;

  TransferConfig cfg_;
  host::Host sender_;
  host::Host receiver_;
  net::Path path_;
  Rng rng_;

  std::vector<FlowState> flows_;
  cpu::PlacementQuality snd_quality_;
  cpu::PlacementQuality rcv_quality_;
  std::unique_ptr<cpu::CostModel> snd_cost_;
  std::unique_ptr<cpu::CostModel> rcv_cost_;

  // Accumulated utilization (cycle-weighted across the run).
  RunningStats snd_app_util_, snd_irq_util_, rcv_app_util_, rcv_irq_util_;
  double total_delivered_ = 0.0;
  double total_retx_ = 0.0;
  double dropped_nic_ = 0.0;
  double dropped_path_ = 0.0;
  bool pause_seen_ = false;
  double last_trim_frac_ = 0.0;  // path contention level, feeds jitter width
  double run_efficiency_ = 1.0;  // per-run host efficiency (cache/NUMA luck)
  std::vector<double> interval_bps_;
  double interval_accum_bytes_ = 0.0;
  double interval_elapsed_ = 0.0;

  obs::Telemetry* tel_ = nullptr;           // == cfg_.telemetry during run()
  std::unique_ptr<Instruments> instr_;
  sim::Engine* engine_ = nullptr;           // valid during run()

  // Scenario state, allocated only when cfg_.scenario is non-empty. The
  // base_* copies are the t=0 configuration the Effects overlay folds onto;
  // the scn_* caches mirror the overlay fields the tick loop reads inline.
  std::unique_ptr<scenario::Runtime> scn_;
  net::PathSpec scn_base_path_;
  int scn_base_ring_ = 0;
  bool scn_base_lfc_ = false;
  kern::QdiscKind scn_base_qdisc_ = kern::QdiscKind::FqCodel;
  double scn_base_fq_rate_ = 0.0;
  double scn_base_optmem_ = 0.0;
  double scn_loss_frac_ = 0.0;
  double scn_reorder_frac_ = 0.0;
  double scn_irq_mult_ = 1.0;
  int scn_active_flows_ = 0;
};

// Convenience one-shot runner.
TransferResult run_transfer(const TransferConfig& cfg);

}  // namespace dtnsim::flow
