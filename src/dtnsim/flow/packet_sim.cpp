#include "dtnsim/flow/packet_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "dtnsim/kern/gro.hpp"
#include "dtnsim/kern/gso.hpp"
#include "dtnsim/net/nic.hpp"
#include "dtnsim/net/qdisc.hpp"
#include "dtnsim/sim/engine.hpp"

namespace dtnsim::flow {
namespace {

// Metric handles for the pkt.* family, built only when a Telemetry sink is
// attached — the packet engine's analogue of TransferSimulation's
// Instruments. Counters/gauges mirror PacketSimResult so a probe series and
// the final result always agree.
struct PktInstruments {
  obs::Gauge* qdisc_backlog = nullptr;         // bytes enqueued, not departed
  obs::TimeWeightedHistogram* gap_hist = nullptr;
  obs::Counter* superpackets = nullptr;
  obs::Counter* segments = nullptr;
  obs::Gauge* ring_occupancy = nullptr;
  obs::Gauge* ring_peak = nullptr;
  obs::Counter* ring_drops = nullptr;
  obs::Counter* dropped_bytes = nullptr;
  obs::Counter* napi_polls = nullptr;
  obs::TimeWeightedHistogram* napi_batch = nullptr;
  obs::Counter* aggregates = nullptr;
  obs::TimeWeightedHistogram* agg_hist = nullptr;
  obs::Counter* delivered = nullptr;
  obs::Gauge* goodput = nullptr;
  bool overflowing = false;  // trace edge detection
};

struct SimState {
  const PacketSimConfig* cfg = nullptr;
  sim::Engine engine;
  net::FqQdisc* qdisc = nullptr;
  kern::GroEngine* gro = nullptr;
  obs::Telemetry* tel = nullptr;  // null when telemetry is off
  PktInstruments pkt;

  // Geometry / rates.
  double gso_bytes = 0.0;
  double mss = 0.0;
  double seg_payload = 0.0;   // gso_bytes split evenly over its segments
  Nanos half_rtt = 0;
  Nanos tx_prep_ns = 0;       // sender CPU time per super-packet
  Nanos rx_segment_ns = 0;    // receiver CPU time per wire segment
  int ring_capacity = 0;

  // Mutable state.
  double inflight = 0.0;
  Nanos tx_free_at = 0;       // sender core busy until
  int ring_used = 0;
  bool napi_busy = false;
  Nanos last_departure = -1;
  double rx_accepted_segments = 0.0;  // segments that made it into the ring

  // Results.
  PacketSimResult res;
  RunningStats gaps;
  double aggregate_bytes_total = 0.0;

  // Scenario hook (null when cfg.scenario is empty — the hot paths then pay
  // one null check, nothing else). Base values snapshot the configured
  // geometry so expired events fall back to it cleanly.
  std::unique_ptr<scenario::Runtime> scn;
  Nanos scn_base_half_rtt = 0;
  int scn_base_ring = 0;
  Nanos scn_base_rx_segment_ns = 0;
  double scn_base_pacing = 0.0;
  bool scn_base_fq = false;
  bool scn_pacing_overridden = false;
  double scn_loss_accum = 0.0;  // fractional-loss carry (deterministic drop)
  double scn_rcv_ooo = 0.0;     // out-of-order segments seen by the receiver
  obs::Counter* scn_events = nullptr;

  // Exact per-stage cycle attribution (dtnsim-perf), allocated only when the
  // attached Telemetry wants perf — same zero-cost-when-disabled guarantee
  // as the fluid engine's Instruments::PerfAccum. The packet engine runs one
  // app core per side and folds IRQ work into the NAPI/service times; the
  // snd_irq/rcv_irq *cycles* are still attributed (from the cost model's
  // IRQ stage prices) so flamegraphs show where that folded work goes, but
  // no IRQ capacity is metered — utilization stays 0 for those groups.
  struct PerfAccum {
    std::array<double, obs::kPerfStageCount> stage{};
    std::array<double, obs::kPerfCoreCount> consumed{};
    double bytes_sent = 0.0;
    // TX stage prices per payload byte (fixed geometry for the whole run);
    // tx_prep_ns is the ns projection of tx_pb.total() * gso_bytes.
    cpu::TxAppStageCyc tx_pb;
    cpu::TxIrqStageCyc tx_irq_pb;
    // RX app stage cycles per wire segment. Under rx_segment_ns_override
    // these are rescaled so their sum equals the override the engine
    // actually charges, keeping the stage-sum == consumed identity honest.
    double rx_seg_syscall = 0.0;
    double rx_seg_frag_walk = 0.0;
    double rx_seg_copyout = 0.0;
    // RX IRQ stage cycles per wire segment, at the cost model's natural
    // prices (the override pins only the app-core drain time, so the IRQ
    // attribution is not rescaled with it).
    double rx_irq_seg_skb_alloc = 0.0;
    double rx_irq_seg_gro_merge = 0.0;
    double rx_irq_seg_agg_flush = 0.0;
    double rx_irq_seg_csum = 0.0;
    // App-core clock rates, for capacity at sample time.
    double snd_hz = 0.0;
    double rcv_hz = 0.0;
  };
  std::unique_ptr<PerfAccum> perf;
};

void try_send(SimState& s);
void scenario_tick(SimState& s);

// Register the pkt.* metric family on the shared registry. Names are
// disjoint from the fluid engine's tcp./zc./net./flow./cpu. families, so a
// fluid run and a packet run of the same scenario can share one Telemetry
// and export side by side (the divergence report depends on this).
void setup_instruments(SimState& s) {
  auto& reg = s.tel->registry();
  s.pkt.qdisc_backlog =
      reg.gauge("pkt.qdisc_backlog_bytes", "bytes",
                "bytes enqueued in fq and not yet departed");
  s.pkt.gap_hist =
      reg.histogram("pkt.interdeparture_gap_ns", "ns",
                    "super-packet spacing at the qdisc (time-weighted)");
  s.pkt.superpackets =
      reg.counter("pkt.superpackets_sent", "packets", "GSO super-packets enqueued");
  s.pkt.segments =
      reg.counter("pkt.segments_sent", "segments", "wire segments after GSO split");
  s.pkt.ring_occupancy =
      reg.gauge("pkt.ring_occupancy", "descriptors", "RX descriptors in use");
  s.pkt.ring_peak =
      reg.gauge("pkt.ring_peak", "descriptors", "max RX descriptors in use");
  s.pkt.ring_drops =
      reg.counter("pkt.ring_drops", "segments", "segments lost to ring overrun");
  s.pkt.dropped_bytes =
      reg.counter("pkt.dropped_bytes", "bytes",
                  "payload lost before delivery (ring overrun, scenario loss)");
  s.pkt.napi_polls = reg.counter("pkt.napi_polls", "polls", "NAPI poll invocations");
  s.pkt.napi_batch =
      reg.histogram("pkt.napi_batch_segments", "segments",
                    "segments taken per NAPI poll (time-weighted by poll cost)");
  s.pkt.aggregates =
      reg.counter("pkt.gro_aggregates", "aggregates", "GRO aggregates delivered");
  s.pkt.agg_hist =
      reg.histogram("pkt.gro_aggregate_bytes", "bytes",
                    "GRO aggregate size (event-weighted; mean = mean size)");
  s.pkt.delivered =
      reg.counter("pkt.delivered_bytes", "bytes", "payload delivered to the app");
  s.pkt.goodput =
      reg.gauge("pkt.goodput_bps", "bps", "delivered rate over elapsed sim time");
}

void on_ack(SimState& s, double bytes) {
  s.inflight = std::max(s.inflight - bytes, 0.0);
  try_send(s);
}

void deliver_aggregate(SimState& s, double agg) {
  s.res.aggregates += 1;
  s.aggregate_bytes_total += agg;
  s.res.delivered_bytes += agg;
  if (s.tel) {
    s.pkt.aggregates->increment();
    s.pkt.delivered->add(agg);
    // Event-weighted: mean() is the mean aggregate size.
    s.pkt.agg_hist->add(agg, 1.0);
  }
  s.engine.schedule(s.half_rtt, [&s, agg] { on_ack(s, agg); });
}

// NAPI: grab up to `budget` descriptors, spend real CPU time processing
// them, then free the descriptors and re-arm. Arrivals during processing
// pile into the ring — and overrun it when the drain cannot keep up, which
// is precisely the burst-drop mechanism the fluid model abstracts.
void napi_poll(SimState& s) {
  if (s.napi_busy) return;
  if (s.ring_used <= 0) {
    if (auto tail = s.gro->flush()) deliver_aggregate(s, tail->value());  // NAPI exit
    return;
  }
  s.napi_busy = true;
  const int take = std::min(s.ring_used, s.cfg->napi_budget);
  const Nanos spent =
      std::max<Nanos>(static_cast<Nanos>(take) * s.rx_segment_ns, 1);
  if (s.tel) {
    s.pkt.napi_polls->increment();
    s.pkt.napi_batch->add(static_cast<double>(take), units::to_seconds(spent));
  }
  if (s.perf) {
    // Attribute the batch's service cycles (whose ns projection is `spent`)
    // to the recvmsg-path stages. This engine drains in the app context, so
    // that charge lands on rcv_app; the NAPI-side work the drain folds in
    // (skb alloc, GRO merge, flush, checksum) is attributed to rcv_irq at
    // the cost model's prices — attribution only, no extra simulated time.
    auto& pa = *s.perf;
    const double n = static_cast<double>(take);
    pa.stage[static_cast<int>(obs::PerfStage::RxSyscall)] += n * pa.rx_seg_syscall;
    pa.stage[static_cast<int>(obs::PerfStage::RxFragWalk)] += n * pa.rx_seg_frag_walk;
    pa.stage[static_cast<int>(obs::PerfStage::RxCopyout)] += n * pa.rx_seg_copyout;
    pa.consumed[static_cast<int>(obs::PerfCore::RcvApp)] +=
        n * (pa.rx_seg_syscall + pa.rx_seg_frag_walk + pa.rx_seg_copyout);
    pa.stage[static_cast<int>(obs::PerfStage::RxSkbAlloc)] += n * pa.rx_irq_seg_skb_alloc;
    pa.stage[static_cast<int>(obs::PerfStage::RxGroMerge)] += n * pa.rx_irq_seg_gro_merge;
    pa.stage[static_cast<int>(obs::PerfStage::RxAggFlush)] += n * pa.rx_irq_seg_agg_flush;
    pa.stage[static_cast<int>(obs::PerfStage::RxCsum)] += n * pa.rx_irq_seg_csum;
    pa.consumed[static_cast<int>(obs::PerfCore::RcvIrq)] +=
        n * (pa.rx_irq_seg_skb_alloc + pa.rx_irq_seg_gro_merge +
             pa.rx_irq_seg_agg_flush + pa.rx_irq_seg_csum);
  }
  s.engine.schedule(spent, [&s, take] {
    for (int i = 0; i < take; ++i) {
      if (auto agg = s.gro->add_segment(units::Bytes(s.seg_payload)))
        deliver_aggregate(s, agg->value());
    }
    s.ring_used -= take;
    s.napi_busy = false;
    napi_poll(s);  // re-arm: drain the backlog or flush the GRO tail
  });
}

void on_arrival(SimState& s, int segments) {
  if (s.scn) {
    const auto& e = s.scn->effects();
    int lose = 0;
    if (e.link_down) {
      lose = segments;
    } else if (e.loss_frac > 0.0) {
      // Deterministic fractional drop: carry the remainder instead of
      // drawing randomness, so jobs=1 and jobs=N replay bit-identically.
      s.scn_loss_accum += static_cast<double>(segments) * e.loss_frac;
      lose = std::min(static_cast<int>(s.scn_loss_accum), segments);
      s.scn_loss_accum -= static_cast<double>(lose);
    }
    if (lose > 0) {
      segments -= lose;
      s.res.segments_lost_path += static_cast<std::uint64_t>(lose);
      s.scn_rcv_ooo += static_cast<double>(lose);  // holes arrive out of order
      // Lost segments hold the window until the modelled retransmit lands a
      // recovery round later; the retransmitted copy is not goodput.
      const double bytes = static_cast<double>(lose) * s.seg_payload;
      s.engine.schedule(s.half_rtt * 3, [&s, bytes] { on_ack(s, bytes); });
      if (s.tel) s.pkt.dropped_bytes->add(bytes);
    }
    if (e.reorder_frac > 0.0) {
      s.scn_rcv_ooo += static_cast<double>(segments) * e.reorder_frac;
    }
    if (segments <= 0) return;
  }
  int dropped = 0;
  for (int i = 0; i < segments; ++i) {
    if (s.ring_used >= s.ring_capacity) {
      s.res.segments_dropped += 1;  // ring overrun: the NIC has nowhere to DMA
      ++dropped;
      continue;
    }
    s.ring_used += 1;
  }
  s.rx_accepted_segments += static_cast<double>(segments - dropped);
  s.res.ring_peak = std::max(s.res.ring_peak, s.ring_used);
  if (s.tel) {
    s.pkt.ring_occupancy->set(static_cast<double>(s.ring_used));
    s.pkt.ring_peak->set(static_cast<double>(s.res.ring_peak));
    if (dropped > 0) {
      s.pkt.ring_drops->add(static_cast<double>(dropped));
      s.pkt.dropped_bytes->add(static_cast<double>(dropped) * s.seg_payload);
      if (!s.pkt.overflowing) {
        s.tel->trace().instant(
            "pkt_ring_overflow", "pkt", s.engine.now(), 0,
            {{"dropped_segments", static_cast<double>(dropped)},
             {"ring_used", static_cast<double>(s.ring_used)}});
      }
    }
    s.pkt.overflowing = dropped > 0;
  }
  if (!s.napi_busy && s.ring_used > 0) {
    s.engine.schedule(1, [&s] { napi_poll(s); });
  }
}

void try_send(SimState& s) {
  while (s.inflight + s.gso_bytes <= s.cfg->window_bytes) {
    if (s.engine.now() >= s.cfg->duration.nanos()) return;
    // Sender core serializes super-packet preparation.
    const Nanos ready = std::max(s.engine.now(), s.tx_free_at);
    if (ready > s.engine.now()) {
      s.engine.schedule_at(ready, [&s] { try_send(s); });
      return;
    }
    s.tx_free_at = s.engine.now() + s.tx_prep_ns;

    const Nanos depart = s.qdisc->enqueue(/*flow=*/1, s.gso_bytes, s.engine.now());
    if (s.last_departure >= 0) {
      const Nanos gap = depart - s.last_departure;
      s.gaps.add(static_cast<double>(gap));
      if (s.tel) {
        // Time-weighted by the gap itself: long silences dominate the mean,
        // matching how an observer on the wire would see the spacing.
        s.pkt.gap_hist->add(static_cast<double>(gap),
                            std::max(units::to_seconds(gap), 1e-12));
      }
    }
    s.last_departure = depart;

    s.inflight += s.gso_bytes;
    s.res.superpackets_sent += 1;
    if (s.perf) {
      // Charge in cycles from the per-byte stage prices, not from the
      // ns-quantized tx_prep_ns — the quantization error (~3 cyc/ns per
      // super-packet) would fail the stage-sum == consumed cross-check.
      auto& pa = *s.perf;
      const double b = s.gso_bytes;
      pa.stage[static_cast<int>(obs::PerfStage::TxSyscall)] += b * pa.tx_pb.syscall;
      pa.stage[static_cast<int>(obs::PerfStage::TxProto)] += b * pa.tx_pb.proto;
      pa.stage[static_cast<int>(obs::PerfStage::TxUserCopy)] += b * pa.tx_pb.user_copy;
      pa.stage[static_cast<int>(obs::PerfStage::TxZcPin)] += b * pa.tx_pb.zc_pin;
      pa.stage[static_cast<int>(obs::PerfStage::TxZcNotify)] += b * pa.tx_pb.zc_notify;
      pa.stage[static_cast<int>(obs::PerfStage::TxZcFallback)] += b * pa.tx_pb.zc_fallback;
      pa.consumed[static_cast<int>(obs::PerfCore::SndApp)] += b * pa.tx_pb.total();
      // Segmentation/DMA/completion work rides inside tx_prep in this
      // engine; attribute it to snd_irq so the profile shows it (no extra
      // simulated time is charged).
      pa.stage[static_cast<int>(obs::PerfStage::TxGsoSegment)] += b * pa.tx_irq_pb.gso_segment;
      pa.stage[static_cast<int>(obs::PerfStage::TxDmaMap)] += b * pa.tx_irq_pb.dma_map;
      pa.stage[static_cast<int>(obs::PerfStage::TxCompletion)] += b * pa.tx_irq_pb.completion;
      pa.consumed[static_cast<int>(obs::PerfCore::SndIrq)] += b * pa.tx_irq_pb.total();
      pa.bytes_sent += b;
    }
    const int segments = static_cast<int>(std::ceil(s.gso_bytes / s.mss));
    s.res.segments_sent += static_cast<std::uint64_t>(segments);
    if (s.tel) {
      s.pkt.superpackets->increment();
      s.pkt.segments->add(static_cast<double>(segments));
      // Backlog = bytes enqueued but not yet departed; decays at departure.
      s.pkt.qdisc_backlog->add(s.gso_bytes);
      s.engine.schedule_at(depart, [&s] { s.pkt.qdisc_backlog->add(-s.gso_bytes); });
    }
    s.engine.schedule_at(depart + s.half_rtt, [&s, segments] { on_arrival(s, segments); });

    if (s.tx_prep_ns > 0) {
      // Come back when the core is free; avoids unbounded same-time loops.
      s.engine.schedule_at(s.tx_free_at, [&s] { try_send(s); });
      return;
    }
  }
}

// Apply the scenario state for "now" and arm the next boundary. The packet
// engine has no per-tick loop to piggyback on, so the Runtime is driven by
// its own boundary events: each firing folds the active effects onto the
// knobs the engine re-reads on every event (ring capacity, path RTT, NAPI
// drain speed, fq pacing) and re-schedules itself at the next boundary.
void scenario_tick(SimState& s) {
  const auto& lg = s.scn->log();
  const std::size_t logged_before = lg.size();
  if (s.scn->advance(units::to_seconds(s.engine.now()))) {
    const auto& e = s.scn->effects();
    s.half_rtt =
        s.scn_base_half_rtt + static_cast<Nanos>(e.extra_rtt_sec * 0.5e9);
    s.ring_capacity =
        e.ring_descriptors >= 0
            ? std::clamp(static_cast<int>(std::lround(e.ring_descriptors)), 64,
                         s.cfg->receiver.nic.max_ring_descriptors)
            : s.scn_base_ring;
    // IRQ drain degradation scales the per-segment service time up (the
    // fluid engine scales its IRQ budget down by the same factor).
    s.rx_segment_ns = static_cast<Nanos>(
        static_cast<double>(s.scn_base_rx_segment_ns) / e.irq_drain_mult);
    if (e.pacing_bps >= 0.0) {
      s.qdisc->set_flow_rate(1, e.pacing_bps);
      s.scn_pacing_overridden = true;
    } else if (s.scn_pacing_overridden) {
      s.qdisc->set_flow_rate(1, s.scn_base_fq ? s.scn_base_pacing : 0.0);
      s.scn_pacing_overridden = false;
    }
  }
  for (std::size_t i = logged_before; i < lg.size(); ++i) {
    const auto& ae = lg[i];
    if (s.scn_events && ae.applied) s.scn_events->increment();
    if (s.tel) {
      s.tel->trace().instant(
          "scenario_" + std::string(scenario::kind_name(ae.kind)), "scenario",
          s.engine.now(), 0,
          {{"value", ae.value},
           {"fire_sec", ae.fire_sec},
           {"applied", ae.applied ? 1.0 : 0.0}});
    }
  }
  const double nb = s.scn->next_boundary_sec();
  if (std::isfinite(nb)) {
    const Nanos at = std::max<Nanos>(static_cast<Nanos>(nb * 1e9) + 1,
                                     s.engine.now() + 1);
    s.engine.schedule_at(at, [&s] { scenario_tick(s); });
  }
}

}  // namespace

PacketSimResult run_packet_sim(const PacketSimConfig& cfg) {
  SimState s;
  s.cfg = &cfg;

  const host::Host sender(cfg.sender);
  const host::Host receiver(cfg.receiver);
  const auto snd_caps = sender.skb_caps();
  const auto rcv_caps = receiver.skb_caps();
  const double mtu = std::min(cfg.sender.tuning.mtu_bytes, cfg.receiver.tuning.mtu_bytes);

  s.gso_bytes = kern::effective_gso_bytes(snd_caps, cfg.zerocopy, units::Bytes(mtu)).value();
  s.mss = std::max(mtu - 40.0, 536.0);
  s.seg_payload = s.gso_bytes / std::ceil(s.gso_bytes / s.mss);
  s.half_rtt = cfg.path.rtt / 2;
  s.ring_capacity = std::clamp(cfg.receiver.tuning.ring_descriptors, 64,
                               cfg.receiver.nic.max_ring_descriptors);

  // CPU service times from the cost models.
  const auto snd_cost = sender.make_cost_model(cpu::PlacementQuality{});
  const auto rcv_cost = receiver.make_cost_model(cpu::PlacementQuality{});
  cpu::TxPathConfig txc;
  txc.gso_bytes = s.gso_bytes;
  txc.mtu_bytes = mtu;
  txc.zc_fraction = cfg.zerocopy ? 1.0 : 0.0;
  s.tx_prep_ns = static_cast<Nanos>(snd_cost.tx_app_cyc_per_byte(txc) * s.gso_bytes /
                                    sender.app_core_hz() * 1e9);
  cpu::RxPathConfig rxc;
  rxc.gro_bytes = kern::effective_gro_bytes(rcv_caps, units::Bytes(mtu)).value();
  rxc.mtu_bytes = mtu;
  if (cfg.rx_segment_ns_override > 0) {
    s.rx_segment_ns = static_cast<Nanos>(cfg.rx_segment_ns_override);
  } else {
    s.rx_segment_ns = static_cast<Nanos>(rcv_cost.rx_app_cyc_per_byte(rxc) * s.mss /
                                         receiver.app_core_hz() * 1e9);
  }

  net::FqQdisc qdisc(cfg.sender.nic.line_rate_bps);
  if (cfg.pacing_bps > 0 &&
      cfg.sender.tuning.sysctl.default_qdisc == kern::QdiscKind::Fq) {
    qdisc.set_flow_rate(1, cfg.pacing_bps);
  }
  s.qdisc = &qdisc;
  kern::GroEngine gro(rcv_caps, units::Bytes(mtu));
  s.gro = &gro;

  if (!cfg.scenario.empty()) {
    s.scn = std::make_unique<scenario::Runtime>(
        cfg.scenario, cfg.seed, "packet",
        std::vector<scenario::EventKind>{
            scenario::EventKind::LossBurst, scenario::EventKind::ReorderBurst,
            scenario::EventKind::LinkDown, scenario::EventKind::LinkUp,
            scenario::EventKind::LinkAddRtt,
            scenario::EventKind::NicRingResize,
            scenario::EventKind::QdiscPacingRate,
            scenario::EventKind::IrqDrainDegrade});
    s.scn_base_half_rtt = s.half_rtt;
    s.scn_base_ring = s.ring_capacity;
    s.scn_base_rx_segment_ns = s.rx_segment_ns;
    s.scn_base_fq =
        cfg.sender.tuning.sysctl.default_qdisc == kern::QdiscKind::Fq;
    s.scn_base_pacing = s.scn_base_fq ? cfg.pacing_bps : 0.0;
  }

  const Nanos horizon = cfg.duration.nanos() + cfg.path.rtt * 2;
  if (cfg.telemetry && cfg.telemetry->config().enabled) {
    s.tel = cfg.telemetry;
    setup_instruments(s);
    if (s.scn) {
      // Same name/unit/help as the fluid engine's registration so a shared
      // Telemetry (divergence runs) folds both engines into one counter.
      s.scn_events = s.tel->registry().counter(
          "scenario.events_applied", "events", "scenario events applied so far");
    }
    s.tel->trace().begin("packet_run", "pkt", 0, 0,
                         {{"duration_ms", cfg.duration.seconds() * 1e3},
                          {"pacing_bps", cfg.pacing_bps},
                          {"window_bytes", cfg.window_bytes}});
    if (s.tel->wants_ss()) {
      // Kernel-eye snapshot source. Everything below only *reads* SimState;
      // bytes_acked is s.res.delivered_bytes, the exact double the
      // pkt.delivered_bytes counter accumulates, so the probe cross-check
      // holds bitwise.
      const bool hw_gro = receiver.hw_gro_active();
      const std::string nic_model = cfg.receiver.nic.model;
      const std::string qkind =
          cfg.sender.tuning.sysctl.default_qdisc == kern::QdiscKind::Fq
              ? "fq"
              : "fq_codel";
      s.tel->ss().set_source([&s, hw_gro, nic_model, qkind](Nanos now) {
        obs::SsReport r;
        r.ts = now;
        r.engine = "packet";
        obs::TcpInfoSnapshot t;
        t.flow = 0;
        t.ca_name = "fixed-window";
        t.in_slow_start = false;
        t.mss_bytes = s.mss;
        t.snd_cwnd_bytes = s.cfg->window_bytes;
        const double rtt_sec = units::to_seconds(s.cfg->path.rtt);
        t.rtt_sec = rtt_sec;
        t.min_rtt_sec = rtt_sec;
        // Receiver-side estimates: rcv_rtt adds the ring sojourn of the
        // current backlog; ooopack counts the holes ring drops and scenario
        // loss/reorder punched into the arrival order.
        t.rcv_rtt_sec =
            rtt_sec + units::to_seconds(static_cast<Nanos>(s.ring_used) *
                                        s.rx_segment_ns);
        t.rcv_ooopack =
            static_cast<double>(s.res.segments_dropped) + s.scn_rcv_ooo;
        t.pacing_rate_bps = s.cfg->pacing_bps;
        const double sent =
            static_cast<double>(s.res.superpackets_sent) * s.gso_bytes;
        t.bytes_sent = sent;
        t.bytes_acked = s.res.delivered_bytes;
        const double sec = units::to_seconds(now);
        t.send_rate_bps = sec > 0.0 ? units::rate_of(sent, sec) : 0.0;
        t.delivery_rate_bps =
            sec > 0.0 ? units::rate_of(s.res.delivered_bytes, sec) : 0.0;
        r.sockets.push_back(std::move(t));
        r.nic.device = nic_model;
        r.nic.rx_bytes = s.rx_accepted_segments * s.seg_payload;
        r.nic.rx_dropped_bytes =
            static_cast<double>(s.res.segments_dropped) * s.seg_payload;
        r.nic.rx_dropped_events = static_cast<double>(s.res.segments_dropped);
        r.nic.rx_ring_hiwater_frac =
            s.ring_capacity > 0 ? static_cast<double>(s.res.ring_peak) /
                                      static_cast<double>(s.ring_capacity)
                                : 0.0;
        r.nic.hw_gro_coalesced =
            hw_gro ? static_cast<double>(s.res.aggregates) : 0.0;
        const auto& qc = s.qdisc->counters();
        r.qdisc.kind = qkind;
        r.qdisc.sent_bytes = qc.sent_bytes;
        r.qdisc.throttled = static_cast<double>(qc.throttled);
        r.qdisc.pacing_delay_sec = units::to_seconds(qc.pacing_delay);
        return r;
      });
      if (s.tel->config().ss_interval > 0) {
        s.tel->ss().arm(s.engine, s.tel->config().ss_interval, horizon);
      }
      s.tel->link_ss_cross_check();
    }
    if (s.tel->wants_perf()) {
      s.perf = std::make_unique<SimState::PerfAccum>();
      auto& pa = *s.perf;
      // TX stage prices come from the same TxPathConfig that priced
      // tx_prep_ns, so stage sums track the engine's scalar charge exactly.
      pa.tx_pb = snd_cost.tx_app_stage_cyc(txc);
      pa.tx_irq_pb = snd_cost.tx_irq_stage_cyc(txc);
      // RX: per-wire-segment stage cycles. When rx_segment_ns_override pins
      // the service time, rescale the stage shares so their sum equals the
      // cycles the override actually spends per segment.
      const auto rx_pb = rcv_cost.rx_app_stage_cyc(rxc);
      double scale = 1.0;
      if (cfg.rx_segment_ns_override > 0) {
        const double per_seg_total = rx_pb.total() * s.mss;
        const double override_cyc =
            cfg.rx_segment_ns_override * receiver.app_core_hz() / 1e9;
        scale = per_seg_total > 0.0 ? override_cyc / per_seg_total : 0.0;
      }
      pa.rx_seg_syscall = rx_pb.syscall * s.mss * scale;
      pa.rx_seg_frag_walk = rx_pb.frag_walk * s.mss * scale;
      pa.rx_seg_copyout = rx_pb.copyout * s.mss * scale;
      // RX IRQ attribution at natural prices: the override rescale above
      // keeps the app-core identity with the pinned drain time, while the
      // IRQ-side work the drain folds in keeps its own cost-model split.
      const auto rx_irq_pb = rcv_cost.rx_irq_stage_cyc(rxc);
      pa.rx_irq_seg_skb_alloc = rx_irq_pb.skb_alloc * s.mss;
      pa.rx_irq_seg_gro_merge = rx_irq_pb.gro_merge * s.mss;
      pa.rx_irq_seg_agg_flush = rx_irq_pb.agg_flush * s.mss;
      pa.rx_irq_seg_csum = rx_irq_pb.csum * s.mss;
      pa.snd_hz = sender.app_core_hz();
      pa.rcv_hz = receiver.app_core_hz();
      // Everything below only *reads* SimState. The packet engine runs one
      // app core per side and meters no IRQ capacity; snd_irq/rcv_irq carry
      // attributed cycles against zero capacity (utilization reads 0).
      s.tel->perf().set_source([&s](Nanos now) {
        obs::PerfReport r;
        r.ts = now;
        r.engine = "packet";
        const auto& a = *s.perf;
        for (int i = 0; i < obs::kPerfStageCount; ++i) {
          r.stage_cycles[static_cast<std::size_t>(i)] = a.stage[static_cast<std::size_t>(i)];
        }
        for (int c = 0; c < obs::kPerfCoreCount; ++c) {
          r.consumed_cycles[static_cast<std::size_t>(c)] =
              a.consumed[static_cast<std::size_t>(c)];
        }
        const double sec = units::to_seconds(now);
        r.capacity_cycles[static_cast<int>(obs::PerfCore::SndApp)] = sec * a.snd_hz;
        r.capacity_cycles[static_cast<int>(obs::PerfCore::RcvApp)] = sec * a.rcv_hz;
        r.bytes_sent = a.bytes_sent;
        r.bytes_delivered = s.res.delivered_bytes;
        obs::PerfFlowCycles fc;
        fc.flow = 0;
        fc.stage_cycles.assign(a.stage.begin(), a.stage.end());
        r.flows.push_back(std::move(fc));
        return r;
      });
      if (s.tel->config().perf_interval > 0) {
        s.tel->perf().arm(s.engine, s.tel->config().perf_interval, horizon);
      }
    }
    // Probe armed after the ss watch: coincident samples see a fresh report.
    s.tel->probe().arm(s.engine, horizon, [&s](Nanos now) {
      const double sec = units::to_seconds(now);
      s.pkt.goodput->set(sec > 0.0 ? units::rate_of(s.res.delivered_bytes, sec) : 0.0);
      s.pkt.ring_occupancy->set(static_cast<double>(s.ring_used));
      s.pkt.ring_peak->set(static_cast<double>(s.res.ring_peak));
    });
  }

  // Scenario effects at t=0 must be in place before the first send; the
  // tick then re-arms itself at every later boundary.
  if (s.scn) scenario_tick(s);

  s.engine.schedule(0, [&s] { try_send(s); });
  s.engine.run_until(horizon);

  if (s.scn) {
    // Cross any boundaries past the last engine event so the log is
    // complete, then export it.
    s.scn->advance(cfg.duration.seconds());
    s.res.scenario_log = s.scn->event_log();
  }

  if (s.tel) {
    s.pkt.goodput->set(
        units::rate_of(s.res.delivered_bytes, cfg.duration.seconds()));
    s.tel->trace().end("packet_run", "pkt", s.engine.now());
    // Final ss snapshot first, then the closing probe sample — the probe's
    // cross-check compares its delivered counter against the ss report at
    // this same timestamp.
    if (s.tel->wants_ss()) s.tel->ss().final_sample(s.engine.now());
    if (s.tel->wants_perf()) s.tel->perf().final_sample(s.engine.now());
    // Closing sample: the default 1 s cadence never fires inside a 50 ms
    // horizon, and a shared probe table must still pick up the pkt.* columns.
    s.tel->probe().sample(s.engine.now());
    // The snapshot lambdas capture this frame's SimState; detach them before
    // the Telemetry (which outlives this call) can sample a dead frame.
    if (s.tel->wants_ss()) s.tel->ss().set_source(nullptr);
    if (s.tel->wants_perf()) s.tel->perf().set_source(nullptr);
  }

  s.res.achieved_bps =
      units::rate_of(s.res.delivered_bytes, cfg.duration.seconds());
  s.res.mean_aggregate_bytes =
      s.res.aggregates > 0 ? s.aggregate_bytes_total / static_cast<double>(s.res.aggregates)
                           : 0.0;
  s.res.interdeparture_mean_ns = s.gaps.mean();
  s.res.interdeparture_stddev_ns = s.gaps.stddev();
  return s.res;
}

}  // namespace dtnsim::flow
