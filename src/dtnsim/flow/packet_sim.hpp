// Packet-level (SKB-granularity) simulation.
//
// The main TransferSimulation clocks fluid RTT rounds for 60-second runs;
// this engine simulates every GSO super-packet, wire segment, ring slot,
// NAPI poll and GRO merge as discrete events. It is intentionally limited
// to one flow and short horizons (default 50 ms) — its job is to *validate*
// the fluid model's assumptions at microscopic scale:
//   - fq pacing emits evenly spaced super-packets; unpaced windows leave as
//     line-rate trains,
//   - unpaced trains overrun a slow-draining RX ring while the same rate,
//     paced, survives,
//   - GRO builds aggregates of the expected size,
//   - achieved throughput equals min(pacing, window/RTT, drain).
// The unit tests and micro-benches exercise it directly.
#pragma once

#include <cstdint>
#include <vector>

#include "dtnsim/host/host.hpp"
#include "dtnsim/net/path.hpp"
#include "dtnsim/obs/telemetry.hpp"
#include "dtnsim/scenario/scenario.hpp"
#include "dtnsim/util/stats.hpp"

namespace dtnsim::flow {

struct PacketSimConfig {
  host::HostConfig sender;
  host::HostConfig receiver;
  net::PathSpec path;
  double pacing_bps = 0.0;      // 0 = unpaced (line-rate trains)
  bool zerocopy = false;
  double window_bytes = 8e6;    // fixed window; no congestion control here
  units::SimTime duration = units::SimTime::from_millis(50);
  int napi_budget = 64;         // segments per NAPI poll
  // Receiver per-segment processing time floor; derived from the cost model
  // unless overridden (> 0).
  double rx_segment_ns_override = 0.0;
  // Mid-run fault/condition timeline (scenario::Timeline). Empty = no hook
  // installed (bit-identical to a scenario-less build). The packet engine
  // supports the subset of event kinds with an SKB-level counterpart: loss /
  // reorder bursts, link flap, added RTT, ring resize, pacing retune and IRQ
  // drain degradation; everything else is logged applied=false.
  scenario::Timeline scenario;
  // Seed for scenario jitter only — the engine itself stays deterministic.
  std::uint64_t seed = 1;
  // Optional, non-owning observability sink. When set (and enabled), the run
  // registers the pkt.* metric family, emits spans/instants into the trace,
  // and arms the interval probe on its engine — the same Telemetry a fluid
  // run of the scenario used, so the two engines export comparable series
  // (see flow/divergence.hpp). Default probe cadence (1 s) exceeds the
  // default 50 ms horizon; pass a sub-millisecond probe_interval to get a
  // packet-granular series.
  obs::Telemetry* telemetry = nullptr;
};

struct PacketSimResult {
  std::uint64_t superpackets_sent = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_dropped = 0;   // RX ring overruns
  std::uint64_t segments_lost_path = 0; // scenario loss bursts / link-down
  std::uint64_t aggregates = 0;
  double delivered_bytes = 0.0;
  double achieved_bps = 0.0;
  double mean_aggregate_bytes = 0.0;
  // Inter-departure spacing of super-packets at the sender qdisc.
  double interdeparture_mean_ns = 0.0;
  double interdeparture_stddev_ns = 0.0;
  int ring_peak = 0;                    // max descriptors in use
  // What the scenario runtime fired (empty when no timeline was configured).
  scenario::EventLog scenario_log;
};

PacketSimResult run_packet_sim(const PacketSimConfig& cfg);

}  // namespace dtnsim::flow
