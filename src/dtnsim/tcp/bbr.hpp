// BBR v1 and v3 (fluid-clocked, behaviourally faithful simplification).
//
// The paper (§IV-F) reports: throughput comparable to CUBIC on clean paths,
// noticeably more retransmits (especially BBRv1), faster WAN ramp-up, and
// parallel BBR flows that hurt each other unless fq pacing is applied on
// top. The model captures exactly those behaviours: a max-filtered bandwidth
// estimate, STARTUP/DRAIN/PROBE_BW gains, 2*BDP cwnd cap, v1 ignoring loss,
// v3 backing off on heavy loss and probing with headroom.
#pragma once

#include <array>

#include "dtnsim/tcp/cc.hpp"

namespace dtnsim::tcp {

class Bbr final : public CongestionControl {
 public:
  enum class Version { V1, V3 };

  Bbr(Version version, double mss_bytes);

  void on_ack(double now_sec, double acked_bytes, double rtt_sec) override;
  void on_loss(double now_sec, double lost_bytes) override;

  double cwnd_bytes() const override;
  double pacing_rate_bps() const override;
  bool self_paced() const override { return true; }
  bool in_slow_start() const override { return state_ == State::Startup; }
  const char* name() const override { return version_ == Version::V1 ? "bbr" : "bbr3"; }

  double btl_bw_bps() const { return btl_bw_bps_; }
  double min_rtt_sec() const { return min_rtt_sec_; }

 private:
  enum class State { Startup, Drain, ProbeBw };

  void advance_cycle(double now_sec);

  Version version_;
  double mss_;
  State state_ = State::Startup;

  double btl_bw_bps_ = 0.0;
  double min_rtt_sec_ = 1e9;
  double full_bw_bps_ = 0.0;
  int full_bw_rounds_ = 0;

  int cycle_index_ = 0;
  double cycle_start_ = 0.0;
  double recent_loss_bytes_ = 0.0;
};

}  // namespace dtnsim::tcp
