// RFC 6298 smoothed RTT estimation.
#pragma once

namespace dtnsim::tcp {

class RttEstimator {
 public:
  void add_sample(double rtt_sec);

  bool has_sample() const { return has_sample_; }
  double srtt_sec() const { return srtt_; }
  double rttvar_sec() const { return rttvar_; }
  double min_rtt_sec() const { return min_rtt_; }
  // Retransmission timeout: srtt + 4 * rttvar, floored at 200 ms like Linux.
  double rto_sec() const;

 private:
  bool has_sample_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double min_rtt_ = 1e9;
};

}  // namespace dtnsim::tcp
