// CUBIC congestion control (RFC 8312 shape, fluid-clocked).
#pragma once

#include "dtnsim/tcp/cc.hpp"

namespace dtnsim::tcp {

class Cubic final : public CongestionControl {
 public:
  explicit Cubic(double mss_bytes);

  void on_ack(double now_sec, double acked_bytes, double rtt_sec) override;
  void on_loss(double now_sec, double lost_bytes) override;

  double cwnd_bytes() const override { return cwnd_mss_ * mss_; }
  double ssthresh_bytes() const override { return ssthresh_mss_ * mss_; }
  bool in_slow_start() const override { return cwnd_mss_ < ssthresh_mss_; }
  const char* name() const override { return "cubic"; }

  double w_max_mss() const { return w_max_mss_; }

  static constexpr double kBeta = 0.7;  // multiplicative decrease
  static constexpr double kC = 0.4;     // cubic scaling constant

 private:
  double cubic_window_mss(double t_sec) const;

  double mss_;
  double cwnd_mss_ = 10.0;
  double ssthresh_mss_ = 1e12;
  double w_max_mss_ = 0.0;
  double k_sec_ = 0.0;          // time to reach w_max again
  double epoch_start_ = -1.0;   // < 0: no epoch running
};

}  // namespace dtnsim::tcp
