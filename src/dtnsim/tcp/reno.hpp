// Classic Reno AIMD — baseline for tests and the CC-comparison ablation.
#pragma once

#include "dtnsim/tcp/cc.hpp"

namespace dtnsim::tcp {

class Reno final : public CongestionControl {
 public:
  explicit Reno(double mss_bytes) : mss_(mss_bytes) {}

  void on_ack(double now_sec, double acked_bytes, double rtt_sec) override;
  void on_loss(double now_sec, double lost_bytes) override;

  double cwnd_bytes() const override { return cwnd_mss_ * mss_; }
  double ssthresh_bytes() const override { return ssthresh_mss_ * mss_; }
  bool in_slow_start() const override { return cwnd_mss_ < ssthresh_mss_; }
  const char* name() const override { return "reno"; }

 private:
  double mss_;
  double cwnd_mss_ = 10.0;
  double ssthresh_mss_ = 1e12;
};

}  // namespace dtnsim::tcp
