#include "dtnsim/tcp/bbr.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::tcp {
namespace {

constexpr double kStartupGain = 2.885;
constexpr double kDrainGain = 1.0 / 2.885;
// PROBE_BW pacing-gain cycle (v1).
constexpr std::array<double, 8> kCycleGains = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
// v3 probes less aggressively and leaves headroom.
constexpr std::array<double, 8> kCycleGainsV3 = {1.20, 0.80, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

}  // namespace

Bbr::Bbr(Version version, double mss_bytes) : version_(version), mss_(mss_bytes) {}

double Bbr::cwnd_bytes() const {
  if (btl_bw_bps_ <= 0 || min_rtt_sec_ >= 1e9) return 10.0 * mss_;
  const double bdp = btl_bw_bps_ * min_rtt_sec_ / 8.0;
  const double gain = state_ == State::Startup ? kStartupGain : 2.0;
  return std::max(gain * bdp, 4.0 * mss_);
}

double Bbr::pacing_rate_bps() const {
  if (btl_bw_bps_ <= 0) return 0.0;
  double gain = 1.0;
  switch (state_) {
    case State::Startup:
      gain = kStartupGain;
      break;
    case State::Drain:
      gain = kDrainGain;
      break;
    case State::ProbeBw:
      gain = (version_ == Version::V1 ? kCycleGains : kCycleGainsV3)
          [static_cast<std::size_t>(cycle_index_)];
      break;
  }
  return btl_bw_bps_ * gain;
}

void Bbr::advance_cycle(double now_sec) {
  if (now_sec - cycle_start_ >= min_rtt_sec_) {
    cycle_index_ = (cycle_index_ + 1) % static_cast<int>(kCycleGains.size());
    cycle_start_ = now_sec;
    recent_loss_bytes_ = 0.0;
  }
}

void Bbr::on_ack(double now_sec, double acked_bytes, double rtt_sec) {
  if (acked_bytes <= 0 || rtt_sec <= 0) return;
  min_rtt_sec_ = std::min(min_rtt_sec_, rtt_sec);

  const double delivery_rate = acked_bytes * 8.0 / rtt_sec;
  btl_bw_bps_ = std::max(btl_bw_bps_ * 0.98, delivery_rate);  // leaky max filter

  switch (state_) {
    case State::Startup:
      if (btl_bw_bps_ < full_bw_bps_ * 1.25) {
        if (++full_bw_rounds_ >= 3) {
          state_ = State::Drain;
        }
      } else {
        full_bw_bps_ = btl_bw_bps_;
        full_bw_rounds_ = 0;
      }
      break;
    case State::Drain:
      state_ = State::ProbeBw;
      cycle_start_ = now_sec;
      break;
    case State::ProbeBw:
      advance_cycle(now_sec);
      break;
  }
}

void Bbr::on_loss(double now_sec, double lost_bytes) {
  (void)now_sec;
  recent_loss_bytes_ += lost_bytes;
  if (version_ == Version::V1) return;  // v1 famously ignores loss
  // v3: heavy loss within a cycle backs the estimate off.
  const double bdp = btl_bw_bps_ * std::max(min_rtt_sec_, 1e-4) / 8.0;
  if (bdp > 0 && recent_loss_bytes_ > 0.02 * bdp) {
    btl_bw_bps_ *= 0.85;
    recent_loss_bytes_ = 0.0;
  }
}

}  // namespace dtnsim::tcp
