#include "dtnsim/tcp/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::tcp {

Cubic::Cubic(double mss_bytes) : mss_(mss_bytes) {}

double Cubic::cubic_window_mss(double t_sec) const {
  const double d = t_sec - k_sec_;
  return kC * d * d * d + w_max_mss_;
}

void Cubic::on_ack(double now_sec, double acked_bytes, double rtt_sec) {
  if (acked_bytes <= 0) return;
  const double acked_mss = acked_bytes / mss_;

  if (in_slow_start()) {
    cwnd_mss_ += acked_mss;  // doubles per RTT
    return;
  }

  if (epoch_start_ < 0) {
    epoch_start_ = now_sec;
    if (w_max_mss_ < cwnd_mss_) w_max_mss_ = cwnd_mss_;
    k_sec_ = std::cbrt(std::max(w_max_mss_ - cwnd_mss_, 0.0) / kC);
  }

  const double t = now_sec - epoch_start_;
  // Target one RTT ahead on the cubic curve.
  const double target = cubic_window_mss(t + rtt_sec);
  if (target > cwnd_mss_) {
    cwnd_mss_ += (target - cwnd_mss_) / std::max(cwnd_mss_, 1.0) * acked_mss;
  } else {
    // TCP-friendly floor: grow at least like Reno.
    cwnd_mss_ += acked_mss / std::max(cwnd_mss_, 1.0) * 0.5;
  }
}

void Cubic::on_loss(double now_sec, double lost_bytes) {
  (void)now_sec;
  (void)lost_bytes;
  // Fast convergence: losing again below the previous w_max shrinks it.
  if (cwnd_mss_ < w_max_mss_) {
    w_max_mss_ = cwnd_mss_ * (1.0 + kBeta) / 2.0;
  } else {
    w_max_mss_ = cwnd_mss_;
  }
  cwnd_mss_ = std::max(cwnd_mss_ * kBeta, 2.0);
  ssthresh_mss_ = cwnd_mss_;
  epoch_start_ = -1.0;
}

}  // namespace dtnsim::tcp
