#include "dtnsim/tcp/reno.hpp"

#include <algorithm>

namespace dtnsim::tcp {

void Reno::on_ack(double now_sec, double acked_bytes, double rtt_sec) {
  (void)now_sec;
  (void)rtt_sec;
  if (acked_bytes <= 0) return;
  const double acked_mss = acked_bytes / mss_;
  if (in_slow_start()) {
    cwnd_mss_ += acked_mss;
  } else {
    cwnd_mss_ += acked_mss / std::max(cwnd_mss_, 1.0);
  }
}

void Reno::on_loss(double now_sec, double lost_bytes) {
  (void)now_sec;
  (void)lost_bytes;
  cwnd_mss_ = std::max(cwnd_mss_ * 0.5, 2.0);
  ssthresh_mss_ = cwnd_mss_;
}

}  // namespace dtnsim::tcp
