#include "dtnsim/tcp/cc.hpp"

#include "dtnsim/tcp/bbr.hpp"
#include "dtnsim/tcp/cubic.hpp"
#include "dtnsim/tcp/reno.hpp"

namespace dtnsim::tcp {

std::unique_ptr<CongestionControl> make_congestion_control(kern::CongestionAlgo algo,
                                                           double mss_bytes) {
  switch (algo) {
    case kern::CongestionAlgo::Cubic:
      return std::make_unique<Cubic>(mss_bytes);
    case kern::CongestionAlgo::BbrV1:
      return std::make_unique<Bbr>(Bbr::Version::V1, mss_bytes);
    case kern::CongestionAlgo::BbrV3:
      return std::make_unique<Bbr>(Bbr::Version::V3, mss_bytes);
    case kern::CongestionAlgo::Reno:
      return std::make_unique<Reno>(mss_bytes);
  }
  return std::make_unique<Cubic>(mss_bytes);
}

}  // namespace dtnsim::tcp
