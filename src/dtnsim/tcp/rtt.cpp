#include "dtnsim/tcp/rtt.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim::tcp {

void RttEstimator::add_sample(double rtt_sec) {
  if (rtt_sec <= 0) return;
  min_rtt_ = std::min(min_rtt_, rtt_sec);
  if (!has_sample_) {
    srtt_ = rtt_sec;
    rttvar_ = rtt_sec / 2.0;
    has_sample_ = true;
    return;
  }
  const double err = std::fabs(srtt_ - rtt_sec);
  rttvar_ = 0.75 * rttvar_ + 0.25 * err;
  srtt_ = 0.875 * srtt_ + 0.125 * rtt_sec;
}

double RttEstimator::rto_sec() const {
  if (!has_sample_) return 1.0;
  return std::max(srtt_ + 4.0 * rttvar_, 0.2);
}

}  // namespace dtnsim::tcp
