// Congestion-control interface.
//
// The fluid engine clocks each flow once per RTT-ish tick and feeds the CC
// module ACK/loss aggregates; the CC module answers with a congestion window
// (bytes) and, for BBR, a self-pacing rate. CUBIC is the paper's default;
// BBRv1/BBRv3 exist for the §IV-F comparison (similar throughput, more
// retransmits, faster ramp-up).
#pragma once

#include <memory>

#include "dtnsim/kern/sysctl.hpp"

namespace dtnsim::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // `now_sec` is simulation time; `acked_bytes` newly acknowledged this tick.
  virtual void on_ack(double now_sec, double acked_bytes, double rtt_sec) = 0;
  // A loss event (one or more drops within the tick).
  virtual void on_loss(double now_sec, double lost_bytes) = 0;

  virtual double cwnd_bytes() const = 0;
  // Slow-start threshold in bytes; 0 means "not meaningful" (BBR).
  // Observability reads this for the ss-style cwnd/ssthresh time series.
  virtual double ssthresh_bytes() const { return 0.0; }
  // Self-imposed pacing rate in bits/s; 0 means "window-clocked only".
  virtual double pacing_rate_bps() const { return 0.0; }
  // Whether the algorithm's own pacing smooths its wire bursts.
  virtual bool self_paced() const { return false; }
  virtual bool in_slow_start() const = 0;
  virtual const char* name() const = 0;
};

// mss: wire MSS in bytes. initial_cwnd defaults to Linux's 10 * MSS.
std::unique_ptr<CongestionControl> make_congestion_control(kern::CongestionAlgo algo,
                                                           double mss_bytes);

}  // namespace dtnsim::tcp
