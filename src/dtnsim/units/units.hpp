// Strong-typed units: the quantities the paper's results are made of.
//
// The reproduction mixes Gbps line rates, GiB buffer limits, MB/s memory
// bandwidth, cycles-per-byte CPU costs, microsecond RTTs and page-sized
// optmem budgets — exactly the conversions where a silent factor-of-8 or a
// 10^3-vs-2^10 slip fabricates a "result". These wrappers make the unit part
// of the type, so passing bytes where bits are expected is a compile error,
// not a plausible-looking number.
//
// Design rules (enforced by tests/test_units.cpp and the compile-fail check
// in tests/compile_fail/):
//   - explicit constructors, no implicit narrowing or cross-unit conversion;
//   - conversions are spelled out (`to_bits`, `bits_to_bytes`,
//     `Rate::from_gbps`, `rate.bytes_in(t)`) and `constexpr`;
//   - factories reject NaN/Inf inputs (std::invalid_argument) — a poisoned
//     knob must fail loudly at the boundary, not 60 simulated seconds later;
//   - arithmetic stays inside the unit (Bytes + Bytes = Bytes; Bytes / Bytes
//     = dimensionless double; scalar scaling allowed), all `constexpr`;
//   - unit-suffix literals live in `dtnsim::units::literals`
//     (`150_KiB`, `12.5_Gbps`, `60_s`, `104_ms`).
//
// The pre-existing double-based helpers (units::gbps, units::seconds,
// bytes_at, ...) live at the bottom of this header: they remain the
// convention *inside* tick-level fluid math, where everything is double
// seconds / double bytes by construction. Public APIs between subsystems
// take the strong types. `dtnsim-lint` (rule `raw-unit-double`) keeps raw
// `double gbps/seconds` parameters out of public headers outside this
// directory.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dtnsim {

// Simulated time in integer nanoseconds — the event engine's clock type.
using Nanos = std::int64_t;

namespace units {

inline constexpr Nanos kNanosPerSec = 1'000'000'000;

namespace detail {
// NaN/Inf guard usable in constexpr context: the throw only materializes
// when the bad branch is actually taken, so constant-folded good values
// stay constexpr while a poisoned runtime value throws.
constexpr double checked(double v, const char* what) {
  if (v != v) throw std::invalid_argument(std::string("units: NaN ") + what);
  if (v > 1.7976931348623157e308 || v < -1.7976931348623157e308)
    throw std::invalid_argument(std::string("units: non-finite ") + what);
  return v;
}
}  // namespace detail

// CRTP base: storage, accessors, in-unit arithmetic and comparisons.
// Derived types add their named factories and cross-unit conversions.
template <class Derived>
class Scalar {
 public:
  constexpr double value() const { return v_; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived(a.v_ + b.v_); }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived(a.v_ - b.v_); }
  friend constexpr Derived operator*(Derived a, double k) { return Derived(a.v_ * k); }
  friend constexpr Derived operator*(double k, Derived a) { return Derived(a.v_ * k); }
  friend constexpr Derived operator/(Derived a, double k) { return Derived(a.v_ / k); }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v_ / b.v_; }

  constexpr Derived& operator+=(Derived b) { v_ += b.v_; return self(); }
  constexpr Derived& operator-=(Derived b) { v_ -= b.v_; return self(); }

  friend constexpr bool operator==(Derived a, Derived b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Derived a, Derived b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Derived a, Derived b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Derived a, Derived b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Derived a, Derived b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Derived a, Derived b) { return a.v_ >= b.v_; }

 protected:
  constexpr Scalar() = default;
  constexpr explicit Scalar(double v, const char* what) : v_(detail::checked(v, what)) {}

 private:
  constexpr Derived& self() { return static_cast<Derived&>(*this); }
  double v_ = 0.0;
};

class Bits;
class SimTime;

// Payload sizes, buffer limits, window depths. Fractional values are legal:
// the fluid engine moves fractional bytes inside a tick.
class Bytes : public Scalar<Bytes> {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double v) : Scalar(v, "Bytes") {}

  static constexpr Bytes kib(double k) { return Bytes(k * 1024.0); }
  static constexpr Bytes mib(double m) { return Bytes(m * 1024.0 * 1024.0); }
  static constexpr Bytes gib(double g) { return Bytes(g * 1024.0 * 1024.0 * 1024.0); }
  // 4 KiB kernel pages — zerocopy pins and optmem budgets are page-shaped.
  static constexpr Bytes pages(double n) { return Bytes(n * 4096.0); }

  constexpr Bits to_bits() const;
};

// Wire quantities (rates multiply out to bits).
class Bits : public Scalar<Bits> {
 public:
  constexpr Bits() = default;
  constexpr explicit Bits(double v) : Scalar(v, "Bits") {}

  constexpr Bytes to_bytes() const { return Bytes(value() / 8.0); }
};

constexpr Bits Bytes::to_bits() const { return Bits(value() * 8.0); }

// The two conversions every throughput paper gets one chance to do right.
constexpr Bits to_bits(Bytes b) { return b.to_bits(); }
constexpr Bytes bits_to_bytes(Bits b) { return b.to_bytes(); }

// Segment / SKB / descriptor counts (fluid, so fractional is legal).
class Packets : public Scalar<Packets> {
 public:
  constexpr Packets() = default;
  constexpr explicit Packets(double v) : Scalar(v, "Packets") {}
};

// CPU work. Budgets are cycles; costs are cycles-per-byte doubles applied
// to Bytes at the call site.
class Cycles : public Scalar<Cycles> {
 public:
  constexpr Cycles() = default;
  constexpr explicit Cycles(double v) : Scalar(v, "Cycles") {}
};

// Simulated time. Wraps the engine's integer-nanosecond clock; the double
// seconds view is for fluid-rate math inside a tick.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(Nanos ns) : ns_(ns) {}

  static constexpr SimTime from_nanos(Nanos ns) { return SimTime(ns); }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<Nanos>(detail::checked(s, "SimTime") * 1e9));
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime(static_cast<Nanos>(detail::checked(ms, "SimTime") * 1e6));
  }
  static constexpr SimTime from_micros(double us) {
    return SimTime(static_cast<Nanos>(detail::checked(us, "SimTime") * 1e3));
  }

  constexpr Nanos nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime(a.ns_ + b.ns_); }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime(a.ns_ - b.ns_); }
  friend constexpr bool operator==(SimTime a, SimTime b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(SimTime a, SimTime b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(SimTime a, SimTime b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(SimTime a, SimTime b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(SimTime a, SimTime b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(SimTime a, SimTime b) { return a.ns_ >= b.ns_; }

 private:
  Nanos ns_ = 0;
};

// Data rate in bits per second (the paper's native axis is Gbps).
class Rate : public Scalar<Rate> {
 public:
  constexpr Rate() = default;

  static constexpr Rate from_bps(double bps) { return Rate(bps); }
  static constexpr Rate from_kbps(double k) { return Rate(k * 1e3); }
  static constexpr Rate from_mbps(double m) { return Rate(m * 1e6); }
  static constexpr Rate from_gbps(double g) { return Rate(g * 1e9); }

  constexpr double bps() const { return value(); }
  constexpr double mbps() const { return value() / 1e6; }
  constexpr double gbps() const { return value() / 1e9; }

  // Bytes transferred in `t` at this rate.
  constexpr Bytes bytes_in(SimTime t) const { return Bytes(value() * t.seconds() / 8.0); }
  // Rate that moves `b` in `t`.
  static constexpr Rate of(Bytes b, SimTime t) {
    return Rate(t.seconds() > 0 ? b.value() * 8.0 / t.seconds() : 0.0);
  }

 private:
  constexpr explicit Rate(double bps) : Scalar(bps, "Rate") {}
};

namespace literals {
// clang-format off
constexpr Bytes   operator""_B(long double v)            { return Bytes(static_cast<double>(v)); }
constexpr Bytes   operator""_B(unsigned long long v)     { return Bytes(static_cast<double>(v)); }
constexpr Bytes   operator""_KiB(long double v)          { return Bytes::kib(static_cast<double>(v)); }
constexpr Bytes   operator""_KiB(unsigned long long v)   { return Bytes::kib(static_cast<double>(v)); }
constexpr Bytes   operator""_MiB(long double v)          { return Bytes::mib(static_cast<double>(v)); }
constexpr Bytes   operator""_MiB(unsigned long long v)   { return Bytes::mib(static_cast<double>(v)); }
constexpr Bytes   operator""_GiB(long double v)          { return Bytes::gib(static_cast<double>(v)); }
constexpr Bytes   operator""_GiB(unsigned long long v)   { return Bytes::gib(static_cast<double>(v)); }
constexpr Bits    operator""_bits(unsigned long long v)  { return Bits(static_cast<double>(v)); }
constexpr Packets operator""_pkts(unsigned long long v)  { return Packets(static_cast<double>(v)); }
constexpr Cycles  operator""_cyc(long double v)          { return Cycles(static_cast<double>(v)); }
constexpr Cycles  operator""_cyc(unsigned long long v)   { return Cycles(static_cast<double>(v)); }
constexpr Rate    operator""_Gbps(long double v)         { return Rate::from_gbps(static_cast<double>(v)); }
constexpr Rate    operator""_Gbps(unsigned long long v)  { return Rate::from_gbps(static_cast<double>(v)); }
constexpr Rate    operator""_Mbps(long double v)         { return Rate::from_mbps(static_cast<double>(v)); }
constexpr Rate    operator""_Mbps(unsigned long long v)  { return Rate::from_mbps(static_cast<double>(v)); }
constexpr SimTime operator""_s(long double v)            { return SimTime::from_seconds(static_cast<double>(v)); }
constexpr SimTime operator""_s(unsigned long long v)     { return SimTime::from_seconds(static_cast<double>(v)); }
constexpr SimTime operator""_ms(long double v)           { return SimTime::from_millis(static_cast<double>(v)); }
constexpr SimTime operator""_ms(unsigned long long v)    { return SimTime::from_millis(static_cast<double>(v)); }
constexpr SimTime operator""_us(long double v)           { return SimTime::from_micros(static_cast<double>(v)); }
constexpr SimTime operator""_us(unsigned long long v)    { return SimTime::from_micros(static_cast<double>(v)); }
// clang-format on
}  // namespace literals

// --- raw-double helpers (tick-level fluid math) --------------------------
// Conventions, unchanged since the seed: simulated time is Nanos for the
// event engine and double seconds inside a tick; rates are double bits/s;
// sizes are double bytes; CPU is double cycles. These helpers are the
// blessed constructors for those raw values.

// --- time -------------------------------------------------------------
constexpr Nanos seconds(double s) { return static_cast<Nanos>(s * 1e9); }
constexpr Nanos millis(double ms) { return static_cast<Nanos>(ms * 1e6); }
constexpr Nanos micros(double us) { return static_cast<Nanos>(us * 1e3); }
constexpr double to_seconds(Nanos t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(Nanos t) { return static_cast<double>(t) / 1e6; }

// --- rates (bits per second) -------------------------------------------
constexpr double gbps(double g) { return g * 1e9; }
constexpr double mbps(double m) { return m * 1e6; }
constexpr double kbps(double k) { return k * 1e3; }
constexpr double to_gbps(double bps) { return bps / 1e9; }

// --- sizes (bytes) ------------------------------------------------------
constexpr double kib(double k) { return k * 1024.0; }
constexpr double mib(double m) { return m * 1024.0 * 1024.0; }
constexpr double gib(double g) { return g * 1024.0 * 1024.0 * 1024.0; }

// Bytes transferred in `t_sec` at `bps` bits/second.
constexpr double bytes_at(double bps, double t_sec) { return bps * t_sec / 8.0; }
// Rate that transfers `bytes` in `t_sec` seconds.
constexpr double rate_of(double bytes, double t_sec) {
  return t_sec > 0 ? bytes * 8.0 / t_sec : 0.0;
}

// Human-readable formatting ("42.1 Gbps", "104 ms", "3.25 MB").
std::string format_rate(double bps);
std::string format_bytes(double bytes);
std::string format_time(Nanos t);

inline std::string format_rate(Rate r) { return format_rate(r.bps()); }
inline std::string format_bytes(Bytes b) { return format_bytes(b.value()); }
inline std::string format_time(SimTime t) { return format_time(t.nanos()); }

}  // namespace units
}  // namespace dtnsim
