#include "dtnsim/units/units.hpp"

#include <cstdio>

namespace dtnsim::units {
namespace {

// Local printf wrapper: units sits below util in the module graph, so it
// cannot reach util/strfmt.hpp.
template <class... Args>
std::string fmt(const char* f, Args... args) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, args...);
  return buf;
}

}  // namespace

std::string format_rate(double bps) {
  if (bps >= 1e9) return fmt("%.2f Gbps", bps / 1e9);
  if (bps >= 1e6) return fmt("%.2f Mbps", bps / 1e6);
  if (bps >= 1e3) return fmt("%.2f Kbps", bps / 1e3);
  return fmt("%.0f bps", bps);
}

std::string format_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0 * 1024.0)
    return fmt("%.2f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
  if (bytes >= 1024.0 * 1024.0) return fmt("%.2f MiB", bytes / (1024.0 * 1024.0));
  if (bytes >= 1024.0) return fmt("%.2f KiB", bytes / 1024.0);
  return fmt("%.0f B", bytes);
}

std::string format_time(Nanos t) {
  if (t >= kNanosPerSec) return fmt("%.2f s", static_cast<double>(t) / 1e9);
  if (t >= 1'000'000) return fmt("%.2f ms", static_cast<double>(t) / 1e6);
  if (t >= 1'000) return fmt("%.2f us", static_cast<double>(t) / 1e3);
  return fmt("%lld ns", static_cast<long long>(t));
}

}  // namespace dtnsim::units
