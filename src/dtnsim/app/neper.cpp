#include "dtnsim/app/neper.hpp"

#include <algorithm>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::app {

NeperReport NeperTool::run(const host::HostConfig& local, const host::HostConfig& remote,
                           const net::PathSpec& path, const NeperOptions& opts,
                           bool link_flow_control, std::uint64_t seed) const {
  flow::TransferConfig cfg;
  cfg.sender = local;
  cfg.receiver = remote;
  cfg.path = path;
  cfg.streams = std::max(opts.num_flows, 1);
  cfg.flow.zerocopy = opts.zerocopy;
  cfg.flow.skip_rx_copy = opts.skip_rx_copy;
  cfg.flow.fq_rate_bps = opts.max_pacing_rate_bps;
  cfg.flow.congestion = opts.congestion;
  cfg.link_flow_control = link_flow_control;
  cfg.duration = units::SimTime::from_seconds(opts.warmup_sec + opts.test_length_sec);
  cfg.seed = seed;

  const auto res = flow::run_transfer(cfg);

  NeperReport rep;
  // Exclude the warm-up from the reported rate using the interval series.
  const auto first = static_cast<std::size_t>(opts.warmup_sec);
  double bytes_after_warmup = 0.0;
  double seconds_after_warmup = 0.0;
  for (std::size_t i = first; i < res.interval_bps.size(); ++i) {
    bytes_after_warmup += res.interval_bps[i] / 8.0;
    seconds_after_warmup += 1.0;
  }
  rep.throughput_gbps =
      seconds_after_warmup > 0
          ? units::to_gbps(bytes_after_warmup * 8.0 / seconds_after_warmup)
          : units::to_gbps(res.throughput_bps);
  for (double bps : res.per_flow_bps) rep.flow_gbps.push_back(units::to_gbps(bps));
  rep.retransmits = res.retransmit_segments;
  rep.local_cpu_pct = res.sender_cpu.cores_pct;
  rep.remote_cpu_pct = res.receiver_cpu.cores_pct;
  return rep;
}

std::string NeperReport::to_key_value() const {
  std::string out;
  out += strfmt("throughput_Mbps=%.0f\n", throughput_gbps * 1000.0);
  out += strfmt("num_flows=%zu\n", flow_gbps.size());
  for (std::size_t i = 0; i < flow_gbps.size(); ++i) {
    out += strfmt("flow_%zu_Mbps=%.0f\n", i, flow_gbps[i] * 1000.0);
  }
  out += strfmt("retransmits=%.0f\n", retransmits);
  out += strfmt("local_cpu_percent=%.1f\n", local_cpu_pct);
  out += strfmt("remote_cpu_percent=%.1f\n", remote_cpu_pct);
  return out;
}

}  // namespace dtnsim::app
