// iperf3-like traffic tool model.
//
// The paper uses iperf3 v3.17 with two patches: #1690 (adds --zerocopy=z
// using MSG_ZEROCOPY and --skip-rx-copy using MSG_TRUNC, inspired by neper)
// and #1728 (widens --fq-rate to 64 bits so pacing above 32 Gbps works).
// v3.16 introduced multi-threaded parallel streams, required for -P tests.
// IperfTool validates an option set against a tool version exactly the way
// the real binary would accept or mangle it, then drives TransferSimulation.
#pragma once

#include <string>

#include "dtnsim/flow/transfer.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::app {

struct IperfVersion {
  int major = 3;
  int minor = 17;
  bool patch_1690 = true;  // --zerocopy=z / --skip-rx-copy
  bool patch_1728 = true;  // 64-bit --fq-rate

  bool multithreaded() const { return major > 3 || (major == 3 && minor >= 16); }
  static IperfVersion patched_3_17() { return IperfVersion{}; }
  static IperfVersion stock_3_16() { return IperfVersion{3, 16, false, false}; }
};

struct IperfOptions {
  int parallel = 1;                 // -P
  double duration_sec = 60.0;       // -t
  double fq_rate_bps = 0.0;         // --fq-rate (per stream)
  bool zerocopy = false;            // --zerocopy=z
  bool skip_rx_copy = false;        // --skip-rx-copy
  kern::CongestionAlgo congestion = kern::CongestionAlgo::Cubic;  // -C
  bool json = false;                // --json
};

// What the tool will actually do, after version checks.
struct EffectiveOptions {
  IperfOptions requested;
  double fq_rate_bps = 0.0;  // 32-bit-truncated without patch 1728
  bool zerocopy = false;
  bool skip_rx_copy = false;
  int parallel = 1;
  std::string warnings;
};

EffectiveOptions resolve_options(const IperfOptions& opts, const IperfVersion& version);

struct IperfReport {
  double sum_sent_gbps = 0.0;
  double sum_received_gbps = 0.0;
  std::vector<double> per_stream_gbps;
  double retransmits = 0.0;
  double sender_cpu_pct = 0.0;
  double receiver_cpu_pct = 0.0;
  std::vector<double> interval_gbps;

  // iperf3 --json style output (subset of the real schema).
  Json to_json(const IperfOptions& opts) const;
  std::string summary_line() const;
};

class IperfTool {
 public:
  explicit IperfTool(IperfVersion version = IperfVersion::patched_3_17())
      : version_(version) {}

  // Run client/server over the given hosts and path.
  IperfReport run(const host::HostConfig& client, const host::HostConfig& server,
                  const net::PathSpec& path, const IperfOptions& opts,
                  bool link_flow_control = false, std::uint64_t seed = 1) const;

  const IperfVersion& version() const { return version_; }

 private:
  IperfVersion version_;
};

}  // namespace dtnsim::app
