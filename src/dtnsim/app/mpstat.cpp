#include "dtnsim/app/mpstat.hpp"

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::app {

MpstatReport mpstat_from(const flow::CpuUtilization& cpu, int irq_cores) {
  MpstatReport r;
  r.app_core_pct = cpu.app_util * 100.0;
  r.irq_cores_pct = cpu.irq_util * 100.0 * static_cast<double>(irq_cores);
  r.combined_pct = cpu.cores_pct;
  return r;
}

std::string MpstatReport::to_string(const std::string& host_label) const {
  return strfmt("%s: app %.0f%%, irq %.0f%%, combined %.0f%%", host_label.c_str(),
                app_core_pct, irq_cores_pct, combined_pct);
}

}  // namespace dtnsim::app
