// mpstat-style CPU reporting (the harness runs "mpstat alongside iperf3").
#pragma once

#include <string>

#include "dtnsim/flow/transfer.hpp"

namespace dtnsim::app {

struct MpstatReport {
  double app_core_pct = 0.0;   // the traffic tool's core(s), % of one core
  double irq_cores_pct = 0.0;  // NIC IRQ cores aggregate, % of one core
  double combined_pct = 0.0;   // the paper's "TX/RX Cores" metric

  std::string to_string(const std::string& host_label) const;
};

MpstatReport mpstat_from(const flow::CpuUtilization& cpu, int irq_cores);

}  // namespace dtnsim::app
