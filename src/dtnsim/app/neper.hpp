// neper-like workload model (https://github.com/google/neper).
//
// The paper's iperf3 patch #1690 lifted --skip-rx-copy and --zerocopy from
// Google's neper, which grew these first. neper's tcp_stream differs from
// iperf3 in workflow: N independent flows (not threads of one test), a
// warm-up period excluded from the measurement, and per-flow sample output.
// Modelling it gives the repo a second, independently-shaped traffic tool —
// useful to confirm conclusions are not iperf3 artifacts.
#pragma once

#include <string>
#include <vector>

#include "dtnsim/flow/transfer.hpp"

namespace dtnsim::app {

struct NeperOptions {
  int num_flows = 1;              // -F/--num-flows
  double test_length_sec = 10.0;  // -l/--test-length
  double warmup_sec = 1.0;        // excluded from the reported rate
  bool zerocopy = false;          // -Z (SO_ZEROCOPY + MSG_ZEROCOPY)
  bool skip_rx_copy = false;      // --skip-rx-copy (MSG_TRUNC)
  double max_pacing_rate_bps = 0; // -M (SO_MAX_PACING_RATE, per flow)
  kern::CongestionAlgo congestion = kern::CongestionAlgo::Cubic;
};

struct NeperReport {
  double throughput_gbps = 0.0;   // aggregate, warm-up excluded
  std::vector<double> flow_gbps;  // per-flow averages
  double retransmits = 0.0;
  double local_cpu_pct = 0.0;
  double remote_cpu_pct = 0.0;
  // neper prints key=value lines.
  std::string to_key_value() const;
};

class NeperTool {
 public:
  NeperReport run(const host::HostConfig& local, const host::HostConfig& remote,
                  const net::PathSpec& path, const NeperOptions& opts,
                  bool link_flow_control = false, std::uint64_t seed = 1) const;
};

}  // namespace dtnsim::app
