#include "dtnsim/app/iperf.hpp"

#include <algorithm>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::app {
namespace {

constexpr double kFqRate32BitMax = 32.0e9;  // pre-patch-1728 uint ceiling

}  // namespace

EffectiveOptions resolve_options(const IperfOptions& opts, const IperfVersion& version) {
  EffectiveOptions eff;
  eff.requested = opts;
  eff.parallel = std::max(opts.parallel, 1);

  if (eff.parallel > 1 && !version.multithreaded()) {
    // Pre-3.16 single-threaded iperf3: all streams share one thread/core.
    // We model that as a hard cap at 1 effective stream worth of CPU; tests
    // should use >= 3.16 as the paper does.
    eff.warnings += "iperf3 < 3.16 is single-threaded; parallel streams share one core. ";
  }

  eff.zerocopy = opts.zerocopy;
  eff.skip_rx_copy = opts.skip_rx_copy;
  if ((opts.zerocopy || opts.skip_rx_copy) && !version.patch_1690) {
    eff.zerocopy = false;
    eff.skip_rx_copy = false;
    eff.warnings += "--zerocopy=z/--skip-rx-copy require patch #1690; ignored. ";
  }

  eff.fq_rate_bps = opts.fq_rate_bps;
  if (opts.fq_rate_bps > kFqRate32BitMax && !version.patch_1728) {
    // Without the 64-bit fq-rate patch the value wraps/clamps; the paper's
    // conclusion: "pacing single flows above 32 Gbps ... requires a recent
    // patch to iperf3".
    eff.fq_rate_bps = kFqRate32BitMax;
    eff.warnings += "--fq-rate above 32G requires patch #1728; clamped to 32G. ";
  }
  return eff;
}

IperfReport IperfTool::run(const host::HostConfig& client, const host::HostConfig& server,
                           const net::PathSpec& path, const IperfOptions& opts,
                           bool link_flow_control, std::uint64_t seed) const {
  const EffectiveOptions eff = resolve_options(opts, version_);

  flow::TransferConfig cfg;
  cfg.sender = client;
  cfg.receiver = server;
  cfg.path = path;
  cfg.streams = version_.multithreaded() ? eff.parallel : 1;
  cfg.flow.zerocopy = eff.zerocopy;
  cfg.flow.skip_rx_copy = eff.skip_rx_copy;
  cfg.flow.fq_rate_bps = eff.fq_rate_bps;
  cfg.flow.congestion = opts.congestion;
  cfg.link_flow_control = link_flow_control;
  cfg.duration = units::SimTime::from_seconds(opts.duration_sec);
  cfg.seed = seed;

  const flow::TransferResult res = flow::run_transfer(cfg);

  IperfReport rep;
  rep.sum_received_gbps = units::to_gbps(res.throughput_bps);
  // Sender-side counts include what was later retransmitted.
  rep.sum_sent_gbps =
      rep.sum_received_gbps +
      units::to_gbps(units::rate_of(res.dropped_bytes_nic + res.dropped_bytes_path,
                                    res.duration_sec));
  for (double bps : res.per_flow_bps) rep.per_stream_gbps.push_back(units::to_gbps(bps));
  rep.retransmits = res.retransmit_segments;
  rep.sender_cpu_pct = res.sender_cpu.cores_pct;
  rep.receiver_cpu_pct = res.receiver_cpu.cores_pct;
  for (double bps : res.interval_bps) rep.interval_gbps.push_back(units::to_gbps(bps));
  return rep;
}

Json IperfReport::to_json(const IperfOptions& opts) const {
  Json root = Json::object();
  Json& start = root["start"];
  start["test_start"]["num_streams"] = opts.parallel;
  start["test_start"]["duration"] = opts.duration_sec;
  start["test_start"]["zerocopy"] = opts.zerocopy;
  start["test_start"]["fq_rate"] = opts.fq_rate_bps;
  start["test_start"]["congestion"] = kern::congestion_name(opts.congestion);

  Json intervals = Json::array();
  for (std::size_t i = 0; i < interval_gbps.size(); ++i) {
    Json iv = Json::object();
    iv["sum"]["start"] = static_cast<double>(i);
    iv["sum"]["end"] = static_cast<double>(i + 1);
    iv["sum"]["bits_per_second"] = interval_gbps[i] * 1e9;
    intervals.push_back(std::move(iv));
  }
  root["intervals"] = std::move(intervals);

  Json& end = root["end"];
  end["sum_sent"]["bits_per_second"] = sum_sent_gbps * 1e9;
  end["sum_received"]["bits_per_second"] = sum_received_gbps * 1e9;
  end["sum_sent"]["retransmits"] = retransmits;
  end["cpu_utilization_percent"]["host_total"] = sender_cpu_pct;
  end["cpu_utilization_percent"]["remote_total"] = receiver_cpu_pct;

  Json streams = Json::array();
  for (double g : per_stream_gbps) {
    Json s = Json::object();
    s["receiver"]["bits_per_second"] = g * 1e9;
    streams.push_back(std::move(s));
  }
  end["streams"] = std::move(streams);
  return root;
}

std::string IperfReport::summary_line() const {
  return strfmt("[SUM] %.1f Gbps received, %.0f retransmits, snd CPU %.0f%%, rcv CPU %.0f%%",
                sum_received_gbps, retransmits, sender_cpu_pct, receiver_cpu_pct);
}

}  // namespace dtnsim::app
