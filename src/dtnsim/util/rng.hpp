// Deterministic random number generation.
//
// xoshiro256** with splitmix64 seeding. Every simulation run owns one Rng;
// repeated runs of the same test use jump()-separated substreams so that the
// per-repeat variance (the paper's stddev whiskers) is reproducible.
#pragma once

#include <cstdint>

namespace dtnsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform01();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // true with probability p.
  bool bernoulli(double p);
  // Normal(mean, stddev) via Box-Muller (cached spare).
  double normal(double mean, double stddev);
  // Lognormal such that the *median* of the distribution is `median` and the
  // underlying normal has standard deviation `sigma`.
  double lognormal(double median, double sigma);
  // Exponential with given mean.
  double exponential(double mean);

  // Advance 2^128 steps: yields a non-overlapping substream. Returns a copy
  // positioned at the new substream and leaves *this untouched.
  [[nodiscard]] Rng substream(unsigned n) const;

 private:
  void jump();

  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace dtnsim
