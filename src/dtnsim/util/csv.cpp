#include "dtnsim/util/csv.hpp"

#include <fstream>

namespace dtnsim {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += escape(cells[i]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace dtnsim
