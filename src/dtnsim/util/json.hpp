// Minimal JSON document builder (write-only).
//
// iperf3 emits JSON with --json; the harness mirrors that. We only ever
// *produce* JSON, so this is a small value-tree with a serializer rather
// than a parser.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dtnsim {

class Json {
 public:
  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double d) : kind_(Kind::Number), num_(d) {}
  Json(int i) : kind_(Kind::Number), num_(i) {}
  Json(std::int64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json object();
  static Json array();

  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  // Object access; creates members on demand (object kind required).
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;

  // Array append.
  void push_back(Json v);
  std::size_t size() const;

  // Serialize; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  // std::map keeps key order deterministic for golden tests.
  std::map<std::string, Json> obj_;
};

}  // namespace dtnsim
