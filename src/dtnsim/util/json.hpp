// Minimal JSON document: builder, serializer and (since the sweep result
// cache) a parser.
//
// iperf3 emits JSON with --json; the harness mirrors that. The sweep
// subsystem additionally *reads* JSON back (content-addressed result cache,
// checkpoint manifests), so the value-tree carries a small recursive-descent
// parser and typed read accessors alongside the serializer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dtnsim {

class Json {
 public:
  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double d) : kind_(Kind::Number), num_(d) {}
  Json(int i) : kind_(Kind::Number), num_(i) {}
  Json(std::int64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json object();
  static Json array();

  // Parse one JSON document (trailing whitespace allowed, trailing garbage
  // rejected). Returns nullopt on malformed input — cache files are data we
  // wrote ourselves, but a truncated file from an interrupted run must load
  // as "miss", not crash.
  static std::optional<Json> parse(std::string_view text);

  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  // Typed reads with fallbacks (no exceptions; wrong kind -> fallback).
  double number_or(double fallback) const { return is_number() ? num_ : fallback; }
  bool bool_or(bool fallback) const { return is_bool() ? bool_ : fallback; }
  std::string string_or(std::string fallback) const {
    return is_string() ? str_ : std::move(fallback);
  }

  // Object access; creates members on demand (object kind required).
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  // Object member names in deterministic (sorted) order; empty for
  // non-objects. Golden tests diff this against a checked-in key list.
  std::vector<std::string> keys() const;
  // Chained convenience reads: find(key) with a typed fallback.
  double number_at(const std::string& key, double fallback) const;
  bool bool_at(const std::string& key, bool fallback) const;
  std::string string_at(const std::string& key, std::string fallback) const;

  // Array append / element access (nullptr when out of range or non-array).
  void push_back(Json v);
  const Json* at(std::size_t i) const;
  std::size_t size() const;

  // Serialize; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  // std::map keeps key order deterministic for golden tests.
  std::map<std::string, Json> obj_;
};

}  // namespace dtnsim
