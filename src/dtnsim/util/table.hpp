// ASCII / markdown table printer for bench output.
//
// Every bench binary prints the same rows the paper's tables and figures
// report; this keeps the formatting consistent and diffable.
#pragma once

#include <string>
#include <vector>

namespace dtnsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Horizontal separator before the next row.
  void add_separator();

  std::size_t rows() const { return rows_.size(); }

  // Fixed-width ASCII rendering.
  std::string to_ascii() const;
  // GitHub-flavoured markdown rendering.
  std::string to_markdown() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace dtnsim
