#include "dtnsim/util/log.hpp"

#include <cstdarg>
#include <cstdio>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::log {
namespace {

Level g_level = Level::Warn;

const char* level_name(Level level) {
  switch (level) {
    case Level::Debug:
      return "DEBUG";
    case Level::Info:
      return "INFO";
    case Level::Warn:
      return "WARN";
    case Level::Error:
      return "ERROR";
    case Level::Off:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level = level; }
Level level() { return g_level; }

void write(Level level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[dtnsim %s] %s\n", level_name(level), msg.c_str());
}

#define DTNSIM_LOG_IMPL(fn, lvl)                 \
  void fn(const char* fmt, ...) {                \
    if (lvl < g_level) return;                   \
    std::va_list args;                           \
    va_start(args, fmt);                         \
    write(lvl, vstrfmt(fmt, args));              \
    va_end(args);                                \
  }

DTNSIM_LOG_IMPL(debug, Level::Debug)
DTNSIM_LOG_IMPL(info, Level::Info)
DTNSIM_LOG_IMPL(warn, Level::Warn)
DTNSIM_LOG_IMPL(error, Level::Error)

#undef DTNSIM_LOG_IMPL

}  // namespace dtnsim::log
