#include "dtnsim/util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::log {
namespace {

// The level is process-wide and may be read from any worker thread while the
// main thread (or DTNSIM_LOG pickup) writes it; relaxed atomics suffice — a
// message racing a level change may use either level, never torn state.
std::atomic<Level> g_level{Level::Warn};
std::atomic<bool> g_env_checked{false};
std::once_flag g_env_once;
// Each engine binds the clock of the run *it* is driving; with the sweep
// worker pool several engines run concurrently, so the binding is per-thread.
thread_local TimeSource g_time_source;

// One-time DTNSIM_LOG pickup; an explicit set_level() also marks the env as
// consumed so callers always win over the environment.
void ensure_env_level() {
  if (g_env_checked.load(std::memory_order_relaxed)) return;
  std::call_once(g_env_once, [] {
    if (g_env_checked.exchange(true)) return;  // set_level() beat us to it
    const char* env = std::getenv("DTNSIM_LOG");
    if (!env || !*env) return;
    Level parsed;
    if (parse_level(env, &parsed)) {
      g_level.store(parsed, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr, "[dtnsim WARN] DTNSIM_LOG=%s not recognized "
                           "(debug|info|warn|error|off)\n", env);
    }
  });
}

const char* level_name(Level level) {
  switch (level) {
    case Level::Debug:
      return "DEBUG";
    case Level::Info:
      return "INFO";
    case Level::Warn:
      return "WARN";
    case Level::Error:
      return "ERROR";
    case Level::Off:
      return "OFF";
  }
  return "?";
}

}  // namespace

bool parse_level(const std::string& name, Level* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug") *out = Level::Debug;
  else if (lower == "info") *out = Level::Info;
  else if (lower == "warn" || lower == "warning") *out = Level::Warn;
  else if (lower == "error") *out = Level::Error;
  else if (lower == "off" || lower == "none") *out = Level::Off;
  else return false;
  return true;
}

void set_level(Level level) {
  g_env_checked.store(true, std::memory_order_relaxed);
  g_level.store(level, std::memory_order_relaxed);
}

Level level() {
  ensure_env_level();
  return g_level.load(std::memory_order_relaxed);
}

TimeSource bind_time_source(TimeSource source) {
  TimeSource previous = std::move(g_time_source);
  g_time_source = std::move(source);
  return previous;
}

void write(Level lvl, const std::string& msg) {
  if (lvl < level()) return;
  if (g_time_source) {
    std::fprintf(stderr, "[dtnsim %s t=%.6fs] %s\n", level_name(lvl),
                 units::to_seconds(g_time_source()), msg.c_str());
  } else {
    std::fprintf(stderr, "[dtnsim %s] %s\n", level_name(lvl), msg.c_str());
  }
}

#define DTNSIM_LOG_IMPL(fn, lvl)                 \
  void fn(const char* fmt, ...) {                \
    if (lvl < level()) return;                   \
    std::va_list args;                           \
    va_start(args, fmt);                         \
    write(lvl, vstrfmt(fmt, args));              \
    va_end(args);                                \
  }

DTNSIM_LOG_IMPL(debug, Level::Debug)
DTNSIM_LOG_IMPL(info, Level::Info)
DTNSIM_LOG_IMPL(warn, Level::Warn)
DTNSIM_LOG_IMPL(error, Level::Error)

#undef DTNSIM_LOG_IMPL

}  // namespace dtnsim::log
