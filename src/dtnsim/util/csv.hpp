// CSV emission for raw data release (the paper publishes all collected data;
// the harness can dump every repeat's measurements as CSV).
#pragma once

#include <string>
#include <vector>

namespace dtnsim {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  std::string str() const;
  // Write to file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dtnsim
