#include "dtnsim/util/strfmt.hpp"

#include <cstdio>
#include <vector>

namespace dtnsim {

std::string vstrfmt(const char* fmt, std::va_list args) {
  std::va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::string out = vstrfmt(fmt, args);
  va_end(args);
  return out;
}

}  // namespace dtnsim
