#include "dtnsim/util/units.hpp"

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::units {

std::string format_rate(double bps) {
  if (bps >= 1e9) return strfmt("%.2f Gbps", bps / 1e9);
  if (bps >= 1e6) return strfmt("%.2f Mbps", bps / 1e6);
  if (bps >= 1e3) return strfmt("%.2f Kbps", bps / 1e3);
  return strfmt("%.0f bps", bps);
}

std::string format_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0 * 1024.0)
    return strfmt("%.2f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
  if (bytes >= 1024.0 * 1024.0) return strfmt("%.2f MiB", bytes / (1024.0 * 1024.0));
  if (bytes >= 1024.0) return strfmt("%.2f KiB", bytes / 1024.0);
  return strfmt("%.0f B", bytes);
}

std::string format_time(Nanos t) {
  if (t >= kNanosPerSec) return strfmt("%.2f s", static_cast<double>(t) / 1e9);
  if (t >= 1'000'000) return strfmt("%.2f ms", static_cast<double>(t) / 1e6);
  if (t >= 1'000) return strfmt("%.2f us", static_cast<double>(t) / 1e3);
  return strfmt("%lld ns", static_cast<long long>(t));
}

}  // namespace dtnsim::units
