// Streaming and batch statistics used by the test harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace dtnsim {

// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance / stddev (n-1 denominator), 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Batch helpers over a vector of samples.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
// Linear-interpolated percentile, p in [0,100].
double percentile_of(std::vector<double> xs, double p);

}  // namespace dtnsim
