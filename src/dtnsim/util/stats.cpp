#include "dtnsim/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dtnsim {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double min_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.min();
}

double max_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.max();
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace dtnsim
