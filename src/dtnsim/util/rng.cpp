#include "dtnsim/util/rng.hpp"

#include <cmath>

namespace dtnsim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return mean + stddev * u * mul;
}

double Rng::lognormal(double median, double sigma) {
  return median * std::exp(normal(0.0, sigma));
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t j : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (j & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

Rng Rng::substream(unsigned n) const {
  Rng copy = *this;
  copy.has_spare_ = false;
  for (unsigned i = 0; i <= n; ++i) copy.jump();
  return copy;
}

}  // namespace dtnsim
