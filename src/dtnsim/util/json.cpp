#include "dtnsim/util/json.hpp"

#include <cmath>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) throw std::logic_error("Json: operator[] on non-object");
  return obj_[key];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) throw std::logic_error("Json: push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::Array:
      return arr_.size();
    case Kind::Object:
      return obj_.size();
    default:
      return 0;
  }
}

void Json::escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string();
  const std::string close_pad =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ')
          : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number: {
      if (std::isfinite(num_) && num_ == std::floor(num_) && std::fabs(num_) < 9.0e15) {
        out += strfmt("%lld", static_cast<long long>(num_));
      } else {
        out += strfmt("%.6g", num_);
      }
      break;
    }
    case Kind::String:
      escape_to(out, str_);
      break;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        out += nl;
        out += pad;
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) {
        out += nl;
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += nl;
        out += pad;
        escape_to(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) {
        out += nl;
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace dtnsim
