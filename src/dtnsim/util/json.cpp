#include "dtnsim/util/json.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) throw std::logic_error("Json: operator[] on non-object");
  return obj_[key];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::vector<std::string> Json::keys() const {
  std::vector<std::string> out;
  if (kind_ != Kind::Object) return out;
  out.reserve(obj_.size());
  for (const auto& kv : obj_) out.push_back(kv.first);
  return out;
}

double Json::number_at(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v ? v->number_or(fallback) : fallback;
}

bool Json::bool_at(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v ? v->bool_or(fallback) : fallback;
}

std::string Json::string_at(const std::string& key, std::string fallback) const {
  const Json* v = find(key);
  return v ? v->string_or(std::move(fallback)) : std::move(fallback);
}

const Json* Json::at(std::size_t i) const {
  if (kind_ != Kind::Array || i >= arr_.size()) return nullptr;
  return &arr_[i];
}

void Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) throw std::logic_error("Json: push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::Array:
      return arr_.size();
    case Kind::Object:
      return obj_.size();
    default:
      return 0;
  }
}

void Json::escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string();
  const std::string close_pad =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ')
          : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number: {
      if (std::isfinite(num_) && num_ == std::floor(num_) && std::fabs(num_) < 9.0e15) {
        out += strfmt("%lld", static_cast<long long>(num_));
      } else {
        // Shortest representation that parses back to the exact same double
        // — the sweep result cache requires dump/parse to round-trip
        // bit-identically (a cached cell must equal the simulated one).
        std::string text = strfmt("%.15g", num_);
        if (std::strtod(text.c_str(), nullptr) != num_) text = strfmt("%.17g", num_);
        out += text;
      }
      break;
    }
    case Kind::String:
      escape_to(out, str_);
      break;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        out += nl;
        out += pad;
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) {
        out += nl;
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += nl;
        out += pad;
        escape_to(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) {
        out += nl;
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser over a string_view cursor. Depth-limited so a
// hostile (or corrupted) deeply nested document cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(Json* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage rejects the document
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case 'n':
        return eat_word("null") && (*out = Json(), true);
      case 't':
        return eat_word("true") && (*out = Json(true), true);
      case 'f':
        return eat_word("false") && (*out = Json(false), true);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        *out = Json::array();
        skip_ws();
        if (eat(']')) return true;
        while (true) {
          Json elem;
          skip_ws();
          if (!parse_value(&elem, depth + 1)) return false;
          out->push_back(std::move(elem));
          skip_ws();
          if (eat(']')) return true;
          if (!eat(',')) return false;
        }
      }
      case '{': {
        ++pos_;
        *out = Json::object();
        skip_ws();
        if (eat('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!eat(':')) return false;
          skip_ws();
          if (!parse_value(&(*out)[key], depth + 1)) return false;
          skip_ws();
          if (eat('}')) return true;
          if (!eat(',')) return false;
        }
      }
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Json* out) {
    // Copy the token before strtod: the view need not be NUL-terminated.
    std::string token;
    std::size_t p = pos_;
    while (p < text_.size()) {
      const char c = text_[p];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        token += c;
        ++p;
      } else {
        break;
      }
    }
    if (token.empty()) return false;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    // JSON has no NaN/Infinity, and overflowing literals ("1e999") must not
    // smuggle one in: every number the cache reads back is finite.
    if (!std::isfinite(value)) return false;
    pos_ = p;
    *out = Json(value);
    return true;
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      c = text_[pos_++];
      switch (c) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return false;
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our serializer; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Json out;
  Parser p(text);
  if (!p.parse_document(&out)) return std::nullopt;
  return out;
}

}  // namespace dtnsim
