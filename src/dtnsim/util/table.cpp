#include "dtnsim/util/table.hpp"

#include <algorithm>

namespace dtnsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

std::string Table::to_ascii() const {
  const auto widths = column_widths();
  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };
  std::string out = hline() + line(headers_) + hline();
  for (const auto& row : rows_) {
    out += row.separator ? hline() : line(row.cells);
  }
  out += hline();
  return out;
}

std::string Table::to_markdown() const {
  const auto widths = column_widths();
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };
  std::string out = line(headers_);
  out += "|";
  for (auto w : widths) out += std::string(w + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) {
    if (!row.separator) out += line(row.cells);
  }
  return out;
}

}  // namespace dtnsim
