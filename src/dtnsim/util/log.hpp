// Leveled logging to stderr. Quiet by default so bench output stays clean.
//
// The level initializes from the DTNSIM_LOG environment variable on first
// use (debug | info | warn | error | off, case-insensitive); set_level()
// overrides it. When a simulation engine is running it binds a time source
// (see bind_time_source) and every message gains a "t=1.204s" prefix, so
// debug logs line up with probe samples and trace timestamps.
#pragma once

#include <functional>
#include <string>

#include "dtnsim/util/units.hpp"

namespace dtnsim::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_level(Level level);
Level level();

// Parse a DTNSIM_LOG-style name; returns false on garbage (level untouched).
bool parse_level(const std::string& name, Level* out);

// Bind/unbind the simulated-clock source used to prefix messages. The
// engine binds itself for the duration of run()/run_until(); nested runs
// restore the previous source. Returns the previously bound source.
// The binding is thread-local: each sweep worker's engine stamps only the
// messages emitted from its own thread, so concurrent runs never cross
// clocks (and never race on the binding).
using TimeSource = std::function<Nanos()>;
TimeSource bind_time_source(TimeSource source);

void write(Level level, const std::string& msg);

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void debug(const char* fmt, ...);
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void info(const char* fmt, ...);
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void warn(const char* fmt, ...);
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void error(const char* fmt, ...);

// RAII helper: binds a time source for a scope, restores the previous one.
class ScopedTimeSource {
 public:
  explicit ScopedTimeSource(TimeSource source)
      : previous_(bind_time_source(std::move(source))) {}
  ~ScopedTimeSource() { bind_time_source(std::move(previous_)); }
  ScopedTimeSource(const ScopedTimeSource&) = delete;
  ScopedTimeSource& operator=(const ScopedTimeSource&) = delete;

 private:
  TimeSource previous_;
};

}  // namespace dtnsim::log
