// Leveled logging to stderr. Quiet by default so bench output stays clean.
#pragma once

#include <string>

namespace dtnsim::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_level(Level level);
Level level();

void write(Level level, const std::string& msg);

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void debug(const char* fmt, ...);
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void info(const char* fmt, ...);
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void warn(const char* fmt, ...);
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
void error(const char* fmt, ...);

}  // namespace dtnsim::log
