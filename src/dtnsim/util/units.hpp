// Units used throughout dtnsim.
//
// Conventions (chosen once, applied everywhere):
//   - simulated time    : Nanos (int64_t nanoseconds) for the event engine,
//                         double seconds for fluid-rate math inside a tick
//   - data rates        : double, bits per second
//   - data sizes        : double or std::uint64_t, bytes
//   - CPU               : double, cycles (per second budgets, per op costs)
#pragma once

#include <cstdint>
#include <string>

namespace dtnsim {

using Nanos = std::int64_t;

namespace units {

// --- time -------------------------------------------------------------
inline constexpr Nanos kNanosPerSec = 1'000'000'000;

constexpr Nanos seconds(double s) { return static_cast<Nanos>(s * 1e9); }
constexpr Nanos millis(double ms) { return static_cast<Nanos>(ms * 1e6); }
constexpr Nanos micros(double us) { return static_cast<Nanos>(us * 1e3); }
constexpr double to_seconds(Nanos t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(Nanos t) { return static_cast<double>(t) / 1e6; }

// --- rates (bits per second) -------------------------------------------
constexpr double gbps(double g) { return g * 1e9; }
constexpr double mbps(double m) { return m * 1e6; }
constexpr double kbps(double k) { return k * 1e3; }
constexpr double to_gbps(double bps) { return bps / 1e9; }

// --- sizes (bytes) ------------------------------------------------------
constexpr double kib(double k) { return k * 1024.0; }
constexpr double mib(double m) { return m * 1024.0 * 1024.0; }
constexpr double gib(double g) { return g * 1024.0 * 1024.0 * 1024.0; }

// Bytes transferred in `t` at `bps` bits/second.
constexpr double bytes_at(double bps, double t_sec) { return bps * t_sec / 8.0; }
// Rate that transfers `bytes` in `t_sec` seconds.
constexpr double rate_of(double bytes, double t_sec) {
  return t_sec > 0 ? bytes * 8.0 / t_sec : 0.0;
}

// Human-readable formatting ("42.1 Gbps", "104 ms", "3.25 MB").
std::string format_rate(double bps);
std::string format_bytes(double bytes);
std::string format_time(Nanos t);

}  // namespace units
}  // namespace dtnsim
