// Forwarding header: the units layer moved to dtnsim/units/units.hpp when
// it grew strong types (Bytes, Bits, Packets, Cycles, SimTime, Rate).
// Existing includes keep working; new code should include the real header.
#pragma once

#include "dtnsim/units/units.hpp"
