// Minimal printf-style formatting into std::string.
#pragma once

#include <cstdarg>
#include <string>

namespace dtnsim {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string strfmt(const char* fmt, ...);

std::string vstrfmt(const char* fmt, std::va_list args);

}  // namespace dtnsim
