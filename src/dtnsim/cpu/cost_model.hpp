// Cycle-cost model of the Linux network TX/RX paths.
//
// All throughput ceilings in the paper are cycle budgets: the receiver's
// copy_to_user loop, the sender's copy_from_user + protocol work, IRQ/GRO
// handling, and (for MSG_ZEROCOPY) page pinning and completion processing.
// This model prices each primitive in CPU cycles per byte or per packet,
// scaled by
//   - a vendor profile (AVX-512 lowers per-byte copy/checksum cost — the
//     paper's Intel-vs-AMD single-stream gap),
//   - a kernel stack-efficiency factor (the 5.15 -> 6.5 -> 6.8 gains),
//   - placement penalties (irqbalance / wrong NUMA node),
//   - a virtualization factor (bare metal vs tuned/untuned VM),
//   - a cache-pressure multiplier that inflates per-byte sender costs when
//     the in-flight window exceeds the flow's effective L3 window (why WAN
//     default sends are sender-CPU-bound while LAN sends are not).
//
// Calibration anchors (see DESIGN.md §3 and harness/calibration.hpp):
// Intel 6.8 LAN default 55 Gbps RX-bound, AMD 42 Gbps; Intel WAN default
// ~37 Gbps TX-bound, AMD ~23 Gbps; zerocopy sender ~0.19 cyc/B vs ~0.45
// copy path; BIG TCP +16% when RX-aggregate-bound.
#pragma once

#include "dtnsim/cpu/affinity.hpp"
#include "dtnsim/cpu/spec.hpp"

namespace dtnsim::cpu {

struct CostModelOptions {
  double stack_factor = 1.0;   // kernel-version efficiency (1.0 = Linux 6.8)
  bool iommu_passthrough = true;
  PlacementQuality placement;  // defaults to the tuned placement
  double virt_factor = 1.0;    // 1.0 bare metal; >1 inside a VM
};

struct TxPathConfig {
  double gso_bytes = 65536.0;        // effective super-packet size
  double mtu_bytes = 9000.0;
  double zc_fraction = 0.0;          // payload fraction sent zerocopy
  double zc_fallback_fraction = 0.0; // attempted zerocopy, copied instead
  double cache_mult = 1.0;           // from cache_pressure_mult()
};

struct RxPathConfig {
  double gro_bytes = 65536.0;  // aggregate size delivered per recv
  double mtu_bytes = 9000.0;
  bool copy_to_user = true;    // false under --skip-rx-copy (MSG_TRUNC)
  bool hw_gro = false;         // ConnectX-7 SHAMPO offload (Linux 6.11+)
};

class CostModel {
 public:
  CostModel(const CpuSpec& spec, const CostModelOptions& opts);

  // Sender-side cycles per payload byte on the app core (copy/pin, protocol,
  // per-super-packet amortized costs, zerocopy completions).
  double tx_app_cyc_per_byte(const TxPathConfig& cfg) const;
  // Sender-side cycles per payload byte on the IRQ cores (segmentation
  // residue, DMA mapping, TX completions).
  double tx_irq_cyc_per_byte(const TxPathConfig& cfg) const;
  // Memory-bus bytes moved per payload byte on the sender.
  double tx_mem_passes(const TxPathConfig& cfg) const;

  double rx_app_cyc_per_byte(const RxPathConfig& cfg) const;
  double rx_irq_cyc_per_byte(const RxPathConfig& cfg) const;
  double rx_mem_passes(const RxPathConfig& cfg) const;

  // Multiplier (>= 1) applied to sender per-byte copy costs as the in-flight
  // window outgrows the flow's effective L3 window.
  double cache_pressure_mult(double inflight_bytes) const;

  // Host-wide DMA throughput ceiling in bits/s; infinite under iommu=pt.
  // Without passthrough, IOTLB pressure and mapping-lock contention cap
  // aggregate DMA (the paper's 80 -> 181 Gbps iommu=pt observation).
  double dma_throughput_cap_bps() const;

  const CpuSpec& spec() const { return spec_; }
  const CostModelOptions& options() const { return opts_; }

  // Raw constants (exposed for tests and docs).
  double copy_tx_cyc_per_byte() const { return copy_tx_; }
  double copy_rx_cyc_per_byte() const { return copy_rx_; }
  double zc_pin_cyc_per_page() const { return zc_pin_per_page_; }

 private:
  double scaled(double cycles) const;  // stack_factor * virt_factor applied

  CpuSpec spec_;
  CostModelOptions opts_;

  // Vendor-dependent per-byte costs (cycles/byte, unscaled).
  double copy_tx_ = 0.33;
  double copy_rx_ = 0.39;
  double zc_pin_per_page_ = 230.0;
  double cache_sat_ = 1.15;
};

}  // namespace dtnsim::cpu
