// Cycle-cost model of the Linux network TX/RX paths.
//
// All throughput ceilings in the paper are cycle budgets: the receiver's
// copy_to_user loop, the sender's copy_from_user + protocol work, IRQ/GRO
// handling, and (for MSG_ZEROCOPY) page pinning and completion processing.
// This model prices each primitive in CPU cycles per byte or per packet,
// scaled by
//   - a vendor profile (AVX-512 lowers per-byte copy/checksum cost — the
//     paper's Intel-vs-AMD single-stream gap),
//   - a kernel stack-efficiency factor (the 5.15 -> 6.5 -> 6.8 gains),
//   - placement penalties (irqbalance / wrong NUMA node),
//   - a virtualization factor (bare metal vs tuned/untuned VM),
//   - a cache-pressure multiplier that inflates per-byte sender costs when
//     the in-flight window exceeds the flow's effective L3 window (why WAN
//     default sends are sender-CPU-bound while LAN sends are not).
//
// Calibration anchors (see DESIGN.md §3 and harness/calibration.hpp):
// Intel 6.8 LAN default 55 Gbps RX-bound, AMD 42 Gbps; Intel WAN default
// ~37 Gbps TX-bound, AMD ~23 Gbps; zerocopy sender ~0.19 cyc/B vs ~0.45
// copy path; BIG TCP +16% when RX-aggregate-bound.
#pragma once

#include "dtnsim/cpu/affinity.hpp"
#include "dtnsim/cpu/spec.hpp"

namespace dtnsim::cpu {

struct CostModelOptions {
  double stack_factor = 1.0;   // kernel-version efficiency (1.0 = Linux 6.8)
  bool iommu_passthrough = true;
  PlacementQuality placement;  // defaults to the tuned placement
  double virt_factor = 1.0;    // 1.0 bare metal; >1 inside a VM
};

struct TxPathConfig {
  double gso_bytes = 65536.0;        // effective super-packet size
  double mtu_bytes = 9000.0;
  double zc_fraction = 0.0;          // payload fraction sent zerocopy
  double zc_fallback_fraction = 0.0; // attempted zerocopy, copied instead
  double cache_mult = 1.0;           // from cache_pressure_mult()
};

struct RxPathConfig {
  double gro_bytes = 65536.0;  // aggregate size delivered per recv
  double mtu_bytes = 9000.0;
  bool copy_to_user = true;    // false under --skip-rx-copy (MSG_TRUNC)
  bool hw_gro = false;         // ConnectX-7 SHAMPO offload (Linux 6.11+)
};

// ---- per-stage decompositions (the dtnsim-perf attribution surface) -------
// Each struct splits the matching *_cyc_per_byte scalar into the model's
// constituent terms, every field fully scaled (stack/virt/placement) so the
// fields sum back to the scalar up to fp rounding — the identity
// obs::cross_check_stage_sum enforces. Field comments name the kernel symbol
// each term stands in for (docs/OBSERVABILITY.md has the full table).

struct TxAppStageCyc {
  double syscall = 0.0;      // tcp_sendmsg_locked (per-GSO-skb, amortized)
  double proto = 0.0;        // tcp_write_xmit per-byte bookkeeping
  double user_copy = 0.0;    // copy_user_enhanced_fast_string
  double zc_pin = 0.0;       // zerocopy_sg_from_iter page pinning
  double zc_notify = 0.0;    // msg_zerocopy_callback completions
  double zc_fallback = 0.0;  // skb_zerocopy_iter_stream copied fallback
  double total() const {
    return syscall + proto + user_copy + zc_pin + zc_notify + zc_fallback;
  }
};

struct TxIrqStageCyc {
  double gso_segment = 0.0;  // tcp_gso_segment post-TSO residue
  double dma_map = 0.0;      // dma_map_page_attrs + doorbell
  double completion = 0.0;   // skb_release_data TX-completion work
  double total() const { return gso_segment + dma_map + completion; }
};

struct RxAppStageCyc {
  double syscall = 0.0;    // tcp_recvmsg + sock_def_readable per aggregate
  double frag_walk = 0.0;  // skb frag walk + cmsg per wire segment
  double copyout = 0.0;    // skb_copy_datagram_iter (0 under MSG_TRUNC)
  double total() const { return syscall + frag_walk + copyout; }
};

struct RxIrqStageCyc {
  double skb_alloc = 0.0;  // mlx5e_skb_from_cqe + dma_unmap per packet
  double gro_merge = 0.0;  // gro_receive per-packet coalescing
  double agg_flush = 0.0;  // napi_gro_flush per-aggregate delivery
  double csum = 0.0;       // csum_partial / TCP validation per byte
  double total() const { return skb_alloc + gro_merge + agg_flush + csum; }
};

class CostModel {
 public:
  CostModel(const CpuSpec& spec, const CostModelOptions& opts);

  // Sender-side cycles per payload byte on the app core (copy/pin, protocol,
  // per-super-packet amortized costs, zerocopy completions).
  double tx_app_cyc_per_byte(const TxPathConfig& cfg) const;
  // Sender-side cycles per payload byte on the IRQ cores (segmentation
  // residue, DMA mapping, TX completions).
  double tx_irq_cyc_per_byte(const TxPathConfig& cfg) const;
  // Memory-bus bytes moved per payload byte on the sender.
  double tx_mem_passes(const TxPathConfig& cfg) const;

  double rx_app_cyc_per_byte(const RxPathConfig& cfg) const;
  double rx_irq_cyc_per_byte(const RxPathConfig& cfg) const;
  double rx_mem_passes(const RxPathConfig& cfg) const;

  // Per-stage splits of the four scalars above (cycles per payload byte,
  // fully scaled). total() matches the scalar to fp rounding.
  TxAppStageCyc tx_app_stage_cyc(const TxPathConfig& cfg) const;
  TxIrqStageCyc tx_irq_stage_cyc(const TxPathConfig& cfg) const;
  RxAppStageCyc rx_app_stage_cyc(const RxPathConfig& cfg) const;
  RxIrqStageCyc rx_irq_stage_cyc(const RxPathConfig& cfg) const;

  // Multiplier (>= 1) applied to sender per-byte copy costs as the in-flight
  // window outgrows the flow's effective L3 window.
  double cache_pressure_mult(double inflight_bytes) const;

  // Host-wide DMA throughput ceiling in bits/s; infinite under iommu=pt.
  // Without passthrough, IOTLB pressure and mapping-lock contention cap
  // aggregate DMA (the paper's 80 -> 181 Gbps iommu=pt observation).
  double dma_throughput_cap_bps() const;

  const CpuSpec& spec() const { return spec_; }
  const CostModelOptions& options() const { return opts_; }

  // Raw constants (exposed for tests and docs).
  double copy_tx_cyc_per_byte() const { return copy_tx_; }
  double copy_rx_cyc_per_byte() const { return copy_rx_; }
  double zc_pin_cyc_per_page() const { return zc_pin_per_page_; }

 private:
  double scaled(double cycles) const;  // stack_factor * virt_factor applied

  CpuSpec spec_;
  CostModelOptions opts_;

  // Vendor-dependent per-byte costs (cycles/byte, unscaled).
  double copy_tx_ = 0.33;
  double copy_rx_ = 0.39;
  double zc_pin_per_page_ = 230.0;
  double cache_sat_ = 1.15;
};

}  // namespace dtnsim::cpu
