#include "dtnsim/cpu/affinity.hpp"

#include <algorithm>

namespace dtnsim::cpu {

double PlacementQuality::app_cost_mult() const {
  double m = 1.0;
  // Remote-NUMA app core: every payload byte crosses the socket interconnect.
  if (!app_numa_local) m *= 1.45;
  // App thread sharing a core with NIC interrupts: context-switch and cache
  // thrash between softirq and the copy loop.
  if (!irq_separated) m *= 1.55;
  return m;
}

double PlacementQuality::irq_cost_mult() const {
  double m = 1.0;
  if (!irq_numa_local) m *= 1.30;
  return m;
}

Placement tuned_placement(const Topology& topo, int streams, int nic_numa) {
  Placement p;
  p.nic_numa_node = nic_numa;
  const auto local = topo.cores_on_numa(nic_numa);
  // First 8 local cores take IRQs, the following cores take app threads —
  // mirroring `set_irq_affinity_cpulist.sh 0-7` + `numactl -C 8-15`.
  const std::size_t irq_count = std::min<std::size_t>(8, local.size() / 2);
  p.irq_cores.assign(local.begin(), local.begin() + static_cast<std::ptrdiff_t>(irq_count));
  for (std::size_t i = irq_count; i < local.size() && p.app_cores.size() < static_cast<std::size_t>(streams);
       ++i) {
    p.app_cores.push_back(local[i]);
  }
  // More streams than local cores: reuse local app cores round-robin rather
  // than spilling to the remote node (iperf3 threads share cores).
  while (p.app_cores.size() < static_cast<std::size_t>(streams) && !p.app_cores.empty()) {
    p.app_cores.push_back(p.app_cores[p.app_cores.size() % irq_count]);
  }
  return p;
}

Placement irqbalance_placement(const Topology& topo, int streams, int nic_numa, Rng& rng) {
  Placement p;
  p.nic_numa_node = nic_numa;
  const int n = topo.num_cores();
  // irqbalance spreads NIC queue interrupts over all cores.
  for (int i = 0; i < 8; ++i) {
    p.irq_cores.push_back(static_cast<int>(rng.uniform_int(0, n - 1)));
  }
  std::sort(p.irq_cores.begin(), p.irq_cores.end());
  p.irq_cores.erase(std::unique(p.irq_cores.begin(), p.irq_cores.end()), p.irq_cores.end());
  // The scheduler picks arbitrary cores for the app threads.
  for (int i = 0; i < streams; ++i) {
    p.app_cores.push_back(static_cast<int>(rng.uniform_int(0, n - 1)));
  }
  return p;
}

PlacementQuality assess_placement(const Topology& topo, const Placement& p) {
  PlacementQuality q;
  q.app_numa_local = std::all_of(p.app_cores.begin(), p.app_cores.end(), [&](int c) {
    return topo.core(c).numa_node == p.nic_numa_node;
  });
  q.irq_numa_local = std::all_of(p.irq_cores.begin(), p.irq_cores.end(), [&](int c) {
    return topo.core(c).numa_node == p.nic_numa_node;
  });
  q.irq_separated = std::none_of(p.app_cores.begin(), p.app_cores.end(), [&](int a) {
    return std::find(p.irq_cores.begin(), p.irq_cores.end(), a) != p.irq_cores.end();
  });
  return q;
}

}  // namespace dtnsim::cpu
