// IRQ / application core placement.
//
// The paper found single-flow throughput varying from 20 to 55 Gbps on the
// same hardware depending on scheduler/irqbalance placement, and fixed it
// with `set_irq_affinity_cpulist.sh 0-7 ethN` plus `numactl -C 8-15 iperf3`.
// A Placement captures one concrete assignment; PlacementQuality condenses
// it into the penalty factors the cost model consumes.
#pragma once

#include <vector>

#include "dtnsim/cpu/topology.hpp"
#include "dtnsim/util/rng.hpp"

namespace dtnsim::cpu {

struct Placement {
  std::vector<int> irq_cores;  // cores receiving NIC interrupts
  std::vector<int> app_cores;  // cores running the traffic tool's threads
  int nic_numa_node = 0;       // NUMA node the NIC is attached to
};

struct PlacementQuality {
  // App threads run on the NIC's NUMA node (memory and DMA locality).
  bool app_numa_local = true;
  // IRQ handling does not share cores with app threads.
  bool irq_separated = true;
  // IRQs land on the NIC's NUMA node.
  bool irq_numa_local = true;

  // Multipliers applied to per-byte costs (>= 1.0).
  double app_cost_mult() const;
  double irq_cost_mult() const;
};

// The tuned placement from the paper: IRQs on cores 0-7, app on 8-15, all on
// the NIC's NUMA node. `streams` app cores are used (one per iperf3 thread).
Placement tuned_placement(const Topology& topo, int streams = 1, int nic_numa = 0);

// The untuned case: irqbalance spreads IRQs and the scheduler places app
// threads anywhere. Placement is sampled per run, which reproduces the
// 20-55 Gbps variability.
Placement irqbalance_placement(const Topology& topo, int streams, int nic_numa, Rng& rng);

PlacementQuality assess_placement(const Topology& topo, const Placement& p);

}  // namespace dtnsim::cpu
