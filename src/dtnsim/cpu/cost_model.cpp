#include "dtnsim/cpu/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dtnsim::cpu {
namespace {

// Protocol / stack constants (cycles, calibrated — see DESIGN.md §3).
constexpr double kTxProtoPerByte = 0.05;       // tcp_sendmsg bookkeeping per byte
constexpr double kTxPerSuperPkt = 6500.0;      // per-GSO-skb protocol + qdisc + doorbell
constexpr double kTxPerMtuSeg = 15.0;          // post-TSO per-segment residue (IRQ side)
constexpr double kTxCompletionPerSuperPkt = 800.0;  // TX completion IRQ work

constexpr double kRxProtoPerByte = 0.06;       // softirq TCP/IP per byte (IRQ side)
constexpr double kRxPerAggregateApp = 8100.0;  // recv syscall + tcp read per GRO skb
constexpr double kRxPerAggregateIrq = 2500.0;  // napi + gro flush per aggregate
constexpr double kRxPerMtuPkt = 25.0;          // per-MTU-packet GRO merge test
constexpr double kHwGroPerMtuPkt = 4.0;        // SHAMPO does the merge in hardware
// App-side per-wire-segment residue (skb frag walks, cmsg assembly): this is
// what makes a 1500 B MTU so expensive (paper §V-C: 24 vs 62 Gbps) and what
// SHAMPO's header-data split mostly eliminates.
constexpr double kRxPerMtuPktApp = 900.0;
constexpr double kHwGroPerMtuPktApp = 135.0;
// Header-data split side effects on the app path (page-aligned payload).
constexpr double kHwGroCopyFactor = 0.90;
constexpr double kHwGroAggregateFactor = 0.80;

constexpr double kZcCompletionPerSuperPkt = 1200.0;  // error-queue notification
constexpr double kZcFallbackExtraPerByte = 0.08;     // failed pin + copy bookkeeping

constexpr double kDmaMapPtPerMtuPkt = 40.0;    // iommu=pt: identity map
constexpr double kDmaMapStrictPerMtuPkt = 900.0;  // per-packet map/unmap + IOTLB

constexpr double kPageBytes = 4096.0;

// Memory passes per payload byte: copy paths touch the payload on the CPU
// (read + write) in addition to the DMA pass; newer kernels shave passes
// ("memory bandwidth reduction" — paper §II-A).
constexpr double kMemPassesZc = 1.3;

}  // namespace

CostModel::CostModel(const CpuSpec& spec, const CostModelOptions& opts)
    : spec_(spec), opts_(opts) {
  switch (spec.vendor) {
    case Vendor::Intel:
      // AVX-512 copy/checksum paths (paper attributes the Intel single-stream
      // advantage to AVX-512 and the L3 architecture).
      copy_tx_ = spec.avx512 ? 0.33 : 0.44;
      copy_rx_ = spec.avx512 ? 0.29 : 0.41;
      zc_pin_per_page_ = 230.0;
      cache_sat_ = 1.00;
      break;
    case Vendor::Amd:
      copy_tx_ = 0.58;
      copy_rx_ = 0.54;
      zc_pin_per_page_ = 260.0;
      cache_sat_ = 1.40;
      break;
    case Vendor::Generic:
      copy_tx_ = 0.45;
      copy_rx_ = 0.44;
      zc_pin_per_page_ = 250.0;
      cache_sat_ = 1.25;
      break;
  }
}

double CostModel::scaled(double cycles) const {
  return cycles * opts_.stack_factor * opts_.virt_factor;
}

double CostModel::tx_app_cyc_per_byte(const TxPathConfig& cfg) const {
  const double copy_frac =
      std::clamp(1.0 - cfg.zc_fraction, 0.0, 1.0);
  const double zc_frac = std::clamp(cfg.zc_fraction - cfg.zc_fallback_fraction, 0.0, 1.0);
  const double fb_frac = std::clamp(cfg.zc_fallback_fraction, 0.0, 1.0);

  double per_byte = kTxProtoPerByte + kTxPerSuperPkt / std::max(cfg.gso_bytes, 1.0);
  // Copied bytes pay the (cache-pressure-inflated) copy cost. Zerocopy bytes
  // pay page pinning instead and never touch the payload.
  per_byte += copy_frac * copy_tx_ * std::max(cfg.cache_mult, 1.0);
  per_byte += zc_frac * (zc_pin_per_page_ / kPageBytes +
                         kZcCompletionPerSuperPkt / std::max(cfg.gso_bytes, 1.0));
  // Fallback bytes attempted zerocopy, failed the optmem charge and were
  // copied anyway — strictly worse than the plain copy path.
  per_byte += fb_frac * (copy_tx_ * std::max(cfg.cache_mult, 1.0) + kZcFallbackExtraPerByte);

  return scaled(per_byte) * opts_.placement.app_cost_mult();
}

double CostModel::tx_irq_cyc_per_byte(const TxPathConfig& cfg) const {
  const double per_byte =
      kTxPerMtuSeg / std::max(cfg.mtu_bytes, 1.0) +
      (opts_.iommu_passthrough ? kDmaMapPtPerMtuPkt : kDmaMapStrictPerMtuPkt) /
          std::max(cfg.mtu_bytes, 1.0) +
      kTxCompletionPerSuperPkt / std::max(cfg.gso_bytes, 1.0);
  return scaled(per_byte) * opts_.placement.irq_cost_mult();
}

double CostModel::tx_mem_passes(const TxPathConfig& cfg) const {
  const double copy_passes = 1.6 + opts_.stack_factor;  // DMA + CPU read/write
  const double copy_frac = std::clamp(1.0 - cfg.zc_fraction + cfg.zc_fallback_fraction, 0.0, 1.0);
  return copy_frac * copy_passes + (1.0 - copy_frac) * kMemPassesZc;
}

double CostModel::rx_app_cyc_per_byte(const RxPathConfig& cfg) const {
  const double mss = std::max(cfg.mtu_bytes - 40.0, 1.0);
  double per_byte = (cfg.hw_gro ? kRxPerAggregateApp * kHwGroAggregateFactor
                                : kRxPerAggregateApp) /
                    std::max(cfg.gro_bytes, 1.0);
  if (cfg.copy_to_user) {
    // MSG_TRUNC skips both the copy and the frag-walk of the aggregate.
    per_byte += (cfg.hw_gro ? kHwGroPerMtuPktApp : kRxPerMtuPktApp) / mss;
    per_byte += copy_rx_ * (cfg.hw_gro ? kHwGroCopyFactor : 1.0);
  }
  return scaled(per_byte) * opts_.placement.app_cost_mult();
}

double CostModel::rx_irq_cyc_per_byte(const RxPathConfig& cfg) const {
  const double per_pkt = cfg.hw_gro ? kHwGroPerMtuPkt : kRxPerMtuPkt;
  const double per_byte =
      kRxProtoPerByte + per_pkt / std::max(cfg.mtu_bytes, 1.0) +
      kRxPerAggregateIrq / std::max(cfg.gro_bytes, 1.0) +
      (opts_.iommu_passthrough ? kDmaMapPtPerMtuPkt : kDmaMapStrictPerMtuPkt) /
          std::max(cfg.mtu_bytes, 1.0);
  return scaled(per_byte) * opts_.placement.irq_cost_mult();
}

TxAppStageCyc CostModel::tx_app_stage_cyc(const TxPathConfig& cfg) const {
  // Term-for-term mirror of tx_app_cyc_per_byte: the same fractions and
  // constants, each term scaled and placement-weighted individually so the
  // stages sum back to the scalar to fp rounding.
  const double copy_frac = std::clamp(1.0 - cfg.zc_fraction, 0.0, 1.0);
  const double zc_frac = std::clamp(cfg.zc_fraction - cfg.zc_fallback_fraction, 0.0, 1.0);
  const double fb_frac = std::clamp(cfg.zc_fallback_fraction, 0.0, 1.0);
  const double mult = opts_.placement.app_cost_mult();

  TxAppStageCyc s;
  s.proto = scaled(kTxProtoPerByte) * mult;
  s.syscall = scaled(kTxPerSuperPkt / std::max(cfg.gso_bytes, 1.0)) * mult;
  s.user_copy = scaled(copy_frac * copy_tx_ * std::max(cfg.cache_mult, 1.0)) * mult;
  s.zc_pin = scaled(zc_frac * zc_pin_per_page_ / kPageBytes) * mult;
  s.zc_notify =
      scaled(zc_frac * kZcCompletionPerSuperPkt / std::max(cfg.gso_bytes, 1.0)) * mult;
  s.zc_fallback =
      scaled(fb_frac *
             (copy_tx_ * std::max(cfg.cache_mult, 1.0) + kZcFallbackExtraPerByte)) *
      mult;
  return s;
}

TxIrqStageCyc CostModel::tx_irq_stage_cyc(const TxPathConfig& cfg) const {
  const double mult = opts_.placement.irq_cost_mult();
  TxIrqStageCyc s;
  s.gso_segment = scaled(kTxPerMtuSeg / std::max(cfg.mtu_bytes, 1.0)) * mult;
  s.dma_map =
      scaled((opts_.iommu_passthrough ? kDmaMapPtPerMtuPkt : kDmaMapStrictPerMtuPkt) /
             std::max(cfg.mtu_bytes, 1.0)) *
      mult;
  s.completion = scaled(kTxCompletionPerSuperPkt / std::max(cfg.gso_bytes, 1.0)) * mult;
  return s;
}

RxAppStageCyc CostModel::rx_app_stage_cyc(const RxPathConfig& cfg) const {
  const double mss = std::max(cfg.mtu_bytes - 40.0, 1.0);
  const double mult = opts_.placement.app_cost_mult();
  RxAppStageCyc s;
  s.syscall = scaled((cfg.hw_gro ? kRxPerAggregateApp * kHwGroAggregateFactor
                                 : kRxPerAggregateApp) /
                     std::max(cfg.gro_bytes, 1.0)) *
              mult;
  if (cfg.copy_to_user) {
    s.frag_walk =
        scaled((cfg.hw_gro ? kHwGroPerMtuPktApp : kRxPerMtuPktApp) / mss) * mult;
    s.copyout = scaled(copy_rx_ * (cfg.hw_gro ? kHwGroCopyFactor : 1.0)) * mult;
  }
  return s;
}

RxIrqStageCyc CostModel::rx_irq_stage_cyc(const RxPathConfig& cfg) const {
  const double per_pkt = cfg.hw_gro ? kHwGroPerMtuPkt : kRxPerMtuPkt;
  const double mult = opts_.placement.irq_cost_mult();
  RxIrqStageCyc s;
  s.csum = scaled(kRxProtoPerByte) * mult;
  s.gro_merge = scaled(per_pkt / std::max(cfg.mtu_bytes, 1.0)) * mult;
  s.agg_flush = scaled(kRxPerAggregateIrq / std::max(cfg.gro_bytes, 1.0)) * mult;
  s.skb_alloc =
      scaled((opts_.iommu_passthrough ? kDmaMapPtPerMtuPkt : kDmaMapStrictPerMtuPkt) /
             std::max(cfg.mtu_bytes, 1.0)) *
      mult;
  return s;
}

double CostModel::rx_mem_passes(const RxPathConfig& cfg) const {
  const double copy_passes = 1.6 + opts_.stack_factor;
  return cfg.copy_to_user ? copy_passes : kMemPassesZc;
}

double CostModel::cache_pressure_mult(double inflight_bytes) const {
  const double window = std::max(spec_.l3_flow_window_bytes, 1.0);
  const double x = std::max(inflight_bytes, 0.0) / window;
  return 1.0 + cache_sat_ * x / (x + 1.0);
}

double CostModel::dma_throughput_cap_bps() const {
  if (opts_.iommu_passthrough) return std::numeric_limits<double>::infinity();
  // IOTLB thrash + mapping-lock contention: an aggregate ceiling, calibrated
  // to the paper's 80 Gbps (8 streams, AMD, 5.15, no iommu=pt).
  return 80e9 / opts_.stack_factor * (spec_.vendor == Vendor::Intel ? 1.15 : 1.0);
}

}  // namespace dtnsim::cpu
