// CPU specifications and vendor profiles.
//
// The paper compares Intel Xeon 6346 (AmLight) against AMD EPYC 73F3 (ESnet)
// hosts and attributes the single-stream gap to AVX-512 support and L3 cache
// architecture. Those two hardware properties are first-class here: AVX-512
// lowers the per-byte copy/checksum cost, and the per-flow effective L3
// window drives the cache-pressure multiplier on large in-flight windows.
#pragma once

#include <string>

#include "dtnsim/util/units.hpp"

namespace dtnsim::cpu {

enum class Vendor { Intel, Amd, Generic };

const char* vendor_name(Vendor v);

struct CpuSpec {
  std::string model;
  Vendor vendor = Vendor::Generic;
  int sockets = 2;
  int cores_per_socket = 16;
  int numa_nodes = 2;
  int smt_threads = 2;  // hardware threads per core when SMT is on
  double base_ghz = 3.0;
  double max_ghz = 3.5;
  bool avx512 = false;
  // Full L3 per socket.
  double l3_per_socket_bytes = 32.0 * 1024 * 1024;
  // Effective cache window one flow's TCP state enjoys before the in-flight
  // window spills and per-byte costs inflate. Intel's monolithic L3 gives a
  // larger window than AMD's per-CCX slices (paper: "very different L3 cache
  // architecture, which might contribute to the difference").
  double l3_flow_window_bytes = 32.0 * 1024 * 1024;
  // Memory bandwidth usable by the network stack (bytes/s). The 6.x kernels
  // reduce the number of memory passes per payload byte; the budget itself is
  // a hardware property.
  double stack_mem_bw_bytes = 60e9;

  int total_cores() const { return sockets * cores_per_socket; }
  double core_hz(bool performance_governor) const {
    return (performance_governor ? max_ghz : base_ghz) * 1e9;
  }
};

// AmLight sender/receiver hosts: dual-socket Intel Xeon 6346,
// 3.1/3.6 GHz, AVX-512, 36 MB monolithic L3 per socket.
CpuSpec intel_xeon_6346();

// ESnet testbed hosts: dual-socket AMD EPYC 73F3, 3.5/4.0 GHz, no AVX-512,
// 256 MB L3 per socket in 32 MB CCX slices.
CpuSpec amd_epyc_73f3();

// A small generic part for unit tests.
CpuSpec generic_cpu(int cores = 8, double ghz = 3.0);

}  // namespace dtnsim::cpu
