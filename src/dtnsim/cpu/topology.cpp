#include "dtnsim/cpu/topology.hpp"

namespace dtnsim::cpu {

Topology::Topology(const CpuSpec& spec) : spec_(spec) {
  cores_.reserve(static_cast<std::size_t>(spec.total_cores()));
  const int numa_per_socket = spec.numa_nodes / spec.sockets > 0 ? spec.numa_nodes / spec.sockets : 1;
  for (int s = 0; s < spec.sockets; ++s) {
    for (int c = 0; c < spec.cores_per_socket; ++c) {
      const int id = s * spec.cores_per_socket + c;
      // Cores within a socket split evenly across that socket's NUMA nodes.
      const int local_node = (c * numa_per_socket) / spec.cores_per_socket;
      cores_.push_back(Core{id, s, s * numa_per_socket + local_node});
    }
  }
}

std::vector<int> Topology::cores_on_numa(int numa_node) const {
  std::vector<int> out;
  for (const auto& c : cores_) {
    if (c.numa_node == numa_node) out.push_back(c.id);
  }
  return out;
}

bool Topology::same_numa(int core_a, int core_b) const {
  return core(core_a).numa_node == core(core_b).numa_node;
}

}  // namespace dtnsim::cpu
