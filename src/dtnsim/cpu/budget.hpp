// Per-core cycle accounting over a simulation tick.
//
// Each tick, every core gets capacity = hz * dt cycles. Consumers (the TCP
// send path, IRQ handling, receive copies) draw down the budget; utilization
// is what mpstat reports. Budgets saturate: a consumer asking for more than
// the remainder gets only the remainder, which is exactly how a CPU-bound
// flow's achievable bytes are computed.
#pragma once

#include <vector>

#include "dtnsim/util/units.hpp"

namespace dtnsim::cpu {

class CoreBudget {
 public:
  void reset(units::Cycles capacity);

  double capacity() const { return capacity_.value(); }
  double used() const { return used_.value(); }
  double remaining() const {
    return capacity_ > used_ ? (capacity_ - used_).value() : 0.0;
  }
  // Fraction of capacity consumed, in [0, 1].
  double utilization() const {
    return capacity_.value() > 0 ? used_ / capacity_ : 0.0;
  }

  // Consume up to `cycles`; returns what was actually granted.
  double consume(units::Cycles cycles);
  // Consume assuming capacity was checked; clamps silently.
  void charge(units::Cycles cycles);

 private:
  units::Cycles capacity_{0.0};
  units::Cycles used_{0.0};
};

// A named group of cores drawing from a shared pool (e.g. the 8 IRQ cores).
class CorePool {
 public:
  CorePool() = default;
  CorePool(int cores, double hz) : cores_(cores), hz_(hz) {}

  void begin_tick(double dt_sec);

  int cores() const { return cores_; }
  double hz() const { return hz_; }
  double capacity() const { return budget_.capacity(); }
  double remaining() const { return budget_.remaining(); }
  double consume(units::Cycles cycles) { return budget_.consume(cycles); }
  // Average utilization across the pool's cores, [0, 1].
  double utilization() const { return budget_.utilization(); }

 private:
  int cores_ = 1;
  double hz_ = 3e9;
  CoreBudget budget_;
};

}  // namespace dtnsim::cpu
