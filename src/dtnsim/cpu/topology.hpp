// Core/NUMA topology derived from a CpuSpec.
//
// Core ids are laid out socket-major (socket 0 holds cores
// [0, cores_per_socket)), matching how the paper's hosts enumerate cores and
// how `set_irq_affinity_cpulist.sh 0-7` / `numactl -C 8-15` select them.
#pragma once

#include <vector>

#include "dtnsim/cpu/spec.hpp"

namespace dtnsim::cpu {

struct Core {
  int id = 0;
  int socket = 0;
  int numa_node = 0;
};

class Topology {
 public:
  explicit Topology(const CpuSpec& spec);

  const CpuSpec& spec() const { return spec_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  const Core& core(int id) const { return cores_.at(static_cast<std::size_t>(id)); }
  const std::vector<Core>& cores() const { return cores_; }

  std::vector<int> cores_on_numa(int numa_node) const;
  bool same_numa(int core_a, int core_b) const;

 private:
  CpuSpec spec_;
  std::vector<Core> cores_;
};

}  // namespace dtnsim::cpu
