#include "dtnsim/cpu/budget.hpp"

#include <algorithm>

namespace dtnsim::cpu {

void CoreBudget::reset(double capacity_cycles) {
  capacity_ = std::max(capacity_cycles, 0.0);
  used_ = 0.0;
}

double CoreBudget::consume(double cycles) {
  const double granted = std::min(std::max(cycles, 0.0), remaining());
  used_ += granted;
  return granted;
}

void CoreBudget::charge(double cycles) {
  used_ = std::min(capacity_, used_ + std::max(cycles, 0.0));
}

void CorePool::begin_tick(double dt_sec) {
  budget_.reset(static_cast<double>(cores_) * hz_ * dt_sec);
}

}  // namespace dtnsim::cpu
