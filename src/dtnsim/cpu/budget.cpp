#include "dtnsim/cpu/budget.hpp"

#include <algorithm>

namespace dtnsim::cpu {

void CoreBudget::reset(units::Cycles capacity) {
  capacity_ = units::Cycles(std::max(capacity.value(), 0.0));
  used_ = units::Cycles(0.0);
}

double CoreBudget::consume(units::Cycles cycles) {
  const double granted = std::min(std::max(cycles.value(), 0.0), remaining());
  used_ += units::Cycles(granted);
  return granted;
}

void CoreBudget::charge(units::Cycles cycles) {
  used_ = std::min(capacity_,
                   used_ + units::Cycles(std::max(cycles.value(), 0.0)));
}

void CorePool::begin_tick(double dt_sec) {
  budget_.reset(units::Cycles(static_cast<double>(cores_) * hz_ * dt_sec));
}

}  // namespace dtnsim::cpu
