#include "dtnsim/cpu/spec.hpp"

namespace dtnsim::cpu {

const char* vendor_name(Vendor v) {
  switch (v) {
    case Vendor::Intel:
      return "Intel";
    case Vendor::Amd:
      return "AMD";
    case Vendor::Generic:
      return "Generic";
  }
  return "?";
}

CpuSpec intel_xeon_6346() {
  CpuSpec s;
  s.model = "Intel Xeon Gold 6346";
  s.vendor = Vendor::Intel;
  s.sockets = 2;
  s.cores_per_socket = 16;
  s.numa_nodes = 2;
  s.smt_threads = 2;
  s.base_ghz = 3.1;
  s.max_ghz = 3.6;
  s.avx512 = true;
  s.l3_per_socket_bytes = 36.0 * 1024 * 1024;
  s.l3_flow_window_bytes = 64.0 * 1024 * 1024;  // monolithic L3 + DDIO headroom
  s.stack_mem_bw_bytes = 55e9;
  return s;
}

CpuSpec amd_epyc_73f3() {
  CpuSpec s;
  s.model = "AMD EPYC 73F3";
  s.vendor = Vendor::Amd;
  s.sockets = 2;
  s.cores_per_socket = 16;
  s.numa_nodes = 2;
  s.smt_threads = 2;
  s.base_ghz = 3.5;
  s.max_ghz = 4.0;
  s.avx512 = false;
  s.l3_per_socket_bytes = 256.0 * 1024 * 1024;
  s.l3_flow_window_bytes = 32.0 * 1024 * 1024;  // per-CCX slice
  s.stack_mem_bw_bytes = 60e9;  // calibrated: 8-stream copy ceiling ~166 Gbps
  return s;
}

CpuSpec generic_cpu(int cores, double ghz) {
  CpuSpec s;
  s.model = "generic";
  s.vendor = Vendor::Generic;
  s.sockets = 1;
  s.cores_per_socket = cores;
  s.numa_nodes = 1;
  s.smt_threads = 1;
  s.base_ghz = ghz;
  s.max_ghz = ghz;
  s.avx512 = false;
  s.l3_per_socket_bytes = 16.0 * 1024 * 1024;
  s.l3_flow_window_bytes = 16.0 * 1024 * 1024;
  s.stack_mem_bw_bytes = 30e9;
  return s;
}

}  // namespace dtnsim::cpu
