// Series analysis: the statistics layer every run-level verdict reads from.
//
// bench/scenario_recovery grew the first dip-depth / time-to-recovery
// calculations inline; dtnsim-sweep wants the same columns per campaign
// cell and dtnsim-report wants them per RunRecord, so the math lives here
// once, unit-typed, and everything else calls in. All functions are pure
// reads of a probe SeriesTable (obs/probe.hpp) — the exact artifact every
// telemetry-enabled run already produces — so the analysis of a finished
// run never depends on job count or cell order (byte-identical at --jobs 1
// vs --jobs N).
//
// Definitions (docs/REPORT.md spells out the rationale for each):
//   steady-state stats  mean / p50 / p99 of a bps column over a window
//   baseline            mean goodput over the 10 s before an episode
//   dip depth           minimum goodput during [start, stop], clamped >= 0
//   time to recovery    first sample past `stop` back at >= 90% of baseline,
//                       reported relative to `stop`; "never" is explicit
//   per-flow skew       mean (fastest - slowest stream) over a window
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dtnsim/obs/probe.hpp"
#include "dtnsim/scenario/scenario.hpp"
#include "dtnsim/units/units.hpp"

namespace dtnsim::report {

// Interpolated percentile of `values` at quantile q in [0, 1] (linear
// between order statistics, the gnuplot/numpy default). 0 on empty input.
double percentile(std::vector<double> values, double q);

// Stats of a bps-valued probe column over the closed window [from, to].
struct SeriesStats {
  std::size_t samples = 0;  // rows of the column inside the window
  units::Rate mean;
  units::Rate p50;
  units::Rate p99;
};
SeriesStats rate_stats(const obs::SeriesTable& series, const std::string& column,
                       units::SimTime from, units::SimTime to);

// What one run's probe series says about an episode in [start, stop] —
// the bench/scenario_recovery calculation, verbatim.
struct RecoveryStats {
  units::Rate baseline;       // mean over the 10 s before the episode
  units::Rate dip;            // minimum during [start, stop], clamped >= 0
  bool recovered = false;     // reached >= 90% of baseline after `stop`
  units::SimTime recovery;    // first such time, relative to `stop`
  std::size_t samples = 0;    // rows considered (baseline + episode windows)

  // Fraction of the baseline retained at the bottom of the dip.
  double retained() const {
    return baseline.bps() > 0.0 ? dip.bps() / baseline.bps() : 0.0;
  }
};
RecoveryStats analyze_recovery(const obs::SeriesTable& series,
                               const std::string& column, units::SimTime start,
                               units::SimTime stop);

// Mean spread between the fastest and slowest stream over [from, to], read
// from the flow.per_flow_{max,min}_bps columns. Zero when either column is
// absent (single-flow runs, packet engine).
units::Rate per_flow_skew(const obs::SeriesTable& series, units::SimTime from,
                          units::SimTime to);

// The episode window an event log implies: [earliest fire, latest end]
// over the applied events (permanent events extend to their fire time).
// nullopt when nothing fired.
std::optional<std::pair<units::SimTime, units::SimTime>> episode_window(
    const scenario::EventLog& log);

// The goodput column this series carries: "flow.goodput_bps" (fluid) or
// "pkt.goodput_bps" (packet); "" when neither exists.
std::string goodput_column(const obs::SeriesTable& series);

}  // namespace dtnsim::report
