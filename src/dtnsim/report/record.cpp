#include "dtnsim/report/record.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::report {

RunAnalysis analyze_record(const RunRecord& record) {
  RunAnalysis a;
  // "Forever" for the whole-series window; SimTime is int64 nanoseconds so
  // 1e9 seconds stays comfortably inside the representable range.
  const auto horizon = units::SimTime::from_seconds(1e9);
  const std::string col = goodput_column(record.series);
  if (!col.empty()) {
    const SeriesStats st = rate_stats(record.series, col, units::SimTime(), horizon);
    a.samples = st.samples;
    a.mean = st.mean;
    a.p50 = st.p50;
    a.p99 = st.p99;
    a.flow_skew = per_flow_skew(record.series, units::SimTime(), horizon);
    if (const auto w = episode_window(record.scenario_log)) {
      a.has_episode = true;
      a.episode_start = w->first;
      a.episode_end = w->second;
      const RecoveryStats rec = analyze_recovery(record.series, col, w->first, w->second);
      a.baseline = rec.baseline;
      a.dip = rec.dip;
      a.recovered = rec.recovered;
      a.recovery = rec.recovery;
    }
  }
  if (!record.perf_log.empty()) {
    a.tx_cyc_per_byte = record.perf_log.back().tx_cyc_per_byte();
    a.rx_cyc_per_byte = record.perf_log.back().rx_cyc_per_byte();
  }
  return a;
}

// ---- JSON round-trip ------------------------------------------------------

Json to_json(const RunMeta& meta) {
  Json j = Json::object();
  j["name"] = meta.name;
  j["engine"] = meta.engine;
  j["streams"] = meta.streams;
  j["repeats"] = meta.repeats;
  j["duration_sec"] = meta.duration_sec;
  // Seeds are 64-bit; a JSON double would round past 2^53, so ship a string.
  j["base_seed"] = strfmt("%llu", static_cast<unsigned long long>(meta.base_seed));
  j["scenario"] = meta.scenario;
  return j;
}

RunMeta run_meta_from_json(const Json& j) {
  RunMeta m;
  m.name = j.string_at("name", "");
  m.engine = j.string_at("engine", "");
  m.streams = static_cast<int>(j.number_at("streams", 1));
  m.repeats = static_cast<int>(j.number_at("repeats", 1));
  m.duration_sec = j.number_at("duration_sec", 0.0);
  m.base_seed = std::strtoull(j.string_at("base_seed", "0").c_str(), nullptr, 10);
  m.scenario = j.string_at("scenario", "");
  return m;
}

Json to_json(const RunSummary& summary) {
  Json j = Json::object();
  j["avg_gbps"] = summary.avg_gbps;
  j["min_gbps"] = summary.min_gbps;
  j["max_gbps"] = summary.max_gbps;
  j["stdev_gbps"] = summary.stdev_gbps;
  j["avg_retransmits"] = summary.avg_retransmits;
  j["flow_min_gbps"] = summary.flow_min_gbps;
  j["flow_max_gbps"] = summary.flow_max_gbps;
  j["snd_cpu_pct"] = summary.snd_cpu_pct;
  j["rcv_cpu_pct"] = summary.rcv_cpu_pct;
  j["zc_fallback_ratio"] = summary.zc_fallback_ratio;
  Json samples = Json::array();
  for (const double s : summary.samples_gbps) samples.push_back(s);
  j["samples_gbps"] = std::move(samples);
  return j;
}

RunSummary run_summary_from_json(const Json& j) {
  RunSummary s;
  s.avg_gbps = j.number_at("avg_gbps", 0.0);
  s.min_gbps = j.number_at("min_gbps", 0.0);
  s.max_gbps = j.number_at("max_gbps", 0.0);
  s.stdev_gbps = j.number_at("stdev_gbps", 0.0);
  s.avg_retransmits = j.number_at("avg_retransmits", 0.0);
  s.flow_min_gbps = j.number_at("flow_min_gbps", 0.0);
  s.flow_max_gbps = j.number_at("flow_max_gbps", 0.0);
  s.snd_cpu_pct = j.number_at("snd_cpu_pct", 0.0);
  s.rcv_cpu_pct = j.number_at("rcv_cpu_pct", 0.0);
  s.zc_fallback_ratio = j.number_at("zc_fallback_ratio", 0.0);
  if (const Json* samples = j.find("samples_gbps")) {
    for (std::size_t i = 0; i < samples->size(); ++i)
      s.samples_gbps.push_back(samples->at(i)->number_or(0.0));
  }
  return s;
}

Json to_json(const RunAnalysis& analysis) {
  Json j = Json::object();
  j["samples"] = static_cast<std::int64_t>(analysis.samples);
  j["mean_bps"] = analysis.mean.bps();
  j["p50_bps"] = analysis.p50.bps();
  j["p99_bps"] = analysis.p99.bps();
  j["flow_skew_bps"] = analysis.flow_skew.bps();
  j["has_episode"] = analysis.has_episode;
  j["episode_start_sec"] = analysis.episode_start.seconds();
  j["episode_end_sec"] = analysis.episode_end.seconds();
  j["baseline_bps"] = analysis.baseline.bps();
  j["dip_bps"] = analysis.dip.bps();
  j["recovered"] = analysis.recovered;
  j["recovery_sec"] = analysis.recovery.seconds();
  j["tx_cyc_per_byte"] = analysis.tx_cyc_per_byte;
  j["rx_cyc_per_byte"] = analysis.rx_cyc_per_byte;
  return j;
}

RunAnalysis run_analysis_from_json(const Json& j) {
  RunAnalysis a;
  a.samples = static_cast<std::size_t>(j.number_at("samples", 0));
  a.mean = units::Rate::from_bps(j.number_at("mean_bps", 0.0));
  a.p50 = units::Rate::from_bps(j.number_at("p50_bps", 0.0));
  a.p99 = units::Rate::from_bps(j.number_at("p99_bps", 0.0));
  a.flow_skew = units::Rate::from_bps(j.number_at("flow_skew_bps", 0.0));
  a.has_episode = j.bool_at("has_episode", false);
  a.episode_start = units::SimTime::from_seconds(j.number_at("episode_start_sec", 0.0));
  a.episode_end = units::SimTime::from_seconds(j.number_at("episode_end_sec", 0.0));
  a.baseline = units::Rate::from_bps(j.number_at("baseline_bps", 0.0));
  a.dip = units::Rate::from_bps(j.number_at("dip_bps", 0.0));
  a.recovered = j.bool_at("recovered", false);
  a.recovery = units::SimTime::from_seconds(j.number_at("recovery_sec", 0.0));
  a.tx_cyc_per_byte = j.number_at("tx_cyc_per_byte", 0.0);
  a.rx_cyc_per_byte = j.number_at("rx_cyc_per_byte", 0.0);
  return a;
}

Json series_to_json(const obs::SeriesTable& series) {
  Json j = Json::object();
  Json columns = Json::array();
  for (const auto& c : series.columns) columns.push_back(c);
  j["columns"] = std::move(columns);
  Json rows = Json::array();
  for (const auto& row : series.rows) {
    Json r = Json::array();
    for (const double v : row) r.push_back(v);
    rows.push_back(std::move(r));
  }
  j["rows"] = std::move(rows);
  return j;
}

obs::SeriesTable series_from_json(const Json& j) {
  obs::SeriesTable t;
  if (const Json* columns = j.find("columns")) {
    for (std::size_t i = 0; i < columns->size(); ++i)
      t.columns.push_back(columns->at(i)->string_or(""));
  }
  if (const Json* rows = j.find("rows")) {
    for (std::size_t i = 0; i < rows->size(); ++i) {
      const Json* row = rows->at(i);
      std::vector<double> values;
      for (std::size_t k = 0; k < row->size(); ++k)
        values.push_back(row->at(k)->number_or(0.0));
      t.rows.push_back(std::move(values));
    }
  }
  return t;
}

Json to_json(const RunRecord& record) {
  Json j = Json::object();
  j["schema"] = record.schema;
  j["meta"] = to_json(record.meta);
  j["summary"] = to_json(record.summary);
  j["analysis"] = to_json(record.analysis);
  j["series"] = series_to_json(record.series);
  j["ss_log"] = obs::ss_log_to_json(record.ss_log);
  j["perf_log"] = obs::perf_log_to_json(record.perf_log);
  j["scenario_log"] = scenario::to_json(record.scenario_log);
  return j;
}

RunRecord run_record_from_json(const Json& j) {
  RunRecord r;
  r.schema = static_cast<int>(j.number_at("schema", kRunRecordSchema));
  if (const Json* meta = j.find("meta")) r.meta = run_meta_from_json(*meta);
  if (const Json* summary = j.find("summary"))
    r.summary = run_summary_from_json(*summary);
  if (const Json* analysis = j.find("analysis"))
    r.analysis = run_analysis_from_json(*analysis);
  if (const Json* series = j.find("series")) r.series = series_from_json(*series);
  if (const Json* ss = j.find("ss_log")) r.ss_log = obs::ss_log_from_json(*ss);
  if (const Json* perf = j.find("perf_log"))
    r.perf_log = obs::perf_log_from_json(*perf);
  if (const Json* scn = j.find("scenario_log")) {
    if (auto log = scenario::event_log_from_json(*scn)) r.scenario_log = *log;
  }
  return r;
}

bool write_run_record(const std::string& path, const RunRecord& record) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(record).dump(2) << '\n';
  return static_cast<bool>(out);
}

RunRecord load_run_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("run record: cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = Json::parse(buf.str());
  if (!doc) throw std::runtime_error("run record: " + path + " is not valid JSON");
  RunRecord r = run_record_from_json(*doc);
  if (r.schema != kRunRecordSchema) {
    throw std::runtime_error(
        strfmt("run record: %s has schema %d, this build reads %d", path.c_str(),
               r.schema, kRunRecordSchema));
  }
  return r;
}

// ---- renderers ------------------------------------------------------------

namespace {

std::string format_recovery_line(const RunAnalysis& a) {
  if (!a.has_episode) return "  episode    : none (no applied scenario events)\n";
  std::string out =
      strfmt("  episode    : [%.1f, %.1f] s  baseline %.2f Gbps  dip %.2f Gbps",
             a.episode_start.seconds(), a.episode_end.seconds(), a.baseline.gbps(),
             a.dip.gbps());
  if (a.baseline.bps() > 0.0)
    out += strfmt(" (retained %.0f%%)", 100.0 * a.dip.bps() / a.baseline.bps());
  if (a.recovered)
    out += strfmt("  recovery %.1f s\n", a.recovery.seconds());
  else
    out += "  recovery: never\n";
  return out;
}

// gnuplot single-quoted strings escape ' by doubling it.
std::string gp_quote(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += c;
    if (c == '\'') out += '\'';
  }
  return out;
}

}  // namespace

std::string format_run_record(const RunRecord& record) {
  const RunMeta& m = record.meta;
  const RunSummary& s = record.summary;
  const RunAnalysis& a = record.analysis;
  std::string out = strfmt("run record: %s (schema %d, engine %s)\n",
                           m.name.c_str(), record.schema, m.engine.c_str());
  out += strfmt("  spec       : %d stream%s, %.0f s, %d repeat%s, seed %llu%s%s\n",
                m.streams, m.streams == 1 ? "" : "s", m.duration_sec, m.repeats,
                m.repeats == 1 ? "" : "s",
                static_cast<unsigned long long>(m.base_seed),
                m.scenario.empty() ? "" : ", scenario ",
                m.scenario.c_str());
  out += strfmt(
      "  throughput : %.2f ± %.2f Gbps (min %.2f, max %.2f)  retrans %.0f\n",
      s.avg_gbps, s.stdev_gbps, s.min_gbps, s.max_gbps, s.avg_retransmits);
  out += strfmt("  cpu        : sender %.0f%%  receiver %.0f%%\n", s.snd_cpu_pct,
                s.rcv_cpu_pct);
  out += strfmt(
      "  series     : %zu samples  mean %.2f  p50 %.2f  p99 %.2f Gbps  "
      "skew %.2f Gbps\n",
      a.samples, a.mean.gbps(), a.p50.gbps(), a.p99.gbps(), a.flow_skew.gbps());
  out += format_recovery_line(a);
  if (a.tx_cyc_per_byte > 0.0 || a.rx_cyc_per_byte > 0.0) {
    out += strfmt("  perf       : %.2f tx cyc/B  %.2f rx cyc/B\n",
                  a.tx_cyc_per_byte, a.rx_cyc_per_byte);
  }
  out += strfmt(
      "  artifacts  : %zu ss snapshot%s, %zu perf sample%s, %zu scenario "
      "event%s\n",
      record.ss_log.size(), record.ss_log.size() == 1 ? "" : "s",
      record.perf_log.size(), record.perf_log.size() == 1 ? "" : "s",
      record.scenario_log.events.size(),
      record.scenario_log.events.size() == 1 ? "" : "s");
  return out;
}

std::string format_record_diff(const RunRecord& a, const RunRecord& b) {
  std::string out = strfmt("run record diff: %s vs %s\n", a.meta.name.c_str(),
                           b.meta.name.c_str());
  const auto row = [&out](const char* field, double va, double vb,
                          const char* unit) {
    const double delta = vb - va;
    std::string pct;
    if (va != 0.0) pct = strfmt(" (%+.1f%%)", 100.0 * delta / va);
    out += strfmt("  %-16s %10.3f -> %10.3f %s  %+.3f%s\n", field, va, vb, unit,
                  delta, pct.c_str());
  };
  row("avg_gbps", a.summary.avg_gbps, b.summary.avg_gbps, "Gbps");
  row("stdev_gbps", a.summary.stdev_gbps, b.summary.stdev_gbps, "Gbps");
  row("retransmits", a.summary.avg_retransmits, b.summary.avg_retransmits, "seg");
  row("snd_cpu", a.summary.snd_cpu_pct, b.summary.snd_cpu_pct, "%");
  row("rcv_cpu", a.summary.rcv_cpu_pct, b.summary.rcv_cpu_pct, "%");
  row("p99", a.analysis.p99.gbps(), b.analysis.p99.gbps(), "Gbps");
  row("tx_cyc_per_byte", a.analysis.tx_cyc_per_byte, b.analysis.tx_cyc_per_byte,
      "cyc/B");
  row("rx_cyc_per_byte", a.analysis.rx_cyc_per_byte, b.analysis.rx_cyc_per_byte,
      "cyc/B");
  if (a.analysis.has_episode || b.analysis.has_episode) {
    row("baseline", a.analysis.baseline.gbps(), b.analysis.baseline.gbps(), "Gbps");
    row("dip", a.analysis.dip.gbps(), b.analysis.dip.gbps(), "Gbps");
    row("recovery_sec",
        a.analysis.recovered ? a.analysis.recovery.seconds() : -1.0,
        b.analysis.recovered ? b.analysis.recovery.seconds() : -1.0, "s");
  }
  return out;
}

bool write_record_plot(const std::string& base, const RunRecord& record) {
  const std::string col = goodput_column(record.series);
  const auto t = record.series.column("time_s");
  const auto bps = record.series.column(col.empty() ? "time_s" : col);

  std::ofstream dat(base + ".dat");
  if (!dat) return false;
  dat << "# " << record.meta.name << " — goodput series (" << record.meta.engine
      << " engine)\n# time_s goodput_gbps\n";
  if (!col.empty()) {
    for (std::size_t i = 0; i < t.size() && i < bps.size(); ++i)
      dat << strfmt("%.6f %.6f\n", t[i], bps[i] / 1e9);
  }
  if (!dat) return false;

  std::ofstream gp(base + ".gp");
  if (!gp) return false;
  const RunAnalysis& a = record.analysis;
  gp << "# dtnsim-report --plot output; render with: gnuplot " << base << ".gp\n";
  gp << "set terminal pngcairo size 1000,600\n";
  gp << "set output '" << gp_quote(base) << ".png'\n";
  gp << "set title '" << gp_quote(record.meta.name) << "'\n";
  gp << "set xlabel 'time (s)'\n";
  gp << "set ylabel 'goodput (Gbps)'\n";
  gp << "set grid\n";
  if (a.has_episode) {
    gp << strfmt("set arrow from %.3f, graph 0 to %.3f, graph 1 nohead dashtype 2\n",
                 a.episode_start.seconds(), a.episode_start.seconds());
    gp << strfmt("set arrow from %.3f, graph 0 to %.3f, graph 1 nohead dashtype 2\n",
                 a.episode_end.seconds(), a.episode_end.seconds());
    gp << strfmt("set label 'episode' at %.3f, graph 0.95\n",
                 a.episode_start.seconds());
  }
  gp << "plot '" << gp_quote(base) << ".dat' using 1:2 with lines lw 2 "
     << "title 'goodput'\n";
  return static_cast<bool>(gp);
}

bool write_campaign_plot(const std::string& base, const std::string& title,
                         const std::vector<Json>& rows) {
  // Column presence is detected across all rows so the .gp only draws the
  // overlays the campaign actually produced (perf columns need --perf,
  // dip/recovery need --telemetry + --scenarios).
  bool has_perf = false, has_dip = false;
  for (const Json& row : rows) {
    if (row.find("tx_cyc_per_byte")) has_perf = true;
    if (row.find("dip_gbps")) has_dip = true;
  }

  // Fixed column layout (tab-separated; cell labels may contain spaces):
  //   1 index  2 avg  3 stdev  4 min  5 max  6 tx_cyc/B  7 rx_cyc/B
  //   8 dip_gbps  9 recovery_sec  10 name
  // Missing overlays fill with 0 / -1 and simply go unplotted.
  std::ofstream dat(base + ".dat");
  if (!dat) return false;
  dat << "# " << title << " — campaign cells\n"
      << "# index\tavg_gbps\tstdev_gbps\tmin_gbps\tmax_gbps\ttx_cyc_per_byte\t"
         "rx_cyc_per_byte\tdip_gbps\trecovery_sec\tname\n";
  for (const Json& row : rows) {
    dat << strfmt("%.0f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.3f\t",
                  row.number_at("index", -1), row.number_at("avg_gbps", 0.0),
                  row.number_at("stdev_gbps", 0.0), row.number_at("min_gbps", 0.0),
                  row.number_at("max_gbps", 0.0),
                  row.number_at("tx_cyc_per_byte", 0.0),
                  row.number_at("rx_cyc_per_byte", 0.0),
                  row.number_at("dip_gbps", 0.0),
                  row.number_at("recovery_sec", -1.0))
        << row.string_at("name", "?") << '\n';
  }
  if (!dat) return false;

  std::ofstream gp(base + ".gp");
  if (!gp) return false;
  gp << "# dtnsim-sweep --plot-out output; render with: gnuplot " << base
     << ".gp\n";
  gp << "set terminal pngcairo size 1200,620\n";
  gp << "set output '" << gp_quote(base) << ".png'\n";
  gp << "set datafile separator \"\\t\"\n";
  gp << "set title '" << gp_quote(title) << "'\n";
  gp << "set ylabel 'Gbps'\n";
  gp << "set grid ytics\n";
  gp << "set xtics rotate by -35 scale 0\n";
  gp << "set key outside top right\n";
  if (has_perf) {
    gp << "set y2label 'cycles/byte'\n";
    gp << "set y2tics\n";
  }
  gp << "plot '" << gp_quote(base)
     << ".dat' using 0:2:3:xtic(10) with yerrorbars lw 2 title 'avg ± stdev'";
  if (has_dip)
    gp << ", \\\n     '' using 0:8 with points pt 6 title 'episode dip'";
  if (has_perf) {
    gp << ", \\\n     '' using 0:6 axes x1y2 with linespoints dashtype 2 "
          "title 'tx cyc/B'";
    gp << ", \\\n     '' using 0:7 axes x1y2 with linespoints dashtype 3 "
          "title 'rx cyc/B'";
  }
  gp << '\n';
  return static_cast<bool>(gp);
}

}  // namespace dtnsim::report
