// RunRecord: one self-describing JSON artifact per run.
//
// The paper's whole argument joins layers of evidence — throughput curves,
// ss -i counters, CPU-cycle attribution, fault events — into one story per
// experiment, yet our obs artifacts (metrics CSV, ss log, perf log,
// scenario event log) ship as disjoint files that only humans correlate. A
// RunRecord bundles everything one run produced plus the derived analysis
// (steady-state stats, dip depth, time to recovery, cycles/byte) into a
// single schema-versioned document: `--record-out` writes it, TestResult
// carries it, and tools/dtnsim-report summarizes/diffs/plots it offline.
//
// Layering: report sits between scenario/app and harness, so these are
// plain-data structs the harness fills in — no harness types appear here.
// The JSON round-trip is bit-exact (Json preserves parse == dump precision)
// and every emit/parse key pair is checked by the json-parity lint rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtnsim/obs/perf.hpp"
#include "dtnsim/obs/probe.hpp"
#include "dtnsim/obs/ss.hpp"
#include "dtnsim/report/analysis.hpp"
#include "dtnsim/scenario/scenario.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::report {

// Bumped when the JSON layout changes shape (tests/golden/run_record_keys.txt
// pins the top-level key set).
inline constexpr int kRunRecordSchema = 1;

// What was run: the spec-side identity of the record.
struct RunMeta {
  std::string name;          // harness test label
  std::string engine;        // "fluid" | "packet"
  int streams = 1;
  int repeats = 1;
  double duration_sec = 0.0;
  std::uint64_t base_seed = 0;
  std::string scenario;      // timeline name; "" when none attached
};

// The harness aggregate — TestResult's scalar columns, decoupled from the
// harness so tools can read records without linking the simulator stack.
struct RunSummary {
  double avg_gbps = 0.0;
  double min_gbps = 0.0;
  double max_gbps = 0.0;
  double stdev_gbps = 0.0;
  double avg_retransmits = 0.0;
  double flow_min_gbps = 0.0;
  double flow_max_gbps = 0.0;
  double snd_cpu_pct = 0.0;
  double rcv_cpu_pct = 0.0;
  double zc_fallback_ratio = 0.0;
  std::vector<double> samples_gbps;  // one per repeat
};

// Derived figures (analysis.hpp definitions), computed once at record build
// so consumers never re-derive them inconsistently.
struct RunAnalysis {
  // Steady-state goodput over the whole series (repeat 0).
  std::size_t samples = 0;
  units::Rate mean;
  units::Rate p50;
  units::Rate p99;
  units::Rate flow_skew;  // mean fastest-slowest spread, 0 when single-flow
  // Scenario episode, when applied events define a window.
  bool has_episode = false;
  units::SimTime episode_start;
  units::SimTime episode_end;
  units::Rate baseline;
  units::Rate dip;
  bool recovered = false;
  units::SimTime recovery;
  // Perf headline, from the final PerfReport (0 when perf was off).
  double tx_cyc_per_byte = 0.0;
  double rx_cyc_per_byte = 0.0;
};

struct RunRecord {
  int schema = kRunRecordSchema;
  RunMeta meta;
  RunSummary summary;
  RunAnalysis analysis;
  obs::SeriesTable series;                // repeat 0's probe series
  std::vector<obs::SsReport> ss_log;      // repeat 0's ss snapshots
  std::vector<obs::PerfReport> perf_log;  // repeat 0's attribution samples
  scenario::EventLog scenario_log;        // repeat 0's applied events
};

// Recompute the analysis block from the record's own series/logs — the
// builder the harness calls, and what --summarize uses to verify a loaded
// record's numbers still match its data.
RunAnalysis analyze_record(const RunRecord& record);

// ---- JSON round-trip ------------------------------------------------------
Json to_json(const RunMeta& meta);
RunMeta run_meta_from_json(const Json& j);
Json to_json(const RunSummary& summary);
RunSummary run_summary_from_json(const Json& j);
Json to_json(const RunAnalysis& analysis);
RunAnalysis run_analysis_from_json(const Json& j);
Json series_to_json(const obs::SeriesTable& series);
obs::SeriesTable series_from_json(const Json& j);
Json to_json(const RunRecord& record);
RunRecord run_record_from_json(const Json& j);

// Pretty-printed JSON to `path`; false on I/O failure.
bool write_run_record(const std::string& path, const RunRecord& record);
// Read + parse; throws std::runtime_error naming the path on failure.
RunRecord load_run_record(const std::string& path);

// ---- renderers (tools/dtnsim-report) --------------------------------------
// Human-readable one-run summary: meta, summary table, analysis figures.
std::string format_run_record(const RunRecord& record);
// Side-by-side A/B comparison with absolute and percent deltas.
std::string format_record_diff(const RunRecord& a, const RunRecord& b);
// Figure-ready gnuplot: writes `<base>.gp` + `<base>.dat` plotting the
// goodput series with episode markers. False on I/O failure.
bool write_record_plot(const std::string& base, const RunRecord& record);
// Same pair from a campaign's JSONL rows (`dtnsim-sweep --plot-out`): one
// errorbar point per cell, plus dip and cycles/byte overlays when any row
// carries those columns. `rows` are the parsed result-stream lines.
bool write_campaign_plot(const std::string& base, const std::string& title,
                         const std::vector<Json>& rows);

}  // namespace dtnsim::report
