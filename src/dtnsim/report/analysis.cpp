#include "dtnsim/report/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace dtnsim::report {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

SeriesStats rate_stats(const obs::SeriesTable& series, const std::string& column,
                       units::SimTime from, units::SimTime to) {
  SeriesStats out;
  const auto t = series.column("time_s");
  const auto v = series.column(column);
  std::vector<double> window;
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size() && i < v.size(); ++i) {
    if (t[i] < from.seconds() || t[i] > to.seconds()) continue;
    window.push_back(v[i]);
    sum += v[i];
  }
  out.samples = window.size();
  if (window.empty()) return out;
  out.mean = units::Rate::from_bps(sum / static_cast<double>(window.size()));
  out.p50 = units::Rate::from_bps(percentile(window, 0.5));
  out.p99 = units::Rate::from_bps(percentile(window, 0.99));
  return out;
}

RecoveryStats analyze_recovery(const obs::SeriesTable& series,
                               const std::string& column, units::SimTime start,
                               units::SimTime stop) {
  RecoveryStats out;
  const auto t = series.column("time_s");
  const auto bps = series.column(column);
  const double start_sec = start.seconds();
  const double stop_sec = stop.seconds();
  double base_sum = 0.0;
  int base_n = 0;
  double dip = 0.0;
  bool have_dip = false;
  for (std::size_t i = 0; i < t.size() && i < bps.size(); ++i) {
    if (t[i] >= start_sec - 10.0 && t[i] < start_sec) {
      base_sum += bps[i];
      ++base_n;
      ++out.samples;
    } else if (t[i] >= start_sec && t[i] <= stop_sec) {
      if (!have_dip || bps[i] < dip) dip = bps[i];
      have_dip = true;
      ++out.samples;
    }
  }
  const double baseline_bps = base_n > 0 ? base_sum / base_n : 0.0;
  out.baseline = units::Rate::from_bps(baseline_bps);
  out.dip = units::Rate::from_bps(have_dip ? std::max(dip, 0.0) : 0.0);
  for (std::size_t i = 0; i < t.size() && i < bps.size(); ++i) {
    if (t[i] > stop_sec && bps[i] >= 0.9 * baseline_bps) {
      out.recovered = true;
      out.recovery = units::SimTime::from_seconds(t[i] - stop_sec);
      break;
    }
  }
  return out;
}

units::Rate per_flow_skew(const obs::SeriesTable& series, units::SimTime from,
                          units::SimTime to) {
  const auto t = series.column("time_s");
  const auto lo = series.column("flow.per_flow_min_bps");
  const auto hi = series.column("flow.per_flow_max_bps");
  if (lo.empty() || hi.empty()) return units::Rate();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.size() && i < lo.size() && i < hi.size(); ++i) {
    if (t[i] < from.seconds() || t[i] > to.seconds()) continue;
    sum += std::max(hi[i] - lo[i], 0.0);
    ++n;
  }
  if (n == 0) return units::Rate();
  return units::Rate::from_bps(sum / static_cast<double>(n));
}

std::optional<std::pair<units::SimTime, units::SimTime>> episode_window(
    const scenario::EventLog& log) {
  bool any = false;
  double first = 0.0;
  double last = 0.0;
  for (const auto& e : log.events) {
    if (!e.applied) continue;
    const double end = e.end_sec > 0.0 ? e.end_sec : e.fire_sec;
    if (!any || e.fire_sec < first) first = e.fire_sec;
    if (!any || end > last) last = end;
    any = true;
  }
  if (!any) return std::nullopt;
  return std::make_pair(units::SimTime::from_seconds(first),
                        units::SimTime::from_seconds(last));
}

std::string goodput_column(const obs::SeriesTable& series) {
  for (const char* name : {"flow.goodput_bps", "pkt.goodput_bps"}) {
    if (series.column_index(name) != static_cast<std::size_t>(-1)) return name;
  }
  return "";
}

}  // namespace dtnsim::report
