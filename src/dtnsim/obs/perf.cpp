#include "dtnsim/obs/perf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::obs {
namespace {

struct StageDesc {
  const char* name;    // taxonomy key (JSON, flamegraph frames)
  const char* symbol;  // kernel symbol the stage mirrors
  PerfCore core;
};

// Indexed by static_cast<int>(PerfStage); order must match the enum.
const StageDesc kStages[kPerfStageCount] = {
    {"tx_syscall", "tcp_sendmsg_locked", PerfCore::SndApp},
    {"tx_proto", "tcp_write_xmit", PerfCore::SndApp},
    {"tx_user_copy", "copy_user_enhanced_fast_string", PerfCore::SndApp},
    {"tx_zc_pin", "zerocopy_sg_from_iter", PerfCore::SndApp},
    {"tx_zc_notify", "msg_zerocopy_callback", PerfCore::SndApp},
    {"tx_zc_fallback", "skb_zerocopy_iter_stream", PerfCore::SndApp},
    {"tx_gso_segment", "tcp_gso_segment", PerfCore::SndIrq},
    {"tx_dma_map", "dma_map_page_attrs", PerfCore::SndIrq},
    {"tx_completion", "skb_release_data", PerfCore::SndIrq},
    {"rx_skb_alloc", "mlx5e_skb_from_cqe_mpwrq", PerfCore::RcvIrq},
    {"rx_gro_merge", "gro_receive", PerfCore::RcvIrq},
    {"rx_agg_flush", "napi_gro_flush", PerfCore::RcvIrq},
    {"rx_csum", "csum_partial", PerfCore::RcvIrq},
    {"rx_syscall", "tcp_recvmsg", PerfCore::RcvApp},
    {"rx_frag_walk", "skb_copy_datagram_msg", PerfCore::RcvApp},
    {"rx_copyout", "copy_user_enhanced_fast_string", PerfCore::RcvApp},
};

const char* const kCoreNames[kPerfCoreCount] = {"snd_app", "snd_irq",
                                                "rcv_app", "rcv_irq"};

std::string fmt_cycles(double cycles) {
  if (cycles >= 1e12) return strfmt("%.2fTcyc", cycles / 1e12);
  if (cycles >= 1e9) return strfmt("%.2fGcyc", cycles / 1e9);
  if (cycles >= 1e6) return strfmt("%.1fMcyc", cycles / 1e6);
  if (cycles >= 1e3) return strfmt("%.1fKcyc", cycles / 1e3);
  return strfmt("%.0fcyc", cycles);
}

}  // namespace

const char* perf_stage_name(PerfStage s) {
  return kStages[static_cast<int>(s)].name;
}

const char* perf_stage_symbol(PerfStage s) {
  return kStages[static_cast<int>(s)].symbol;
}

PerfCore perf_stage_core(PerfStage s) {
  return kStages[static_cast<int>(s)].core;
}

const char* perf_core_name(PerfCore c) {
  return kCoreNames[static_cast<int>(c)];
}

double PerfReport::core_stage_cycles(PerfCore c) const {
  double sum = 0.0;
  for (int i = 0; i < kPerfStageCount; ++i) {
    if (kStages[i].core == c) sum += stage_cycles[i];
  }
  return sum;
}

double PerfReport::total_cycles() const {
  double sum = 0.0;
  for (double c : stage_cycles) sum += c;
  return sum;
}

double PerfReport::core_utilization(PerfCore c) const {
  const double cap = capacity_cycles[static_cast<int>(c)];
  if (cap <= 0.0) return 0.0;
  return std::clamp(consumed_cycles[static_cast<int>(c)] / cap, 0.0, 1.0);
}

double PerfReport::tx_cyc_per_byte() const {
  if (bytes_sent <= 0.0) return 0.0;
  return (core_stage_cycles(PerfCore::SndApp) +
          core_stage_cycles(PerfCore::SndIrq)) /
         bytes_sent;
}

double PerfReport::rx_cyc_per_byte() const {
  if (bytes_delivered <= 0.0) return 0.0;
  return (core_stage_cycles(PerfCore::RcvApp) +
          core_stage_cycles(PerfCore::RcvIrq)) /
         bytes_delivered;
}

std::string format_perf_report(const PerfReport& r) {
  std::string out = strfmt("# dtnsim-perf t=%.3fs engine=%s",
                           units::to_seconds(r.ts), r.engine.c_str());
  if (!r.label.empty()) out += strfmt(" label=\"%s\"", r.label.c_str());
  out += "\n";
  out += strfmt("# Samples: exact attribution, %s total (tx %.3f cyc/B, rx %.3f cyc/B)\n",
                fmt_cycles(r.total_cycles()).c_str(), r.tx_cyc_per_byte(),
                r.rx_cyc_per_byte());
  out += "# Children      Self        Cycles  Core     Symbol\n";
  const double total = std::max(r.total_cycles(), 1e-12);
  // Core groups ordered by their cycle share, heaviest first — the way perf
  // orders its comm/dso groups.
  int order[kPerfCoreCount] = {0, 1, 2, 3};
  std::sort(order, order + kPerfCoreCount, [&](int a, int b) {
    const double ca = r.core_stage_cycles(static_cast<PerfCore>(a));
    const double cb = r.core_stage_cycles(static_cast<PerfCore>(b));
    if (ca != cb) return ca > cb;
    return a < b;
  });
  for (int oi = 0; oi < kPerfCoreCount; ++oi) {
    const auto core = static_cast<PerfCore>(order[oi]);
    const double core_cyc = r.core_stage_cycles(core);
    out += strfmt("%9.2f%%        --  %12.0f  %-7s  [%s] %.1f%% busy\n",
                  100.0 * core_cyc / total, core_cyc, perf_core_name(core),
                  perf_core_name(core), 100.0 * r.core_utilization(core));
    // Stages of this group, heaviest first; zero-cycle stages are noise.
    int stages[kPerfStageCount];
    int n = 0;
    for (int i = 0; i < kPerfStageCount; ++i) {
      if (kStages[i].core == core && r.stage_cycles[i] > 0.0) stages[n++] = i;
    }
    std::sort(stages, stages + n, [&](int a, int b) {
      if (r.stage_cycles[a] != r.stage_cycles[b])
        return r.stage_cycles[a] > r.stage_cycles[b];
      return a < b;
    });
    for (int si = 0; si < n; ++si) {
      const int i = stages[si];
      const double pct = 100.0 * r.stage_cycles[i] / total;
      out += strfmt("%9.2f%%  %7.2f%%  %12.0f  %-7s  %s\n", pct, pct,
                    r.stage_cycles[i], perf_core_name(core),
                    kStages[i].symbol);
    }
  }
  return out;
}

std::string format_flamegraph(const PerfReport& r) {
  std::string out;
  const char* root = r.engine.empty() ? "dtnsim" : r.engine.c_str();
  for (int i = 0; i < kPerfStageCount; ++i) {
    if (r.stage_cycles[i] <= 0.0) continue;
    out += strfmt("%s;%s;%s %lld\n", root,
                  perf_core_name(kStages[i].core), kStages[i].symbol,
                  static_cast<long long>(std::llround(r.stage_cycles[i])));
  }
  return out;
}

std::string format_flamegraph_diff(const PerfReport& before,
                                   const PerfReport& after) {
  // Stacks only diff when their frames match, so two different engines
  // fall back to the shared "dtnsim" root.
  const std::string root = (!before.engine.empty() && before.engine == after.engine)
                               ? before.engine
                               : std::string("dtnsim");
  std::string out;
  for (int i = 0; i < kPerfStageCount; ++i) {
    if (before.stage_cycles[i] <= 0.0 && after.stage_cycles[i] <= 0.0) continue;
    out += strfmt("%s;%s;%s %lld %lld\n", root.c_str(),
                  perf_core_name(kStages[i].core), kStages[i].symbol,
                  static_cast<long long>(std::llround(before.stage_cycles[i])),
                  static_cast<long long>(std::llround(after.stage_cycles[i])));
  }
  return out;
}

Json to_json(const PerfReport& r) {
  Json j = Json::object();
  j["ts_sec"] = units::to_seconds(r.ts);
  j["engine"] = r.engine;
  j["label"] = r.label;
  j["bytes_sent"] = r.bytes_sent;
  j["bytes_delivered"] = r.bytes_delivered;
  Json stages = Json::object();
  for (int i = 0; i < kPerfStageCount; ++i) {
    stages[kStages[i].name] = r.stage_cycles[i];
  }
  j["stages"] = std::move(stages);
  Json cores = Json::object();
  for (int c = 0; c < kPerfCoreCount; ++c) {
    Json core = Json::object();
    core["consumed_cycles"] = r.consumed_cycles[c];
    core["capacity_cycles"] = r.capacity_cycles[c];
    cores[kCoreNames[c]] = std::move(core);
  }
  j["cores"] = std::move(cores);
  Json flows = Json::array();
  for (const auto& f : r.flows) {
    Json jf = Json::object();
    jf["flow"] = f.flow;
    Json fs = Json::object();
    for (int i = 0; i < kPerfStageCount; ++i) {
      fs[kStages[i].name] = f.stage_cycles[i];
    }
    jf["stages"] = std::move(fs);
    flows.push_back(std::move(jf));
  }
  j["flows"] = std::move(flows);
  return j;
}

PerfReport perf_report_from_json(const Json& j) {
  PerfReport r;
  r.ts = units::seconds(j.number_at("ts_sec", 0));
  r.engine = j.string_at("engine", "");
  r.label = j.string_at("label", "");
  r.bytes_sent = j.number_at("bytes_sent", 0);
  r.bytes_delivered = j.number_at("bytes_delivered", 0);
  if (const Json* stages = j.find("stages"); stages && stages->is_object()) {
    for (int i = 0; i < kPerfStageCount; ++i) {
      r.stage_cycles[i] = stages->number_at(kStages[i].name, 0);
    }
  }
  if (const Json* cores = j.find("cores"); cores && cores->is_object()) {
    for (int c = 0; c < kPerfCoreCount; ++c) {
      if (const Json* core = cores->find(kCoreNames[c]);
          core && core->is_object()) {
        r.consumed_cycles[c] = core->number_at("consumed_cycles", 0);
        r.capacity_cycles[c] = core->number_at("capacity_cycles", 0);
      }
    }
  }
  if (const Json* flows = j.find("flows"); flows && flows->is_array()) {
    for (std::size_t fi = 0; fi < flows->size(); ++fi) {
      const Json* jf = flows->at(fi);
      PerfFlowCycles f;
      f.flow = static_cast<int>(jf->number_at("flow", 0));
      if (const Json* fs = jf->find("stages"); fs && fs->is_object()) {
        for (int i = 0; i < kPerfStageCount; ++i) {
          f.stage_cycles[i] = fs->number_at(kStages[i].name, 0);
        }
      }
      r.flows.push_back(std::move(f));
    }
  }
  return r;
}

Json perf_log_to_json(const std::vector<PerfReport>& log) {
  Json doc = Json::object();
  Json samples = Json::array();
  for (const auto& r : log) samples.push_back(to_json(r));
  doc["samples"] = std::move(samples);
  return doc;
}

std::vector<PerfReport> perf_log_from_json(const Json& doc) {
  std::vector<PerfReport> out;
  if (const Json* samples = doc.find("samples");
      samples && samples->is_array()) {
    for (std::size_t i = 0; i < samples->size(); ++i) {
      out.push_back(perf_report_from_json(*samples->at(i)));
    }
  }
  return out;
}

bool write_perf_log(const std::string& path,
                    const std::vector<PerfReport>& log) {
  std::ofstream out(path);
  if (!out) return false;
  out << perf_log_to_json(log).dump(2) << "\n";
  return static_cast<bool>(out);
}

void cross_check_stage_sum(const PerfReport& report) {
  for (int c = 0; c < kPerfCoreCount; ++c) {
    const double stage_sum =
        report.core_stage_cycles(static_cast<PerfCore>(c));
    const double consumed = report.consumed_cycles[c];
    // The split prices each term separately, so allow only fp drift.
    const double tol =
        1e-6 * std::max({std::fabs(stage_sum), std::fabs(consumed), 1.0});
    if (std::fabs(stage_sum - consumed) > tol) {
      throw std::logic_error(strfmt(
          "perf stage-sum divergence at t=%.6fs: %s stages sum to %.6f "
          "cycles but the engine charged %.6f (the attribution must account "
          "for exactly what CoreBudget consumed)",
          units::to_seconds(report.ts), kCoreNames[c], stage_sum, consumed));
    }
  }
}

PerfWatch::PerfWatch(Registry* registry, TraceSink* trace)
    : registry_(registry), trace_(trace) {}

const PerfReport& PerfWatch::sample(Nanos now) {
  if (!source_) {
    throw std::logic_error(
        "PerfWatch::sample with no snapshot source installed (the engine "
        "registers one in setup_telemetry when profiling is enabled)");
  }
  log_.push_back(source_(now));
  PerfReport& r = log_.back();
  r.ts = now;
  cross_check_stage_sum(r);
  mirror(r);
  return r;
}

void PerfWatch::final_sample(Nanos now) {
  if (!source_) return;
  // A watch interval that divides the horizon already logged a report at
  // `now` — re-sample in its place (see SsWatch::final_sample).
  if (!log_.empty() && log_.back().ts == now) log_.pop_back();
  sample(now);
}

void PerfWatch::mirror(const PerfReport& r) {
  if (registry_) {
    if (!g_tx_cyc_pb_) {
      g_tx_cyc_pb_ = registry_->gauge("perf.tx_cyc_per_byte", "cyc/B",
                                      "snd-side cycles per sent byte");
      g_rx_cyc_pb_ = registry_->gauge("perf.rx_cyc_per_byte", "cyc/B",
                                      "rcv-side cycles per delivered byte");
      g_total_cycles_ = registry_->gauge("perf.total_cycles", "cycles",
                                         "summed stage cycles, all cores");
      for (int c = 0; c < kPerfCoreCount; ++c) {
        g_util_[c] = registry_->gauge(
            strfmt("perf.%s_util", kCoreNames[c]), "frac",
            strfmt("%s consumed/capacity cycles", kCoreNames[c]));
      }
    }
    g_tx_cyc_pb_->set(r.tx_cyc_per_byte());
    g_rx_cyc_pb_->set(r.rx_cyc_per_byte());
    g_total_cycles_->set(r.total_cycles());
    for (int c = 0; c < kPerfCoreCount; ++c) {
      g_util_[c]->set(r.core_utilization(static_cast<PerfCore>(c)));
    }
  }
  if (trace_) {
    trace_->instant("perf_sample", "perf", r.ts, 0,
                    {{"total_cycles", r.total_cycles()},
                     {"tx_cyc_per_byte", r.tx_cyc_per_byte()},
                     {"rx_cyc_per_byte", r.rx_cyc_per_byte()}});
  }
}

void PerfWatch::arm(sim::Engine& engine, Nanos interval, Nanos horizon) {
  const Nanos step = std::max<Nanos>(interval, 1);
  fire_ = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = fire_;
  *fire_ = [this, &engine, step, horizon, weak] {
    sample(engine.now());
    const auto self = weak.lock();
    if (self && engine.now() + step <= horizon) {
      engine.schedule(step, *self);
    }
  };
  if (step <= horizon) engine.schedule(step, *fire_);
}

}  // namespace dtnsim::obs
