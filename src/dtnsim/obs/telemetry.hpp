// Telemetry bundle: one Registry + TraceSink + FlowProbe per simulation run.
//
// TransferSimulation takes an optional non-owning Telemetry*; when present
// it registers its metrics, emits trace events, and arms the probe on the
// run's engine. When absent (the default) the instrumentation costs one
// branch per tick — cheap enough to leave compiled in everywhere.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/obs/perf.hpp"
#include "dtnsim/obs/probe.hpp"
#include "dtnsim/obs/ss.hpp"
#include "dtnsim/obs/trace.hpp"

namespace dtnsim::obs {

struct TelemetryConfig {
  bool enabled = false;
  Nanos probe_interval = units::seconds(1);  // iperf3's -i 1 analogue
  std::size_t trace_capacity = 1 << 16;      // ring: most recent events kept
  // Cap on per-round Begin/End span pairs recorded to the trace; rounds
  // beyond the cap still emit instants/counters (LAN runs tick ~300k times
  // per simulated minute, which would drown the ring in span pairs).
  std::size_t max_round_spans = 128;
  // Non-empty: stream every trace event to this file as it is recorded
  // (StreamingTraceSink) instead of relying on the ring alone — no capacity
  // ceiling for long runs. The ring still serves in-memory queries.
  std::string trace_stream_path;
  std::size_t stream_buffer_events = 256;  // events buffered between writes
  // Kernel-eye ss/tcp_info snapshots (dtnsim-ss). Off by default: engines
  // build snapshot state only when enabled, so a plain telemetry run pays
  // nothing for the ss surface and its outputs stay bit-identical.
  bool ss_enabled = false;
  // Watch cadence; 0 = final snapshot only (dtnsim-ss without --watch).
  Nanos ss_interval = 0;
  // Exact per-stage cycle attribution (dtnsim-perf). Off by default: the
  // engines allocate their perf accumulators only when enabled, so an
  // unprofiled run pays nothing and its outputs stay bit-identical.
  bool perf_enabled = false;
  // Sampler cadence; 0 = final report only (dtnsim-perf without --record).
  Nanos perf_interval = 0;
};

// Throws std::invalid_argument on a degenerate config (probe_interval <= 0,
// trace_capacity == 0, stream_buffer_events == 0, ss_interval or
// perf_interval < 0 or set without the matching enable bit). Called by
// Telemetry's constructor; exposed for early CLI-level validation.
void validate(const TelemetryConfig& cfg);

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig cfg = {});

  const TelemetryConfig& config() const { return cfg_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  TraceSink& trace() { return *trace_; }
  const TraceSink& trace() const { return *trace_; }
  FlowProbe& probe() { return probe_; }
  const SeriesTable& series() const { return probe_.series(); }
  SsWatch& ss() { return ss_; }
  const SsWatch& ss() const { return ss_; }
  PerfWatch& perf() { return perf_; }
  const PerfWatch& perf() const { return perf_; }
  // Whether the owning engine should build ss snapshot state at all.
  bool wants_ss() const { return cfg_.ss_enabled; }
  // Whether the owning engine should meter per-stage cycles at all.
  bool wants_perf() const { return cfg_.perf_enabled; }
  // Satellite cross-check: after installing a snapshot source, tie the
  // probe to the watch so every probe sample whose timestamp matches the
  // latest ss report asserts both surfaces agree on delivered bytes.
  void link_ss_cross_check();

 private:
  TelemetryConfig cfg_;
  Registry registry_;
  std::unique_ptr<TraceSink> trace_;
  FlowProbe probe_;
  SsWatch ss_;
  PerfWatch perf_;
};

// The sender-side constraint that bounded a round's achievable bytes —
// the paper's recurring "what is the bottleneck *right now*" question.
enum class RoundLimit {
  None = 0,
  Window,    // cwnd / rwnd / wmem
  Pacing,    // fq-rate or BBR pacing
  AppCpu,    // per-flow application-core cycles
  IrqCpu,    // shared IRQ-pool cycles
  LineRate,  // NIC line rate
  Dma,       // PCIe/IOMMU DMA ceiling
  MemBw,     // stack memory bandwidth
};

const char* round_limit_name(RoundLimit limit);

}  // namespace dtnsim::obs
