// Metrics registry: counters, gauges and time-weighted histograms.
//
// The paper's methodology is instrumentation-first — iperf3 interval
// reports, mpstat alongside, ss/ethtool counters to explain anomalies.
// This registry is the simulator's equivalent: every layer (kern, net,
// tcp, flow) publishes its counters here and the per-flow probe samples
// them on the engine clock. Design constraints:
//
//   - cheap enough to be always-on: updating a metric is a pointer-deref
//     plus an add/store; no locks, no allocation on the hot path.
//   - stable handles: registration returns a pointer that stays valid for
//     the registry's lifetime (metrics are stored in a deque).
//   - deterministic export order: metrics snapshot in registration order,
//     so CSV columns and golden tests are stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace dtnsim::obs {

enum class MetricKind { Counter, Gauge, Histogram };

// Monotonically increasing total (bytes sent, drops, retransmit segments).
class Counter {
 public:
  void add(double delta) { value_ += delta; }
  void increment() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Last-write-wins instantaneous value (cwnd, optmem occupancy, utilization).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  // Relative adjustment for backlog-style gauges (enqueue +, depart -).
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Time-weighted distribution: add(value, dt) weighs each observation by how
// long it was in effect, so a 100 ms spike and a 10 s plateau contribute
// proportionally. Log2 buckets give a cheap shape summary for export.
class TimeWeightedHistogram {
 public:
  static constexpr int kBuckets = 64;  // bucket i covers [2^(i-1), 2^i)

  void add(double value, double weight_sec);

  double mean() const { return wtotal_ > 0 ? wsum_ / wtotal_ : 0.0; }
  double min() const { return wtotal_ > 0 ? min_ : 0.0; }
  double max() const { return wtotal_ > 0 ? max_ : 0.0; }
  double total_weight() const { return wtotal_; }
  // Smallest value v such that at least `p` (in [0,1]) of the observed
  // time was spent at values <= v. Bucket-resolution (factor-of-2) answer.
  double quantile(double p) const;

 private:
  double wsum_ = 0.0;
  double wtotal_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double weights_[kBuckets] = {};
};

struct MetricDesc {
  std::string name;  // dotted path, e.g. "zc.optmem_used"
  MetricKind kind = MetricKind::Gauge;
  std::string unit;  // "bytes", "bps", "frac", "segments", ...
  std::string help;
  // Labeled-family metadata; empty family means a plain (unlabeled) metric.
  // A labeled instance's full name is "family{key=value}" (see labeled_name).
  std::string family;
  std::string label_key;
  int label_value = -1;
};

// Canonical spelling of a labeled instance: "tcp.cwnd_bytes{flow=3}".
std::string labeled_name(const std::string& family, const std::string& key,
                         int value);

// One exported observation of a metric (see Registry::snapshot).
struct MetricSample {
  const MetricDesc* desc = nullptr;
  double value = 0.0;  // counter total / gauge value / histogram mean
  double min = 0.0;    // histograms only
  double max = 0.0;    // histograms only
  double p50 = 0.0;    // histograms only (bucket-resolution quantiles)
  double p99 = 0.0;    // histograms only
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create by name. Re-registering an existing name returns the same
  // instance (kind must match; mismatches throw std::logic_error).
  Counter* counter(const std::string& name, const std::string& unit,
                   const std::string& help = {});
  Gauge* gauge(const std::string& name, const std::string& unit,
               const std::string& help = {});
  TimeWeightedHistogram* histogram(const std::string& name, const std::string& unit,
                                   const std::string& help = {});

  // Labeled-family instances ("tcp.cwnd_bytes{flow=3}"): stable per-label
  // handles, registered (and therefore exported) in the order each label
  // value first appears — register flows in index order for deterministic
  // column expansion.
  Counter* counter(const std::string& family, const std::string& label_key,
                   int label_value, const std::string& unit,
                   const std::string& help = {});
  Gauge* gauge(const std::string& family, const std::string& label_key,
               int label_value, const std::string& unit,
               const std::string& help = {});
  TimeWeightedHistogram* histogram(const std::string& family,
                                   const std::string& label_key, int label_value,
                                   const std::string& unit,
                                   const std::string& help = {});

  std::size_t size() const { return entries_.size(); }
  const MetricDesc* find(const std::string& name) const;
  // All instances of one labeled family, in registration order.
  std::vector<const MetricDesc*> family_instances(const std::string& family) const;
  // Scalar value by full name (counter total / gauge value / histogram mean);
  // `fallback` when the metric does not exist.
  double value_of(const std::string& name, double fallback = 0.0) const;

  // Current value of every metric, in registration order.
  std::vector<MetricSample> snapshot() const;
  // Column headers matching row() order (histograms expand to _mean, _p50,
  // _p99 at bucket resolution).
  std::vector<std::string> column_names() const;
  // Scalars matching column_names() order.
  std::vector<double> row() const;

 private:
  struct Entry {
    MetricDesc desc;
    Counter counter;
    Gauge gauge;
    TimeWeightedHistogram histogram;
  };

  Entry* get_or_create(const std::string& name, MetricKind kind,
                       const std::string& unit, const std::string& help,
                       const std::string& family = {},
                       const std::string& label_key = {}, int label_value = -1);

  std::deque<Entry> entries_;  // deque: stable pointers across growth
};

}  // namespace dtnsim::obs
