#include "dtnsim/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dtnsim::obs {
namespace {

int bucket_of(double value) {
  if (value <= 1.0) return 0;
  const int b = static_cast<int>(std::ceil(std::log2(value)));
  return std::clamp(b, 0, TimeWeightedHistogram::kBuckets - 1);
}

}  // namespace

void TimeWeightedHistogram::add(double value, double weight_sec) {
  if (weight_sec <= 0) return;
  if (wtotal_ == 0.0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  wsum_ += value * weight_sec;
  wtotal_ += weight_sec;
  weights_[bucket_of(value)] += weight_sec;
}

double TimeWeightedHistogram::quantile(double p) const {
  if (wtotal_ <= 0) return 0.0;
  const double target = std::clamp(p, 0.0, 1.0) * wtotal_;
  double acc = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += weights_[i];
    if (acc >= target) return std::min(std::exp2(static_cast<double>(i)), max_);
  }
  return max_;
}

std::string labeled_name(const std::string& family, const std::string& key,
                         int value) {
  return family + "{" + key + "=" + std::to_string(value) + "}";
}

Registry::Entry* Registry::get_or_create(const std::string& name, MetricKind kind,
                                         const std::string& unit,
                                         const std::string& help,
                                         const std::string& family,
                                         const std::string& label_key,
                                         int label_value) {
  for (auto& e : entries_) {
    if (e.desc.name == name) {
      if (e.desc.kind != kind) {
        throw std::logic_error("metric '" + name + "' re-registered with different kind");
      }
      return &e;
    }
  }
  Entry& e = entries_.emplace_back();
  e.desc.name = name;
  e.desc.kind = kind;
  e.desc.unit = unit;
  e.desc.help = help;
  e.desc.family = family;
  e.desc.label_key = label_key;
  e.desc.label_value = label_value;
  return &e;
}

Counter* Registry::counter(const std::string& name, const std::string& unit,
                           const std::string& help) {
  return &get_or_create(name, MetricKind::Counter, unit, help)->counter;
}

Gauge* Registry::gauge(const std::string& name, const std::string& unit,
                       const std::string& help) {
  return &get_or_create(name, MetricKind::Gauge, unit, help)->gauge;
}

TimeWeightedHistogram* Registry::histogram(const std::string& name,
                                           const std::string& unit,
                                           const std::string& help) {
  return &get_or_create(name, MetricKind::Histogram, unit, help)->histogram;
}

Counter* Registry::counter(const std::string& family, const std::string& label_key,
                           int label_value, const std::string& unit,
                           const std::string& help) {
  return &get_or_create(labeled_name(family, label_key, label_value),
                        MetricKind::Counter, unit, help, family, label_key,
                        label_value)
              ->counter;
}

Gauge* Registry::gauge(const std::string& family, const std::string& label_key,
                       int label_value, const std::string& unit,
                       const std::string& help) {
  return &get_or_create(labeled_name(family, label_key, label_value),
                        MetricKind::Gauge, unit, help, family, label_key,
                        label_value)
              ->gauge;
}

TimeWeightedHistogram* Registry::histogram(const std::string& family,
                                           const std::string& label_key,
                                           int label_value,
                                           const std::string& unit,
                                           const std::string& help) {
  return &get_or_create(labeled_name(family, label_key, label_value),
                        MetricKind::Histogram, unit, help, family, label_key,
                        label_value)
              ->histogram;
}

const MetricDesc* Registry::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.desc.name == name) return &e.desc;
  }
  return nullptr;
}

std::vector<const MetricDesc*> Registry::family_instances(
    const std::string& family) const {
  std::vector<const MetricDesc*> out;
  for (const auto& e : entries_) {
    if (e.desc.family == family) out.push_back(&e.desc);
  }
  return out;
}

double Registry::value_of(const std::string& name, double fallback) const {
  for (const auto& e : entries_) {
    if (e.desc.name != name) continue;
    switch (e.desc.kind) {
      case MetricKind::Counter:
        return e.counter.value();
      case MetricKind::Gauge:
        return e.gauge.value();
      case MetricKind::Histogram:
        return e.histogram.mean();
    }
  }
  return fallback;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.desc = &e.desc;
    switch (e.desc.kind) {
      case MetricKind::Counter:
        s.value = e.counter.value();
        break;
      case MetricKind::Gauge:
        s.value = e.gauge.value();
        break;
      case MetricKind::Histogram:
        s.value = e.histogram.mean();
        s.min = e.histogram.min();
        s.max = e.histogram.max();
        s.p50 = e.histogram.quantile(0.50);
        s.p99 = e.histogram.quantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> Registry::column_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e.desc.kind == MetricKind::Histogram) {
      out.push_back(e.desc.name + "_mean");
      out.push_back(e.desc.name + "_p50");
      out.push_back(e.desc.name + "_p99");
    } else {
      out.push_back(e.desc.name);
    }
  }
  return out;
}

std::vector<double> Registry::row() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& s : snapshot()) {
    out.push_back(s.value);
    if (s.desc->kind == MetricKind::Histogram) {
      out.push_back(s.p50);
      out.push_back(s.p99);
    }
  }
  return out;
}

}  // namespace dtnsim::obs
