// Trace sink: bounded ring buffer of spans / instants / counter samples,
// exported as Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev).
//
// Event kinds map onto the trace_event phases:
//   Begin/End -> "B"/"E" duration slices  (round N, transfer)
//   Instant   -> "i"                       (zc_fallback, ring_overflow, ...)
//   Counter   -> "C"                       (optmem occupancy, cwnd, goodput)
//
// The ring keeps the *most recent* `capacity` events; older events are
// overwritten and counted in dropped(). Timestamps are simulation Nanos;
// export converts to the microseconds trace_event expects.
//
// StreamingTraceSink removes the ring-capacity ceiling: every event is also
// serialized incrementally to a file with bounded buffering, so arbitrarily
// long runs keep their full event history on disk while the in-memory ring
// still answers contains()/count() queries over the recent past.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "dtnsim/util/json.hpp"
#include "dtnsim/util/units.hpp"

namespace dtnsim::obs {

enum class TracePhase : std::uint8_t { Begin, End, Instant, Counter };

struct TraceEvent {
  Nanos ts = 0;
  TracePhase phase = TracePhase::Instant;
  std::string name;
  std::string category;
  int track = 0;  // exported as tid; one track per flow, 0 = run-level
  // Small inline key/value payload ("args" in the JSON).
  std::vector<std::pair<std::string, double>> args;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1 << 16);
  virtual ~TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void begin(std::string name, std::string category, Nanos ts, int track = 0,
             std::vector<std::pair<std::string, double>> args = {});
  void end(std::string name, std::string category, Nanos ts, int track = 0);
  void instant(std::string name, std::string category, Nanos ts, int track = 0,
               std::vector<std::pair<std::string, double>> args = {});
  void counter(std::string name, Nanos ts, double value, int track = 0);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(ring_.size());
  }

  // Events in chronological (insertion) order, oldest surviving first.
  std::vector<TraceEvent> events() const;
  bool contains(const std::string& name) const;
  std::size_t count(const std::string& name) const;

  // Append this sink's events to a chrome trace "traceEvents" array, tagging
  // them with `pid` (one pid per flow-sim keeps multi-run traces separable)
  // and an optional process_name metadata record.
  void append_chrome_events(Json& trace_events, int pid,
                            const std::string& process_name = {}) const;
  // Standalone {"traceEvents": [...], "displayTimeUnit": "ms"} document.
  Json to_chrome_trace(const std::string& process_name = {}) const;
  bool write_file(const std::string& path,
                  const std::string& process_name = {}) const;

  // Streaming hooks; no-ops on the plain ring sink. flush() forces any
  // buffered events to disk mid-run; finalize() closes the JSON document
  // (idempotent). Both return false only on write failure.
  virtual bool flush() { return true; }
  virtual bool finalize() { return true; }

 protected:
  // Records into the ring; subclasses extend this to stream.
  virtual void push(TraceEvent ev);

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next overwrite position once full
  std::uint64_t recorded_ = 0;
};

// Write-as-you-go trace sink: every event is appended to `path` as it is
// recorded (trace_event JSON, one event per line inside the traceEvents
// array), buffered up to `buffer_events` between file writes. The inherited
// ring keeps the most recent `ring_capacity` events for in-memory queries;
// the file has no capacity ceiling. finalize() (or destruction) closes the
// document so it parses; call flush() to checkpoint mid-run.
class StreamingTraceSink : public TraceSink {
 public:
  explicit StreamingTraceSink(const std::string& path,
                              const std::string& process_name = {},
                              std::size_t buffer_events = 256,
                              std::size_t ring_capacity = 1 << 12);
  ~StreamingTraceSink() override;

  const std::string& path() const { return path_; }
  bool ok() const { return ok_; }
  // Events serialized toward the file so far (buffered or written).
  std::uint64_t streamed() const { return streamed_; }

  bool flush() override;
  bool finalize() override;

 protected:
  void push(TraceEvent ev) override;

 private:
  std::string path_;
  std::ofstream out_;
  std::string buffer_;
  std::size_t buffer_events_;
  std::size_t buffered_ = 0;
  std::uint64_t streamed_ = 0;
  bool wrote_any_ = false;  // whether a ',' separator is needed
  bool finalized_ = false;
  bool ok_ = false;
};

// Merge several labelled sinks into one chrome trace document; each sink
// gets its own pid and a process_name metadata entry with its label.
Json merged_chrome_trace(
    const std::vector<std::pair<std::string, const TraceSink*>>& sinks);
bool write_merged_chrome_trace(
    const std::string& path,
    const std::vector<std::pair<std::string, const TraceSink*>>& sinks);

}  // namespace dtnsim::obs
