#include "dtnsim/obs/telemetry.hpp"

namespace dtnsim::obs {

const char* round_limit_name(RoundLimit limit) {
  switch (limit) {
    case RoundLimit::None:
      return "none";
    case RoundLimit::Window:
      return "window";
    case RoundLimit::Pacing:
      return "pacing";
    case RoundLimit::AppCpu:
      return "app_cpu";
    case RoundLimit::IrqCpu:
      return "irq_cpu";
    case RoundLimit::LineRate:
      return "line_rate";
    case RoundLimit::Dma:
      return "dma";
    case RoundLimit::MemBw:
      return "mem_bw";
  }
  return "?";
}

}  // namespace dtnsim::obs
