#include "dtnsim/obs/telemetry.hpp"

#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::obs {

void validate(const TelemetryConfig& cfg) {
  if (cfg.probe_interval <= 0) {
    throw std::invalid_argument(strfmt(
        "TelemetryConfig.probe_interval must be positive, got %lld ns "
        "(a non-positive interval would arm a degenerate probe)",
        static_cast<long long>(cfg.probe_interval)));
  }
  if (cfg.trace_capacity == 0) {
    throw std::invalid_argument(
        "TelemetryConfig.trace_capacity must be >= 1: a zero-capacity ring "
        "would silently drop every trace event (use trace_stream_path for "
        "unbounded histories)");
  }
  if (cfg.stream_buffer_events == 0) {
    throw std::invalid_argument(
        "TelemetryConfig.stream_buffer_events must be >= 1 (events buffered "
        "between streaming writes)");
  }
  if (cfg.ss_interval < 0) {
    throw std::invalid_argument(strfmt(
        "TelemetryConfig.ss_interval must be >= 0 (0 = final snapshot only), "
        "got %lld ns",
        static_cast<long long>(cfg.ss_interval)));
  }
  if (cfg.ss_interval > 0 && !cfg.ss_enabled) {
    throw std::invalid_argument(
        "TelemetryConfig.ss_interval set without ss_enabled: an ss watch "
        "cadence on a disabled snapshot surface would silently sample "
        "nothing");
  }
  if (cfg.perf_interval < 0) {
    throw std::invalid_argument(strfmt(
        "TelemetryConfig.perf_interval must be >= 0 (0 = final report only), "
        "got %lld ns",
        static_cast<long long>(cfg.perf_interval)));
  }
  if (cfg.perf_interval > 0 && !cfg.perf_enabled) {
    throw std::invalid_argument(
        "TelemetryConfig.perf_interval set without perf_enabled: a perf "
        "sampling cadence on a disabled attribution surface would silently "
        "sample nothing");
  }
}

namespace {

std::unique_ptr<TraceSink> make_trace_sink(const TelemetryConfig& cfg) {
  if (!cfg.trace_stream_path.empty()) {
    return std::make_unique<StreamingTraceSink>(
        cfg.trace_stream_path, /*process_name=*/"", cfg.stream_buffer_events,
        cfg.trace_capacity);
  }
  return std::make_unique<TraceSink>(cfg.trace_capacity);
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig cfg)
    : cfg_(std::move(cfg)),
      trace_((validate(cfg_), make_trace_sink(cfg_))),
      probe_(&registry_, cfg_.probe_interval, trace_.get()),
      ss_(&registry_, trace_.get()),
      perf_(&registry_, trace_.get()) {}

void Telemetry::link_ss_cross_check() {
  probe_.set_cross_check([this](Nanos now) {
    const auto& log = ss_.log();
    if (log.empty() || log.back().ts != now) return;
    cross_check_delivered(log.back(), registry_);
  });
}

const char* round_limit_name(RoundLimit limit) {
  switch (limit) {
    case RoundLimit::None:
      return "none";
    case RoundLimit::Window:
      return "window";
    case RoundLimit::Pacing:
      return "pacing";
    case RoundLimit::AppCpu:
      return "app_cpu";
    case RoundLimit::IrqCpu:
      return "irq_cpu";
    case RoundLimit::LineRate:
      return "line_rate";
    case RoundLimit::Dma:
      return "dma";
    case RoundLimit::MemBw:
      return "mem_bw";
  }
  return "?";
}

}  // namespace dtnsim::obs
