#include "dtnsim/obs/probe.hpp"

#include <algorithm>
#include <fstream>
#include <memory>

#include "dtnsim/util/csv.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::obs {

std::size_t SeriesTable::column_index(const std::string& name) const {
  const auto it = std::find(columns.begin(), columns.end(), name);
  return it == columns.end() ? static_cast<std::size_t>(-1)
                             : static_cast<std::size_t>(it - columns.begin());
}

std::vector<double> SeriesTable::column(const std::string& name) const {
  std::vector<double> out;
  const std::size_t idx = column_index(name);
  if (idx == static_cast<std::size_t>(-1)) return out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[idx]);
  return out;
}

double SeriesTable::max_of(const std::string& name) const {
  double best = 0.0;
  for (double v : column(name)) best = std::max(best, v);
  return best;
}

std::string SeriesTable::to_csv() const {
  CsvWriter csv(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) cells.push_back(strfmt("%.6g", v));
    csv.add_row(cells);
  }
  return csv.str();
}

std::string SeriesTable::to_jsonl() const {
  std::string out;
  for (const auto& row : rows) {
    out += "{";
    for (std::size_t c = 0; c < columns.size() && c < row.size(); ++c) {
      if (c) out += ",";
      out += strfmt("\"%s\":%.6g", columns[c].c_str(), row[c]);
    }
    out += "}\n";
  }
  return out;
}

bool SeriesTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string merged_series_csv(const std::vector<LabeledSeries>& series) {
  std::vector<std::string> headers{"test", "repeat"};
  for (const auto& s : series) {
    if (s.series && !s.series->columns.empty()) {
      headers.insert(headers.end(), s.series->columns.begin(), s.series->columns.end());
      break;
    }
  }
  CsvWriter csv(headers);
  for (const auto& s : series) {
    if (!s.series) continue;
    for (const auto& row : s.series->rows) {
      std::vector<std::string> cells{s.test, strfmt("%d", s.repeat)};
      for (double v : row) cells.push_back(strfmt("%.6g", v));
      csv.add_row(cells);
    }
  }
  return csv.str();
}

bool write_merged_series_csv(const std::string& path,
                             const std::vector<LabeledSeries>& series) {
  std::ofstream out(path);
  if (!out) return false;
  out << merged_series_csv(series);
  return static_cast<bool>(out);
}

FlowProbe::FlowProbe(Registry* registry, Nanos interval, TraceSink* trace)
    : registry_(registry), trace_(trace), interval_(std::max<Nanos>(interval, 1)) {}

void FlowProbe::sample(Nanos now) {
  if (pre_sample_) pre_sample_(now);
  if (table_.columns.empty()) {
    table_.columns.push_back("time_s");
    const auto names = registry_->column_names();
    table_.columns.insert(table_.columns.end(), names.begin(), names.end());
  } else if (registry_->column_names().size() + 1 > table_.columns.size()) {
    // The registry grew since the first sample (e.g. a second engine
    // registered its metrics into a shared Telemetry). Registration order is
    // append-only, so the existing columns are a prefix: extend the header
    // and zero-pad earlier rows to keep the table rectangular.
    const auto names = registry_->column_names();
    table_.columns.assign(names.begin(), names.end());
    table_.columns.insert(table_.columns.begin(), "time_s");
    for (auto& r : table_.rows) r.resize(table_.columns.size(), 0.0);
  }
  std::vector<double> row;
  row.reserve(table_.columns.size());
  row.push_back(units::to_seconds(now));
  const auto values = registry_->row();
  row.insert(row.end(), values.begin(), values.end());
  table_.rows.push_back(std::move(row));

  if (trace_) {
    const auto samples = registry_->snapshot();
    for (const auto& s : samples) {
      trace_->counter(s.desc->name, now, s.value);
    }
  }
  if (cross_check_) cross_check_(now);
}

void FlowProbe::arm(sim::Engine& engine, Nanos horizon,
                    std::function<void(Nanos)> pre_sample) {
  pre_sample_ = std::move(pre_sample);
  // Self-rescheduling sampler, scheduled *after* the model's round tick at
  // coincident timestamps because arm() runs after the tick is scheduled.
  // The probe owns the callback; scheduled copies hold only a weak_ptr so
  // there is no shared_ptr cycle.
  fire_ = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = fire_;
  *fire_ = [this, &engine, horizon, weak] {
    sample(engine.now());
    const auto self = weak.lock();
    if (self && engine.now() + interval_ <= horizon) {
      engine.schedule(interval_, *self);
    }
  };
  if (interval_ <= horizon) engine.schedule(interval_, *fire_);
}

}  // namespace dtnsim::obs
