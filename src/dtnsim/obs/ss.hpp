// Kernel-eye socket/NIC/qdisc snapshots: the simulator's `ss -i`,
// `ethtool -S` and `tc -s qdisc`.
//
// The paper's entire diagnostic method is Linux's introspection surface —
// tcp_info per socket, NIC counters per device, qdisc stats per interface.
// This header defines plain-data snapshot structs mirroring the fields the
// model can honestly populate, text formatters shaped like the real tools'
// output, a JSON round-trip (dtnsim-ss --json / --replay), and SsWatch: a
// self-rescheduling sampler (the `ss` analogue of FlowProbe's iperf3 -i)
// that pulls an SsReport from the engine on the simulation clock and
// mirrors headline fields into the shared Registry/trace sinks.
//
// Layering: obs sits below net/tcp/kern, so these structs carry copies of
// engine state; each engine registers a SnapshotFn that builds a report
// from its own internals. Nothing here touches model behaviour — snapshot
// sources only read.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/obs/trace.hpp"
#include "dtnsim/sim/engine.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::obs {

// One socket's `ss -i` / tcp_info view. Fields map 1:1 onto struct tcp_info
// members where a counterpart exists (docs/OBSERVABILITY.md has the table);
// zerocopy/optmem fields extend it the way `ss --memory` + the MSG_ZEROCOPY
// error-queue counters would on a real DTN.
struct TcpInfoSnapshot {
  int flow = 0;
  std::string ca_name = "cubic";        // tcpi_ca_state's algorithm name
  bool in_slow_start = false;           // snd_cwnd < snd_ssthresh
  double mss_bytes = 0.0;               // tcpi_snd_mss
  double snd_cwnd_bytes = 0.0;          // tcpi_snd_cwnd * mss
  double snd_ssthresh_bytes = 0.0;      // tcpi_snd_ssthresh * mss (0: BBR)
  double rtt_sec = 0.0;                 // tcpi_rtt
  double rttvar_sec = 0.0;              // tcpi_rttvar
  double min_rtt_sec = 0.0;             // tcpi_min_rtt
  double pacing_rate_bps = 0.0;         // tcpi_pacing_rate
  double delivery_rate_bps = 0.0;       // tcpi_delivery_rate
  bool delivery_rate_app_limited = false;  // tcpi_delivery_rate_app_limited
  double send_rate_bps = 0.0;           // ss's computed "send" figure
  double bytes_sent = 0.0;              // tcpi_bytes_sent (wire, cumulative)
  double bytes_acked = 0.0;             // tcpi_bytes_acked
  double bytes_retrans = 0.0;           // tcpi_bytes_retrans
  double segs_retrans = 0.0;            // tcpi_total_retrans
  double notsent_bytes = 0.0;           // tcpi_notsent_bytes
  double rcv_space_bytes = 0.0;         // tcpi_rcv_space (advertised headroom)
  // Receiver-side estimates — observable once loss/reorder events (scenario
  // timelines, retransmitted holes) make the receive path interesting.
  double rcv_rtt_sec = 0.0;             // tcpi_rcv_rtt (receiver's estimate)
  double rcv_ooopack = 0.0;             // tcpi_rcv_ooopack (out-of-order segs)
  // MSG_ZEROCOPY accounting (the Fig. 9 knee lives here).
  double optmem_used_bytes = 0.0;       // in-flight ubuf_info charges
  double optmem_max_bytes = 0.0;        // net.core.optmem_max
  double optmem_hiwater_bytes = 0.0;    // lifetime peak charge
  double zc_sent_bytes = 0.0;           // pinned sends (no copy)
  double zc_copied_bytes = 0.0;         // SO_EE_CODE_ZEROCOPY_COPIED fallbacks
  double zc_copied_sends = 0.0;         // sends that (partially) fell back
};

// `ethtool -S`-style device counters (receiver NIC). Cumulative since run
// start, except the high-water gauge.
struct NicCountersSnapshot {
  std::string device;                   // NicSpec model name
  double rx_bytes = 0.0;                // accepted into the host
  double rx_dropped_bytes = 0.0;        // rx_out_of_buffer payload
  double rx_dropped_events = 0.0;       // ticks/bursts with ring overrun
  double rx_ring_hiwater_frac = 0.0;    // peak ring fill in [0, 1]
  double tx_pause_frames = 0.0;         // 802.3x pause sent (rx -> tx side)
  double rx_pause_frames = 0.0;         // pause observed by the sender
  double hw_gro_coalesced = 0.0;        // SHAMPO-merged aggregates
};

// `tc -s qdisc`-style counters for the sender's root qdisc.
struct QdiscCountersSnapshot {
  std::string kind = "fq";              // fq | fq_codel
  double sent_bytes = 0.0;
  double throttled = 0.0;               // pacing held traffic back
  double pacing_delay_sec = 0.0;        // cumulative pacing-induced delay
  double drops = 0.0;                   // fq_codel sojourn drops
  double backlog_bytes = 0.0;           // enqueued, not yet departed
};

// One dtnsim-ss sample: everything an operator would pull at time `ts`.
struct SsReport {
  Nanos ts = 0;
  std::string engine;                   // "fluid" | "packet"
  std::string label;                    // test/cell name (merged dumps)
  std::vector<TcpInfoSnapshot> sockets;
  NicCountersSnapshot nic;
  QdiscCountersSnapshot qdisc;

  double total_bytes_acked() const;
  double total_delivery_rate_bps() const;
};

// ---- text renderers (shaped like the real tools' output) -----------------
std::string format_tcp_info(const TcpInfoSnapshot& s);
std::string format_ethtool(const NicCountersSnapshot& s);
std::string format_tc(const QdiscCountersSnapshot& s);
// Full report: per-socket blocks + NIC + qdisc sections.
std::string format_ss(const SsReport& r);
// Side-by-side comparison of two reports (`dtnsim-ss --diff sick.json
// tuned.json`): one row per headline field with the B-A delta, so a "sick"
// and a "tuned" recording of the same scenario can be read in one table.
std::string format_ss_diff(const SsReport& a, const SsReport& b);

// ---- JSON round-trip (dtnsim-ss --json / --replay) -----------------------
Json to_json(const TcpInfoSnapshot& s);
Json to_json(const SsReport& r);
TcpInfoSnapshot tcp_info_from_json(const Json& j);
SsReport report_from_json(const Json& j);
// A watch log as one document: {"snapshots": [...]}.
Json ss_log_to_json(const std::vector<SsReport>& log);
std::vector<SsReport> ss_log_from_json(const Json& doc);
bool write_ss_log(const std::string& path, const std::vector<SsReport>& log);

// Builds the current report on demand; installed by the engine that owns
// the run. Must only *read* engine state (sampling is observation).
using SnapshotFn = std::function<SsReport(Nanos)>;

// Satellite cross-check: a snapshot's summed bytes_acked must equal the
// probe-facing delivered-bytes counter of the same engine (flow.* for
// fluid, pkt.* for packet) at the same timestamp. Throws std::logic_error
// on divergence — the two surfaces reporting different totals would mean
// the "ss view" and the "iperf3 view" of one run disagree.
void cross_check_delivered(const SsReport& report, const Registry& registry);

// The `ss`-side sampler. Like FlowProbe it self-reschedules on the engine
// clock; each firing pulls a report from the installed SnapshotFn, appends
// it to the in-memory log, mirrors headline fields into ss.* registry
// gauges, and drops an instant into the trace. With no source installed
// sampling throws (arming without an engine attached is a setup bug).
class SsWatch {
 public:
  // `registry` must outlive the watch. `trace` may be null (no mirroring).
  explicit SsWatch(Registry* registry, TraceSink* trace = nullptr);

  void set_source(SnapshotFn fn) { source_ = std::move(fn); }
  bool has_source() const { return static_cast<bool>(source_); }

  // Take one sample now. Returns the stored report.
  const SsReport& sample(Nanos now);
  // End-of-run sample. If the last report already carries this timestamp
  // (a watch interval that divides the horizon) it is replaced, not
  // duplicated: the in-run event fired before the final round's tail was
  // accounted, so only a fresh sample reflects the true end state.
  void final_sample(Nanos now);

  // Schedule sampling at interval, 2*interval, ... <= horizon.
  void arm(sim::Engine& engine, Nanos interval, Nanos horizon);

  const std::vector<SsReport>& log() const { return log_; }
  std::size_t samples_taken() const { return log_.size(); }
  void clear_log() { log_.clear(); }

 private:
  void mirror(const SsReport& r);

  Registry* registry_;
  TraceSink* trace_;
  SnapshotFn source_;
  std::vector<SsReport> log_;
  std::shared_ptr<std::function<void()>> fire_;  // owner of the sampler event

  // ss.* mirror gauges, registered on first sample so a watch-less run
  // never widens the metric table.
  Gauge* g_sockets_ = nullptr;
  Gauge* g_delivery_ = nullptr;
  Gauge* g_optmem_used_ = nullptr;
  Gauge* g_zc_copied_ = nullptr;
  Gauge* g_ring_hiwater_ = nullptr;
  Gauge* g_qdisc_throttled_ = nullptr;
};

}  // namespace dtnsim::obs
