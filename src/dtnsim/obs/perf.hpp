// Simulated `perf`: exact per-stage CPU-cycle attribution.
//
// The paper's throughput story is a cycles story, and its evidence is perf
// profiles — data copy dominating the RX path at 100G, MSG_ZEROCOPY moving
// TX cycles from copy_user to page pinning. cpu/cost_model already prices
// every kernel-path stage in cycles/byte and cpu/budget meters consumption
// per core; this header is the `perf report` view over those charges: a
// fixed stage taxonomy named after the real kernel symbols, a PerfReport
// carrying per-core and per-flow cycle totals, text renderers (perf
// report-style table + Brendan Gregg collapsed stacks), a JSON round-trip
// for dtnsim-perf --json/--replay, and PerfWatch — an SsWatch-style
// self-rescheduling sampler with perf.* mirror gauges.
//
// Attribution is exact, not sampled: each engine splits the exact charge it
// makes against its core budgets into stages, so summed stage cycles must
// equal the consumed-cycle figure to fp rounding. cross_check_stage_sum
// enforces that identity at every sample.
//
// Layering: obs sits below cpu/flow, so these are plain-data structs; the
// decomposition math lives in cpu::CostModel (tx_app_stage_cyc & friends)
// and each engine registers a PerfSnapshotFn that copies its accumulator
// into a report. Snapshot sources only read.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/obs/trace.hpp"
#include "dtnsim/sim/engine.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::obs {

// The four core groups the budget model meters. Order is the report order.
enum class PerfCore { SndApp = 0, SndIrq = 1, RcvApp = 2, RcvIrq = 3 };
inline constexpr int kPerfCoreCount = 4;

// The stage taxonomy: one entry per cost-model term, named after the kernel
// symbol the term stands in for (docs/OBSERVABILITY.md has the full table).
// Values are stable indices into PerfReport::stage_cycles.
enum class PerfStage {
  // snd_app — sendmsg path on the application cores.
  TxSyscall = 0,     // tcp_sendmsg_locked: per-GSO-skb syscall/skb setup
  TxProto = 1,       // tcp_write_xmit: per-byte protocol bookkeeping
  TxUserCopy = 2,    // copy_user_enhanced_fast_string: user->skb copy
  TxZcPin = 3,       // zerocopy_sg_from_iter: page pinning (MSG_ZEROCOPY)
  TxZcNotify = 4,    // msg_zerocopy_callback: error-queue completions
  TxZcFallback = 5,  // skb_zerocopy_iter_stream: pin failed, copied anyway
  // snd_irq — segmentation + device queue on the IRQ cores.
  TxGsoSegment = 6,  // tcp_gso_segment / skb_segment: per-MTU residue
  TxDmaMap = 7,      // dma_map_page_attrs + doorbell (IOMMU mode dependent)
  TxCompletion = 8,  // mlx5e_poll_tx_cq / skb_release_data: TX completions
  // rcv_irq — NAPI poll on the receiver IRQ cores.
  RxSkbAlloc = 9,    // mlx5e_skb_from_cqe + dma_unmap: per-packet skb setup
  RxGroMerge = 10,   // gro_receive: per-packet coalescing work
  RxAggFlush = 11,   // napi_gro_flush / tcp_v4_rcv: per-aggregate delivery
  RxCsum = 12,       // csum_partial / tcp validation: per-byte checksum
  // rcv_app — recvmsg path on the receiver application cores.
  RxSyscall = 13,    // tcp_recvmsg + sock_def_readable: per-aggregate wakeup
  RxFragWalk = 14,   // skb frag walk + cmsg: per-MTU-fragment app residue
  RxCopyout = 15,    // skb_copy_datagram_iter (or MSG_TRUNC skip: zero)
};
inline constexpr int kPerfStageCount = 16;

// Short taxonomy name, e.g. "tx_user_copy" (JSON keys, flamegraph frames).
const char* perf_stage_name(PerfStage s);
// The kernel symbol the stage mirrors, e.g. "copy_user_enhanced_fast_string".
const char* perf_stage_symbol(PerfStage s);
// Which core group the stage's cycles land on.
PerfCore perf_stage_core(PerfStage s);
const char* perf_core_name(PerfCore c);

// Cycles one flow burned, by stage. Index with static_cast<int>(PerfStage).
struct PerfFlowCycles {
  PerfFlowCycles() : stage_cycles(kPerfStageCount, 0.0) {}
  int flow = 0;
  std::vector<double> stage_cycles;
};

// One dtnsim-perf sample: the whole run's attribution as of time `ts`.
// stage_cycles is the exact split; consumed_cycles is what the engine
// actually charged its budgets per core group (the two must agree — see
// cross_check_stage_sum); capacity_cycles is the budget offered so far.
struct PerfReport {
  PerfReport()
      : stage_cycles(kPerfStageCount, 0.0),
        consumed_cycles(kPerfCoreCount, 0.0),
        capacity_cycles(kPerfCoreCount, 0.0) {}

  Nanos ts = 0;
  std::string engine;  // "fluid" | "packet"
  std::string label;   // test/cell name (merged dumps)
  double bytes_sent = 0.0;
  double bytes_delivered = 0.0;
  std::vector<double> stage_cycles;     // kPerfStageCount entries
  std::vector<double> consumed_cycles;  // kPerfCoreCount entries
  std::vector<double> capacity_cycles;  // kPerfCoreCount entries
  std::vector<PerfFlowCycles> flows;

  // Summed stage cycles for one core group / all groups.
  double core_stage_cycles(PerfCore c) const;
  double total_cycles() const;
  // consumed/capacity for the group, clamped to [0, 1]; 0 when no capacity
  // was metered (the packet engine attributes IRQ cycles but meters no IRQ
  // capacity — its IRQ work rides inside the app-core service times).
  double core_utilization(PerfCore c) const;
  // Headline efficiency figures (perf.* mirror gauges).
  double tx_cyc_per_byte() const;  // snd-side stages / bytes_sent
  double rx_cyc_per_byte() const;  // rcv-side stages / bytes_delivered
};

// ---- text renderers -------------------------------------------------------
// `perf report`-style table: Children/Self overhead, cycles, core, symbol —
// core header rows (Children = the group's share of all cycles) followed by
// that group's stages sorted by self cycles.
std::string format_perf_report(const PerfReport& r);
// Brendan Gregg collapsed-stack lines: "engine;core;symbol cycles\n",
// ready for flamegraph.pl. Zero-cycle stages are omitted.
std::string format_flamegraph(const PerfReport& r);
// Differential collapsed stacks, difffolded.pl shape: "stack beforeN afterN"
// per line (`dtnsim-perf --flame --diff A B`; feed to flamegraph.pl
// --negate for a red/blue diff). Stages zero in both reports are omitted;
// when the two reports come from different engines both use the shared
// root "dtnsim" so their frames align.
std::string format_flamegraph_diff(const PerfReport& before,
                                   const PerfReport& after);

// ---- JSON round-trip (dtnsim-perf --json / --replay) ----------------------
Json to_json(const PerfReport& r);
PerfReport perf_report_from_json(const Json& j);
// A watch log as one document: {"samples": [...]}.
Json perf_log_to_json(const std::vector<PerfReport>& log);
std::vector<PerfReport> perf_log_from_json(const Json& doc);
bool write_perf_log(const std::string& path, const std::vector<PerfReport>& log);

// Builds the current report on demand; installed by the engine that owns
// the run. Must only *read* engine state (sampling is observation).
using PerfSnapshotFn = std::function<PerfReport(Nanos)>;

// The attribution integrity check: for every core group, summed stage
// cycles must equal the consumed-cycle figure the engine charged against
// its CoreBudget accounting, to fp rounding. Throws std::logic_error on
// divergence — a stage split that doesn't add up to the charge would make
// the whole perf view a fabrication. PerfWatch runs this on every sample.
void cross_check_stage_sum(const PerfReport& report);

// The `perf`-side sampler. Like SsWatch it self-reschedules on the engine
// clock; each firing pulls a report from the installed PerfSnapshotFn,
// cross-checks the stage sums, appends to the in-memory log, and mirrors
// headline figures into perf.* registry gauges plus a trace instant. With
// no source installed sampling throws (arming without an engine is a setup
// bug).
class PerfWatch {
 public:
  // `registry` must outlive the watch. `trace` may be null (no mirroring).
  explicit PerfWatch(Registry* registry, TraceSink* trace = nullptr);

  void set_source(PerfSnapshotFn fn) { source_ = std::move(fn); }
  bool has_source() const { return static_cast<bool>(source_); }

  // Take one sample now. Returns the stored report.
  const PerfReport& sample(Nanos now);
  // End-of-run sample; replaces a coincident-timestamp in-run sample the
  // same way SsWatch::final_sample does.
  void final_sample(Nanos now);

  // Schedule sampling at interval, 2*interval, ... <= horizon.
  void arm(sim::Engine& engine, Nanos interval, Nanos horizon);

  const std::vector<PerfReport>& log() const { return log_; }
  std::size_t samples_taken() const { return log_.size(); }
  void clear_log() { log_.clear(); }

 private:
  void mirror(const PerfReport& r);

  Registry* registry_;
  TraceSink* trace_;
  PerfSnapshotFn source_;
  std::vector<PerfReport> log_;
  std::shared_ptr<std::function<void()>> fire_;  // owner of the sampler event

  // perf.* mirror gauges, registered on first sample so a watch-less run
  // never widens the metric table.
  Gauge* g_tx_cyc_pb_ = nullptr;
  Gauge* g_rx_cyc_pb_ = nullptr;
  Gauge* g_total_cycles_ = nullptr;
  Gauge* g_util_[kPerfCoreCount] = {nullptr, nullptr, nullptr, nullptr};
};

}  // namespace dtnsim::obs
