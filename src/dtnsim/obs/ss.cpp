#include "dtnsim/obs/ss.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::obs {
namespace {

// Human-scaled rate, the way ss prints its send/pacing figures.
std::string fmt_rate(double bps) {
  if (bps >= 1e9) return strfmt("%.2fGbps", bps / 1e9);
  if (bps >= 1e6) return strfmt("%.2fMbps", bps / 1e6);
  if (bps >= 1e3) return strfmt("%.1fKbps", bps / 1e3);
  return strfmt("%.0fbps", bps);
}

std::string fmt_bytes(double bytes) {
  if (bytes >= 1e12) return strfmt("%.2fTB", bytes / 1e12);
  if (bytes >= 1e9) return strfmt("%.2fGB", bytes / 1e9);
  if (bytes >= 1e6) return strfmt("%.1fMB", bytes / 1e6);
  if (bytes >= 1e3) return strfmt("%.1fKB", bytes / 1e3);
  return strfmt("%.0fB", bytes);
}

}  // namespace

double SsReport::total_bytes_acked() const {
  double sum = 0.0;
  for (const auto& s : sockets) sum += s.bytes_acked;
  return sum;
}

double SsReport::total_delivery_rate_bps() const {
  double sum = 0.0;
  for (const auto& s : sockets) sum += s.delivery_rate_bps;
  return sum;
}

std::string format_tcp_info(const TcpInfoSnapshot& s) {
  const double mss = s.mss_bytes > 0 ? s.mss_bytes : 1.0;
  std::string out = strfmt("flow %d: ESTAB\n", s.flow);
  out += strfmt("\t %s%s mss:%.0f cwnd:%.0f ssthresh:%.0f rtt:%.3fms/%.3fms minrtt:%.3fms\n",
                s.ca_name.c_str(), s.in_slow_start ? " slow_start" : "", s.mss_bytes,
                std::round(s.snd_cwnd_bytes / mss), std::round(s.snd_ssthresh_bytes / mss),
                s.rtt_sec * 1e3, s.rttvar_sec * 1e3, s.min_rtt_sec * 1e3);
  out += strfmt("\t send %s pacing_rate %s delivery_rate %s%s\n",
                fmt_rate(s.send_rate_bps).c_str(), fmt_rate(s.pacing_rate_bps).c_str(),
                fmt_rate(s.delivery_rate_bps).c_str(),
                s.delivery_rate_app_limited ? " app_limited" : "");
  out += strfmt("\t bytes_sent:%s bytes_acked:%s bytes_retrans:%s retrans:0/%.0f\n",
                fmt_bytes(s.bytes_sent).c_str(), fmt_bytes(s.bytes_acked).c_str(),
                fmt_bytes(s.bytes_retrans).c_str(), s.segs_retrans);
  out += strfmt("\t notsent:%s rcv_space:%s rcv_rtt:%.3fms rcv_ooopack:%.0f\n",
                fmt_bytes(s.notsent_bytes).c_str(),
                fmt_bytes(s.rcv_space_bytes).c_str(), s.rcv_rtt_sec * 1e3,
                s.rcv_ooopack);
  if (s.optmem_max_bytes > 0) {
    out += strfmt(
        "\t zerocopy: sent %s copied %s (%.0f fallback sends) "
        "optmem %.0f/%.0f hiwater %.0f\n",
        fmt_bytes(s.zc_sent_bytes).c_str(), fmt_bytes(s.zc_copied_bytes).c_str(),
        s.zc_copied_sends, s.optmem_used_bytes, s.optmem_max_bytes,
        s.optmem_hiwater_bytes);
  }
  return out;
}

std::string format_ethtool(const NicCountersSnapshot& s) {
  std::string out = strfmt("NIC statistics for %s:\n", s.device.c_str());
  out += strfmt("     rx_bytes: %.0f\n", s.rx_bytes);
  out += strfmt("     rx_out_of_buffer_bytes: %.0f\n", s.rx_dropped_bytes);
  out += strfmt("     rx_out_of_buffer_events: %.0f\n", s.rx_dropped_events);
  out += strfmt("     rx_ring_hiwater_frac: %.3f\n", s.rx_ring_hiwater_frac);
  out += strfmt("     tx_pause_frames: %.0f\n", s.tx_pause_frames);
  out += strfmt("     rx_pause_frames: %.0f\n", s.rx_pause_frames);
  out += strfmt("     hw_gro_coalesced: %.0f\n", s.hw_gro_coalesced);
  return out;
}

std::string format_tc(const QdiscCountersSnapshot& s) {
  std::string out = strfmt("qdisc %s 0: root\n", s.kind.c_str());
  out += strfmt(
      " Sent %.0f bytes, throttled %.0f times, pacing delay %.3fms, "
      "dropped %.0f, backlog %s\n",
      s.sent_bytes, s.throttled, s.pacing_delay_sec * 1e3, s.drops,
      fmt_bytes(s.backlog_bytes).c_str());
  return out;
}

std::string format_ss(const SsReport& r) {
  std::string out = strfmt("# dtnsim-ss t=%.3fs engine=%s", units::to_seconds(r.ts),
                           r.engine.c_str());
  if (!r.label.empty()) out += strfmt(" label=\"%s\"", r.label.c_str());
  out += "\n";
  for (const auto& s : r.sockets) out += format_tcp_info(s);
  out += format_ethtool(r.nic);
  out += format_tc(r.qdisc);
  return out;
}

namespace {

// One diff row: field name, both values, signed delta (and percent when the
// base is nonzero). `unit` is a short suffix printed after each value.
void diff_row(std::string& out, const char* field, double a, double b,
              const char* unit = "") {
  std::string delta = strfmt("%+.6g%s", b - a, unit);
  if (a != 0.0) delta += strfmt(" (%+.1f%%)", (b - a) / std::abs(a) * 100.0);
  out += strfmt("  %-26s %16.6g%-5s %16.6g%-5s %s\n", field, a, unit, b, unit,
                b == a ? "=" : delta.c_str());
}

}  // namespace

std::string format_ss_diff(const SsReport& a, const SsReport& b) {
  const auto head = [](const SsReport& r, const char* tag) {
    return strfmt("#   %s: t=%.3fs engine=%s%s%s%s\n", tag, units::to_seconds(r.ts),
                  r.engine.c_str(), r.label.empty() ? "" : " label=\"",
                  r.label.c_str(), r.label.empty() ? "" : "\"");
  };
  std::string out = "# dtnsim-ss diff (B - A)\n";
  out += head(a, "A");
  out += head(b, "B");
  out += strfmt("  %-26s %21s %21s %s\n", "field", "A", "B", "delta");

  const TcpInfoSnapshot ea{};  // all-zero stand-in when a side has no sockets
  const TcpInfoSnapshot& fa = a.sockets.empty() ? ea : a.sockets.front();
  const TcpInfoSnapshot& fb = b.sockets.empty() ? ea : b.sockets.front();
  const auto sum = [](const SsReport& r, double TcpInfoSnapshot::* field) {
    double total = 0.0;
    for (const auto& s : r.sockets) total += s.*field;
    return total;
  };

  diff_row(out, "sockets", static_cast<double>(a.sockets.size()),
           static_cast<double>(b.sockets.size()));
  // Window dynamics from the representative flow 0, like format_tcp_info.
  diff_row(out, "cwnd (flow 0)", fa.snd_cwnd_bytes, fb.snd_cwnd_bytes, "B");
  diff_row(out, "ssthresh (flow 0)", fa.snd_ssthresh_bytes, fb.snd_ssthresh_bytes, "B");
  diff_row(out, "rtt (flow 0)", fa.rtt_sec * 1e3, fb.rtt_sec * 1e3, "ms");
  diff_row(out, "minrtt (flow 0)", fa.min_rtt_sec * 1e3, fb.min_rtt_sec * 1e3, "ms");
  diff_row(out, "pacing_rate (flow 0)", fa.pacing_rate_bps / 1e9,
           fb.pacing_rate_bps / 1e9, "Gbps");
  // Totals across sockets, the aggregate iperf3 view.
  diff_row(out, "send_rate", a.total_delivery_rate_bps() / 1e9,
           b.total_delivery_rate_bps() / 1e9, "Gbps");
  diff_row(out, "bytes_sent", sum(a, &TcpInfoSnapshot::bytes_sent),
           sum(b, &TcpInfoSnapshot::bytes_sent), "B");
  diff_row(out, "bytes_acked", a.total_bytes_acked(), b.total_bytes_acked(), "B");
  diff_row(out, "bytes_retrans", sum(a, &TcpInfoSnapshot::bytes_retrans),
           sum(b, &TcpInfoSnapshot::bytes_retrans), "B");
  diff_row(out, "retrans_segs", sum(a, &TcpInfoSnapshot::segs_retrans),
           sum(b, &TcpInfoSnapshot::segs_retrans));
  diff_row(out, "notsent", sum(a, &TcpInfoSnapshot::notsent_bytes),
           sum(b, &TcpInfoSnapshot::notsent_bytes), "B");
  diff_row(out, "zc_sent", sum(a, &TcpInfoSnapshot::zc_sent_bytes),
           sum(b, &TcpInfoSnapshot::zc_sent_bytes), "B");
  diff_row(out, "zc_copied", sum(a, &TcpInfoSnapshot::zc_copied_bytes),
           sum(b, &TcpInfoSnapshot::zc_copied_bytes), "B");
  diff_row(out, "zc_fallback_sends", sum(a, &TcpInfoSnapshot::zc_copied_sends),
           sum(b, &TcpInfoSnapshot::zc_copied_sends));
  diff_row(out, "optmem_hiwater", sum(a, &TcpInfoSnapshot::optmem_hiwater_bytes),
           sum(b, &TcpInfoSnapshot::optmem_hiwater_bytes), "B");
  // NIC and qdisc counter blocks.
  diff_row(out, "nic.rx_bytes", a.nic.rx_bytes, b.nic.rx_bytes, "B");
  diff_row(out, "nic.rx_dropped_bytes", a.nic.rx_dropped_bytes,
           b.nic.rx_dropped_bytes, "B");
  diff_row(out, "nic.rx_dropped_events", a.nic.rx_dropped_events,
           b.nic.rx_dropped_events);
  diff_row(out, "nic.ring_hiwater_frac", a.nic.rx_ring_hiwater_frac,
           b.nic.rx_ring_hiwater_frac);
  diff_row(out, "nic.tx_pause_frames", a.nic.tx_pause_frames, b.nic.tx_pause_frames);
  diff_row(out, "nic.hw_gro_coalesced", a.nic.hw_gro_coalesced, b.nic.hw_gro_coalesced);
  diff_row(out, "qdisc.sent_bytes", a.qdisc.sent_bytes, b.qdisc.sent_bytes, "B");
  diff_row(out, "qdisc.throttled", a.qdisc.throttled, b.qdisc.throttled);
  diff_row(out, "qdisc.pacing_delay", a.qdisc.pacing_delay_sec * 1e3,
           b.qdisc.pacing_delay_sec * 1e3, "ms");
  diff_row(out, "qdisc.drops", a.qdisc.drops, b.qdisc.drops);
  return out;
}

Json to_json(const TcpInfoSnapshot& s) {
  Json j = Json::object();
  j["flow"] = s.flow;
  j["ca_name"] = s.ca_name;
  j["in_slow_start"] = s.in_slow_start;
  j["mss_bytes"] = s.mss_bytes;
  j["snd_cwnd_bytes"] = s.snd_cwnd_bytes;
  j["snd_ssthresh_bytes"] = s.snd_ssthresh_bytes;
  j["rtt_sec"] = s.rtt_sec;
  j["rttvar_sec"] = s.rttvar_sec;
  j["min_rtt_sec"] = s.min_rtt_sec;
  j["pacing_rate_bps"] = s.pacing_rate_bps;
  j["delivery_rate_bps"] = s.delivery_rate_bps;
  j["delivery_rate_app_limited"] = s.delivery_rate_app_limited;
  j["send_rate_bps"] = s.send_rate_bps;
  j["bytes_sent"] = s.bytes_sent;
  j["bytes_acked"] = s.bytes_acked;
  j["bytes_retrans"] = s.bytes_retrans;
  j["segs_retrans"] = s.segs_retrans;
  j["notsent_bytes"] = s.notsent_bytes;
  j["rcv_space_bytes"] = s.rcv_space_bytes;
  j["rcv_rtt_sec"] = s.rcv_rtt_sec;
  j["rcv_ooopack"] = s.rcv_ooopack;
  j["optmem_used_bytes"] = s.optmem_used_bytes;
  j["optmem_max_bytes"] = s.optmem_max_bytes;
  j["optmem_hiwater_bytes"] = s.optmem_hiwater_bytes;
  j["zc_sent_bytes"] = s.zc_sent_bytes;
  j["zc_copied_bytes"] = s.zc_copied_bytes;
  j["zc_copied_sends"] = s.zc_copied_sends;
  return j;
}

Json to_json(const SsReport& r) {
  Json j = Json::object();
  j["ts_sec"] = units::to_seconds(r.ts);
  j["engine"] = r.engine;
  j["label"] = r.label;
  Json sockets = Json::array();
  for (const auto& s : r.sockets) sockets.push_back(to_json(s));
  j["sockets"] = std::move(sockets);
  Json nic = Json::object();
  nic["device"] = r.nic.device;
  nic["rx_bytes"] = r.nic.rx_bytes;
  nic["rx_dropped_bytes"] = r.nic.rx_dropped_bytes;
  nic["rx_dropped_events"] = r.nic.rx_dropped_events;
  nic["rx_ring_hiwater_frac"] = r.nic.rx_ring_hiwater_frac;
  nic["tx_pause_frames"] = r.nic.tx_pause_frames;
  nic["rx_pause_frames"] = r.nic.rx_pause_frames;
  nic["hw_gro_coalesced"] = r.nic.hw_gro_coalesced;
  j["nic"] = std::move(nic);
  Json qd = Json::object();
  qd["kind"] = r.qdisc.kind;
  qd["sent_bytes"] = r.qdisc.sent_bytes;
  qd["throttled"] = r.qdisc.throttled;
  qd["pacing_delay_sec"] = r.qdisc.pacing_delay_sec;
  qd["drops"] = r.qdisc.drops;
  qd["backlog_bytes"] = r.qdisc.backlog_bytes;
  j["qdisc"] = std::move(qd);
  return j;
}

TcpInfoSnapshot tcp_info_from_json(const Json& j) {
  TcpInfoSnapshot s;
  s.flow = static_cast<int>(j.number_at("flow", 0));
  s.ca_name = j.string_at("ca_name", "cubic");
  s.in_slow_start = j.bool_at("in_slow_start", false);
  s.mss_bytes = j.number_at("mss_bytes", 0);
  s.snd_cwnd_bytes = j.number_at("snd_cwnd_bytes", 0);
  s.snd_ssthresh_bytes = j.number_at("snd_ssthresh_bytes", 0);
  s.rtt_sec = j.number_at("rtt_sec", 0);
  s.rttvar_sec = j.number_at("rttvar_sec", 0);
  s.min_rtt_sec = j.number_at("min_rtt_sec", 0);
  s.pacing_rate_bps = j.number_at("pacing_rate_bps", 0);
  s.delivery_rate_bps = j.number_at("delivery_rate_bps", 0);
  s.delivery_rate_app_limited = j.bool_at("delivery_rate_app_limited", false);
  s.send_rate_bps = j.number_at("send_rate_bps", 0);
  s.bytes_sent = j.number_at("bytes_sent", 0);
  s.bytes_acked = j.number_at("bytes_acked", 0);
  s.bytes_retrans = j.number_at("bytes_retrans", 0);
  s.segs_retrans = j.number_at("segs_retrans", 0);
  s.notsent_bytes = j.number_at("notsent_bytes", 0);
  s.rcv_space_bytes = j.number_at("rcv_space_bytes", 0);
  s.rcv_rtt_sec = j.number_at("rcv_rtt_sec", 0);
  s.rcv_ooopack = j.number_at("rcv_ooopack", 0);
  s.optmem_used_bytes = j.number_at("optmem_used_bytes", 0);
  s.optmem_max_bytes = j.number_at("optmem_max_bytes", 0);
  s.optmem_hiwater_bytes = j.number_at("optmem_hiwater_bytes", 0);
  s.zc_sent_bytes = j.number_at("zc_sent_bytes", 0);
  s.zc_copied_bytes = j.number_at("zc_copied_bytes", 0);
  s.zc_copied_sends = j.number_at("zc_copied_sends", 0);
  return s;
}

SsReport report_from_json(const Json& j) {
  SsReport r;
  r.ts = units::seconds(j.number_at("ts_sec", 0));
  r.engine = j.string_at("engine", "");
  r.label = j.string_at("label", "");
  if (const Json* sockets = j.find("sockets"); sockets && sockets->is_array()) {
    for (std::size_t i = 0; i < sockets->size(); ++i) {
      r.sockets.push_back(tcp_info_from_json(*sockets->at(i)));
    }
  }
  if (const Json* nic = j.find("nic"); nic && nic->is_object()) {
    r.nic.device = nic->string_at("device", "");
    r.nic.rx_bytes = nic->number_at("rx_bytes", 0);
    r.nic.rx_dropped_bytes = nic->number_at("rx_dropped_bytes", 0);
    r.nic.rx_dropped_events = nic->number_at("rx_dropped_events", 0);
    r.nic.rx_ring_hiwater_frac = nic->number_at("rx_ring_hiwater_frac", 0);
    r.nic.tx_pause_frames = nic->number_at("tx_pause_frames", 0);
    r.nic.rx_pause_frames = nic->number_at("rx_pause_frames", 0);
    r.nic.hw_gro_coalesced = nic->number_at("hw_gro_coalesced", 0);
  }
  if (const Json* qd = j.find("qdisc"); qd && qd->is_object()) {
    r.qdisc.kind = qd->string_at("kind", "fq");
    r.qdisc.sent_bytes = qd->number_at("sent_bytes", 0);
    r.qdisc.throttled = qd->number_at("throttled", 0);
    r.qdisc.pacing_delay_sec = qd->number_at("pacing_delay_sec", 0);
    r.qdisc.drops = qd->number_at("drops", 0);
    r.qdisc.backlog_bytes = qd->number_at("backlog_bytes", 0);
  }
  return r;
}

Json ss_log_to_json(const std::vector<SsReport>& log) {
  Json doc = Json::object();
  Json snaps = Json::array();
  for (const auto& r : log) snaps.push_back(to_json(r));
  doc["snapshots"] = std::move(snaps);
  return doc;
}

std::vector<SsReport> ss_log_from_json(const Json& doc) {
  std::vector<SsReport> out;
  if (const Json* snaps = doc.find("snapshots"); snaps && snaps->is_array()) {
    for (std::size_t i = 0; i < snaps->size(); ++i) {
      out.push_back(report_from_json(*snaps->at(i)));
    }
  }
  return out;
}

bool write_ss_log(const std::string& path, const std::vector<SsReport>& log) {
  std::ofstream out(path);
  if (!out) return false;
  out << ss_log_to_json(log).dump(2) << "\n";
  return static_cast<bool>(out);
}

void cross_check_delivered(const SsReport& report, const Registry& registry) {
  const char* counter = nullptr;
  if (report.engine == "fluid") counter = "flow.delivered_bytes";
  if (report.engine == "packet") counter = "pkt.delivered_bytes";
  if (!counter || !registry.find(counter)) return;
  const double probe_view = registry.value_of(counter);
  const double ss_view = report.total_bytes_acked();
  // Per-flow vs. per-tick accumulation order differs, so allow fp drift.
  const double tol = 1e-6 * std::max({std::fabs(probe_view), std::fabs(ss_view), 1.0});
  if (std::fabs(probe_view - ss_view) > tol) {
    throw std::logic_error(strfmt(
        "ss/probe divergence at t=%.6fs: %s=%.6f bytes but ss snapshot sums "
        "bytes_acked=%.6f (the kernel-eye and iperf3-eye views of one run "
        "must agree)",
        units::to_seconds(report.ts), counter, probe_view, ss_view));
  }
}

SsWatch::SsWatch(Registry* registry, TraceSink* trace)
    : registry_(registry), trace_(trace) {}

const SsReport& SsWatch::sample(Nanos now) {
  if (!source_) {
    throw std::logic_error(
        "SsWatch::sample with no snapshot source installed (the engine "
        "registers one in setup_telemetry when ss is enabled)");
  }
  log_.push_back(source_(now));
  SsReport& r = log_.back();
  r.ts = now;
  mirror(r);
  return r;
}

void SsWatch::final_sample(Nanos now) {
  if (!source_) return;
  // A watch interval that divides the horizon already logged a report at
  // `now` — but that event fired before the enclosing round's tail was
  // accounted, so re-sample in its place rather than trusting (or
  // duplicating) it.
  if (!log_.empty() && log_.back().ts == now) log_.pop_back();
  sample(now);
}

void SsWatch::mirror(const SsReport& r) {
  if (registry_) {
    if (!g_sockets_) {
      g_sockets_ = registry_->gauge("ss.sockets", "sockets",
                                    "sockets in the latest ss snapshot");
      g_delivery_ = registry_->gauge("ss.delivery_rate_bps", "bps",
                                     "summed tcpi_delivery_rate, latest snapshot");
      g_optmem_used_ = registry_->gauge("ss.optmem_used_bytes", "bytes",
                                        "summed in-flight zerocopy charges");
      g_zc_copied_ = registry_->gauge("ss.zc_copied_bytes", "bytes",
                                      "summed zerocopy copy-fallback bytes");
      g_ring_hiwater_ = registry_->gauge("ss.nic_ring_hiwater_frac", "frac",
                                         "receiver ring high-water fraction");
      g_qdisc_throttled_ = registry_->gauge("ss.qdisc_throttled", "events",
                                            "qdisc pacing throttle count");
    }
    double optmem = 0.0, copied = 0.0;
    for (const auto& s : r.sockets) {
      optmem += s.optmem_used_bytes;
      copied += s.zc_copied_bytes;
    }
    g_sockets_->set(static_cast<double>(r.sockets.size()));
    g_delivery_->set(r.total_delivery_rate_bps());
    g_optmem_used_->set(optmem);
    g_zc_copied_->set(copied);
    g_ring_hiwater_->set(r.nic.rx_ring_hiwater_frac);
    g_qdisc_throttled_->set(r.qdisc.throttled);
  }
  if (trace_) {
    trace_->instant("ss_snapshot", "ss", r.ts, 0,
                    {{"sockets", static_cast<double>(r.sockets.size())},
                     {"delivery_rate_bps", r.total_delivery_rate_bps()},
                     {"bytes_acked", r.total_bytes_acked()}});
  }
}

void SsWatch::arm(sim::Engine& engine, Nanos interval, Nanos horizon) {
  const Nanos step = std::max<Nanos>(interval, 1);
  fire_ = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = fire_;
  *fire_ = [this, &engine, step, horizon, weak] {
    sample(engine.now());
    const auto self = weak.lock();
    if (self && engine.now() + step <= horizon) {
      engine.schedule(step, *self);
    }
  };
  if (step <= horizon) engine.schedule(step, *fire_);
}

}  // namespace dtnsim::obs
