// Per-flow probe: the simulator's `iperf3 -i 1`.
//
// A self-rescheduling engine event samples every metric in a Registry at a
// fixed simulated-time interval and appends the values to a SeriesTable.
// Sampling happens on the engine clock *after* same-timestamp model events
// (events fire in scheduling order), so a sample reflects the tick that
// just completed. Optionally mirrors key series into a TraceSink as chrome
// counter tracks so Perfetto plots them alongside the instant events.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dtnsim/obs/metrics.hpp"
#include "dtnsim/obs/trace.hpp"
#include "dtnsim/sim/engine.hpp"

namespace dtnsim::obs {

// A rectangular time series: one row per probe firing, one column per
// metric (plus the leading "time_s" column).
struct SeriesTable {
  std::vector<std::string> columns;        // includes "time_s" first
  std::vector<std::vector<double>> rows;   // rows[i].size() == columns.size()

  bool empty() const { return rows.empty(); }
  std::size_t column_index(const std::string& name) const;  // npos if absent
  // All values of one column, in time order.
  std::vector<double> column(const std::string& name) const;
  double max_of(const std::string& name) const;

  std::string to_csv() const;
  // One JSON object per line ({"time_s":..., "<metric>":...}).
  std::string to_jsonl() const;
  bool write_csv(const std::string& path) const;
};

// Merge labelled per-repeat series into one CSV with leading `test` and
// `repeat` columns (the shape dtnsim-repro and --metrics-out emit).
struct LabeledSeries {
  std::string test;
  int repeat = 0;
  const SeriesTable* series = nullptr;
};
std::string merged_series_csv(const std::vector<LabeledSeries>& series);
bool write_merged_series_csv(const std::string& path,
                             const std::vector<LabeledSeries>& series);

class FlowProbe {
 public:
  // `registry` must outlive the probe. `trace` may be null (no mirroring).
  FlowProbe(Registry* registry, Nanos interval, TraceSink* trace = nullptr);

  Nanos interval() const { return interval_; }
  std::size_t samples_taken() const { return table_.rows.size(); }
  const SeriesTable& series() const { return table_; }

  // Schedule sampling on `engine` at interval, 2*interval, ... <= horizon.
  // `pre_sample` (optional) runs before each snapshot so the owner can
  // refresh derived gauges.
  void arm(sim::Engine& engine, Nanos horizon,
           std::function<void(Nanos)> pre_sample = {});

  // Take one sample immediately at time `now` (also used by arm()).
  void sample(Nanos now);

  // Consistency hook, run after each sample lands (Telemetry installs one
  // that asserts the probe's counters and the latest same-timestamp ss
  // snapshot report identical delivered-byte totals). May throw.
  void set_cross_check(std::function<void(Nanos)> fn) {
    cross_check_ = std::move(fn);
  }

 private:
  Registry* registry_;
  TraceSink* trace_;
  Nanos interval_;
  SeriesTable table_;
  std::function<void(Nanos)> pre_sample_;
  std::function<void(Nanos)> cross_check_;
  std::shared_ptr<std::function<void()>> fire_;  // owner of the sampler event
};

}  // namespace dtnsim::obs
