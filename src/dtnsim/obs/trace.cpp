#include "dtnsim/obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace dtnsim::obs {

TraceSink::TraceSink(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceSink::push(TraceEvent ev) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
}

void TraceSink::begin(std::string name, std::string category, Nanos ts, int track,
                      std::vector<std::pair<std::string, double>> args) {
  push(TraceEvent{ts, TracePhase::Begin, std::move(name), std::move(category), track,
                  std::move(args)});
}

void TraceSink::end(std::string name, std::string category, Nanos ts, int track) {
  push(TraceEvent{ts, TracePhase::End, std::move(name), std::move(category), track, {}});
}

void TraceSink::instant(std::string name, std::string category, Nanos ts, int track,
                        std::vector<std::pair<std::string, double>> args) {
  push(TraceEvent{ts, TracePhase::Instant, std::move(name), std::move(category), track,
                  std::move(args)});
}

void TraceSink::counter(std::string name, Nanos ts, double value, int track) {
  push(TraceEvent{ts, TracePhase::Counter, std::move(name), "metric", track,
                  {{"value", value}}});
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest surviving event is at head_ once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

bool TraceSink::contains(const std::string& name) const { return count(name) > 0; }

std::size_t TraceSink::count(const std::string& name) const {
  return static_cast<std::size_t>(
      std::count_if(ring_.begin(), ring_.end(),
                    [&](const TraceEvent& e) { return e.name == name; }));
}

namespace {

const char* phase_code(TracePhase phase) {
  switch (phase) {
    case TracePhase::Begin:
      return "B";
    case TracePhase::End:
      return "E";
    case TracePhase::Instant:
      return "i";
    case TracePhase::Counter:
      return "C";
  }
  return "i";
}

Json process_name_record(int pid, const std::string& process_name) {
  Json meta = Json::object();
  meta["name"] = "process_name";
  meta["ph"] = "M";
  meta["pid"] = pid;
  meta["tid"] = 0;
  meta["args"]["name"] = process_name;
  return meta;
}

Json event_record(const TraceEvent& ev, int pid) {
  Json j = Json::object();
  j["name"] = ev.name;
  j["cat"] = ev.category.empty() ? "dtnsim" : ev.category;
  j["ph"] = phase_code(ev.phase);
  j["ts"] = static_cast<double>(ev.ts) / 1e3;  // trace_event wants micros
  j["pid"] = pid;
  j["tid"] = ev.track;
  if (ev.phase == TracePhase::Instant) j["s"] = "t";  // thread-scoped tick
  if (!ev.args.empty()) {
    Json args = Json::object();
    for (const auto& [k, v] : ev.args) args[k] = v;
    j["args"] = std::move(args);
  }
  return j;
}

}  // namespace

void TraceSink::append_chrome_events(Json& trace_events, int pid,
                                     const std::string& process_name) const {
  if (!process_name.empty()) {
    trace_events.push_back(process_name_record(pid, process_name));
  }
  for (const auto& ev : events()) {
    trace_events.push_back(event_record(ev, pid));
  }
}

Json TraceSink::to_chrome_trace(const std::string& process_name) const {
  return merged_chrome_trace({{process_name, this}});
}

bool TraceSink::write_file(const std::string& path,
                           const std::string& process_name) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace(process_name).dump(1) << "\n";
  return static_cast<bool>(out);
}

Json merged_chrome_trace(
    const std::vector<std::pair<std::string, const TraceSink*>>& sinks) {
  Json doc = Json::object();
  Json events = Json::array();
  int pid = 1;
  for (const auto& [label, sink] : sinks) {
    if (sink) sink->append_chrome_events(events, pid, label);
    ++pid;
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

bool write_merged_chrome_trace(
    const std::string& path,
    const std::vector<std::pair<std::string, const TraceSink*>>& sinks) {
  std::ofstream out(path);
  if (!out) return false;
  out << merged_chrome_trace(sinks).dump(1) << "\n";
  return static_cast<bool>(out);
}

StreamingTraceSink::StreamingTraceSink(const std::string& path,
                                       const std::string& process_name,
                                       std::size_t buffer_events,
                                       std::size_t ring_capacity)
    : TraceSink(ring_capacity),
      path_(path),
      out_(path),
      buffer_events_(std::max<std::size_t>(buffer_events, 1)) {
  ok_ = static_cast<bool>(out_);
  if (!ok_) return;
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  if (!process_name.empty()) {
    out_ << process_name_record(/*pid=*/1, process_name).dump();
    wrote_any_ = true;
  }
  ok_ = static_cast<bool>(out_);
}

StreamingTraceSink::~StreamingTraceSink() { finalize(); }

void StreamingTraceSink::push(TraceEvent ev) {
  if (ok_ && !finalized_) {
    if (wrote_any_ || buffered_ > 0 || streamed_ > 0) buffer_ += ",\n";
    buffer_ += event_record(ev, /*pid=*/1).dump();
    ++streamed_;
    if (++buffered_ >= buffer_events_) flush();
  }
  TraceSink::push(std::move(ev));
}

bool StreamingTraceSink::flush() {
  if (!ok_ || finalized_) return ok_;
  if (!buffer_.empty()) {
    out_ << buffer_;
    if (buffered_ > 0) wrote_any_ = true;
    buffer_.clear();
    buffered_ = 0;
  }
  out_.flush();
  ok_ = static_cast<bool>(out_);
  return ok_;
}

bool StreamingTraceSink::finalize() {
  if (finalized_) return ok_;
  flush();
  if (ok_) {
    out_ << "\n]}\n";
    out_.flush();
    ok_ = static_cast<bool>(out_);
  }
  out_.close();
  finalized_ = true;
  return ok_;
}

}  // namespace dtnsim::obs
