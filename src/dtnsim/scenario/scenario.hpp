// dtnsim::scenario — deterministic mid-run fault injection.
//
// Every dtnsim run so far froze the path, NIC, qdisc and sysctls at t=0,
// which reproduces the paper's steady-state rows but none of its transient
// stories: the 16 Gbps AmLight background-traffic surges, the loss episodes
// that separate paced from unpaced flows, the pause-frame backpressure, the
// Fig. 9 optmem knee a sysadmin crosses by retuning mid-transfer. A
// `Timeline` is a declarative list of typed events ("at t=20s, cap the link
// to 5 Gbps for 10s"), loaded from JSON or built in code, and a `Runtime`
// applies it to a live simulation in either engine.
//
// Determinism rules (the whole point of simulating instead of emulating):
//   - Event fire times are computed ONCE at Runtime construction. Optional
//     per-event jitter draws from a dedicated util::Rng seeded from the run
//     seed — never from the engine's own stream — so attaching a scenario
//     perturbs nothing it doesn't explicitly touch, and the same scenario +
//     seed is bit-identical across repeats and across --jobs 1 vs --jobs N.
//   - Effects are recomputed from scratch at every boundary crossing by
//     folding the active events in fire order (later fire wins; surges
//     accumulate), so the overlay never depends on visit order or tick rate.
//   - When no scenario is attached the engines skip the hook entirely,
//     mirroring the wants_ss()/wants_perf() zero-cost pattern: disabled runs
//     are bit-identical to builds that predate this subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dtnsim/util/json.hpp"

namespace dtnsim::scenario {

// One mid-run mutation. `value` is interpreted per kind (see docs/SCENARIO.md
// for the real-world counterpart of each):
//   LinkCapacity    value = capacity cap, bps            (carrier rate change)
//   LinkAddRtt      value = extra one-way-ish RTT, sec   (path reroute)
//   LossBurst       value = loss fraction [0,1)          (dirty optics, microburst)
//   ReorderBurst    value = reorder fraction [0,1)       (ECMP flap)
//   LinkDown        value ignored                        (link flap, down edge)
//   LinkUp          value ignored                        (link flap, up edge)
//   BgSurge         value = extra background bps         (AmLight 16G surge)
//   NicRingResize   value = RX descriptors               (ethtool -G rx N)
//   NicPauseToggle  value = 1 on / 0 off                 (ethtool -A rx on|off)
//   IrqDrainDegrade value = drain-rate multiplier (0,1]  (noisy neighbor on IRQ core)
//   QdiscSwap       value = 1 fq / 0 fq_codel            (tc qdisc replace)
//   QdiscPacingRate value = fq pacing rate bps, 0 unpaced (tc qdisc change fq maxrate)
//   SysctlOptmem    value = optmem_max bytes             (sysctl -w net.core.optmem_max)
//   FlowArrive      value = streams joining              (iperf3 -P +k)
//   FlowDepart      value = streams leaving              (stream teardown)
enum class EventKind {
  LinkCapacity,
  LinkAddRtt,
  LossBurst,
  ReorderBurst,
  LinkDown,
  LinkUp,
  BgSurge,
  NicRingResize,
  NicPauseToggle,
  IrqDrainDegrade,
  QdiscSwap,
  QdiscPacingRate,
  SysctlOptmem,
  FlowArrive,
  FlowDepart,
};

inline constexpr int kEventKindCount = 15;

// Stable wire name ("link_capacity", "loss_burst", ...) used by the JSON
// format, the event log and the trace instants.
std::string_view kind_name(EventKind kind);
std::optional<EventKind> kind_from_name(std::string_view name);

struct Event {
  double at_sec = 0.0;        // nominal fire time from run start
  EventKind kind = EventKind::LinkCapacity;
  double value = 0.0;         // per-kind payload, see EventKind
  double duration_sec = 0.0;  // 0 = permanent (until countermanded)
  double jitter_sec = 0.0;    // fire time drawn uniform in at±jitter
  std::string note;           // free-form annotation, carried to the log
};

struct Timeline {
  std::string name;
  std::vector<Event> events;

  bool empty() const { return events.empty(); }
  // Throws std::runtime_error naming the first offending event: negative
  // times/durations/jitter, out-of-range fractions, non-positive counts,
  // non-finite values.
  void validate() const;
};

// JSON round-trip:
//   {"name": "...", "events": [{"at_sec": 20, "kind": "loss_burst",
//                               "value": 0.02, "duration_sec": 5,
//                               "jitter_sec": 0, "note": "..."}]}
Json to_json(const Timeline& timeline);
// nullopt on structural mismatch (missing events array, unknown kind, ...).
std::optional<Timeline> timeline_from_json(const Json& json);
// Read + parse + validate; throws std::runtime_error with the path on error.
Timeline load_timeline(const std::string& path);
bool write_timeline(const std::string& path, const Timeline& timeline);

// The folded state of all currently-active events — an overlay the engine
// applies on top of its t=0 configuration. Sentinels mean "base config":
// negative caps/rates/sizes, pause_frames/qdisc = -1.
struct Effects {
  bool link_down = false;
  double capacity_bps = -1.0;       // < 0: keep base capacity
  double extra_rtt_sec = 0.0;       // added to base RTT
  double extra_bg_bps = 0.0;        // added to base background (surges stack)
  double loss_frac = 0.0;           // forced loss fraction on arrivals
  double reorder_frac = 0.0;        // forced reorder fraction on arrivals
  double ring_descriptors = -1.0;   // < 0: keep base ring
  int pause_frames = -1;            // -1 base / 0 off / 1 on
  double irq_drain_mult = 1.0;      // scales IRQ-core drain rate
  int qdisc = -1;                   // -1 base / 0 fq_codel / 1 fq
  double pacing_bps = -1.0;         // < 0: keep base fq rate (0 = unpaced)
  double optmem_max_bytes = -1.0;   // < 0: keep base optmem_max
  int flow_delta = 0;               // net stream arrivals - departures
};

// One event the Runtime crossed, as recorded for TestResult / --replay.
struct AppliedEvent {
  double fire_sec = 0.0;  // jittered fire time actually used
  double end_sec = 0.0;   // fire + duration; 0 when permanent
  EventKind kind = EventKind::LinkCapacity;
  double value = 0.0;
  bool applied = true;    // false: engine does not support this kind
  std::string note;
};

struct EventLog {
  std::string engine;    // "fluid" | "packet"
  std::string timeline;  // Timeline::name
  std::string label;     // harness test label, stamped by the runner
  std::vector<AppliedEvent> events;
};

Json to_json(const EventLog& log);
std::optional<EventLog> event_log_from_json(const Json& json);
// Pretty-printed JSON to `path`; false on I/O failure (--scenario-out and
// dtnsim-scenario --run both write this format, --replay reads it back).
bool write_event_log(const std::string& path, const EventLog& log);

// Inverse of running a timeline: reconstruct a loadable Timeline from the
// events a run actually crossed (`--record-timeline`). Fire times become
// nominal times (jitter_sec = 0 — the jitter was already drawn), durations
// are recovered from end_sec, and unsupported (applied=false) events are
// kept so the recording round-trips. The result is validate()-clean.
Timeline timeline_from_log(const EventLog& log);

// Live applicator. Construct once per run with the run seed; call
// advance(now) from the engine's clock loop — it returns true when the
// folded Effects changed (an event fired or expired), which is the engine's
// cue to re-apply the overlay. Events whose kind is not in `supported` are
// logged with applied=false and excluded from the fold.
class Runtime {
 public:
  Runtime(const Timeline& timeline, std::uint64_t seed, std::string engine,
          std::vector<EventKind> supported);

  // Crosses every boundary in (last_now, now_sec]; true if Effects changed.
  bool advance(double now_sec);
  const Effects& effects() const { return effects_; }
  // Next fire/expiry strictly after the last advance() time; +inf when done.
  // The packet engine schedules its hook at these instants.
  double next_boundary_sec() const;
  const std::vector<AppliedEvent>& log() const { return log_; }
  std::size_t applied_count() const;
  EventLog event_log() const;
  const std::string& engine() const { return engine_; }
  const std::string& timeline_name() const { return name_; }

 private:
  struct Scheduled {
    double fire_sec = 0.0;
    double end_sec = 0.0;  // 0 when permanent
    Event event;
    bool supported = true;
    bool logged = false;
  };

  void fold_effects(double now_sec);

  std::string name_;
  std::string engine_;
  std::vector<Scheduled> scheduled_;   // sorted by fire time
  std::vector<double> boundaries_;     // sorted unique fire + end times
  std::size_t next_boundary_ = 0;
  double now_ = -std::numeric_limits<double>::infinity();
  Effects effects_;
  std::vector<AppliedEvent> log_;
};

// Human-readable timeline rendering for dtnsim-scenario --preview: one line
// per event with fire window, kind, value and note, plus a coarse time axis.
std::string preview_timeline(const Timeline& timeline, std::uint64_t seed);

}  // namespace dtnsim::scenario
