#include "dtnsim/scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dtnsim/util/rng.hpp"
#include "dtnsim/util/strfmt.hpp"

namespace dtnsim::scenario {

namespace {

struct KindName {
  EventKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[kEventKindCount] = {
    {EventKind::LinkCapacity, "link_capacity"},
    {EventKind::LinkAddRtt, "link_add_rtt"},
    {EventKind::LossBurst, "loss_burst"},
    {EventKind::ReorderBurst, "reorder_burst"},
    {EventKind::LinkDown, "link_down"},
    {EventKind::LinkUp, "link_up"},
    {EventKind::BgSurge, "bg_surge"},
    {EventKind::NicRingResize, "nic_ring_resize"},
    {EventKind::NicPauseToggle, "nic_pause_toggle"},
    {EventKind::IrqDrainDegrade, "irq_drain_degrade"},
    {EventKind::QdiscSwap, "qdisc_swap"},
    {EventKind::QdiscPacingRate, "qdisc_pacing_rate"},
    {EventKind::SysctlOptmem, "sysctl_optmem"},
    {EventKind::FlowArrive, "flow_arrive"},
    {EventKind::FlowDepart, "flow_depart"},
};

// Boundary comparisons tolerate fp noise from fire-time arithmetic; event
// times are user-scale seconds, so absolute 1e-12 is far below one tick.
constexpr double kEps = 1e-12;

[[noreturn]] void bad_event(std::size_t index, const Event& ev,
                            const char* what) {
  throw std::runtime_error(strfmt(
      "scenario: event %zu (%s at t=%gs): %s", index,
      std::string(kind_name(ev.kind)).c_str(), ev.at_sec, what));
}

}  // namespace

std::string_view kind_name(EventKind kind) {
  for (const auto& kn : kKindNames)
    if (kn.kind == kind) return kn.name;
  return "unknown";
}

std::optional<EventKind> kind_from_name(std::string_view name) {
  for (const auto& kn : kKindNames)
    if (kn.name == name) return kn.kind;
  return std::nullopt;
}

void Timeline::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& ev = events[i];
    if (!std::isfinite(ev.at_sec) || ev.at_sec < 0.0)
      bad_event(i, ev, "at_sec must be finite and >= 0");
    if (!std::isfinite(ev.duration_sec) || ev.duration_sec < 0.0)
      bad_event(i, ev, "duration_sec must be finite and >= 0");
    if (!std::isfinite(ev.jitter_sec) || ev.jitter_sec < 0.0)
      bad_event(i, ev, "jitter_sec must be finite and >= 0");
    if (!std::isfinite(ev.value))
      bad_event(i, ev, "value must be finite");
    switch (ev.kind) {
      case EventKind::LinkCapacity:
        if (ev.value <= 0.0) bad_event(i, ev, "capacity must be > 0 bps");
        break;
      case EventKind::LinkAddRtt:
        if (ev.value < 0.0) bad_event(i, ev, "added RTT must be >= 0 sec");
        break;
      case EventKind::LossBurst:
      case EventKind::ReorderBurst:
        if (ev.value < 0.0 || ev.value >= 1.0)
          bad_event(i, ev, "fraction must be in [0, 1)");
        break;
      case EventKind::LinkDown:
      case EventKind::LinkUp:
        break;
      case EventKind::BgSurge:
        if (ev.value < 0.0) bad_event(i, ev, "surge must be >= 0 bps");
        break;
      case EventKind::NicRingResize:
        if (ev.value < 1.0) bad_event(i, ev, "ring must be >= 1 descriptor");
        break;
      case EventKind::NicPauseToggle:
      case EventKind::QdiscSwap:
        if (ev.value != 0.0 && ev.value != 1.0)
          bad_event(i, ev, "toggle value must be 0 or 1");
        break;
      case EventKind::IrqDrainDegrade:
        if (ev.value <= 0.0)
          bad_event(i, ev, "drain multiplier must be > 0");
        break;
      case EventKind::QdiscPacingRate:
        if (ev.value < 0.0) bad_event(i, ev, "pacing rate must be >= 0 bps");
        break;
      case EventKind::SysctlOptmem:
        if (ev.value < 1.0) bad_event(i, ev, "optmem_max must be >= 1 byte");
        break;
      case EventKind::FlowArrive:
      case EventKind::FlowDepart:
        if (ev.value < 1.0 || ev.value != std::floor(ev.value))
          bad_event(i, ev, "stream count must be a positive integer");
        break;
    }
  }
}

Json to_json(const Timeline& timeline) {
  Json doc = Json::object();
  doc["name"] = timeline.name;
  Json events = Json::array();
  for (const Event& ev : timeline.events) {
    Json e = Json::object();
    e["at_sec"] = ev.at_sec;
    e["kind"] = std::string(kind_name(ev.kind));
    e["value"] = ev.value;
    e["duration_sec"] = ev.duration_sec;
    e["jitter_sec"] = ev.jitter_sec;
    e["note"] = ev.note;
    events.push_back(std::move(e));
  }
  doc["events"] = std::move(events);
  return doc;
}

std::optional<Timeline> timeline_from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  const Json* events = json.find("events");
  if (events == nullptr || !events->is_array()) return std::nullopt;
  Timeline tl;
  tl.name = json.string_at("name", "");
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json* e = events->at(i);
    if (e == nullptr || !e->is_object()) return std::nullopt;
    const Json* kind = e->find("kind");
    if (kind == nullptr || !kind->is_string()) return std::nullopt;
    auto k = kind_from_name(kind->string_or(""));
    if (!k) return std::nullopt;
    const Json* at = e->find("at_sec");
    if (at == nullptr || !at->is_number()) return std::nullopt;
    Event ev;
    ev.kind = *k;
    ev.at_sec = at->number_or(0.0);
    ev.value = e->number_at("value", 0.0);
    ev.duration_sec = e->number_at("duration_sec", 0.0);
    ev.jitter_sec = e->number_at("jitter_sec", 0.0);
    ev.note = e->string_at("note", "");
    tl.events.push_back(std::move(ev));
  }
  return tl;
}

Timeline load_timeline(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("scenario: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = Json::parse(buf.str());
  if (!doc)
    throw std::runtime_error("scenario: " + path + " is not valid JSON");
  auto tl = timeline_from_json(*doc);
  if (!tl)
    throw std::runtime_error("scenario: " + path +
                             " does not match the timeline schema");
  tl->validate();
  return *tl;
}

bool write_timeline(const std::string& path, const Timeline& timeline) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(timeline).dump(2) << '\n';
  return static_cast<bool>(out);
}

Json to_json(const EventLog& log) {
  Json doc = Json::object();
  doc["engine"] = log.engine;
  doc["timeline"] = log.timeline;
  doc["label"] = log.label;
  Json events = Json::array();
  for (const AppliedEvent& ev : log.events) {
    Json e = Json::object();
    e["fire_sec"] = ev.fire_sec;
    e["end_sec"] = ev.end_sec;
    e["kind"] = std::string(kind_name(ev.kind));
    e["value"] = ev.value;
    e["applied"] = ev.applied;
    e["note"] = ev.note;
    events.push_back(std::move(e));
  }
  doc["events"] = std::move(events);
  return doc;
}

std::optional<EventLog> event_log_from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  const Json* events = json.find("events");
  if (events == nullptr || !events->is_array()) return std::nullopt;
  EventLog log;
  log.engine = json.string_at("engine", "");
  log.timeline = json.string_at("timeline", "");
  log.label = json.string_at("label", "");
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json* e = events->at(i);
    if (e == nullptr || !e->is_object()) return std::nullopt;
    auto k = kind_from_name(e->string_at("kind", ""));
    if (!k) return std::nullopt;
    AppliedEvent ev;
    ev.kind = *k;
    ev.fire_sec = e->number_at("fire_sec", 0.0);
    ev.end_sec = e->number_at("end_sec", 0.0);
    ev.value = e->number_at("value", 0.0);
    ev.applied = e->bool_at("applied", true);
    ev.note = e->string_at("note", "");
    log.events.push_back(std::move(ev));
  }
  return log;
}

bool write_event_log(const std::string& path, const EventLog& log) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(log).dump(2) << '\n';
  return static_cast<bool>(out);
}

Timeline timeline_from_log(const EventLog& log) {
  Timeline tl;
  tl.name = log.timeline;
  for (const AppliedEvent& ev : log.events) {
    Event e;
    e.at_sec = ev.fire_sec;
    e.kind = ev.kind;
    e.value = ev.value;
    e.duration_sec = ev.end_sec > 0.0 ? ev.end_sec - ev.fire_sec : 0.0;
    e.jitter_sec = 0.0;  // the recorded fire time already includes the draw
    e.note = ev.note;
    tl.events.push_back(std::move(e));
  }
  return tl;
}

namespace {

// Jittered fire times for a timeline under a given seed. The jitter stream
// is jump-separated from anything the engines draw: substream 1009 of the
// run seed, then one substream per event index, so adding an event never
// shifts the jitter of its neighbours.
std::vector<double> fire_times(const Timeline& timeline, std::uint64_t seed) {
  Rng jitter_base = Rng(seed).substream(1009);
  std::vector<double> fires(timeline.events.size(), 0.0);
  for (std::size_t i = 0; i < timeline.events.size(); ++i) {
    const Event& ev = timeline.events[i];
    double fire = ev.at_sec;
    if (ev.jitter_sec > 0.0) {
      fire += jitter_base.substream(static_cast<unsigned>(i))
                  .uniform(-ev.jitter_sec, ev.jitter_sec);
    }
    fires[i] = std::max(0.0, fire);
  }
  return fires;
}

}  // namespace

Runtime::Runtime(const Timeline& timeline, std::uint64_t seed,
                 std::string engine, std::vector<EventKind> supported)
    : name_(timeline.name), engine_(std::move(engine)) {
  timeline.validate();
  const std::vector<double> fires = fire_times(timeline, seed);
  scheduled_.reserve(timeline.events.size());
  for (std::size_t i = 0; i < timeline.events.size(); ++i) {
    Scheduled s;
    s.fire_sec = fires[i];
    s.end_sec = timeline.events[i].duration_sec > 0.0
                    ? fires[i] + timeline.events[i].duration_sec
                    : 0.0;
    s.event = timeline.events[i];
    s.supported = std::find(supported.begin(), supported.end(),
                            timeline.events[i].kind) != supported.end();
    scheduled_.push_back(std::move(s));
  }
  std::stable_sort(scheduled_.begin(), scheduled_.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     return a.fire_sec < b.fire_sec;
                   });
  for (const Scheduled& s : scheduled_) {
    boundaries_.push_back(s.fire_sec);
    if (s.end_sec > 0.0) boundaries_.push_back(s.end_sec);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
}

bool Runtime::advance(double now_sec) {
  bool crossed = false;
  while (next_boundary_ < boundaries_.size() &&
         boundaries_[next_boundary_] <= now_sec + kEps) {
    ++next_boundary_;
    crossed = true;
  }
  now_ = now_sec;
  if (!crossed) return false;
  for (Scheduled& s : scheduled_) {
    if (s.logged || s.fire_sec > now_sec + kEps) continue;
    s.logged = true;
    AppliedEvent ev;
    ev.fire_sec = s.fire_sec;
    ev.end_sec = s.end_sec;
    ev.kind = s.event.kind;
    ev.value = s.event.value;
    ev.applied = s.supported;
    ev.note = s.event.note;
    log_.push_back(std::move(ev));
  }
  fold_effects(now_sec);
  return true;
}

// Recompute the overlay from scratch: fold the active events in fire order.
// Later fires win for assign-style knobs; surges and flow churn accumulate;
// LinkUp cancels an earlier LinkDown. A from-scratch fold at every boundary
// makes expiry trivially correct (an expired temporary simply drops out and
// any earlier permanent shows through again).
void Runtime::fold_effects(double now_sec) {
  effects_ = Effects{};
  for (const Scheduled& s : scheduled_) {
    if (!s.supported) continue;
    if (s.fire_sec > now_sec + kEps) continue;
    if (s.end_sec > 0.0 && now_sec + kEps >= s.end_sec) continue;
    const Event& ev = s.event;
    switch (ev.kind) {
      case EventKind::LinkCapacity: effects_.capacity_bps = ev.value; break;
      case EventKind::LinkAddRtt: effects_.extra_rtt_sec = ev.value; break;
      case EventKind::LossBurst: effects_.loss_frac = ev.value; break;
      case EventKind::ReorderBurst: effects_.reorder_frac = ev.value; break;
      case EventKind::LinkDown: effects_.link_down = true; break;
      case EventKind::LinkUp: effects_.link_down = false; break;
      case EventKind::BgSurge: effects_.extra_bg_bps += ev.value; break;
      case EventKind::NicRingResize: effects_.ring_descriptors = ev.value; break;
      case EventKind::NicPauseToggle:
        effects_.pause_frames = ev.value != 0.0 ? 1 : 0;
        break;
      case EventKind::IrqDrainDegrade: effects_.irq_drain_mult = ev.value; break;
      case EventKind::QdiscSwap:
        effects_.qdisc = ev.value != 0.0 ? 1 : 0;
        break;
      case EventKind::QdiscPacingRate: effects_.pacing_bps = ev.value; break;
      case EventKind::SysctlOptmem: effects_.optmem_max_bytes = ev.value; break;
      case EventKind::FlowArrive:
        effects_.flow_delta += static_cast<int>(std::lround(ev.value));
        break;
      case EventKind::FlowDepart:
        effects_.flow_delta -= static_cast<int>(std::lround(ev.value));
        break;
    }
  }
}

double Runtime::next_boundary_sec() const {
  if (next_boundary_ >= boundaries_.size())
    return std::numeric_limits<double>::infinity();
  return boundaries_[next_boundary_];
}

std::size_t Runtime::applied_count() const {
  std::size_t n = 0;
  for (const AppliedEvent& ev : log_)
    if (ev.applied) ++n;
  return n;
}

EventLog Runtime::event_log() const {
  EventLog log;
  log.engine = engine_;
  log.timeline = name_;
  log.events = log_;
  return log;
}

std::string preview_timeline(const Timeline& timeline, std::uint64_t seed) {
  timeline.validate();
  const std::vector<double> fires = fire_times(timeline, seed);
  double horizon = 0.0;
  for (std::size_t i = 0; i < timeline.events.size(); ++i) {
    horizon = std::max(horizon,
                       fires[i] + timeline.events[i].duration_sec);
  }
  std::string out = strfmt("scenario \"%s\" — %zu event(s), seed %llu\n",
                           timeline.name.c_str(), timeline.events.size(),
                           static_cast<unsigned long long>(seed));
  // Sort display rows by jittered fire time so the preview reads as the run
  // will experience it.
  std::vector<std::size_t> order(timeline.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return fires[a] < fires[b];
                   });
  constexpr int kAxisCols = 40;
  for (std::size_t idx : order) {
    const Event& ev = timeline.events[idx];
    std::string window =
        ev.duration_sec > 0.0 ? strfmt("+%-8.3fs", ev.duration_sec)
                              : std::string("permanent");
    // A coarse time axis: '=' spans the active window, '|' marks an instant.
    std::string axis(kAxisCols, '.');
    if (horizon > 0.0) {
      int lo = static_cast<int>(fires[idx] / horizon * (kAxisCols - 1));
      int hi = ev.duration_sec > 0.0
                   ? static_cast<int>((fires[idx] + ev.duration_sec) /
                                      horizon * (kAxisCols - 1))
                   : kAxisCols - 1;
      lo = std::clamp(lo, 0, kAxisCols - 1);
      hi = std::clamp(hi, lo, kAxisCols - 1);
      for (int c = lo; c <= hi; ++c) axis[static_cast<std::size_t>(c)] = '=';
      axis[static_cast<std::size_t>(lo)] = '|';
    }
    out += strfmt("  t=%9.3fs  %-10s  %-17s  value=%-12g [%s]%s%s\n",
                  fires[idx], window.c_str(),
                  std::string(kind_name(ev.kind)).c_str(), ev.value,
                  axis.c_str(), ev.note.empty() ? "" : "  ",
                  ev.note.c_str());
  }
  return out;
}

}  // namespace dtnsim::scenario
