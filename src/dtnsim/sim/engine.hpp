// Discrete-event simulation engine.
//
// A single-threaded virtual-time executor: callbacks scheduled at absolute or
// relative nanosecond times run in deterministic order. All dtnsim models
// (TCP rounds, qdisc pacing, NIC drains, mpstat sampling) are driven from one
// Engine per simulation run.
#pragma once

#include <cstddef>

#include "dtnsim/sim/event_queue.hpp"
#include "dtnsim/util/units.hpp"

namespace dtnsim::sim {

class Engine {
 public:
  Nanos now() const { return now_; }
  std::size_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  // Schedule `fn` to run `delay` from now (clamped to >= 0).
  EventHandle schedule(Nanos delay, EventQueue::Callback fn);
  // Schedule `fn` at absolute time `when` (clamped to >= now()).
  EventHandle schedule_at(Nanos when, EventQueue::Callback fn);

  // Run until the queue is empty.
  void run();
  // Run events with time <= until; leaves now() == until even if the queue
  // drained earlier (so follow-up scheduling is relative to the horizon).
  void run_until(Nanos until);
  // Execute at most `n` events; returns how many ran.
  std::size_t step(std::size_t n = 1);

 private:
  EventQueue queue_;
  Nanos now_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace dtnsim::sim
