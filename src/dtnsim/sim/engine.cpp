#include "dtnsim/sim/engine.hpp"

#include <algorithm>

#include "dtnsim/util/log.hpp"

namespace dtnsim::sim {

EventHandle Engine::schedule(Nanos delay, EventQueue::Callback fn) {
  return schedule_at(now_ + std::max<Nanos>(delay, 0), std::move(fn));
}

EventHandle Engine::schedule_at(Nanos when, EventQueue::Callback fn) {
  return queue_.push(std::max(when, now_), std::move(fn));
}

void Engine::run() {
  // Log lines emitted from event callbacks carry the simulated clock so
  // they line up with probe samples and trace timestamps.
  log::ScopedTimeSource clock([this] { return now_; });
  Nanos t = 0;
  while (auto fn = queue_.pop(&t)) {
    now_ = t;
    ++executed_;
    fn();
  }
}

void Engine::run_until(Nanos until) {
  log::ScopedTimeSource clock([this] { return now_; });
  while (!queue_.empty() && queue_.next_time() <= until) {
    Nanos t = 0;
    auto fn = queue_.pop(&t);
    if (!fn) break;
    now_ = t;
    ++executed_;
    fn();
  }
  now_ = std::max(now_, until);
}

std::size_t Engine::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n) {
    Nanos t = 0;
    auto fn = queue_.pop(&t);
    if (!fn) break;
    now_ = t;
    ++executed_;
    fn();
    ++ran;
  }
  return ran;
}

}  // namespace dtnsim::sim
