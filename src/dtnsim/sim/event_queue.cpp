#include "dtnsim/sim/event_queue.hpp"

namespace dtnsim::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

EventHandle EventQueue::push(Nanos time, Callback fn) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{time, next_seq_++, std::move(fn), flag});
  ++live_;
  return EventHandle(flag);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Nanos EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? -1 : heap_.top().time;
}

EventQueue::Callback EventQueue::pop(Nanos* time_out) {
  drop_cancelled();
  if (heap_.empty()) return {};
  // priority_queue::top is const; the callback must be moved out, so copy the
  // shared bits and pop. Entries are small apart from the std::function.
  Entry top = heap_.top();
  heap_.pop();
  --live_;
  if (time_out) *time_out = top.time;
  return std::move(top.fn);
}

}  // namespace dtnsim::sim
