// Event queue for the discrete-event engine.
//
// Events fire in (time, sequence) order: equal-time events run in the order
// they were scheduled, which keeps runs deterministic regardless of heap
// internals. Events can be cancelled through the handle returned at
// scheduling time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "dtnsim/util/units.hpp"

namespace dtnsim::sim {

class EventHandle {
 public:
  EventHandle() = default;

  // Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel();
  bool valid() const { return static_cast<bool>(cancelled_); }
  bool cancelled() const { return cancelled_ && *cancelled_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventHandle push(Nanos time, Callback fn);

  bool empty() const;
  std::size_t size() const { return live_; }

  // Time of the earliest live event; engine asserts non-empty first.
  Nanos next_time() const;

  // Pop and return the earliest live event's callback (skipping cancelled
  // entries). Returns an empty function if the queue is exhausted.
  Callback pop(Nanos* time_out);

 private:
  struct Entry {
    Nanos time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  mutable std::size_t live_ = 0;
};

}  // namespace dtnsim::sim
