#include "dtnsim/lint/project.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "dtnsim/lint/internal.hpp"
#include "dtnsim/sweep/pool.hpp"

namespace dtnsim::lint {
namespace {

using namespace detail;

// ---- cursor over scrubbed lines -------------------------------------------
// All structural scanning (enum bodies, switch bodies, signatures) walks the
// scrubbed text so string/comment contents cannot fake syntax; the raw lines
// are consulted only to recover string-literal *values* (metric names, Json
// keys) at positions the scrubbed text has already vouched for.

struct Cursor {
  std::size_t li = 0;  // line index
  std::size_t ci = 0;  // column index
};

bool skip_ws(const std::vector<std::string>& code, Cursor& c) {
  while (c.li < code.size()) {
    const std::string& line = code[c.li];
    if (c.ci >= line.size()) {
      ++c.li;
      c.ci = 0;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(line[c.ci]))) return true;
    ++c.ci;
  }
  return false;
}

char char_at(const std::vector<std::string>& code, const Cursor& c) {
  return code[c.li][c.ci];
}

std::string read_ident(const std::vector<std::string>& code, Cursor& c) {
  if (!skip_ws(code, c)) return "";
  std::string out;
  const std::string& line = code[c.li];
  while (c.ci < line.size() && is_ident_char(line[c.ci])) {
    out += line[c.ci];
    ++c.ci;
  }
  return out;
}

// `c` on (or before) an `open` char: advance just past its matching `close`.
bool skip_balanced(const std::vector<std::string>& code, Cursor& c, char open,
                   char close) {
  if (!skip_ws(code, c) || char_at(code, c) != open) return false;
  int depth = 0;
  while (c.li < code.size()) {
    const std::string& line = code[c.li];
    for (; c.ci < line.size(); ++c.ci) {
      if (line[c.ci] == open) ++depth;
      else if (line[c.ci] == close && --depth == 0) {
        ++c.ci;
        return true;
      }
    }
    ++c.li;
    c.ci = 0;
  }
  return false;
}

// Text of [a, b), newlines collapsed to single spaces.
std::string text_between(const std::vector<std::string>& code, Cursor a,
                         const Cursor& b) {
  std::string out;
  while (a.li < b.li || (a.li == b.li && a.ci < b.ci)) {
    const std::string& line = code[a.li];
    if (a.ci >= line.size()) {
      out += ' ';
      ++a.li;
      a.ci = 0;
      continue;
    }
    const std::size_t stop = a.li == b.li ? b.ci : line.size();
    out.append(line, a.ci, stop - a.ci);
    a.ci = stop;
  }
  return out;
}

std::string strip_ws(const std::string& s) {
  std::string out;
  for (char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  return out;
}

bool any_conditional(const std::vector<int>& cond, std::size_t first,
                     std::size_t last) {
  for (std::size_t i = first; i <= last && i < cond.size(); ++i)
    if (cond[i] > 0) return true;
  return false;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool is_library(FileKind kind) {
  return kind == FileKind::LibraryHeader || kind == FileKind::LibrarySource ||
         kind == FileKind::UnitsLibrary;
}

// ---- enum definitions ------------------------------------------------------

void index_enums(const std::vector<std::string>& code, const std::string& path,
                 FileIndex& out) {
  for (std::size_t li = 0; li < code.size(); ++li) {
    const auto pos = find_word(code[li], "enum");
    if (pos == std::string::npos) continue;
    Cursor c{li, pos + 4};
    const std::string tag = read_ident(code, c);
    if (tag != "class" && tag != "struct") continue;  // scoped enums only
    const std::string name = read_ident(code, c);
    if (name.empty() || !skip_ws(code, c)) continue;
    if (char_at(code, c) == ':') {  // underlying-type clause
      while (skip_ws(code, c) && char_at(code, c) != '{' &&
             char_at(code, c) != ';')
        ++c.ci;
    }
    if (!skip_ws(code, c) || char_at(code, c) != '{') continue;  // fwd decl
    Cursor body = c;
    ++body.ci;  // past '{'
    Cursor end = c;
    if (!skip_balanced(code, end, '{', '}')) continue;
    Cursor close = end;  // just past '}'
    if (close.ci > 0) --close.ci;
    EnumDef def;
    def.name = name;
    def.path = path;
    def.line = static_cast<int>(li + 1);
    std::string chunk;
    const std::string text = text_between(code, body, close) + ",";
    for (char ch : text) {
      if (ch != ',') {
        chunk += ch;
        continue;
      }
      // First identifier of the chunk is the enumerator; `= value` tails
      // and empty chunks (trailing comma) drop out.
      std::string ident;
      for (char cc : chunk) {
        if (is_ident_char(cc)) {
          ident += cc;
        } else if (!ident.empty()) {
          break;
        }
      }
      if (!ident.empty()) def.enumerators.push_back(ident);
      chunk.clear();
    }
    if (!def.enumerators.empty()) out.enums.push_back(std::move(def));
  }
}

// ---- switch statements -----------------------------------------------------

// `c` just past a nested `switch` keyword: skip its (cond) and {body}.
bool skip_nested_switch(const std::vector<std::string>& code, Cursor& c) {
  if (!skip_balanced(code, c, '(', ')')) return false;
  if (!skip_ws(code, c) || char_at(code, c) != '{') return false;
  return skip_balanced(code, c, '{', '}');
}

// Parse the case labels / default of the switch whose body opens at `c`
// (pointing at '{'). Nested switches are skipped here; the outer indexing
// loop discovers them independently by their own `switch` keyword.
void scan_switch_body(const std::vector<std::string>& code, Cursor c,
                      SwitchStmt& sw, std::size_t& end_line) {
  int depth = 0;
  end_line = c.li;
  while (c.li < code.size()) {
    const std::string& line = code[c.li];
    if (c.ci >= line.size()) {
      ++c.li;
      c.ci = 0;
      continue;
    }
    const char ch = line[c.ci];
    if (ch == '{') {
      ++depth;
      ++c.ci;
      continue;
    }
    if (ch == '}') {
      if (--depth == 0) {
        end_line = c.li;
        return;
      }
      ++c.ci;
      continue;
    }
    const bool word_start =
        is_ident_char(ch) && (c.ci == 0 || !is_ident_char(line[c.ci - 1]));
    if (!word_start) {
      ++c.ci;
      continue;
    }
    std::size_t end = c.ci;
    while (end < line.size() && is_ident_char(line[end])) ++end;
    const std::string word = line.substr(c.ci, end - c.ci);
    c.ci = end;
    if (word == "switch") {
      skip_nested_switch(code, c);
      continue;
    }
    if (word == "default") {
      Cursor d = c;
      if (skip_ws(code, d) && char_at(code, d) == ':' &&
          !(d.ci + 1 < code[d.li].size() && code[d.li][d.ci + 1] == ':')) {
        sw.has_default = true;
      }
      continue;
    }
    if (word != "case") continue;
    // Label: everything up to the first ':' that is not part of '::'.
    std::string label;
    while (c.li < code.size()) {
      const std::string& ll = code[c.li];
      if (c.ci >= ll.size()) {
        ++c.li;
        c.ci = 0;
        label += ' ';
        continue;
      }
      if (ll[c.ci] == ':') {
        if (c.ci + 1 < ll.size() && ll[c.ci + 1] == ':') {
          label += "::";
          c.ci += 2;
          continue;
        }
        break;
      }
      label += ll[c.ci];
      ++c.ci;
    }
    label = strip_ws(label);
    const auto sep = label.rfind("::");
    if (sep == std::string::npos || sep == 0) continue;  // char/int label
    const std::string enumerator = label.substr(sep + 2);
    std::string qual = label.substr(0, sep);
    const auto prev = qual.rfind("::");
    if (prev != std::string::npos) qual = qual.substr(prev + 2);
    if (qual.empty() || enumerator.empty()) continue;
    if (sw.enum_name.empty()) sw.enum_name = qual;
    if (qual == sw.enum_name) sw.cases.insert(enumerator);
  }
}

void index_switches(const std::vector<std::string>& code,
                    const std::vector<int>& cond, const Suppressions& sup,
                    const std::string& path, FileIndex& out) {
  for (std::size_t li = 0; li < code.size(); ++li) {
    std::size_t pos = 0;
    while ((pos = find_word(code[li], "switch", pos)) != std::string::npos) {
      Cursor c{li, pos + 6};
      pos += 6;
      if (!skip_balanced(code, c, '(', ')')) continue;
      if (!skip_ws(code, c) || char_at(code, c) != '{') continue;
      SwitchStmt sw;
      sw.path = path;
      sw.line = static_cast<int>(li + 1);
      std::size_t end_line = li;
      scan_switch_body(code, c, sw, end_line);
      sw.conditional = any_conditional(cond, li, end_line);
      sw.suppressed = sup.allows(li, "enum-switch");
      out.switches.push_back(std::move(sw));
    }
  }
}

// ---- metric registration sites ---------------------------------------------

// Reads a "..." literal from the raw line starting at the scrubbed-verified
// open paren; empty when the first argument is not a string literal (e.g. a
// std::string expression) — those sites are invisible to the parity rules.
std::string literal_after_paren(const std::string& raw, std::size_t paren) {
  std::size_t i = paren + 1;
  while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) ++i;
  if (i >= raw.size() || raw[i] != '"') return "";
  const auto close = raw.find('"', i + 1);
  if (close == std::string::npos) return "";
  return raw.substr(i + 1, close - i - 1);
}

void index_metrics(const std::vector<std::string>& raw,
                   const std::vector<std::string>& code,
                   const std::vector<int>& cond, const Suppressions& sup,
                   const std::string& path, FileKind kind, FileIndex& out) {
  const auto parts = split_path(path);
  const std::string base = parts.empty() ? "" : parts.back();
  std::string engine;
  if (base == "transfer.cpp") engine = "fluid";
  if (base == "packet_sim.cpp") engine = "packet";
  static const char* const kRegistrars[] = {"counter", "gauge", "histogram"};
  for (std::size_t li = 0; li < code.size(); ++li) {
    for (const char* reg : kRegistrars) {
      std::size_t pos = 0;
      while ((pos = find_word(code[li], reg, pos)) != std::string::npos) {
        std::size_t after = pos + std::string(reg).size();
        pos = after;
        if (after >= code[li].size() || code[li][after] != '(') continue;
        // Registration calls often wrap: `counter(\n    "name", ...`. Walk
        // raw whitespace (including line breaks) to the first argument.
        std::size_t lit_line = li;
        std::size_t i = after + 1;
        while (lit_line < raw.size()) {
          if (i >= raw[lit_line].size()) {
            ++lit_line;
            i = 0;
            continue;
          }
          if (std::isspace(static_cast<unsigned char>(raw[lit_line][i]))) {
            ++i;
            continue;
          }
          break;
        }
        if (lit_line >= raw.size() || raw[lit_line][i] != '"') continue;
        const auto close = raw[lit_line].find('"', i + 1);
        if (close == std::string::npos) continue;
        const std::string name = raw[lit_line].substr(i + 1, close - i - 1);
        if (name.empty()) continue;
        MetricSite site;
        site.path = path;
        site.line = static_cast<int>(li + 1);
        site.kind = reg;
        site.name = name;
        site.engine = engine;
        site.library = is_library(kind);
        site.conditional = cond[li] > 0;
        site.suppressed = sup.allows(li, "metric-parity");
        out.metrics.push_back(std::move(site));
      }
    }
  }
}

// ---- Json round-trip functions ---------------------------------------------

// "const harness::TestResult&" / "std::optional<Timeline>" ->
// "TestResult" / "Timeline"; vector payloads keep their wrapper so
// `ss_log_*` (vector<SsReport>) never collides with the element pair.
std::string normalize_type(const std::string& text) {
  std::string t = text;
  static const char* const kDrop[] = {"static",   "inline", "constexpr",
                                      "const",    "struct", "class",
                                      "typename", "friend"};
  for (const char* kw : kDrop) {
    std::size_t p = 0;
    while ((p = find_word(t, kw, p)) != std::string::npos)
      t.erase(p, std::string(kw).size());
  }
  std::string s;
  for (char c : t)
    if (!std::isspace(static_cast<unsigned char>(c)) && c != '&' && c != '*')
      s += c;
  // Drop namespace qualifiers wherever they appear (std::, harness::,
  // obs:: — also inside template arguments).
  std::size_t p;
  while ((p = s.find("::")) != std::string::npos) {
    std::size_t b = p;
    while (b > 0 && is_ident_char(s[b - 1])) --b;
    s.erase(b, p + 2 - b);
  }
  if (starts_with(s, "optional<") && ends_with(s, ">"))
    s = s.substr(9, s.size() - 10);
  return s;
}

// Split a parameter list on top-level commas (template arguments stay
// intact).
std::vector<std::string> split_params(const std::string& params) {
  std::vector<std::string> out;
  std::string cur;
  int angle = 0;
  for (char c : params) {
    if (c == '<') ++angle;
    if (c == '>') --angle;
    if (c == ',' && angle == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// The struct a parse-side signature round-trips: the return type, or the
// pointee of an out-parameter when the function returns bool/void.
std::string parse_side_struct(const std::string& ret_text,
                              const std::string& params) {
  const std::string ret = normalize_type(ret_text);
  if (!ret.empty() && ret != "bool" && ret != "void" && ret != "Json")
    return ret;
  for (const auto& p : split_params(params)) {
    const auto star = p.find('*');
    if (star != std::string::npos) return normalize_type(p.substr(0, star));
  }
  return "";
}

std::string emit_side_struct(const std::string& params) {
  const auto amp = params.find('&');
  if (amp == std::string::npos) return "";
  const auto comma = params.find(',');
  if (comma != std::string::npos && comma < amp) return "";
  return normalize_type(params.substr(0, amp));
}

void collect_keys(const std::vector<std::string>& raw,
                  const std::vector<std::string>& code, std::size_t first,
                  std::size_t last, std::set<std::string>& keys) {
  static const char* const kReaders[] = {"find", "string_at", "number_at",
                                         "bool_at"};
  for (std::size_t li = first; li <= last && li < code.size(); ++li) {
    // Emit idiom: doc["key"] = ...;
    std::size_t pos = 0;
    while ((pos = raw[li].find("[\"", pos)) != std::string::npos) {
      if (pos < code[li].size() && code[li][pos] == '[') {
        const std::string key = literal_after_paren(raw[li], pos);
        if (!key.empty()) keys.insert(key);
      }
      ++pos;
    }
    // Parse idiom: find("key") / *_at("key", fallback).
    for (const char* reader : kReaders) {
      std::size_t rp = 0;
      while ((rp = find_word(code[li], reader, rp)) != std::string::npos) {
        const std::size_t after = rp + std::string(reader).size();
        rp = after;
        if (after >= code[li].size() || code[li][after] != '(') continue;
        const std::string key = literal_after_paren(raw[li], after);
        if (!key.empty()) keys.insert(key);
      }
    }
  }
}

void index_json_fns(const std::vector<std::string>& raw,
                    const std::vector<std::string>& code,
                    const std::vector<int>& cond, const Suppressions& sup,
                    const std::string& path, FileKind kind, FileIndex& out) {
  static const char* const kTails[] = {"to_json", "from_json"};
  for (std::size_t li = 0; li < code.size(); ++li) {
    for (const char* tail : kTails) {
      std::size_t pos = 0;
      while ((pos = code[li].find(tail, pos)) != std::string::npos) {
        const std::size_t tail_end = pos + std::string(tail).size();
        const std::size_t hit = pos;
        pos = tail_end;
        if (tail_end < code[li].size() && is_ident_char(code[li][tail_end]))
          continue;  // e.g. to_jsonl
        // Expand left over identifier chars: full function name.
        std::size_t name_start = hit;
        while (name_start > 0 && is_ident_char(code[li][name_start - 1]))
          --name_start;
        const std::string fn = code[li].substr(name_start, tail_end - name_start);
        if (fn != tail && !ends_with(fn, std::string("_") + tail)) continue;
        if (tail_end >= code[li].size() || code[li][tail_end] != '(') continue;
        Cursor c{li, tail_end};
        Cursor params_open = c;
        if (!skip_balanced(code, c, '(', ')')) continue;
        Cursor params_close = c;  // just past ')'
        if (params_close.ci > 0) --params_close.ci;
        Cursor body = c;
        std::string word;
        do {  // skip `const`, `noexcept` between ')' and '{'
          if (!skip_ws(code, body)) break;
          if (char_at(code, body) == '{' || char_at(code, body) == ';') break;
          word = read_ident(code, body);
        } while (!word.empty());
        if (body.li >= code.size() || char_at(code, body) != '{')
          continue;  // declaration or call site
        Cursor open = body;
        ++params_open.ci;  // past '('
        const std::string params =
            text_between(code, params_open, params_close);
        JsonFn jf;
        jf.fn_name = fn;
        jf.path = path;
        jf.line = static_cast<int>(li + 1);
        jf.emit = std::string(tail) == "to_json";
        jf.struct_name =
            jf.emit ? emit_side_struct(params)
                    : parse_side_struct(code[li].substr(0, name_start), params);
        if (jf.struct_name.empty()) continue;
        Cursor end = open;
        if (!skip_balanced(code, end, '{', '}')) continue;
        const std::size_t end_line = end.ci == 0 && end.li > 0 ? end.li - 1 : end.li;
        collect_keys(raw, code, li, end_line, jf.keys);
        jf.library = is_library(kind);
        jf.conditional = any_conditional(cond, li, end_line);
        jf.suppressed = sup.allows(li, "json-parity");
        out.json_fns.push_back(std::move(jf));
      }
    }
  }
}

// ---- metric-parity allowlist -----------------------------------------------

// Deliberate engine asymmetries in the dual-engine families. Every entry
// carries the reason the asymmetry is correct; anything NOT listed here that
// exists in only one engine is drift and gets flagged.
struct MetricAllowance {
  const char* name;
  const char* why;
};

constexpr MetricAllowance kMetricParityAllowlist[] = {
    // Fluid-engine-only views.
    {"flow.sent_rate_bps",
     "sender wire rate is a fluid-integrator view; the packet engine counts "
     "discrete departures (pkt.superpackets_sent/pkt.segments_sent)"},
    {"flow.rcv_backlog_bytes",
     "fluid receiver-drain backlog; the packet engine's queue view is "
     "descriptor-granular (pkt.ring_occupancy)"},
    {"flow.per_flow_min_bps",
     "per-tick skew across streams; the packet engine models a single flow"},
    {"flow.per_flow_max_bps",
     "per-tick skew across streams; the packet engine models a single flow"},
    {"flow.per_flow_range_bps",
     "per-tick skew across streams; the packet engine models a single flow"},
    {"scenario.active_flows",
     "the packet engine does not support the flow-churn scenario kinds "
     "(flow_arrive/flow_depart), so the gauge would be a constant lie there"},
    // Packet-engine-only views: SKB/descriptor-granular observables the
    // fluid engine cannot express (it mirrors them under nic.*/path.*).
    {"pkt.qdisc_backlog_bytes",
     "fq backlog needs discrete enqueued SKBs; fluid pacing is closed-form"},
    {"pkt.interdeparture_gap_ns",
     "pacing-gap histogram needs discrete departures"},
    {"pkt.superpackets_sent",
     "discrete GSO counts; the fluid engine prices GSO via kern::gso_counts "
     "fractions"},
    {"pkt.segments_sent",
     "discrete GSO counts; the fluid engine prices GSO via kern::gso_counts "
     "fractions"},
    {"pkt.ring_occupancy",
     "descriptor-granular ring view; fluid mirrors nic.rx_ring_occupancy_frac"},
    {"pkt.ring_peak",
     "descriptor-granular ring view; fluid mirrors nic.rx_ring_occupancy_frac"},
    {"pkt.ring_drops",
     "segment-count drops; fluid accounts the same loss as nic.rx_dropped_bytes"},
    {"pkt.dropped_bytes",
     "fluid accounts drop bytes under nic.rx_dropped_bytes + path.dropped_bytes"},
    {"pkt.napi_polls", "NAPI batching is inherently discrete"},
    {"pkt.napi_batch_segments", "NAPI batching is inherently discrete"},
    {"pkt.gro_aggregates",
     "discrete aggregate count; fluid mirrors flow.gro_aggregate_bytes"},
};

// ---- the cross-file rules --------------------------------------------------

void rule_enum_switch(const ProjectIndex& index, std::vector<Finding>& out) {
  std::map<std::string, std::vector<const EnumDef*>> enums;
  for (const auto& f : index.files)
    for (const auto& e : f.enums) enums[e.name].push_back(&e);
  for (const auto& f : index.files) {
    if (!is_library(f.kind) && f.kind != FileKind::Tool) continue;
    for (const auto& sw : f.switches) {
      if (sw.enum_name.empty() || sw.conditional || sw.suppressed) continue;
      const auto it = enums.find(sw.enum_name);
      if (it == enums.end() || it->second.size() != 1) continue;  // unknown or
                                                                  // ambiguous
      const EnumDef& def = *it->second.front();
      // Stale labels first: a `case` naming an enumerator the definition no
      // longer carries is dead code even under a default — it can never fire
      // and usually marks a rename that missed this switch.
      std::string stale;
      for (const auto& c : sw.cases) {
        if (std::find(def.enumerators.begin(), def.enumerators.end(), c) !=
            def.enumerators.end())
          continue;
        if (!stale.empty()) stale += ", ";
        stale += c;
      }
      if (!stale.empty()) {
        out.push_back({"enum-switch", sw.path, sw.line,
                       "switch over 'enum class " + sw.enum_name + "' (" +
                           def.path +
                           ") names enumerator(s) that no longer exist: " +
                           stale});
      }
      if (sw.has_default) continue;  // default covers missing enumerators
      std::string missing;
      int n = 0;
      for (const auto& e : def.enumerators) {
        if (sw.cases.count(e)) continue;
        if (!missing.empty()) missing += ", ";
        missing += e;
        ++n;
      }
      if (missing.empty()) continue;
      out.push_back(
          {"enum-switch", sw.path, sw.line,
           "switch over 'enum class " + sw.enum_name + "' (" + def.path +
               ") handles " +
               std::to_string(def.enumerators.size() - std::size_t(n)) + "/" +
               std::to_string(def.enumerators.size()) +
               " enumerators and has no default; missing: " + missing});
    }
  }
}

std::string canonical_family(const std::string& name) {
  if (starts_with(name, "flow.")) return "~" + name.substr(4);
  if (starts_with(name, "pkt.")) return "~" + name.substr(3);
  return name;  // scenario.* compares literally
}

bool dual_engine_family(const std::string& name) {
  return starts_with(name, "flow.") || starts_with(name, "pkt.") ||
         starts_with(name, "scenario.");
}

void rule_metric_parity(const ProjectIndex& index, std::vector<Finding>& out) {
  // Presence map over the dual-engine families — every site counts, even
  // suppressed ones (existence is a fact; suppression mutes findings only).
  std::map<std::string, std::set<std::string>> engines_of;  // canon -> engines
  for (const auto& f : index.files)
    for (const auto& m : f.metrics)
      if (!m.engine.empty() && dual_engine_family(m.name))
        engines_of[canonical_family(m.name)].insert(m.engine);

  std::set<std::string> reported;
  for (const auto& f : index.files) {
    for (const auto& m : f.metrics) {
      if (m.engine.empty() || !dual_engine_family(m.name)) continue;
      if (m.conditional || m.suppressed) continue;
      if (metric_parity_allowance(m.name) != nullptr) continue;
      const auto& present = engines_of[canonical_family(m.name)];
      if (present.size() > 1) continue;
      if (!reported.insert(m.engine + "|" + m.name).second) continue;
      const bool fluid = m.engine == "fluid";
      std::string counterpart;
      if (starts_with(m.name, "flow."))
        counterpart = "'pkt." + m.name.substr(5) + "' in flow/packet_sim.cpp";
      else if (starts_with(m.name, "pkt."))
        counterpart = "'flow." + m.name.substr(4) + "' in flow/transfer.cpp";
      else
        counterpart = std::string("a registration in ") +
                      (fluid ? "flow/packet_sim.cpp" : "flow/transfer.cpp");
      out.push_back({"metric-parity", m.path, m.line,
                     "metric '" + m.name + "' is registered by the " +
                         m.engine +
                         " engine only; dual-engine families need " +
                         counterpart + " or an explained allowlist entry"});
    }
  }

  if (index.doc_text.empty()) return;
  std::set<std::string> doc_reported;
  for (const auto& f : index.files) {
    for (const auto& m : f.metrics) {
      if (!m.library || m.conditional || m.suppressed) continue;
      if (index.doc_text.find(m.name) != std::string::npos) continue;
      if (!doc_reported.insert(m.name).second) continue;
      out.push_back({"metric-parity", m.path, m.line,
                     "metric '" + m.name +
                         "' is registered but never mentioned in "
                         "docs/OBSERVABILITY.md; document it (or suppress the "
                         "site with an explained allow comment)"});
    }
  }
}

void rule_json_parity(const ProjectIndex& index, std::vector<Finding>& out) {
  struct Pair {
    std::set<std::string> emit_keys, parse_keys;
    const JsonFn* emit_fn = nullptr;
    const JsonFn* parse_fn = nullptr;
    bool skip = false;
  };
  std::map<std::string, Pair> pairs;
  for (const auto& f : index.files) {
    for (const auto& jf : f.json_fns) {
      if (!jf.library) continue;
      Pair& p = pairs[jf.struct_name];
      if (jf.conditional || jf.suppressed) p.skip = true;
      if (jf.emit) {
        p.emit_keys.insert(jf.keys.begin(), jf.keys.end());
        if (!p.emit_fn) p.emit_fn = &jf;
      } else {
        p.parse_keys.insert(jf.keys.begin(), jf.keys.end());
        if (!p.parse_fn) p.parse_fn = &jf;
      }
    }
  }
  for (const auto& [name, p] : pairs) {
    if (p.skip || !p.emit_fn || !p.parse_fn) continue;
    std::string emit_only, parse_only;
    for (const auto& k : p.emit_keys)
      if (!p.parse_keys.count(k))
        emit_only += (emit_only.empty() ? "" : ", ") + k;
    for (const auto& k : p.parse_keys)
      if (!p.emit_keys.count(k))
        parse_only += (parse_only.empty() ? "" : ", ") + k;
    if (emit_only.empty() && parse_only.empty()) continue;
    std::string detail;
    if (!emit_only.empty())
      detail += "emitted by " + p.emit_fn->fn_name + " but never parsed: " +
                emit_only;
    if (!parse_only.empty()) {
      if (!detail.empty()) detail += "; ";
      detail += "parsed by " + p.parse_fn->fn_name + " but never emitted: " +
                parse_only;
    }
    out.push_back({"json-parity", p.emit_fn->path, p.emit_fn->line,
                   "Json round-trip for '" + name + "' drifted: " + detail});
  }
}

}  // namespace

// ---- public API ------------------------------------------------------------

FileIndex index_file(const std::string& path, const std::string& content) {
  FileIndex out;
  out.path = path;
  out.kind = classify(path);
  if (out.kind == FileKind::Other) return out;
  const auto raw = detail::split_lines(content);
  const auto code = detail::scrub(raw);
  const auto cond = detail::conditional_depth(raw);
  const auto sup = detail::parse_suppressions(raw);
  index_enums(code, path, out);
  index_switches(code, cond, sup, path, out);
  index_metrics(raw, code, cond, sup, path, out.kind, out);
  index_json_fns(raw, code, cond, sup, path, out.kind, out);
  return out;
}

ProjectIndex build_index(const std::vector<FileContent>& files,
                         std::string doc_text) {
  ProjectIndex index;
  index.doc_text = std::move(doc_text);
  index.files.reserve(files.size());
  for (const auto& f : files) index.files.push_back(index_file(f.path, f.content));
  return index;
}

std::vector<Finding> run_project_rules(const ProjectIndex& index) {
  std::vector<Finding> out;
  rule_enum_switch(index, out);
  rule_metric_parity(index, out);
  rule_json_parity(index, out);
  return out;
}

const char* metric_parity_allowance(const std::string& name) {
  for (const auto& a : kMetricParityAllowlist)
    if (name == a.name) return a.why;
  return nullptr;
}

std::string format_metric_allowlist() {
  std::string out;
  for (const auto& a : kMetricParityAllowlist) {
    out += a.name;
    out += ": ";
    out += a.why;
    out += "\n";
  }
  return out;
}

std::string baseline_key(const Finding& f) {
  return f.rule + "|" + f.path + "|" + f.message;
}

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> out;
  for (const auto& line : detail::split_lines(text)) {
    const auto b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    const auto e = line.find_last_not_of(" \t\r");
    out.insert(line.substr(b, e - b + 1));
  }
  return out;
}

std::string to_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# dtnsim-lint baseline: known findings masked during incremental\n"
      "# adoption. One `rule|path|message` per line; regenerate with\n"
      "# dtnsim-lint --write-baseline. Entries should only ever disappear.\n";
  std::set<std::string> keys;
  for (const auto& f : findings) keys.insert(baseline_key(f));
  for (const auto& k : keys) out += k + "\n";
  return out;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::set<std::string>& baseline) {
  if (baseline.empty()) return findings;
  std::vector<Finding> out;
  out.reserve(findings.size());
  for (auto& f : findings)
    if (!baseline.count(baseline_key(f))) out.push_back(std::move(f));
  return out;
}

std::vector<Finding> lint_project(const std::vector<FileContent>& files,
                                  const ProjectOptions& opts) {
  const int jobs = sweep::resolve_jobs(opts.jobs);
  std::vector<std::vector<Finding>> per_file(files.size());
  std::vector<FileIndex> indexed(files.size());
  sweep::parallel_for(files.size(), jobs, [&](std::size_t i) {
    per_file[i] = lint_file(files[i].path, files[i].content);
    if (opts.project_rules)
      indexed[i] = index_file(files[i].path, files[i].content);
  });
  std::vector<Finding> out;
  for (auto& v : per_file) out.insert(out.end(), v.begin(), v.end());
  if (opts.project_rules) {
    ProjectIndex index;
    index.files = std::move(indexed);
    index.doc_text = opts.doc_text;
    const auto project = run_project_rules(index);
    out.insert(out.end(), project.begin(), project.end());
  }
  return apply_baseline(std::move(out), opts.baseline);
}

}  // namespace dtnsim::lint
