// Shared lexical machinery for the dtnsim-lint passes: line splitting,
// comment/string scrubbing, suppression parsing, word-boundary search, path
// utilities, and the per-line preprocessor-conditional map the project-wide
// rules use to stay `#if`/`#ifdef`-aware. Internal to src/dtnsim/lint/ —
// tools include lint.hpp / project.hpp, never this header.
#pragma once

#include <string>
#include <vector>

namespace dtnsim::lint::detail {

std::vector<std::string> split_path(const std::string& path);
bool ends_with(const std::string& s, const std::string& suffix);
bool is_ident_char(char c);

// Split into lines; the trailing fragment after the last '\n' is a line too.
std::vector<std::string> split_lines(const std::string& content);

// Blank out comments, string literals, and char literals in-place across
// lines, preserving column positions so findings point at real code. The
// suppression scanner runs on the raw lines *before* this pass.
std::vector<std::string> scrub(const std::vector<std::string>& raw);

// Which rules line N suppresses (via its own or the previous raw line).
struct Suppressions {
  std::vector<std::vector<std::string>> per_line;  // rule ids; "all" wildcard

  bool allows(std::size_t line_idx, const std::string& rule) const;
};

Suppressions parse_suppressions(const std::vector<std::string>& raw);

// Find identifier `word` in `line` at word boundaries; returns npos or index.
std::size_t find_word(const std::string& line, const std::string& word,
                      std::size_t from = 0);

std::string json_escape(const std::string& s);

// Per-line preprocessor-conditional nesting depth over the raw lines: 0 =
// unconditional code, >0 = inside `#if`/`#ifdef`/`#ifndef` ... `#endif`.
// The opening directive line itself already counts as conditional (the
// guarded region starts there); `#else`/`#elif` keep the depth. Unbalanced
// `#endif` clamps at 0 rather than going negative.
std::vector<int> conditional_depth(const std::vector<std::string>& raw);

}  // namespace dtnsim::lint::detail
