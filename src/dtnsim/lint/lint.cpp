#include "dtnsim/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "dtnsim/lint/internal.hpp"

namespace dtnsim::lint {

// The lexical helpers live in detail:: so the project-wide pass
// (project.cpp) shares one scrubber/suppression/word-search implementation
// with the per-file rules.
namespace detail {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Split into lines, keeping empty trailing lines irrelevant for linting.
std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// Blank out comments, string literals, and char literals in-place across
// lines, preserving column positions so findings point at real code. The
// suppression scanner runs on the raw lines *before* this pass.
std::vector<std::string> scrub(const std::vector<std::string>& raw) {
  std::vector<std::string> out = raw;
  bool in_block_comment = false;
  for (auto& line : out) {
    bool in_string = false, in_char = false;
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          line[i] = line[i + 1] = ' ';
          ++i;
          in_block_comment = false;
        } else {
          line[i] = ' ';
        }
      } else if (in_string) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          line[i] = line[i + 1] = ' ';
          ++i;
        } else if (line[i] == '"') {
          in_string = false;
        } else {
          line[i] = ' ';
        }
      } else if (in_char) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          line[i] = line[i + 1] = ' ';
          ++i;
        } else if (line[i] == '\'') {
          in_char = false;
        } else {
          line[i] = ' ';
        }
      } else if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        for (size_t j = i; j < line.size(); ++j) line[j] = ' ';
        break;
      } else if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        line[i] = line[i + 1] = ' ';
        ++i;
        in_block_comment = true;
      } else if (line[i] == '"') {
        in_string = true;
      } else if (line[i] == '\'' && i > 0 && !is_ident_char(line[i - 1])) {
        // `'x'` char literal, but not a digit separator as in 1'000'000.
        in_char = true;
      }
    }
    // Unterminated string/char at EOL: treat as closed (raw strings and
    // line-spliced literals are absent from this codebase).
  }
  return out;
}

bool Suppressions::allows(std::size_t line_idx, const std::string& rule) const {
  auto hit = [&](std::size_t i) {
    if (i >= per_line.size()) return false;
    for (const auto& r : per_line[i]) {
      if (r == "all" || r == rule) return true;
    }
    return false;
  };
  return hit(line_idx) || (line_idx > 0 && hit(line_idx - 1));
}

Suppressions parse_suppressions(const std::vector<std::string>& raw) {
  Suppressions sup;
  sup.per_line.resize(raw.size());
  const std::string marker = "dtnsim-lint: allow(";
  for (size_t i = 0; i < raw.size(); ++i) {
    const auto pos = raw[i].find(marker);
    if (pos == std::string::npos) continue;
    const auto start = pos + marker.size();
    const auto end = raw[i].find(')', start);
    if (end == std::string::npos) continue;
    std::string inside = raw[i].substr(start, end - start);
    std::string tok;
    std::istringstream iss(inside);
    while (std::getline(iss, tok, ',')) {
      const auto b = tok.find_first_not_of(" \t");
      const auto e = tok.find_last_not_of(" \t");
      if (b != std::string::npos) sup.per_line[i].push_back(tok.substr(b, e - b + 1));
    }
  }
  return sup;
}

// Find identifier `word` in `line` at word boundaries; returns npos or index.
size_t find_word(const std::string& line, const std::string& word, size_t from) {
  size_t pos = from;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const size_t after = pos + word.size();
    const bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) return pos;
    pos = after;
  }
  return std::string::npos;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<int> conditional_depth(const std::vector<std::string>& raw) {
  std::vector<int> depth(raw.size(), 0);
  int d = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const auto& line = raw[i];
    const auto hash = line.find_first_not_of(" \t");
    bool opens = false, closes = false;
    if (hash != std::string::npos && line[hash] == '#') {
      auto word = line.find_first_not_of(" \t", hash + 1);
      if (word != std::string::npos) {
        auto end = word;
        while (end < line.size() && is_ident_char(line[end])) ++end;
        const std::string directive = line.substr(word, end - word);
        opens = directive == "if" || directive == "ifdef" || directive == "ifndef";
        closes = directive == "endif";
      }
    }
    if (opens) ++d;
    if (closes) d = std::max(d - 1, 0);
    // The `#if` line itself is conditional territory; the `#endif` line is
    // still inside the region it closes.
    depth[i] = closes ? d + 1 : d;
    if (opens) depth[i] = d;
  }
  return depth;
}

}  // namespace detail

// The rule implementations and renderers below predate the detail split;
// keep their bodies reading as before.
using namespace detail;

namespace {

// ---- rule: determinism -------------------------------------------------

// Tokens that reach for wall clocks or nondeterministic entropy. `rand`,
// `time` & co. are matched as whole identifiers followed by `(` or `::`
// context, so SimTime / paced_traffic / grand_total never trip it.
const char* const kDeterminismTokens[] = {
    "random_device", "steady_clock",  "system_clock", "high_resolution_clock",
    "srand",         "drand48",       "gettimeofday", "clock_gettime",
    "localtime",     "gmtime",
};
const char* const kDeterminismCallTokens[] = {"rand", "time"};  // need '(' after

void check_determinism(const std::vector<std::string>& code, const Suppressions& sup,
                       const std::string& path, std::vector<Finding>& out) {
  for (size_t i = 0; i < code.size(); ++i) {
    const auto& line = code[i];
    for (const char* tok : kDeterminismTokens) {
      if (find_word(line, tok) != std::string::npos && !sup.allows(i, "determinism")) {
        out.push_back({"determinism", path, static_cast<int>(i + 1),
                       std::string("nondeterministic source '") + tok +
                           "' in simulation/library code; use util::Rng or "
                           "the event engine's virtual clock"});
        break;
      }
    }
    for (const char* tok : kDeterminismCallTokens) {
      size_t pos = find_word(line, tok);
      while (pos != std::string::npos) {
        size_t after = pos + std::string(tok).size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(' &&
            !sup.allows(i, "determinism")) {
          out.push_back({"determinism", path, static_cast<int>(i + 1),
                         std::string("call to '") + tok +
                             "()' in simulation/library code; wall-clock and "
                             "libc randomness are banned"});
          break;
        }
        pos = find_word(line, tok, after);
      }
    }
  }
}

// ---- rule: raw-unit-double ---------------------------------------------

// Scaled-unit names that must ride in dtnsim::units strong types when they
// cross a public header boundary. Bare `bps` and `*_sec` tick-level doubles
// are the repo's documented fluid-math convention and stay legal.
const char* const kBannedUnitSuffixes[] = {"gbps", "mbps",   "kbps",   "seconds",
                                           "secs", "millis", "micros", "nanos"};

bool is_banned_unit_name(const std::string& name) {
  for (const char* suffix : kBannedUnitSuffixes) {
    if (name == suffix) return true;
    if (ends_with(name, std::string("_") + suffix)) return true;
  }
  return false;
}

void check_raw_unit_double(const std::vector<std::string>& code,
                           const Suppressions& sup, const std::string& path,
                           std::vector<Finding>& out) {
  int depth = 0;  // paren depth carries across lines for multi-line signatures
  for (size_t i = 0; i < code.size(); ++i) {
    const auto& line = code[i];
    for (size_t j = 0; j < line.size(); ++j) {
      if (line[j] == '(') ++depth;
      if (line[j] == ')') depth = std::max(depth - 1, 0);
      // Match `double <name>` with <name> a banned scaled-unit identifier.
      if (line.compare(j, 6, "double") == 0 &&
          (j == 0 || !is_ident_char(line[j - 1])) &&
          (j + 6 >= line.size() || !is_ident_char(line[j + 6]))) {
        size_t k = j + 6;
        while (k < line.size() && std::isspace(static_cast<unsigned char>(line[k]))) ++k;
        size_t name_end = k;
        while (name_end < line.size() && is_ident_char(line[name_end])) ++name_end;
        const std::string name = line.substr(k, name_end - k);
        if (name.empty() || !is_banned_unit_name(name)) continue;
        if (depth >= 1) {
          // Inside a parameter list.
          if (!sup.allows(i, "raw-unit-double")) {
            out.push_back({"raw-unit-double", path, static_cast<int>(i + 1),
                           "parameter 'double " + name +
                               "' carries a scaled unit as a raw double; take "
                               "a dtnsim::units strong type (Rate, SimTime, "
                               "...) instead"});
          }
        } else {
          // At depth 0 the same shape followed by `(` is a function
          // declaration: `double avg_gbps(...)` returns a scaled unit as a
          // raw double. Member/local declarations (`double avg_gbps = ...;`)
          // carry no paren and stay legal.
          size_t after = name_end;
          while (after < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[after])))
            ++after;
          if (after < line.size() && line[after] == '(' &&
              !sup.allows(i, "raw-unit-double")) {
            out.push_back({"raw-unit-double", path, static_cast<int>(i + 1),
                           "function 'double " + name +
                               "(...)' returns a scaled unit as a raw double; "
                               "return a dtnsim::units strong type (Rate, "
                               "SimTime, ...) instead"});
          }
        }
      }
    }
  }
}

// ---- rule: include-hygiene ---------------------------------------------

void check_include_hygiene(const std::vector<std::string>& raw, FileKind kind,
                           const Suppressions& sup, const std::string& path,
                           std::vector<Finding>& out) {
  const bool library = kind == FileKind::LibraryHeader ||
                       kind == FileKind::LibrarySource ||
                       kind == FileKind::UnitsLibrary;
  for (size_t i = 0; i < raw.size(); ++i) {
    const auto& line = raw[i];
    const auto hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    if (line.find("include", hash) == std::string::npos) continue;
    if (kind != FileKind::Bench &&
        (line.find("\"bench/") != std::string::npos ||
         line.find("/bench/") != std::string::npos ||
         line.find("\"bench_common") != std::string::npos)) {
      if (!sup.allows(i, "include-hygiene")) {
        out.push_back({"include-hygiene", path, static_cast<int>(i + 1),
                       "bench/ headers are bench-only; library, test, and "
                       "tool code must not include them"});
      }
    }
    if (library && line.find("<iostream>") != std::string::npos) {
      if (!sup.allows(i, "include-hygiene")) {
        out.push_back({"include-hygiene", path, static_cast<int>(i + 1),
                       "<iostream> in library code; use util/log or printf "
                       "at the tool boundary"});
      }
    }
  }
}

// ---- rule: mutex-guard -------------------------------------------------

void check_mutex_guard(const std::vector<std::string>& code, const Suppressions& sup,
                       const std::string& path, std::vector<Finding>& out) {
  const char* const kBare[] = {".lock()", ".unlock()", ".try_lock()"};
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* tok : kBare) {
      if (code[i].find(tok) != std::string::npos && !sup.allows(i, "mutex-guard")) {
        out.push_back({"mutex-guard", path, static_cast<int>(i + 1),
                       std::string("bare '") + tok +
                           "' in sweep/ concurrency code; take locks via "
                           "std::lock_guard / std::unique_lock RAII guards"});
        break;
      }
    }
  }
}

}  // namespace

FileKind classify(const std::string& path) {
  const auto parts = split_path(path);
  if (parts.empty()) return FileKind::Other;
  const std::string& file = parts.back();
  const bool header = ends_with(file, ".hpp") || ends_with(file, ".h");

  // Walk from the end so fixture trees embedding src/... classify as the
  // code they imitate (tests/lint_fixtures/src/dtnsim/... -> library).
  for (size_t i = parts.size(); i-- > 0;) {
    const std::string& dir = parts[i];
    if (dir == file) continue;
    if (dir == "src") {
      for (size_t j = i + 1; j + 1 < parts.size(); ++j) {
        if (parts[j] == "units") return FileKind::UnitsLibrary;
      }
      return header ? FileKind::LibraryHeader : FileKind::LibrarySource;
    }
    if (dir == "bench") return FileKind::Bench;
    if (dir == "tests") return FileKind::Test;
    if (dir == "tools") return FileKind::Tool;
    if (dir == "examples") return FileKind::Example;
  }
  return FileKind::Other;
}

std::vector<Finding> lint_file(const std::string& path, const std::string& content) {
  std::vector<Finding> out;
  const FileKind kind = classify(path);
  if (kind == FileKind::Other) return out;

  const auto raw = split_lines(content);
  const auto sup = parse_suppressions(raw);
  const auto code = scrub(raw);

  const bool library = kind == FileKind::LibraryHeader ||
                       kind == FileKind::LibrarySource ||
                       kind == FileKind::UnitsLibrary;

  if (library) check_determinism(code, sup, path, out);
  if (kind == FileKind::LibraryHeader) check_raw_unit_double(code, sup, path, out);
  check_include_hygiene(raw, kind, sup, path, out);
  if (library) {
    const auto parts = split_path(path);
    if (std::find(parts.begin(), parts.end(), "sweep") != parts.end()) {
      check_mutex_guard(code, sup, path, out);
    }
  }
  return out;
}

std::string to_human(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "{\"count\":" + std::to_string(findings.size()) +
                    ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i) out += ",";
    out += "{\"rule\":\"" + json_escape(f.rule) + "\",\"path\":\"" +
           json_escape(f.path) + "\",\"line\":" + std::to_string(f.line) +
           ",\"message\":\"" + json_escape(f.message) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace dtnsim::lint
