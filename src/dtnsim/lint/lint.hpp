// dtnsim-lint: an in-tree, dependency-free static analyzer for the repo's
// own conventions. It is deliberately token-level — no AST — because every
// rule it enforces is lexically visible:
//
//   determinism      simulation/library code must not reach for wall clocks
//                    or nondeterministic randomness (std::random_device,
//                    rand, steady_clock, ...). Reproducible runs are the
//                    whole point of the simulator.
//   raw-unit-double  public library headers must not take scaled-unit
//                    doubles (gbps, seconds, millis, ...) as parameters —
//                    that is what dtnsim::units strong types are for. Raw
//                    `bps`/`dt_sec` tick-level conventions stay legal.
//   include-hygiene  bench/ headers never leak into src/ or tests/, and
//                    library code does not include <iostream> (the repo
//                    logs via util/log and printf).
//   mutex-guard      code under sweep/ takes locks only through RAII
//                    guards; bare .lock()/.unlock()/.try_lock() calls on a
//                    mutex are flagged.
//
// Findings can be silenced with a trailing or preceding comment:
//   // dtnsim-lint: allow(<rule>[, <rule>...])   or   allow(all)
#pragma once

#include <string>
#include <vector>

namespace dtnsim::lint {

// How a path participates in the rule set. Classification keys off the
// *last* recognizable directory component so fixture trees that embed a
// fake src/ layout (tests/lint_fixtures/src/...) classify like the code
// they imitate.
enum class FileKind {
  LibraryHeader,  // src/**/*.hpp — all rules incl. raw-unit-double
  LibrarySource,  // src/**/*.cpp — determinism + hygiene (+ mutex in sweep/)
  UnitsLibrary,   // src/dtnsim/units/** — exempt from raw-unit-double
  Bench,          // bench/** — may use wall clocks, may include bench/
  Test,           // tests/**
  Tool,           // tools/**
  Example,        // examples/**
  Other,
};

struct Finding {
  std::string rule;     // stable rule id, e.g. "determinism"
  std::string path;     // as given to lint_file
  int line = 0;         // 1-based
  std::string message;  // human explanation
};

FileKind classify(const std::string& path);

// Lint one file's contents. `path` drives classification and is echoed in
// findings; it does not need to exist on disk.
std::vector<Finding> lint_file(const std::string& path, const std::string& content);

// Renderers. Human output is one "path:line: [rule] message" per line;
// JSON is {"count":N,"findings":[...]} with escaped strings.
std::string to_human(const std::vector<Finding>& findings);
std::string to_json(const std::vector<Finding>& findings);

}  // namespace dtnsim::lint
