// dtnsim-lint v2: project-wide cross-file analysis.
//
// The per-file rules in lint.hpp catch hazards visible in one translation
// unit. The invariants that actually rot this repo live *between* files:
//
//   enum-switch    every `switch` over an indexed `enum class` must handle
//                  every enumerator or carry a `default:`. Adding a 16th
//                  scenario::EventKind (or 17th obs::PerfStage) must break
//                  the lint, not silently skip an engine hook.
//   metric-parity  the fluid engine (flow/transfer.cpp) and the packet
//                  engine (flow/packet_sim.cpp) publish the same dual-engine
//                  metric families: a `flow.X` registered without a `pkt.X`
//                  counterpart (or vice versa), or a `scenario.*` metric
//                  present in only one engine, is drift — modulo the
//                  explained allowlist below. Registered library metrics
//                  must also appear in docs/OBSERVABILITY.md.
//   json-parity    every hand-written Json round-trip pair (`to_json` /
//                  `*_from_json` over the same struct) must agree on its
//                  literal key set: a key emitted but never parsed (or
//                  parsed but never emitted) silently corrupts replay.
//
// The analysis is two-pass: pass 1 indexes every file (enum definitions,
// switch statements with case labels, metric-name literals at
// counter(/gauge(/histogram( registration sites tagged by engine, Json key
// literals partitioned into emit/parse sides per struct, and a per-file
// preprocessor-conditional map); pass 2 runs the cross-file rules over the
// merged ProjectIndex. Anything under `#if`/`#ifdef` is exempt — a guarded
// switch case or registration site cannot be judged from one configuration.
//
// Suppression: the usual `// dtnsim-lint: allow(<rule>)` on (or above) the
// switch line / registration line / either function-definition line of a
// json pair. For whole-tree adoption there is additionally a baseline file
// (one `rule|path|message` triple per line, line numbers deliberately
// excluded) that masks known findings; see parse_baseline/apply_baseline.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "dtnsim/lint/lint.hpp"

namespace dtnsim::lint {

// One file handed to the project pass. `content` is the full text; `path`
// drives classification and finding locations, as in lint_file.
struct FileContent {
  std::string path;
  std::string content;
};

// ---- pass 1: the index ----------------------------------------------------

struct EnumDef {
  std::string name;  // unqualified, e.g. "EventKind"
  std::string path;
  int line = 0;
  std::vector<std::string> enumerators;  // declaration order, values stripped
};

struct SwitchStmt {
  std::string path;
  int line = 0;              // the `switch` keyword's line
  std::string enum_name;     // from `case Foo::Bar:` labels; "" when no
                             // qualified labels (char/int switches)
  std::set<std::string> cases;  // enumerator names (last `::` component)
  bool has_default = false;
  bool conditional = false;  // any part under #if/#ifdef
  bool suppressed = false;   // allow(enum-switch) at the switch line
};

struct MetricSite {
  std::string path;
  int line = 0;
  std::string kind;    // "counter" | "gauge" | "histogram"
  std::string name;    // first string-literal argument (the family name)
  std::string engine;  // "fluid" (transfer.cpp) | "packet" (packet_sim.cpp)
                       // | "" for shared/other registration sites
  bool library = false;      // site lives in library code (src/**)
  bool conditional = false;
  bool suppressed = false;   // allow(metric-parity) at the call line
};

struct JsonFn {
  std::string struct_name;  // normalized pair key, e.g. "Timeline",
                            // "TestResult", "vector<SsReport>"
  std::string fn_name;
  std::string path;
  int line = 0;   // definition line
  bool emit = false;  // to_json side vs *_from_json side
  std::set<std::string> keys;  // literal keys only; computed keys are
                               // invisible to both sides and cancel out
  bool library = false;
  bool conditional = false;
  bool suppressed = false;  // allow(json-parity) at the definition line
};

struct FileIndex {
  std::string path;
  FileKind kind = FileKind::Other;
  std::vector<EnumDef> enums;
  std::vector<SwitchStmt> switches;
  std::vector<MetricSite> metrics;
  std::vector<JsonFn> json_fns;
};

// Index one file. Pure: `path` does not need to exist on disk.
FileIndex index_file(const std::string& path, const std::string& content);

struct ProjectIndex {
  std::vector<FileIndex> files;  // input order
  // docs/OBSERVABILITY.md text for the metric-docs check; empty disables it.
  std::string doc_text;
};

ProjectIndex build_index(const std::vector<FileContent>& files,
                         std::string doc_text = "");

// ---- pass 2: the cross-file rules -----------------------------------------

// Runs enum-switch, metric-parity, and json-parity over the merged index.
// Findings are ordered by rule, then by the file order of the index.
std::vector<Finding> run_project_rules(const ProjectIndex& index);

// The explained metric-parity allowlist: deliberately engine-asymmetric
// families, each with the one-line reason rendered by `dtnsim-lint
// --explain-allowlist`. Returns the reason, or nullptr when `name` is not
// allowlisted.
const char* metric_parity_allowance(const std::string& name);
std::string format_metric_allowlist();

// ---- baseline (incremental adoption) --------------------------------------

// Baseline key: "rule|path|message". Line numbers are deliberately omitted
// so unrelated edits above a known finding do not invalidate the entry.
std::string baseline_key(const Finding& f);
// One key per line; blank lines and '#' comments ignored.
std::set<std::string> parse_baseline(const std::string& text);
std::string to_baseline(const std::vector<Finding>& findings);
// Drops findings whose key appears in the baseline, preserving order.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::set<std::string>& baseline);

// ---- parallel driver -------------------------------------------------------

struct ProjectOptions {
  int jobs = 1;              // resolved via sweep::resolve_jobs
  bool project_rules = true; // run the cross-file pass after per-file rules
  std::string doc_text;      // for the metric-docs check
  std::set<std::string> baseline;
};

// Lint every file — per-file rules and index construction run on a
// sweep::WorkerPool, results written by index so `jobs = N` output is
// byte-identical to serial — then run the cross-file pass and apply the
// baseline. Findings: per-file findings in input order, then project rules.
std::vector<Finding> lint_project(const std::vector<FileContent>& files,
                                  const ProjectOptions& opts);

}  // namespace dtnsim::lint
