// Unit tests: discrete-event engine and event queue.
#include <gtest/gtest.h>

#include <vector>

#include "dtnsim/sim/engine.hpp"

namespace dtnsim::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  Nanos t = 0;
  while (auto fn = q.pop(&t)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(100, [&order, i] { order.push_back(i); });
  Nanos t = 0;
  while (auto fn = q.pop(&t)) fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  auto h = q.push(10, [&] { fired = true; });
  h.cancel();
  EXPECT_TRUE(q.empty());
  Nanos t = 0;
  EXPECT_FALSE(q.pop(&t));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOnlyAffectsTarget) {
  EventQueue q;
  int fired = 0;
  q.push(10, [&] { ++fired; });
  auto h = q.push(20, [&] { fired += 100; });
  q.push(30, [&] { ++fired; });
  h.cancel();
  Nanos t = 0;
  while (auto fn = q.pop(&t)) fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  h1.cancel();
  EXPECT_TRUE(!q.empty());
  Nanos t = 0;
  q.pop(&t);
  EXPECT_EQ(t, 2);
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine e;
  Nanos seen = -1;
  e.schedule(1000, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 1000);
  EXPECT_EQ(e.events_executed(), 1u);
}

TEST(Engine, ScheduleAtAbsoluteTime) {
  Engine e;
  std::vector<Nanos> times;
  e.schedule_at(500, [&] { times.push_back(e.now()); });
  e.schedule_at(100, [&] { times.push_back(e.now()); });
  e.run();
  EXPECT_EQ(times, (std::vector<Nanos>{100, 500}));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine e;
  e.schedule(100, [&] {
    e.schedule(-50, [&] { EXPECT_EQ(e.now(), 100); });
  });
  e.run();
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule(10, [&] { ++fired; });
  e.schedule(20, [&] { ++fired; });
  e.schedule(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenIdle) {
  Engine e;
  e.run_until(5000);
  EXPECT_EQ(e.now(), 5000);
}

TEST(Engine, SelfReschedulingChain) {
  Engine e;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) e.schedule(100, tick);
  };
  e.schedule(100, tick);
  e.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, StepExecutesBoundedCount) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 5; ++i) e.schedule(i + 1, [&] { ++fired; });
  EXPECT_EQ(e.step(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.step(10), 2u);
}

TEST(Engine, EventsScheduledInsideCallbacksRun) {
  Engine e;
  bool inner = false;
  e.schedule(10, [&] { e.schedule(10, [&] { inner = true; }); });
  e.run();
  EXPECT_TRUE(inner);
  EXPECT_EQ(e.now(), 20);
}

}  // namespace
}  // namespace dtnsim::sim
