// Unit tests: iperf3 tool model (option resolution, versions, JSON output).
#include <gtest/gtest.h>

#include "dtnsim/app/iperf.hpp"
#include "dtnsim/app/mpstat.hpp"
#include "dtnsim/harness/testbeds.hpp"

namespace dtnsim::app {
namespace {

TEST(IperfOptions, PatchedVersionPassesEverythingThrough) {
  IperfOptions o;
  o.zerocopy = true;
  o.skip_rx_copy = true;
  o.fq_rate_bps = 50e9;
  const auto eff = resolve_options(o, IperfVersion::patched_3_17());
  EXPECT_TRUE(eff.zerocopy);
  EXPECT_TRUE(eff.skip_rx_copy);
  EXPECT_DOUBLE_EQ(eff.fq_rate_bps, 50e9);
  EXPECT_TRUE(eff.warnings.empty());
}

TEST(IperfOptions, StockToolDropsPatchFlags) {
  IperfOptions o;
  o.zerocopy = true;
  o.skip_rx_copy = true;
  const auto eff = resolve_options(o, IperfVersion::stock_3_16());
  EXPECT_FALSE(eff.zerocopy);
  EXPECT_FALSE(eff.skip_rx_copy);
  EXPECT_NE(eff.warnings.find("1690"), std::string::npos);
}

TEST(IperfOptions, FqRateClampedWithoutPatch1728) {
  // Paper §V-A: "pacing single flows above 32 Gbps ... requires a recent
  // patch to iperf3".
  IperfOptions o;
  o.fq_rate_bps = 50e9;
  const auto eff = resolve_options(o, IperfVersion::stock_3_16());
  EXPECT_DOUBLE_EQ(eff.fq_rate_bps, 32e9);
  EXPECT_NE(eff.warnings.find("1728"), std::string::npos);
  // At or below 32G no clamp applies.
  o.fq_rate_bps = 30e9;
  EXPECT_DOUBLE_EQ(resolve_options(o, IperfVersion::stock_3_16()).fq_rate_bps, 30e9);
}

TEST(IperfOptions, MultithreadedSince316) {
  EXPECT_TRUE(IperfVersion::stock_3_16().multithreaded());
  EXPECT_FALSE((IperfVersion{3, 15, false, false}).multithreaded());
}

TEST(IperfTool, RunProducesReport) {
  const auto tb = harness::esnet();
  IperfOptions o;
  o.duration_sec = 5;
  o.fq_rate_bps = 20e9;
  const auto rep = IperfTool().run(tb.sender, tb.receiver, tb.lan(), o);
  EXPECT_NEAR(rep.sum_received_gbps, 20.0, 1.5);
  EXPECT_EQ(rep.per_stream_gbps.size(), 1u);
  EXPECT_EQ(rep.interval_gbps.size(), 5u);
  EXPECT_FALSE(rep.summary_line().empty());
}

TEST(IperfTool, ParallelStreamsReported) {
  const auto tb = harness::esnet();
  IperfOptions o;
  o.duration_sec = 5;
  o.parallel = 4;
  o.fq_rate_bps = 10e9;
  const auto rep = IperfTool().run(tb.sender, tb.receiver, tb.lan(), o);
  EXPECT_EQ(rep.per_stream_gbps.size(), 4u);
  EXPECT_NEAR(rep.sum_received_gbps, 40.0, 3.0);
}

TEST(IperfTool, JsonHasIperfShape) {
  const auto tb = harness::esnet();
  IperfOptions o;
  o.duration_sec = 3;
  o.json = true;
  const auto rep = IperfTool().run(tb.sender, tb.receiver, tb.lan(), o);
  const Json j = rep.to_json(o);
  ASSERT_NE(j.find("start"), nullptr);
  ASSERT_NE(j.find("intervals"), nullptr);
  ASSERT_NE(j.find("end"), nullptr);
  EXPECT_EQ(j.find("intervals")->size(), 3u);
  const std::string text = j.dump(2);
  EXPECT_NE(text.find("bits_per_second"), std::string::npos);
  EXPECT_NE(text.find("retransmits"), std::string::npos);
  EXPECT_NE(text.find("cpu_utilization_percent"), std::string::npos);
}

TEST(Mpstat, ReportFromUtilization) {
  flow::CpuUtilization cpu;
  cpu.app_util = 0.96;
  cpu.irq_util = 0.05;
  cpu.cores_pct = 136.0;
  const auto r = mpstat_from(cpu, 8);
  EXPECT_NEAR(r.app_core_pct, 96.0, 1e-9);
  EXPECT_NEAR(r.irq_cores_pct, 40.0, 1e-9);
  EXPECT_NEAR(r.combined_pct, 136.0, 1e-9);
  EXPECT_NE(r.to_string("rcv").find("rcv"), std::string::npos);
}

}  // namespace
}  // namespace dtnsim::app
