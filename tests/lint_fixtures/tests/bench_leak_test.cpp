// Fixture: include-hygiene violation — a test including a bench/ header.
#include "bench/bench_common.hpp"

int main() { return 0; }
