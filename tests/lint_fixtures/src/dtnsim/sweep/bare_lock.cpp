// Fixture: mutex-guard violation — bare lock()/unlock() in sweep/ code.
#include <mutex>

namespace dtnsim::sweep_fake {

std::mutex mu;
int counter = 0;

void bump() {
  mu.lock();
  ++counter;
  mu.unlock();
}

}  // namespace dtnsim::sweep_fake
