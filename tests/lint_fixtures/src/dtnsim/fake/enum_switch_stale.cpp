// Violation: enum-switch (stale case) — this switch over fake::Color
// (colors.hpp) names Color::kYellow, an enumerator the definition no longer
// carries. The `default:` covers the missing-enumerator rule, so the stale
// label is the only finding this file should trip.
#include "dtnsim/fake/colors.hpp"

namespace dtnsim::fake {

int warmth(Color c) {
  switch (c) {
    case Color::kRed:
      return 2;
    case Color::kYellow:
      return 1;
    default:
      return 0;
  }
}

}  // namespace dtnsim::fake
