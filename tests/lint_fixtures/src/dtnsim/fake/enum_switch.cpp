// Violation: enum-switch — this switch over fake::Color (colors.hpp)
// handles kRed and kGreen but not kBlue, and has no default.
#include "dtnsim/fake/colors.hpp"

namespace dtnsim::fake {

int brightness(Color c) {
  switch (c) {
    case Color::kRed:
      return 30;
    case Color::kGreen:
      return 59;
  }
  return 0;
}

}  // namespace dtnsim::fake
