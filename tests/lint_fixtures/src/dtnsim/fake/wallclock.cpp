// Fixture: determinism violations in library code (steady_clock, rand()).
#include <chrono>
#include <cstdlib>

namespace dtnsim::fake {

double jitter_seed() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<double>(t % 1000) + static_cast<double>(rand() % 7);
}

}  // namespace dtnsim::fake
