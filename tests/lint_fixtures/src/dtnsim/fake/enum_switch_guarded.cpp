// NOT a violation: the same incomplete switch as enum_switch.cpp, but the
// whole statement sits under an #ifdef — the project rules are
// preprocessor-aware and must stay silent here (CI asserts no finding
// mentions this file).
#include "dtnsim/fake/colors.hpp"

namespace dtnsim::fake {

int guarded_brightness(Color c) {
#ifdef DTNSIM_FIXTURE_EXOTIC_COLORS
  switch (c) {
    case Color::kRed:
      return 30;
    case Color::kGreen:
      return 59;
  }
#endif
  (void)c;
  return 0;
}

}  // namespace dtnsim::fake
