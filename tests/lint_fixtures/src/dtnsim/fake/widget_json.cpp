// Violation: json-parity — to_json emits {"id", "size", "color"} but
// widget_from_json only reads {"id", "size"}: the "color" key is written
// on every save and silently dropped on every load.
#include "dtnsim/util/json.hpp"

namespace dtnsim::fake {

struct Widget {
  int id = 0;
  int size = 0;
  int color = 0;
};

Json to_json(const Widget& w) {
  Json j = Json::object();
  j["id"] = static_cast<double>(w.id);
  j["size"] = static_cast<double>(w.size);
  j["color"] = static_cast<double>(w.color);
  return j;
}

bool widget_from_json(const Json& j, Widget* out) {
  if (!j.is_object()) return false;
  Widget w;
  w.id = static_cast<int>(j.number_at("id", 0.0));
  w.size = static_cast<int>(j.number_at("size", 0.0));
  *out = w;
  return true;
}

}  // namespace dtnsim::fake
