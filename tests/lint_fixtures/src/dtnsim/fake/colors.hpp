// Fixture enum for the enum-switch rule: defined here, switched over in
// enum_switch.cpp / enum_switch_guarded.cpp (cross-file on purpose).
// Clean by itself.
#pragma once

namespace dtnsim::fake {

enum class Color : int {
  kRed = 0,
  kGreen,
  kBlue,  // deliberately unhandled in enum_switch.cpp
};

}  // namespace dtnsim::fake
