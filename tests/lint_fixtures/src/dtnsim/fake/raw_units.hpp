// Fixture: raw-unit-double (scaled-unit double params in a public header)
// and include-hygiene (<iostream> in library code).
#pragma once

#include <iostream>

namespace dtnsim::fake {

// Both parameters should ride in units::Rate / units::SimTime.
double transfer_score(double pacing_gbps, double duration_seconds);

// The return type should ride in units::SimTime.
double elapsed_seconds();

// Legal by convention: tick-level dt_sec and raw bits-per-second.
double tick_step(double dt_sec, double rate_bps);

}  // namespace dtnsim::fake
