// Violation: metric-parity — the basename "transfer.cpp" marks this file
// as the fluid engine. It registers flow.fixture_alpha_bytes (which
// packet_sim.cpp mirrors as pkt.fixture_alpha_bytes — clean) and
// flow.fixture_beta_bps (no packet counterpart, not allowlisted — flagged).
#include "dtnsim/obs/metrics.hpp"

namespace dtnsim::fake {

void register_fluid_fixture_metrics(obs::Registry& reg) {
  reg.counter("flow.fixture_alpha_bytes", "bytes", "mirrored in both engines");
  reg.gauge("flow.fixture_beta_bps", "bps", "fluid-only: parity drift");
}

}  // namespace dtnsim::fake
