// Companion to the fixture transfer.cpp: the basename "packet_sim.cpp"
// marks this as the packet engine. It mirrors fixture_alpha_bytes but
// (deliberately) not fixture_beta_bps, so the drift is flagged at the
// fluid registration site. Clean by itself.
#include "dtnsim/obs/metrics.hpp"

namespace dtnsim::fake {

void register_packet_fixture_metrics(obs::Registry& reg) {
  reg.counter("pkt.fixture_alpha_bytes", "bytes", "mirrored in both engines");
}

}  // namespace dtnsim::fake
