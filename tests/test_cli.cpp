// Unit tests: the command-line front end (rate parsing, flag handling,
// spec construction, end-to-end run).
#include <gtest/gtest.h>

#include "dtnsim/cli/cli.hpp"

namespace dtnsim::cli {
namespace {

TEST(ParseRate, SuffixesAndPlainNumbers) {
  EXPECT_DOUBLE_EQ(*parse_rate("50G"), 50e9);
  EXPECT_DOUBLE_EQ(*parse_rate("50g"), 50e9);
  EXPECT_DOUBLE_EQ(*parse_rate("1.5M"), 1.5e6);
  EXPECT_DOUBLE_EQ(*parse_rate("300k"), 300e3);
  EXPECT_DOUBLE_EQ(*parse_rate("1048576"), 1048576.0);
  EXPECT_DOUBLE_EQ(*parse_rate("0"), 0.0);
}

TEST(ParseRate, RejectsGarbage) {
  EXPECT_FALSE(parse_rate("").has_value());
  EXPECT_FALSE(parse_rate("fast").has_value());
  EXPECT_FALSE(parse_rate("50X").has_value());
  EXPECT_FALSE(parse_rate("50GG").has_value());
  EXPECT_FALSE(parse_rate("-5G").has_value());
}

TEST(ParseKernel, KnownVersions) {
  EXPECT_EQ(*parse_kernel("5.15"), kern::KernelVersion::V5_15);
  EXPECT_EQ(*parse_kernel("6.8"), kern::KernelVersion::V6_8);
  EXPECT_FALSE(parse_kernel("4.19").has_value());
}

TEST(ParseCongestion, Algorithms) {
  EXPECT_EQ(*parse_congestion("cubic"), kern::CongestionAlgo::Cubic);
  EXPECT_EQ(*parse_congestion("bbr"), kern::CongestionAlgo::BbrV1);
  EXPECT_EQ(*parse_congestion("bbr3"), kern::CongestionAlgo::BbrV3);
  EXPECT_FALSE(parse_congestion("vegas").has_value());
}

TEST(ParseCli, FullCommandLine) {
  const auto o = parse_cli({"--testbed", "amlight", "--path", "WAN 104ms", "-P", "8",
                            "-t", "30", "-Z", "--skip-rx-copy", "--fq-rate", "50G",
                            "--kernel", "6.5", "--optmem", "1M", "--big-tcp",
                            "--ring", "8192", "--repeats", "5", "--seed", "99",
                            "-C", "bbr3", "-J"});
  ASSERT_TRUE(o.error.empty()) << o.error;
  EXPECT_EQ(o.testbed, "amlight");
  EXPECT_EQ(o.path, "WAN 104ms");
  EXPECT_EQ(o.iperf.parallel, 8);
  EXPECT_DOUBLE_EQ(o.iperf.duration_sec, 30.0);
  EXPECT_TRUE(o.iperf.zerocopy);
  EXPECT_TRUE(o.iperf.skip_rx_copy);
  EXPECT_DOUBLE_EQ(o.iperf.fq_rate_bps, 50e9);
  EXPECT_EQ(o.kernel, kern::KernelVersion::V6_5);
  EXPECT_DOUBLE_EQ(o.optmem_max, 1e6);
  EXPECT_TRUE(o.big_tcp);
  EXPECT_EQ(o.ring, 8192);
  EXPECT_EQ(o.repeats, 5);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_EQ(o.iperf.congestion, kern::CongestionAlgo::BbrV3);
  EXPECT_TRUE(o.iperf.json);
}

TEST(ParseCli, JobsFlag) {
  EXPECT_EQ(parse_cli({}).jobs, 1);  // serial by default
  EXPECT_EQ(parse_cli({"--jobs", "4"}).jobs, 4);
  EXPECT_EQ(parse_cli({"--jobs=8"}).jobs, 8);
  EXPECT_EQ(parse_cli({"--jobs", "0"}).jobs, 0);  // 0 = hardware threads
  EXPECT_FALSE(parse_cli({"--jobs", "-2"}).error.empty());
  EXPECT_FALSE(parse_cli({"--jobs", "four"}).error.empty());
  EXPECT_FALSE(parse_cli({"--jobs", "4x"}).error.empty());
  EXPECT_FALSE(parse_cli({"--jobs"}).error.empty());  // missing value
}

TEST(ParseCli, BigTcpOptionalSize) {
  const auto with_size = parse_cli({"--big-tcp", "256k"});
  EXPECT_TRUE(with_size.big_tcp);
  EXPECT_DOUBLE_EQ(with_size.big_tcp_bytes, 256e3);
  const auto without = parse_cli({"--big-tcp", "-Z"});
  EXPECT_TRUE(without.big_tcp);
  EXPECT_DOUBLE_EQ(without.big_tcp_bytes, 150.0 * 1024.0);
  EXPECT_TRUE(without.iperf.zerocopy);
}

TEST(ParseCli, Errors) {
  EXPECT_FALSE(parse_cli({"--bogus"}).error.empty());
  EXPECT_FALSE(parse_cli({"--fq-rate"}).error.empty());        // missing value
  EXPECT_FALSE(parse_cli({"--fq-rate", "quick"}).error.empty());
  EXPECT_FALSE(parse_cli({"--kernel", "4.4"}).error.empty());
  EXPECT_FALSE(parse_cli({"-P", "0"}).error.empty());
  EXPECT_FALSE(parse_cli({"-t", "-3"}).error.empty());
}

TEST(ParseCli, HelpFlag) {
  EXPECT_TRUE(parse_cli({"--help"}).show_help);
  EXPECT_NE(cli_help().find("--fq-rate"), std::string::npos);
}

TEST(SpecFromCli, BuildsHarnessSpec) {
  auto o = parse_cli({"--testbed", "production", "-P", "8", "--fq-rate", "10G"});
  const auto spec = spec_from_cli(o);
  EXPECT_TRUE(spec.link_flow_control);  // production testbed has 802.3x
  EXPECT_EQ(spec.iperf.parallel, 8);
  EXPECT_NE(spec.name.find("production"), std::string::npos);
}

TEST(SpecFromCli, UnknownTestbedThrows) {
  CliOptions o;
  o.testbed = "fabric";
  EXPECT_THROW(spec_from_cli(o), std::invalid_argument);
}

TEST(RunCli, TextOutput) {
  auto o = parse_cli({"--testbed", "esnet", "-t", "3", "--fq-rate", "10G"});
  std::string out;
  EXPECT_EQ(run_cli(o, out), 0);
  EXPECT_NE(out.find("throughput"), std::string::npos);
  EXPECT_NE(out.find("Gbps"), std::string::npos);
}

TEST(RunCli, JsonOutput) {
  auto o = parse_cli({"--testbed", "esnet", "-t", "3", "-J", "--repeats", "2"});
  std::string out;
  EXPECT_EQ(run_cli(o, out), 0);
  EXPECT_NE(out.find("\"bits_per_second\""), std::string::npos);
  EXPECT_NE(out.find("\"samples_gbps\""), std::string::npos);
}

TEST(RunCli, BadFlagsReturnUsageError) {
  auto o = parse_cli({"--fq-rate", "banana"});
  std::string out;
  EXPECT_EQ(run_cli(o, out), 2);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(RunCli, UnknownPathFails) {
  auto o = parse_cli({"--testbed", "esnet", "--path", "WAN 999ms"});
  std::string out;
  EXPECT_EQ(run_cli(o, out), 2);
}

TEST(RunCli, DeterministicAcrossInvocations) {
  auto o = parse_cli({"--testbed", "esnet", "-t", "3", "--seed", "7"});
  std::string a, b;
  run_cli(o, a);
  run_cli(o, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dtnsim::cli
