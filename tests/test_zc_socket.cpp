// Unit + property tests: MSG_ZEROCOPY optmem accounting (paper Fig. 9).
#include <gtest/gtest.h>

#include "dtnsim/kern/zc_socket.hpp"
#include "dtnsim/util/rng.hpp"

namespace dtnsim::kern {
namespace {

constexpr double kGso = 65536.0;

TEST(ZcSocket, FullZcWhenOptmemAmple) {
  ZcTxSocket s{units::Bytes(1048576.0)};
  const auto plan = s.plan_send(units::Bytes(10 * kGso), units::Bytes(kGso));
  EXPECT_DOUBLE_EQ(plan.zc_bytes, 10 * kGso);
  EXPECT_DOUBLE_EQ(plan.fallback_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.optmem_used(), 10 * kZcChargePerSuperPkt);
}

TEST(ZcSocket, FallbackWhenOptmemExhausted) {
  // Default optmem (20 KiB) covers 128 in-flight super-packets = 8 MiB.
  ZcTxSocket s{units::Bytes(20480.0)};
  const double window = 100e6;  // a WAN window
  const auto plan = s.plan_send(units::Bytes(window), units::Bytes(kGso));
  EXPECT_NEAR(plan.zc_bytes, 20480.0 / kZcChargePerSuperPkt * kGso, 1.0);
  EXPECT_NEAR(plan.fallback_bytes, window - plan.zc_bytes, 1.0);
  EXPECT_NEAR(s.optmem_available(), 0.0, 1e-6);
}

TEST(ZcSocket, AckReleasesChargesFifo) {
  ZcTxSocket s{units::Bytes(1048576.0)};
  s.plan_send(units::Bytes(2 * kGso), units::Bytes(kGso));  // two separate sends -> two chunks
  s.plan_send(units::Bytes(2 * kGso), units::Bytes(kGso));
  const double used = s.optmem_used();
  s.on_acked(units::Bytes(2 * kGso));
  EXPECT_NEAR(s.optmem_used(), used / 2, 1e-6);
  EXPECT_EQ(s.completions(), 1u);  // first chunk fully released
  s.on_acked(units::Bytes(2 * kGso));
  EXPECT_NEAR(s.optmem_used(), 0.0, 1e-6);
  EXPECT_EQ(s.completions(), 2u);
}

TEST(ZcSocket, PartialAckSplitsChunk) {
  ZcTxSocket s{units::Bytes(1048576.0)};
  s.plan_send(units::Bytes(kGso), units::Bytes(kGso));
  s.on_acked(units::Bytes(kGso / 4));
  EXPECT_NEAR(s.inflight_zc_bytes(), kGso * 0.75, 1.0);
  EXPECT_NEAR(s.optmem_used(), kZcChargePerSuperPkt * 0.75, 1e-6);
}

TEST(ZcSocket, OverAckIsSafe) {
  ZcTxSocket s{units::Bytes(1048576.0)};
  s.plan_send(units::Bytes(kGso), units::Bytes(kGso));
  s.on_acked(units::Bytes(100 * kGso));  // ACK covers copied bytes too
  EXPECT_DOUBLE_EQ(s.optmem_used(), 0.0);
  EXPECT_DOUBLE_EQ(s.inflight_zc_bytes(), 0.0);
}

TEST(ZcSocket, PreviewDoesNotCharge) {
  ZcTxSocket s{units::Bytes(20480.0)};
  const auto p1 = s.preview_send(units::Bytes(100e6), units::Bytes(kGso));
  const auto p2 = s.preview_send(units::Bytes(100e6), units::Bytes(kGso));
  EXPECT_DOUBLE_EQ(p1.zc_bytes, p2.zc_bytes);
  EXPECT_DOUBLE_EQ(s.optmem_used(), 0.0);
  // Committing matches the preview.
  const auto real = s.plan_send(units::Bytes(100e6), units::Bytes(kGso));
  EXPECT_DOUBLE_EQ(real.zc_bytes, p1.zc_bytes);
}

TEST(ZcSocket, SteadyStateWindowEqualsOptmemDerivedLimit) {
  // One-RTT pipeline (as the transfer engine runs it): charge a round's
  // sends, then the round's ACKs release them. The sustained zerocopy bytes
  // per round converge to optmem_max / charge * gso — the Fig. 9 mechanism.
  ZcTxSocket s{units::Bytes(1048576.0)};
  const double round = 500e6;  // demand far above the limit
  double zc_round = 0;
  for (int i = 0; i < 20; ++i) {
    const auto plan = s.plan_send(units::Bytes(round), units::Bytes(kGso));
    zc_round = plan.zc_bytes;
    s.on_acked(units::Bytes(round));  // the whole round (zc + copied) is ACKed within an RTT
  }
  const double expected_window = 1048576.0 / kZcChargePerSuperPkt * kGso;  // ~429 MB
  EXPECT_NEAR(zc_round, expected_window, expected_window * 0.01);
  // The copied remainder is what the sender pays CPU for: Fig. 9's story.
  EXPECT_NEAR(s.total_fallback_bytes() / 20, round - expected_window,
              expected_window * 0.02);
}

TEST(ZcSocket, BiggerOptmemBiggerWindow) {
  for (const double optmem : {20480.0, 1048576.0, 3405376.0}) {
    ZcTxSocket s{units::Bytes(optmem)};
    const auto plan = s.plan_send(units::Bytes(2e9), units::Bytes(kGso));
    EXPECT_NEAR(plan.zc_bytes, optmem / kZcChargePerSuperPkt * kGso,
                plan.zc_bytes * 0.01 + 1.0);
  }
}

TEST(ZcSocket, ResetClearsState) {
  ZcTxSocket s{units::Bytes(1048576.0)};
  s.plan_send(units::Bytes(10 * kGso), units::Bytes(kGso));
  s.reset();
  EXPECT_DOUBLE_EQ(s.optmem_used(), 0.0);
  EXPECT_DOUBLE_EQ(s.inflight_zc_bytes(), 0.0);
}

TEST(ZcSocket, LifetimeCountersAccumulate) {
  ZcTxSocket s{units::Bytes(20480.0)};
  s.plan_send(units::Bytes(100e6), units::Bytes(kGso));
  EXPECT_GT(s.total_zc_bytes(), 0.0);
  EXPECT_GT(s.total_fallback_bytes(), 0.0);
  EXPECT_NEAR(s.total_zc_bytes() + s.total_fallback_bytes(), 100e6, 1.0);
}

// Property: under arbitrary interleavings of sends and acks, optmem never
// goes negative, never exceeds the limit, and accounting stays consistent.
TEST(ZcSocketProperty, RandomInterleavingsStayConsistent) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const double optmem = rng.uniform(4096.0, 4e6);
    ZcTxSocket s{units::Bytes(optmem)};
    double inflight = 0.0;
    for (int step = 0; step < 200; ++step) {
      if (rng.bernoulli(0.6)) {
        const double bytes = rng.uniform(1.0, 50e6);
        const auto plan = s.plan_send(units::Bytes(bytes), units::Bytes(kGso));
        EXPECT_NEAR(plan.zc_bytes + plan.fallback_bytes, bytes, 1e-6);
        inflight += plan.zc_bytes;
      } else {
        const double ack = rng.uniform(0.0, inflight * 1.5 + 1.0);
        s.on_acked(units::Bytes(ack));
        inflight = std::max(inflight - ack, 0.0);
      }
      EXPECT_GE(s.optmem_used(), -1e-6);
      EXPECT_LE(s.optmem_used(), optmem + 1e-6);
      EXPECT_NEAR(s.inflight_zc_bytes(), inflight, inflight * 1e-9 + 1e-3);
    }
  }
}

}  // namespace
}  // namespace dtnsim::kern
