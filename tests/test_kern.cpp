// Unit tests: kernel profiles, sysctls, SKB geometry, GSO/GRO.
#include <gtest/gtest.h>

#include "dtnsim/kern/gro.hpp"
#include "dtnsim/kern/gso.hpp"
#include "dtnsim/kern/skb.hpp"
#include "dtnsim/kern/sysctl.hpp"
#include "dtnsim/kern/version.hpp"

namespace dtnsim::kern {
namespace {

TEST(KernelProfile, FeatureGatesMatchHistory) {
  const auto v510 = kernel_profile(KernelVersion::V5_10);
  const auto v515 = kernel_profile(KernelVersion::V5_15);
  const auto v65 = kernel_profile(KernelVersion::V6_5);
  const auto v68 = kernel_profile(KernelVersion::V6_8);
  const auto v611 = kernel_profile(KernelVersion::V6_11);

  // MSG_ZEROCOPY since 4.17: all tested kernels have it.
  for (const auto* k : {&v510, &v515, &v65, &v68, &v611}) {
    EXPECT_TRUE(k->supports_msg_zerocopy) << k->name;
  }
  // BIG TCP: IPv6 since 5.19, IPv4 since 6.3.
  EXPECT_FALSE(v510.supports_big_tcp_ipv6);
  EXPECT_FALSE(v515.supports_big_tcp_ipv6);
  EXPECT_FALSE(v515.supports_big_tcp_ipv4);
  EXPECT_TRUE(v65.supports_big_tcp_ipv4);
  EXPECT_TRUE(v68.supports_big_tcp_ipv4);
  // HW GRO (SHAMPO re-enable): 6.11.
  EXPECT_FALSE(v68.supports_hw_gro);
  EXPECT_TRUE(v611.supports_hw_gro);
}

TEST(KernelProfile, StackFactorsMatchPaperGains) {
  const auto v515 = kernel_profile(KernelVersion::V5_15);
  const auto v65 = kernel_profile(KernelVersion::V6_5);
  const auto v68 = kernel_profile(KernelVersion::V6_8);
  // AMD: +12% 5.15 -> 6.5, +17% 6.5 -> 6.8 (paper Fig. 12).
  EXPECT_NEAR(v515.stack_factor_amd / v65.stack_factor_amd, 1.12, 0.01);
  EXPECT_NEAR(v65.stack_factor_amd / v68.stack_factor_amd, 1.17, 0.01);
  // Intel: ~27% total 5.15 -> 6.8 on LAN (Fig. 13).
  EXPECT_NEAR(v515.stack_factor_intel / v68.stack_factor_intel, 1.27, 0.02);
}

TEST(KernelProfile, CustomFragsBuild) {
  auto k = custom_kernel_with_frags(kernel_profile(KernelVersion::V6_8), 45);
  EXPECT_EQ(k.max_skb_frags, 45);
  EXPECT_TRUE(k.custom_build);
  EXPECT_NE(k.name.find("frags45"), std::string::npos);
}

TEST(Sysctl, PaperTuningValues) {
  const auto t = SysctlConfig::fasterdata_tuned();
  EXPECT_DOUBLE_EQ(t.tcp_rmem_max, 2147483647.0);
  EXPECT_DOUBLE_EQ(t.tcp_wmem_max, 2147483647.0);
  EXPECT_EQ(t.default_qdisc, QdiscKind::Fq);
  EXPECT_TRUE(t.tcp_no_metrics_save);
  EXPECT_DOUBLE_EQ(t.optmem_max, 1048576.0);
}

TEST(Sysctl, DefaultsAreStock) {
  const auto d = SysctlConfig::linux_defaults();
  EXPECT_EQ(d.default_qdisc, QdiscKind::FqCodel);
  EXPECT_DOUBLE_EQ(d.optmem_max, 20480.0);
  // Stock windows cannot fill a 100G WAN pipe.
  EXPECT_LT(d.max_send_window_bytes(), 10e6);
}

TEST(Skb, LegacyCapsWithoutBigTcp) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(150 * 1024));
  EXPECT_DOUBLE_EQ(caps.gso_max_bytes, kLegacyGsoMax);
}

TEST(Skb, BigTcpRequiresKernelSupport) {
  // 5.15 has no BIG TCP for IPv4: setting it is a no-op.
  const auto old_caps = skb_caps(kernel_profile(KernelVersion::V5_15), true, units::Bytes(150 * 1024));
  EXPECT_DOUBLE_EQ(old_caps.gso_max_bytes, kLegacyGsoMax);
  const auto new_caps = skb_caps(kernel_profile(KernelVersion::V6_8), true, units::Bytes(150 * 1024));
  EXPECT_DOUBLE_EQ(new_caps.gso_max_bytes, 150.0 * 1024);
}

TEST(Skb, BigTcpClampedTo512K) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), true, units::Bytes(10e6));
  EXPECT_DOUBLE_EQ(caps.gso_max_bytes, kBigTcpGsoMaxIpv4);
}

TEST(Skb, ZerocopyFragLimitDefeatsBigTcp) {
  // The paper's central BIG TCP caveat: zerocopy pins 4K pages, one per
  // frag, so MAX_SKB_FRAGS=17 caps a zerocopy super-packet at ~64K even
  // with gso_max at 150K.
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), true, units::Bytes(150 * 1024));
  const double copy_gso = effective_gso_bytes(caps, false, units::Bytes(9000)).value();
  const double zc_gso = effective_gso_bytes(caps, true, units::Bytes(9000)).value();
  EXPECT_DOUBLE_EQ(copy_gso, 150.0 * 1024);
  EXPECT_DOUBLE_EQ(zc_gso, 16 * 4096.0);  // (17-1) pinned pages
}

TEST(Skb, Frags45UnlocksBigTcpPlusZerocopy) {
  auto k = custom_kernel_with_frags(kernel_profile(KernelVersion::V6_8), 45);
  const auto caps = skb_caps(k, true, units::Bytes(180 * 1024));
  EXPECT_DOUBLE_EQ(effective_gso_bytes(caps, true, units::Bytes(9000)).value(), 44 * 4096.0);  // ~180K
}

TEST(Skb, GsoNeverBelowMtu) {
  SkbCaps caps;
  caps.max_skb_frags = 2;
  EXPECT_GE(effective_gso_bytes(caps, true, units::Bytes(9000)).value(), 9000.0);
}

TEST(Skb, SkbsForSendCeil) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  EXPECT_EQ(skbs_for_send(units::Bytes(65536.0), caps, false, units::Bytes(9000)), 1);
  EXPECT_EQ(skbs_for_send(units::Bytes(65537.0), caps, false, units::Bytes(9000)), 2);
  EXPECT_EQ(skbs_for_send(units::Bytes(0.0), caps, false, units::Bytes(9000)), 0);
}

TEST(Gso, CountsConserveBytes) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  const auto segs = gso_segment(units::Bytes(1e6), caps, false, units::Bytes(9000));
  double total = 0;
  for (double s : segs) {
    EXPECT_LE(s, 65536.0);
    total += s;
  }
  EXPECT_DOUBLE_EQ(total, 1e6);
}

TEST(Gso, WireSegmentsUseMss) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  const auto c = gso_counts(units::Bytes(8960.0 * 100), caps, false, units::Bytes(9000));
  EXPECT_NEAR(c.wire_segments, 100.0, 1e-9);
}

TEST(Gso, BigTcpReducesSuperpacketCount) {
  const auto stock = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  const auto big = skb_caps(kernel_profile(KernelVersion::V6_8), true, units::Bytes(150 * 1024));
  const double bytes = 10e6;
  EXPECT_GT(gso_counts(units::Bytes(bytes), stock, false, units::Bytes(9000)).superpackets,
            gso_counts(units::Bytes(bytes), big, false, units::Bytes(9000)).superpackets * 2.0);
}

TEST(Gro, FluidCountsMatchGeometry) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  const auto c = gro_counts(units::Bytes(655360.0), caps, units::Bytes(9000));
  EXPECT_NEAR(c.aggregates, 10.0, 1e-9);
}

TEST(Gro, EngineAggregatesSegments) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  GroEngine gro(caps, units::Bytes(9000));
  int aggregates = 0;
  double delivered = 0;
  for (int i = 0; i < 100; ++i) {
    if (auto agg = gro.add_segment(units::Bytes(8960.0))) {
      ++aggregates;
      delivered += agg->value();
    }
  }
  if (auto tail = gro.flush()) delivered += tail->value();
  EXPECT_DOUBLE_EQ(delivered, 896000.0);
  // 8 segments (71680 B) complete each aggregate: 100 segments -> 12 full.
  EXPECT_EQ(aggregates, 12);
  EXPECT_FALSE(gro.flush().has_value());  // nothing pending after flush
}

TEST(Gro, FlushReturnsPartial) {
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  GroEngine gro(caps, units::Bytes(9000));
  EXPECT_FALSE(gro.add_segment(units::Bytes(100.0)).has_value());
  const auto out = gro.flush();
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->value(), 100.0);
}

}  // namespace
}  // namespace dtnsim::kern
