// Unit tests: test harness (repeat aggregation, testbeds, determinism).
#include <gtest/gtest.h>

#include "dtnsim/harness/runner.hpp"

namespace dtnsim::harness {
namespace {

TEST(Testbeds, AmLightShape) {
  const auto tb = amlight();
  EXPECT_EQ(tb.paths.size(), 4u);  // LAN + 25/54/104 ms
  EXPECT_EQ(tb.lan().name, "LAN");
  EXPECT_FALSE(tb.link_flow_control);
  EXPECT_EQ(tb.sender.cpu.vendor, cpu::Vendor::Intel);
  EXPECT_GT(tb.sender.virt_factor, 1.0);  // runs in the tuned VM
  EXPECT_NEAR(units::to_millis(tb.path_named("WAN 104ms").rtt), 104.0, 1e-9);
  EXPECT_DOUBLE_EQ(tb.path_named("WAN 25ms").capacity_bps, 80e9);
}

TEST(Testbeds, BaremetalHasNoVirtFactor) {
  const auto tb = amlight_baremetal();
  EXPECT_DOUBLE_EQ(tb.sender.virt_factor, 1.0);
  EXPECT_EQ(tb.sender.kernel.version, kern::KernelVersion::V5_10);
}

TEST(Testbeds, EsnetShape) {
  const auto tb = esnet();
  EXPECT_EQ(tb.sender.cpu.vendor, cpu::Vendor::Amd);
  EXPECT_DOUBLE_EQ(tb.sender.nic.line_rate_bps, 200e9);
  EXPECT_EQ(tb.sender.tuning.ring_descriptors, 8192);  // the AMD ring tuning
  EXPECT_FALSE(tb.link_flow_control);
}

TEST(Testbeds, ProductionHasFlowControl) {
  const auto tb = esnet_production();
  EXPECT_TRUE(tb.link_flow_control);
  EXPECT_TRUE(tb.paths[0].deep_buffers);
  EXPECT_DOUBLE_EQ(tb.sender.nic.line_rate_bps, 100e9);
}

TEST(Testbeds, UnknownPathThrows) {
  EXPECT_THROW(amlight().path_named("WAN 99ms"), std::out_of_range);
  EXPECT_THROW(amlight_wan(99), std::invalid_argument);
}

TEST(Runner, AggregatesRepeats) {
  auto spec = TestSpec::on(esnet(), "LAN", app::IperfOptions{});
  spec.repeats = 5;
  spec.iperf.duration_sec = 5;
  const auto r = run_test(spec);
  EXPECT_EQ(r.repeats, 5);
  EXPECT_EQ(r.samples_gbps.size(), 5u);
  EXPECT_GE(r.max_gbps, r.avg_gbps);
  EXPECT_LE(r.min_gbps, r.avg_gbps);
  EXPECT_GT(r.stdev_gbps, 0.0);  // per-run efficiency noise
}

TEST(Runner, DeterministicAcrossInvocations) {
  auto spec = TestSpec::on(esnet(), "LAN", app::IperfOptions{});
  spec.repeats = 3;
  spec.iperf.duration_sec = 3;
  const auto a = run_test(spec);
  const auto b = run_test(spec);
  EXPECT_DOUBLE_EQ(a.avg_gbps, b.avg_gbps);
  EXPECT_DOUBLE_EQ(a.stdev_gbps, b.stdev_gbps);
}

TEST(Runner, SeedChangesSamples) {
  auto spec = TestSpec::on(esnet(), "LAN", app::IperfOptions{});
  spec.repeats = 3;
  spec.iperf.duration_sec = 3;
  const auto a = run_test(spec);
  spec.base_seed = 999;
  const auto b = run_test(spec);
  EXPECT_NE(a.samples_gbps[0], b.samples_gbps[0]);
}

TEST(Runner, LabelAndDefaults) {
  const auto spec = TestSpec::on(esnet(), "WAN 63ms", app::IperfOptions{}, "custom");
  EXPECT_EQ(spec.name, "custom");
  const auto unnamed = TestSpec::on(esnet(), "WAN 63ms", app::IperfOptions{});
  EXPECT_NE(unnamed.name.find("WAN 63ms"), std::string::npos);
}

TEST(Runner, BatchRunsAll) {
  app::IperfOptions quick;
  quick.duration_sec = 2;
  std::vector<TestSpec> specs = {TestSpec::on(esnet(), "LAN", quick),
                                 TestSpec::on(esnet(), "WAN 63ms", quick)};
  for (auto& s : specs) s.repeats = 2;
  const auto results = run_tests(specs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].avg_gbps, results[1].avg_gbps);  // LAN beats WAN default
}

TEST(Runner, FlowRangeTracked) {
  auto spec = TestSpec::on(esnet_production(), "production 63ms", app::IperfOptions{});
  spec.iperf.parallel = 8;
  spec.iperf.duration_sec = 10;
  spec.repeats = 3;
  const auto r = run_test(spec);
  EXPECT_GT(r.flow_min_gbps, 0.0);
  EXPECT_GT(r.flow_max_gbps, r.flow_min_gbps);
}

}  // namespace
}  // namespace dtnsim::harness
