// Unit tests: util module (units, rng, stats, json, table, csv, strfmt).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dtnsim/util/csv.hpp"
#include "dtnsim/util/json.hpp"
#include "dtnsim/util/rng.hpp"
#include "dtnsim/util/stats.hpp"
#include "dtnsim/util/strfmt.hpp"
#include "dtnsim/util/table.hpp"
#include "dtnsim/util/units.hpp"

namespace dtnsim {
namespace {

TEST(Units, TimeConversions) {
  EXPECT_EQ(units::seconds(1.0), 1'000'000'000);
  EXPECT_EQ(units::millis(1.0), 1'000'000);
  EXPECT_EQ(units::micros(1.0), 1'000);
  EXPECT_DOUBLE_EQ(units::to_seconds(units::seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(units::to_millis(units::millis(104.0)), 104.0);
}

TEST(Units, RateConversions) {
  EXPECT_DOUBLE_EQ(units::gbps(100.0), 100e9);
  EXPECT_DOUBLE_EQ(units::to_gbps(units::gbps(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(units::mbps(1.0), 1e6);
}

TEST(Units, BytesAtRate) {
  // 8 Gbps for 1 second = 1 GB.
  EXPECT_DOUBLE_EQ(units::bytes_at(8e9, 1.0), 1e9);
  EXPECT_DOUBLE_EQ(units::rate_of(1e9, 1.0), 8e9);
  EXPECT_DOUBLE_EQ(units::rate_of(1e9, 0.0), 0.0);
}

TEST(Units, Formatting) {
  EXPECT_EQ(units::format_rate(55.0e9), "55.00 Gbps");
  EXPECT_EQ(units::format_rate(120.0e6), "120.00 Mbps");
  EXPECT_EQ(units::format_bytes(1048576.0), "1.00 MiB");
  EXPECT_EQ(units::format_time(units::millis(104)), "104.00 ms");
}

TEST(Strfmt, Formats) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, NormalMoments) {
  Rng r(99);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng r(5);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(r.lognormal(4.0, 0.5));
  EXPECT_NEAR(percentile_of(xs, 50.0), 4.0, 0.15);
}

TEST(Rng, SubstreamsIndependent) {
  Rng base(42);
  Rng s0 = base.substream(0);
  Rng s1 = base.substream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += s0.next() == s1.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, SubstreamReproducible) {
  Rng a(42), b(42);
  Rng sa = a.substream(3), sb = b.substream(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sa.next(), sb.next());
}

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptySafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng r(11);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(0, 1);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 50), 0.0);
}

TEST(Json, ScalarsAndNesting) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = "text";
  j["c"] = true;
  j["nested"]["x"] = 2.5;
  EXPECT_EQ(j.dump(), R"({"a":1,"b":"text","c":true,"nested":{"x":2.5}})");
}

TEST(Json, Arrays) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.dump(), R"([1,"two"])");
}

TEST(Json, Escaping) {
  Json j = Json::object();
  j["k"] = "line\n\"quote\"\\";
  EXPECT_EQ(j.dump(), "{\"k\":\"line\\n\\\"quote\\\"\\\\\"}");
}

TEST(Json, IntegersStayIntegral) {
  Json j = Json::object();
  j["n"] = 1048576;
  EXPECT_EQ(j.dump(), R"({"n":1048576})");
}

TEST(Json, PrettyPrint) {
  Json j = Json::object();
  j["a"] = 1;
  const std::string s = j.dump(2);
  EXPECT_NE(s.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(JsonParse, RoundTripsDumpedDocuments) {
  Json j = Json::object();
  j["num"] = 1048576;
  j["frac"] = 2.5;
  j["neg"] = -3;
  j["text"] = "line\n\"quote\"\\";
  j["yes"] = true;
  j["no"] = false;
  j["nil"] = nullptr;
  j["nested"]["x"] = 1;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  j["arr"] = std::move(arr);

  const auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), j.dump());
}

TEST(JsonParse, TypedAccessors) {
  const auto j = Json::parse(R"({"n": 4.5, "b": true, "s": "hi", "a": [10, 20]})");
  ASSERT_TRUE(j.has_value());
  EXPECT_DOUBLE_EQ(j->number_at("n", 0), 4.5);
  EXPECT_TRUE(j->bool_at("b", false));
  EXPECT_EQ(j->string_at("s", ""), "hi");
  EXPECT_DOUBLE_EQ(j->number_at("missing", -1), -1.0);
  EXPECT_EQ(j->find("missing"), nullptr);
  const Json* a = j->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_DOUBLE_EQ(a->at(0)->number_or(0), 10.0);
  EXPECT_DOUBLE_EQ(a->at(1)->number_or(0), 20.0);
  EXPECT_EQ(a->at(2), nullptr);  // out of range
}

TEST(JsonParse, StringEscapes) {
  const auto j = Json::parse(R"({"k": "a\tbA\\\"/"})");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->string_at("k", ""), "a\tbA\\\"/");
  // \uXXXX escapes decode to UTF-8.
  const auto u = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->string_or(""), "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedAndTruncated) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse(R"({"k": )").has_value());          // truncated value
  EXPECT_FALSE(Json::parse(R"({"k": 1,})").has_value());       // trailing comma
  EXPECT_FALSE(Json::parse(R"({"k": 1} extra)").has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse(R"({"k": tru)").has_value());       // cut keyword
  EXPECT_FALSE(Json::parse(R"({"k": "unterminated)").has_value());
  EXPECT_FALSE(Json::parse("[1, 2").has_value());
  EXPECT_FALSE(Json::parse("nope").has_value());
  // A cache row truncated mid-write (the kill-safety case).
  EXPECT_FALSE(Json::parse(R"({"repeats": 2, "avg_gb)").has_value());
}

TEST(JsonParse, DepthLimited) {
  // 80 nested arrays exceeds the parser's depth cap (64): reject, not crash.
  std::string deep(80, '[');
  deep += std::string(80, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
  std::string ok(30, '[');
  ok += std::string(30, ']');
  EXPECT_TRUE(Json::parse(ok).has_value());
}

TEST(Table, AsciiLayout) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, MarkdownLayout) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string out = t.to_markdown();
  EXPECT_NE(out.find("| a | b |"), std::string::npos);
  EXPECT_NE(out.find("|---|---|"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_ascii().find("| only |"), std::string::npos);
}

TEST(Csv, EscapesFields) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, RoundTripContent) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  w.add_row({"3", "4,5"});
  EXPECT_EQ(w.str(), "x,y\n1,2\n3,\"4,5\"\n");
}

}  // namespace
}  // namespace dtnsim
