// Deep-telemetry tests: packet-sim instrumentation, per-flow label tracks,
// streaming trace export, divergence report, config validation, and the
// metrics-CSV golden header (the same header CI smokes via
// bench/table3_flow_control --quick --metrics-out).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/flow/divergence.hpp"
#include "dtnsim/flow/packet_sim.hpp"
#include "dtnsim/flow/transfer.hpp"
#include "dtnsim/harness/testbeds.hpp"
#include "dtnsim/obs/telemetry.hpp"

namespace dtnsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Structural JSON check (the repo ships a writer, not a parser): every
// brace/bracket closes, in order, ignoring string contents.
bool balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') stack.push_back(c);
    else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
    }
  }
  return stack.empty() && !in_string;
}

std::size_t count_of(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

flow::PacketSimConfig packet_cfg() {
  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  flow::PacketSimConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.duration = units::SimTime::from_millis(20);
  cfg.pacing_bps = units::gbps(10);
  cfg.window_bytes = 64e6;
  return cfg;
}

TEST(PacketSimTelemetry, RegistersPktFamilyWithUnits) {
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.probe_interval = units::millis(1);
  obs::Telemetry tel(tcfg);

  auto cfg = packet_cfg();
  cfg.telemetry = &tel;
  const auto res = flow::run_packet_sim(cfg);

  const auto& reg = tel.registry();
  const struct {
    const char* name;
    const char* unit;
  } expected[] = {
      {"pkt.qdisc_backlog_bytes", "bytes"},  {"pkt.interdeparture_gap_ns", "ns"},
      {"pkt.superpackets_sent", "packets"},  {"pkt.segments_sent", "segments"},
      {"pkt.ring_occupancy", "descriptors"}, {"pkt.ring_peak", "descriptors"},
      {"pkt.ring_drops", "segments"},        {"pkt.dropped_bytes", "bytes"},
      {"pkt.napi_polls", "polls"},           {"pkt.napi_batch_segments", "segments"},
      {"pkt.gro_aggregates", "aggregates"},  {"pkt.gro_aggregate_bytes", "bytes"},
      {"pkt.delivered_bytes", "bytes"},      {"pkt.goodput_bps", "bps"},
  };
  for (const auto& e : expected) {
    const auto* d = reg.find(e.name);
    ASSERT_NE(d, nullptr) << e.name;
    EXPECT_EQ(d->unit, e.unit) << e.name;
  }

  // Counters must agree with the result struct — same events, two views.
  EXPECT_DOUBLE_EQ(reg.value_of("pkt.superpackets_sent"),
                   static_cast<double>(res.superpackets_sent));
  EXPECT_DOUBLE_EQ(reg.value_of("pkt.segments_sent"),
                   static_cast<double>(res.segments_sent));
  EXPECT_DOUBLE_EQ(reg.value_of("pkt.delivered_bytes"), res.delivered_bytes);
  EXPECT_DOUBLE_EQ(reg.value_of("pkt.gro_aggregates"),
                   static_cast<double>(res.aggregates));
  EXPECT_DOUBLE_EQ(reg.value_of("pkt.ring_peak"), static_cast<double>(res.ring_peak));
  // Event-weighted GRO histogram: its mean is the mean aggregate size.
  EXPECT_NEAR(reg.value_of("pkt.gro_aggregate_bytes"), res.mean_aggregate_bytes,
              1e-6);

  // The probe sampled at 1 ms over a 20 ms run.
  EXPECT_GE(tel.series().rows.size(), 10u);
  EXPECT_NE(tel.series().column_index("pkt.goodput_bps"),
            static_cast<std::size_t>(-1));

  // Run span bracketed the whole thing.
  EXPECT_TRUE(tel.trace().contains("packet_run"));
}

TEST(PacketSimTelemetry, OverflowEmitsInstantAndDrops) {
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  obs::Telemetry tel(tcfg);

  // Slow drain + unpaced trains: guaranteed ring overrun (mirrors
  // PacketSim.SlowDrainOverrunsRingOnlyWhenUnpaced).
  auto cfg = packet_cfg();
  cfg.pacing_bps = 0.0;
  cfg.zerocopy = true;
  cfg.rx_segment_ns_override = 2000;
  cfg.receiver.tuning.ring_descriptors = 256;
  cfg.telemetry = &tel;
  const auto res = flow::run_packet_sim(cfg);

  ASSERT_GT(res.segments_dropped, 0u);
  EXPECT_DOUBLE_EQ(tel.registry().value_of("pkt.ring_drops"),
                   static_cast<double>(res.segments_dropped));
  EXPECT_GT(tel.registry().value_of("pkt.dropped_bytes"), 0.0);
  EXPECT_TRUE(tel.trace().contains("pkt_ring_overflow"));
  // Edge detection: one instant per overflow episode, not per dropped
  // segment.
  EXPECT_LT(tel.trace().count("pkt_ring_overflow"), res.segments_dropped);
}

TEST(PacketSimTelemetry, SharesRegistryWithFluidRun) {
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  obs::Telemetry tel(tcfg);

  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  flow::TransferConfig fcfg;
  fcfg.sender = tb.sender;
  fcfg.receiver = tb.receiver;
  fcfg.path = tb.lan();
  fcfg.streams = 1;
  fcfg.flow.fq_rate_bps = units::gbps(10);
  fcfg.duration = units::SimTime::from_seconds(2);
  fcfg.telemetry = &tel;
  flow::run_transfer(fcfg);

  auto pcfg = packet_cfg();
  pcfg.telemetry = &tel;
  flow::run_packet_sim(pcfg);

  // Both engines' families coexist in one registry...
  const auto& reg = tel.registry();
  EXPECT_NE(reg.find("flow.goodput_bps"), nullptr);
  EXPECT_NE(reg.find("pkt.goodput_bps"), nullptr);
  // ...and the probe table absorbed the column growth (zero-padded rows).
  const auto& series = tel.series();
  EXPECT_NE(series.column_index("pkt.goodput_bps"), static_cast<std::size_t>(-1));
  for (const auto& row : series.rows) EXPECT_EQ(row.size(), series.columns.size());

  const auto rep = flow::divergence_report("shared", reg, units::SimTime::from_seconds(2.0),
                                          units::SimTime::from_seconds(0.02));
  ASSERT_EQ(rep.entries.size(), 3u);
  const auto* bps = rep.find("achieved_bps");
  ASSERT_NE(bps, nullptr);
  EXPECT_GT(bps->fluid, 0.0);
  EXPECT_GT(bps->packet, 0.0);
  // Both runs were paced at 10G; they must roughly agree.
  EXPECT_LT(bps->rel_diff(), 0.2);
  EXPECT_LE(rep.worst_rel_diff(), 1.0);
  EXPECT_NE(rep.to_string().find("achieved_bps"), std::string::npos);
}

TEST(StreamingTraceSink, WritesWellFormedDocument) {
  const std::string path = testing::TempDir() + "stream_trace.json";
  {
    obs::StreamingTraceSink sink(path, "unit test", /*buffer_events=*/4,
                                 /*ring_capacity=*/8);
    ASSERT_TRUE(sink.ok());
    sink.begin("run", "test", 0);
    for (int i = 0; i < 100; ++i) {
      sink.counter("x", units::millis(i), static_cast<double>(i));
    }
    sink.end("run", "test", units::millis(100));
    EXPECT_TRUE(sink.finalize());

    // The ring kept only the most recent 8, but the file got all 102: the
    // stream removes the capacity ceiling.
    EXPECT_EQ(sink.size(), 8u);
    EXPECT_GT(sink.dropped(), 0u);
    EXPECT_EQ(sink.streamed(), 102u);
  }
  const std::string text = slurp(path);
  EXPECT_TRUE(balanced_json(text)) << text.substr(0, 200);
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  // 102 events + 1 process_name metadata record.
  EXPECT_EQ(count_of(text, "\"ph\""), 103u);
  EXPECT_EQ(count_of(text, "process_name"), 1u);
  std::remove(path.c_str());
}

TEST(StreamingTraceSink, MidRunFlushCheckpoints) {
  const std::string path = testing::TempDir() + "stream_flush.json";
  obs::StreamingTraceSink sink(path, {}, /*buffer_events=*/1000);
  ASSERT_TRUE(sink.ok());
  for (int i = 0; i < 10; ++i) sink.instant("tick", "test", i);
  // Buffered, not yet on disk (buffer_events is large).
  EXPECT_TRUE(sink.flush());
  std::string text = slurp(path);
  EXPECT_EQ(count_of(text, "\"ph\""), 10u);
  // The checkpoint becomes a parseable document by appending the closer a
  // crashed run would never write.
  EXPECT_TRUE(balanced_json(text + "]}"));

  for (int i = 0; i < 5; ++i) sink.instant("tock", "test", 100 + i);
  EXPECT_TRUE(sink.finalize());
  text = slurp(path);
  EXPECT_TRUE(balanced_json(text));
  EXPECT_EQ(count_of(text, "\"ph\""), 15u);
  // finalize() is idempotent and destruction after it is safe.
  EXPECT_TRUE(sink.finalize());
  std::remove(path.c_str());
}

TEST(TelemetryStream, WiredThroughTelemetryConfig) {
  const std::string path = testing::TempDir() + "tel_stream.json";
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.trace_stream_path = path;

  auto cfg = packet_cfg();
  {
    obs::Telemetry tel(tcfg);
    cfg.telemetry = &tel;
    flow::run_packet_sim(cfg);
    EXPECT_TRUE(tel.trace().finalize());
  }
  const std::string text = slurp(path);
  EXPECT_TRUE(balanced_json(text));
  EXPECT_NE(text.find("packet_run"), std::string::npos);
  std::remove(path.c_str());
}

TEST(PerFlowTracks, LabeledColumnsAreDeterministic) {
  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  const auto run_once = [&] {
    obs::TelemetryConfig tcfg;
    tcfg.enabled = true;
    auto tel = std::make_unique<obs::Telemetry>(tcfg);
    flow::TransferConfig cfg;
    cfg.sender = tb.sender;
    cfg.receiver = tb.receiver;
    cfg.path = tb.lan();
    cfg.streams = 4;
    cfg.duration = units::SimTime::from_seconds(3);
    cfg.seed = 42;
    cfg.telemetry = tel.get();
    flow::run_transfer(cfg);
    return tel;
  };
  const auto a = run_once();
  const auto b = run_once();

  // Every stream got its labeled track, in flow-index order (the unlabeled
  // representative gauge "tcp.cwnd_bytes" is not a family instance).
  const auto cwnds = a->registry().family_instances("tcp.cwnd_bytes");
  ASSERT_EQ(cwnds.size(), 4u);
  EXPECT_EQ(cwnds[0]->name, "tcp.cwnd_bytes{flow=0}");
  EXPECT_EQ(cwnds[3]->name, "tcp.cwnd_bytes{flow=3}");
  EXPECT_EQ(cwnds[3]->label_key, "flow");
  EXPECT_EQ(cwnds[3]->label_value, 3);

  // Same seed -> identical headers AND identical sampled values.
  const auto& sa = a->series();
  const auto& sb = b->series();
  ASSERT_EQ(sa.columns, sb.columns);
  ASSERT_EQ(sa.rows.size(), sb.rows.size());
  for (std::size_t r = 0; r < sa.rows.size(); ++r) EXPECT_EQ(sa.rows[r], sb.rows[r]);

  // Per-flow goodput tracks carry real signal: the per-flow skew gauges
  // bound every labeled instance's final value.
  const auto& reg = a->registry();
  const double lo = reg.value_of("flow.per_flow_min_bps");
  const double hi = reg.value_of("flow.per_flow_max_bps");
  EXPECT_GT(lo, 0.0);
  EXPECT_GE(hi, lo);
  EXPECT_NEAR(reg.value_of("flow.per_flow_range_bps"), hi - lo, 1e-3);
  for (int f = 0; f < 4; ++f) {
    const double v =
        reg.value_of(obs::labeled_name("flow.goodput_bps", "flow", f));
    EXPECT_GE(v, lo * 0.999) << f;
    EXPECT_LE(v, hi * 1.001) << f;
  }
}

TEST(TelemetryConfigValidation, RejectsDegenerateConfigs) {
  obs::TelemetryConfig bad;
  bad.probe_interval = 0;
  EXPECT_THROW(obs::validate(bad), std::invalid_argument);
  EXPECT_THROW(obs::Telemetry{bad}, std::invalid_argument);

  bad = {};
  bad.probe_interval = -units::seconds(1);
  EXPECT_THROW(obs::validate(bad), std::invalid_argument);

  bad = {};
  bad.trace_capacity = 0;
  EXPECT_THROW(obs::validate(bad), std::invalid_argument);

  bad = {};
  bad.stream_buffer_events = 0;
  EXPECT_THROW(obs::validate(bad), std::invalid_argument);

  EXPECT_NO_THROW(obs::validate(obs::TelemetryConfig{}));
}

// The CSV header the CLI/benches export is a compatibility surface: plotting
// scripts key on these column names. Golden lives in tests/golden/ and CI
// re-derives it from bench/table3_flow_control --quick --metrics-out.
TEST(MetricsCsvGolden, HeaderMatchesCheckedInGolden) {
  const std::string golden_path =
      std::string(DTNSIM_SOURCE_DIR) + "/tests/golden/table3_metrics_header.csv";
  std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  while (!golden.empty() && (golden.back() == '\n' || golden.back() == '\r'))
    golden.pop_back();

  // Reproduce the bench's registry shape: the production testbed, 8 streams,
  // telemetry on (duration does not affect the column set).
  const auto tb = harness::esnet_production(kern::KernelVersion::V5_15);
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  obs::Telemetry tel(tcfg);
  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.path_named("production 63ms");
  cfg.streams = 8;
  cfg.flow.fq_rate_bps = units::gbps(10);
  cfg.duration = units::SimTime::from_seconds(2);
  cfg.telemetry = &tel;
  flow::run_transfer(cfg);

  std::string header = "test,repeat";
  for (const auto& c : tel.series().columns) header += "," + c;
  EXPECT_EQ(header, golden)
      << "metric column set changed; regenerate tests/golden/"
         "table3_metrics_header.csv (see docs/OBSERVABILITY.md)";
}

}  // namespace
}  // namespace dtnsim
