// dtnsim::report tests: series analysis on hand-computed fixtures, the
// RunRecord JSON contract, and the harness/CLI integration points.
//
// The subsystem's promises, each enforced here:
//   - every analysis function matches numbers computable by hand (the
//     percentile/dip/recovery definitions in docs/REPORT.md are the spec);
//   - a RunRecord round-trips through JSON bit-exactly (dump -> parse ->
//     rebuild -> dump is the identity), and its top-level schema is golden
//     (tests/golden/run_record_keys.txt);
//   - spec.record attaches a record whose numbers equal the TestResult's
//     and whose analysis block re-derives cleanly from its own data, while
//     record-off runs are untouched;
//   - records are byte-identical at --jobs 1 vs --jobs N;
//   - scenario::timeline_from_log is the inverse of running a timeline
//     (the '--record-timeline' artifact replays to the same event log);
//   - the campaign plot emitter writes parseable .gp/.dat pairs whose
//     overlays track the columns the rows actually carry.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/core/dtnsim.hpp"
#include "dtnsim/report/analysis.hpp"
#include "dtnsim/report/record.hpp"

namespace dtnsim::report {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// A rectangular series: time_s plus one value column, one row per second.
obs::SeriesTable make_series(const std::string& column,
                             const std::vector<double>& times,
                             const std::vector<double>& values) {
  obs::SeriesTable t;
  t.columns = {"time_s", column};
  for (std::size_t i = 0; i < times.size(); ++i)
    t.rows.push_back({times[i], values[i]});
  return t;
}

units::SimTime sec(double s) { return units::SimTime::from_seconds(s); }

// ---- percentile -----------------------------------------------------------

TEST(ReportAnalysis, PercentileInterpolatesByHand) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 1.0), 42.0);
  // rank = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0, 40.0}, 0.5), 25.0);
  // rank = 0.99 * 3 = 2.97 -> 30 + 0.97 * 10.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0, 40.0}, 0.99), 39.7);
  // Input order must not matter (the function sorts its copy).
  EXPECT_DOUBLE_EQ(percentile({40.0, 10.0, 30.0, 20.0}, 0.5), 25.0);
  // Out-of-range quantiles clamp to the extremes.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 2.0), 20.0);
}

// ---- rate_stats -----------------------------------------------------------

TEST(ReportAnalysis, RateStatsOverClosedWindowByHand) {
  const auto series = make_series("x_bps", {0, 1, 2, 3, 4, 5},
                                  {1e9, 2e9, 3e9, 4e9, 5e9, 6e9});
  const SeriesStats st = rate_stats(series, "x_bps", sec(1), sec(3));
  EXPECT_EQ(st.samples, 3u);  // t = 1, 2, 3 (closed window)
  EXPECT_DOUBLE_EQ(st.mean.bps(), 3e9);
  EXPECT_DOUBLE_EQ(st.p50.bps(), 3e9);
  // rank = 0.99 * 2 = 1.98 -> 3e9 + 0.98 * 1e9.
  EXPECT_DOUBLE_EQ(st.p99.bps(), 3.98e9);
}

TEST(ReportAnalysis, RateStatsMissingColumnOrEmptyWindowIsZero) {
  const auto series = make_series("x_bps", {0, 1}, {1e9, 2e9});
  EXPECT_EQ(rate_stats(series, "nope_bps", sec(0), sec(9)).samples, 0u);
  const SeriesStats st = rate_stats(series, "x_bps", sec(5), sec(9));
  EXPECT_EQ(st.samples, 0u);
  EXPECT_DOUBLE_EQ(st.mean.bps(), 0.0);
}

// ---- analyze_recovery -----------------------------------------------------

// Episode at [20, 25]: flat 10 Gbps before, hand-placed dip during, first
// sample back at >= 90% of baseline lands at t = 27.
obs::SeriesTable recovery_series(double after_stop_bps = 9.5e9) {
  std::vector<double> t, v;
  for (int i = 5; i <= 30; ++i) {
    t.push_back(i);
    double bps = 10e9;
    if (i >= 20 && i <= 25) bps = std::vector<double>{4e9, 2e9, 3e9, 5e9,
                                                      6e9, 7e9}[i - 20];
    if (i == 26) bps = 8e9;             // still below 9 Gbps
    if (i >= 27) bps = after_stop_bps;  // >= 9e9 -> recovered at t = 27
    v.push_back(bps);
  }
  return make_series("flow.goodput_bps", t, v);
}

TEST(ReportAnalysis, RecoveryStatsByHand) {
  const RecoveryStats st =
      analyze_recovery(recovery_series(), "flow.goodput_bps", sec(20), sec(25));
  // Baseline window is [10, 20): ten samples, all 10 Gbps.
  EXPECT_DOUBLE_EQ(st.baseline.gbps(), 10.0);
  EXPECT_DOUBLE_EQ(st.dip.gbps(), 2.0);
  EXPECT_DOUBLE_EQ(st.retained(), 0.2);
  EXPECT_EQ(st.samples, 16u);  // 10 baseline + 6 episode rows
  ASSERT_TRUE(st.recovered);
  EXPECT_DOUBLE_EQ(st.recovery.seconds(), 2.0);  // t = 27, relative to 25
}

TEST(ReportAnalysis, RecoveryNeverIsExplicit) {
  const RecoveryStats st = analyze_recovery(recovery_series(8e9),
                                            "flow.goodput_bps", sec(20), sec(25));
  EXPECT_FALSE(st.recovered);
  EXPECT_DOUBLE_EQ(st.recovery.seconds(), 0.0);
}

TEST(ReportAnalysis, DipClampsAtZeroAndEmptyBaselineIsZero) {
  const auto series = make_series("flow.goodput_bps", {20, 21}, {-1e9, 5e9});
  const RecoveryStats st =
      analyze_recovery(series, "flow.goodput_bps", sec(20), sec(25));
  EXPECT_DOUBLE_EQ(st.dip.bps(), 0.0);       // clamped
  EXPECT_DOUBLE_EQ(st.baseline.bps(), 0.0);  // no rows before the episode
  EXPECT_DOUBLE_EQ(st.retained(), 0.0);
}

// ---- per_flow_skew --------------------------------------------------------

TEST(ReportAnalysis, PerFlowSkewByHand) {
  obs::SeriesTable t;
  t.columns = {"time_s", "flow.per_flow_min_bps", "flow.per_flow_max_bps"};
  t.rows = {{0, 1e9, 2e9}, {1, 2e9, 4e9}, {2, 3e9, 3e9}};
  // Diffs 1e9, 2e9, 0 -> mean 1e9.
  EXPECT_DOUBLE_EQ(per_flow_skew(t, sec(0), sec(2)).bps(), 1e9);
  // Window [1, 1] keeps only the middle row.
  EXPECT_DOUBLE_EQ(per_flow_skew(t, sec(1), sec(1)).bps(), 2e9);
  // Single-flow series (no per-flow columns) reads as zero skew.
  const auto single = make_series("flow.goodput_bps", {0}, {1e9});
  EXPECT_DOUBLE_EQ(per_flow_skew(single, sec(0), sec(9)).bps(), 0.0);
}

// ---- episode_window / goodput_column --------------------------------------

scenario::AppliedEvent applied_event(double fire, double end, bool applied) {
  scenario::AppliedEvent ev;
  ev.fire_sec = fire;
  ev.end_sec = end;
  ev.kind = scenario::EventKind::LossBurst;
  ev.value = 0.02;
  ev.applied = applied;
  return ev;
}

TEST(ReportAnalysis, EpisodeWindowSpansAppliedEventsOnly) {
  scenario::EventLog log;
  EXPECT_FALSE(episode_window(log).has_value());

  log.events.push_back(applied_event(20.0, 25.0, true));
  log.events.push_back(applied_event(22.0, 0.0, true));   // permanent: -> 22
  log.events.push_back(applied_event(5.0, 50.0, false));  // ignored
  const auto w = episode_window(log);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->first.seconds(), 20.0);
  EXPECT_DOUBLE_EQ(w->second.seconds(), 25.0);

  scenario::EventLog unapplied;
  unapplied.events.push_back(applied_event(1.0, 2.0, false));
  EXPECT_FALSE(episode_window(unapplied).has_value());
}

TEST(ReportAnalysis, GoodputColumnPrefersFluidThenPacket) {
  EXPECT_EQ(goodput_column(make_series("flow.goodput_bps", {0}, {1})),
            "flow.goodput_bps");
  EXPECT_EQ(goodput_column(make_series("pkt.goodput_bps", {0}, {1})),
            "pkt.goodput_bps");
  EXPECT_EQ(goodput_column(make_series("other_bps", {0}, {1})), "");
}

// ---- RunRecord JSON contract ----------------------------------------------

RunRecord sample_record() {
  RunRecord rec;
  rec.meta.name = "rt-test";
  rec.meta.engine = "fluid";
  rec.meta.streams = 2;
  rec.meta.repeats = 3;
  rec.meta.duration_sec = 30.0;
  // Above 2^53: survives only because base_seed ships as a string.
  rec.meta.base_seed = 18446744073709551615ull;
  rec.meta.scenario = "loss";
  rec.summary.avg_gbps = 9.25;
  rec.summary.min_gbps = 9.0;
  rec.summary.max_gbps = 9.5;
  rec.summary.stdev_gbps = 0.25;
  rec.summary.avg_retransmits = 12.0;
  rec.summary.samples_gbps = {9.0, 9.25, 9.5};
  rec.series = recovery_series();
  rec.scenario_log.engine = "fluid";
  rec.scenario_log.timeline = "loss";
  rec.scenario_log.events.push_back(applied_event(20.0, 25.0, true));
  rec.analysis = analyze_record(rec);
  return rec;
}

TEST(ReportRecord, JsonRoundTripIsBitExact) {
  const RunRecord rec = sample_record();
  const std::string first = to_json(rec).dump();
  const auto parsed = Json::parse(first);
  ASSERT_TRUE(parsed.has_value());
  const RunRecord back = run_record_from_json(*parsed);
  EXPECT_EQ(to_json(back).dump(), first);
  EXPECT_EQ(back.meta.base_seed, rec.meta.base_seed);
  EXPECT_EQ(back.schema, kRunRecordSchema);
  EXPECT_EQ(back.series.rows.size(), rec.series.rows.size());
  ASSERT_EQ(back.scenario_log.events.size(), 1u);
  EXPECT_TRUE(back.scenario_log.events[0].applied);
}

TEST(ReportRecord, AnalysisDerivesFromOwnSeriesAndLog) {
  const RunRecord rec = sample_record();
  EXPECT_DOUBLE_EQ(rec.analysis.baseline.gbps(), 10.0);
  EXPECT_DOUBLE_EQ(rec.analysis.dip.gbps(), 2.0);
  EXPECT_TRUE(rec.analysis.has_episode);
  EXPECT_DOUBLE_EQ(rec.analysis.episode_start.seconds(), 20.0);
  EXPECT_DOUBLE_EQ(rec.analysis.episode_end.seconds(), 25.0);
  ASSERT_TRUE(rec.analysis.recovered);
  EXPECT_DOUBLE_EQ(rec.analysis.recovery.seconds(), 2.0);
  EXPECT_EQ(rec.analysis.samples, 26u);  // whole series, t = 5..30
}

TEST(ReportRecord, WriteLoadRoundTripAndLoadErrors) {
  const RunRecord rec = sample_record();
  const fs::path path = fs::path(::testing::TempDir()) / "dtnsim_record.json";
  ASSERT_TRUE(write_run_record(path.string(), rec));
  const RunRecord back = load_run_record(path.string());
  EXPECT_EQ(to_json(back).dump(), to_json(rec).dump());

  try {
    load_run_record("/nonexistent/rec.json");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/rec.json"),
              std::string::npos);
  }

  // A future-schema document must be refused, not half-read.
  Json j = to_json(rec);
  j["schema"] = 999;
  std::ofstream(path.string()) << j.dump(2);
  EXPECT_THROW(load_run_record(path.string()), std::runtime_error);
  fs::remove(path);
}

TEST(ReportRecord, SchemaMatchesGolden) {
  const std::string golden_path =
      std::string(DTNSIM_SOURCE_DIR) + "/tests/golden/run_record_keys.txt";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  std::vector<std::string> want;
  std::stringstream in(golden);
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) want.push_back(line);

  const Json j = to_json(sample_record());
  std::vector<std::string> got = j.keys();  // sorted
  for (const char* sub : {"meta", "summary", "analysis", "series"}) {
    const Json* s = j.find(sub);
    ASSERT_NE(s, nullptr) << sub;
    for (const auto& k : s->keys()) got.push_back(std::string(sub) + "." + k);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want) << "RunRecord schema changed; bump kRunRecordSchema "
                          "and regenerate tests/golden/run_record_keys.txt "
                          "(see docs/REPORT.md)";
}

// ---- renderers ------------------------------------------------------------

TEST(ReportRender, FormatAndDiffCarryTheHeadlines) {
  const RunRecord rec = sample_record();
  const std::string text = format_run_record(rec);
  EXPECT_NE(text.find("rt-test"), std::string::npos);
  EXPECT_NE(text.find("scenario loss"), std::string::npos);
  EXPECT_NE(text.find("dip 2.00 Gbps"), std::string::npos);
  EXPECT_NE(text.find("recovery 2.0 s"), std::string::npos);

  RunRecord b = rec;
  b.meta.name = "rt-after";
  b.summary.avg_gbps = 10.25;
  const std::string diff = format_record_diff(rec, b);
  EXPECT_NE(diff.find("rt-test vs rt-after"), std::string::npos);
  EXPECT_NE(diff.find("avg_gbps"), std::string::npos);
  EXPECT_NE(diff.find("+1.000"), std::string::npos);
}

TEST(ReportRender, RecordPlotWritesGpAndDat) {
  const RunRecord rec = sample_record();
  const fs::path base = fs::path(::testing::TempDir()) / "dtnsim_rec_plot";
  ASSERT_TRUE(write_record_plot(base.string(), rec));
  const std::string gp = slurp(base.string() + ".gp");
  const std::string dat = slurp(base.string() + ".dat");
  EXPECT_NE(gp.find("plot '"), std::string::npos);
  EXPECT_NE(gp.find("set label 'episode'"), std::string::npos);  // has episode
  EXPECT_NE(dat.find("time_s goodput_gbps"), std::string::npos);
  fs::remove(base.string() + ".gp");
  fs::remove(base.string() + ".dat");
}

TEST(ReportRender, CampaignPlotOverlaysTrackRowColumns) {
  const auto row = [](const char* name, bool perf, bool dip) {
    Json j = Json::object();
    j["index"] = 0;
    j["name"] = std::string(name);
    j["avg_gbps"] = 9.0;
    j["stdev_gbps"] = 0.5;
    j["min_gbps"] = 8.5;
    j["max_gbps"] = 9.5;
    if (perf) {
      j["tx_cyc_per_byte"] = 1.25;
      j["rx_cyc_per_byte"] = 2.5;
    }
    if (dip) {
      j["dip_gbps"] = 2.0;
      j["recovery_sec"] = 3.0;
    }
    return j;
  };
  const fs::path base = fs::path(::testing::TempDir()) / "dtnsim_camp_plot";

  // Plain rows: no overlays, no second axis.
  ASSERT_TRUE(write_campaign_plot(base.string(), "t", {row("a", false, false)}));
  std::string gp = slurp(base.string() + ".gp");
  EXPECT_EQ(gp.find("y2label"), std::string::npos);
  EXPECT_EQ(gp.find("episode dip"), std::string::npos);

  // Any row carrying the columns switches the overlays on.
  ASSERT_TRUE(write_campaign_plot(
      base.string(), "t", {row("a", false, false), row("b", true, true)}));
  gp = slurp(base.string() + ".gp");
  EXPECT_NE(gp.find("set y2label 'cycles/byte'"), std::string::npos);
  EXPECT_NE(gp.find("episode dip"), std::string::npos);
  EXPECT_NE(gp.find("tx cyc/B"), std::string::npos);

  // The .dat is tab-separated with the name last; missing overlays fill.
  const std::string dat = slurp(base.string() + ".dat");
  std::vector<std::string> lines;
  std::stringstream in(dat);
  for (std::string line; std::getline(in, line);)
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find('\t'), std::string::npos);
  EXPECT_EQ(lines[0].substr(lines[0].size() - 1), "a");
  EXPECT_EQ(lines[1].substr(lines[1].size() - 1), "b");
  EXPECT_NE(lines[1].find("1.250000"), std::string::npos);
  fs::remove(base.string() + ".gp");
  fs::remove(base.string() + ".dat");
}

// ---- harness integration --------------------------------------------------

scenario::Timeline tiny_loss() {
  scenario::Timeline tl;
  tl.name = "tiny-loss";
  scenario::Event e;
  e.at_sec = 2.0;
  e.kind = scenario::EventKind::LossBurst;
  e.value = 0.05;
  e.duration_sec = 1.0;
  tl.events.push_back(e);
  return tl;
}

Experiment quick_experiment() {
  return Experiment(harness::esnet(kern::KernelVersion::V6_8))
      .path("WAN 63ms")
      .pacing(units::Rate::from_gbps(10))
      .duration(units::SimTime::from_seconds(6))
      .repeats(2);
}

TEST(ReportHarness, RecordBundlesEveryArtifactLayer) {
  const auto r = quick_experiment().scenario(tiny_loss()).record().run();
  ASSERT_NE(r.record, nullptr);
  const RunRecord& rec = *r.record;
  // The record's numbers are the TestResult's numbers.
  EXPECT_EQ(rec.meta.name, r.name);
  EXPECT_EQ(rec.meta.engine, "fluid");
  EXPECT_EQ(rec.meta.repeats, 2);
  EXPECT_EQ(rec.meta.scenario, "tiny-loss");
  EXPECT_DOUBLE_EQ(rec.summary.avg_gbps, r.avg_gbps);
  EXPECT_EQ(rec.summary.samples_gbps, r.samples_gbps);
  // record implies telemetry + ss + perf: every layer is populated.
  EXPECT_FALSE(rec.series.rows.empty());
  EXPECT_FALSE(rec.ss_log.empty());
  EXPECT_FALSE(rec.perf_log.empty());
  EXPECT_EQ(rec.scenario_log.events.size(), 1u);
  EXPECT_GT(rec.analysis.tx_cyc_per_byte, 0.0);
  EXPECT_TRUE(rec.analysis.has_episode);
  // The stored analysis re-derives cleanly from the record's own data —
  // the exact check `dtnsim-report --summarize` runs on loaded files.
  EXPECT_EQ(to_json(analyze_record(rec)).dump(), to_json(rec.analysis).dump());
}

TEST(ReportHarness, RecordOffLeavesResultUntouched) {
  const auto off = quick_experiment().run();
  EXPECT_EQ(off.record, nullptr);
  // Turning the record on must not change the simulation's numbers (the
  // record only implies telemetry, which is already observation-only).
  const auto on = quick_experiment().record().run();
  EXPECT_EQ(on.samples_gbps, off.samples_gbps);
  EXPECT_DOUBLE_EQ(on.avg_gbps, off.avg_gbps);
}

TEST(ReportHarness, RecordsAreByteIdenticalAcrossJobCounts) {
  std::vector<harness::TestSpec> specs;
  specs.push_back(
      quick_experiment().scenario(tiny_loss()).record().label("a").spec());
  specs.push_back(quick_experiment().streams(2).record().label("b").spec());
  const auto serial = harness::run_tests(specs, 1);
  const auto parallel = harness::run_tests(specs, 2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_NE(serial[i].record, nullptr);
    ASSERT_NE(parallel[i].record, nullptr);
    EXPECT_EQ(to_json(*serial[i].record).dump(),
              to_json(*parallel[i].record).dump())
        << specs[i].name;
  }
}

// ---- timeline recorder round-trip (--record-timeline) ----------------------

TEST(ReportTimeline, RecordedTimelineReplaysToTheSameEventLog) {
  // Jitter forces the drawn fire time away from the nominal one, so the
  // round-trip below only holds because timeline_from_log pins fire times.
  scenario::Timeline tl = tiny_loss();
  tl.events[0].jitter_sec = 0.5;
  const auto first = quick_experiment().repeats(1).scenario(tl).run();
  ASSERT_EQ(first.scenario_log.events.size(), 1u);
  const auto& ev = first.scenario_log.events[0];

  const scenario::Timeline rec =
      scenario::timeline_from_log(first.scenario_log);
  EXPECT_NO_THROW(rec.validate());
  EXPECT_EQ(rec.name, "tiny-loss");
  ASSERT_EQ(rec.events.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.events[0].at_sec, ev.fire_sec);
  EXPECT_DOUBLE_EQ(rec.events[0].duration_sec, ev.end_sec - ev.fire_sec);
  EXPECT_DOUBLE_EQ(rec.events[0].jitter_sec, 0.0);
  EXPECT_EQ(rec.events[0].kind, scenario::EventKind::LossBurst);

  // Replaying the recording reproduces the original crossings exactly.
  const auto second = quick_experiment().repeats(1).scenario(rec).run();
  ASSERT_EQ(second.scenario_log.events.size(), 1u);
  EXPECT_DOUBLE_EQ(second.scenario_log.events[0].fire_sec, ev.fire_sec);
  EXPECT_DOUBLE_EQ(second.scenario_log.events[0].end_sec, ev.end_sec);
  EXPECT_EQ(second.samples_gbps, first.samples_gbps);
}

}  // namespace
}  // namespace dtnsim::report
