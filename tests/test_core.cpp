// Unit tests: Experiment builder and TuningAdvisor.
#include <gtest/gtest.h>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim {
namespace {

TEST(Experiment, BuilderComposesSpec) {
  const auto spec = Experiment(harness::esnet())
                        .path("WAN 63ms")
                        .streams(8)
                        .zerocopy()
                        .pacing(units::Rate::from_gbps(15))
                        .kernel(kern::KernelVersion::V5_15)
                        .optmem_max(units::Bytes(3405376))
                        .repeats(7)
                        .seed(99)
                        .label("my test")
                        .spec();
  EXPECT_EQ(spec.iperf.parallel, 8);
  EXPECT_TRUE(spec.iperf.zerocopy);
  EXPECT_DOUBLE_EQ(spec.iperf.fq_rate_bps, 15e9);
  EXPECT_EQ(spec.sender.kernel.version, kern::KernelVersion::V5_15);
  EXPECT_DOUBLE_EQ(spec.sender.tuning.sysctl.optmem_max, 3405376.0);
  EXPECT_EQ(spec.repeats, 7);
  EXPECT_EQ(spec.base_seed, 99u);
  EXPECT_EQ(spec.name, "my test");
  EXPECT_NEAR(units::to_millis(spec.path.rtt), 63.0, 1e-9);
}

TEST(Experiment, DefaultsToLan) {
  const auto spec = Experiment(harness::amlight()).spec();
  EXPECT_EQ(spec.path.name, "LAN");
}

TEST(Experiment, TogglesApplyToBothHosts) {
  const auto spec = Experiment(harness::esnet())
                        .big_tcp(true, units::Bytes(200 * 1024))
                        .mtu(units::Bytes(1500))
                        .ring(4096)
                        .iommu_passthrough(false)
                        .spec();
  for (const auto* h : {&spec.sender, &spec.receiver}) {
    EXPECT_TRUE(h->tuning.big_tcp_enabled);
    EXPECT_DOUBLE_EQ(h->tuning.big_tcp_bytes, 200.0 * 1024);
    EXPECT_DOUBLE_EQ(h->tuning.mtu_bytes, 1500.0);
    EXPECT_EQ(h->tuning.ring_descriptors, 4096);
    EXPECT_FALSE(h->tuning.iommu_passthrough);
  }
}

TEST(Experiment, RunsEndToEnd) {
  const auto r = Experiment(harness::esnet())
                     .pacing(units::Rate::from_gbps(10))
                     .duration(units::SimTime::from_seconds(3))
                     .repeats(2)
                     .run();
  EXPECT_NEAR(r.avg_gbps, 10.0, 1.0);
}

TEST(Advisor, TunedHostOnCleanLanIsQuiet) {
  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  const auto advice =
      advise(tb.sender, tb.lan(), UseCase::ParallelStreamDtn, /*fc=*/true);
  EXPECT_FALSE(advice.has_critical());
}

TEST(Advisor, StockHostOnWanIsCritical) {
  host::HostConfig h;
  h.tuning = host::TuningConfig::stock();
  const auto advice =
      advise(h, harness::esnet_wan(), UseCase::SingleFlowBenchmark, false);
  EXPECT_TRUE(advice.has_critical());
  // Every §V-A headline shows up.
  const std::string text = advice.to_string();
  EXPECT_NE(text.find("irqbalance"), std::string::npos);
  EXPECT_NE(text.find("default_qdisc=fq"), std::string::npos);
  EXPECT_NE(text.find("iommu=pt"), std::string::npos);
  EXPECT_NE(text.find("optmem_max"), std::string::npos);
}

TEST(Advisor, OldKernelFlagged) {
  auto tb = harness::esnet(kern::KernelVersion::V5_15);
  const auto advice = advise(tb.sender, tb.lan(), UseCase::SingleFlowBenchmark, true);
  EXPECT_NE(advice.to_string().find("6.8"), std::string::npos);
}

TEST(Advisor, NoFlowControlSuggestsPacing) {
  const auto tb = harness::esnet();
  const auto advice = advise(tb.sender, tb.lan(), UseCase::ParallelStreamDtn, false);
  EXPECT_NE(advice.to_string().find("802.3x"), std::string::npos);
  EXPECT_TRUE(advice.has_critical());
}

TEST(Advisor, AmdRingAdviceVendorSpecific) {
  auto tb = harness::esnet();
  tb.sender.tuning.ring_descriptors = 1024;
  const auto amd = advise(tb.sender, tb.lan(), UseCase::SingleFlowBenchmark, true);
  EXPECT_NE(amd.to_string().find("8192"), std::string::npos);
  auto am = harness::amlight();
  am.sender.tuning.ring_descriptors = 1024;
  const auto intel = advise(am.sender, am.lan(), UseCase::SingleFlowBenchmark, true);
  EXPECT_EQ(intel.to_string().find("8192"), std::string::npos);
}

TEST(Advisor, BigTcpZerocopyConflictNoted) {
  auto tb = harness::esnet();
  tb.sender.tuning.big_tcp_enabled = true;
  const auto advice = advise(tb.sender, tb.lan(), UseCase::ParallelStreamDtn, true);
  EXPECT_NE(advice.to_string().find("MAX_SKB_FRAGS"), std::string::npos);
}

TEST(Advisor, PacingRecommendation) {
  // §V-B: 1 Gbps for 10G clients; 5-8 Gbps between 100G hosts.
  EXPECT_DOUBLE_EQ(recommended_pacing(units::Rate::from_gbps(100), units::Rate::from_gbps(10)).gbps(), 1.0);
  EXPECT_DOUBLE_EQ(recommended_pacing(units::Rate::from_gbps(100), units::Rate::from_gbps(40)).gbps(), 5.0);
  EXPECT_NEAR(recommended_pacing(units::Rate::from_gbps(100), units::Rate::from_gbps(100)).gbps(), 8.0, 0.5);
}

}  // namespace
}  // namespace dtnsim
