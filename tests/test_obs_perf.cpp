// Simulated perf (dtnsim-perf): the stage-sum == CoreBudget cross-check in
// both engines, the zero-cost-when-disabled bit-identity guarantee, the
// flamegraph / perf-report renderers, the JSON round-trip, packet-vs-fluid
// attribution agreement, and the report key schema golden
// (tests/golden/perf_report_keys.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/core/dtnsim.hpp"
#include "dtnsim/flow/packet_sim.hpp"
#include "dtnsim/obs/perf.hpp"

namespace dtnsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The paper's Fig. 7 LAN cell: AmLight Intel host, kernel 6.5, no tuning.
Experiment fig07_lan_cell() {
  return Experiment(harness::amlight(kern::KernelVersion::V6_5))
      .path("LAN")
      .duration(units::SimTime::from_seconds(5))
      .repeats(1);
}

double stage_sum_for_core(const obs::PerfReport& r, obs::PerfCore core) {
  double sum = 0.0;
  for (int i = 0; i < obs::kPerfStageCount; ++i) {
    if (obs::perf_stage_core(static_cast<obs::PerfStage>(i)) == core) {
      sum += r.stage_cycles[static_cast<std::size_t>(i)];
    }
  }
  return sum;
}

TEST(PerfAttribution, StageSumMatchesConsumedFluid) {
  // Every PerfWatch sample runs cross_check_stage_sum (which throws on
  // divergence), so a finished watch run is itself the assertion; the loop
  // below re-verifies from the recorded log.
  const auto r = fig07_lan_cell()
                     .perf_watch(units::SimTime::from_seconds(1))
                     .run();
  ASSERT_GE(r.perf_log.size(), 5u);
  for (const auto& rep : r.perf_log) {
    EXPECT_EQ(rep.engine, "fluid");
    for (int c = 0; c < obs::kPerfCoreCount; ++c) {
      const auto core = static_cast<obs::PerfCore>(c);
      const double sum = stage_sum_for_core(rep, core);
      const double consumed = rep.consumed_cycles[static_cast<std::size_t>(c)];
      EXPECT_NEAR(sum, consumed, 1e-6 * std::max({sum, consumed, 1.0}))
          << obs::perf_core_name(core) << " at t=" << rep.ts;
    }
    EXPECT_NO_THROW(obs::cross_check_stage_sum(rep));
  }
  // The run did real work, so real cycles were attributed.
  EXPECT_GT(r.perf_log.back().total_cycles(), 0.0);
  EXPECT_GT(r.perf_log.back().tx_cyc_per_byte(), 0.0);
  EXPECT_GT(r.perf_log.back().rx_cyc_per_byte(), 0.0);
}

TEST(PerfAttribution, StageSumMatchesConsumedPacket) {
  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.perf_enabled = true;
  tcfg.perf_interval = units::SimTime::from_millis(5).nanos();
  obs::Telemetry tel(tcfg);

  flow::PacketSimConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.pacing_bps = units::gbps(20);
  cfg.duration = units::SimTime::from_millis(20);
  cfg.telemetry = &tel;
  const auto res = flow::run_packet_sim(cfg);
  EXPECT_GT(res.delivered_bytes, 0.0);

  const auto& log = tel.perf().log();
  ASSERT_GE(log.size(), 2u);
  for (const auto& rep : log) {
    EXPECT_EQ(rep.engine, "packet");
    for (int c = 0; c < obs::kPerfCoreCount; ++c) {
      const auto core = static_cast<obs::PerfCore>(c);
      const double sum = stage_sum_for_core(rep, core);
      const double consumed = rep.consumed_cycles[static_cast<std::size_t>(c)];
      EXPECT_NEAR(sum, consumed, 1e-6 * std::max({sum, consumed, 1.0}))
          << obs::perf_core_name(core) << " at t=" << rep.ts;
    }
  }
  // The packet engine runs one app core per side but still attributes the
  // IRQ-side work folded into its service times (segmentation/DMA on TX,
  // skb/GRO/checksum on RX), so all four groups carry cycles — while IRQ
  // capacity stays unmetered (utilization 0 for those groups).
  const auto& last = log.back();
  EXPECT_GT(last.consumed_cycles[static_cast<int>(obs::PerfCore::SndApp)], 0.0);
  EXPECT_GT(last.consumed_cycles[static_cast<int>(obs::PerfCore::RcvApp)], 0.0);
  EXPECT_GT(last.consumed_cycles[static_cast<int>(obs::PerfCore::SndIrq)], 0.0);
  EXPECT_GT(last.consumed_cycles[static_cast<int>(obs::PerfCore::RcvIrq)], 0.0);
  EXPECT_EQ(last.capacity_cycles[static_cast<int>(obs::PerfCore::SndIrq)], 0.0);
  EXPECT_EQ(last.capacity_cycles[static_cast<int>(obs::PerfCore::RcvIrq)], 0.0);
  EXPECT_EQ(last.core_utilization(obs::PerfCore::SndIrq), 0.0);
  EXPECT_EQ(last.core_utilization(obs::PerfCore::RcvIrq), 0.0);
}

TEST(PerfAttribution, DisabledPerfLeavesRunBitIdentical) {
  // The acceptance bar: arming attribution must not perturb the simulation.
  const auto base = fig07_lan_cell().run();
  const auto with_perf =
      fig07_lan_cell().perf_watch(units::SimTime::from_seconds(1)).run();
  EXPECT_DOUBLE_EQ(base.avg_gbps, with_perf.avg_gbps);
  EXPECT_DOUBLE_EQ(base.avg_retransmits, with_perf.avg_retransmits);
  EXPECT_DOUBLE_EQ(base.snd_cpu_pct, with_perf.snd_cpu_pct);
  EXPECT_DOUBLE_EQ(base.rcv_cpu_pct, with_perf.rcv_cpu_pct);
  EXPECT_TRUE(base.perf_log.empty());
  EXPECT_FALSE(with_perf.perf_log.empty());
}

TEST(PerfAttribution, CopyDominatesRxAppWithoutZerocopy) {
  // Paper shape (Fig. 7 discussion): on a plain 100G run the user copy is
  // the receiver's plurality consumer among the recvmsg-path stages.
  const auto r = fig07_lan_cell().perf().run();
  ASSERT_FALSE(r.perf_log.empty());
  const auto& rep = r.perf_log.back();
  const double copyout =
      rep.stage_cycles[static_cast<int>(obs::PerfStage::RxCopyout)];
  for (int i = 0; i < obs::kPerfStageCount; ++i) {
    const auto st = static_cast<obs::PerfStage>(i);
    if (st == obs::PerfStage::RxCopyout) continue;
    if (obs::perf_stage_core(st) != obs::PerfCore::RcvApp) continue;
    EXPECT_GT(copyout, rep.stage_cycles[static_cast<std::size_t>(i)])
        << obs::perf_stage_name(st);
  }
  // And it is a plurality of the whole rcv_app group.
  EXPECT_GT(copyout, stage_sum_for_core(rep, obs::PerfCore::RcvApp) / 3.0);
}

TEST(PerfAttribution, ZerocopyShiftsTxFromCopyToPinAndNotify) {
  const auto plain = fig07_lan_cell().perf().run();
  const auto zc = fig07_lan_cell().zerocopy().perf().run();
  ASSERT_FALSE(plain.perf_log.empty());
  ASSERT_FALSE(zc.perf_log.empty());
  const auto& p = plain.perf_log.back();
  const auto& z = zc.perf_log.back();
  const auto st = [](const obs::PerfReport& r, obs::PerfStage s) {
    return r.stage_cycles[static_cast<std::size_t>(static_cast<int>(s))];
  };
  // Without zerocopy: all copy, no pin/notify.
  EXPECT_GT(st(p, obs::PerfStage::TxUserCopy), 0.0);
  EXPECT_DOUBLE_EQ(st(p, obs::PerfStage::TxZcPin), 0.0);
  EXPECT_DOUBLE_EQ(st(p, obs::PerfStage::TxZcNotify), 0.0);
  // With zerocopy: attribution moves copy -> pin + notify.
  EXPECT_GT(st(z, obs::PerfStage::TxZcPin) + st(z, obs::PerfStage::TxZcNotify),
            st(z, obs::PerfStage::TxUserCopy));
  EXPECT_LT(st(z, obs::PerfStage::TxUserCopy), st(p, obs::PerfStage::TxUserCopy));
  // And the TX side got cheaper per byte overall (the paper's headline).
  EXPECT_LT(z.tx_cyc_per_byte(), p.tx_cyc_per_byte());
}

TEST(PerfAttribution, PacketAndFluidAgreeOnTxCyclesPerByte) {
  // Same host, same zerocopy setting: the two engines price TX bytes from
  // the same CostModel, so their cycles-per-byte must land in one band.
  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);

  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.perf_enabled = true;
  obs::Telemetry tel(tcfg);
  flow::PacketSimConfig pcfg;
  pcfg.sender = tb.sender;
  pcfg.receiver = tb.receiver;
  pcfg.path = tb.lan();
  pcfg.pacing_bps = units::gbps(20);
  pcfg.duration = units::SimTime::from_millis(20);
  pcfg.telemetry = &tel;
  (void)flow::run_packet_sim(pcfg);
  ASSERT_FALSE(tel.perf().log().empty());
  const auto& pkt = tel.perf().log().back();

  const auto fluid_run = Experiment(tb)
                             .duration(units::SimTime::from_seconds(3))
                             .repeats(1)
                             .perf()
                             .run();
  ASSERT_FALSE(fluid_run.perf_log.empty());
  const auto& fl = fluid_run.perf_log.back();

  // TX app only: the packet engine folds IRQ work into app service times
  // (its IRQ attribution is informational), and the fluid engine's
  // jitter/cache multipliers move per-run costs by tens of percent.
  const double pkt_tx =
      pkt.core_stage_cycles(obs::PerfCore::SndApp) / pkt.bytes_sent;
  const double fl_tx =
      fl.core_stage_cycles(obs::PerfCore::SndApp) / fl.bytes_sent;
  EXPECT_GT(pkt_tx, 0.0);
  EXPECT_GT(fl_tx, 0.0);
  EXPECT_LT(std::abs(pkt_tx - fl_tx) / fl_tx, 0.5);
}

TEST(PerfReportRender, FlamegraphIsCollapsedStackFormat) {
  const auto r = fig07_lan_cell().perf().run();
  ASSERT_FALSE(r.perf_log.empty());
  const std::string flame = obs::format_flamegraph(r.perf_log.back());
  ASSERT_FALSE(flame.empty());
  std::stringstream in(flame);
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ++lines;
    // Brendan Gregg collapsed format: frame;frame;frame COUNT
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    EXPECT_EQ(std::count(stack.begin(), stack.end(), ';'), 2) << line;
    EXPECT_EQ(stack.rfind("fluid;", 0), 0u) << line;
    const long long count = std::atoll(line.c_str() + space + 1);
    EXPECT_GT(count, 0) << line;
  }
  EXPECT_GE(lines, 8);  // plain run: everything except the 3 zc stages
  const std::string text = obs::format_perf_report(r.perf_log.back());
  EXPECT_NE(text.find("copy_user_enhanced_fast_string"), std::string::npos);
  EXPECT_NE(text.find("Children"), std::string::npos);
  EXPECT_NE(text.find("Self"), std::string::npos);
}

TEST(PerfReportRender, JsonRoundTripPreservesEveryField) {
  const auto r = fig07_lan_cell()
                     .streams(4)
                     .perf_watch(units::SimTime::from_seconds(2))
                     .run();
  ASSERT_GE(r.perf_log.size(), 2u);
  const auto doc = obs::perf_log_to_json(r.perf_log);
  const auto parsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  const auto back = obs::perf_log_from_json(*parsed);
  ASSERT_EQ(back.size(), r.perf_log.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    const auto& a = r.perf_log[i];
    const auto& b = back[i];
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.label, b.label);
    EXPECT_DOUBLE_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_DOUBLE_EQ(a.bytes_delivered, b.bytes_delivered);
    for (int s = 0; s < obs::kPerfStageCount; ++s) {
      EXPECT_DOUBLE_EQ(a.stage_cycles[static_cast<std::size_t>(s)],
                       b.stage_cycles[static_cast<std::size_t>(s)]);
    }
    for (int c = 0; c < obs::kPerfCoreCount; ++c) {
      EXPECT_DOUBLE_EQ(a.consumed_cycles[static_cast<std::size_t>(c)],
                       b.consumed_cycles[static_cast<std::size_t>(c)]);
      EXPECT_DOUBLE_EQ(a.capacity_cycles[static_cast<std::size_t>(c)],
                       b.capacity_cycles[static_cast<std::size_t>(c)]);
    }
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t f = 0; f < a.flows.size(); ++f) {
      EXPECT_EQ(a.flows[f].flow, b.flows[f].flow);
      EXPECT_EQ(a.flows[f].stage_cycles, b.flows[f].stage_cycles);
    }
    // A round-tripped report still passes the budget cross-check.
    EXPECT_NO_THROW(obs::cross_check_stage_sum(b));
  }
  // Per-flow rows decompose the totals: summed flow stages == report stages.
  const auto& last = r.perf_log.back();
  ASSERT_EQ(last.flows.size(), 4u);
  for (int s = 0; s < obs::kPerfStageCount; ++s) {
    double flow_sum = 0.0;
    for (const auto& f : last.flows)
      flow_sum += f.stage_cycles[static_cast<std::size_t>(s)];
    EXPECT_NEAR(flow_sum, last.stage_cycles[static_cast<std::size_t>(s)],
                1e-6 * std::max(flow_sum, 1.0));
  }
}

// The report JSON schema is a compatibility surface (dtnsim-perf --json
// consumers, the CI smoke). Golden lives in tests/golden/; lines are the
// sorted top-level keys plus one "stages.<name>" entry per stage.
TEST(PerfReportRender, ReportKeysMatchGolden) {
  const std::string golden_path =
      std::string(DTNSIM_SOURCE_DIR) + "/tests/golden/perf_report_keys.txt";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  std::vector<std::string> want;
  std::stringstream in(golden);
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) want.push_back(line);

  const auto j = obs::to_json(obs::PerfReport{});
  std::vector<std::string> got = j.keys();  // sorted
  const auto* stages = j.find("stages");
  ASSERT_NE(stages, nullptr);
  for (const auto& k : stages->keys()) got.push_back("stages." + k);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want) << "perf report schema changed; regenerate tests/"
                          "golden/perf_report_keys.txt (see docs/"
                          "OBSERVABILITY.md)";
}

TEST(PerfWatch, SamplingWithoutSourceThrows) {
  obs::Registry reg;
  obs::PerfWatch watch(&reg);
  EXPECT_FALSE(watch.has_source());
  EXPECT_THROW(watch.sample(0), std::logic_error);
}

TEST(PerfWatch, CrossCheckThrowsOnDivergence) {
  obs::PerfReport r;
  r.stage_cycles[static_cast<int>(obs::PerfStage::TxUserCopy)] = 1e9;
  r.consumed_cycles[static_cast<int>(obs::PerfCore::SndApp)] = 2e9;
  EXPECT_THROW(obs::cross_check_stage_sum(r), std::logic_error);
  r.consumed_cycles[static_cast<int>(obs::PerfCore::SndApp)] = 1e9;
  EXPECT_NO_THROW(obs::cross_check_stage_sum(r));
}

// ---- differential flamegraph (dtnsim-perf --flame --diff) ------------------

TEST(PerfFlamegraphDiff, DifffoldedShapeSkipsBothZeroStages) {
  obs::PerfReport before, after;
  before.engine = after.engine = "fluid";
  before.stage_cycles[static_cast<int>(obs::PerfStage::TxUserCopy)] = 100.0;
  after.stage_cycles[static_cast<int>(obs::PerfStage::TxUserCopy)] = 0.0;
  after.stage_cycles[static_cast<int>(obs::PerfStage::TxZcPin)] = 40.0;

  const auto out = obs::format_flamegraph_diff(before, after);
  // One line per stage live in either report: "stack before after".
  EXPECT_NE(out.find("fluid;snd_app;copy_user_enhanced_fast_string 100 0\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("fluid;snd_app;zerocopy_sg_from_iter 0 40\n"),
            std::string::npos);
  // Stages zero in both reports are omitted entirely.
  EXPECT_EQ(out.find("tcp_gso_segment"), std::string::npos);
  // Every line has exactly two counts (difffolded.pl shape).
  std::stringstream ss(out);
  for (std::string line; std::getline(ss, line);) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 2) << line;
  }
}

TEST(PerfFlamegraphDiff, CrossEngineDiffSharesTheRootFrame) {
  obs::PerfReport before, after;
  before.engine = "fluid";
  after.engine = "packet";
  before.stage_cycles[static_cast<int>(obs::PerfStage::TxUserCopy)] = 10.0;
  after.stage_cycles[static_cast<int>(obs::PerfStage::TxUserCopy)] = 20.0;
  const auto out = obs::format_flamegraph_diff(before, after);
  EXPECT_NE(out.find("dtnsim;snd_app;copy_user_enhanced_fast_string 10 20\n"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("fluid;"), std::string::npos);
  EXPECT_EQ(out.find("packet;"), std::string::npos);
}

}  // namespace
}  // namespace dtnsim
