// Unit tests: gnuplot figure emitters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dtnsim/harness/plot.hpp"

namespace dtnsim::harness {
namespace {

FigureSpec sample_fig() {
  FigureSpec fig;
  fig.id = "figX";
  fig.title = "Sample";
  fig.categories = {"LAN", "WAN 25ms"};
  fig.series = {{"default", {55.0, 36.0}, {1.2, 1.5}},
                {"zc+pace", {50.0, 49.5}, {0.1, 0.2}}};
  return fig;
}

TEST(Plot, DataLayout) {
  const std::string dat = to_gnuplot_data(sample_fig());
  EXPECT_NE(dat.find("\"LAN\"\t55.0000\t1.2000\t50.0000\t0.1000"), std::string::npos);
  EXPECT_NE(dat.find("\"WAN 25ms\"\t36.0000\t1.5000\t49.5000\t0.2000"),
            std::string::npos);
}

TEST(Plot, ScriptReferencesAllSeries) {
  const std::string gp = to_gnuplot_script(sample_fig());
  EXPECT_NE(gp.find("set output 'figX.png'"), std::string::npos);
  EXPECT_NE(gp.find("histogram errorbars"), std::string::npos);
  EXPECT_NE(gp.find("using 2:3:xtic(1) title 'default'"), std::string::npos);
  EXPECT_NE(gp.find("using 4:5:xtic(1) title 'zc+pace'"), std::string::npos);
}

TEST(Plot, WritesFiles) {
  ASSERT_TRUE(write_figure(sample_fig(), "/tmp"));
  for (const char* suffix : {".dat", ".gp"}) {
    const std::string path = std::string("/tmp/figX") + suffix;
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::remove(path.c_str());
  }
  EXPECT_FALSE(write_figure(sample_fig(), "/no-such-dir-xyz"));
}

TEST(Plot, FromResultsRowMajor) {
  std::vector<TestResult> results(4);
  results[0].avg_gbps = 1;  // series A, cat 0
  results[1].avg_gbps = 2;  // series A, cat 1
  results[2].avg_gbps = 3;  // series B, cat 0
  results[3].avg_gbps = 4;
  results[3].stdev_gbps = 0.5;
  const auto fig =
      figure_from_results("f", "t", {"c0", "c1"}, {"A", "B"}, results);
  ASSERT_EQ(fig.series.size(), 2u);
  EXPECT_EQ(fig.series[0].values, (std::vector<double>{1, 2}));
  EXPECT_EQ(fig.series[1].values, (std::vector<double>{3, 4}));
  EXPECT_DOUBLE_EQ(fig.series[1].errors[1], 0.5);
}

TEST(Plot, FromResultsSizeMismatchThrows) {
  EXPECT_THROW(figure_from_results("f", "t", {"c0"}, {"A", "B"}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dtnsim::harness
