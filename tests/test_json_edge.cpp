// Edge-case tests: Json parser hardening (depth limit boundary, NaN/Inf
// rejection, truncated cache files) and unit-typed value round-trips — the
// properties the sweep result cache leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "dtnsim/units/units.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim {
namespace {

std::string nested_arrays(int n) {
  std::string s;
  for (int i = 0; i < n; ++i) s += '[';
  for (int i = 0; i < n; ++i) s += ']';
  return s;
}

std::string nested_objects(int n) {
  std::string s;
  for (int i = 0; i < n; ++i) s += "{\"k\":";
  s += "0";
  for (int i = 0; i < n; ++i) s += '}';
  return s;
}

// The parser admits values at depth 0..64 inclusive: 65 nested arrays put
// the innermost at depth 64 (accepted); 66 push to 65 (rejected). The exact
// boundary is load-bearing — a regressing parser either stack-overflows on
// hostile input or starts rejecting legitimately deep sweep manifests.
TEST(JsonDepth, ExactBoundary) {
  EXPECT_TRUE(Json::parse(nested_arrays(65)).has_value());
  EXPECT_FALSE(Json::parse(nested_arrays(66)).has_value());
  // The object chain bottoms out in a number one level below the innermost
  // object, so its boundary sits one shallower than the empty-array chain.
  EXPECT_TRUE(Json::parse(nested_objects(64)).has_value());
  EXPECT_FALSE(Json::parse(nested_objects(65)).has_value());
}

TEST(JsonDepth, WayBeyondLimitDoesNotCrash) {
  EXPECT_FALSE(Json::parse(nested_arrays(10000)).has_value());
}

TEST(JsonNonFinite, LiteralsRejected) {
  for (const char* text : {"NaN", "nan", "Infinity", "-Infinity", "inf", "-inf"}) {
    EXPECT_FALSE(Json::parse(text).has_value()) << text;
  }
}

TEST(JsonNonFinite, OverflowingLiteralsRejected) {
  // strtod("1e999") yields +inf; the parser must not admit it as a number.
  EXPECT_FALSE(Json::parse("1e999").has_value());
  EXPECT_FALSE(Json::parse("-1e999").has_value());
  EXPECT_FALSE(Json::parse("{\"v\": 1e999}").has_value());
  // Large-but-finite still parses.
  EXPECT_TRUE(Json::parse("1e308").has_value());
}

TEST(JsonNonFinite, NonFiniteNumbersDoNotRoundTrip) {
  // Dumping a NaN/Inf produces text the parser rejects — a poisoned cache
  // entry reads as a miss, not as a corrupt result.
  EXPECT_FALSE(Json::parse(Json(std::nan("")).dump()).has_value());
  EXPECT_FALSE(Json::parse(Json(std::numeric_limits<double>::infinity()).dump()).has_value());
}

TEST(JsonTruncated, EveryPrefixFailsCleanly) {
  // A kill mid-write leaves an arbitrary prefix on disk; each one must load
  // as nullopt (cache miss), never crash or return a partial document.
  const std::string doc =
      "{\"name\": \"cell\", \"avg_gbps\": 98.7, \"flags\": [true, false, null], "
      "\"nested\": {\"retr\": 1234, \"range\": [9.0, 16.0]}}";
  ASSERT_TRUE(Json::parse(doc).has_value());
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_FALSE(Json::parse(doc.substr(0, len)).has_value()) << "prefix len " << len;
  }
}

TEST(JsonTruncated, DanglingTokens) {
  for (const char* text : {"tru", "fals", "nul", "12e", "-", "\"abc", "{\"a\"", "[1,", "{\"a\":"}) {
    EXPECT_FALSE(Json::parse(text).has_value()) << text;
  }
}

TEST(JsonTruncated, TrailingGarbageRejected) {
  EXPECT_FALSE(Json::parse("{} x").has_value());
  EXPECT_FALSE(Json::parse("[1] [2]").has_value());
  EXPECT_TRUE(Json::parse("{}  \n\t ").has_value());  // trailing ws is fine
}

// Unit-typed values ride through Json as raw doubles (.value()/.bps()/...)
// and must reconstruct bit-identically — a cached sweep cell and a freshly
// simulated one have to compare equal.
TEST(JsonUnits, StrongTypesRoundTripExactly) {
  Json j = Json::object();
  j["optmem"] = Json(units::Bytes::kib(3325.5).value());
  j["pacing"] = Json(units::Rate::from_gbps(98.7).bps());
  j["duration_ns"] = Json(static_cast<std::int64_t>(
      units::SimTime::from_seconds(60).nanos()));
  j["gso"] = Json(units::Bytes(150.0 * 1024.0 + 0.25).value());

  const auto back = Json::parse(j.dump());
  ASSERT_TRUE(back.has_value());

  const units::Bytes optmem{back->number_at("optmem", -1)};
  const auto pacing = units::Rate::from_bps(back->number_at("pacing", -1));
  const auto duration = units::SimTime::from_nanos(
      static_cast<Nanos>(back->number_at("duration_ns", -1)));
  const units::Bytes gso{back->number_at("gso", -1)};

  EXPECT_EQ(optmem, units::Bytes::kib(3325.5));
  EXPECT_EQ(pacing, units::Rate::from_gbps(98.7));
  EXPECT_EQ(duration.nanos(), units::seconds(60));
  EXPECT_EQ(gso.value(), 150.0 * 1024.0 + 0.25);
}

TEST(JsonUnits, PrettyPrintRoundTripsToo) {
  Json j = Json::object();
  j["rate"] = Json(units::Rate::from_mbps(123.456).bps());
  const auto back = Json::parse(j.dump(2));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->number_at("rate", -1), units::Rate::from_mbps(123.456).bps());
}

}  // namespace
}  // namespace dtnsim
