// Integration tests: single-stream paper anchors (Figs. 5-9, 12, 13).
//
// Shorter runs (20 s x 3) than the paper's 60 s x 10 keep CI fast; the
// tolerances absorb the extra ramp-up share.
#include <gtest/gtest.h>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim {
namespace {

harness::TestResult quick(Experiment e) {
  return e.duration(units::SimTime::from_seconds(20)).repeats(3).run();
}

// ---- Fig. 5 / Fig. 6 anchors ----

TEST(SingleStream, IntelLanDefaultNear55) {
  const auto r = quick(Experiment(harness::amlight()));
  EXPECT_NEAR(r.avg_gbps, 55.0, 4.0);
}

TEST(SingleStream, AmdLanDefaultNear42) {
  const auto r = quick(Experiment(harness::esnet()));
  EXPECT_NEAR(r.avg_gbps, 42.0, 3.5);
}

TEST(SingleStream, IntelBeatsAmdOnLan) {
  // The paper's AVX-512 / L3 architecture observation.
  const auto intel = quick(Experiment(harness::amlight()));
  const auto amd = quick(Experiment(harness::esnet()));
  EXPECT_GT(intel.avg_gbps, amd.avg_gbps * 1.15);
}

TEST(SingleStream, WanDefaultWellBelowLan) {
  const auto lan = quick(Experiment(harness::amlight()));
  const auto wan = quick(Experiment(harness::amlight()).path("WAN 104ms"));
  EXPECT_LT(wan.avg_gbps, lan.avg_gbps * 0.75);
}

TEST(SingleStream, ZerocopyAloneDoesNotHelp) {
  const auto def = quick(Experiment(harness::amlight()).path("WAN 54ms"));
  const auto zc = quick(Experiment(harness::amlight()).path("WAN 54ms").zerocopy());
  EXPECT_NEAR(zc.avg_gbps, def.avg_gbps, def.avg_gbps * 0.18);
}

TEST(SingleStream, ZerocopyPlusPacingUpTo35PercentOnWan) {
  const auto def = quick(Experiment(harness::amlight()).path("WAN 54ms"));
  const auto zcp =
      quick(Experiment(harness::amlight()).path("WAN 54ms").zerocopy().pacing(units::Rate::from_gbps(50)));
  const double gain = zcp.avg_gbps / def.avg_gbps;
  EXPECT_GT(gain, 1.20);
  EXPECT_LT(gain, 1.55);
  EXPECT_NEAR(zcp.avg_gbps, 50.0, 4.0);  // pinned at the pacing rate
}

TEST(SingleStream, ZerocopyPacingFlatAcrossRtt) {
  // "with proper tuning, single stream throughput is identical on all paths"
  double prev = -1;
  for (const char* path : {"WAN 25ms", "WAN 54ms"}) {
    const auto r = quick(Experiment(harness::amlight())
                             .path(path)
                             .zerocopy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(3405376)));
    EXPECT_NEAR(r.avg_gbps, 49.0, 2.5) << path;
    if (prev > 0) {
      EXPECT_NEAR(r.avg_gbps, prev, 2.0);
    }
    prev = r.avg_gbps;
  }
}

TEST(SingleStream, BigTcpModestGain) {
  const auto def = quick(Experiment(harness::amlight()));
  const auto big = quick(Experiment(harness::amlight()).big_tcp(true));
  const double gain = big.avg_gbps / def.avg_gbps;
  EXPECT_GT(gain, 1.05);
  EXPECT_LT(gain, 1.25);  // paper: "up to 16%"
}

TEST(SingleStream, BigTcpNoopOn515) {
  const auto def = quick(Experiment(harness::amlight()).kernel(kern::KernelVersion::V5_15));
  const auto big = quick(
      Experiment(harness::amlight()).kernel(kern::KernelVersion::V5_15).big_tcp(true));
  EXPECT_NEAR(big.avg_gbps, def.avg_gbps, def.avg_gbps * 0.03);
}

TEST(SingleStream, EsnetZerocopyPacingRecoversWan) {
  // Fig. 6: 85% improvement on the ESnet WAN, matching LAN.
  const auto def = quick(Experiment(harness::esnet()).path("WAN 63ms"));
  const auto zcp =
      quick(Experiment(harness::esnet()).path("WAN 63ms").zerocopy().pacing(units::Rate::from_gbps(40)));
  EXPECT_GT(zcp.avg_gbps / def.avg_gbps, 1.5);
  const auto lan = quick(Experiment(harness::esnet()));
  EXPECT_NEAR(zcp.avg_gbps, lan.avg_gbps, 5.0);  // "matching the LAN test"
}

// ---- Fig. 7 / Fig. 8: CPU shapes ----

TEST(CpuShape, ZerocopyPacingDropsSenderCpu) {
  const auto def = quick(Experiment(harness::amlight()).path("WAN 25ms"));
  const auto zcp = quick(Experiment(harness::amlight())
                             .path("WAN 25ms")
                             .zerocopy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(3405376)));
  EXPECT_GT(def.snd_cpu_pct, 82.0);          // sender-bound default WAN
  EXPECT_LT(zcp.snd_cpu_pct, def.snd_cpu_pct * 0.6);
  EXPECT_GT(zcp.rcv_cpu_pct, zcp.snd_cpu_pct);  // receiver becomes the bottleneck
}

// ---- Fig. 9: optmem sweep ----

TEST(Optmem, DefaultOptmemCripplesWanZerocopy) {
  const auto small = quick(Experiment(harness::amlight())
                               .kernel(kern::KernelVersion::V6_5)
                               .path("WAN 25ms")
                               .zerocopy()
                               .pacing(units::Rate::from_gbps(50))
                               .optmem_max(units::Bytes(20480)));
  EXPECT_LT(small.avg_gbps, 38.0);     // far below the 50G pacing rate
  EXPECT_GT(small.snd_cpu_pct, 90.0);  // "completely CPU limited on the sender"
}

TEST(Optmem, MonotoneAcrossPaperValues) {
  double prev = 0;
  for (const double om : {20480.0, 1048576.0, 3405376.0}) {
    const auto r = quick(Experiment(harness::amlight())
                             .kernel(kern::KernelVersion::V6_5)
                             .path("WAN 104ms")
                             .zerocopy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(om)));
    EXPECT_GE(r.avg_gbps, prev - 1.0);
    prev = r.avg_gbps;
  }
  EXPECT_GT(prev, 42.0);  // 3.25 MB covers the 104 ms path
}

TEST(Optmem, LanUnaffectedBySmallOptmem) {
  // Tiny in-flight windows on the LAN: even 20 KB suffices.
  const auto r = quick(Experiment(harness::amlight())
                           .zerocopy()
                           .pacing(units::Rate::from_gbps(50))
                           .optmem_max(units::Bytes(20480)));
  EXPECT_GT(r.avg_gbps, 44.0);
}

TEST(Optmem, BigOptmemCutsSenderCpu) {
  const auto mid = quick(Experiment(harness::amlight())
                             .path("WAN 104ms")
                             .zerocopy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(1048576)));
  const auto big = quick(Experiment(harness::amlight())
                             .path("WAN 104ms")
                             .zerocopy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(3405376)));
  EXPECT_LT(big.snd_cpu_pct, mid.snd_cpu_pct * 0.75);
}

// ---- Figs. 12/13: kernel versions ----

TEST(Kernels, AmdGainsMatchPaper) {
  const auto r515 = quick(Experiment(harness::esnet()).kernel(kern::KernelVersion::V5_15));
  const auto r65 = quick(Experiment(harness::esnet()).kernel(kern::KernelVersion::V6_5));
  const auto r68 = quick(Experiment(harness::esnet()).kernel(kern::KernelVersion::V6_8));
  EXPECT_NEAR(r65.avg_gbps / r515.avg_gbps, 1.12, 0.05);  // Fig. 12: +12%
  EXPECT_NEAR(r68.avg_gbps / r65.avg_gbps, 1.17, 0.05);   // Fig. 12: +17%
}

TEST(Kernels, IntelLan27PercentTotal) {
  const auto r515 =
      quick(Experiment(harness::amlight()).kernel(kern::KernelVersion::V5_15));
  const auto r68 = quick(Experiment(harness::amlight()).kernel(kern::KernelVersion::V6_8));
  EXPECT_NEAR(r68.avg_gbps / r515.avg_gbps, 1.27, 0.06);  // Fig. 13
}

TEST(Kernels, WanPacedInsensitiveToKernel) {
  // Fig. 13: "Single stream WAN performance was the same for all kernels",
  // pinned at the 50G pacing rate (receiver relieved via --skip-rx-copy).
  double prev = -1;
  for (const auto k : {kern::KernelVersion::V5_15, kern::KernelVersion::V6_8}) {
    const auto r = quick(Experiment(harness::amlight())
                             .kernel(k)
                             .path("WAN 25ms")
                             .zerocopy()
                             .skip_rx_copy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(3405376)));
    if (prev > 0) {
      EXPECT_NEAR(r.avg_gbps, prev, 2.5);
    }
    prev = r.avg_gbps;
  }
}

// ---- Fig. 4: VM vs bare metal ----

TEST(Vm, TunedVmWithinStddevOfBareMetal) {
  for (const char* path : {"LAN", "WAN 54ms"}) {
    const auto bm = quick(Experiment(harness::amlight_baremetal()).path(path));
    const auto vm = quick(
        Experiment(harness::amlight_vm(kern::KernelVersion::V5_10)).path(path));
    EXPECT_NEAR(vm.avg_gbps, bm.avg_gbps, bm.avg_gbps * 0.08) << path;
  }
}

}  // namespace
}  // namespace dtnsim
