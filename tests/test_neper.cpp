// Unit tests: the neper-like tool model.
#include <gtest/gtest.h>

#include "dtnsim/app/iperf.hpp"
#include "dtnsim/app/neper.hpp"
#include "dtnsim/harness/testbeds.hpp"

namespace dtnsim::app {
namespace {

NeperReport run_neper(const NeperOptions& opts) {
  const auto tb = harness::esnet();
  return NeperTool().run(tb.sender, tb.receiver, tb.lan(), opts);
}

TEST(Neper, BasicStreamRuns) {
  NeperOptions o;
  o.test_length_sec = 5;
  const auto rep = run_neper(o);
  EXPECT_GT(rep.throughput_gbps, 30.0);
  EXPECT_EQ(rep.flow_gbps.size(), 1u);
}

TEST(Neper, WarmupExcluded) {
  // With a long warm-up relative to the run, the reported (post-warm-up)
  // rate exceeds the whole-run average, which includes slow start.
  const auto tb = harness::esnet();
  NeperOptions o;
  o.test_length_sec = 4;
  o.warmup_sec = 2;
  const auto rep = NeperTool().run(tb.sender, tb.receiver,
                                   tb.path_named("WAN 63ms"), o);
  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.path_named("WAN 63ms");
  cfg.duration = units::SimTime::from_seconds(6);
  cfg.seed = 1;
  const double whole_run = units::to_gbps(flow::run_transfer(cfg).throughput_bps);
  EXPECT_GT(rep.throughput_gbps, whole_run);
}

TEST(Neper, MultiFlowWithPacing) {
  NeperOptions o;
  o.num_flows = 4;
  o.max_pacing_rate_bps = units::gbps(8);
  o.test_length_sec = 5;
  const auto rep = run_neper(o);
  EXPECT_EQ(rep.flow_gbps.size(), 4u);
  EXPECT_NEAR(rep.throughput_gbps, 32.0, 3.0);
  for (double g : rep.flow_gbps) EXPECT_LE(g, 8.2);
}

TEST(Neper, ZerocopyCutsLocalCpu) {
  NeperOptions copy;
  copy.max_pacing_rate_bps = units::gbps(30);
  copy.test_length_sec = 5;
  const auto a = run_neper(copy);
  NeperOptions zc = copy;
  zc.zerocopy = true;
  const auto b = run_neper(zc);
  EXPECT_LT(b.local_cpu_pct, a.local_cpu_pct * 0.6);
}

TEST(Neper, SkipRxCopyCutsRemoteCpu) {
  NeperOptions o;
  o.test_length_sec = 5;
  const auto with_copy = run_neper(o);
  o.skip_rx_copy = true;
  const auto no_copy = run_neper(o);
  EXPECT_LT(no_copy.remote_cpu_pct, with_copy.remote_cpu_pct);
}

TEST(Neper, KeyValueOutputShape) {
  NeperOptions o;
  o.num_flows = 2;
  o.test_length_sec = 3;
  const auto rep = run_neper(o);
  const std::string kv = rep.to_key_value();
  EXPECT_NE(kv.find("throughput_Mbps="), std::string::npos);
  EXPECT_NE(kv.find("num_flows=2"), std::string::npos);
  EXPECT_NE(kv.find("flow_0_Mbps="), std::string::npos);
  EXPECT_NE(kv.find("flow_1_Mbps="), std::string::npos);
  EXPECT_NE(kv.find("local_cpu_percent="), std::string::npos);
}

TEST(Neper, AgreesWithIperfOnHeadlineResult) {
  // Tool-independence check: neper and the iperf3 model should agree on the
  // zerocopy+pacing WAN experiment within a few percent.
  const auto tb = harness::amlight();
  NeperOptions n;
  n.zerocopy = true;
  n.max_pacing_rate_bps = units::gbps(50);
  n.test_length_sec = 15;
  n.warmup_sec = 2;
  const auto neper = NeperTool().run(tb.sender, tb.receiver,
                                     tb.path_named("WAN 54ms"), n);
  IperfOptions i;
  i.zerocopy = true;
  i.fq_rate_bps = units::gbps(50);
  i.duration_sec = 17;
  const auto iperf = IperfTool().run(tb.sender, tb.receiver,
                                     tb.path_named("WAN 54ms"), i);
  EXPECT_NEAR(neper.throughput_gbps, iperf.sum_received_gbps, 3.0);
}

}  // namespace
}  // namespace dtnsim::app
