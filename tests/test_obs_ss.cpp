// Kernel-eye snapshots (dtnsim-ss): field consistency against the shared
// Registry, the Fig. 9 zerocopy/optmem pathology and its tuned clearing,
// NIC/qdisc counter monotonicity under --watch, JSON round-trips through
// Json::parse, the zero-cost-when-disabled guarantee, and the snapshot key
// schema golden (tests/golden/ss_snapshot_keys.txt).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/core/dtnsim.hpp"
#include "dtnsim/flow/packet_sim.hpp"
#include "dtnsim/obs/ss.hpp"

namespace dtnsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The paper's Fig. 9 cell: AmLight WAN 104 ms, kernel 6.5, zerocopy, paced
// at 50G. At the default 20 KB optmem the sender silently copies; at
// ~3.25 MB the path's worth of in-flight charges fits and zerocopy holds.
Experiment fig09_cell(double optmem_bytes) {
  return Experiment(harness::amlight(kern::KernelVersion::V6_5))
      .path("WAN 104ms")
      .zerocopy()
      .pacing(units::Rate::from_gbps(50))
      .optmem_max(units::Bytes(optmem_bytes))
      .duration(units::SimTime::from_seconds(5))
      .repeats(1);
}

TEST(SsSnapshot, Fig09PathologyAtDefaultOptmemClearsWhenTuned) {
  const auto sick = fig09_cell(20480).ss().run();
  ASSERT_FALSE(sick.ss_log.empty());
  const auto& s = sick.ss_log.back().sockets.at(0);
  // The knee: optmem pinned at its cap, most zc traffic degraded to copies.
  EXPECT_DOUBLE_EQ(s.optmem_max_bytes, 20480.0);
  EXPECT_DOUBLE_EQ(s.optmem_hiwater_bytes, 20480.0);
  EXPECT_GT(s.zc_copied_bytes, s.zc_sent_bytes);
  EXPECT_GT(s.zc_copied_sends, 0.0);
  EXPECT_GT(sick.zc_fallback_ratio, 0.5);

  const auto tuned = fig09_cell(3405376).ss().run();
  ASSERT_FALSE(tuned.ss_log.empty());
  const auto& t = tuned.ss_log.back().sockets.at(0);
  // Tuned: the in-flight charge floats below the cap and nothing falls back.
  EXPECT_DOUBLE_EQ(t.zc_copied_bytes, 0.0);
  EXPECT_DOUBLE_EQ(t.zc_copied_sends, 0.0);
  EXPECT_GT(t.zc_sent_bytes, 0.0);
  EXPECT_LT(t.optmem_hiwater_bytes, t.optmem_max_bytes);
  EXPECT_GT(tuned.avg_gbps, sick.avg_gbps);
}

TEST(SsSnapshot, FieldsConsistentWithRegistryAndProbe) {
  // One in-process fluid run so the Telemetry (and its Registry) is ours to
  // inspect next to the snapshot log.
  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.ss_enabled = true;
  tcfg.ss_interval = units::seconds(1);
  obs::Telemetry tel(tcfg);

  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.streams = 4;
  cfg.duration = units::SimTime::from_seconds(3);
  cfg.telemetry = &tel;
  const auto res = flow::run_transfer(cfg);

  const auto& log = tel.ss().log();
  ASSERT_GE(log.size(), 3u);  // watch samples at 1s, 2s + the final one
  const auto& last = log.back();
  EXPECT_EQ(last.engine, "fluid");
  ASSERT_EQ(last.sockets.size(), 4u);

  // ss's bytes_acked and the probe-facing delivered-bytes counter are two
  // views of the same events (this is the cross-check link_ss_cross_check
  // enforces at every coincident probe/watch firing during the run).
  EXPECT_NO_THROW(obs::cross_check_delivered(last, tel.registry()));
  EXPECT_NEAR(last.total_bytes_acked(), tel.registry().value_of("flow.delivered_bytes"),
              1e-6 * last.total_bytes_acked());
  // delivery_rate mirrors the per-flow goodput gauges.
  for (const auto& sock : last.sockets) {
    const double gauge = tel.registry().value_of(
        obs::labeled_name("flow.goodput_bps", "flow", sock.flow));
    EXPECT_NEAR(sock.delivery_rate_bps, gauge, 1e-6 * gauge) << sock.flow;
    EXPECT_GT(sock.snd_cwnd_bytes, 0.0);
    EXPECT_GT(sock.rtt_sec, 0.0);
    EXPECT_GE(sock.rtt_sec, sock.min_rtt_sec);
  }
  // The ss.* mirror gauges carry the headline figures.
  EXPECT_DOUBLE_EQ(tel.registry().value_of("ss.sockets"), 4.0);
  EXPECT_NEAR(tel.registry().value_of("ss.delivery_rate_bps"),
              last.total_delivery_rate_bps(), 1e-6 * last.total_delivery_rate_bps());
  // Aggregate sanity against the run's own result (goodput x time = bytes;
  // loose bound — throughput is drain-side, bytes_acked is delivery-side).
  EXPECT_NEAR(last.total_bytes_acked(), res.throughput_bps * res.duration_sec / 8.0,
              1e-2 * last.total_bytes_acked());
}

TEST(SsSnapshot, WatchCountersAreMonotonic) {
  const auto r = fig09_cell(3405376).ss_watch(units::SimTime::from_seconds(1)).run();
  ASSERT_GE(r.ss_log.size(), 4u);  // 1..4 s watch + final
  for (std::size_t i = 1; i < r.ss_log.size(); ++i) {
    const auto& prev = r.ss_log[i - 1];
    const auto& cur = r.ss_log[i];
    EXPECT_GT(cur.ts, prev.ts);
    // Cumulative NIC counters never move backwards...
    EXPECT_GE(cur.nic.rx_bytes, prev.nic.rx_bytes);
    EXPECT_GE(cur.nic.rx_dropped_bytes, prev.nic.rx_dropped_bytes);
    EXPECT_GE(cur.nic.hw_gro_coalesced, prev.nic.hw_gro_coalesced);
    // ...nor do the qdisc's.
    EXPECT_GE(cur.qdisc.sent_bytes, prev.qdisc.sent_bytes);
    EXPECT_GE(cur.qdisc.throttled, prev.qdisc.throttled);
    EXPECT_GE(cur.qdisc.pacing_delay_sec, prev.qdisc.pacing_delay_sec);
    // ...and per-socket lifetime counters.
    EXPECT_GE(cur.sockets.at(0).bytes_acked, prev.sockets.at(0).bytes_acked);
    EXPECT_GE(cur.sockets.at(0).optmem_hiwater_bytes,
              prev.sockets.at(0).optmem_hiwater_bytes);
  }
  // A 50G paced run on a 100G link is qdisc-throttled; the fq counters say so.
  EXPECT_GT(r.ss_log.back().qdisc.throttled, 0.0);
  EXPECT_GT(r.ss_log.back().qdisc.pacing_delay_sec, 0.0);
  EXPECT_EQ(r.ss_log.back().qdisc.kind, "fq");
}

TEST(SsSnapshot, PacketEngineSnapshotAgreesWithResult) {
  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.ss_enabled = true;
  obs::Telemetry tel(tcfg);

  flow::PacketSimConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.duration = units::SimTime::from_millis(20);
  cfg.pacing_bps = units::gbps(10);
  cfg.window_bytes = 64e6;
  cfg.telemetry = &tel;
  const auto res = flow::run_packet_sim(cfg);

  ASSERT_EQ(tel.ss().samples_taken(), 1u);  // final snapshot only
  const auto& rep = tel.ss().log().front();
  EXPECT_EQ(rep.engine, "packet");
  ASSERT_EQ(rep.sockets.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.sockets[0].bytes_acked, res.delivered_bytes);
  EXPECT_NO_THROW(obs::cross_check_delivered(rep, tel.registry()));
  EXPECT_GT(rep.nic.rx_bytes, 0.0);
  EXPECT_GT(rep.qdisc.sent_bytes, 0.0);
}

TEST(SsSnapshot, JsonRoundTripsThroughParser) {
  const auto r = fig09_cell(20480).ss_watch(units::SimTime::from_seconds(2)).run();
  ASSERT_GE(r.ss_log.size(), 2u);

  const std::string text = obs::ss_log_to_json(r.ss_log).dump(2);
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto back = obs::ss_log_from_json(*doc);
  ASSERT_EQ(back.size(), r.ss_log.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    const auto& a = r.ss_log[i];
    const auto& b = back[i];
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.engine, b.engine);
    ASSERT_EQ(a.sockets.size(), b.sockets.size());
    for (std::size_t f = 0; f < a.sockets.size(); ++f) {
      EXPECT_EQ(a.sockets[f].flow, b.sockets[f].flow);
      EXPECT_DOUBLE_EQ(a.sockets[f].bytes_acked, b.sockets[f].bytes_acked);
      EXPECT_DOUBLE_EQ(a.sockets[f].zc_copied_bytes, b.sockets[f].zc_copied_bytes);
      EXPECT_DOUBLE_EQ(a.sockets[f].rtt_sec, b.sockets[f].rtt_sec);
      EXPECT_EQ(a.sockets[f].in_slow_start, b.sockets[f].in_slow_start);
    }
    EXPECT_DOUBLE_EQ(a.nic.rx_bytes, b.nic.rx_bytes);
    EXPECT_EQ(a.nic.device, b.nic.device);
    EXPECT_DOUBLE_EQ(a.qdisc.throttled, b.qdisc.throttled);
    EXPECT_EQ(a.qdisc.kind, b.qdisc.kind);
  }
  // The text renderer shows the pathology an operator would look for.
  const auto& last = r.ss_log.back();
  const std::string pretty = obs::format_ss(last);
  EXPECT_NE(pretty.find("zerocopy:"), std::string::npos);
  EXPECT_NE(pretty.find("optmem"), std::string::npos);
  EXPECT_NE(pretty.find("cubic"), std::string::npos);
}

// The snapshot JSON schema is a compatibility surface (dtnsim-ss --json
// consumers, the CI smoke). Golden lives in tests/golden/; regenerate by
// dumping to_json(TcpInfoSnapshot{}).keys() one per line.
TEST(SsSnapshot, TcpInfoKeysMatchGolden) {
  const std::string golden_path =
      std::string(DTNSIM_SOURCE_DIR) + "/tests/golden/ss_snapshot_keys.txt";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  std::vector<std::string> want;
  std::stringstream in(golden);
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) want.push_back(line);

  const auto keys = obs::to_json(obs::TcpInfoSnapshot{}).keys();  // sorted
  EXPECT_EQ(keys, want) << "snapshot schema changed; regenerate tests/golden/"
                           "ss_snapshot_keys.txt (see docs/OBSERVABILITY.md)";
}

TEST(SsSnapshot, DisabledSsLeavesRunBitIdentical) {
  // The acceptance bar: arming snapshots must not perturb the simulation.
  const auto base = fig09_cell(20480).run();
  const auto with_ss = fig09_cell(20480).ss_watch(units::SimTime::from_seconds(1)).run();
  EXPECT_DOUBLE_EQ(base.avg_gbps, with_ss.avg_gbps);
  EXPECT_DOUBLE_EQ(base.avg_retransmits, with_ss.avg_retransmits);
  EXPECT_DOUBLE_EQ(base.zc_fallback_ratio, with_ss.zc_fallback_ratio);
  EXPECT_DOUBLE_EQ(base.snd_cpu_pct, with_ss.snd_cpu_pct);
  EXPECT_TRUE(base.ss_log.empty());
  EXPECT_FALSE(with_ss.ss_log.empty());
}

TEST(SsWatch, SamplingWithoutSourceThrows) {
  obs::Registry reg;
  obs::SsWatch watch(&reg);
  EXPECT_FALSE(watch.has_source());
  EXPECT_THROW(watch.sample(0), std::logic_error);
}

}  // namespace
}  // namespace dtnsim
