// Parameterized property tests: invariants that must hold across the whole
// configuration space, swept with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <tuple>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim {
namespace {

flow::TransferConfig base_config(const harness::Testbed& tb, const net::PathSpec& path) {
  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = path;
  cfg.duration = units::SimTime::from_seconds(8);
  cfg.seed = 17;
  return cfg;
}

// ---------------------------------------------------------------- sweep 1
// Across (testbed, path, streams, pacing, zerocopy): conservation and
// sanity invariants of a full transfer.

struct SweepParam {
  bool esnet;
  int path_index;
  int streams;
  double pace_gbps;
  bool zerocopy;
};

class TransferInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TransferInvariants, HoldsEverywhere) {
  const auto p = GetParam();
  const auto tb = p.esnet ? harness::esnet() : harness::amlight();
  ASSERT_LT(static_cast<std::size_t>(p.path_index), tb.paths.size());
  auto cfg = base_config(tb, tb.paths[static_cast<std::size_t>(p.path_index)]);
  cfg.streams = p.streams;
  cfg.flow.fq_rate_bps = units::gbps(p.pace_gbps);
  cfg.flow.zerocopy = p.zerocopy;
  const auto res = flow::run_transfer(cfg);

  // Throughput is positive and below the NIC line rate.
  EXPECT_GT(res.throughput_bps, 0.0);
  EXPECT_LE(res.throughput_bps, tb.sender.nic.line_rate_bps * 1.001);

  // Pacing is an upper bound per stream.
  if (p.pace_gbps > 0) {
    for (double f : res.per_flow_bps) {
      EXPECT_LE(units::to_gbps(f), p.pace_gbps * 1.02);
    }
  }

  // Per-flow rates sum to the total.
  double sum = 0;
  for (double f : res.per_flow_bps) sum += f;
  EXPECT_NEAR(sum, res.throughput_bps, res.throughput_bps * 1e-6 + 1.0);

  // Counters are non-negative and utilizations bounded.
  EXPECT_GE(res.retransmit_segments, 0.0);
  EXPECT_GE(res.dropped_bytes_nic, 0.0);
  EXPECT_GE(res.dropped_bytes_path, 0.0);
  EXPECT_LE(res.sender_cpu.app_util, 1.0 + 1e-9);
  EXPECT_LE(res.receiver_cpu.app_util, 1.0 + 1e-9);

  // Zerocopy accounting only reports bytes when requested.
  if (!p.zerocopy) {
    EXPECT_DOUBLE_EQ(res.zc_bytes, 0.0);
    EXPECT_DOUBLE_EQ(res.zc_fallback_bytes, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, TransferInvariants,
    ::testing::Values(
        SweepParam{false, 0, 1, 0, false}, SweepParam{false, 0, 1, 50, true},
        SweepParam{false, 1, 1, 0, false}, SweepParam{false, 1, 1, 50, true},
        SweepParam{false, 2, 1, 0, true}, SweepParam{false, 3, 8, 9, true},
        SweepParam{false, 3, 8, 0, false}, SweepParam{true, 0, 1, 0, false},
        SweepParam{true, 0, 8, 25, false}, SweepParam{true, 1, 8, 15, false},
        SweepParam{true, 1, 8, 0, true}, SweepParam{true, 1, 1, 40, true}));

// ---------------------------------------------------------------- sweep 2
// Pacing monotonicity: deeper per-flow pacing never yields more throughput,
// and the achieved rate never exceeds streams x pace.

class PacingMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(PacingMonotonic, ThroughputBoundedByPace) {
  const int streams = GetParam();
  const auto tb = harness::esnet();
  double prev = 1e18;
  for (const double pace : {25.0, 20.0, 15.0, 10.0, 5.0}) {
    auto cfg = base_config(tb, tb.lan());
    cfg.streams = streams;
    cfg.flow.fq_rate_bps = units::gbps(pace);
    const auto res = flow::run_transfer(cfg);
    EXPECT_LE(units::to_gbps(res.throughput_bps), pace * streams * 1.02);
    EXPECT_LE(units::to_gbps(res.throughput_bps), prev * 1.05);
    prev = units::to_gbps(res.throughput_bps);
  }
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, PacingMonotonic, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------- sweep 3
// optmem monotonicity: more optmem never reduces zerocopy throughput and
// never increases the fallback ratio, across RTTs.

class OptmemMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(OptmemMonotonic, MoreOptmemNeverWorse) {
  const int rtt_ms = GetParam();
  double prev_tput = 0.0;
  double prev_fallback = 2.0;
  for (const double om : {20480.0, 262144.0, 1048576.0, 3405376.0}) {
    const auto r = Experiment(harness::amlight())
                       .path("WAN " + std::to_string(rtt_ms) + "ms")
                       .zerocopy()
                       .pacing(units::Rate::from_gbps(50))
                       .optmem_max(units::Bytes(om))
                       .duration(units::SimTime::from_seconds(10))
                       .repeats(2)
                       .run();
    EXPECT_GE(r.avg_gbps, prev_tput - 1.5) << "optmem " << om;
    EXPECT_LE(r.zc_fallback_ratio, prev_fallback + 0.02) << "optmem " << om;
    prev_tput = r.avg_gbps;
    prev_fallback = r.zc_fallback_ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Rtts, OptmemMonotonic, ::testing::Values(25, 54, 104));

// ---------------------------------------------------------------- sweep 4
// Kernel monotonicity: newer kernels never regress, on either vendor,
// paced or not.

class KernelMonotonic : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(KernelMonotonic, NewerKernelNeverSlower) {
  const auto [esnet_tb, paced] = GetParam();
  double prev = 0;
  for (const auto k :
       {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5, kern::KernelVersion::V6_8}) {
    auto e = Experiment(esnet_tb ? harness::esnet(k) : harness::amlight(k));
    if (paced) e.pacing(units::Rate::from_gbps(30));
    const auto r = e.duration(units::SimTime::from_seconds(10)).repeats(2).run();
    EXPECT_GE(r.avg_gbps, prev - 0.8) << kern::kernel_version_name(k);
    prev = r.avg_gbps;
  }
}

INSTANTIATE_TEST_SUITE_P(VendorsAndPacing, KernelMonotonic,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

// ---------------------------------------------------------------- sweep 5
// MTU: 9000 always beats 1500 (per-packet cost multiplication).

class MtuSweep : public ::testing::TestWithParam<bool> {};

TEST_P(MtuSweep, JumboFramesWin) {
  const bool zc = GetParam();
  const auto jumbo =
      Experiment(harness::esnet()).zerocopy(zc).mtu(units::Bytes(9000)).duration(units::SimTime::from_seconds(8)).repeats(2).run();
  const auto std_mtu =
      Experiment(harness::esnet()).zerocopy(zc).mtu(units::Bytes(1500)).duration(units::SimTime::from_seconds(8)).repeats(2).run();
  EXPECT_GT(jumbo.avg_gbps, std_mtu.avg_gbps);
}

INSTANTIATE_TEST_SUITE_P(CopyAndZc, MtuSweep, ::testing::Bool());

// ---------------------------------------------------------------- sweep 6
// Congestion algorithms: all complete, none wildly off CUBIC on a clean
// single stream (paper §IV-F), BBR retransmits at least as much.

class CcSweep : public ::testing::TestWithParam<kern::CongestionAlgo> {};

TEST_P(CcSweep, ComparableToReferenceCubic) {
  const auto algo = GetParam();
  const auto r = Experiment(harness::esnet())
                     .path("WAN 63ms")
                     .congestion(algo)
                     .zerocopy()
                     .pacing(units::Rate::from_gbps(30))
                     .duration(units::SimTime::from_seconds(15))
                     .repeats(2)
                     .run();
  EXPECT_GT(r.avg_gbps, 15.0);
  EXPECT_LE(r.avg_gbps, 31.0);
}

INSTANTIATE_TEST_SUITE_P(Algos, CcSweep,
                         ::testing::Values(kern::CongestionAlgo::Cubic,
                                           kern::CongestionAlgo::BbrV1,
                                           kern::CongestionAlgo::BbrV3,
                                           kern::CongestionAlgo::Reno));

}  // namespace
}  // namespace dtnsim
