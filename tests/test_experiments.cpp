// Unit tests: the experiment registry and dataset-producing runner.
#include <gtest/gtest.h>

#include <set>

#include "dtnsim/harness/experiments.hpp"

namespace dtnsim::harness {
namespace {

TEST(Registry, CoversEveryPaperArtifact) {
  std::set<std::string> ids;
  for (const auto& def : experiment_registry()) ids.insert(def.id);
  // Every evaluation figure and table has an entry.
  for (const char* required :
       {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "fig13", "table1", "table2", "table3"}) {
    EXPECT_TRUE(ids.count(required)) << required;
  }
  EXPECT_GE(ids.size(), 16u);  // plus ablations
}

TEST(Registry, IdsUniqueAndLookupWorks) {
  std::set<std::string> ids;
  for (const auto& def : experiment_registry()) {
    EXPECT_TRUE(ids.insert(def.id).second) << "duplicate id " << def.id;
    EXPECT_EQ(find_experiment(def.id), &def);
    EXPECT_FALSE(def.title.empty());
    EXPECT_FALSE(def.paper_claim.empty());
  }
  EXPECT_EQ(find_experiment("fig99"), nullptr);
}

TEST(Registry, SpecsAreWellFormed) {
  for (const auto& def : experiment_registry()) {
    const auto specs = def.specs();
    EXPECT_FALSE(specs.empty()) << def.id;
    std::set<std::string> names;
    for (const auto& s : specs) {
      EXPECT_FALSE(s.name.empty()) << def.id;
      EXPECT_TRUE(names.insert(s.name).second)
          << def.id << " duplicate spec name " << s.name;
      EXPECT_GE(s.iperf.parallel, 1);
    }
  }
}

TEST(Registry, TableSpecsMatchPaperGrids) {
  const auto t1 = find_experiment("table1")->specs();
  ASSERT_EQ(t1.size(), 4u);  // unpaced + 25/20/15
  EXPECT_DOUBLE_EQ(t1[1].iperf.fq_rate_bps, 25e9);
  EXPECT_EQ(t1[0].iperf.parallel, 8);

  const auto t3 = find_experiment("table3")->specs();
  ASSERT_EQ(t3.size(), 4u);
  EXPECT_TRUE(t3[0].link_flow_control);
}

TEST(RunExperiment, ProducesDataset) {
  const auto* def = find_experiment("table3");
  ASSERT_NE(def, nullptr);
  const Dataset ds = run_experiment(*def, /*duration=*/5.0, /*repeats=*/2);
  EXPECT_EQ(ds.name(), "table3");
  EXPECT_EQ(ds.size(), 4u);
  const std::string csv = ds.summary_csv();
  EXPECT_NE(csv.find("unpaced"), std::string::npos);
  EXPECT_NE(csv.find("10G/stream"), std::string::npos);
}

TEST(RunExperiment, QuickRunRespectsOverrides) {
  const auto* def = find_experiment("fig6");
  const Dataset ds = run_experiment(*def, 3.0, 2);
  const Json j = ds.to_json();
  const Json* tests = j.find("tests");
  ASSERT_NE(tests, nullptr);
  EXPECT_EQ(tests->size(), 6u);  // 3 configs x 2 paths
}

}  // namespace
}  // namespace dtnsim::harness
