// The calibration contract: docs/MODEL.md derives specific numbers from the
// cost model; these tests pin the code to the documented derivation so a
// constant change that silently invalidates the documentation fails CI.
#include <gtest/gtest.h>

#include "dtnsim/cpu/cost_model.hpp"
#include "dtnsim/harness/testbeds.hpp"
#include "dtnsim/kern/version.hpp"
#include "dtnsim/kern/zc_socket.hpp"
#include "dtnsim/net/nic.hpp"

namespace dtnsim {
namespace {

using cpu::CostModel;
using cpu::CostModelOptions;
using cpu::RxPathConfig;
using cpu::TxPathConfig;

// MODEL.md §2: receive cost per byte at MTU 9000, GRO 64K.
TEST(CalibrationContract, ReceiverCyclesPerByte) {
  const CostModel intel(cpu::intel_xeon_6346(), CostModelOptions{});
  const CostModel amd(cpu::amd_epyc_73f3(), CostModelOptions{});
  RxPathConfig rx;  // defaults: 64K GRO, MTU 9000, copy
  EXPECT_NEAR(intel.rx_app_cyc_per_byte(rx), 0.514, 0.005);
  EXPECT_NEAR(amd.rx_app_cyc_per_byte(rx), 0.764, 0.005);
}

// MODEL.md §2: the implied single-core receive ceilings (the 55/42 anchors).
TEST(CalibrationContract, ReceiverCeilings) {
  const CostModel intel(cpu::intel_xeon_6346(), CostModelOptions{});
  const CostModel amd(cpu::amd_epyc_73f3(), CostModelOptions{});
  RxPathConfig rx;
  const double intel_gbps = 3.6e9 / intel.rx_app_cyc_per_byte(rx) * 8.0 / 1e9;
  const double amd_gbps = 4.0e9 / amd.rx_app_cyc_per_byte(rx) * 8.0 / 1e9;
  EXPECT_NEAR(intel_gbps, 56.0, 1.0);  // paper: ~55
  EXPECT_NEAR(amd_gbps, 41.9, 1.0);    // paper: ~42
}

// MODEL.md §2: BIG TCP at 150K aggregates buys ~16% on the receive path.
TEST(CalibrationContract, BigTcpReceiverGain) {
  const CostModel intel(cpu::intel_xeon_6346(), CostModelOptions{});
  RxPathConfig stock;
  RxPathConfig big;
  big.gro_bytes = 150.0 * 1024.0;
  EXPECT_NEAR(intel.rx_app_cyc_per_byte(stock) / intel.rx_app_cyc_per_byte(big), 1.16,
              0.02);
}

// MODEL.md §2: zerocopy send ~0.22 cyc/B -> ~150 Gbps ceiling on Intel.
TEST(CalibrationContract, ZerocopySenderCeiling) {
  const CostModel intel(cpu::intel_xeon_6346(), CostModelOptions{});
  TxPathConfig zc;
  zc.zc_fraction = 1.0;
  const double cyc = intel.tx_app_cyc_per_byte(zc);
  EXPECT_NEAR(cyc, 0.22, 0.02);
  EXPECT_NEAR(3.6e9 / cyc * 8.0 / 1e9, 132.0, 20.0);
}

// MODEL.md §2: WAN cache-pressure ceilings (~37 Intel / ~23 AMD).
TEST(CalibrationContract, WanSenderCeilings) {
  const CostModel intel(cpu::intel_xeon_6346(), CostModelOptions{});
  const CostModel amd(cpu::amd_epyc_73f3(), CostModelOptions{});
  TxPathConfig tx;
  tx.cache_mult = intel.cache_pressure_mult(480e6);  // ~0.5 GB in flight
  const double intel_gbps = 3.6e9 / intel.tx_app_cyc_per_byte(tx) * 8.0 / 1e9;
  tx.cache_mult = amd.cache_pressure_mult(180e6);
  const double amd_gbps = 4.0e9 / amd.tx_app_cyc_per_byte(tx) * 8.0 / 1e9;
  EXPECT_NEAR(intel_gbps, 37.0, 2.5);
  EXPECT_NEAR(amd_gbps, 23.0, 2.5);
}

// MODEL.md §3: zerocopy window per optmem value.
TEST(CalibrationContract, OptmemWindows) {
  const double per_pkt = kern::kZcChargePerSuperPkt;
  EXPECT_NEAR(20480.0 / per_pkt * 65536.0 / 1e6, 8.4, 0.1);        // 8.4 MB
  EXPECT_NEAR(1048576.0 / per_pkt * 65536.0 / 1e6, 429.5, 1.0);    // 429 MB
  EXPECT_NEAR(3405376.0 / per_pkt * 65536.0 / 1e9, 1.39, 0.02);    // 1.4 GB
  // 1 MB at 104 ms supports ~33 Gbps of pure zerocopy.
  EXPECT_NEAR(429.5e6 / 0.104 * 8.0 / 1e9, 33.0, 1.0);
}

// MODEL.md §4: the stack-factor table.
TEST(CalibrationContract, StackFactorTable) {
  const struct {
    kern::KernelVersion v;
    double intel, amd;
  } rows[] = {{kern::KernelVersion::V5_10, 1.30, 1.35},
              {kern::KernelVersion::V5_15, 1.27, 1.31},
              {kern::KernelVersion::V6_5, 1.08, 1.17},
              {kern::KernelVersion::V6_8, 1.00, 1.00},
              {kern::KernelVersion::V6_11, 0.97, 0.97}};
  for (const auto& r : rows) {
    const auto p = kern::kernel_profile(r.v);
    EXPECT_DOUBLE_EQ(p.stack_factor_intel, r.intel) << p.name;
    EXPECT_DOUBLE_EQ(p.stack_factor_amd, r.amd) << p.name;
  }
}

// MODEL.md §5: NIC drain rates and the pacing choices derived from them.
TEST(CalibrationContract, NicDrainRates) {
  const auto cx5 = net::connectx5_100g();
  const auto cx7 = net::connectx7_200g();
  // The paper paces at 50 G (AmLight) and 40 G (ESnet): just below drain.
  EXPECT_GT(cx5.drain_smooth_bps, 50e9);
  EXPECT_LT(cx5.drain_smooth_bps, 56e9);
  EXPECT_GT(cx7.drain_smooth_bps, 40e9);
  EXPECT_LT(cx7.drain_smooth_bps, 46e9);
  EXPECT_LT(cx7.drain_burst_bps, cx5.drain_burst_bps);  // AMD hurts more
}

// MODEL.md §6: testbed path constants the loss regimes hinge on.
TEST(CalibrationContract, PathConstants) {
  EXPECT_DOUBLE_EQ(harness::amlight_wan(104).capacity_bps, 80e9);
  EXPECT_DOUBLE_EQ(harness::amlight_wan(25).bg_traffic_bps, 16e9);
  EXPECT_DOUBLE_EQ(harness::esnet_wan().burst_tolerance_bps, 135e9);
  EXPECT_DOUBLE_EQ(harness::esnet_lan().burst_tolerance_bps, 175e9);
  EXPECT_TRUE(harness::esnet_production_path().deep_buffers);
}

// MODEL.md §2: memory passes (copy vs zerocopy) and the Table-I ceiling.
TEST(CalibrationContract, MemoryPassCeiling) {
  CostModelOptions k515;
  k515.stack_factor = 1.31;
  const CostModel amd(cpu::amd_epyc_73f3(), k515);
  RxPathConfig rx;
  const double passes = amd.rx_mem_passes(rx);
  EXPECT_NEAR(passes, 2.91, 0.01);
  // 60 GB/s of stack memory bandwidth / 2.91 passes = ~165 Gbps: Table I.
  const double ceiling_gbps = cpu::amd_epyc_73f3().stack_mem_bw_bytes / passes * 8 / 1e9;
  EXPECT_NEAR(ceiling_gbps, 165.0, 2.0);
}

}  // namespace
}  // namespace dtnsim
