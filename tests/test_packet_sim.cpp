// Packet-level simulation tests: microscopic validation of the fluid
// model's assumptions (pacing spacing, ring overruns, GRO geometry).
#include <gtest/gtest.h>

#include "dtnsim/flow/packet_sim.hpp"
#include "dtnsim/harness/testbeds.hpp"

namespace dtnsim::flow {
namespace {

PacketSimConfig base_cfg() {
  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  PacketSimConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.duration = units::SimTime::from_millis(20);
  return cfg;
}

TEST(PacketSim, PacedDeparturesEvenlySpaced) {
  auto cfg = base_cfg();
  cfg.pacing_bps = units::gbps(10);
  cfg.window_bytes = 64e6;
  const auto r = run_packet_sim(cfg);
  // 64 KiB super-packets at 10 Gbps: one every 52.4 us, essentially exact.
  const double expected_gap = 65536.0 * 8.0 / 10e9 * 1e9;
  EXPECT_NEAR(r.interdeparture_mean_ns, expected_gap, expected_gap * 0.02);
  EXPECT_LT(r.interdeparture_stddev_ns, expected_gap * 0.05);
}

TEST(PacketSim, UnpacedDeparturesAreTrains) {
  auto cfg = base_cfg();
  cfg.window_bytes = 4e6;
  const auto r = run_packet_sim(cfg);
  // Without pacing, spacing is set by sender CPU prep (about 30 us/skb
  // for the copy path), far below a 10G pacing gap, and bursty.
  EXPECT_LT(r.interdeparture_mean_ns, 40e3);
  EXPECT_GT(r.superpackets_sent, 100u);
}

TEST(PacketSim, AchievedRateMatchesPacing) {
  for (const double pace : {5.0, 10.0, 20.0}) {
    auto cfg = base_cfg();
    cfg.pacing_bps = units::gbps(pace);
    cfg.window_bytes = 256e6;
    const auto r = run_packet_sim(cfg);
    EXPECT_NEAR(units::to_gbps(r.achieved_bps), pace, pace * 0.12) << pace;
  }
}

TEST(PacketSim, WindowLimitsThroughputOnWan) {
  auto cfg = base_cfg();
  cfg.path = harness::amlight_wan(25);
  cfg.window_bytes = 4e6;                // 4 MB over 25 ms ~= 1.28 Gbps
  cfg.duration = units::SimTime::from_millis(500);     // >> RTT so edge effects wash out
  const auto r = run_packet_sim(cfg);
  EXPECT_NEAR(units::to_gbps(r.achieved_bps), 1.28, 0.2);
}

TEST(PacketSim, SlowDrainOverrunsRingOnlyWhenUnpaced) {
  // Make the receiver artificially slow per segment (2 us each ~= 36 Gbps
  // of 9000 B segments) and offer a 50G window.
  auto paced = base_cfg();
  paced.zerocopy = true;  // keep the sender's prep time off the critical path
  paced.rx_segment_ns_override = 2000;
  paced.window_bytes = 64e6;
  paced.pacing_bps = units::gbps(30);  // below drain
  paced.receiver.tuning.ring_descriptors = 256;
  const auto ok = run_packet_sim(paced);
  EXPECT_EQ(ok.segments_dropped, 0u);

  auto unpaced = paced;
  unpaced.pacing_bps = 0.0;  // line-rate trains into the slow drain
  const auto bad = run_packet_sim(unpaced);
  EXPECT_GT(bad.segments_dropped, 0u);
  EXPECT_GE(bad.ring_peak, 256);
}

TEST(PacketSim, BiggerRingAbsorbsTrains) {
  auto cfg = base_cfg();
  cfg.zerocopy = true;
  cfg.rx_segment_ns_override = 2000;
  cfg.window_bytes = 8e6;
  cfg.receiver.tuning.ring_descriptors = 128;
  const auto small = run_packet_sim(cfg);
  cfg.receiver.tuning.ring_descriptors = 8192;
  const auto big = run_packet_sim(cfg);
  EXPECT_LT(big.segments_dropped, small.segments_dropped);
}

TEST(PacketSim, GroBuildsExpectedAggregates) {
  auto cfg = base_cfg();
  cfg.pacing_bps = units::gbps(10);
  cfg.window_bytes = 64e6;
  const auto r = run_packet_sim(cfg);
  ASSERT_GT(r.aggregates, 0u);
  // Aggregates near the 64 KiB GRO ceiling (8 x 8960 B segments).
  EXPECT_GT(r.mean_aggregate_bytes, 60e3);
  EXPECT_LT(r.mean_aggregate_bytes, 75e3);
}

TEST(PacketSim, BigTcpGrowsAggregates) {
  auto cfg = base_cfg();
  cfg.pacing_bps = units::gbps(10);
  cfg.window_bytes = 64e6;
  for (auto* h : {&cfg.sender, &cfg.receiver}) {
    h->tuning.big_tcp_enabled = true;
    h->tuning.big_tcp_bytes = 150.0 * 1024;
  }
  const auto r = run_packet_sim(cfg);
  EXPECT_GT(r.mean_aggregate_bytes, 120e3);
}

TEST(PacketSim, ZerocopyShrinksTxPrepTime) {
  // Remove the receiver from the critical path (near-free segment
  // processing) so the sender's per-skb preparation is the limit.
  auto copy_cfg = base_cfg();
  copy_cfg.window_bytes = 256e6;
  copy_cfg.rx_segment_ns_override = 10;
  const auto copy = run_packet_sim(copy_cfg);
  auto zc_cfg = copy_cfg;
  zc_cfg.zerocopy = true;
  const auto zc = run_packet_sim(zc_cfg);
  // Cheaper per-skb prep -> more super-packets emitted in the same horizon.
  EXPECT_GT(zc.superpackets_sent, copy.superpackets_sent * 1.5);
}

TEST(PacketSim, ConservationSegments) {
  auto cfg = base_cfg();
  cfg.pacing_bps = units::gbps(10);
  cfg.window_bytes = 16e6;
  const auto r = run_packet_sim(cfg);
  // Everything sent is delivered, dropped, or still in flight at the cut-off
  // (at most one window's worth plus the pending GRO aggregate).
  const double sent_bytes = static_cast<double>(r.superpackets_sent) * 65536.0;
  const double dropped_bytes = static_cast<double>(r.segments_dropped) * 8960.0;
  EXPECT_LE(r.delivered_bytes + dropped_bytes, sent_bytes + 1.0);
  EXPECT_GE(r.delivered_bytes + dropped_bytes,
            sent_bytes - cfg.window_bytes - 70e3);
}

}  // namespace
}  // namespace dtnsim::flow
