// dtnsim::obs — metrics registry, per-flow probe, trace sink.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dtnsim/core/dtnsim.hpp"
#include "dtnsim/util/log.hpp"

namespace dtnsim {
namespace {

// ---------------------------------------------------------------------------
// A tiny recursive-descent JSON reader, just enough to verify that the
// chrome traces we emit are well-formed (the library Json is write-only).
// ---------------------------------------------------------------------------
struct JsonReader {
  const std::string& text;
  std::size_t pos = 0;
  bool ok = true;

  // Counts of what the document contained, for assertions.
  int objects = 0, arrays = 0, strings = 0, numbers = 0;

  explicit JsonReader(const std::string& t) : text(t) {}

  void ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool eat(char c) {
    ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool value() {
    ws();
    if (pos >= text.size()) return ok = false;
    const char c = text[pos];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number();
    for (const char* lit : {"true", "false", "null"}) {
      if (text.compare(pos, std::strlen(lit), lit) == 0) {
        pos += std::strlen(lit);
        return true;
      }
    }
    return ok = false;
  }
  bool object() {
    if (!eat('{')) return ok = false;
    ++objects;
    if (eat('}')) return true;
    do {
      ws();
      if (!string()) return ok = false;
      if (!eat(':')) return ok = false;
      if (!value()) return ok = false;
    } while (eat(','));
    return eat('}') ? true : (ok = false);
  }
  bool array() {
    if (!eat('[')) return ok = false;
    ++arrays;
    if (eat(']')) return true;
    do {
      if (!value()) return ok = false;
    } while (eat(','));
    return eat(']') ? true : (ok = false);
  }
  bool string() {
    if (!eat('"')) return ok = false;
    ++strings;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') ++pos;
      ++pos;
    }
    if (pos >= text.size()) return ok = false;
    ++pos;  // closing quote
    return true;
  }
  bool number() {
    ++numbers;
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-'))
      ++pos;
    return pos > start;
  }
  bool parse_document() {
    const bool v = value();
    ws();
    return v && ok && pos == text.size();
  }
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, CounterGaugeBasics) {
  obs::Registry reg;
  auto* c = reg.counter("flow.retx", "segments");
  c->add(3);
  c->increment();
  EXPECT_DOUBLE_EQ(c->value(), 4.0);

  auto* g = reg.gauge("tcp.cwnd", "bytes");
  g->set(1500);
  g->set(3000);
  EXPECT_DOUBLE_EQ(g->value(), 3000.0);

  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("flow.retx"), nullptr);
  EXPECT_EQ(reg.find("flow.retx")->kind, obs::MetricKind::Counter);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Registry, ReRegisterReturnsSameInstance) {
  obs::Registry reg;
  auto* a = reg.counter("x", "bytes");
  a->add(7);
  auto* b = reg.counter("x", "bytes");
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(b->value(), 7.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("x", "bytes");
  EXPECT_THROW(reg.gauge("x", "bytes"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", "bytes"), std::logic_error);
}

TEST(Registry, SnapshotInRegistrationOrder) {
  obs::Registry reg;
  reg.gauge("b.second", "x")->set(2);
  reg.counter("a.first", "x")->add(1);
  reg.histogram("c.third", "x")->add(8.0, 1.0);

  const auto cols = reg.column_names();
  ASSERT_EQ(cols.size(), 5u);  // histograms expand to _mean, _p50, _p99
  EXPECT_EQ(cols[0], "b.second");
  EXPECT_EQ(cols[1], "a.first");
  EXPECT_EQ(cols[2], "c.third_mean");
  EXPECT_EQ(cols[3], "c.third_p50");
  EXPECT_EQ(cols[4], "c.third_p99");

  const auto row = reg.row();
  ASSERT_EQ(row.size(), 5u);
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 1.0);
  EXPECT_DOUBLE_EQ(row[2], 8.0);
  // Every observation is 8.0, so both quantiles land in its log2 bucket
  // (bucket resolution: the upper edge covering 8.0 is <= 16).
  EXPECT_GE(row[3], 8.0);
  EXPECT_LE(row[3], 16.0);
  EXPECT_GE(row[4], 8.0);
  EXPECT_LE(row[4], 16.0);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].desc->name, "b.second");
}

TEST(TimeWeightedHistogram, WeightsByDuration) {
  obs::TimeWeightedHistogram h;
  h.add(10.0, 9.0);  // at 10 for 9 seconds
  h.add(100.0, 1.0);  // spike to 100 for 1 second
  EXPECT_DOUBLE_EQ(h.mean(), (10.0 * 9.0 + 100.0 * 1.0) / 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 10.0);
  // 90% of the time was spent at 10, so the p50 bucket must be well under
  // the spike (bucket resolution is a factor of two).
  EXPECT_LE(h.quantile(0.5), 16.0);
  EXPECT_GE(h.quantile(0.95), 64.0);
}

// ---------------------------------------------------------------------------
// FlowProbe cadence on the engine clock
// ---------------------------------------------------------------------------

TEST(FlowProbe, SamplesAtExactInterval) {
  obs::Registry reg;
  auto* g = reg.gauge("v", "count");
  sim::Engine eng;

  obs::FlowProbe probe(&reg, units::millis(100));
  probe.arm(eng, units::seconds(1),
            [&](Nanos now) { g->set(units::to_seconds(now)); });
  eng.run();

  const auto& t = probe.series();
  ASSERT_EQ(t.rows.size(), 10u);  // 0.1 .. 1.0 inclusive
  ASSERT_GE(t.columns.size(), 2u);
  EXPECT_EQ(t.columns[0], "time_s");
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    const double expect_t = 0.1 * static_cast<double>(i + 1);
    EXPECT_NEAR(t.rows[i][0], expect_t, 1e-9);
    EXPECT_NEAR(t.rows[i][1], expect_t, 1e-9);  // pre_sample saw the same now
  }
  EXPECT_EQ(probe.samples_taken(), 10u);
}

TEST(FlowProbe, SamplesRunAfterCoincidentModelEvents) {
  // A model event scheduled at the same timestamp but armed *before* the
  // probe must be visible to the sample (engine runs equal-time events in
  // scheduling order).
  obs::Registry reg;
  auto* c = reg.counter("ticks", "count");
  sim::Engine eng;
  for (int i = 1; i <= 4; ++i) {
    eng.schedule_at(units::millis(250) * i, [c] { c->add(1); });
  }
  obs::FlowProbe probe(&reg, units::millis(250));
  probe.arm(eng, units::seconds(1));
  eng.run();

  const auto ticks = probe.series().column("ticks");
  ASSERT_EQ(ticks.size(), 4u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_DOUBLE_EQ(ticks[i], static_cast<double>(i + 1));
  }
}

TEST(SeriesTable, CsvAndJsonlShape) {
  obs::Registry reg;
  reg.gauge("a", "x")->set(1);
  obs::FlowProbe probe(&reg, units::seconds(1));
  probe.sample(units::seconds(1));
  probe.sample(units::seconds(2));

  const auto& t = probe.series();
  EXPECT_EQ(t.column_index("time_s"), 0u);
  EXPECT_DOUBLE_EQ(t.max_of("a"), 1.0);

  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("time_s,a"), std::string::npos);
  const std::string jsonl = t.to_jsonl();
  // Every JSONL line must itself parse.
  std::size_t start = 0;
  int lines = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      JsonReader r(line);
      EXPECT_TRUE(r.parse_document()) << line;
      ++lines;
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 2);
}

// ---------------------------------------------------------------------------
// TraceSink ring + chrome export
// ---------------------------------------------------------------------------

TEST(TraceSink, RingOverflowKeepsMostRecent) {
  obs::TraceSink sink(8);
  for (int i = 0; i < 20; ++i) {
    sink.instant("ev" + std::to_string(i), "test", units::seconds(i));
  }
  EXPECT_EQ(sink.size(), 8u);
  EXPECT_EQ(sink.total_recorded(), 20u);
  EXPECT_EQ(sink.dropped(), 12u);

  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(evs.front().name, "ev12");  // oldest survivor
  EXPECT_EQ(evs.back().name, "ev19");
  EXPECT_FALSE(sink.contains("ev11"));
  EXPECT_TRUE(sink.contains("ev12"));
}

TEST(TraceSink, ChromeTraceJsonParses) {
  obs::TraceSink sink;
  sink.begin("round 1", "flow", units::millis(1), 0, {{"sent_bytes", 1e6}});
  sink.end("round 1", "flow", units::millis(2));
  sink.instant("zc_fallback", "zc", units::millis(3), 1,
               {{"optmem_used_bytes", 20480.0}});
  sink.counter("optmem", units::millis(3), 20480.0);

  const std::string doc = sink.to_chrome_trace("unit test \"run\"").dump();
  JsonReader r(doc);
  EXPECT_TRUE(r.parse_document()) << doc;
  EXPECT_GE(r.objects, 5);  // root + >= 4 events (+ metadata, args)

  // trace_event essentials: a traceEvents array, micros timestamps, the
  // instant scoped "s", and the phase letters.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":1000"), std::string::npos);  // 1 ms -> 1000 us
  EXPECT_NE(doc.find("process_name"), std::string::npos);
  EXPECT_NE(doc.find("unit test \\\"run\\\""), std::string::npos);  // escaping
}

TEST(TraceSink, MergedTraceGetsOnePidPerSink) {
  obs::TraceSink a, b;
  a.instant("x", "t", 0);
  b.instant("y", "t", 0);
  const std::string doc = obs::merged_chrome_trace({{"run a", &a}, {"run b", &b}}).dump();
  JsonReader r(doc);
  EXPECT_TRUE(r.parse_document());
  EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(doc.find("run a"), std::string::npos);
  EXPECT_NE(doc.find("run b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// log: level parsing + simulated-time prefix plumbing
// ---------------------------------------------------------------------------

TEST(Log, ParseLevelNames) {
  log::Level lv;
  EXPECT_TRUE(log::parse_level("debug", &lv));
  EXPECT_EQ(lv, log::Level::Debug);
  EXPECT_TRUE(log::parse_level("WARN", &lv));
  EXPECT_EQ(lv, log::Level::Warn);
  EXPECT_TRUE(log::parse_level("off", &lv));
  EXPECT_EQ(lv, log::Level::Off);
  EXPECT_FALSE(log::parse_level("verbose", &lv));
  EXPECT_EQ(lv, log::Level::Off);  // untouched on garbage
}

TEST(Log, TimeSourceBindsAndRestores) {
  auto prev = log::bind_time_source([] { return units::seconds(42); });
  auto mine = log::bind_time_source(std::move(prev));
  ASSERT_TRUE(static_cast<bool>(mine));
  EXPECT_EQ(mine(), units::seconds(42));
}

// ---------------------------------------------------------------------------
// End-to-end: the Fig. 9 acceptance scenario. The optmem-occupancy series
// must saturate at the 20 KB default (with zc_fallback trace instants) and
// float below the ceiling at the paper's 3.25 MB recommendation.
// ---------------------------------------------------------------------------

harness::TestResult fig9_run(double optmem_bytes) {
  const auto tb = harness::amlight(kern::KernelVersion::V6_5);
  return Experiment(tb)
      .path("WAN 104ms")
      .zerocopy()
      .pacing(units::Rate::from_gbps(50))
      .optmem_max(units::Bytes(optmem_bytes))
      .duration(units::SimTime::from_seconds(12))
      .repeats(1)
      .telemetry(true)
      .run();
}

TEST(TelemetryEndToEnd, OptmemSaturationShiftsWithOptmemMax) {
  const auto small = fig9_run(20480);
  const auto big = fig9_run(3405376);

  ASSERT_EQ(small.repeat_series.size(), 1u);
  ASSERT_EQ(big.repeat_series.size(), 1u);
  const auto& ss = small.repeat_series.front();
  const auto& bs = big.repeat_series.front();
  ASSERT_FALSE(ss.empty());
  ASSERT_FALSE(bs.empty());

  // 20 KB: in-flight zerocopy charge pins at the ceiling.
  EXPECT_DOUBLE_EQ(ss.max_of("zc.optmem_used_bytes"), 20480.0);
  EXPECT_DOUBLE_EQ(ss.max_of("zc.optmem_max_bytes"), 20480.0);
  EXPECT_GT(ss.max_of("zc.fallback_bytes"), 0.0);

  // 3.25 MB: the same scenario uses far more optmem (the saturation point
  // moved) but never exhausts it — no fallback.
  EXPECT_GT(bs.max_of("zc.optmem_used_bytes"), 10.0 * 20480.0);
  EXPECT_LT(bs.max_of("zc.optmem_used_bytes"), 3405376.0);
  EXPECT_DOUBLE_EQ(bs.max_of("zc.fallback_bytes"), 0.0);

  // Trace: fallback onset is an instant event in the 20 KB run only.
  ASSERT_TRUE(small.trace);
  ASSERT_TRUE(big.trace);
  EXPECT_GE(small.trace->count("zc_fallback"), 1u);
  EXPECT_EQ(big.trace->count("zc_fallback"), 0u);

  // And the full chrome export of a real run parses.
  const std::string doc = small.trace->to_chrome_trace("fig9 20KB").dump();
  JsonReader r(doc);
  EXPECT_TRUE(r.parse_document());

  // Throughput recovers with the bigger optmem (the paper's headline).
  EXPECT_GT(big.avg_gbps, small.avg_gbps * 1.2);
}

TEST(TelemetryEndToEnd, MergedCsvHasTestAndRepeatColumns) {
  const auto res = fig9_run(20480);
  std::vector<obs::LabeledSeries> labeled;
  for (std::size_t rpt = 0; rpt < res.repeat_series.size(); ++rpt) {
    labeled.push_back({res.name, static_cast<int>(rpt), &res.repeat_series[rpt]});
  }
  const std::string csv = obs::merged_series_csv(labeled);
  EXPECT_EQ(csv.rfind("test,repeat,time_s,", 0), 0u);
  EXPECT_NE(csv.find(res.name), std::string::npos);
  EXPECT_NE(csv.find("zc.optmem_used_bytes"), std::string::npos);
}

TEST(TelemetryEndToEnd, DisabledTelemetryLeavesResultEmpty) {
  const auto tb = harness::amlight(kern::KernelVersion::V6_5);
  const auto res = Experiment(tb).path("LAN").duration(units::SimTime::from_seconds(2)).repeats(1).run();
  EXPECT_TRUE(res.repeat_series.empty());
  EXPECT_EQ(res.trace, nullptr);
}

}  // namespace
}  // namespace dtnsim
