// MUST NOT COMPILE: passing Bits where Bytes is expected. The units layer's
// whole job is making this a compile error instead of an 8x throughput bug.
// tests/CMakeLists.txt try_compiles this and asserts failure.
#include "dtnsim/units/units.hpp"

using namespace dtnsim::units;

Bytes window_for(Bytes b) { return b; }

int main() {
  Bits wire(1e9);
  window_for(wire);  // Bits != Bytes: no implicit conversion exists
  return 0;
}
