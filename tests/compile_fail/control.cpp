// Control for the compile-fail check: identical shape to bits_for_bytes.cpp
// but with the correct explicit conversion. MUST compile — proving the
// negative test fails for the type mismatch, not a broken include path.
#include "dtnsim/units/units.hpp"

using namespace dtnsim::units;

Bytes window_for(Bytes b) { return b; }

int main() {
  Bits wire(1e9);
  window_for(bits_to_bytes(wire));
  return 0;
}
