// Unit + integration tests: the sweep campaign engine.
//
// The determinism contract is the subsystem's whole point, so the tests
// here are the enforcement: cache keys must not depend on field order,
// parallel output must be bit-identical to serial, and a resumed campaign
// must never re-simulate a completed cell.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "dtnsim/sweep/cache.hpp"
#include "dtnsim/sweep/campaign.hpp"
#include "dtnsim/sweep/grid.hpp"
#include "dtnsim/util/strfmt.hpp"
#include "dtnsim/sweep/pool.hpp"

namespace dtnsim::sweep {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dtnsim_sweep_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The 12-cell grid the acceptance criteria call out: 3 kernels x 2 paths x
// 2 stream counts, kept cheap (2 s x 2 repeats).
GridSpec twelve_cell_grid() {
  GridSpec g;
  g.name = "t12";
  g.testbed = "esnet";
  g.kernels = {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5,
               kern::KernelVersion::V6_8};
  g.paths = {"LAN", "WAN 63ms"};
  g.streams = {1, 2};
  g.duration_sec = 2;
  g.repeats = 2;
  return g;
}

void expect_same_result(const harness::TestResult& a, const harness::TestResult& b) {
  EXPECT_EQ(a.repeats, b.repeats);
  EXPECT_DOUBLE_EQ(a.avg_gbps, b.avg_gbps);
  EXPECT_DOUBLE_EQ(a.min_gbps, b.min_gbps);
  EXPECT_DOUBLE_EQ(a.max_gbps, b.max_gbps);
  EXPECT_DOUBLE_EQ(a.stdev_gbps, b.stdev_gbps);
  EXPECT_DOUBLE_EQ(a.avg_retransmits, b.avg_retransmits);
  EXPECT_DOUBLE_EQ(a.snd_cpu_pct, b.snd_cpu_pct);
  EXPECT_DOUBLE_EQ(a.rcv_cpu_pct, b.rcv_cpu_pct);
  EXPECT_EQ(a.samples_gbps, b.samples_gbps);
}

// ---- worker pool ---------------------------------------------------------

TEST(WorkerPool, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(4), 4);
  EXPECT_EQ(resolve_jobs(-3), 1);
  EXPECT_GE(resolve_jobs(0), 1);  // hardware_concurrency, at least one
}

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  for (const int jobs : {1, 4}) {
    std::vector<int> hits(100, 0);
    parallel_for(hits.size(), jobs, [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 100) << "jobs=" << jobs;
  }
}

TEST(WorkerPool, WaitRethrowsFirstJobError) {
  for (const int jobs : {1, 4}) {
    WorkerPool pool(jobs);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
      pool.submit([i, &ran] {
        ++ran;
        if (i == 3) throw std::runtime_error("job 3 failed");
      });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error) << "jobs=" << jobs;
    EXPECT_EQ(ran.load(), 8);  // remaining jobs still ran
  }
}

TEST(WorkerPool, TracksBusyTime) {
  WorkerPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.submit([] {
      std::atomic<double> sink{0};
      for (int k = 0; k < 100000; ++k) sink.store(sink.load() + k);
    });
  }
  pool.wait();
  EXPECT_GT(pool.busy_sec(), 0.0);
}

// ---- grid expansion ------------------------------------------------------

TEST(Grid, ExpansionIsRowMajorAndStable) {
  const auto grid = twelve_cell_grid();
  EXPECT_EQ(cell_count(grid), 12u);
  const auto cells = expand(grid);
  ASSERT_EQ(cells.size(), 12u);
  // Kernels are the slowest axis, streams the fastest of the varied ones.
  EXPECT_EQ(cells[0].coords[0], (std::pair<std::string, std::string>{"kernel", "5.15"}));
  EXPECT_EQ(cells[0].coords[2].second, "1");
  EXPECT_EQ(cells[1].coords[2].second, "2");
  EXPECT_EQ(cells[4].coords[0].second, "6.5");
  EXPECT_EQ(cells[11].coords[0].second, "6.8");
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
  // Same grid, same order, same specs (keys are the full-content check).
  const auto again = expand(grid);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(spec_key(cells[i].spec), spec_key(again[i].spec));
  }
}

TEST(Grid, PerCellSeedsAreDistinctAndContentDerived) {
  const auto cells = expand(twelve_cell_grid());
  std::set<std::uint64_t> seeds;
  for (const auto& c : cells) seeds.insert(c.spec.base_seed);
  EXPECT_EQ(seeds.size(), cells.size());  // no two cells share a seed

  // Reordering axis *values* moves cells around but must not change the
  // seed a given configuration gets — seeds derive from content, not index.
  auto reordered = twelve_cell_grid();
  std::reverse(reordered.kernels.begin(), reordered.kernels.end());
  std::reverse(reordered.streams.begin(), reordered.streams.end());
  const auto shuffled = expand(reordered);
  for (const auto& a : cells) {
    const auto match = std::find_if(
        shuffled.begin(), shuffled.end(),
        [&](const Cell& b) { return b.coords == a.coords; });
    ASSERT_NE(match, shuffled.end());
    EXPECT_EQ(match->spec.base_seed, a.spec.base_seed);
    EXPECT_EQ(spec_key(match->spec), spec_key(a.spec));
  }
}

TEST(Grid, ValidatesAxesAndNames) {
  auto grid = twelve_cell_grid();
  grid.streams.clear();
  EXPECT_NE(validate(grid), "");
  EXPECT_THROW(expand(grid), std::invalid_argument);

  grid = twelve_cell_grid();
  grid.testbed = "wishful";
  EXPECT_NE(validate(grid), "");

  grid = twelve_cell_grid();
  grid.paths = {"WAN 9999ms"};
  EXPECT_NE(validate(grid), "");

  EXPECT_EQ(validate(twelve_cell_grid()), "");
}

// ---- cache keys ----------------------------------------------------------

TEST(Cache, KeyIgnoresFieldOrder) {
  const auto cells = expand(twelve_cell_grid());
  auto fields = spec_fields(cells[0].spec);
  auto shuffled = fields;
  // A deterministic shuffle: rotate + swap ends.
  std::rotate(shuffled.begin(), shuffled.begin() + shuffled.size() / 2, shuffled.end());
  std::swap(shuffled.front(), shuffled.back());
  EXPECT_NE(fields, shuffled);
  EXPECT_EQ(canonicalize(fields), canonicalize(shuffled));
  EXPECT_EQ(fnv1a64(canonicalize(fields)), fnv1a64(canonicalize(shuffled)));
}

TEST(Cache, KeyChangesWithEveryKnob) {
  const auto base = expand(twelve_cell_grid())[0].spec;
  const auto base_key = spec_key(base);

  auto s = base;
  s.repeats += 1;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.base_seed ^= 1;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.iperf.parallel += 1;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.iperf.zerocopy = !s.iperf.zerocopy;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.sender.tuning.sysctl.optmem_max += 1;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.sender.tuning.ring_descriptors *= 2;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.sender.tuning.big_tcp_enabled = !s.sender.tuning.big_tcp_enabled;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.path.rtt += 1;
  EXPECT_NE(spec_key(s), base_key);
  s = base;
  s.receiver.kernel = kern::kernel_profile(kern::KernelVersion::V5_10);
  EXPECT_NE(spec_key(s), base_key);

  // Cosmetic labels are NOT part of the address.
  s = base;
  s.name = "a completely different label";
  s.path.name = "renamed path";
  EXPECT_EQ(spec_key(s), base_key);
}

TEST(Cache, StoreLoadRoundTrip) {
  const std::string dir = scratch_dir("roundtrip");
  ResultCache cache(dir);
  auto spec = expand(twelve_cell_grid())[0].spec;

  harness::TestResult miss;
  EXPECT_FALSE(cache.load(spec, &miss));

  const auto result = harness::run_test(spec);
  ASSERT_TRUE(cache.store(spec, result));
  harness::TestResult loaded;
  ASSERT_TRUE(cache.load(spec, &loaded));
  expect_same_result(result, loaded);
  EXPECT_EQ(loaded.name, spec.name);

  // A truncated entry (kill mid-write would leave the .tmp, but guard the
  // final file too) must read as a miss, not a crash.
  {
    std::ofstream truncate(cache.path_for(spec), std::ios::trunc);
    truncate << "{\"repeats\": 2, \"avg_gb";
  }
  EXPECT_FALSE(cache.load(spec, &loaded));
}

// ---- campaigns -----------------------------------------------------------

TEST(Campaign, ParallelOutputMatchesSerial) {
  const auto grid = twelve_cell_grid();
  CampaignOptions serial;
  serial.jobs = 1;
  CampaignOptions parallel;
  parallel.jobs = 4;

  const auto a = run_campaign(grid, serial);
  const auto b = run_campaign(grid, parallel);
  ASSERT_EQ(a.cells.size(), 12u);
  ASSERT_EQ(b.cells.size(), 12u);
  EXPECT_EQ(a.simulated, 12u);
  EXPECT_EQ(b.simulated, 12u);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(b.cells[i].index, i);
    EXPECT_EQ(a.cells[i].key_hex, b.cells[i].key_hex);
    expect_same_result(a.cells[i].result, b.cells[i].result);
  }
}

TEST(Campaign, RunTestsBatchMatchesSerial) {
  // harness::run_tests rides the same pool; spec order must hold at any
  // job count.
  std::vector<harness::TestSpec> specs;
  for (const auto& c : expand(twelve_cell_grid())) specs.push_back(c.spec);
  const auto serial = harness::run_tests(specs, 1);
  const auto parallel = harness::run_tests(specs, 4);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].name, specs[i].name);
    EXPECT_EQ(parallel[i].name, specs[i].name);
    expect_same_result(serial[i], parallel[i]);
  }
}

TEST(Campaign, SecondRunIsAllCacheHits) {
  const std::string dir = scratch_dir("cachehits");
  const auto grid = twelve_cell_grid();
  CampaignOptions opts;
  opts.jobs = 4;
  opts.cache_dir = dir + "/cache";

  const auto first = run_campaign(grid, opts);
  EXPECT_EQ(first.simulated, 12u);
  EXPECT_EQ(first.cached, 0u);

  const auto second = run_campaign(grid, opts);
  EXPECT_EQ(second.simulated, 0u);
  EXPECT_EQ(second.cached, 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(second.cells[i].cached);
    expect_same_result(first.cells[i].result, second.cells[i].result);
  }
}

TEST(Campaign, StreamsJsonlRowsAndMetrics) {
  const std::string dir = scratch_dir("jsonl");
  const auto grid = twelve_cell_grid();
  CampaignOptions opts;
  opts.jobs = 4;
  opts.results_path = dir + "/rows.jsonl";

  obs::Registry registry;
  opts.metrics = &registry;
  const auto report = run_campaign(grid, opts);
  EXPECT_GT(report.wall_sec, 0.0);
  EXPECT_GT(report.worker_occupancy, 0.0);

  EXPECT_DOUBLE_EQ(registry.value_of("sweep.cells_total"), 12.0);
  EXPECT_DOUBLE_EQ(registry.value_of("sweep.cells_done"), 12.0);
  EXPECT_DOUBLE_EQ(registry.value_of("sweep.cells_simulated"), 12.0);
  EXPECT_DOUBLE_EQ(registry.value_of("sweep.cells_cached"), 0.0);
  EXPECT_DOUBLE_EQ(registry.value_of("sweep.jobs"), 4.0);
  EXPECT_GT(registry.value_of("sweep.worker_occupancy"), 0.0);

  // One well-formed row per cell, every index exactly once.
  std::ifstream in(opts.results_path);
  ASSERT_TRUE(in.is_open());
  std::set<int> indices;
  std::string line;
  while (std::getline(in, line)) {
    const auto row = Json::parse(line);
    ASSERT_TRUE(row.has_value()) << line;
    indices.insert(static_cast<int>(row->number_at("index", -1)));
    EXPECT_GT(row->number_at("avg_gbps", 0.0), 0.0);
    ASSERT_NE(row->find("coords"), nullptr);
  }
  EXPECT_EQ(indices.size(), 12u);
  EXPECT_EQ(*indices.begin(), 0);
  EXPECT_EQ(*indices.rbegin(), 11);
}

TEST(Campaign, ResumeNeverRerunsCompletedCells) {
  const std::string dir = scratch_dir("resume");
  const auto grid = twelve_cell_grid();
  CampaignOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir + "/cache";
  opts.results_path = dir + "/rows.jsonl";

  // "Kill" the campaign after 5 cells.
  auto interrupted = opts;
  interrupted.max_cells = 5;
  const auto first = run_campaign(grid, interrupted);
  EXPECT_EQ(first.simulated, 5u);
  EXPECT_EQ(first.pending, 7u);

  // Resume: exactly the 7 remaining cells simulate; nothing re-runs.
  auto resumed = opts;
  resumed.resume = true;
  const auto second = run_campaign(grid, resumed);
  EXPECT_EQ(second.simulated, 7u);
  EXPECT_EQ(second.resumed, 5u);
  EXPECT_EQ(second.pending, 0u);
  for (const auto& cell : second.cells) EXPECT_TRUE(cell.done);
  // Resumed cells re-serve their results from the cache.
  EXPECT_TRUE(second.cells[0].resumed);
  EXPECT_GT(second.cells[0].result.repeats, 0);

  // The appended JSONL now holds all 12 rows, each index exactly once.
  std::ifstream in(opts.results_path);
  std::set<int> indices;
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    const auto row = Json::parse(line);
    ASSERT_TRUE(row.has_value());
    indices.insert(static_cast<int>(row->number_at("index", -1)));
    ++rows;
  }
  EXPECT_EQ(rows, 12u);
  EXPECT_EQ(indices.size(), 12u);

  // Resuming against a *different* grid must refuse, not mix campaigns.
  auto other = grid;
  other.streams = {1, 4};
  EXPECT_THROW(run_campaign(other, resumed), std::runtime_error);
}

// ---- sweep CLI -----------------------------------------------------------

TEST(SweepCli, ParsesFullGrid) {
  const auto cli = parse_sweep_cli(
      {"--name", "nightly", "--testbed", "amlight", "--kernels", "5.15,6.8",
       "--paths", "LAN,WAN 104ms", "--streams", "1,8", "--pacing", "0,50G",
       "--zerocopy", "0,1", "--optmem", "default,1M", "--big-tcp", "0,1",
       "--ring", "default,8192", "--congestion", "bbr3", "--skip-rx-copy",
       "--time", "30", "--repeats", "5", "--seed", "7", "--jobs", "0",
       "--cache", "/tmp/c", "--out", "/tmp/r.jsonl", "--resume",
       "--max-cells", "9"});
  ASSERT_TRUE(cli.error.empty()) << cli.error;
  EXPECT_EQ(cli.grid.name, "nightly");
  EXPECT_EQ(cli.grid.testbed, "amlight");
  EXPECT_EQ(cli.grid.kernels,
            (std::vector<kern::KernelVersion>{kern::KernelVersion::V5_15,
                                              kern::KernelVersion::V6_8}));
  EXPECT_EQ(cli.grid.paths, (std::vector<std::string>{"LAN", "WAN 104ms"}));
  EXPECT_EQ(cli.grid.streams, (std::vector<int>{1, 8}));
  EXPECT_EQ(cli.grid.pacing_gbps, (std::vector<double>{0.0, 50.0}));
  EXPECT_EQ(cli.grid.zerocopy, (std::vector<bool>{false, true}));
  EXPECT_EQ(cli.grid.optmem_max, (std::vector<double>{-1.0, 1e6}));
  EXPECT_EQ(cli.grid.big_tcp, (std::vector<bool>{false, true}));
  EXPECT_EQ(cli.grid.ring, (std::vector<int>{-1, 8192}));
  EXPECT_EQ(cli.grid.congestion, kern::CongestionAlgo::BbrV3);
  EXPECT_TRUE(cli.grid.skip_rx_copy);
  EXPECT_DOUBLE_EQ(cli.grid.duration_sec, 30.0);
  EXPECT_EQ(cli.grid.repeats, 5);
  EXPECT_EQ(cli.grid.base_seed, 7u);
  EXPECT_EQ(cli.run.jobs, 0);
  EXPECT_EQ(cli.run.cache_dir, "/tmp/c");
  EXPECT_EQ(cli.run.results_path, "/tmp/r.jsonl");
  EXPECT_TRUE(cli.run.resume);
  EXPECT_EQ(cli.run.max_cells, 9u);
  EXPECT_EQ(cell_count(cli.grid), 2u * 2 * 2 * 2 * 2 * 2 * 2 * 2);
}

TEST(SweepCli, RejectsGarbage) {
  EXPECT_FALSE(parse_sweep_cli({"--kernels", "4.19"}).error.empty());
  EXPECT_FALSE(parse_sweep_cli({"--streams", "1,banana"}).error.empty());
  EXPECT_FALSE(parse_sweep_cli({"--zerocopy", "0,2"}).error.empty());
  EXPECT_FALSE(parse_sweep_cli({"--jobs", "-1"}).error.empty());
  EXPECT_FALSE(parse_sweep_cli({"--pacing"}).error.empty());
  EXPECT_FALSE(parse_sweep_cli({"--frobnicate", "1"}).error.empty());
  EXPECT_TRUE(parse_sweep_cli({"--jobs", "0"}).error.empty());
}

TEST(SweepCli, QuickPresetAndHelp) {
  const auto cli = parse_sweep_cli({"--quick"});
  ASSERT_TRUE(cli.error.empty());
  EXPECT_DOUBLE_EQ(cli.grid.duration_sec, 2.0);
  EXPECT_EQ(cli.grid.repeats, 2);

  std::string output;
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--help"}), output), 0);
  EXPECT_NE(output.find("--jobs"), std::string::npos);
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--bogus", "x"}), output), 2);
}

TEST(SweepCli, EndToEndTinyCampaign) {
  const std::string dir = scratch_dir("cli_e2e");
  std::string output;
  const auto cli = parse_sweep_cli({"--quick", "--kernels", "6.8", "--paths", "LAN",
                                    "--streams", "1,2", "--jobs", "2", "--cache",
                                    dir + "/cache", "--out", dir + "/rows.jsonl"});
  ASSERT_TRUE(cli.error.empty()) << cli.error;
  EXPECT_EQ(run_sweep_cli(cli, output), 0);
  EXPECT_NE(output.find("summary: total=2 simulated=2 cached=0"), std::string::npos)
      << output;

  // Second invocation: all cache hits, zero simulation work.
  EXPECT_EQ(run_sweep_cli(cli, output), 0);
  EXPECT_NE(output.find("summary: total=2 simulated=0 cached=2"), std::string::npos)
      << output;
}

// ---- scenario axis ---------------------------------------------------------

scenario::Timeline tiny_loss_timeline() {
  scenario::Timeline tl;
  tl.name = "loss";
  scenario::Event e;
  e.at_sec = 1.0;
  e.kind = scenario::EventKind::LossBurst;
  e.value = 0.02;
  e.duration_sec = 0.5;
  tl.events.push_back(e);
  return tl;
}

TEST(SweepGrid, ScenarioAxisMultipliesCellsAndKeepsBaselineStable) {
  GridSpec g = twelve_cell_grid();
  const auto baseline = expand(g);
  g.scenarios = {scenario::Timeline{}, tiny_loss_timeline()};
  const auto cells = expand(g);
  ASSERT_EQ(cells.size(), baseline.size() * 2);

  // The scenario-less cells are byte-identical to the pre-axis expansion:
  // same names, same seeds, same cache keys. Adding the axis must never
  // invalidate existing caches.
  std::size_t plain = 0, scn = 0;
  for (const auto& c : cells) {
    ASSERT_FALSE(c.coords.empty());
    EXPECT_EQ(c.coords.back().first, "scenario");
    if (c.spec.scenario.empty()) {
      const auto& b = baseline[plain++];
      EXPECT_EQ(c.spec.name, b.spec.name);
      EXPECT_EQ(c.spec.base_seed, b.spec.base_seed);
      EXPECT_EQ(spec_key_hex(c.spec), spec_key_hex(b.spec));
      EXPECT_EQ(c.coords.back().second, "none");
    } else {
      ++scn;
      EXPECT_NE(c.spec.name.find("/scn-loss"), std::string::npos) << c.spec.name;
      EXPECT_EQ(c.coords.back().second, "loss");
    }
  }
  EXPECT_EQ(plain, baseline.size());
  EXPECT_EQ(scn, baseline.size());
}

TEST(SweepCache, ScenarioChangesTheKeyAndTheSeed) {
  GridSpec g = twelve_cell_grid();
  g.kernels = {kern::KernelVersion::V6_8};
  g.paths = {"LAN"};
  g.streams = {1};
  g.scenarios = {scenario::Timeline{}, tiny_loss_timeline()};
  const auto cells = expand(g);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_NE(spec_key_hex(cells[0].spec), spec_key_hex(cells[1].spec));
  EXPECT_NE(cells[0].spec.base_seed, cells[1].spec.base_seed);

  // No scenario -> no scenario fields in the canonical text at all.
  const auto plain_text = canonicalize(spec_fields(cells[0].spec));
  const auto scn_text = canonicalize(spec_fields(cells[1].spec));
  EXPECT_EQ(plain_text.find("scenario."), std::string::npos);
  EXPECT_NE(scn_text.find("scenario.000.kind=loss_burst"), std::string::npos)
      << scn_text;
}

TEST(SweepCli, ScenariosFlagParsesFilesAndNone) {
  const std::string dir = scratch_dir("scn_flag");
  const std::string tl_path = dir + "/loss.json";
  ASSERT_TRUE(scenario::write_timeline(tl_path, tiny_loss_timeline()));

  const auto cli = parse_sweep_cli({"--scenarios", "none," + tl_path});
  ASSERT_TRUE(cli.error.empty()) << cli.error;
  ASSERT_EQ(cli.grid.scenarios.size(), 2u);
  EXPECT_TRUE(cli.grid.scenarios[0].empty());
  EXPECT_EQ(cli.grid.scenarios[1].name, "loss");

  EXPECT_FALSE(parse_sweep_cli({"--scenarios", dir + "/absent.json"}).error.empty());
}

// ---- cache garbage collection ----------------------------------------------

// A directory with one live entry, one wrong-salt entry, one orphan temp
// file and one unrelated file — the GC fixture.
struct GcFixture {
  std::string dir;
  fs::path live, stale, tmp, unrelated;
};

GcFixture make_gc_fixture(const std::string& name) {
  GcFixture f;
  f.dir = scratch_dir(name);
  f.live = fs::path(f.dir) / "aaaaaaaaaaaaaaaa.json";
  f.stale = fs::path(f.dir) / "bbbbbbbbbbbbbbbb.json";
  f.tmp = fs::path(f.dir) / "cccccccccccccccc.json.tmp";
  f.unrelated = fs::path(f.dir) / "README";
  std::ofstream(f.live) << "{\"schema\": \"" << kCacheSalt << "\"}";
  std::ofstream(f.stale) << "{\"schema\": \"dtnsim.sweep.v0\"}";
  std::ofstream(f.tmp) << "{\"half\": tru";
  std::ofstream(f.unrelated) << "not a cache entry";
  return f;
}

TEST(SweepCacheGc, SaltMismatchEvictsStaleAndTempNeverUnrelated) {
  const auto f = make_gc_fixture("gc_salt");
  GcOptions opts;
  opts.salt_mismatch = true;
  const auto rep = ResultCache(f.dir).gc(opts);
  EXPECT_EQ(rep.scanned, 3u);  // live + stale + tmp; README is not scanned
  EXPECT_EQ(rep.evicted, 2u);
  EXPECT_EQ(rep.kept, 1u);
  EXPECT_GT(rep.reclaimed_bytes, 0u);
  EXPECT_TRUE(fs::exists(f.live));
  EXPECT_FALSE(fs::exists(f.stale));
  EXPECT_FALSE(fs::exists(f.tmp));
  EXPECT_TRUE(fs::exists(f.unrelated));
}

TEST(SweepCacheGc, MaxAgeEvictsOnlyOldEntries) {
  const auto f = make_gc_fixture("gc_age");
  // Age the live entry far past the cutoff; the stale one stays fresh (age
  // GC alone does not look at the salt).
  fs::last_write_time(f.live, fs::file_time_type::clock::now() -
                                  std::chrono::hours(24 * 30));
  GcOptions opts;
  opts.max_age_days = 7.0;
  const auto rep = ResultCache(f.dir).gc(opts);
  EXPECT_EQ(rep.evicted, 2u);  // old live entry + the always-eligible tmp
  EXPECT_FALSE(fs::exists(f.live));
  EXPECT_TRUE(fs::exists(f.stale));
  EXPECT_FALSE(fs::exists(f.tmp));
}

TEST(SweepCacheGc, DryRunReportsButDeletesNothing) {
  const auto f = make_gc_fixture("gc_dry");
  GcOptions opts;
  opts.salt_mismatch = true;
  opts.dry_run = true;
  const auto rep = ResultCache(f.dir).gc(opts);
  EXPECT_TRUE(rep.dry_run);
  EXPECT_EQ(rep.evicted, 2u);
  EXPECT_TRUE(fs::exists(f.stale));
  EXPECT_TRUE(fs::exists(f.tmp));
}

TEST(SweepCli, GcFlagsParseAndRequireCacheAndCriterion) {
  const auto cli = parse_sweep_cli({"--gc", "--cache", "/tmp/c",
                                    "--max-age-days", "7", "--dry-run"});
  ASSERT_TRUE(cli.error.empty()) << cli.error;
  EXPECT_TRUE(cli.gc);
  EXPECT_DOUBLE_EQ(cli.gc_opts.max_age_days, 7.0);
  EXPECT_TRUE(cli.gc_opts.dry_run);

  EXPECT_FALSE(parse_sweep_cli({"--gc", "--max-age-days", "potato"}).error.empty());

  std::string output;
  // --gc without --cache, and without any criterion: both usage errors.
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--gc", "--max-age-days", "7"}),
                          output), 2);
  const std::string dir = scratch_dir("gc_cli");
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--gc", "--cache", dir}), output), 2);
}

TEST(SweepCli, GcEndToEndThroughTheCli) {
  const auto f = make_gc_fixture("gc_cli_e2e");
  std::string output;
  const auto cli = parse_sweep_cli({"--gc", "--cache", f.dir, "--salt-mismatch"});
  ASSERT_TRUE(cli.error.empty()) << cli.error;
  EXPECT_EQ(run_sweep_cli(cli, output), 0);
  EXPECT_NE(output.find("evicted"), std::string::npos) << output;
  EXPECT_FALSE(fs::exists(f.stale));
  EXPECT_TRUE(fs::exists(f.live));
}

// ---- campaign report + plot (dtnsim::report integration) --------------------

// One synthetic JSONL row. Extras (perf cycles/byte, scenario dip/recovery)
// ride along only when asked — exactly the presence contract row_json uses.
std::string report_row(int index, const std::string& name, bool perf,
                       bool dip, double recovery_sec = 3.5) {
  std::string row = strfmt(
      "{\"index\": %d, \"name\": \"%s\", \"repeats\": 2, \"avg_gbps\": 9.5, "
      "\"stdev_gbps\": 0.25, \"min_gbps\": 9.25, \"max_gbps\": 9.75, "
      "\"avg_retransmits\": 4, \"snd_cpu_pct\": 55, \"rcv_cpu_pct\": 80",
      index, name.c_str());
  if (perf) row += ", \"tx_cyc_per_byte\": 1.23, \"rx_cyc_per_byte\": 2.46";
  if (dip) {
    row += strfmt(", \"baseline_gbps\": 9.5, \"dip_gbps\": 2.5, "
                  "\"recovery_sec\": %.1f, \"retained\": 0.26",
                  recovery_sec);
  }
  return row + "}\n";
}

TEST(SweepReport, ColumnsArePresenceDriven) {
  const std::string dir = scratch_dir("report_cols");
  const std::string plain = dir + "/plain.jsonl";
  std::ofstream(plain) << report_row(0, "a", false, false)
                       << report_row(1, "b", false, false);
  std::string output;
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--report", plain}), output), 0);
  // No row carries the extras -> the table must not grow the columns.
  EXPECT_EQ(output.find("tx cyc/B"), std::string::npos) << output;
  EXPECT_EQ(output.find("dip Gbps"), std::string::npos) << output;

  const std::string rich = dir + "/rich.jsonl";
  std::ofstream(rich) << report_row(0, "a", false, false)
                      << report_row(1, "b", true, true)
                      << report_row(2, "c", true, true, -1.0);
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--report", rich}), output), 0);
  EXPECT_NE(output.find("tx cyc/B"), std::string::npos) << output;
  EXPECT_NE(output.find("dip Gbps"), std::string::npos) << output;
  EXPECT_NE(output.find("1.23"), std::string::npos) << output;
  EXPECT_NE(output.find("2.50"), std::string::npos) << output;
  EXPECT_NE(output.find("never"), std::string::npos) << output;  // rec < 0
  // The extras-less row renders "-" fills, not zeros.
  EXPECT_NE(output.find("-"), std::string::npos) << output;
}

TEST(SweepReport, PlotOutWritesGnuplotNextToTheReport) {
  const std::string dir = scratch_dir("report_plot");
  const std::string rows = dir + "/rows.jsonl";
  std::ofstream(rows) << report_row(0, "a", true, true);
  const std::string base = dir + "/fig";
  std::string output;
  EXPECT_EQ(run_sweep_cli(
                parse_sweep_cli({"--report", rows, "--plot-out", base}), output),
            0);
  EXPECT_NE(output.find("gnuplot " + base + ".gp"), std::string::npos) << output;
  EXPECT_TRUE(fs::exists(base + ".gp"));
  EXPECT_TRUE(fs::exists(base + ".dat"));

  // --plot-out without --report has no rows to plot: usage error.
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--plot-out", base}), output), 2);
  EXPECT_NE(output.find("--report"), std::string::npos);
}

TEST(SweepCli, TelemetryAndPerfFlagsReachTheGrid) {
  const auto tel = parse_sweep_cli({"--telemetry"});
  ASSERT_TRUE(tel.error.empty()) << tel.error;
  EXPECT_TRUE(tel.grid.telemetry.enabled);
  EXPECT_FALSE(tel.grid.telemetry.perf_enabled);
  const auto perf = parse_sweep_cli({"--perf"});
  ASSERT_TRUE(perf.error.empty()) << perf.error;
  EXPECT_TRUE(perf.grid.telemetry.enabled);
  EXPECT_TRUE(perf.grid.telemetry.perf_enabled);
}

TEST(SweepReport, LiveCampaignRowsCarryPerfColumns) {
  const std::string dir = scratch_dir("report_live");
  const std::string rows = dir + "/rows.jsonl";
  std::string output;
  const auto run = parse_sweep_cli({"--quick", "--kernels", "6.8", "--paths",
                                    "LAN", "--streams", "1", "--perf", "--out",
                                    rows});
  ASSERT_TRUE(run.error.empty()) << run.error;
  ASSERT_EQ(run_sweep_cli(run, output), 0) << output;
  // The streamed row carries the cycles/byte extras and the report renders
  // them — the acceptance path, minus the 12-cell scale.
  EXPECT_EQ(run_sweep_cli(parse_sweep_cli({"--report", rows}), output), 0);
  EXPECT_NE(output.find("tx cyc/B"), std::string::npos) << output;
}

}  // namespace
}  // namespace dtnsim::sweep
