// Unit tests: the Linux-socket-shaped API (SO_ZEROCOPY / MSG_ZEROCOPY
// error-queue completions, MSG_TRUNC, SO_MAX_PACING_RATE).
#include <gtest/gtest.h>

#include "dtnsim/kern/socket_api.hpp"
#include "dtnsim/kern/version.hpp"

namespace dtnsim::kern {
namespace {

SimSocket make_socket(double optmem = 1048576.0, QdiscKind qdisc = QdiscKind::Fq) {
  SysctlConfig s = SysctlConfig::fasterdata_tuned();
  s.optmem_max = optmem;
  s.default_qdisc = qdisc;
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  return SimSocket(s, caps, units::Bytes(9000.0));
}

TEST(SimSocket, ZerocopyWithoutSetsockoptIsEinval) {
  auto sock = make_socket();
  const auto res = sock.send(units::Bytes(65536.0), MSG_ZEROCOPY_FLAG);
  EXPECT_EQ(res.err, SockErr::EInval);
  EXPECT_DOUBLE_EQ(res.bytes_queued, 0.0);
  // Plain send still works.
  EXPECT_EQ(sock.send(units::Bytes(65536.0), 0).err, SockErr::Ok);
}

TEST(SimSocket, ZerocopySendChargesOptmem) {
  auto sock = make_socket();
  sock.set_zerocopy(true);
  const auto res = sock.send(units::Bytes(10 * 65536.0), MSG_ZEROCOPY_FLAG);
  EXPECT_EQ(res.err, SockErr::Ok);
  EXPECT_GT(res.zc_bytes, 0.0);
  EXPECT_GT(sock.optmem_used(), 0.0);
}

TEST(SimSocket, SilentFallbackWhenOptmemTiny) {
  auto sock = make_socket(/*optmem=*/20480.0);
  sock.set_zerocopy(true);
  const auto res = sock.send(units::Bytes(100e6), MSG_ZEROCOPY_FLAG);
  EXPECT_EQ(res.err, SockErr::Ok);  // Linux does NOT fail: it copies
  EXPECT_GT(res.fallback_bytes, 0.0);
  EXPECT_NEAR(res.zc_bytes + res.fallback_bytes, res.bytes_queued, 1e-6);
}

TEST(SimSocket, WmemLimitsQueueing) {
  SysctlConfig s = SysctlConfig::linux_defaults();  // 4 MB wmem max
  const auto caps = skb_caps(kernel_profile(KernelVersion::V6_8), false, units::Bytes(0));
  SimSocket sock(s, caps, units::Bytes(9000.0));
  const auto first = sock.send(units::Bytes(100e6), 0);
  EXPECT_EQ(first.err, SockErr::Ok);
  EXPECT_NEAR(first.bytes_queued, s.max_send_window_bytes(), 1.0);
  const auto second = sock.send(units::Bytes(1.0), 0);
  EXPECT_EQ(second.err, SockErr::EAgain);
  // ACKs free wmem again.
  sock.on_acked(units::Bytes(first.bytes_queued));
  EXPECT_EQ(sock.send(units::Bytes(1.0), 0).err, SockErr::Ok);
}

TEST(SimSocket, CompletionsArriveOnErrorQueueInOrder) {
  auto sock = make_socket();
  sock.set_zerocopy(true);
  const double chunk = 65536.0;
  for (int i = 0; i < 3; ++i) sock.send(units::Bytes(chunk), MSG_ZEROCOPY_FLAG);
  EXPECT_FALSE(sock.read_error_queue().has_value());  // nothing ACKed yet

  sock.on_acked(units::Bytes(3 * chunk));
  const auto c = sock.read_error_queue();
  ASSERT_TRUE(c.has_value());
  // Contiguous same-kind ranges coalesce: one notification covering 0..2.
  EXPECT_EQ(c->lo, 0u);
  EXPECT_EQ(c->hi, 2u);
  EXPECT_FALSE(c->copied);
  EXPECT_FALSE(sock.read_error_queue().has_value());
}

TEST(SimSocket, CopiedRangesFlaggedSeparately) {
  auto sock = make_socket(/*optmem=*/320.0);  // two super-packets' worth
  sock.set_zerocopy(true);
  sock.send(units::Bytes(65536.0), MSG_ZEROCOPY_FLAG);   // zerocopy
  sock.send(units::Bytes(65536.0), MSG_ZEROCOPY_FLAG);   // zerocopy (second charge)
  sock.send(units::Bytes(65536.0), MSG_ZEROCOPY_FLAG);   // optmem gone: falls back
  sock.on_acked(units::Bytes(3 * 65536.0));
  const auto first = sock.read_error_queue();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->copied);
  EXPECT_EQ(first->hi, 1u);
  const auto second = sock.read_error_queue();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->copied);  // SO_EE_CODE_ZEROCOPY_COPIED
  EXPECT_EQ(second->lo, 2u);
}

TEST(SimSocket, PartialAckSplitsRange) {
  auto sock = make_socket();
  sock.set_zerocopy(true);
  sock.send(units::Bytes(65536.0), MSG_ZEROCOPY_FLAG);
  sock.on_acked(units::Bytes(30000.0));  // less than the first range
  EXPECT_FALSE(sock.read_error_queue().has_value());
  sock.on_acked(units::Bytes(35536.0));
  EXPECT_TRUE(sock.read_error_queue().has_value());
}

TEST(SimSocket, MsgTruncDiscardsWithoutCopy) {
  auto sock = make_socket();
  sock.deliver(units::Bytes(1e6));
  const double got = sock.recv(units::Bytes(4e5), MSG_TRUNC_FLAG);
  EXPECT_DOUBLE_EQ(got, 4e5);
  EXPECT_DOUBLE_EQ(sock.bytes_truncated(), 4e5);
  EXPECT_DOUBLE_EQ(sock.bytes_copied_to_user(), 0.0);
  // A normal recv copies.
  sock.recv(units::Bytes(6e5), 0);
  EXPECT_DOUBLE_EQ(sock.bytes_copied_to_user(), 6e5);
  EXPECT_DOUBLE_EQ(sock.rx_queue_bytes(), 0.0);
}

TEST(SimSocket, PacingRateNeedsFq) {
  auto fq_sock = make_socket(1048576.0, QdiscKind::Fq);
  fq_sock.set_max_pacing_rate(units::Rate::from_bps(50e9));
  EXPECT_DOUBLE_EQ(fq_sock.effective_pacing_bps(), 50e9);

  auto codel_sock = make_socket(1048576.0, QdiscKind::FqCodel);
  codel_sock.set_max_pacing_rate(units::Rate::from_bps(50e9));
  EXPECT_DOUBLE_EQ(codel_sock.effective_pacing_bps(), 0.0);  // inert
}

TEST(SimSocket, SendCallCounterAdvances) {
  auto sock = make_socket();
  sock.set_zerocopy(true);
  for (int i = 0; i < 5; ++i) sock.send(units::Bytes(1000.0), i % 2 ? MSG_ZEROCOPY_FLAG : 0);
  EXPECT_EQ(sock.send_calls(), 5u);
}

}  // namespace
}  // namespace dtnsim::kern
