// Integration tests: parallel streams (Tables I-III, Figs. 10-11).
#include <gtest/gtest.h>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim {
namespace {

harness::TestResult run8(Experiment e, double pace_gbps) {
  return e.streams(8).pacing(units::Rate::from_gbps(pace_gbps)).duration(units::SimTime::from_seconds(30)).repeats(4).run();
}

// ---- Table I: ESnet LAN, kernel 5.15, no flow control ----

TEST(TableI, UnpacedNearMemoryCeiling) {
  const auto r = run8(Experiment(harness::esnet(kern::KernelVersion::V5_15)), 0);
  EXPECT_NEAR(r.avg_gbps, 166.0, 10.0);
}

TEST(TableI, PacingGridOrdering) {
  const auto tb = harness::esnet(kern::KernelVersion::V5_15);
  const auto p25 = run8(Experiment(tb), 25);
  const auto p20 = run8(Experiment(tb), 20);
  const auto p15 = run8(Experiment(tb), 15);
  EXPECT_GT(p25.avg_gbps, p20.avg_gbps);
  EXPECT_GT(p20.avg_gbps, p15.avg_gbps);
  EXPECT_NEAR(p15.avg_gbps, 118.0, 4.0);  // 8x15 minus overhead
  // Deep pacing is rock stable (paper: stdev 0.1).
  EXPECT_LT(p15.stdev_gbps, 1.0);
}

// ---- Table II: ESnet WAN ----

TEST(TableII, UnpacedHeavyRetransmits) {
  const auto r =
      run8(Experiment(harness::esnet(kern::KernelVersion::V5_15)).path("WAN 63ms"), 0);
  EXPECT_NEAR(r.avg_gbps, 127.0, 10.0);
  EXPECT_GT(r.avg_retransmits, 10000.0);  // paper: 73K
}

TEST(TableII, PacingCutsRetransmitsMonotonically) {
  const auto tb = harness::esnet(kern::KernelVersion::V5_15);
  const auto p0 = run8(Experiment(tb).path("WAN 63ms"), 0);
  const auto p25 = run8(Experiment(tb).path("WAN 63ms"), 25);
  const auto p15 = run8(Experiment(tb).path("WAN 63ms"), 15);
  EXPECT_GT(p0.avg_retransmits, p25.avg_retransmits * 3);
  EXPECT_GT(p25.avg_retransmits, p15.avg_retransmits);
  // Moderate pacing beats unpaced on the WAN (136 vs 127 in the paper).
  EXPECT_GT(p25.avg_gbps, p0.avg_gbps);
  EXPECT_NEAR(p15.avg_gbps, 115.0, 6.0);
}

TEST(TableII, InterferenceAbove120G) {
  // Paper: flows interfere "any time the total bandwidth attempted is over
  // 120 Gbps" — visible as retransmits appearing between 15 and 20 G/flow.
  const auto tb = harness::esnet(kern::KernelVersion::V5_15);
  const auto p15 = run8(Experiment(tb).path("WAN 63ms"), 15);  // 120G attempted
  const auto p20 = run8(Experiment(tb).path("WAN 63ms"), 20);  // 160G attempted
  EXPECT_LT(p15.avg_retransmits, 200.0);
  EXPECT_GT(p20.avg_retransmits, 500.0);
}

// ---- Table III: production DTNs with 802.3x flow control ----

TEST(TableIII, ThroughputGrid) {
  const auto tb = harness::esnet_production();
  const auto p0 = run8(Experiment(tb).path("production 63ms"), 0);
  const auto p15 = run8(Experiment(tb).path("production 63ms"), 15);
  const auto p12 = run8(Experiment(tb).path("production 63ms"), 12);
  const auto p10 = run8(Experiment(tb).path("production 63ms"), 10);
  // "pacing ... but the average throughput is not impacted" (98/98/93/79).
  EXPECT_NEAR(p0.avg_gbps, 96.0, 5.0);
  EXPECT_NEAR(p15.avg_gbps, 96.0, 5.0);
  EXPECT_NEAR(p12.avg_gbps, 93.0, 4.0);
  EXPECT_NEAR(p10.avg_gbps, 79.0, 3.0);
}

TEST(TableIII, PacingNarrowsPerFlowRange) {
  const auto tb = harness::esnet_production();
  const auto p0 = run8(Experiment(tb).path("production 63ms"), 0);
  const auto p10 = run8(Experiment(tb).path("production 63ms"), 10);
  // Unpaced: 9-16 Gbps per flow; paced to 10: exactly 10-10.
  EXPECT_GT(p0.flow_max_gbps - p0.flow_min_gbps, 3.0);
  EXPECT_NEAR(p10.flow_min_gbps, 10.0, 0.6);
  EXPECT_NEAR(p10.flow_max_gbps, 10.0, 0.6);
}

TEST(TableIII, FlowControlPreventsNicDrops) {
  const auto tb = harness::esnet_production();
  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.paths[0];
  cfg.streams = 8;
  cfg.link_flow_control = true;
  cfg.duration = units::SimTime::from_seconds(10);
  cfg.seed = 5;
  const auto res = flow::run_transfer(cfg);
  EXPECT_DOUBLE_EQ(res.dropped_bytes_nic, 0.0);
}

// ---- Figs. 10/11 shapes ----

TEST(Fig10, ZerocopyPacingNearMaxTput) {
  // ESnet, kernel 6.8: zc+pacing approaches min(8 x pace, 200G NIC).
  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  const auto p25 = run8(Experiment(tb).zerocopy(), 25);
  EXPECT_GT(p25.avg_gbps, 170.0);  // "nearly the maximum possible"
  const auto p15 = run8(Experiment(tb).zerocopy(), 15);
  EXPECT_NEAR(p15.avg_gbps, 120.0, 5.0);
  EXPECT_LT(p15.stdev_gbps, p25.stdev_gbps + 1.0);  // deeper pacing, steadier
}

TEST(Fig11, AmLightBaselineCpuLimited) {
  // Default 8 streams: ~62 Gbps LAN dropping toward ~50 at 104 ms.
  const auto lan = run8(Experiment(harness::amlight()), 0);
  const auto wan = run8(Experiment(harness::amlight()).path("WAN 104ms"), 0);
  EXPECT_NEAR(lan.avg_gbps, 62.0, 8.0);
  EXPECT_LT(wan.avg_gbps, lan.avg_gbps);
  EXPECT_GT(wan.avg_gbps, 40.0);
}

TEST(Fig11, DeeperPacingSmallerStdev) {
  const auto p10 =
      run8(Experiment(harness::amlight()).path("WAN 54ms").zerocopy(), 10);
  const auto p9 = run8(Experiment(harness::amlight()).path("WAN 54ms").zerocopy(), 9);
  EXPECT_LE(p9.stdev_gbps, p10.stdev_gbps + 0.5);
}

TEST(Fig11, UnpacedZerocopySuffersFromBackgroundTraffic) {
  // AmLight WAN carries ~16G of production traffic: unpaced zerocopy cannot
  // reach the paced maximum (unlike on the idle ESnet testbed).
  const auto unpaced =
      run8(Experiment(harness::amlight()).path("WAN 54ms").zerocopy(), 0);
  const auto paced =
      run8(Experiment(harness::amlight()).path("WAN 54ms").zerocopy(), 9);
  EXPECT_LT(unpaced.avg_gbps, paced.avg_gbps * 1.02);
  EXPECT_GT(unpaced.avg_retransmits, paced.avg_retransmits);
}

}  // namespace
}  // namespace dtnsim
