// Unit tests: congestion control (CUBIC, BBR, Reno) and RTT estimation.
#include <gtest/gtest.h>

#include "dtnsim/tcp/bbr.hpp"
#include "dtnsim/tcp/cc.hpp"
#include "dtnsim/tcp/cubic.hpp"
#include "dtnsim/tcp/reno.hpp"
#include "dtnsim/tcp/rtt.hpp"

namespace dtnsim::tcp {
namespace {

constexpr double kMss = 8960.0;

TEST(Factory, MakesRequestedAlgorithm) {
  EXPECT_STREQ(make_congestion_control(kern::CongestionAlgo::Cubic, kMss)->name(), "cubic");
  EXPECT_STREQ(make_congestion_control(kern::CongestionAlgo::BbrV1, kMss)->name(), "bbr");
  EXPECT_STREQ(make_congestion_control(kern::CongestionAlgo::BbrV3, kMss)->name(), "bbr3");
  EXPECT_STREQ(make_congestion_control(kern::CongestionAlgo::Reno, kMss)->name(), "reno");
}

TEST(Cubic, StartsAtTenMss) {
  Cubic c(kMss);
  EXPECT_DOUBLE_EQ(c.cwnd_bytes(), 10 * kMss);
  EXPECT_TRUE(c.in_slow_start());
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  Cubic c(kMss);
  const double before = c.cwnd_bytes();
  c.on_ack(0.1, before, 0.1);  // a full window ACKed in one RTT
  EXPECT_NEAR(c.cwnd_bytes(), 2 * before, 1.0);
}

TEST(Cubic, LossExitsSlowStartAndBacksOff) {
  Cubic c(kMss);
  for (int i = 0; i < 10; ++i) c.on_ack(i * 0.1, c.cwnd_bytes(), 0.1);
  const double peak = c.cwnd_bytes();
  c.on_loss(1.0, kMss * 100);
  EXPECT_FALSE(c.in_slow_start());
  EXPECT_NEAR(c.cwnd_bytes(), peak * Cubic::kBeta, peak * 0.01);
}

TEST(Cubic, ConcaveRecoveryTowardWmax) {
  Cubic c(kMss);
  // Get to congestion avoidance with a known w_max.
  for (int i = 0; i < 12; ++i) c.on_ack(i * 0.1, c.cwnd_bytes(), 0.1);
  c.on_loss(1.2, kMss);
  const double w_after_loss = c.cwnd_bytes();
  const double w_max = c.w_max_mss() * kMss;
  // Recovery: the window grows but plateaus near w_max (cubic inflection).
  double t = 1.3, w = w_after_loss;
  for (int i = 0; i < 200; ++i) {
    c.on_ack(t, w, 0.1);
    w = c.cwnd_bytes();
    t += 0.1;
  }
  EXPECT_GT(w, w_after_loss);
  EXPECT_GT(w, w_max * 0.95);
}

TEST(Cubic, FastConvergenceShrinksWmaxOnRepeatLoss) {
  Cubic c(kMss);
  for (int i = 0; i < 12; ++i) c.on_ack(i * 0.1, c.cwnd_bytes(), 0.1);
  c.on_loss(1.2, kMss);
  const double w_max1 = c.w_max_mss();
  c.on_loss(1.3, kMss);  // loss again while below previous w_max
  EXPECT_LT(c.w_max_mss(), w_max1);
}

TEST(Cubic, FloorAtTwoMss) {
  Cubic c(kMss);
  for (int i = 0; i < 50; ++i) c.on_loss(i * 0.01, kMss);
  EXPECT_GE(c.cwnd_bytes(), 2 * kMss);
}

TEST(Reno, AimdShape) {
  Reno r(kMss);
  for (int i = 0; i < 8; ++i) r.on_ack(i * 0.1, r.cwnd_bytes(), 0.1);
  const double peak = r.cwnd_bytes();
  r.on_loss(1.0, kMss);
  EXPECT_NEAR(r.cwnd_bytes(), peak / 2, 1.0);
  EXPECT_FALSE(r.in_slow_start());
  const double w = r.cwnd_bytes();
  r.on_ack(1.1, w, 0.1);  // one RTT of ACKs in CA: +1 MSS
  EXPECT_NEAR(r.cwnd_bytes() - w, kMss, kMss * 0.05);
}

TEST(Bbr, EstimatesBandwidthFromDeliveryRate) {
  Bbr b(Bbr::Version::V1, kMss);
  // Deliver 10 Gbps for a while.
  const double rate = 10e9;
  for (int i = 0; i < 30; ++i) b.on_ack(i * 0.01, rate / 8 * 0.01, 0.01);
  EXPECT_NEAR(b.btl_bw_bps(), rate, rate * 0.05);
  EXPECT_NEAR(b.min_rtt_sec(), 0.01, 1e-9);
}

TEST(Bbr, StartupExitsOnPlateau) {
  Bbr b(Bbr::Version::V1, kMss);
  for (int i = 0; i < 30; ++i) b.on_ack(i * 0.01, 10e9 / 8 * 0.01, 0.01);
  EXPECT_FALSE(b.in_slow_start());  // left STARTUP after bw stopped growing
}

TEST(Bbr, SelfPacedAndCwndIsGainTimesBdp) {
  Bbr b(Bbr::Version::V3, kMss);
  EXPECT_TRUE(b.self_paced());
  for (int i = 0; i < 30; ++i) b.on_ack(i * 0.01, 10e9 / 8 * 0.01, 0.01);
  const double bdp = b.btl_bw_bps() * b.min_rtt_sec() / 8.0;
  EXPECT_NEAR(b.cwnd_bytes(), 2.0 * bdp, bdp * 0.1);
  EXPECT_GT(b.pacing_rate_bps(), 0.0);
}

TEST(Bbr, V1IgnoresLossV3BacksOff) {
  Bbr v1(Bbr::Version::V1, kMss);
  Bbr v3(Bbr::Version::V3, kMss);
  for (auto* b : {&v1, &v3}) {
    for (int i = 0; i < 30; ++i) b->on_ack(i * 0.01, 10e9 / 8 * 0.01, 0.01);
  }
  const double bw1 = v1.btl_bw_bps(), bw3 = v3.btl_bw_bps();
  const double heavy_loss = 10e9 * 0.01;  // far above the 2% BDP threshold
  v1.on_loss(0.5, heavy_loss);
  v3.on_loss(0.5, heavy_loss);
  EXPECT_DOUBLE_EQ(v1.btl_bw_bps(), bw1);  // v1: loss-blind
  EXPECT_LT(v3.btl_bw_bps(), bw3);         // v3: backs off
}

TEST(Bbr, RampFasterThanCubic) {
  // Paper §IV-F: "BBRv1/BBRv3 both ramp up faster than CUBIC" on WAN.
  Bbr bbr(Bbr::Version::V1, kMss);
  Cubic cubic(kMss);
  const double rtt = 0.104;
  double t = 0;
  // Feed both the same ACK stream shape for 10 rounds.
  for (int i = 0; i < 10; ++i) {
    const double acked_bbr = bbr.cwnd_bytes();
    const double acked_cubic = cubic.cwnd_bytes();
    bbr.on_ack(t, acked_bbr, rtt);
    cubic.on_ack(t, acked_cubic, rtt);
    t += rtt;
  }
  EXPECT_GT(bbr.cwnd_bytes(), cubic.cwnd_bytes());
}

TEST(Rtt, SmoothedEstimate) {
  RttEstimator e;
  EXPECT_FALSE(e.has_sample());
  e.add_sample(0.1);
  EXPECT_DOUBLE_EQ(e.srtt_sec(), 0.1);
  for (int i = 0; i < 100; ++i) e.add_sample(0.2);
  EXPECT_NEAR(e.srtt_sec(), 0.2, 0.001);
  EXPECT_DOUBLE_EQ(e.min_rtt_sec(), 0.1);
}

TEST(Rtt, RtoFloored) {
  RttEstimator e;
  e.add_sample(0.001);
  EXPECT_GE(e.rto_sec(), 0.2);  // Linux 200 ms floor
  EXPECT_DOUBLE_EQ(RttEstimator{}.rto_sec(), 1.0);
}

TEST(Rtt, IgnoresNonPositive) {
  RttEstimator e;
  e.add_sample(-1.0);
  e.add_sample(0.0);
  EXPECT_FALSE(e.has_sample());
}

}  // namespace
}  // namespace dtnsim::tcp
