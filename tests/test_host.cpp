// Unit tests: host composition, tuning, VM overhead model.
#include <gtest/gtest.h>

#include <cmath>

#include "dtnsim/host/host.hpp"
#include "dtnsim/host/vm.hpp"

namespace dtnsim::host {
namespace {

TEST(Tuning, DtnTunedDefaults) {
  const auto t = TuningConfig::dtn_tuned();
  EXPECT_TRUE(t.irqbalance_disabled);
  EXPECT_TRUE(t.performance_governor);
  EXPECT_TRUE(t.smt_off);
  EXPECT_TRUE(t.iommu_passthrough);
  EXPECT_DOUBLE_EQ(t.mtu_bytes, 9000.0);
  EXPECT_EQ(t.sysctl.default_qdisc, kern::QdiscKind::Fq);
}

TEST(Tuning, StockIsUntuned) {
  const auto t = TuningConfig::stock();
  EXPECT_FALSE(t.irqbalance_disabled);
  EXPECT_FALSE(t.iommu_passthrough);
  EXPECT_DOUBLE_EQ(t.mtu_bytes, 1500.0);
  EXPECT_EQ(t.sysctl.default_qdisc, kern::QdiscKind::FqCodel);
}

TEST(Host, GovernorAffectsClock) {
  HostConfig cfg;
  Host tuned(cfg);
  cfg.tuning.performance_governor = false;
  Host untuned(cfg);
  EXPECT_GT(tuned.app_core_hz(), untuned.app_core_hz());
}

TEST(Host, SmtOnCostsFrontend) {
  HostConfig cfg;
  Host off(cfg);
  cfg.tuning.smt_off = false;
  Host on(cfg);
  EXPECT_LT(on.app_core_hz(), off.app_core_hz());
}

TEST(Host, BigTcpNeedsKernelSupport) {
  HostConfig cfg;
  cfg.tuning.big_tcp_enabled = true;
  cfg.kernel = kern::kernel_profile(kern::KernelVersion::V5_15);
  EXPECT_FALSE(Host(cfg).big_tcp_active());
  cfg.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  EXPECT_TRUE(Host(cfg).big_tcp_active());
}

TEST(Host, HwGroNeedsKernelAndNic) {
  HostConfig cfg;
  cfg.tuning.hw_gro_enabled = true;
  cfg.nic = net::connectx7_200g();
  cfg.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  EXPECT_FALSE(Host(cfg).hw_gro_active());  // needs 6.11
  cfg.kernel = kern::kernel_profile(kern::KernelVersion::V6_11);
  EXPECT_TRUE(Host(cfg).hw_gro_active());
  cfg.nic = net::connectx5_100g();  // CX-5 cannot
  EXPECT_FALSE(Host(cfg).hw_gro_active());
}

TEST(Host, PlacementDeterministicWhenTuned) {
  HostConfig cfg;
  Host h(cfg);
  Rng r1(1), r2(2);
  const auto p1 = h.sample_placement(1, r1);
  const auto p2 = h.sample_placement(1, r2);
  EXPECT_EQ(p1.irq_cores, p2.irq_cores);
  EXPECT_EQ(p1.app_cores, p2.app_cores);
}

TEST(Host, PlacementRandomWithIrqbalance) {
  HostConfig cfg;
  cfg.tuning.irqbalance_disabled = false;
  Host h(cfg);
  Rng rng(7);
  const auto p1 = h.sample_placement(1, rng);
  const auto p2 = h.sample_placement(1, rng);
  EXPECT_TRUE(p1.app_cores != p2.app_cores || p1.irq_cores != p2.irq_cores);
}

TEST(Host, StackFactorFollowsVendor) {
  HostConfig cfg;
  cfg.cpu = cpu::amd_epyc_73f3();
  cfg.kernel = kern::kernel_profile(kern::KernelVersion::V5_15);
  EXPECT_NEAR(Host(cfg).stack_factor(), 1.31, 1e-9);
  cfg.cpu = cpu::intel_xeon_6346();
  EXPECT_NEAR(Host(cfg).stack_factor(), 1.27, 1e-9);
}

TEST(Host, DmaCapInfiniteWithPassthrough) {
  HostConfig cfg;
  EXPECT_TRUE(std::isinf(Host(cfg).dma_cap_bps()));
  cfg.tuning.iommu_passthrough = false;
  EXPECT_LT(Host(cfg).dma_cap_bps(), 100e9);
}

TEST(Vm, TunedVmNearlyFree) {
  VmConfig vm;  // passthrough + pinned + iommu=pt
  EXPECT_NEAR(virtualization_factor(vm), 1.03, 1e-9);
}

TEST(Vm, UntunedVmExpensive) {
  VmConfig vm;
  vm.pci_passthrough = false;
  vm.vcpu_pinned = false;
  vm.host_iommu_pt = false;
  EXPECT_GT(virtualization_factor(vm), 2.0);
}

TEST(Vm, EachTuningMatters) {
  VmConfig base;
  const double tuned = virtualization_factor(base);
  VmConfig no_pt = base;
  no_pt.pci_passthrough = false;
  VmConfig no_pin = base;
  no_pin.vcpu_pinned = false;
  EXPECT_GT(virtualization_factor(no_pt), tuned);
  EXPECT_GT(virtualization_factor(no_pin), tuned);
}

}  // namespace
}  // namespace dtnsim::host
