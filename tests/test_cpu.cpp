// Unit tests: CPU specs, topology, affinity, budgets, cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "dtnsim/cpu/affinity.hpp"
#include "dtnsim/cpu/budget.hpp"
#include "dtnsim/cpu/cost_model.hpp"
#include "dtnsim/cpu/spec.hpp"
#include "dtnsim/cpu/topology.hpp"

namespace dtnsim::cpu {
namespace {

TEST(CpuSpec, VendorProfiles) {
  const auto intel = intel_xeon_6346();
  const auto amd = amd_epyc_73f3();
  EXPECT_TRUE(intel.avx512);
  EXPECT_FALSE(amd.avx512);
  EXPECT_EQ(intel.total_cores(), 32);
  EXPECT_EQ(amd.total_cores(), 32);
  // AMD clocks higher but has the smaller per-flow L3 window — the paper's
  // explanation for the Intel single-stream advantage.
  EXPECT_GT(amd.max_ghz, intel.max_ghz);
  EXPECT_LT(amd.l3_flow_window_bytes, intel.l3_flow_window_bytes);
}

TEST(CpuSpec, GovernorSelectsClock) {
  const auto s = intel_xeon_6346();
  EXPECT_DOUBLE_EQ(s.core_hz(true), 3.6e9);
  EXPECT_DOUBLE_EQ(s.core_hz(false), 3.1e9);
}

TEST(Topology, SocketMajorLayout) {
  Topology t(intel_xeon_6346());
  EXPECT_EQ(t.num_cores(), 32);
  EXPECT_EQ(t.core(0).socket, 0);
  EXPECT_EQ(t.core(15).socket, 0);
  EXPECT_EQ(t.core(16).socket, 1);
  EXPECT_EQ(t.core(31).socket, 1);
}

TEST(Topology, NumaNodesPartitionCores) {
  Topology t(amd_epyc_73f3());
  const auto n0 = t.cores_on_numa(0);
  const auto n1 = t.cores_on_numa(1);
  EXPECT_EQ(n0.size() + n1.size(), 32u);
  EXPECT_TRUE(t.same_numa(0, 1));
  EXPECT_FALSE(t.same_numa(0, 31));
}

TEST(Affinity, TunedPlacementMatchesPaperRecipe) {
  Topology t(intel_xeon_6346());
  const auto p = tuned_placement(t, 1, 0);
  // set_irq_affinity_cpulist.sh 0-7 + numactl -C 8-15
  ASSERT_EQ(p.irq_cores.size(), 8u);
  EXPECT_EQ(p.irq_cores.front(), 0);
  EXPECT_EQ(p.irq_cores.back(), 7);
  ASSERT_EQ(p.app_cores.size(), 1u);
  EXPECT_EQ(p.app_cores[0], 8);
}

TEST(Affinity, TunedPlacementIsAlwaysClean) {
  Topology t(amd_epyc_73f3());
  const auto q = assess_placement(t, tuned_placement(t, 8, 0));
  EXPECT_TRUE(q.app_numa_local);
  EXPECT_TRUE(q.irq_separated);
  EXPECT_TRUE(q.irq_numa_local);
  EXPECT_DOUBLE_EQ(q.app_cost_mult(), 1.0);
  EXPECT_DOUBLE_EQ(q.irq_cost_mult(), 1.0);
}

TEST(Affinity, IrqbalancePlacementVaries) {
  Topology t(intel_xeon_6346());
  Rng rng(1);
  int bad = 0;
  for (int i = 0; i < 50; ++i) {
    const auto q = assess_placement(t, irqbalance_placement(t, 1, 0, rng));
    if (q.app_cost_mult() > 1.0 || q.irq_cost_mult() > 1.0) ++bad;
  }
  // Random placement lands badly almost all the time (the paper's 20-55 Gbps
  // variance); with 8 IRQ vectors sprayed over 32 cores a clean draw is rare.
  EXPECT_GT(bad, 40);
  EXPECT_LE(bad, 50);
}

TEST(Affinity, PenaltiesCompose) {
  PlacementQuality q;
  q.app_numa_local = false;
  q.irq_separated = false;
  EXPECT_NEAR(q.app_cost_mult(), 1.45 * 1.55, 1e-9);
}

TEST(CoreBudget, ConsumeSaturates) {
  CoreBudget b;
  b.reset(units::Cycles(100.0));
  EXPECT_DOUBLE_EQ(b.consume(units::Cycles(60.0)), 60.0);
  EXPECT_DOUBLE_EQ(b.consume(units::Cycles(60.0)), 40.0);
  EXPECT_DOUBLE_EQ(b.consume(units::Cycles(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(b.utilization(), 1.0);
}

TEST(CorePool, CapacityScalesWithCoresAndTime) {
  CorePool pool(8, 3.6e9);
  pool.begin_tick(0.001);
  EXPECT_DOUBLE_EQ(pool.capacity(), 8 * 3.6e9 * 0.001);
  pool.consume(units::Cycles(pool.capacity() / 2));
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.5);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModel intel_{intel_xeon_6346(), CostModelOptions{}};
  CostModel amd_{amd_epyc_73f3(), CostModelOptions{}};
};

TEST_F(CostModelTest, IntelCopiesCheaperThanAmd) {
  // AVX-512: the paper's Intel hosts hit 55 Gbps vs AMD's 42 single stream.
  EXPECT_LT(intel_.copy_tx_cyc_per_byte(), amd_.copy_tx_cyc_per_byte());
  EXPECT_LT(intel_.copy_rx_cyc_per_byte(), amd_.copy_rx_cyc_per_byte());
}

TEST_F(CostModelTest, ZerocopySenderFarCheaperThanCopy) {
  TxPathConfig copy_cfg;
  TxPathConfig zc_cfg;
  zc_cfg.zc_fraction = 1.0;
  EXPECT_LT(intel_.tx_app_cyc_per_byte(zc_cfg),
            intel_.tx_app_cyc_per_byte(copy_cfg) * 0.55);
}

TEST_F(CostModelTest, ZerocopyFallbackWorseThanPlainCopy) {
  TxPathConfig copy_cfg;
  TxPathConfig fb_cfg;
  fb_cfg.zc_fraction = 1.0;
  fb_cfg.zc_fallback_fraction = 1.0;
  EXPECT_GT(intel_.tx_app_cyc_per_byte(fb_cfg), intel_.tx_app_cyc_per_byte(copy_cfg));
}

TEST_F(CostModelTest, BigTcpAmortizesPerPacketCosts) {
  RxPathConfig small;
  RxPathConfig big;
  big.gro_bytes = 150.0 * 1024.0;
  EXPECT_LT(intel_.rx_app_cyc_per_byte(big), intel_.rx_app_cyc_per_byte(small));
  // Calibration: ~16% receive-path reduction at 150K aggregates.
  const double gain =
      intel_.rx_app_cyc_per_byte(small) / intel_.rx_app_cyc_per_byte(big);
  EXPECT_GT(gain, 1.10);
  EXPECT_LT(gain, 1.25);
}

TEST_F(CostModelTest, SkipRxCopyRemovesDominantCost) {
  RxPathConfig copy;
  RxPathConfig trunc;
  trunc.copy_to_user = false;
  EXPECT_LT(intel_.rx_app_cyc_per_byte(trunc), intel_.rx_app_cyc_per_byte(copy) * 0.4);
}

TEST_F(CostModelTest, CachePressureMonotonic) {
  double prev = intel_.cache_pressure_mult(0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (double inflight = 1e6; inflight <= 1e9; inflight *= 4) {
    const double m = intel_.cache_pressure_mult(inflight);
    EXPECT_GE(m, prev);
    prev = m;
  }
  EXPECT_LE(prev, 1.0 + 1.01);  // saturates below 1 + sat
}

TEST_F(CostModelTest, AmdCachePenaltyHarsher) {
  const double big = 500e6;
  EXPECT_GT(amd_.cache_pressure_mult(big), intel_.cache_pressure_mult(big));
}

TEST_F(CostModelTest, StackFactorScalesEverything) {
  CostModelOptions old_kernel;
  old_kernel.stack_factor = 1.31;
  CostModel old_model(amd_epyc_73f3(), old_kernel);
  TxPathConfig tx;
  RxPathConfig rx;
  EXPECT_NEAR(old_model.tx_app_cyc_per_byte(tx) / amd_.tx_app_cyc_per_byte(tx), 1.31,
              1e-6);
  EXPECT_NEAR(old_model.rx_app_cyc_per_byte(rx) / amd_.rx_app_cyc_per_byte(rx), 1.31,
              1e-6);
}

TEST_F(CostModelTest, IommuStrictCapsDma) {
  CostModelOptions strict;
  strict.iommu_passthrough = false;
  strict.stack_factor = 1.31;  // kernel 5.15
  CostModel m(amd_epyc_73f3(), strict);
  // The paper's number: ~80 Gbps aggregate before iommu=pt.
  EXPECT_NEAR(m.dma_throughput_cap_bps() / 1e9, 61.0, 2.0);
  EXPECT_TRUE(std::isinf(amd_.dma_throughput_cap_bps()));
}

TEST_F(CostModelTest, HwGroCutsIrqMergeCost) {
  RxPathConfig sw;
  RxPathConfig hw;
  hw.hw_gro = true;
  EXPECT_LT(intel_.rx_irq_cyc_per_byte(hw), intel_.rx_irq_cyc_per_byte(sw));
}

TEST_F(CostModelTest, MemPassesZcMuchLower) {
  TxPathConfig copy;
  TxPathConfig zc;
  zc.zc_fraction = 1.0;
  EXPECT_GT(intel_.tx_mem_passes(copy), 2.0);
  EXPECT_LT(intel_.tx_mem_passes(zc), 1.5);
}

TEST_F(CostModelTest, VirtFactorScalesCosts) {
  CostModelOptions vm;
  vm.virt_factor = 1.5;
  CostModel m(intel_xeon_6346(), vm);
  TxPathConfig tx;
  EXPECT_NEAR(m.tx_app_cyc_per_byte(tx) / intel_.tx_app_cyc_per_byte(tx), 1.5, 1e-9);
}

}  // namespace
}  // namespace dtnsim::cpu
