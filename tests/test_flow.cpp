// Unit tests: the transfer engine itself (determinism, conservation,
// backpressure, interval accounting) on small, fast configurations.
#include <gtest/gtest.h>

#include "dtnsim/flow/transfer.hpp"
#include "dtnsim/harness/testbeds.hpp"

namespace dtnsim::flow {
namespace {

TransferConfig lan_config() {
  const auto tb = harness::esnet();
  TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.duration = units::SimTime::from_seconds(5);
  cfg.seed = 42;
  return cfg;
}

TEST(Transfer, DeterministicGivenSeed) {
  const auto cfg = lan_config();
  const auto a = run_transfer(cfg);
  const auto b = run_transfer(cfg);
  EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
  EXPECT_DOUBLE_EQ(a.retransmit_segments, b.retransmit_segments);
  ASSERT_EQ(a.interval_bps.size(), b.interval_bps.size());
  for (std::size_t i = 0; i < a.interval_bps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.interval_bps[i], b.interval_bps[i]);
  }
}

TEST(Transfer, SeedChangesOutcome) {
  auto cfg = lan_config();
  const auto a = run_transfer(cfg);
  cfg.seed = 43;
  const auto b = run_transfer(cfg);
  EXPECT_NE(a.throughput_bps, b.throughput_bps);
}

TEST(Transfer, IntervalSeriesCoversDuration) {
  const auto res = run_transfer(lan_config());
  EXPECT_EQ(res.interval_bps.size(), 5u);  // one per second
  EXPECT_DOUBLE_EQ(res.duration_sec, 5.0);
}

TEST(Transfer, PerFlowSumsToTotal) {
  auto cfg = lan_config();
  cfg.streams = 8;
  cfg.flow.fq_rate_bps = units::gbps(10);
  const auto res = run_transfer(cfg);
  double sum = 0;
  for (double f : res.per_flow_bps) sum += f;
  EXPECT_NEAR(sum, res.throughput_bps, res.throughput_bps * 1e-9);
  EXPECT_EQ(res.per_flow_bps.size(), 8u);
}

TEST(Transfer, PacingCapsThroughput) {
  auto cfg = lan_config();
  cfg.flow.fq_rate_bps = units::gbps(10);
  const auto res = run_transfer(cfg);
  EXPECT_LE(units::to_gbps(res.throughput_bps), 10.1);
  EXPECT_GT(units::to_gbps(res.throughput_bps), 9.0);
}

TEST(Transfer, PacingNeedsFqQdisc) {
  // fq_codel cannot pace: --fq-rate silently has no effect.
  auto cfg = lan_config();
  cfg.flow.fq_rate_bps = units::gbps(10);
  cfg.sender.tuning.sysctl.default_qdisc = kern::QdiscKind::FqCodel;
  const auto res = run_transfer(cfg);
  EXPECT_GT(units::to_gbps(res.throughput_bps), 20.0);  // ran unpaced
}

TEST(Transfer, SkipRxCopyRemovesReceiverBottleneck) {
  // Intel LAN is clearly receiver-bound (55 vs a ~64 G sender ceiling), so
  // --skip-rx-copy exposes the sender's true capability.
  const auto tb = harness::amlight();
  auto cfg = lan_config();
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  const auto with_copy = run_transfer(cfg);
  cfg.flow.skip_rx_copy = true;
  const auto no_copy = run_transfer(cfg);
  EXPECT_GT(no_copy.throughput_bps, with_copy.throughput_bps * 1.05);
  EXPECT_LT(no_copy.receiver_cpu.cores_pct, with_copy.receiver_cpu.cores_pct);
}

TEST(Transfer, UntunedWindowCripplesWan) {
  auto cfg = lan_config();
  cfg.path = harness::esnet_wan();
  cfg.sender.tuning.sysctl = kern::SysctlConfig::linux_defaults();
  cfg.sender.tuning.sysctl.default_qdisc = kern::QdiscKind::Fq;
  cfg.receiver.tuning.sysctl = kern::SysctlConfig::linux_defaults();
  const auto res = run_transfer(cfg);
  // 4 MB wmem / 6 MB rmem at 63 ms: a fraction of a Gbps.
  EXPECT_LT(units::to_gbps(res.throughput_bps), 1.0);
}

TEST(Transfer, ZerocopyReducesSenderCpu) {
  auto cfg = lan_config();
  cfg.flow.fq_rate_bps = units::gbps(35);
  const auto copy = run_transfer(cfg);
  cfg.flow.zerocopy = true;
  const auto zc = run_transfer(cfg);
  EXPECT_LT(zc.sender_cpu.cores_pct, copy.sender_cpu.cores_pct * 0.6);
  EXPECT_GT(zc.zc_bytes, 0.0);
}

TEST(Transfer, FlowControlSuppressesNicDrops) {
  auto cfg = lan_config();
  cfg.streams = 4;
  cfg.link_flow_control = true;
  const auto res = run_transfer(cfg);
  EXPECT_DOUBLE_EQ(res.dropped_bytes_nic, 0.0);
}

TEST(Transfer, CpuUtilizationBounded) {
  const auto res = run_transfer(lan_config());
  EXPECT_GE(res.sender_cpu.app_util, 0.0);
  EXPECT_LE(res.sender_cpu.app_util, 1.0 + 1e-9);
  EXPECT_GE(res.receiver_cpu.app_util, 0.0);
  EXPECT_LE(res.receiver_cpu.app_util, 1.0 + 1e-9);
  EXPECT_GE(res.receiver_cpu.cores_pct, res.receiver_cpu.app_util * 100.0 - 1e-6);
}

TEST(Transfer, ReceiverBoundOnLan) {
  // Paper Fig. 7: "with default settings on the LAN, throughput is limited
  // by the receiver host CPU". Clearest on the Intel hosts, where the
  // sender has ~15% of headroom over the receiver.
  const auto tb = harness::amlight();
  auto cfg = lan_config();
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  const auto res = run_transfer(cfg);
  EXPECT_GT(res.receiver_cpu.app_util, 0.9);
  EXPECT_LT(res.sender_cpu.app_util, res.receiver_cpu.app_util);
}

TEST(Transfer, SenderBoundOnWanDefault) {
  // Paper Fig. 7: "sender host limited on the WAN". Ramp/recovery phases
  // dilute the average a bit in a short run.
  auto cfg = lan_config();
  cfg.path = harness::esnet_wan();
  cfg.duration = units::SimTime::from_seconds(15);
  const auto res = run_transfer(cfg);
  EXPECT_GT(res.sender_cpu.app_util, 0.75);
  EXPECT_LT(res.receiver_cpu.app_util, res.sender_cpu.app_util * 0.8);
}

TEST(Transfer, MoreStreamsMoreThroughputUntilSaturation) {
  auto cfg = lan_config();
  cfg.flow.fq_rate_bps = units::gbps(15);
  cfg.streams = 1;
  const auto one = run_transfer(cfg);
  cfg.streams = 4;
  const auto four = run_transfer(cfg);
  EXPECT_GT(four.throughput_bps, one.throughput_bps * 3.0);
}

TEST(Transfer, ZeroDurationSafe) {
  auto cfg = lan_config();
  cfg.duration = units::SimTime();
  const auto res = run_transfer(cfg);
  EXPECT_DOUBLE_EQ(res.throughput_bps, 0.0);
}

}  // namespace
}  // namespace dtnsim::flow
