// dtnsim::scenario tests: the determinism contract and both engine hooks.
//
// The subsystem's promises, each enforced here:
//   - JSON timelines round-trip exactly and validate() names bad events;
//   - jittered fire times come from the run seed alone (same seed -> same
//     times, different seed -> different times, engine draws untouched);
//   - a scenario-free spec is bit-identical to one that never heard of the
//     subsystem, and scenario runs are bit-identical --jobs 1 vs --jobs N;
//   - both engines apply the supported kinds (and log the unsupported ones
//     with applied=false);
//   - the event-log JSON schema is golden (tests/golden/
//     scenario_log_keys.txt) — dtnsim-scenario --replay and the CI smoke
//     parse it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtnsim/core/dtnsim.hpp"
#include "dtnsim/flow/packet_sim.hpp"
#include "dtnsim/scenario/scenario.hpp"

namespace dtnsim::scenario {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Event make_event(double at, EventKind kind, double value, double dur = 0.0,
                 double jitter = 0.0) {
  Event e;
  e.at_sec = at;
  e.kind = kind;
  e.value = value;
  e.duration_sec = dur;
  e.jitter_sec = jitter;
  return e;
}

Timeline loss_burst(double at = 2.0, double frac = 0.02, double dur = 1.0) {
  Timeline tl;
  tl.name = "loss";
  tl.events.push_back(make_event(at, EventKind::LossBurst, frac, dur));
  return tl;
}

// ---- wire names -----------------------------------------------------------

TEST(ScenarioKinds, NamesRoundTripForAllKinds) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    const auto name = kind_name(kind);
    EXPECT_FALSE(name.empty());
    const auto back = kind_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(kind_from_name("not_a_kind").has_value());
}

// ---- JSON round-trip + validation -----------------------------------------

TEST(ScenarioJson, TimelineRoundTripsExactly) {
  Timeline tl;
  tl.name = "rt";
  tl.events.push_back(make_event(20.0, EventKind::LossBurst, 0.02, 5.0, 1.5));
  tl.events.back().note = "dirty optics";
  tl.events.push_back(make_event(30.0, EventKind::BgSurge, 16e9, 10.0));

  const auto back = timeline_from_json(to_json(tl));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, tl.name);
  ASSERT_EQ(back->events.size(), tl.events.size());
  for (std::size_t i = 0; i < tl.events.size(); ++i) {
    EXPECT_EQ(back->events[i].kind, tl.events[i].kind);
    EXPECT_DOUBLE_EQ(back->events[i].at_sec, tl.events[i].at_sec);
    EXPECT_DOUBLE_EQ(back->events[i].value, tl.events[i].value);
    EXPECT_DOUBLE_EQ(back->events[i].duration_sec, tl.events[i].duration_sec);
    EXPECT_DOUBLE_EQ(back->events[i].jitter_sec, tl.events[i].jitter_sec);
    EXPECT_EQ(back->events[i].note, tl.events[i].note);
  }
}

TEST(ScenarioJson, StructuralMismatchIsRejected) {
  EXPECT_FALSE(timeline_from_json(Json::array()).has_value());
  auto no_events = Json::object();
  no_events["name"] = std::string("x");
  EXPECT_FALSE(timeline_from_json(no_events).has_value());
  const auto bad_kind =
      Json::parse(R"({"events":[{"at_sec":1,"kind":"warp_drive","value":1}]})");
  ASSERT_TRUE(bad_kind.has_value());
  EXPECT_FALSE(timeline_from_json(*bad_kind).has_value());
}

TEST(ScenarioValidate, NamesTheOffendingEvent) {
  Timeline tl = loss_burst();
  tl.events.push_back(make_event(-1.0, EventKind::LinkDown, 0.0));
  EXPECT_THROW(tl.validate(), std::runtime_error);

  Timeline frac = loss_burst(2.0, 1.5);  // loss fraction must be < 1
  EXPECT_THROW(frac.validate(), std::runtime_error);

  Timeline inf;
  inf.events.push_back(
      make_event(1.0, EventKind::LinkCapacity, std::nan("")));
  EXPECT_THROW(inf.validate(), std::runtime_error);

  EXPECT_NO_THROW(loss_burst().validate());
}

TEST(ScenarioJson, LoadTimelineThrowsWithPath) {
  try {
    load_timeline("/nonexistent/tl.json");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/tl.json"),
              std::string::npos);
  }
}

// ---- jitter determinism ---------------------------------------------------

TEST(ScenarioRuntime, JitterIsSeededFromTheRunSeed) {
  Timeline tl;
  tl.events.push_back(make_event(20.0, EventKind::LinkDown, 0.0, 0.0, 5.0));

  const std::vector<EventKind> all = {EventKind::LinkDown};
  Runtime a(tl, 42, "fluid", all);
  Runtime b(tl, 42, "fluid", all);
  Runtime c(tl, 43, "fluid", all);
  EXPECT_DOUBLE_EQ(a.next_boundary_sec(), b.next_boundary_sec());
  EXPECT_NE(a.next_boundary_sec(), c.next_boundary_sec());
  // Jitter perturbs around the nominal time, never below zero.
  EXPECT_GE(a.next_boundary_sec(), 0.0);
  EXPECT_NEAR(a.next_boundary_sec(), 20.0, 5.0);
}

// ---- fold semantics -------------------------------------------------------

TEST(ScenarioRuntime, EffectsFoldAndExpire) {
  Timeline tl;
  tl.name = "fold";
  tl.events.push_back(make_event(10.0, EventKind::LossBurst, 0.02, 5.0));
  tl.events.push_back(make_event(12.0, EventKind::BgSurge, 4e9, 10.0));
  tl.events.push_back(make_event(14.0, EventKind::BgSurge, 2e9, 10.0));

  Runtime rt(tl, 1, "fluid",
             {EventKind::LossBurst, EventKind::BgSurge});
  EXPECT_FALSE(rt.advance(5.0));  // nothing fired yet
  EXPECT_DOUBLE_EQ(rt.effects().loss_frac, 0.0);

  EXPECT_TRUE(rt.advance(10.5));
  EXPECT_DOUBLE_EQ(rt.effects().loss_frac, 0.02);

  EXPECT_TRUE(rt.advance(14.5));  // both surges active; they stack
  EXPECT_DOUBLE_EQ(rt.effects().extra_bg_bps, 6e9);

  EXPECT_TRUE(rt.advance(16.0));  // loss burst expired at 15
  EXPECT_DOUBLE_EQ(rt.effects().loss_frac, 0.0);
  EXPECT_DOUBLE_EQ(rt.effects().extra_bg_bps, 6e9);

  EXPECT_TRUE(rt.advance(30.0));  // everything expired
  EXPECT_DOUBLE_EQ(rt.effects().extra_bg_bps, 0.0);
  EXPECT_TRUE(std::isinf(rt.next_boundary_sec()));
  EXPECT_EQ(rt.applied_count(), 3u);
}

TEST(ScenarioRuntime, UnsupportedKindsLogAppliedFalse) {
  Timeline tl;
  tl.events.push_back(make_event(1.0, EventKind::SysctlOptmem, 65536));
  Runtime rt(tl, 1, "packet", {EventKind::LossBurst});  // optmem unsupported
  rt.advance(2.0);
  ASSERT_EQ(rt.log().size(), 1u);
  EXPECT_FALSE(rt.log()[0].applied);
  EXPECT_EQ(rt.applied_count(), 0u);
  EXPECT_DOUBLE_EQ(rt.effects().optmem_max_bytes, -1.0);  // excluded from fold
}

// ---- fluid engine ---------------------------------------------------------

harness::TestSpec wan_spec(Timeline tl) {
  auto spec = Experiment(harness::esnet(kern::KernelVersion::V6_8))
                  .path("WAN 63ms")
                  .pacing(units::Rate::from_gbps(10))
                  .duration(units::SimTime::from_seconds(6))
                  .repeats(2)
                  .scenario(std::move(tl))
                  .spec();
  return spec;
}

TEST(ScenarioFluid, EmptyTimelineIsBitIdenticalToNoScenario) {
  const auto with = harness::run_test(wan_spec(Timeline{}));
  const auto without = harness::run_test(wan_spec(loss_burst()));
  const auto plain = harness::run_test(wan_spec(Timeline{}));
  // Same spec -> identical; attaching a real scenario must change the run.
  EXPECT_EQ(with.samples_gbps, plain.samples_gbps);
  EXPECT_NE(with.samples_gbps, without.samples_gbps);
  EXPECT_TRUE(with.scenario_log.events.empty());
}

TEST(ScenarioFluid, LossBurstCutsGoodputAndLogsTheEvent) {
  const auto clean = harness::run_test(wan_spec(Timeline{}));
  const auto lossy = harness::run_test(wan_spec(loss_burst(2.0, 0.05, 2.0)));
  EXPECT_LT(lossy.avg_gbps, clean.avg_gbps);
  ASSERT_EQ(lossy.scenario_log.events.size(), 1u);
  EXPECT_EQ(lossy.scenario_log.engine, "fluid");
  EXPECT_EQ(lossy.scenario_log.timeline, "loss");
  EXPECT_TRUE(lossy.scenario_log.events[0].applied);
  EXPECT_DOUBLE_EQ(lossy.scenario_log.events[0].fire_sec, 2.0);
}

TEST(ScenarioFluid, ScenarioRunsAreBitIdenticalAcrossJobs) {
  std::vector<harness::TestSpec> specs;
  for (int i = 0; i < 4; ++i) {
    auto spec = wan_spec(loss_burst(2.0, 0.02, 1.0));
    spec.name = "cell" + std::to_string(i);
    spec.base_seed = 1000 + static_cast<std::uint64_t>(i);
    specs.push_back(std::move(spec));
  }
  const auto serial = harness::run_tests(specs, 1);
  const auto parallel = harness::run_tests(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].samples_gbps, parallel[i].samples_gbps) << i;
    EXPECT_DOUBLE_EQ(serial[i].avg_retransmits, parallel[i].avg_retransmits);
  }
}

// ---- packet engine --------------------------------------------------------

flow::PacketSimConfig packet_cfg() {
  const auto tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  flow::PacketSimConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.pacing_bps = units::gbps(10);
  cfg.duration = units::SimTime::from_seconds(0.05);
  return cfg;
}

TEST(ScenarioPacket, LossBurstDropsSegmentsDeterministically) {
  auto clean_cfg = packet_cfg();
  const auto clean = flow::run_packet_sim(clean_cfg);
  EXPECT_EQ(clean.segments_lost_path, 0u);

  auto cfg = packet_cfg();
  cfg.scenario = loss_burst(0.01, 0.1, 0.02);
  const auto lossy = flow::run_packet_sim(cfg);
  EXPECT_GT(lossy.segments_lost_path, 0u);
  EXPECT_LT(lossy.delivered_bytes, clean.delivered_bytes);
  ASSERT_EQ(lossy.scenario_log.events.size(), 1u);
  EXPECT_EQ(lossy.scenario_log.engine, "packet");
  EXPECT_TRUE(lossy.scenario_log.events[0].applied);

  // Accumulator loss, not RNG loss: the run repeats bit-identically.
  auto cfg2 = packet_cfg();
  cfg2.scenario = loss_burst(0.01, 0.1, 0.02);
  const auto again = flow::run_packet_sim(cfg2);
  EXPECT_EQ(again.segments_lost_path, lossy.segments_lost_path);
  EXPECT_DOUBLE_EQ(again.delivered_bytes,
                   lossy.delivered_bytes);
}

TEST(ScenarioPacket, UnsupportedKindIsLoggedNotApplied) {
  auto cfg = packet_cfg();
  Timeline tl;
  tl.name = "optmem";
  tl.events.push_back(make_event(0.01, EventKind::SysctlOptmem, 65536));
  cfg.scenario = tl;
  const auto res = flow::run_packet_sim(cfg);
  ASSERT_EQ(res.scenario_log.events.size(), 1u);
  EXPECT_FALSE(res.scenario_log.events[0].applied);
}

TEST(ScenarioPacket, LinkDownStallsDelivery) {
  auto cfg = packet_cfg();
  Timeline tl;
  tl.name = "flap";
  tl.events.push_back(make_event(0.01, EventKind::LinkDown, 0.0));
  tl.events.push_back(make_event(0.03, EventKind::LinkUp, 0.0));
  cfg.scenario = tl;
  const auto flapped = flow::run_packet_sim(cfg);
  auto clean_cfg = packet_cfg();
  const auto clean = flow::run_packet_sim(clean_cfg);
  EXPECT_LT(flapped.delivered_bytes, clean.delivered_bytes);
  EXPECT_GT(flapped.segments_lost_path, 0u);
}

// ---- engine agreement -----------------------------------------------------

// The same 5% loss burst must cut delivery in both engines, and each cut
// must sit inside its own calibrated band. The bands are deliberately far
// apart — that *is* the divergence: the fluid engine models CC backoff (a
// 5% episode collapses the window, measured ~82% cut), the packet engine
// models a fixed window with 3-RTT retransmits (measured ~3% cut). A band
// violation means one engine's loss response regressed.
TEST(ScenarioDivergence, LossBurstCutsSitInCalibratedBands) {
  auto fspec_clean = wan_spec(Timeline{});
  auto fspec_lossy = wan_spec(loss_burst(1.0, 0.05, 4.0));
  fspec_clean.repeats = fspec_lossy.repeats = 1;
  const double fluid_clean = harness::run_test(fspec_clean).avg_gbps;
  const double fluid_lossy = harness::run_test(fspec_lossy).avg_gbps;
  const double fluid_cut = 1.0 - fluid_lossy / fluid_clean;

  auto pcfg_clean = packet_cfg();
  auto pcfg_lossy = packet_cfg();
  pcfg_lossy.scenario = loss_burst(0.008, 0.05, 0.034);  // same 2/3 coverage
  const double pkt_clean =
      flow::run_packet_sim(pcfg_clean).delivered_bytes;
  const double pkt_lossy =
      flow::run_packet_sim(pcfg_lossy).delivered_bytes;
  const double pkt_cut = 1.0 - pkt_lossy / pkt_clean;

  EXPECT_GT(fluid_cut, 0.30) << "CC backoff response vanished";
  EXPECT_LT(fluid_cut, 0.95);
  EXPECT_GT(pkt_cut, 0.005) << "forced loss not reaching the packet path";
  EXPECT_LT(pkt_cut, 0.30) << "fixed-window retransmit response blew up";
  // And the structural ordering: CC backoff always costs more than the
  // packet engine's pure retransmit delay.
  EXPECT_GT(fluid_cut, pkt_cut);
}

// ---- event-log schema golden ----------------------------------------------

TEST(ScenarioGolden, EventLogSchemaMatchesGolden) {
  const std::string golden_path =
      std::string(DTNSIM_SOURCE_DIR) + "/tests/golden/scenario_log_keys.txt";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  std::vector<std::string> want;
  std::stringstream in(golden);
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) want.push_back(line);

  EventLog log;
  AppliedEvent ev;
  log.events.push_back(ev);
  const auto j = to_json(log);
  std::vector<std::string> got = j.keys();  // sorted
  const auto* events = j.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  for (const auto& k : events->at(0)->keys()) got.push_back("events." + k);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want) << "event log schema changed; regenerate tests/"
                          "golden/scenario_log_keys.txt (see docs/"
                          "SCENARIO.md)";
}

// ---- event-log file round-trip --------------------------------------------

TEST(ScenarioJson, EventLogWriteReadRoundTrip) {
  EventLog log;
  log.engine = "fluid";
  log.timeline = "rt";
  log.label = "cell0";
  AppliedEvent ev;
  ev.fire_sec = 20.5;
  ev.end_sec = 25.5;
  ev.kind = EventKind::LossBurst;
  ev.value = 0.02;
  ev.applied = true;
  ev.note = "n";
  log.events.push_back(ev);

  const fs::path path =
      fs::path(::testing::TempDir()) / "dtnsim_scn_log.json";
  ASSERT_TRUE(write_event_log(path.string(), log));
  const auto doc = Json::parse(slurp(path.string()));
  ASSERT_TRUE(doc.has_value());
  const auto back = event_log_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->engine, log.engine);
  EXPECT_EQ(back->label, log.label);
  ASSERT_EQ(back->events.size(), 1u);
  EXPECT_DOUBLE_EQ(back->events[0].fire_sec, ev.fire_sec);
  EXPECT_EQ(back->events[0].kind, EventKind::LossBurst);
  EXPECT_TRUE(back->events[0].applied);
  fs::remove(path);
}

// ---- shipped example timelines --------------------------------------------

TEST(ScenarioExamples, ShippedTimelinesValidate) {
  const fs::path dir = fs::path(DTNSIM_SOURCE_DIR) / "scenarios";
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++seen;
    EXPECT_NO_THROW(load_timeline(entry.path().string()))
        << entry.path().string();
  }
  EXPECT_GE(seen, 4u);  // link_flap, loss_burst, bg_surge, optmem_knee
}

}  // namespace
}  // namespace dtnsim::scenario
