// Unit tests: the raw-data release (Dataset CSV/JSON writers).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dtnsim/harness/dataset.hpp"

namespace dtnsim::harness {
namespace {

TestResult fake_result(const std::string& name, std::vector<double> samples) {
  TestResult r;
  r.name = name;
  r.repeats = static_cast<int>(samples.size());
  r.samples_gbps = std::move(samples);
  RunningStats s;
  for (double x : r.samples_gbps) s.add(x);
  r.avg_gbps = s.mean();
  r.min_gbps = s.min();
  r.max_gbps = s.max();
  r.stdev_gbps = s.stddev();
  r.avg_retransmits = 123;
  r.snd_cpu_pct = 45.0;
  r.rcv_cpu_pct = 99.0;
  return r;
}

TEST(Dataset, RawCsvOneRowPerRepeat) {
  Dataset ds("fig5");
  ds.add(fake_result("default LAN", {55.1, 54.2, 56.0}));
  ds.add(fake_result("zc+pace WAN", {49.9, 50.0}));
  const std::string csv = ds.raw_csv();
  EXPECT_NE(csv.find("test,repeat,throughput_gbps"), std::string::npos);
  EXPECT_NE(csv.find("default LAN,0,55.1000"), std::string::npos);
  EXPECT_NE(csv.find("zc+pace WAN,1,50.0000"), std::string::npos);
  // 1 header + 5 data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
}

TEST(Dataset, SummaryCsvOneRowPerTest) {
  Dataset ds("tbl");
  ds.add(fake_result("a", {10, 12}));
  ds.add(fake_result("b", {20, 22}));
  const std::string csv = ds.summary_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("a,2,11.000,10.000,12.000"), std::string::npos);
}

TEST(Dataset, JsonStructure) {
  Dataset ds("exp");
  ds.add(fake_result("x", {1, 2, 3}));
  const Json j = ds.to_json();
  ASSERT_NE(j.find("tests"), nullptr);
  EXPECT_EQ(j.find("tests")->size(), 1u);
  const std::string text = j.dump();
  EXPECT_NE(text.find("\"samples_gbps\":[1,2,3]"), std::string::npos);
  EXPECT_NE(text.find("\"retransmits\":123"), std::string::npos);
}

TEST(Dataset, WritesFiles) {
  Dataset ds("unit_test_ds");
  ds.add(fake_result("t", {5.0}));
  ASSERT_TRUE(ds.write_to("/tmp"));
  for (const char* suffix : {"_raw.csv", "_summary.csv", ".json"}) {
    const std::string path = std::string("/tmp/unit_test_ds") + suffix;
    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << path;
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_FALSE(buf.str().empty());
    std::remove(path.c_str());
  }
}

TEST(Dataset, WriteToBadDirFails) {
  Dataset ds("nope");
  ds.add(fake_result("t", {1.0}));
  EXPECT_FALSE(ds.write_to("/nonexistent-dir-xyz"));
}

TEST(Dataset, EscapesCommasInNames) {
  Dataset ds("esc");
  ds.add(fake_result("LAN, tuned", {1.0}));
  EXPECT_NE(ds.raw_csv().find("\"LAN, tuned\""), std::string::npos);
}

}  // namespace
}  // namespace dtnsim::harness
