// Strong-typed units: conversions, literals, constexpr arithmetic, checked
// factories. Most of the contract is enforced at compile time via
// static_assert — if this file compiles, the arithmetic identities hold.
// The compile-fail side (Bits where Bytes is expected must NOT compile) is
// covered by tests/compile_fail/ at configure time.
#include <gtest/gtest.h>

#include <limits>

#include "dtnsim/units/units.hpp"

using namespace dtnsim;
using namespace dtnsim::units;
using namespace dtnsim::units::literals;

// --- compile-time contract ------------------------------------------------

static_assert(Bytes(1024.0).value() == 1024.0);
static_assert(Bytes::kib(1).value() == 1024.0);
static_assert(Bytes::mib(1).value() == 1024.0 * 1024.0);
static_assert(Bytes::gib(2).value() == 2.0 * 1024.0 * 1024.0 * 1024.0);
static_assert(Bytes::pages(3).value() == 3.0 * 4096.0);
static_assert((150_KiB).value() == 150.0 * 1024.0);
static_assert((1.5_MiB).value() == 1.5 * 1024.0 * 1024.0);

// The factor-of-8 boundary, both directions.
static_assert(to_bits(Bytes(1.0)).value() == 8.0);
static_assert(bits_to_bytes(Bits(64.0)).value() == 8.0);
static_assert(Bytes(5.0).to_bits().to_bytes() == Bytes(5.0));

// Rates: 10^3 decimal (wire units), never 2^10.
static_assert((12.5_Gbps).bps() == 12.5e9);
static_assert(Rate::from_gbps(100).gbps() == 100.0);
static_assert(Rate::from_mbps(1000).bps() == 1e9);
static_assert(Rate::from_kbps(1).bps() == 1e3);

// Time: integer nanoseconds under the hood, like the event engine.
static_assert((60_s).nanos() == 60 * kNanosPerSec);
static_assert((104_ms).nanos() == 104'000'000);
static_assert((17_us).nanos() == 17'000);
static_assert(SimTime::from_seconds(2.5).seconds() == 2.5);
static_assert((1_s) + (500_ms) == SimTime::from_millis(1500));

// Rate x time and back.
static_assert(Rate::from_gbps(8).bytes_in(1_s).value() == 1e9);
static_assert(Rate::of(Bytes(1e9), 1_s).gbps() == 8.0);
static_assert(Rate::of(Bytes(1e9), SimTime()).bps() == 0.0);

// In-unit arithmetic stays in the unit; ratios are dimensionless.
static_assert(Bytes(10) + Bytes(5) == Bytes(15));
static_assert(Bytes(10) - Bytes(5) == Bytes(5));
static_assert(2.0 * Cycles(30) == Cycles(60));
static_assert(Cycles(60) / 2.0 == Cycles(30));
static_assert(Bytes(64) / Bytes(8) == 8.0);
static_assert(Packets(3) < Packets(4));
static_assert((100_cyc) >= (100_cyc));

// The strong-type factories agree exactly with the raw-double helpers they
// replace at API boundaries (bit-identity of the refactor rests on this).
static_assert(Rate::from_gbps(15).bps() == gbps(15));
static_assert(SimTime::from_seconds(60).nanos() == seconds(60));
static_assert(Bytes::kib(150).value() == kib(150));
static_assert(Rate::from_bps(5e9).bytes_in(SimTime::from_seconds(2)).value() ==
              bytes_at(5e9, 2.0));

// --- runtime checks -------------------------------------------------------

TEST(Units, CheckedFactoriesRejectNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)Bytes(nan), std::invalid_argument);
  EXPECT_THROW((void)Bytes(inf), std::invalid_argument);
  EXPECT_THROW((void)Rate::from_gbps(nan), std::invalid_argument);
  EXPECT_THROW((void)SimTime::from_seconds(inf), std::invalid_argument);
  EXPECT_THROW((void)Cycles(-inf), std::invalid_argument);
  EXPECT_THROW((void)Packets(nan), std::invalid_argument);
}

TEST(Units, CompoundAssignment) {
  Bytes acc(100.0);
  acc += Bytes(28.0);
  EXPECT_DOUBLE_EQ(acc.value(), 128.0);
  acc -= 28_B;
  EXPECT_DOUBLE_EQ(acc.value(), 100.0);
}

TEST(Units, StrongFormattersMatchRawFormatters) {
  EXPECT_EQ(format_rate(42.1_Gbps), format_rate(42.1e9));
  EXPECT_EQ(format_bytes(3.25_MiB), format_bytes(3.25 * 1024.0 * 1024.0));
  EXPECT_EQ(format_time(104_ms), format_time(millis(104)));
}

TEST(Units, FormattingPicksHumanScale) {
  EXPECT_EQ(format_rate(42.1e9), "42.10 Gbps");
  EXPECT_EQ(format_bytes(1024.0), "1.00 KiB");
  EXPECT_EQ(format_time(seconds(2)), "2.00 s");
}

TEST(Units, RoundTripThroughDoubleSecondsIsExactForWholeSeconds) {
  for (int s = 1; s <= 600; ++s) {
    EXPECT_DOUBLE_EQ(SimTime::from_seconds(static_cast<double>(s)).seconds(),
                     static_cast<double>(s));
  }
}
