// Unit tests: dtnsim-lint rules engine (classification, each rule,
// suppressions, renderers).
#include <gtest/gtest.h>

#include <algorithm>

#include "dtnsim/lint/lint.hpp"

namespace dtnsim::lint {
namespace {

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintClassify, PathKinds) {
  EXPECT_EQ(classify("src/dtnsim/kern/skb.hpp"), FileKind::LibraryHeader);
  EXPECT_EQ(classify("src/dtnsim/kern/skb.cpp"), FileKind::LibrarySource);
  EXPECT_EQ(classify("src/dtnsim/units/units.hpp"), FileKind::UnitsLibrary);
  EXPECT_EQ(classify("bench/fig09_optmem_sweep.cpp"), FileKind::Bench);
  EXPECT_EQ(classify("tests/test_kern.cpp"), FileKind::Test);
  EXPECT_EQ(classify("tools/dtnsim_lint.cpp"), FileKind::Tool);
  EXPECT_EQ(classify("examples/quickstart.cpp"), FileKind::Example);
  EXPECT_EQ(classify("README.md"), FileKind::Other);
}

TEST(LintClassify, FixtureTreesClassifyByInnermostLayout) {
  // The embedded src/ wins over the outer tests/ prefix.
  EXPECT_EQ(classify("tests/lint_fixtures/src/dtnsim/fake/x.hpp"),
            FileKind::LibraryHeader);
  EXPECT_EQ(classify("tests/lint_fixtures/tests/fake_test.cpp"), FileKind::Test);
}

TEST(LintDeterminism, FlagsClocksAndRand) {
  const std::string code =
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "int r = rand();\n"
      "long w = time(nullptr);\n";
  const auto fs = lint_file("src/dtnsim/fake/a.cpp", code);
  EXPECT_EQ(count_rule(fs, "determinism"), 3);
}

TEST(LintDeterminism, IgnoresLookalikeIdentifiers) {
  const std::string code =
      "units::SimTime t = units::SimTime::from_seconds(2);\n"
      "double uptime = runtime(x);\n"   // `runtime(` is not `time(`
      "int grand = grand_total(1);\n";  // `grand_total` is not `rand`
  EXPECT_TRUE(lint_file("src/dtnsim/fake/a.cpp", code).empty());
}

TEST(LintDeterminism, BenchAndToolCodeMayUseWallClocks) {
  const std::string code = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_file("bench/bm.cpp", code).empty());
  EXPECT_TRUE(lint_file("tools/t.cpp", code).empty());
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/x/y.cpp", code), "determinism"), 1);
}

TEST(LintDeterminism, CommentsAndStringsDoNotTrip) {
  const std::string code =
      "// steady_clock is banned here\n"
      "const char* msg = \"rand() and time() are banned\";\n"
      "/* random_device too */\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/a.cpp", code).empty());
}

TEST(LintRawUnitDouble, FlagsScaledUnitParamsInHeaders) {
  const std::string code =
      "struct Api {\n"
      "  void pace(double pacing_gbps);\n"
      "  void run(double duration_seconds, int repeats);\n"
      "};\n";
  const auto fs = lint_file("src/dtnsim/fake/api.hpp", code);
  EXPECT_EQ(count_rule(fs, "raw-unit-double"), 2);
}

TEST(LintRawUnitDouble, FlagsScaledUnitReturnsInHeaders) {
  const std::string code =
      "struct Pool {\n"
      "  double busy_seconds() const;\n"
      "};\n"
      "double peak_gbps();\n";
  const auto fs = lint_file("src/dtnsim/fake/api.hpp", code);
  EXPECT_EQ(count_rule(fs, "raw-unit-double"), 2);
  // The message names the offending function, not a parameter.
  ASSERT_FALSE(fs.empty());
  EXPECT_NE(fs[0].message.find("returns a scaled unit"), std::string::npos);
}

TEST(LintRawUnitDouble, ReturnRuleKeepsBareBpsAndMembersLegal) {
  const std::string code =
      "double rate_bps();\n"                     // raw bps is the fluid idiom
      "struct R { double avg_gbps = 0.0; };\n";  // member, no call parens
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.hpp", code).empty());
}

TEST(LintRawUnitDouble, TickConventionsStayLegal) {
  // dt_sec / t_sec / raw bps are the repo's documented fluid-math idiom.
  const std::string code =
      "void tick(double dt_sec, double rate_bps);\n"
      "double to_rate(double bytes, double t_sec);\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.hpp", code).empty());
}

TEST(LintRawUnitDouble, MembersAndSourcesExempt) {
  // Depth-0 member declarations are results/state, not API boundaries.
  const std::string member = "struct R { double avg_gbps = 0.0; };\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.hpp", member).empty());
  // Rule only applies to headers; .cpp internals are free.
  const std::string src = "static double f(double x_gbps) { return x_gbps; }\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.cpp", src).empty());
  // units/ itself hosts the raw-double compatibility helpers.
  const std::string units_code = "constexpr double gbps(double gbps);\n";
  EXPECT_TRUE(lint_file("src/dtnsim/units/units.hpp", units_code).empty());
}

TEST(LintRawUnitDouble, MultiLineSignatures) {
  const std::string code =
      "void configure(int streams,\n"
      "               double pacing_gbps,\n"
      "               bool zerocopy);\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/fake/api.hpp", code), "raw-unit-double"), 1);
}

TEST(LintIncludeHygiene, BenchHeadersAreBenchOnly) {
  const std::string code = "#include \"bench/bench_common.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("tests/t.cpp", code), "include-hygiene"), 1);
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/a/b.cpp", code), "include-hygiene"), 1);
  EXPECT_TRUE(lint_file("bench/fig.cpp", code).empty());
}

TEST(LintIncludeHygiene, IostreamBannedInLibraryOnly) {
  const std::string code = "#include <iostream>\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/a/b.hpp", code), "include-hygiene"), 1);
  EXPECT_TRUE(lint_file("tools/t.cpp", code).empty());
  EXPECT_TRUE(lint_file("tests/t.cpp", code).empty());
}

TEST(LintMutexGuard, BareLocksFlaggedInSweepOnly) {
  const std::string code = "mu_.lock();\nwork();\nmu_.unlock();\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/sweep/pool.cpp", code), "mutex-guard"), 2);
  // Outside sweep/ the rule does not apply.
  EXPECT_TRUE(lint_file("src/dtnsim/kern/x.cpp", code).empty());
}

TEST(LintMutexGuard, RaiiGuardsPass) {
  const std::string code =
      "std::lock_guard<std::mutex> lock(mu_);\n"
      "std::unique_lock<std::mutex> ul(mu_);\n";
  EXPECT_TRUE(lint_file("src/dtnsim/sweep/pool.cpp", code).empty());
}

TEST(LintSuppression, SameLineAndPreviousLine) {
  const std::string same =
      "auto t = std::chrono::steady_clock::now();  // dtnsim-lint: allow(determinism)\n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.cpp", same).empty());
  const std::string prev =
      "// dtnsim-lint: allow(determinism)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.cpp", prev).empty());
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const std::string code =
      "auto t = std::chrono::steady_clock::now();  // dtnsim-lint: allow(mutex-guard)\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/a/b.cpp", code), "determinism"), 1);
}

TEST(LintSuppression, AllWildcardAndMultiRule) {
  const std::string all =
      "auto t = std::chrono::steady_clock::now();  // dtnsim-lint: allow(all)\n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.cpp", all).empty());
  const std::string multi =
      "// dtnsim-lint: allow(determinism, include-hygiene)\n"
      "#include <iostream>  \n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.hpp", multi).empty());
}

TEST(LintOutput, HumanFormat) {
  const auto fs = lint_file("src/dtnsim/a/b.cpp", "int r = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  const auto text = to_human(fs);
  EXPECT_NE(text.find("src/dtnsim/a/b.cpp:1: [determinism]"), std::string::npos);
}

TEST(LintOutput, JsonFormatAndEscaping) {
  std::vector<Finding> fs = {{"determinism", "a\"b.cpp", 3, "line1\nline2"}};
  const auto json = to_json(fs);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(to_json({}), "{\"count\":0,\"findings\":[]}");
}

}  // namespace
}  // namespace dtnsim::lint
