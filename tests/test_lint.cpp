// Unit tests: dtnsim-lint rules engine (classification, each rule,
// suppressions, renderers) and the v2 project-wide pass (index
// construction, cross-file rules, baseline, parallel determinism).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "dtnsim/lint/lint.hpp"
#include "dtnsim/lint/project.hpp"
#include "dtnsim/util/json.hpp"

namespace dtnsim::lint {
namespace {

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintClassify, PathKinds) {
  EXPECT_EQ(classify("src/dtnsim/kern/skb.hpp"), FileKind::LibraryHeader);
  EXPECT_EQ(classify("src/dtnsim/kern/skb.cpp"), FileKind::LibrarySource);
  EXPECT_EQ(classify("src/dtnsim/units/units.hpp"), FileKind::UnitsLibrary);
  EXPECT_EQ(classify("bench/fig09_optmem_sweep.cpp"), FileKind::Bench);
  EXPECT_EQ(classify("tests/test_kern.cpp"), FileKind::Test);
  EXPECT_EQ(classify("tools/dtnsim_lint.cpp"), FileKind::Tool);
  EXPECT_EQ(classify("examples/quickstart.cpp"), FileKind::Example);
  EXPECT_EQ(classify("README.md"), FileKind::Other);
}

TEST(LintClassify, FixtureTreesClassifyByInnermostLayout) {
  // The embedded src/ wins over the outer tests/ prefix.
  EXPECT_EQ(classify("tests/lint_fixtures/src/dtnsim/fake/x.hpp"),
            FileKind::LibraryHeader);
  EXPECT_EQ(classify("tests/lint_fixtures/tests/fake_test.cpp"), FileKind::Test);
}

TEST(LintDeterminism, FlagsClocksAndRand) {
  const std::string code =
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "int r = rand();\n"
      "long w = time(nullptr);\n";
  const auto fs = lint_file("src/dtnsim/fake/a.cpp", code);
  EXPECT_EQ(count_rule(fs, "determinism"), 3);
}

TEST(LintDeterminism, IgnoresLookalikeIdentifiers) {
  const std::string code =
      "units::SimTime t = units::SimTime::from_seconds(2);\n"
      "double uptime = runtime(x);\n"   // `runtime(` is not `time(`
      "int grand = grand_total(1);\n";  // `grand_total` is not `rand`
  EXPECT_TRUE(lint_file("src/dtnsim/fake/a.cpp", code).empty());
}

TEST(LintDeterminism, BenchAndToolCodeMayUseWallClocks) {
  const std::string code = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_file("bench/bm.cpp", code).empty());
  EXPECT_TRUE(lint_file("tools/t.cpp", code).empty());
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/x/y.cpp", code), "determinism"), 1);
}

TEST(LintDeterminism, CommentsAndStringsDoNotTrip) {
  const std::string code =
      "// steady_clock is banned here\n"
      "const char* msg = \"rand() and time() are banned\";\n"
      "/* random_device too */\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/a.cpp", code).empty());
}

TEST(LintRawUnitDouble, FlagsScaledUnitParamsInHeaders) {
  const std::string code =
      "struct Api {\n"
      "  void pace(double pacing_gbps);\n"
      "  void run(double duration_seconds, int repeats);\n"
      "};\n";
  const auto fs = lint_file("src/dtnsim/fake/api.hpp", code);
  EXPECT_EQ(count_rule(fs, "raw-unit-double"), 2);
}

TEST(LintRawUnitDouble, FlagsScaledUnitReturnsInHeaders) {
  const std::string code =
      "struct Pool {\n"
      "  double busy_seconds() const;\n"
      "};\n"
      "double peak_gbps();\n";
  const auto fs = lint_file("src/dtnsim/fake/api.hpp", code);
  EXPECT_EQ(count_rule(fs, "raw-unit-double"), 2);
  // The message names the offending function, not a parameter.
  ASSERT_FALSE(fs.empty());
  EXPECT_NE(fs[0].message.find("returns a scaled unit"), std::string::npos);
}

TEST(LintRawUnitDouble, ReturnRuleKeepsBareBpsAndMembersLegal) {
  const std::string code =
      "double rate_bps();\n"                     // raw bps is the fluid idiom
      "struct R { double avg_gbps = 0.0; };\n";  // member, no call parens
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.hpp", code).empty());
}

TEST(LintRawUnitDouble, TickConventionsStayLegal) {
  // dt_sec / t_sec / raw bps are the repo's documented fluid-math idiom.
  const std::string code =
      "void tick(double dt_sec, double rate_bps);\n"
      "double to_rate(double bytes, double t_sec);\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.hpp", code).empty());
}

TEST(LintRawUnitDouble, MembersAndSourcesExempt) {
  // Depth-0 member declarations are results/state, not API boundaries.
  const std::string member = "struct R { double avg_gbps = 0.0; };\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.hpp", member).empty());
  // Rule only applies to headers; .cpp internals are free.
  const std::string src = "static double f(double x_gbps) { return x_gbps; }\n";
  EXPECT_TRUE(lint_file("src/dtnsim/fake/api.cpp", src).empty());
  // units/ itself hosts the raw-double compatibility helpers.
  const std::string units_code = "constexpr double gbps(double gbps);\n";
  EXPECT_TRUE(lint_file("src/dtnsim/units/units.hpp", units_code).empty());
}

TEST(LintRawUnitDouble, MultiLineSignatures) {
  const std::string code =
      "void configure(int streams,\n"
      "               double pacing_gbps,\n"
      "               bool zerocopy);\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/fake/api.hpp", code), "raw-unit-double"), 1);
}

TEST(LintIncludeHygiene, BenchHeadersAreBenchOnly) {
  const std::string code = "#include \"bench/bench_common.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("tests/t.cpp", code), "include-hygiene"), 1);
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/a/b.cpp", code), "include-hygiene"), 1);
  EXPECT_TRUE(lint_file("bench/fig.cpp", code).empty());
}

TEST(LintIncludeHygiene, IostreamBannedInLibraryOnly) {
  const std::string code = "#include <iostream>\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/a/b.hpp", code), "include-hygiene"), 1);
  EXPECT_TRUE(lint_file("tools/t.cpp", code).empty());
  EXPECT_TRUE(lint_file("tests/t.cpp", code).empty());
}

TEST(LintMutexGuard, BareLocksFlaggedInSweepOnly) {
  const std::string code = "mu_.lock();\nwork();\nmu_.unlock();\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/sweep/pool.cpp", code), "mutex-guard"), 2);
  // Outside sweep/ the rule does not apply.
  EXPECT_TRUE(lint_file("src/dtnsim/kern/x.cpp", code).empty());
}

TEST(LintMutexGuard, RaiiGuardsPass) {
  const std::string code =
      "std::lock_guard<std::mutex> lock(mu_);\n"
      "std::unique_lock<std::mutex> ul(mu_);\n";
  EXPECT_TRUE(lint_file("src/dtnsim/sweep/pool.cpp", code).empty());
}

TEST(LintSuppression, SameLineAndPreviousLine) {
  const std::string same =
      "auto t = std::chrono::steady_clock::now();  // dtnsim-lint: allow(determinism)\n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.cpp", same).empty());
  const std::string prev =
      "// dtnsim-lint: allow(determinism)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.cpp", prev).empty());
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const std::string code =
      "auto t = std::chrono::steady_clock::now();  // dtnsim-lint: allow(mutex-guard)\n";
  EXPECT_EQ(count_rule(lint_file("src/dtnsim/a/b.cpp", code), "determinism"), 1);
}

TEST(LintSuppression, AllWildcardAndMultiRule) {
  const std::string all =
      "auto t = std::chrono::steady_clock::now();  // dtnsim-lint: allow(all)\n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.cpp", all).empty());
  const std::string multi =
      "// dtnsim-lint: allow(determinism, include-hygiene)\n"
      "#include <iostream>  \n";
  EXPECT_TRUE(lint_file("src/dtnsim/a/b.hpp", multi).empty());
}

TEST(LintOutput, HumanFormat) {
  const auto fs = lint_file("src/dtnsim/a/b.cpp", "int r = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  const auto text = to_human(fs);
  EXPECT_NE(text.find("src/dtnsim/a/b.cpp:1: [determinism]"), std::string::npos);
}

TEST(LintOutput, JsonFormatAndEscaping) {
  std::vector<Finding> fs = {{"determinism", "a\"b.cpp", 3, "line1\nline2"}};
  const auto json = to_json(fs);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(to_json({}), "{\"count\":0,\"findings\":[]}");
}

// ---- v2: project index construction ---------------------------------------

TEST(ProjectIndex, EnumDefinitionsStripValuesAndBase) {
  const std::string code =
      "enum class Color : int {\n"
      "  kRed = 0,\n"
      "  kGreen,\n"
      "  kBlue,  // trailing comma above is fine\n"
      "};\n"
      "enum class Fwd;\n";  // forward declaration: no enumerators
  const auto idx = index_file("src/dtnsim/fake/colors.hpp", code);
  ASSERT_EQ(idx.enums.size(), 1u);
  EXPECT_EQ(idx.enums[0].name, "Color");
  EXPECT_EQ(idx.enums[0].enumerators,
            (std::vector<std::string>{"kRed", "kGreen", "kBlue"}));
}

TEST(ProjectIndex, PlainEnumsIgnored) {
  const auto idx =
      index_file("src/dtnsim/fake/a.hpp", "enum Legacy { kOne, kTwo };\n");
  EXPECT_TRUE(idx.enums.empty());
}

TEST(ProjectIndex, SwitchCasesAndDefault) {
  const std::string code =
      "int f(Color c) {\n"
      "  switch (c) {\n"
      "    case Color::kRed: return 1;\n"
      "    case fake::Color::kGreen: return 2;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n";
  const auto idx = index_file("src/dtnsim/fake/a.cpp", code);
  ASSERT_EQ(idx.switches.size(), 1u);
  EXPECT_EQ(idx.switches[0].enum_name, "Color");
  EXPECT_EQ(idx.switches[0].cases,
            (std::set<std::string>{"kRed", "kGreen"}));
  EXPECT_TRUE(idx.switches[0].has_default);
  EXPECT_FALSE(idx.switches[0].conditional);
}

TEST(ProjectIndex, NestedSwitchesIndexedSeparately) {
  const std::string code =
      "void f(A a, B b) {\n"
      "  switch (a) {\n"
      "    case A::kOne:\n"
      "      switch (b) {\n"
      "        case B::kX: break;\n"
      "        default: break;\n"
      "      }\n"
      "      break;\n"
      "  }\n"
      "}\n";
  const auto idx = index_file("src/dtnsim/fake/a.cpp", code);
  ASSERT_EQ(idx.switches.size(), 2u);
  // Outer: only its own case, no default (the nested default is not its).
  EXPECT_EQ(idx.switches[0].enum_name, "A");
  EXPECT_EQ(idx.switches[0].cases, (std::set<std::string>{"kOne"}));
  EXPECT_FALSE(idx.switches[0].has_default);
  EXPECT_EQ(idx.switches[1].enum_name, "B");
  EXPECT_TRUE(idx.switches[1].has_default);
}

TEST(ProjectIndex, ConditionalSwitchMarked) {
  const std::string code =
      "int f(Color c) {\n"
      "#ifdef EXOTIC\n"
      "  switch (c) {\n"
      "    case Color::kRed: return 1;\n"
      "  }\n"
      "#endif\n"
      "  return 0;\n"
      "}\n";
  const auto idx = index_file("src/dtnsim/fake/a.cpp", code);
  ASSERT_EQ(idx.switches.size(), 1u);
  EXPECT_TRUE(idx.switches[0].conditional);
}

TEST(ProjectIndex, MetricSitesEngineTaggingAndWrappedLiterals) {
  const std::string fluid =
      "void reg_metrics(obs::Registry& reg) {\n"
      "  reg.counter(\"flow.x_bytes\", \"bytes\", \"h\");\n"
      "  reg.gauge(\n"
      "      \"flow.y_bps\", \"bps\", \"wrapped onto the next line\");\n"
      "  reg.counter(std::string(\"limit.\") + name, \"ticks\", \"h\");\n"
      "}\n";
  const auto idx = index_file("src/dtnsim/flow/transfer.cpp", fluid);
  ASSERT_EQ(idx.metrics.size(), 2u);  // the computed name is invisible
  EXPECT_EQ(idx.metrics[0].name, "flow.x_bytes");
  EXPECT_EQ(idx.metrics[0].engine, "fluid");
  EXPECT_EQ(idx.metrics[1].name, "flow.y_bps");
  EXPECT_TRUE(idx.metrics[1].library);
  const auto pkt = index_file("src/dtnsim/flow/packet_sim.cpp",
                              "void f(R& r) { r.counter(\"pkt.x\", \"b\", \"h\"); }\n");
  ASSERT_EQ(pkt.metrics.size(), 1u);
  EXPECT_EQ(pkt.metrics[0].engine, "packet");
}

TEST(ProjectIndex, JsonFnPartitioningAndKeys) {
  const std::string code =
      "Json to_json(const Widget& w) {\n"
      "  Json j = Json::object();\n"
      "  j[\"id\"] = 1.0;\n"
      "  j[\"size\"] = 2.0;\n"
      "  return j;\n"
      "}\n"
      "bool widget_from_json(const Json& j, Widget* out) {\n"
      "  out->id = static_cast<int>(j.number_at(\"id\", 0.0));\n"
      "  if (const Json* s = j.find(\"size\")) out->size = s->number_or(0);\n"
      "  return true;\n"
      "}\n"
      "Json widget_to_json(const Widget& w);\n";  // declaration: ignored
  const auto idx = index_file("src/dtnsim/fake/widget.cpp", code);
  ASSERT_EQ(idx.json_fns.size(), 2u);
  EXPECT_TRUE(idx.json_fns[0].emit);
  EXPECT_EQ(idx.json_fns[0].struct_name, "Widget");
  EXPECT_EQ(idx.json_fns[0].keys, (std::set<std::string>{"id", "size"}));
  EXPECT_FALSE(idx.json_fns[1].emit);
  EXPECT_EQ(idx.json_fns[1].struct_name, "Widget");
  EXPECT_EQ(idx.json_fns[1].keys, (std::set<std::string>{"id", "size"}));
}

TEST(ProjectIndex, JsonFnNormalizesReturnTypes) {
  const std::string code =
      "std::optional<Timeline> timeline_from_json(const Json& j) {\n"
      "  (void)j.find(\"events\");\n"
      "  return std::nullopt;\n"
      "}\n";
  const auto idx = index_file("src/dtnsim/fake/a.cpp", code);
  ASSERT_EQ(idx.json_fns.size(), 1u);
  EXPECT_EQ(idx.json_fns[0].struct_name, "Timeline");
}

// ---- v2: cross-file rules ---------------------------------------------------

std::vector<Finding> project_findings(
    const std::vector<FileContent>& files, std::string doc_text = "") {
  return run_project_rules(build_index(files, std::move(doc_text)));
}

TEST(ProjectRules, EnumSwitchFlagsMissingEnumerator) {
  const std::vector<FileContent> files = {
      {"src/dtnsim/fake/colors.hpp",
       "enum class Color { kRed, kGreen, kBlue };\n"},
      {"src/dtnsim/fake/use.cpp",
       "int f(Color c) {\n"
       "  switch (c) {\n"
       "    case Color::kRed: return 1;\n"
       "    case Color::kGreen: return 2;\n"
       "  }\n"
       "  return 0;\n"
       "}\n"}};
  const auto fs = project_findings(files);
  ASSERT_EQ(count_rule(fs, "enum-switch"), 1);
  EXPECT_NE(fs[0].message.find("kBlue"), std::string::npos);
  EXPECT_EQ(fs[0].path, "src/dtnsim/fake/use.cpp");
  EXPECT_EQ(fs[0].line, 2);
}

TEST(ProjectRules, EnumSwitchFlagsStaleCaseEvenWithDefault) {
  // A `case` naming an enumerator the definition no longer carries is dead
  // code a `default:` cannot excuse (it can never fire).
  const std::vector<FileContent> files = {
      {"src/dtnsim/fake/colors.hpp",
       "enum class Color { kRed, kGreen, kBlue };\n"},
      {"src/dtnsim/fake/use.cpp",
       "int f(Color c) {\n"
       "  switch (c) {\n"
       "    case Color::kRed: return 1;\n"
       "    case Color::kYellow: return 2;\n"
       "    default: return 0;\n"
       "  }\n"
       "}\n"}};
  const auto fs = project_findings(files);
  ASSERT_EQ(count_rule(fs, "enum-switch"), 1);
  EXPECT_NE(fs[0].message.find("no longer exist"), std::string::npos);
  EXPECT_NE(fs[0].message.find("kYellow"), std::string::npos);
  EXPECT_EQ(fs[0].path, "src/dtnsim/fake/use.cpp");
}

TEST(ProjectRules, EnumSwitchStaleAndMissingReportSeparately) {
  // Without a default, a renamed enumerator yields both findings — and the
  // missing-rule's handled count excludes the stale label.
  const auto fs = project_findings(
      {{"src/dtnsim/fake/colors.hpp",
        "enum class Color { kRed, kGreen, kBlue };\n"},
       {"src/dtnsim/fake/use.cpp",
        "int f(Color c) {\n"
        "  switch (c) {\n"
        "    case Color::kRed: return 1;\n"
        "    case Color::kYellow: return 2;\n"
        "  }\n"
        "  return 0;\n"
        "}\n"}});
  ASSERT_EQ(count_rule(fs, "enum-switch"), 2);
  EXPECT_NE(fs[0].message.find("kYellow"), std::string::npos);
  EXPECT_NE(fs[1].message.find("handles 1/3"), std::string::npos);
  EXPECT_NE(fs[1].message.find("kGreen, kBlue"), std::string::npos);
}

TEST(ProjectRules, EnumSwitchDefaultOrGuardOrAllowExempts) {
  const std::string enum_hpp = "enum class Color { kRed, kBlue };\n";
  const std::string with_default =
      "int f(Color c) { switch (c) { case Color::kRed: return 1; default: return 0; } }\n";
  const std::string guarded =
      "#ifdef EXOTIC\n"
      "int f(Color c) { switch (c) { case Color::kRed: return 1; } return 0; }\n"
      "#endif\n";
  const std::string allowed =
      "// dtnsim-lint: allow(enum-switch)\n"
      "int f(Color c) { switch (c) { case Color::kRed: return 1; } return 0; }\n";
  for (const auto& body : {with_default, guarded, allowed}) {
    const auto fs = project_findings(
        {{"src/dtnsim/fake/colors.hpp", enum_hpp},
         {"src/dtnsim/fake/use.cpp", body}});
    EXPECT_EQ(count_rule(fs, "enum-switch"), 0) << body;
  }
}

TEST(ProjectRules, EnumSwitchAmbiguousEnumNameSkipped) {
  // Two distinct enums named Kind: the rule cannot know which is meant.
  const auto fs = project_findings(
      {{"src/dtnsim/a/one.hpp", "enum class Kind { kA, kB };\n"},
       {"src/dtnsim/b/two.hpp", "enum class Kind { kC };\n"},
       {"src/dtnsim/fake/use.cpp",
        "int f(Kind k) { switch (k) { case Kind::kA: return 1; } return 0; }\n"}});
  EXPECT_EQ(count_rule(fs, "enum-switch"), 0);
}

TEST(ProjectRules, MetricParityFlagsSingleEngineFamily) {
  const auto fs = project_findings(
      {{"src/dtnsim/flow/transfer.cpp",
        "void f(R& r) {\n"
        "  r.counter(\"flow.alpha\", \"b\", \"h\");\n"
        "  r.gauge(\"flow.beta_bps\", \"bps\", \"h\");\n"
        "}\n"},
       {"src/dtnsim/flow/packet_sim.cpp",
        "void f(R& r) { r.counter(\"pkt.alpha\", \"b\", \"h\"); }\n"}});
  ASSERT_EQ(count_rule(fs, "metric-parity"), 1);
  EXPECT_NE(fs[0].message.find("flow.beta_bps"), std::string::npos);
}

TEST(ProjectRules, MetricParityAllowlistAndSuppression) {
  // scenario.active_flows is a real, explained allowlist entry.
  ASSERT_NE(metric_parity_allowance("scenario.active_flows"), nullptr);
  const auto allow_listed = project_findings(
      {{"src/dtnsim/flow/transfer.cpp",
        "void f(R& r) { r.gauge(\"scenario.active_flows\", \"flows\", \"h\"); }\n"}});
  EXPECT_EQ(count_rule(allow_listed, "metric-parity"), 0);
  const auto suppressed = project_findings(
      {{"src/dtnsim/flow/transfer.cpp",
        "void f(R& r) {\n"
        "  // dtnsim-lint: allow(metric-parity)\n"
        "  r.gauge(\"flow.oddball_bps\", \"bps\", \"h\");\n"
        "}\n"}});
  EXPECT_EQ(count_rule(suppressed, "metric-parity"), 0);
}

TEST(ProjectRules, MetricParityDocCheck) {
  const std::vector<FileContent> files = {
      {"src/dtnsim/obs/metrics_reg.cpp",
       "void f(R& r) { r.counter(\"tcp.fixture_counter\", \"b\", \"h\"); }\n"}};
  // Not documented -> flagged; documented -> clean; no doc text -> disabled.
  EXPECT_EQ(count_rule(project_findings(files, "# docs\n"), "metric-parity"), 1);
  EXPECT_EQ(count_rule(project_findings(files, "`tcp.fixture_counter` ..."),
                       "metric-parity"),
            0);
  EXPECT_EQ(count_rule(project_findings(files), "metric-parity"), 0);
}

TEST(ProjectRules, JsonParityFlagsKeyDrift) {
  const auto fs = project_findings(
      {{"src/dtnsim/fake/widget.cpp",
        "Json to_json(const Widget& w) {\n"
        "  Json j;\n"
        "  j[\"id\"] = 1.0;\n"
        "  j[\"color\"] = 2.0;\n"
        "  return j;\n"
        "}\n"
        "bool widget_from_json(const Json& j, Widget* out) {\n"
        "  out->id = static_cast<int>(j.number_at(\"id\", 0.0));\n"
        "  return true;\n"
        "}\n"}});
  ASSERT_EQ(count_rule(fs, "json-parity"), 1);
  EXPECT_NE(fs[0].message.find("color"), std::string::npos);
}

TEST(ProjectRules, JsonParityCleanPairAndUnpairedSilent) {
  const auto fs = project_findings(
      {{"src/dtnsim/fake/widget.cpp",
        "Json to_json(const Widget& w) { Json j; j[\"id\"] = 1.0; return j; }\n"
        "bool widget_from_json(const Json& j, Widget* out) {\n"
        "  out->id = static_cast<int>(j.number_at(\"id\", 0.0));\n"
        "  return true;\n"
        "}\n"
        "Json to_json(const Orphan& o) { Json j; j[\"x\"] = 1.0; return j; }\n"}});
  EXPECT_EQ(count_rule(fs, "json-parity"), 0);
}

// ---- v2: baseline -----------------------------------------------------------

TEST(ProjectBaseline, ParseApplyAndRoundTrip) {
  const std::vector<Finding> fs = {
      {"enum-switch", "src/a.cpp", 10, "missing: kBlue"},
      {"json-parity", "src/b.cpp", 20, "drifted: color"}};
  const auto text = to_baseline(fs);
  const auto baseline = parse_baseline(text);
  EXPECT_EQ(baseline.size(), 2u);
  // Line numbers are not part of the key: a shifted finding stays masked.
  std::vector<Finding> shifted = fs;
  shifted[0].line = 99;
  EXPECT_TRUE(apply_baseline(shifted, baseline).empty());
  // A new message is not masked.
  std::vector<Finding> fresh = {{"enum-switch", "src/a.cpp", 10, "missing: kRed"}};
  EXPECT_EQ(apply_baseline(fresh, baseline).size(), 1u);
}

TEST(ProjectBaseline, CommentsAndBlanksIgnored) {
  const auto baseline =
      parse_baseline("# header\n\n  enum-switch|src/a.cpp|missing: kBlue  \n");
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_TRUE(baseline.count("enum-switch|src/a.cpp|missing: kBlue"));
}

// ---- v2: parallel driver ----------------------------------------------------

TEST(ProjectDriver, JobsOutputIsByteIdenticalToSerial) {
  std::vector<FileContent> files;
  for (int i = 0; i < 24; ++i) {
    const std::string path =
        "src/dtnsim/fake/f" + std::to_string(i) + ".cpp";
    files.push_back({path, "int r" + std::to_string(i) + " = rand();\n"});
  }
  files.push_back({"src/dtnsim/fake/colors.hpp",
                   "enum class Color { kRed, kBlue };\n"});
  files.push_back({"src/dtnsim/fake/use.cpp",
                   "int f(Color c) { switch (c) { case Color::kRed: return 1; }"
                   " return 0; }\n"});
  ProjectOptions serial;
  serial.jobs = 1;
  ProjectOptions wide;
  wide.jobs = 4;
  const auto a = lint_project(files, serial);
  const auto b = lint_project(files, wide);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(count_rule(a, "determinism"), 24);
  EXPECT_EQ(count_rule(a, "enum-switch"), 1);
  // Per-file findings come first, in input order; project findings last.
  EXPECT_EQ(a.back().rule, "enum-switch");
}

TEST(ProjectDriver, BaselineThreadsThroughOptions) {
  const std::vector<FileContent> files = {
      {"src/dtnsim/fake/a.cpp", "int r = rand();\n"}};
  ProjectOptions opts;
  const auto unmasked = lint_project(files, opts);
  ASSERT_EQ(unmasked.size(), 1u);
  opts.baseline.insert(baseline_key(unmasked[0]));
  EXPECT_TRUE(lint_project(files, opts).empty());
}

// ---- v2: --json schema golden ----------------------------------------------

void collect_key_paths(const Json& j, const std::string& prefix,
                       std::set<std::string>& out) {
  if (j.is_object()) {
    for (const auto& k : j.keys()) {
      const std::string path = prefix.empty() ? k : prefix + "." + k;
      out.insert(path);
      collect_key_paths(*j.find(k), path, out);
    }
  } else if (j.is_array()) {
    for (std::size_t i = 0; i < j.size(); ++i)
      collect_key_paths(*j.at(i), prefix, out);
  }
}

TEST(LintOutput, JsonSchemaMatchesGolden) {
  const auto fs =
      lint_file("src/dtnsim/fake/a.cpp", "int r = rand();\n");
  ASSERT_FALSE(fs.empty());
  const auto doc = Json::parse(to_json(fs));
  ASSERT_TRUE(doc);
  std::set<std::string> paths;
  collect_key_paths(*doc, "", paths);
  std::string got;
  for (const auto& p : paths) got += p + "\n";
  const std::string golden_path =
      std::string(DTNSIM_SOURCE_DIR) + "/tests/golden/lint_json_keys.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << golden_path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "lint --json schema drifted; update tests/golden/lint_json_keys.txt";
}

}  // namespace
}  // namespace dtnsim::lint
