// Unit tests: qdiscs, NIC RX model, switch, path.
#include <gtest/gtest.h>

#include "dtnsim/net/nic.hpp"
#include "dtnsim/net/path.hpp"
#include "dtnsim/net/qdisc.hpp"
#include "dtnsim/net/switch_model.hpp"

namespace dtnsim::net {
namespace {

// ---------- fq ----------

TEST(FqQdisc, PacedDeparturesSpacedByRate) {
  FqQdisc fq(100e9);
  fq.set_flow_rate(1, 10e9);  // 10 Gbps
  const double pkt = 9000.0;
  const Nanos gap_expected = static_cast<Nanos>(pkt * 8.0 / 10e9 * 1e9);  // 7.2 us
  Nanos prev = fq.enqueue(1, pkt, 0);
  for (int i = 1; i < 50; ++i) {
    const Nanos d = fq.enqueue(1, pkt, 0);
    EXPECT_EQ(d - prev, gap_expected);
    prev = d;
  }
}

TEST(FqQdisc, UnpacedGoesAtLineRate) {
  FqQdisc fq(100e9);
  const double pkt = 9000.0;
  const Nanos wire = static_cast<Nanos>(pkt * 8.0 / 100e9 * 1e9);  // 720 ns
  const Nanos d0 = fq.enqueue(7, pkt, 0);
  const Nanos d1 = fq.enqueue(7, pkt, 0);
  EXPECT_EQ(d0, 0);
  EXPECT_EQ(d1 - d0, wire);
}

TEST(FqQdisc, FlowsPacedIndependently) {
  // Each flow's inter-departure gap follows its own rate.
  auto gap_for = [](double rate_bps) {
    FqQdisc fq(100e9);
    fq.set_flow_rate(1, rate_bps);
    const Nanos d0 = fq.enqueue(1, 9000, 0);
    return fq.enqueue(1, 9000, 0) - d0;
  };
  EXPECT_GT(gap_for(1e9), gap_for(50e9) * 10);
}

TEST(FqQdisc, NoDeparturesInThePast) {
  FqQdisc fq(100e9);
  fq.set_flow_rate(1, 10e9);
  EXPECT_GE(fq.enqueue(1, 9000, 1000), 1000);
}

TEST(FqQdisc, AllowanceRespectsRateAndLine) {
  FqQdisc fq(100e9);
  fq.set_flow_rate(1, 10e9);
  EXPECT_DOUBLE_EQ(fq.allowance_bytes(1, 1.0), 10e9 / 8.0);
  // Unpaced flow: line rate bounds it.
  EXPECT_DOUBLE_EQ(fq.allowance_bytes(2, 1.0), 100e9 / 8.0);
  // Pacing above line: line wins.
  fq.set_flow_rate(3, 400e9);
  EXPECT_DOUBLE_EQ(fq.allowance_bytes(3, 1.0), 100e9 / 8.0);
}

TEST(FqCodel, DropsWhenStandingQueuePersists) {
  FqCodelQdisc q(1e9, units::millis(5), units::millis(100));
  // Offer ~7.2 Gbps into a 1G link: the standing queue exceeds the CoDel
  // target, and once it has persisted past the interval, drops begin.
  Nanos now = 0;
  bool dropped = false;
  for (int i = 0; i < 30000; ++i) {
    const auto v = q.enqueue(9000.0, now);
    dropped = dropped || v.dropped;
    now += 10'000;  // 10 us between arrivals
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(q.drops(), 0u);
}

TEST(FqCodel, NoDropsUnderLightLoad) {
  FqCodelQdisc q(100e9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = q.enqueue(9000.0, i * 10000);
    EXPECT_FALSE(v.dropped);
  }
}

// ---------- NIC ----------

TEST(Nic, SpecsMatchTestbeds) {
  EXPECT_DOUBLE_EQ(connectx5_100g().line_rate_bps, 100e9);
  EXPECT_DOUBLE_EQ(connectx7_200g().line_rate_bps, 200e9);
  EXPECT_TRUE(connectx7_200g().hw_gro_capable);
  EXPECT_FALSE(connectx5_100g().hw_gro_capable);
}

TEST(Nic, PacedBelowDrainNoDrops) {
  NicRx rx(connectx5_100g(), 1024, 9000, false);
  RxArrival a;
  a.paced = true;
  a.bytes = 50e9 / 8 * 0.025;  // 50 Gbps over 25 ms
  const auto v = rx.process(a, 0.025, 0.025);
  EXPECT_DOUBLE_EQ(v.dropped_bytes, 0.0);
  EXPECT_DOUBLE_EQ(v.accepted_bytes, a.bytes);
}

TEST(Nic, PacedAboveDrainDrops) {
  NicRx rx(connectx5_100g(), 1024, 9000, false);
  RxArrival a;
  a.paced = true;
  a.bytes = 60e9 / 8 * 0.025;  // above the 52G smooth drain
  const auto v = rx.process(a, 0.025, 0.025);
  EXPECT_GT(v.dropped_bytes, 0.0);
}

TEST(Nic, UnpacedWanToleranceNearDrainBurst) {
  NicRx rx(connectx5_100g(), 1024, 9000, false);
  // 9.2 MB ring at 104 ms adds well under 1 Gbps of credit.
  EXPECT_NEAR(rx.unpaced_tolerable_bps(0.104) / 1e9, 42.4, 0.5);
}

TEST(Nic, UnpacedLanToleranceHuge) {
  NicRx rx(connectx5_100g(), 1024, 9000, false);
  // At LAN RTTs the ring absorbs whole windows: tolerance far above 55G.
  EXPECT_GT(rx.unpaced_tolerable_bps(0.0002), 75e9);
}

TEST(Nic, BiggerRingRaisesTolerance) {
  NicRx small(connectx7_200g(), 1024, 9000, false);
  NicRx big(connectx7_200g(), 8192, 9000, false);
  EXPECT_GT(big.unpaced_tolerable_bps(0.063), small.unpaced_tolerable_bps(0.063));
}

TEST(Nic, FlowControlPausesInsteadOfDropping) {
  NicRx rx(connectx5_100g(), 1024, 9000, true);
  RxArrival a;
  a.paced = true;
  a.bytes = 80e9 / 8 * 0.025;
  const auto v = rx.process(a, 0.025, 0.025);
  EXPECT_DOUBLE_EQ(v.dropped_bytes, 0.0);
  EXPECT_TRUE(v.pause_frames_sent);
  EXPECT_LT(v.accepted_bytes, a.bytes);
}

TEST(Nic, RingClampedToMax) {
  NicRx rx(connectx5_100g(), 1 << 20, 9000, false);
  EXPECT_DOUBLE_EQ(rx.ring_bytes(), 8192.0 * 9000.0);
}

// ---------- switch ----------

TEST(Switch, UnderEgressAllAccepted) {
  SwitchModel sw(edgecore_as9716());
  const auto o = sw.offer(units::Bytes(100e9 / 8 * 0.01), 0.01, 0.5);
  EXPECT_DOUBLE_EQ(o.dropped_bytes, 0.0);
}

TEST(Switch, OverEgressSheds) {
  SwitchModel sw(edgecore_as9716());
  // 400G offered into a 200G egress for 10 ms: buffer absorbs 64MB/bf.
  const double bytes = 400e9 / 8 * 0.01;
  const auto o = sw.offer(units::Bytes(bytes), 0.01, 1.0);
  EXPECT_GT(o.dropped_bytes, 0.0);
  EXPECT_NEAR(o.accepted_bytes + o.dropped_bytes, bytes, 1.0);
}

TEST(Switch, SmootherTrafficToleratesMore) {
  SwitchModel sw(edgecore_as9716());
  EXPECT_GT(sw.burst_tolerance_bps(0.063, 0.1), sw.burst_tolerance_bps(0.063, 0.9));
}

// ---------- path ----------

TEST(Path, DeliversUnderCapacity) {
  PathSpec spec;
  spec.capacity_bps = 100e9;
  Path p(spec);
  Rng rng(1);
  const auto o = p.transit(units::Bytes(50e9 / 8 * 0.01), 0.01, false, 1.0, rng);
  EXPECT_DOUBLE_EQ(o.dropped_bytes, 0.0);
}

TEST(Path, UnpacedOverCapacityDropsShallow) {
  PathSpec spec;
  spec.capacity_bps = 80e9;
  Path p(spec);
  Rng rng(1);
  const double bytes = 120e9 / 8 * 0.01;
  const auto o = p.transit(units::Bytes(bytes), 0.01, false, 1.0, rng);
  EXPECT_GT(o.dropped_bytes, 0.0);
  EXPECT_LT(o.delivered_bytes, bytes);
}

TEST(Path, PacedOverCapacityQueuesCleanly) {
  PathSpec spec;
  spec.capacity_bps = 80e9;
  Path p(spec);
  Rng rng(1);
  const auto o = p.transit(units::Bytes(120e9 / 8 * 0.01), 0.01, true, 1.05, rng);
  EXPECT_DOUBLE_EQ(o.dropped_bytes, 0.0);
  EXPECT_NEAR(o.delivered_bytes, 80e9 / 8 * 0.01, 1.0);
}

TEST(Path, DeepBuffersLoseRarely) {
  PathSpec spec;
  spec.capacity_bps = 98.5e9;
  spec.deep_buffers = true;
  Path p(spec);
  Rng rng(3);
  int loss_ticks = 0;
  const double bytes = 120e9 / 8 * 0.063;
  for (int i = 0; i < 1000; ++i) {
    if (p.transit(units::Bytes(bytes), 0.063, true, 1.05, rng).dropped_bytes > 0) ++loss_ticks;
  }
  EXPECT_GT(loss_ticks, 0);
  EXPECT_LT(loss_ticks, 150);  // rare events, not per-tick certainty
}

TEST(Path, BurstToleranceCutsUnpacedTails) {
  PathSpec spec;
  spec.capacity_bps = 200e9;
  spec.burst_tolerance_bps = 135e9;
  Path p(spec);
  Rng rng(1);
  const auto o = p.transit(units::Bytes(160e9 / 8 * 0.063), 0.063, false, 1.0, rng);
  EXPECT_GT(o.dropped_bytes, 0.0);
}

TEST(Path, BackgroundTrafficReducesCapacity) {
  PathSpec spec;
  spec.capacity_bps = 80e9;
  spec.bg_traffic_bps = 16e9;
  spec.bg_burst_sigma = 0.35;
  Path p(spec);
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) sum += p.available_capacity_bps(rng);
  EXPECT_LT(sum / 1000, 66e9);
  EXPECT_GT(sum / 1000, 55e9);
}

TEST(Path, StrayLossEventsFire) {
  PathSpec spec;
  spec.capacity_bps = 100e9;
  spec.stray_loss_events_per_sec = 0.25;
  Path p(spec);
  Rng rng(9);
  double dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    dropped += p.transit(units::Bytes(10e9 / 8 * 0.063), 0.063, true, 1.05, rng).dropped_bytes;
  }
  EXPECT_GT(dropped, 0.0);
}

}  // namespace
}  // namespace dtnsim::net
