// Integration tests: feature interactions the paper calls out explicitly —
// BIG TCP vs MSG_ZEROCOPY frag contention, irqbalance variance, VM tuning,
// hardware GRO, and the advisor-measured tuning deltas.
#include <gtest/gtest.h>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim {
namespace {

harness::TestResult quick(Experiment e) { return e.duration(units::SimTime::from_seconds(15)).repeats(3).run(); }

TEST(Features, BigTcpPlusZerocopyNoopOnStockKernel) {
  // §II-C: "BIG TCP and zerocopy cannot be used simultaneously without a
  // custom built kernel" — on stock MAX_SKB_FRAGS=17 the zerocopy frag
  // limit clamps the super-packet, so enabling BIG TCP changes nothing.
  const auto zc = quick(Experiment(harness::esnet()).zerocopy().skip_rx_copy());
  const auto zc_big =
      quick(Experiment(harness::esnet()).zerocopy().skip_rx_copy().big_tcp(true, units::Bytes(180 * 1024)));
  EXPECT_NEAR(zc_big.avg_gbps, zc.avg_gbps, zc.avg_gbps * 0.02);
}

TEST(Features, Frags45UnlocksTheCombination) {
  auto tb = harness::esnet();
  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->kernel = kern::custom_kernel_with_frags(h->kernel, 45);
  }
  const auto stock =
      quick(Experiment(harness::esnet()).zerocopy().skip_rx_copy().big_tcp(true, units::Bytes(180 * 1024)));
  const auto custom =
      quick(Experiment(tb).zerocopy().skip_rx_copy().big_tcp(true, units::Bytes(180 * 1024)));
  // §V-C preliminary result: substantial gains once the frag limit lifts.
  EXPECT_GT(custom.avg_gbps, stock.avg_gbps * 1.2);
}

TEST(Features, IrqbalanceBlowsUpVariance) {
  const auto pinned = Experiment(harness::amlight()).duration(units::SimTime::from_seconds(15)).repeats(12).run();
  const auto balanced =
      Experiment(harness::amlight()).irqbalance(true).duration(units::SimTime::from_seconds(15)).repeats(12).run();
  // §III-A: 20-55 Gbps run-to-run on the same hardware.
  EXPECT_GT(balanced.stdev_gbps, pinned.stdev_gbps * 2.5);
  EXPECT_LT(balanced.min_gbps, 35.0);
  EXPECT_GT(balanced.max_gbps, 45.0);
}

TEST(Features, UntunedVmFarSlowerThanTunedVm) {
  auto tuned = harness::amlight_vm(kern::KernelVersion::V5_10);
  auto untuned = tuned;
  host::VmConfig bad;
  bad.pci_passthrough = false;
  bad.vcpu_pinned = false;
  bad.host_iommu_pt = false;
  untuned.sender.virt_factor = host::virtualization_factor(bad);
  untuned.receiver.virt_factor = host::virtualization_factor(bad);
  const auto a = quick(Experiment(tuned));
  const auto b = quick(Experiment(untuned));
  EXPECT_GT(a.avg_gbps, b.avg_gbps * 1.8);
}

TEST(Features, HwGroNeedsKernelAndNicAtEngineLevel) {
  // Enabling the knob without kernel 6.11 + CX-7 is inert.
  auto tb = harness::amlight(kern::KernelVersion::V6_8);  // CX-5, 6.8
  const auto off = quick(Experiment(tb).zerocopy());
  const auto on = quick(Experiment(tb).zerocopy().hw_gro(true));
  EXPECT_NEAR(on.avg_gbps, off.avg_gbps, off.avg_gbps * 0.02);
}

TEST(Features, HwGroHelpsMostAtSmallMtu) {
  auto tb = harness::amlight(kern::KernelVersion::V6_11);
  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->nic = net::connectx7_200g();
    h->nic.line_rate_bps = 100e9;
    h->nic.drain_smooth_bps = 52e9;
    h->nic.drain_burst_bps = 42e9;
  }
  const auto off15 = quick(Experiment(tb).zerocopy().mtu(units::Bytes(1500)));
  const auto on15 = quick(Experiment(tb).zerocopy().mtu(units::Bytes(1500)).hw_gro(true));
  const auto off9k = quick(Experiment(tb).zerocopy());
  const auto on9k = quick(Experiment(tb).zerocopy().hw_gro(true));
  const double gain15 = on15.avg_gbps / off15.avg_gbps;
  const double gain9k = on9k.avg_gbps / off9k.avg_gbps;
  EXPECT_GT(gain15, 1.8);   // paper: ~160% at 1500 B (24 -> 62 Gbps)
  // paper: "33% improvement (62 Gbps vs 65 Gbps)" — the quoted bar values
  // are themselves only +5%, and here the AmLight path ceiling (~64 G)
  // caps the relieved receiver, landing between those two readings.
  EXPECT_GT(gain9k, 1.08);
  EXPECT_GT(gain15, gain9k * 1.3);  // the small-MTU effect dominates
}

TEST(Features, PacingAbove32GNeedsPatchedIperf) {
  // §V-A: "pacing single flows above 32 Gbps ... requires a recent patch".
  const auto tb = harness::amlight();
  app::IperfOptions o;
  o.zerocopy = true;
  o.fq_rate_bps = units::gbps(50);
  o.duration_sec = 15;
  const auto patched = app::IperfTool(app::IperfVersion::patched_3_17())
                           .run(tb.sender, tb.receiver, tb.path_named("WAN 25ms"), o);
  const auto stock = app::IperfTool(app::IperfVersion::stock_3_16())
                         .run(tb.sender, tb.receiver, tb.path_named("WAN 25ms"), o);
  EXPECT_NEAR(patched.sum_received_gbps, 49.0, 3.0);
  EXPECT_LT(stock.sum_received_gbps, 33.5);  // clamped to the 32G uint limit
}

TEST(Features, NoMetricsSaveIrrelevantHere) {
  // tcp_no_metrics_save prevents cross-run cwnd caching; runs in dtnsim are
  // independent by construction, so flipping it must not change results —
  // a guard that the knob exists but has no accidental coupling.
  auto tb = harness::esnet();
  const auto a = quick(Experiment(tb));
  tb.sender.tuning.sysctl.tcp_no_metrics_save = false;
  const auto b = quick(Experiment(tb));
  EXPECT_DOUBLE_EQ(a.avg_gbps, b.avg_gbps);
}

TEST(Features, AdvisorLadderMonotone) {
  // Each §V recommendation, applied cumulatively to a stock host, never
  // hurts and in aggregate transforms the transfer.
  auto tb = harness::esnet(kern::KernelVersion::V5_15);
  tb.sender.tuning = host::TuningConfig::stock();
  tb.receiver.tuning = host::TuningConfig::stock();
  const auto path = "WAN 63ms";

  std::vector<double> ladder;
  auto measure = [&] {
    ladder.push_back(quick(Experiment(tb).path(path)).avg_gbps);
  };
  measure();  // stock
  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->tuning.sysctl = kern::SysctlConfig::fasterdata_tuned();
    h->tuning.mtu_bytes = 9000;
  }
  measure();
  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->tuning.irqbalance_disabled = true;
    h->tuning.performance_governor = true;
    h->tuning.smt_off = true;
    h->tuning.iommu_passthrough = true;
  }
  measure();
  tb.sender.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  tb.receiver.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  measure();

  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ladder[i], ladder[i - 1] * 0.97) << "step " << i;
  }
  EXPECT_GT(ladder.back(), ladder.front() * 20.0);  // stock WAN is crippled
}

}  // namespace
}  // namespace dtnsim
