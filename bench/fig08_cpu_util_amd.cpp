// Fig. 8: CPU utilization, LAN and WAN (single stream, AMD host).
//
// Same shape as Fig. 7 but at lower throughput; the notable AMD difference
// is much higher sender CPU on the WAN (deeper cache penalty from the
// per-CCX L3 slices).
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main(int argc, char** argv) {
  print_header("Figure 8", "CPU utilization (single stream, AMD host, ESnet)",
               "default vs zerocopy+pacing 40G, LAN + 63 ms WAN, 60 s x 10");

  const std::string perf_out = parse_bench_perf_out(argc, argv);
  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  Table table({"Config", "Path", "Throughput", "TX Cores", "RX Cores"});
  std::vector<obs::PerfReport> perf_log;

  double def_lan = 0, def_wan = 0, snd_wan = 0, snd_lan = 0;
  for (const bool zcp : {false, true}) {
    for (const char* p : {"LAN", "WAN 63ms"}) {
      auto e = Experiment(tb).path(p);
      if (zcp) e.zerocopy().pacing(units::Rate::from_gbps(40)).optmem_max(units::Bytes(3405376));
      if (!perf_out.empty()) e.perf();
      const auto r = standard(std::move(e)).run();
      table.add_row({zcp ? "zc+pacing 40G" : "default", p, gbps(r.avg_gbps),
                     pct(r.snd_cpu_pct), pct(r.rcv_cpu_pct)});
      perf_log.insert(perf_log.end(), r.perf_log.begin(), r.perf_log.end());
      if (!zcp) {
        (std::string(p) == "LAN" ? def_lan : def_wan) = r.avg_gbps;
        (std::string(p) == "LAN" ? snd_lan : snd_wan) = r.snd_cpu_pct;
      }
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape checks vs paper:\n");
  std::printf("  default WAN below LAN  : %.0f%% slower (paper: ~40%%)\n",
              (1.0 - def_wan / def_lan) * 100.0);
  std::printf("  sender CPU WAN >> LAN  : %.0f%% vs %.0f%% (paper: 'much higher on AMD')\n",
              snd_wan, snd_lan);
  if (!perf_out.empty()) {
    if (!obs::write_perf_log(perf_out, perf_log)) {
      std::fprintf(stderr, "error: cannot write perf log to %s\n", perf_out.c_str());
      return 1;
    }
    std::printf("Perf log: %s (%zu cell reports, dtnsim-perf --replay reads it)\n",
                perf_out.c_str(), perf_log.size());
  }
  return 0;
}
