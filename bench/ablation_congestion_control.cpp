// Ablation (§IV-F): congestion control algorithms.
//
// Paper findings (not plotted there, summarized in text): single-stream
// throughput is not significantly affected by the CCA on these clean
// testbeds; retransmit counts are higher with BBR (especially BBRv1); BBR
// ramps up faster on the WAN; and parallel BBR flows benefit strongly from
// fq pacing, otherwise they interfere and back off.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Ablation: congestion control", "CUBIC vs BBRv1 vs BBRv3 (ESnet, kernel 6.8)",
               "single stream WAN + 8 paced/unpaced streams, 60 s x 10");

  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  const kern::CongestionAlgo algos[] = {kern::CongestionAlgo::Cubic,
                                        kern::CongestionAlgo::BbrV1,
                                        kern::CongestionAlgo::BbrV3};

  Table single({"Algorithm", "1 stream WAN", "Retr", "Ramp (first 5s avg)"});
  for (const auto a : algos) {
    const auto r = standard(Experiment(tb).path("WAN 63ms").congestion(a)).run();
    // Ramp-up: rerun one seed and look at the first seconds.
    flow::TransferConfig cfg;
    cfg.sender = tb.sender;
    cfg.receiver = tb.receiver;
    cfg.path = tb.path_named("WAN 63ms");
    cfg.flow.congestion = a;
    cfg.duration = units::SimTime::from_seconds(10);
    cfg.seed = 11;
    const auto one = flow::run_transfer(cfg);
    double ramp = 0;
    const std::size_t n = std::min<std::size_t>(5, one.interval_bps.size());
    for (std::size_t i = 0; i < n; ++i) ramp += units::to_gbps(one.interval_bps[i]);
    single.add_row({kern::congestion_name(a), gbps_pm(r), count(r.avg_retransmits),
                    strfmt("%.1f Gbps", n ? ramp / static_cast<double>(n) : 0.0)});
  }
  std::printf("%s\n", single.to_ascii().c_str());

  Table multi({"Algorithm", "8 flows unpaced WAN", "Retr", "8 flows paced 15G", "Retr"});
  for (const auto a : algos) {
    const auto un =
        standard(Experiment(tb).path("WAN 63ms").streams(8).congestion(a)).run();
    const auto paced = standard(Experiment(tb)
                                    .path("WAN 63ms")
                                    .streams(8)
                                    .congestion(a)
                                    .pacing(units::Rate::from_gbps(15)))
                           .run();
    multi.add_row({kern::congestion_name(a), gbps_pm(un), count(un.avg_retransmits),
                   gbps_pm(paced), count(paced.avg_retransmits)});
  }
  std::printf("%s\n", multi.to_ascii().c_str());
  std::printf("Paper shape: comparable throughput across CCAs; BBR retransmits\n"
              "higher (v1 worst); BBR ramps faster; fq pacing stabilizes parallel\n"
              "BBR flows.\n");
  return 0;
}
